// Shared infrastructure for the SpecACCEL-proxy workloads: host-side buffer
// helpers, the tolerance-based SDC checker (the analogue of SPEC's per-program
// checking scripts), and assembly kernel-template generators used by the
// programs with many similar static kernels (351.palm, 353.clvrleaf, 356.sp,
// ...).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/outcome.h"
#include "core/target_program.h"
#include "sassim/runtime/driver.h"

namespace nvbitfi::workloads {

// ---- host-side helpers ------------------------------------------------------

// Allocates a device buffer and uploads `data`.  Returns 0 on failure.
sim::DevPtr AllocAndUpload(sim::Context& ctx, std::span<const float> data);
sim::DevPtr AllocAndUploadDouble(sim::Context& ctx, std::span<const double> data);
sim::DevPtr AllocAndUploadU32(sim::Context& ctx, std::span<const std::uint32_t> data);

// Downloads `count` elements; on API failure returns a zero-filled vector
// (the host keeps going with whatever it got, like unchecked cudaMemcpy).
std::vector<float> Download(sim::Context& ctx, sim::DevPtr ptr, std::size_t count);
std::vector<double> DownloadDouble(sim::Context& ctx, sim::DevPtr ptr, std::size_t count);
std::vector<std::uint32_t> DownloadU32(sim::Context& ctx, sim::DevPtr ptr,
                                       std::size_t count);

// Appends raw float/double bytes to the run's "output file".
void AppendToOutput(fi::RunArtifacts* artifacts, std::span<const float> values);
void AppendToOutput(fi::RunArtifacts* artifacts, std::span<const double> values);

// FP32 literal rendered as the assembly immediate (bit pattern).
std::string FloatImm(float value);

// Kernel parameter slot from a float (bits in the low word).
std::uint64_t FloatParam(float value);
std::uint64_t DoubleParam(double value);

// ---- SDC checking -----------------------------------------------------------

// SPEC-style output check: the output file is interpreted as an array of
// float (or double) values and compared with relative+absolute tolerance;
// stdout is compared exactly (workloads print rounded summaries).
class ToleranceChecker final : public fi::SdcChecker {
 public:
  enum class Element { kFloat, kDouble };
  ToleranceChecker(Element element, double rel_tol, double abs_tol)
      : element_(element), rel_tol_(rel_tol), abs_tol_(abs_tol) {}

  bool IsSdc(const fi::RunArtifacts& golden, const fi::RunArtifacts& run) const override;

 private:
  Element element_;
  double rel_tol_;
  double abs_tol_;
};

// ---- kernel template generators ----------------------------------------------
//
// Each returns a complete ".kernel name ... .endkernel" block operating on
// float arrays indexed by the global thread id.  Parameter layout (8-byte
// slots at c[0][0x160+8i]) is documented per template.

// out[i] = in[i] + c * (in[i-1] - 2*in[i] + in[i+1]), interior points only.
// Neighbour indexes wrap periodically through `n_mask` (= n-1, n a power of
// two), the same masked-index idiom the real periodic-boundary codes use;
// the interior guard keeps the wrap an identity, so outputs are unchanged.
// params: 0=in, 1=out, 2=n
std::string StencilKernel(const std::string& name, float coefficient,
                          std::uint32_t n_mask);

// y[i] = a * x[i] + y[i].   params: 0=x, 1=y, 2=n
std::string AxpyKernel(const std::string& name, float a);

// out[i] = a * in[i] + b.   params: 0=in, 1=out, 2=n
std::string ScaleKernel(const std::string& name, float a, float b);

// out[i] = in[i].           params: 0=in, 1=out, 2=n
std::string CopyKernel(const std::string& name);

// data[i] = c0 * data[i] + c1 * data[(i+stride) & n_mask] (periodic wrap,
// n_mask = n-1 with n a power of two — the same value the kernel previously
// rebuilt from its n parameter at run time).  params: 0=data, 1=n, 2=stride
std::string SweepKernel(const std::string& name, float c0, float c1,
                        std::uint32_t n_mask);

// FP64 stencil: out[i] += c * in[i] * in[i] (pair registers).
// params: 0=in (double*), 1=out (double*), 2=n, 3=c (double bits)
std::string Fp64SquareAccumulateKernel(const std::string& name);

// Block-wide shared-memory tree reduction writing one partial per block.
// params: 0=in, 1=partials, 2=n    (block size must be 64)
std::string ReduceKernel(const std::string& name);

// ---- Table IV scaffolding ----------------------------------------------------

// Static/dynamic kernel counts for one program (must match Table IV).
struct KernelCounts {
  int static_kernels = 0;
  int dynamic_kernels = 0;
};

}  // namespace nvbitfi::workloads
