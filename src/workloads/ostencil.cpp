// 303.ostencil — thermodynamics proxy: 1-D heat-diffusion Jacobi stencil.
// Table IV: 2 static kernels, 101 dynamic kernels (100 ping-pong stencil
// steps + 1 final reduction).
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/programs.h"
#include "workloads/common.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kN = 1024;
constexpr std::uint32_t kBlock = 64;
constexpr int kSteps = 100;

class OstencilProgram final : public fi::TargetProgram {
 public:
  OstencilProgram()
      : source_(StencilKernel("ostencil_step", 0.19f, kN - 1) + ReduceKernel("ostencil_reduce")),
        checker_(ToleranceChecker::Element::kFloat, 2e-3, 1e-7) {}

  std::string name() const override { return "303.ostencil"; }
  std::string description() const override { return "Thermodynamics"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* step = ctx.GetFunction("ostencil_step");
    sim::Function* reduce = ctx.GetFunction("ostencil_reduce");
    NVBITFI_CHECK(step != nullptr && reduce != nullptr);

    // Hot spot in the middle of a cold rod.
    std::vector<float> init(kN, 0.0f);
    for (std::uint32_t i = kN / 2 - 32; i < kN / 2 + 32; ++i) init[i] = 100.0f;
    sim::DevPtr a = AllocAndUpload(ctx, init);
    sim::DevPtr b = AllocAndUpload(ctx, init);

    constexpr std::uint32_t kGrid = kN / kBlock;
    std::vector<float> zero(kGrid, 0.0f);
    sim::DevPtr partials = AllocAndUpload(ctx, zero);

    const sim::Dim3 grid{kGrid, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};
    for (int it = 0; it < kSteps; ++it) {
      const std::uint64_t params[] = {a, b, kN};
      ctx.LaunchKernel(step, grid, block, params);
      std::swap(a, b);
    }
    {
      const std::uint64_t params[] = {a, partials, kN};
      ctx.LaunchKernel(reduce, grid, block, params);
    }

    const std::vector<float> field = Download(ctx, a, kN);
    const std::vector<float> sums = Download(ctx, partials, kGrid);
    double heat = 0.0;
    for (const float s : sums) heat += s;

    // This program does NOT check CUDA errors (lenient host): device traps
    // surface only as potential DUEs.
    art.stdout_text = Format("303.ostencil: total heat %.3e after %d steps\n", heat, kSteps);
    AppendToOutput(&art, std::span<const float>(field));
    AppendToOutput(&art, std::span<const float>(sums));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Ostencil() {
  static const OstencilProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
