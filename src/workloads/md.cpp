// 350.md — molecular dynamics proxy: Lennard-Jones-style pairwise forces,
// velocity-Verlet integration, and a linked-cell neighbour walk.
// Table IV: 3 static kernels, 53 dynamic kernels (25 steps x {forces,
// integrate} + a neighbour rebuild at steps 0, 10, 20).
//
// Notes for the fault study: the forces kernel declares very high register
// pressure (regs=80), which makes exact profiling spill — this program is the
// paper's 558x profiling-overhead outlier (Fig. 4).  The neighbour kernel
// walks a device-resident linked list with a data-dependent loop, so pointer
// corruptions can produce genuine hangs (watchdog DUEs) or address traps.
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/common.h"
#include "workloads/programs.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kAtoms = 128;
constexpr std::uint32_t kBlock = 64;
constexpr int kSteps = 25;
constexpr float kDt = 1e-3f;

// All-pairs force accumulation.  params: 0=x, 1=f, 2=n
std::string ForcesKernel() {
  std::string s = ".kernel md_forces regs=80\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"  // xi
      "  MOV R20, RZ ;\n"        // force accumulator
      "  MOV R22, RZ ;\n"        // j
      "floop:\n"
      "  IMAD.WIDE R6, R22, 0x4, R4 ;\n"
      "  LDG.E.32 R9, [R6] ;\n"  // xj
      "  FADD R10, R9, -R8 ;\n"  // dx
      "  FMUL R11, R10, R10 ;\n";
  s += Format(
      "  FADD R11, R11, %s ;\n"    // r2 + softening
      "  MUFU.RCP R12, R11 ;\n"    // inv = 1/r2
      "  FMUL R13, R12, R12 ;\n"
      "  FMUL R13, R13, R12 ;\n"   // inv^3
      "  FADD R14, R13, -R12 ;\n"  // inv^3 - inv (attract/repel mix)
      "  FFMA R20, R14, R10, R20 ;\n",
      FloatImm(0.01f).c_str());
  s +=
      "  IADD3 R22, R22, 1, RZ ;\n"
      "  ISETP.LT.AND P1, PT, R22, R3, PT ;\n"
      "  @P1 BRA floop ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R20 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// Velocity-Verlet update.  params: 0=x, 1=v, 2=f, 3=n, 4=dt(bits)
std::string IntegrateKernel() {
  std::string s = ".kernel md_integrate regs=24\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x178] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"   // &x[i]
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R10, R0, 0x4, R4 ;\n"  // &v[i]
      "  MOV R4, c[0][0x170] ;\n"
      "  MOV R5, c[0][0x174] ;\n"
      "  IMAD.WIDE R12, R0, 0x4, R4 ;\n"  // &f[i]
      "  LDG.E.32 R16, [R6] ;\n"
      "  LDG.E.32 R17, [R10] ;\n"
      "  LDG.E.32 R18, [R12] ;\n"
      "  MOV R19, c[0][0x180] ;\n"        // dt bits
      "  FFMA R17, R18, R19, R17 ;\n"     // v += f*dt
      "  FFMA R16, R17, R19, R16 ;\n"     // x += v*dt
      "  STG.E.32 [R10], R17 ;\n"
      "  STG.E.32 [R6], R16 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// Linked-list neighbour walk: hop count until the 0xffffffff sentinel.  The
// loop bound is data-dependent — a corrupted link that forms a cycle hangs
// until the watchdog fires.  params: 0=next, 1=count, 2=n
std::string NeighborKernel() {
  std::string s = ".kernel md_neighbor regs=32\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  MOV R8, R0 ;\n"   // cur = i
      "  MOV R9, RZ ;\n"   // hops = 0
      "nloop:\n"
      "  IMAD.WIDE R6, R8, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"  // cur = next[cur]
      "  IADD3 R9, R9, 1, RZ ;\n"
      "  ISETP.NE.AND P1, PT, R8, -1, PT ;\n"
      "  @P1 BRA nloop ;\n"
      // Fixed-count polish loop with a != exit condition: a corrupted loop
      // counter skips the equality and spins for 2^32 iterations — a genuine
      // hang that only the watchdog/monitor catches (Table V's timeout DUE).
      "  MOV R16, RZ ;\n"
      "ploop:\n"
      "  IADD3 R16, R16, 1, RZ ;\n"
      "  ISETP.NE.AND P2, PT, R16, 0x10, PT ;\n"
      "  @P2 BRA ploop ;\n"
      "  IADD3 R9, R9, R16, RZ ;\n"  // hops + 16
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R9 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

class MdProgram final : public fi::TargetProgram {
 public:
  MdProgram()
      : source_(ForcesKernel() + IntegrateKernel() + NeighborKernel()),
        checker_(ToleranceChecker::Element::kFloat, 5e-3, 1e-5) {}

  std::string name() const override { return "350.md"; }
  std::string description() const override { return "Molecular dynamics"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* forces = ctx.GetFunction("md_forces");
    sim::Function* integrate = ctx.GetFunction("md_integrate");
    sim::Function* neighbor = ctx.GetFunction("md_neighbor");
    NVBITFI_CHECK(forces != nullptr && integrate != nullptr && neighbor != nullptr);

    std::vector<float> x(kAtoms), v(kAtoms, 0.0f), f(kAtoms, 0.0f);
    for (std::uint32_t i = 0; i < kAtoms; ++i) {
      x[i] = static_cast<float>(i) * 0.8f +
             0.1f * static_cast<float>(std::sin(1.7 * static_cast<double>(i)));
    }
    // next[i] = i+1 within each 16-atom cell; the last atom of a cell ends
    // the list with the 0xffffffff sentinel.
    std::vector<std::uint32_t> next(kAtoms);
    for (std::uint32_t i = 0; i < kAtoms; ++i) {
      next[i] = (i % 16 == 15) ? 0xFFFFFFFFu : i + 1;
    }
    sim::DevPtr d_x = AllocAndUpload(ctx, x);
    sim::DevPtr d_v = AllocAndUpload(ctx, v);
    sim::DevPtr d_f = AllocAndUpload(ctx, f);
    sim::DevPtr d_next = AllocAndUploadU32(ctx, next);
    const std::vector<std::uint32_t> zero_counts(kAtoms, 0);
    sim::DevPtr d_count = AllocAndUploadU32(ctx, zero_counts);

    const sim::Dim3 grid{kAtoms / kBlock, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};
    for (int step = 0; step < kSteps; ++step) {
      if (step % 10 == 0) {
        const std::uint64_t params[] = {d_next, d_count, kAtoms};
        ctx.LaunchKernel(neighbor, grid, block, params);
      }
      {
        const std::uint64_t params[] = {d_x, d_f, kAtoms};
        ctx.LaunchKernel(forces, grid, block, params);
      }
      {
        const std::uint64_t params[] = {d_x, d_v, d_f, kAtoms, FloatParam(kDt)};
        ctx.LaunchKernel(integrate, grid, block, params);
      }
    }

    const std::vector<float> xf = Download(ctx, d_x, kAtoms);
    const std::vector<float> vf = Download(ctx, d_v, kAtoms);
    const std::vector<std::uint32_t> counts = DownloadU32(ctx, d_count, kAtoms);
    double energy = 0.0;
    std::uint64_t hops = 0;
    for (std::uint32_t i = 0; i < kAtoms; ++i) {
      energy += 0.5 * static_cast<double>(vf[i]) * vf[i];
      hops += counts[i];
    }

    art.stdout_text = Format("350.md: kinetic energy %.3e, neighbour hops %llu\n",
                             energy, static_cast<unsigned long long>(hops));
    AppendToOutput(&art, std::span<const float>(xf));
    AppendToOutput(&art, std::span<const float>(vf));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Md() {
  static const MdProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
