// 360.ilbdc — fluid mechanics proxy: a single fused lattice relaxation kernel
// with periodic boundary handling.  Table IV: 1 static kernel, 1,000 dynamic
// kernels (ping-pong time steps).
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/common.h"
#include "workloads/programs.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kN = 256;
constexpr std::uint32_t kBlock = 64;
constexpr int kSteps = 1000;

// out[i] = 0.9*in[i] + 0.05*(in[(i-1) mod n] + in[(i+1) mod n])
// params: 0=in, 1=out, 2=n
std::string RelaxKernel() {
  std::string s = ".kernel ilbdc_relax regs=24\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      // im = (i == 0) ? n-1 : i-1 ;  ip = (i == n-1) ? 0 : i+1
      "  IADD3 R4, R0, -1, RZ ;\n"
      "  IADD3 R6, R3, -1, RZ ;\n"
      "  ISETP.EQ.AND P1, PT, R0, RZ, PT ;\n"
      "  SEL R4, R6, R4, P1 ;\n"
      "  IADD3 R5, R0, 1, RZ ;\n"
      "  ISETP.EQ.AND P2, PT, R0, R6, PT ;\n"
      "  SEL R5, RZ, R5, P2 ;\n"
      // addresses
      "  MOV R8, c[0][0x160] ;\n"
      "  MOV R9, c[0][0x164] ;\n"
      "  IMAD.WIDE R10, R0, 0x4, R8 ;\n"
      "  IMAD.WIDE R12, R4, 0x4, R8 ;\n"
      "  IMAD.WIDE R14, R5, 0x4, R8 ;\n"
      "  LDG.E.32 R16, [R10] ;\n"
      "  LDG.E.32 R17, [R12] ;\n"
      "  LDG.E.32 R18, [R14] ;\n"
      "  FADD R19, R17, R18 ;\n";
  s += Format(
      "  FMUL R20, R16, %s ;\n"
      "  FFMA R20, R19, %s, R20 ;\n",
      FloatImm(0.9f).c_str(), FloatImm(0.05f).c_str());
  s +=
      "  MOV R8, c[0][0x168] ;\n"
      "  MOV R9, c[0][0x16c] ;\n"
      "  IMAD.WIDE R10, R0, 0x4, R8 ;\n"
      "  STG.E.32 [R10], R20 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

class IlbdcProgram final : public fi::TargetProgram {
 public:
  IlbdcProgram()
      : source_(RelaxKernel()), checker_(ToleranceChecker::Element::kFloat, 2e-3, 1e-7) {}

  std::string name() const override { return "360.ilbdc"; }
  std::string description() const override { return "Fluid mechanics"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* relax = ctx.GetFunction("ilbdc_relax");
    NVBITFI_CHECK(relax != nullptr);

    std::vector<float> init(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      init[i] = 1.0f + 0.25f * static_cast<float>(std::cos(0.13 * i));
    }
    sim::DevPtr a = AllocAndUpload(ctx, init);
    sim::DevPtr b = AllocAndUpload(ctx, init);

    const sim::Dim3 grid{kN / kBlock, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};
    for (int it = 0; it < kSteps; ++it) {
      const std::uint64_t params[] = {a, b, kN};
      ctx.LaunchKernel(relax, grid, block, params);
      std::swap(a, b);
    }

    const std::vector<float> field = Download(ctx, a, kN);
    double mass = 0.0;
    for (const float v : field) mass += v;

    art.stdout_text = Format("360.ilbdc: mass %.3e after %d steps\n", mass, kSteps);
    AppendToOutput(&art, std::span<const float>(field));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Ilbdc() {
  static const IlbdcProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
