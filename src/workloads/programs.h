// Factories for the hand-crafted proxy programs (the template-suite programs
// are instantiated directly in registry.cpp).  Each returns a process-
// lifetime singleton.
#pragma once

#include "core/target_program.h"

namespace nvbitfi::workloads {

const fi::TargetProgram& Ostencil();  // 303.ostencil — thermodynamics
const fi::TargetProgram& Olbm();      // 304.olbm — Lattice Boltzmann CFD
const fi::TargetProgram& Omriq();     // 314.omriq — medicine (MRI Q)
const fi::TargetProgram& Md();        // 350.md — molecular dynamics
const fi::TargetProgram& Ep();        // 352.ep — embarrassingly parallel
const fi::TargetProgram& Cg();        // 354.cg — conjugate gradient
const fi::TargetProgram& Ilbdc();     // 360.ilbdc — fluid mechanics

}  // namespace nvbitfi::workloads
