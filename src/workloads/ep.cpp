// 352.ep — embarrassingly parallel proxy (NAS EP): per-thread LCG random
// numbers, Box-Muller gaussians, an atomic histogram tally, and reductions.
// Table IV: 7 static kernels, 187 dynamic kernels (26 iterations x 7 + the
// first 5 kernels once more as an initial pass).
//
// Fault-study hooks: the host indexes a local array with a device-computed
// histogram argmax (a corrupted index is a simulated host crash / OS-detected
// DUE), and it verifies that the tally total matches the sample count (an
// application-specific check -> SDC when violated).
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/common.h"
#include "workloads/programs.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kSamplesPerIter = 256;
constexpr std::uint32_t kBlock = 64;
constexpr int kIterations = 26;
constexpr std::uint32_t kBins = 10;

// LCG step per thread.  params: 0=seeds(u32), 1=u(float), 2=n
std::string RngKernel() {
  std::string s = ".kernel ep_rng regs=20\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      "  MOV32I R9, 0x19660d ;\n"
      "  IMAD R8, R8, R9, RZ ;\n"
      "  IADD32I R8, R8, 0x3c6ef35f ;\n"
      "  STG.E.32 [R6], R8 ;\n"
      // u = (s >> 8) * 2^-24, strictly inside (0,1) after the +1 below
      "  SHR.U32 R10, R8, 0x8 ;\n"
      "  IADD3 R10, R10, 1, RZ ;\n"
      "  I2F R11, R10 ;\n";
  s += Format("  FMUL R11, R11, %s ;\n", FloatImm(0x1.0p-24f).c_str());
  s +=
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R11 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// Box-Muller: threads i < n/2 turn (u[2i], u[2i+1]) into two gaussians.
// params: 0=u, 1=g, 2=n
std::string BoxMullerKernel() {
  std::string s = ".kernel ep_boxmuller regs=32\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  SHR.U32 R3, R3, 0x1 ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  SHL R4, R0, 0x1 ;\n"  // 2i
      "  MOV R5, c[0][0x160] ;\n"
      "  MOV R6, c[0][0x164] ;\n"
      "  IMAD.WIDE R8, R4, 0x4, R5 ;\n"
      "  LDG.E.32 R10, [R8] ;\n"     // u1
      "  LDG.E.32 R11, [R8+4] ;\n";  // u2
  s += Format(
      "  MUFU.LG2 R12, R10 ;\n"
      "  FMUL R12, R12, %s ;\n"   // ln u1 = lg2(u1) * ln2; then * -2
      "  MUFU.SQRT R13, R12 ;\n"  // r = sqrt(-2 ln u1)
      "  FMUL R14, R11, %s ;\n"   // theta = 2 pi u2
      "  MUFU.COS R15, R14 ;\n"
      "  MUFU.SIN R16, R14 ;\n"
      "  FMUL R15, R13, R15 ;\n"
      "  FMUL R16, R13, R16 ;\n",
      FloatImm(-2.0f * 0.69314718f).c_str(), FloatImm(6.2831853f).c_str());
  s +=
      "  MOV R5, c[0][0x168] ;\n"
      "  MOV R6, c[0][0x16c] ;\n"
      "  IMAD.WIDE R8, R4, 0x4, R5 ;\n"
      "  STG.E.32 [R8], R15 ;\n"
      "  STG.E.32 [R8+4], R16 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// Histogram of |g| with atomic increments.  params: 0=g, 1=hist(u32), 2=n
std::string TallyKernel() {
  std::string s = ".kernel ep_tally regs=20\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      "  F2I R9, |R8| ;\n"  // bin = floor(|g|)
      "  MOV R10, 0x9 ;\n"
      "  IMNMX R9, R9, R10, PT ;\n"  // clamp to 9 (min with PT = min)
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R9, 0x4, R4 ;\n"
      "  MOV R11, 0x1 ;\n"
      "  RED.ADD [R6], R11 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// g2[i] = g[i]^2.  params: 0=g, 1=g2, 2=n
std::string SquareKernel() {
  std::string s = ".kernel ep_square regs=16\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      "  FMUL R8, R8, R8 ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R8 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// Single-thread argmax over the histogram.  params: 0=hist, 1=out(u32)
std::string MaxBinKernel() {
  std::string s = ".kernel ep_maxbin regs=24\n";
  s +=
      "  S2R R1, SR_TID.X ;\n"
      "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  MOV R8, RZ ;\n"   // best index
      "  MOV R9, RZ ;\n"   // best count
      "  MOV R10, RZ ;\n"  // k
      "mloop:\n"
      "  IMAD.WIDE R6, R10, 0x4, R4 ;\n"
      "  LDG.E.32 R11, [R6] ;\n"
      "  ISETP.GT.AND P1, PT, R11, R9, PT ;\n"
      "  SEL R9, R11, R9, P1 ;\n"
      "  SEL R8, R10, R8, P1 ;\n"
      "  IADD3 R10, R10, 1, RZ ;\n"
      "  ISETP.LT.AND P2, PT, R10, 0xa, PT ;\n"
      "  @P2 BRA mloop ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  STG.E.32 [R4], R8 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

class EpProgram final : public fi::TargetProgram {
 public:
  EpProgram()
      : source_(RngKernel() + BoxMullerKernel() + TallyKernel() + SquareKernel() +
                ReduceKernel("ep_sum") + ReduceKernel("ep_sumsq") + MaxBinKernel()),
        checker_(ToleranceChecker::Element::kFloat, 5e-3, 1e-5) {}

  std::string name() const override { return "352.ep"; }
  std::string description() const override { return "Embarrassingly parallel"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* rng = ctx.GetFunction("ep_rng");
    sim::Function* boxmuller = ctx.GetFunction("ep_boxmuller");
    sim::Function* tally = ctx.GetFunction("ep_tally");
    sim::Function* square = ctx.GetFunction("ep_square");
    sim::Function* sum = ctx.GetFunction("ep_sum");
    sim::Function* sumsq = ctx.GetFunction("ep_sumsq");
    sim::Function* maxbin = ctx.GetFunction("ep_maxbin");
    NVBITFI_CHECK(rng != nullptr && boxmuller != nullptr && tally != nullptr &&
                  square != nullptr && sum != nullptr && sumsq != nullptr &&
                  maxbin != nullptr);

    const std::uint32_t n = kSamplesPerIter;
    std::vector<std::uint32_t> seeds(n);
    for (std::uint32_t i = 0; i < n; ++i) seeds[i] = 0x9E3779B9u * (i + 1);
    sim::DevPtr d_seeds = AllocAndUploadU32(ctx, seeds);
    const std::vector<float> zeros(n, 0.0f);
    sim::DevPtr d_u = AllocAndUpload(ctx, zeros);
    sim::DevPtr d_g = AllocAndUpload(ctx, zeros);
    sim::DevPtr d_g2 = AllocAndUpload(ctx, zeros);
    const std::vector<std::uint32_t> zero_bins(kBins, 0);
    sim::DevPtr d_hist = AllocAndUploadU32(ctx, zero_bins);
    const std::vector<std::uint32_t> zero_one(1, 0);
    sim::DevPtr d_maxbin = AllocAndUploadU32(ctx, zero_one);
    constexpr std::uint32_t kGrid = kSamplesPerIter / kBlock;
    const std::vector<float> zero_partials(kGrid, 0.0f);
    sim::DevPtr d_sum = AllocAndUpload(ctx, zero_partials);
    sim::DevPtr d_sumsq = AllocAndUpload(ctx, zero_partials);

    const sim::Dim3 grid{kGrid, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};

    auto launch_roster = [&](int count) {
      // Kernel order: rng, boxmuller, tally, square, sum, sumsq, maxbin.
      if (count > 0) {
        const std::uint64_t p[] = {d_seeds, d_u, n};
        ctx.LaunchKernel(rng, grid, block, p);
      }
      if (count > 1) {
        const std::uint64_t p[] = {d_u, d_g, n};
        ctx.LaunchKernel(boxmuller, grid, block, p);
      }
      if (count > 2) {
        const std::uint64_t p[] = {d_g, d_hist, n};
        ctx.LaunchKernel(tally, grid, block, p);
      }
      if (count > 3) {
        const std::uint64_t p[] = {d_g, d_g2, n};
        ctx.LaunchKernel(square, grid, block, p);
      }
      if (count > 4) {
        const std::uint64_t p[] = {d_g, d_sum, n};
        ctx.LaunchKernel(sum, grid, block, p);
      }
      if (count > 5) {
        const std::uint64_t p[] = {d_g2, d_sumsq, n};
        ctx.LaunchKernel(sumsq, grid, block, p);
      }
      if (count > 6) {
        const std::uint64_t p[] = {d_hist, d_maxbin};
        ctx.LaunchKernel(maxbin, sim::Dim3{1, 1, 1}, sim::Dim3{32, 1, 1}, p);
      }
    };

    launch_roster(5);  // initial pass: first 5 kernels once
    for (int it = 0; it < kIterations; ++it) launch_roster(7);

    const std::vector<std::uint32_t> hist = DownloadU32(ctx, d_hist, kBins);
    const std::vector<std::uint32_t> argmax = DownloadU32(ctx, d_maxbin, 1);
    const std::vector<float> sums = Download(ctx, d_sum, kGrid);
    const std::vector<float> sumsqs = Download(ctx, d_sumsq, kGrid);

    // Simulated host crash: the histogram argmax indexes a fixed-size host
    // array.  A corrupted device value walks off the end (OS-detected DUE).
    double host_weights[kBins] = {};
    if (argmax[0] >= kBins) {
      art.crashed = true;
      return art;
    }
    host_weights[argmax[0]] += 1.0;

    // Application-specific check: every sample must have been tallied.
    std::uint64_t tallied = 0;
    for (const std::uint32_t c : hist) tallied += c;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kIterations + 1) * kSamplesPerIter;
    if (tallied != expected) art.app_check_failed = true;

    double mean = 0.0, meansq = 0.0;
    for (const float v : sums) mean += v;
    for (const float v : sumsqs) meansq += v;
    mean /= n;
    meansq /= n;

    art.stdout_text =
        Format("352.ep: mean %.4f, var %.4f, peak bin %u (weight %.0f)\n", mean,
               meansq - mean * mean, argmax[0], host_weights[argmax[0]]);
    AppendToOutput(&art, std::span<const float>(sums));
    AppendToOutput(&art, std::span<const float>(sumsqs));
    std::vector<float> hist_f(hist.begin(), hist.end());
    AppendToOutput(&art, std::span<const float>(hist_f));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Ep() {
  static const EpProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
