#include "workloads/template_suite.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::workloads {

TemplateSuiteProgram::TemplateSuiteProgram(TemplateSuiteConfig config)
    : config_(std::move(config)),
      checker_(ToleranceChecker::Element::kFloat, config_.rel_tol, 1e-7) {
  // Deterministic per-kernel coefficients; seeded by the program name so each
  // program's kernels are distinct but stable across runs.
  Rng rng(Rng::SeedFrom(0x5eed, config_.name));
  auto coef = [&rng](double lo, double hi) {
    return static_cast<float>(lo + (hi - lo) * rng.UniformUnit());
  };

  auto add = [this](KernelKind kind, const char* tag, int index, float c0, float c1,
                    std::string source) {
    KernelSpec spec;
    spec.kernel_name = Format("%s_%s_%02d", config_.name.substr(4).c_str(), tag, index);
    spec.kind = kind;
    spec.c0 = c0;
    spec.c1 = c1;
    module_source_ += source;
    roster_.push_back(std::move(spec));
  };

  for (int i = 0; i < config_.stencil_kernels; ++i) {
    const float c = coef(0.05, 0.24);  // diffusion-stable coefficients
    const std::string kernel_name =
        Format("%s_stencil_%02d", config_.name.substr(4).c_str(), i);
    add(KernelKind::kStencil, "stencil", i, c, 0.0f, StencilKernel(kernel_name, c, config_.n - 1));
  }
  for (int i = 0; i < config_.axpy_kernels; ++i) {
    const float a = coef(-0.02, 0.02);
    const std::string kernel_name =
        Format("%s_axpy_%02d", config_.name.substr(4).c_str(), i);
    add(KernelKind::kAxpy, "axpy", i, a, 0.0f, AxpyKernel(kernel_name, a));
  }
  for (int i = 0; i < config_.sweep_kernels; ++i) {
    const float c0 = coef(0.90, 0.99);
    const float c1 = 1.0f - c0;  // convex combination keeps values bounded
    const std::string kernel_name =
        Format("%s_sweep_%02d", config_.name.substr(4).c_str(), i);
    add(KernelKind::kSweep, "sweep", i, c0, c1, SweepKernel(kernel_name, c0, c1, config_.n - 1));
  }
  for (int i = 0; i < config_.scale_kernels; ++i) {
    const float a = coef(0.995, 1.004);
    const float b = coef(-0.001, 0.001);
    const std::string kernel_name =
        Format("%s_scale_%02d", config_.name.substr(4).c_str(), i);
    add(KernelKind::kScale, "scale", i, a, b, ScaleKernel(kernel_name, a, b));
  }
  for (int i = 0; i < config_.copy_kernels; ++i) {
    const std::string kernel_name =
        Format("%s_copy_%02d", config_.name.substr(4).c_str(), i);
    add(KernelKind::kCopy, "copy", i, 0.0f, 0.0f, CopyKernel(kernel_name));
  }
  for (int i = 0; i < config_.fp64_kernels; ++i) {
    const float c = coef(1e-6, 1e-4);
    const std::string kernel_name =
        Format("%s_fp64_%02d", config_.name.substr(4).c_str(), i);
    add(KernelKind::kFp64, "fp64", i, c, 0.0f, Fp64SquareAccumulateKernel(kernel_name));
  }

  NVBITFI_CHECK_MSG(static_cast<int>(roster_.size()) == config_.StaticKernels(),
                    "roster does not match configured kernel counts");
}

fi::RunArtifacts TemplateSuiteProgram::Run(sim::Context& ctx) const {
  fi::RunArtifacts art;

  sim::Module* module = nullptr;
  if (ctx.ModuleLoadText(module_source_, &module) != sim::CuResult::kSuccess) {
    art.stdout_text = config_.name + ": FATAL module load failed\n";
    art.exit_code = 2;
    return art;
  }

  const std::uint32_t n = config_.n;
  std::vector<float> init(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    init[i] = 0.5f + 0.4f * std::sin(0.37 * static_cast<double>(i));
  }
  std::vector<double> dinit(n);
  for (std::uint32_t i = 0; i < n; ++i) dinit[i] = 1.0 + 0.01 * i;

  sim::DevPtr cur = AllocAndUpload(ctx, init);
  sim::DevPtr alt = AllocAndUpload(ctx, init);
  sim::DevPtr d_in = 0, d_out = 0;
  if (config_.fp64_kernels > 0) {
    d_in = AllocAndUploadDouble(ctx, dinit);
    const std::vector<double> zeros(n, 0.0);
    d_out = AllocAndUploadDouble(ctx, zeros);
  }

  const sim::Dim3 block{config_.block, 1, 1};
  const sim::Dim3 grid{(n + config_.block - 1) / config_.block, 1, 1};

  auto launch_one = [&](const KernelSpec& spec) {
    sim::Function* fn = ctx.GetFunction(spec.kernel_name);
    NVBITFI_CHECK_MSG(fn != nullptr, "missing kernel " << spec.kernel_name);
    switch (spec.kind) {
      case KernelKind::kStencil: {
        const std::uint64_t params[] = {cur, alt, n};
        ctx.LaunchKernel(fn, grid, block, params);
        std::swap(cur, alt);
        break;
      }
      case KernelKind::kAxpy: {
        const std::uint64_t params[] = {alt, cur, n};
        ctx.LaunchKernel(fn, grid, block, params);
        break;
      }
      case KernelKind::kSweep: {
        const std::uint64_t stride = 1 + (spec.kernel_name.size() % 7);
        const std::uint64_t params[] = {cur, n, stride};
        ctx.LaunchKernel(fn, grid, block, params);
        break;
      }
      case KernelKind::kScale: {
        const std::uint64_t params[] = {cur, cur, n};
        ctx.LaunchKernel(fn, grid, block, params);
        break;
      }
      case KernelKind::kCopy: {
        const std::uint64_t params[] = {cur, alt, n};
        ctx.LaunchKernel(fn, grid, block, params);
        std::swap(cur, alt);
        break;
      }
      case KernelKind::kFp64: {
        const std::uint64_t params[] = {d_in,          d_out,
                                        n,             DoubleParam(spec.c0),
                                        DoubleParam(0.9995), DoubleParam(1e-7)};
        ctx.LaunchKernel(fn, grid, block, params);
        break;
      }
    }
  };

  // Extra prefix launches (initialisation pass), then the main iterations.
  for (int k = 0; k < config_.extra_prefix_launches; ++k) {
    launch_one(roster_[static_cast<std::size_t>(k)]);
  }
  for (int it = 0; it < config_.iterations; ++it) {
    for (const KernelSpec& spec : roster_) launch_one(spec);
  }

  // Read back and report.
  const std::vector<float> field = Download(ctx, cur, n);
  double checksum = 0.0;
  for (const float v : field) checksum += v;

  std::vector<float> fp64_as_float;
  if (config_.fp64_kernels > 0) {
    const std::vector<double> dfield = DownloadDouble(ctx, d_out, n);
    fp64_as_float.reserve(n);
    for (const double v : dfield) {
      fp64_as_float.push_back(static_cast<float>(v));
      checksum += v * 1e-3;
    }
  }

  if (config_.checks_cuda_errors && ctx.Synchronize() != sim::CuResult::kSuccess) {
    art.stdout_text = Format("%s: CUDA error: %s\n", config_.name.c_str(),
                             std::string(sim::CuResultName(ctx.Synchronize())).c_str());
    art.exit_code = 1;
    return art;
  }

  art.stdout_text =
      Format("%s: %d kernels, checksum %.3e\n", config_.name.c_str(),
             config_.DynamicKernels(), checksum);
  AppendToOutput(&art, std::span<const float>(field));
  AppendToOutput(&art, std::span<const float>(fp64_as_float));
  return art;
}

}  // namespace nvbitfi::workloads
