// Table IV registry: all 15 SpecACCEL proxies with their expected
// static/dynamic kernel counts.
#include "workloads/workloads.h"

#include "common/check.h"
#include "workloads/programs.h"
#include "workloads/template_suite.h"

namespace nvbitfi::workloads {
namespace {

const TemplateSuiteProgram& Palm() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "351.palm";
    c.description = "Large-eddy simulation, atmospheric turbulence";
    c.stencil_kernels = 25;
    c.axpy_kernels = 25;
    c.sweep_kernels = 20;
    c.scale_kernels = 20;
    c.fp64_kernels = 10;      // 100 static kernels
    c.iterations = 70;        // 70*100 + 50 = 7,050 dynamic
    c.extra_prefix_launches = 50;
    c.n = 128;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& Clvrleaf() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "353.clvrleaf";
    c.description = "Weather";
    c.stencil_kernels = 29;
    c.axpy_kernels = 29;
    c.sweep_kernels = 29;
    c.scale_kernels = 29;     // 116 static kernels
    c.iterations = 108;       // 108*116 = 12,528 dynamic
    c.n = 64;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& Seismic() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "355.seismic";
    c.description = "Seismic wave modeling";
    c.stencil_kernels = 8;
    c.sweep_kernels = 8;      // 16 static kernels
    c.iterations = 218;       // 218*16 + 14 = 3,502 dynamic
    c.extra_prefix_launches = 14;
    c.n = 128;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& Sp() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "356.sp";
    c.description = "Scalar Penta-diagonal solver";
    c.stencil_kernels = 18;
    c.axpy_kernels = 18;
    c.sweep_kernels = 18;
    c.scale_kernels = 17;     // 71 static kernels
    c.iterations = 390;       // 390*71 + 2 = 27,692 dynamic
    c.extra_prefix_launches = 2;
    c.n = 64;
    c.checks_cuda_errors = true;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& Csp() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "357.csp";
    c.description = "Scalar Penta-diagonal solver";
    c.stencil_kernels = 18;
    c.axpy_kernels = 17;
    c.sweep_kernels = 17;
    c.scale_kernels = 17;     // 69 static kernels
    c.iterations = 389;       // 389*69 + 49 = 26,890 dynamic
    c.extra_prefix_launches = 49;
    c.n = 64;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& MiniGhost() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "359.miniGhost";
    c.description = "Finite difference";
    c.stencil_kernels = 13;
    c.copy_kernels = 13;      // 26 static kernels (stencil + halo copies)
    c.iterations = 308;       // 308*26 + 2 = 8,010 dynamic
    c.extra_prefix_launches = 2;
    c.n = 128;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& Swim() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "363.swim";
    c.description = "Weather";
    c.stencil_kernels = 7;
    c.sweep_kernels = 7;
    c.axpy_kernels = 8;       // 22 static kernels
    c.iterations = 545;       // 545*22 + 9 = 11,999 dynamic
    c.extra_prefix_launches = 9;
    c.n = 128;
    c.checks_cuda_errors = true;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

const TemplateSuiteProgram& Bt() {
  static const TemplateSuiteProgram program([] {
    TemplateSuiteConfig c;
    c.name = "370.bt";
    c.description = "Block Tri-diagonal solver for 3D PDE";
    c.stencil_kernels = 17;
    c.sweep_kernels = 17;
    c.scale_kernels = 16;     // 50 static kernels
    c.iterations = 201;       // 201*50 + 19 = 10,069 dynamic
    c.extra_prefix_launches = 19;
    c.n = 64;
    c.rel_tol = 3e-3;
    return c;
  }());
  return program;
}

}  // namespace

const std::vector<WorkloadEntry>& AllWorkloads() {
  static const std::vector<WorkloadEntry>* entries = [] {
    auto* v = new std::vector<WorkloadEntry>{
        {&Ostencil(), "Thermodynamics", {2, 101}},
        {&Olbm(), "Computational fluid dynamics, Lattice Boltzmann Method", {3, 900}},
        {&Omriq(), "Medicine", {2, 2}},
        {&Md(), "Molecular dynamics", {3, 53}},
        {&Palm(), "Large-eddy simulation, atmospheric turbulence", {100, 7050}},
        {&Ep(), "Embarrassingly parallel", {7, 187}},
        {&Clvrleaf(), "Weather", {116, 12528}},
        {&Cg(), "Conjugate gradient", {22, 2027}},
        {&Seismic(), "Seismic wave modeling", {16, 3502}},
        {&Sp(), "Scalar Penta-diagonal solver", {71, 27692}},
        {&Csp(), "Scalar Penta-diagonal solver", {69, 26890}},
        {&MiniGhost(), "Finite difference", {26, 8010}},
        {&Ilbdc(), "Fluid mechanics", {1, 1000}},
        {&Swim(), "Weather", {22, 11999}},
        {&Bt(), "Block Tri-diagonal solver for 3D PDE", {50, 10069}},
    };
    // Config sanity: every template-suite program must match its Table IV row.
    for (const WorkloadEntry& e : *v) {
      if (const auto* suite = dynamic_cast<const TemplateSuiteProgram*>(e.program)) {
        NVBITFI_CHECK_MSG(suite->config().StaticKernels() == e.table4_counts.static_kernels &&
                              suite->config().DynamicKernels() == e.table4_counts.dynamic_kernels,
                          "Table IV mismatch for " << suite->name());
      }
    }
    return v;
  }();
  return *entries;
}

const fi::TargetProgram* FindWorkload(std::string_view name) {
  for (const WorkloadEntry& entry : AllWorkloads()) {
    if (entry.program->name() == name) return entry.program;
  }
  return nullptr;
}

}  // namespace nvbitfi::workloads
