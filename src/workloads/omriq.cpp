// 314.omriq — medicine proxy (MRI Q-matrix): per-point trigonometric
// accumulation over all k-space samples.  Table IV: 2 static kernels,
// 2 dynamic kernels (one launch each).
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/common.h"
#include "workloads/programs.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kPoints = 64;
constexpr std::uint32_t kSamples = 64;
constexpr std::uint32_t kBlock = 64;

// phiMag[k] = phiR[k]^2 + phiI[k]^2
// params: 0=phiR, 1=phiI, 2=phiMag, 3=K
std::string PhiMagKernel() {
  std::string s = ".kernel mriq_phimag regs=16\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x178] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R9, [R6] ;\n"
      "  FMUL R10, R8, R8 ;\n"
      "  FFMA R10, R9, R9, R10 ;\n"
      "  MOV R4, c[0][0x170] ;\n"
      "  MOV R5, c[0][0x174] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R10 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// Qr[i] = sum_k phiMag[k]*cos(2*pi*kx[k]*x[i]);  Qi[i] likewise with sin.
// params: 0=x, 1=kx, 2=phiMag, 3=Qr, 4=Qi, 5=n, 6=K
std::string ComputeQKernel() {
  std::string s = ".kernel mriq_computeq regs=32\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x188] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      // x[i] -> R8
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      // accumulators and loop counter
      "  MOV R20, RZ ;\n"  // acc_r
      "  MOV R21, RZ ;\n"  // acc_i
      "  MOV R22, RZ ;\n"  // k
      "  MOV R23, c[0][0x190] ;\n"  // K
      "qloop:\n"
      // kx[k] -> R10, phiMag[k] -> R11
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R22, 0x4, R4 ;\n"
      "  LDG.E.32 R10, [R6] ;\n"
      "  MOV R4, c[0][0x170] ;\n"
      "  MOV R5, c[0][0x174] ;\n"
      "  IMAD.WIDE R6, R22, 0x4, R4 ;\n"
      "  LDG.E.32 R11, [R6] ;\n";
  s += Format(
      "  FMUL R12, R10, R8 ;\n"
      "  FMUL R12, R12, %s ;\n"  // angle = 2*pi*kx*x
      "  MUFU.COS R13, R12 ;\n"
      "  MUFU.SIN R14, R12 ;\n"
      "  FFMA R20, R11, R13, R20 ;\n"
      "  FFMA R21, R11, R14, R21 ;\n",
      FloatImm(6.2831853f).c_str());
  s +=
      "  IADD3 R22, R22, 1, RZ ;\n"
      "  ISETP.LT.AND P1, PT, R22, R23, PT ;\n"
      "  @P1 BRA qloop ;\n"
      // store Qr, Qi
      "  MOV R4, c[0][0x178] ;\n"
      "  MOV R5, c[0][0x17c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R20 ;\n"
      "  MOV R4, c[0][0x180] ;\n"
      "  MOV R5, c[0][0x184] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R21 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

class OmriqProgram final : public fi::TargetProgram {
 public:
  OmriqProgram()
      : source_(PhiMagKernel() + ComputeQKernel()),
        checker_(ToleranceChecker::Element::kFloat, 8e-3, 1e-5) {}

  std::string name() const override { return "314.omriq"; }
  std::string description() const override { return "Medicine"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* phimag = ctx.GetFunction("mriq_phimag");
    sim::Function* computeq = ctx.GetFunction("mriq_computeq");
    NVBITFI_CHECK(phimag != nullptr && computeq != nullptr);

    std::vector<float> x(kPoints), kx(kSamples), phiR(kSamples), phiI(kSamples);
    for (std::uint32_t i = 0; i < kPoints; ++i) x[i] = 0.01f * static_cast<float>(i);
    for (std::uint32_t k = 0; k < kSamples; ++k) {
      kx[k] = 0.5f + 0.03f * static_cast<float>(k);
      phiR[k] = std::cos(0.21f * static_cast<float>(k));
      phiI[k] = std::sin(0.17f * static_cast<float>(k));
    }
    const std::vector<float> zeros_points(kPoints, 0.0f);
    const std::vector<float> zeros_samples(kSamples, 0.0f);
    sim::DevPtr d_x = AllocAndUpload(ctx, x);
    sim::DevPtr d_kx = AllocAndUpload(ctx, kx);
    sim::DevPtr d_phiR = AllocAndUpload(ctx, phiR);
    sim::DevPtr d_phiI = AllocAndUpload(ctx, phiI);
    sim::DevPtr d_phiMag = AllocAndUpload(ctx, zeros_samples);
    sim::DevPtr d_Qr = AllocAndUpload(ctx, zeros_points);
    sim::DevPtr d_Qi = AllocAndUpload(ctx, zeros_points);

    const sim::Dim3 grid{1, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};
    {
      const std::uint64_t params[] = {d_phiR, d_phiI, d_phiMag, kSamples};
      ctx.LaunchKernel(phimag, grid, block, params);
    }
    {
      const std::uint64_t params[] = {d_x, d_kx, d_phiMag, d_Qr, d_Qi, kPoints, kSamples};
      ctx.LaunchKernel(computeq, grid, block, params);
    }

    const std::vector<float> qr = Download(ctx, d_Qr, kPoints);
    const std::vector<float> qi = Download(ctx, d_Qi, kPoints);
    double norm = 0.0;
    for (std::uint32_t i = 0; i < kPoints; ++i) {
      norm += static_cast<double>(qr[i]) * qr[i] + static_cast<double>(qi[i]) * qi[i];
    }

    art.stdout_text = Format("314.omriq: |Q|^2 = %.2e over %u points\n", norm, kPoints);
    AppendToOutput(&art, std::span<const float>(qr));
    AppendToOutput(&art, std::span<const float>(qi));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Omriq() {
  static const OmriqProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
