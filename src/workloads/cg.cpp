// 354.cg — conjugate gradient proxy on a tridiagonal SPD system, with the
// classic host-device coupling: dot products are reduced on the device,
// downloaded, and the scalars alpha/beta are passed back into the update
// kernels as launch parameters.  Table IV: 22 static kernels, 2,027 dynamic
// kernels (92 iterations x 22 + the first 3 kernels as an initial residual
// pass).  Like most of the suite, the host never checks CUDA errors — device
// traps surface as potential DUEs; the host-device scalar coupling means a
// trap mid-solve silently poisons alpha/beta (classic SDC propagation).
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/common.h"
#include "workloads/programs.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kN = 64;
constexpr std::uint32_t kBlock = 64;
constexpr int kIterations = 92;
constexpr int kPrecondKernels = 14;

// Ap[i] = 2.02*p[i] - p[i-1] - p[i+1] (tridiagonal SPD).
// params: 0=p, 1=Ap, 2=n
std::string MatvecKernel() {
  std::string s = ".kernel cg_matvec regs=28\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"  // p[i]
      "  MOV R9, RZ ;\n"
      "  MOV R10, RZ ;\n"
      "  ISETP.EQ.AND P1, PT, R0, RZ, PT ;\n"
      "  @!P1 LDG.E.32 R9, [R6+-4] ;\n"
      "  IADD3 R11, R3, -1, RZ ;\n"
      "  ISETP.EQ.AND P2, PT, R0, R11, PT ;\n"
      "  @!P2 LDG.E.32 R10, [R6+4] ;\n";
  s += Format(
      "  FMUL R12, R8, %s ;\n"
      "  FADD R12, R12, -R9 ;\n"
      "  FADD R12, R12, -R10 ;\n",
      FloatImm(2.02f).c_str());
  s +=
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R12 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// out[i] = a[i]*b[i].  params: 0=a, 1=b, 2=out, 3=n
std::string ProductKernel(const std::string& name) {
  std::string s = Format(".kernel %s regs=20\n", name.c_str());
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x178] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R9, [R6] ;\n"
      "  FMUL R10, R8, R9 ;\n"
      "  MOV R4, c[0][0x170] ;\n"
      "  MOV R5, c[0][0x174] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  STG.E.32 [R6], R10 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// y[i] += a * x[i], a passed at launch time.  params: 0=x, 1=y, 2=n, 3=a
std::string AxpyParamKernel(const std::string& name) {
  std::string s = Format(".kernel %s regs=20\n", name.c_str());
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R9, [R6] ;\n"
      "  MOV R10, c[0][0x178] ;\n"
      "  FFMA R9, R8, R10, R9 ;\n"
      "  STG.E.32 [R6], R9 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

// p[i] = r[i] + b * p[i], b passed at launch time.  params: 0=r, 1=p, 2=n, 3=b
std::string XpayParamKernel(const std::string& name) {
  std::string s = Format(".kernel %s regs=20\n", name.c_str());
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R8, [R6] ;\n"  // r
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  LDG.E.32 R9, [R6] ;\n"  // p
      "  MOV R10, c[0][0x178] ;\n"
      "  FFMA R9, R9, R10, R8 ;\n"
      "  STG.E.32 [R6], R9 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

class CgProgram final : public fi::TargetProgram {
 public:
  CgProgram() : checker_(ToleranceChecker::Element::kFloat, 1e-3, 1e-5) {
    source_ = MatvecKernel();
    source_ += ProductKernel("cg_sq_rr");
    source_ += ReduceKernel("cg_reduce_rr");
    source_ += ProductKernel("cg_mul_pap");
    source_ += ReduceKernel("cg_reduce_pap");
    source_ += AxpyParamKernel("cg_axpy_x");
    source_ += AxpyParamKernel("cg_axpy_r");
    source_ += XpayParamKernel("cg_xpay_p");
    // Jacobi-smoother preconditioner stages (generated variants).
    for (int i = 0; i < kPrecondKernels; ++i) {
      const float a = 0.97f + 0.002f * static_cast<float>(i);
      source_ += ScaleKernel(Format("cg_precond_%02d", i), a, 1e-4f);
    }
  }

  std::string name() const override { return "354.cg"; }
  std::string description() const override { return "Conjugate gradient"; }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    auto fn = [&](const char* fn_name) {
      sim::Function* f = ctx.GetFunction(fn_name);
      NVBITFI_CHECK_MSG(f != nullptr, "missing kernel " << fn_name);
      return f;
    };
    sim::Function* matvec = fn("cg_matvec");
    sim::Function* sq_rr = fn("cg_sq_rr");
    sim::Function* reduce_rr = fn("cg_reduce_rr");
    sim::Function* mul_pap = fn("cg_mul_pap");
    sim::Function* reduce_pap = fn("cg_reduce_pap");
    sim::Function* axpy_x = fn("cg_axpy_x");
    sim::Function* axpy_r = fn("cg_axpy_r");
    sim::Function* xpay_p = fn("cg_xpay_p");
    std::vector<sim::Function*> precond;
    for (int i = 0; i < kPrecondKernels; ++i) {
      precond.push_back(fn(Format("cg_precond_%02d", i).c_str()));
    }

    // b is a smooth right-hand side; x starts at zero so r = b, p = r.
    std::vector<float> b(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      b[i] = static_cast<float>(std::sin(0.11 * (i + 1)));
    }
    const std::vector<float> zeros(kN, 0.0f);
    sim::DevPtr d_x = AllocAndUpload(ctx, zeros);
    sim::DevPtr d_r = AllocAndUpload(ctx, b);
    sim::DevPtr d_p = AllocAndUpload(ctx, b);
    sim::DevPtr d_Ap = AllocAndUpload(ctx, zeros);
    sim::DevPtr d_tmp = AllocAndUpload(ctx, zeros);
    constexpr std::uint32_t kGrid = kN / kBlock;
    const std::vector<float> zpart(kGrid, 0.0f);
    sim::DevPtr d_part_rr = AllocAndUpload(ctx, zpart);
    sim::DevPtr d_part_pap = AllocAndUpload(ctx, zpart);

    const sim::Dim3 grid{kGrid, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};

    auto dot = [&](sim::DevPtr partials) {
      const std::vector<float> parts = Download(ctx, partials, kGrid);
      double total = 0.0;
      for (const float v : parts) total += v;
      return total;
    };

    // Initial pass: the first 3 kernels once (residual norm of r = b).
    {
      const std::uint64_t pm[] = {d_p, d_Ap, kN};
      ctx.LaunchKernel(matvec, grid, block, pm);
      const std::uint64_t ps[] = {d_r, d_r, d_tmp, kN};
      ctx.LaunchKernel(sq_rr, grid, block, ps);
      const std::uint64_t pr[] = {d_tmp, d_part_rr, kN};
      ctx.LaunchKernel(reduce_rr, grid, block, pr);
    }
    double rr = dot(d_part_rr);
    const double rr0 = rr;

    for (int it = 0; it < kIterations; ++it) {
      {
        const std::uint64_t p[] = {d_p, d_Ap, kN};
        ctx.LaunchKernel(matvec, grid, block, p);
      }
      {
        const std::uint64_t p[] = {d_r, d_r, d_tmp, kN};
        ctx.LaunchKernel(sq_rr, grid, block, p);
      }
      {
        const std::uint64_t p[] = {d_tmp, d_part_rr, kN};
        ctx.LaunchKernel(reduce_rr, grid, block, p);
      }
      {
        const std::uint64_t p[] = {d_p, d_Ap, d_tmp, kN};
        ctx.LaunchKernel(mul_pap, grid, block, p);
      }
      {
        const std::uint64_t p[] = {d_tmp, d_part_pap, kN};
        ctx.LaunchKernel(reduce_pap, grid, block, p);
      }
      const double rr_new = dot(d_part_rr);
      const double pap = dot(d_part_pap);
      // Once the solve converges, rr and pAp underflow toward zero; guard the
      // scalars the way production CG codes do.
      double alpha = std::abs(pap) > 1e-20 ? rr_new / pap : 0.0;
      if (!std::isfinite(alpha) || std::abs(alpha) > 1e6) alpha = 0.0;
      double beta = rr > 1e-20 ? rr_new / rr : 0.0;
      if (!std::isfinite(beta) || std::abs(beta) > 1e6) beta = 0.0;
      rr = rr_new;
      {
        const std::uint64_t p[] = {d_p, d_x, kN, FloatParam(static_cast<float>(alpha))};
        ctx.LaunchKernel(axpy_x, grid, block, p);
      }
      {
        const std::uint64_t p[] = {d_Ap, d_r, kN, FloatParam(static_cast<float>(-alpha))};
        ctx.LaunchKernel(axpy_r, grid, block, p);
      }
      {
        const std::uint64_t p[] = {d_r, d_p, kN, FloatParam(static_cast<float>(beta))};
        ctx.LaunchKernel(xpay_p, grid, block, p);
      }
      // Smoother stages run on the scratch vector: they model the
      // preconditioner pipeline's kernel traffic without perturbing the CG
      // recurrence (repeated damping of p itself drives pAp into denormals).
      for (sim::Function* pk : precond) {
        const std::uint64_t p[] = {d_tmp, d_tmp, kN};
        ctx.LaunchKernel(pk, grid, block, p);
      }
    }

    const std::vector<float> x = Download(ctx, d_x, kN);
    double xnorm = 0.0;
    for (const float v : x) xnorm += static_cast<double>(v) * v;

    const bool converged = rr0 != 0.0 && std::isfinite(rr) && rr / rr0 < 1e-6;
    art.stdout_text = Format("354.cg: |x|^2 %.3e, converged %d\n", xnorm,
                             converged ? 1 : 0);
    AppendToOutput(&art, std::span<const float>(x));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Cg() {
  static const CgProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
