// Engine for the proxy programs composed of many similar small kernels
// (351.palm, 353.clvrleaf, 355.seismic, 356.sp, 357.csp, 359.miniGhost,
// 363.swim, 370.bt).  The real SpecACCEL codes contain dozens to hundreds of
// compiler-generated OpenACC kernels that are structurally similar; we model
// them as template-instantiated kernels with per-kernel coefficients, which
// preserves what matters for fault injection: the static/dynamic kernel
// structure and the instruction mix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/target_program.h"
#include "workloads/common.h"

namespace nvbitfi::workloads {

enum class KernelKind : std::uint8_t {
  kStencil,  // (in, out, n), ping-pongs the float buffers
  kAxpy,     // (alt, cur, n): cur += a * alt
  kSweep,    // (cur, n, stride): periodic two-point recombination in place
  kScale,    // (cur, cur, n): affine update in place
  kCopy,     // (cur, alt, n), ping-pongs
  kFp64,     // (d_in, d_out, n, c): double-precision accumulation
};

struct TemplateSuiteConfig {
  std::string name;               // e.g. "351.palm"
  std::string description;
  // Kernel roster: kind counts, instantiated as <prog>_<kind>_<idx> with
  // deterministic per-kernel coefficients derived from `name`.
  int stencil_kernels = 0;
  int axpy_kernels = 0;
  int sweep_kernels = 0;
  int scale_kernels = 0;
  int copy_kernels = 0;
  int fp64_kernels = 0;
  // Dynamic schedule: `iterations` rounds launching every kernel once, plus
  // one extra leading launch of the first `extra_prefix_launches` kernels.
  int iterations = 1;
  int extra_prefix_launches = 0;
  // Data size and launch geometry.
  std::uint32_t n = 64;
  std::uint32_t block = 32;
  // Host discipline: check the sticky CUDA error at the end (exit 1)?
  bool checks_cuda_errors = false;
  // SDC-check tolerance (relative).
  double rel_tol = 1e-4;

  int StaticKernels() const {
    return stencil_kernels + axpy_kernels + sweep_kernels + scale_kernels +
           copy_kernels + fp64_kernels;
  }
  int DynamicKernels() const {
    return iterations * StaticKernels() + extra_prefix_launches;
  }
};

class TemplateSuiteProgram final : public fi::TargetProgram {
 public:
  explicit TemplateSuiteProgram(TemplateSuiteConfig config);

  std::string name() const override { return config_.name; }
  std::string description() const override { return config_.description; }
  fi::RunArtifacts Run(sim::Context& context) const override;
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  const TemplateSuiteConfig& config() const { return config_; }

 private:
  struct KernelSpec {
    std::string kernel_name;
    KernelKind kind;
    float c0 = 0.0f;
    float c1 = 0.0f;
  };

  TemplateSuiteConfig config_;
  std::string module_source_;
  std::vector<KernelSpec> roster_;
  ToleranceChecker checker_;
};

}  // namespace nvbitfi::workloads
