#include "workloads/common.h"

#include <cmath>
#include <cstring>

#include "common/bitutil.h"
#include "common/strings.h"

namespace nvbitfi::workloads {

namespace {

template <typename T>
sim::DevPtr AllocAndUploadT(sim::Context& ctx, std::span<const T> data) {
  sim::DevPtr ptr = 0;
  if (ctx.MemAlloc(&ptr, data.size_bytes()) != sim::CuResult::kSuccess) return 0;
  ctx.MemcpyHtoD(ptr, data.data(), data.size_bytes());
  return ptr;
}

template <typename T>
std::vector<T> DownloadT(sim::Context& ctx, sim::DevPtr ptr, std::size_t count) {
  std::vector<T> out(count, T{});
  ctx.MemcpyDtoH(out.data(), ptr, count * sizeof(T));
  return out;
}

template <typename T>
void AppendToOutputT(fi::RunArtifacts* artifacts, std::span<const T> values) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
  artifacts->output_file.insert(artifacts->output_file.end(), bytes,
                                bytes + values.size_bytes());
}

template <typename T>
bool ToleranceDiff(const std::vector<std::uint8_t>& golden,
                   const std::vector<std::uint8_t>& run, double rel_tol,
                   double abs_tol) {
  if (golden.size() != run.size() || golden.size() % sizeof(T) != 0) return true;
  const std::size_t count = golden.size() / sizeof(T);
  for (std::size_t i = 0; i < count; ++i) {
    T a{}, b{};
    std::memcpy(&a, golden.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, run.data() + i * sizeof(T), sizeof(T));
    const double da = static_cast<double>(a);
    const double db = static_cast<double>(b);
    if (std::isnan(da) != std::isnan(db)) return true;
    if (std::isnan(da)) continue;
    if (std::abs(da - db) > abs_tol + rel_tol * std::abs(da)) return true;
  }
  return false;
}

}  // namespace

sim::DevPtr AllocAndUpload(sim::Context& ctx, std::span<const float> data) {
  return AllocAndUploadT(ctx, data);
}
sim::DevPtr AllocAndUploadDouble(sim::Context& ctx, std::span<const double> data) {
  return AllocAndUploadT(ctx, data);
}
sim::DevPtr AllocAndUploadU32(sim::Context& ctx, std::span<const std::uint32_t> data) {
  return AllocAndUploadT(ctx, data);
}

std::vector<float> Download(sim::Context& ctx, sim::DevPtr ptr, std::size_t count) {
  return DownloadT<float>(ctx, ptr, count);
}
std::vector<double> DownloadDouble(sim::Context& ctx, sim::DevPtr ptr, std::size_t count) {
  return DownloadT<double>(ctx, ptr, count);
}
std::vector<std::uint32_t> DownloadU32(sim::Context& ctx, sim::DevPtr ptr,
                                       std::size_t count) {
  return DownloadT<std::uint32_t>(ctx, ptr, count);
}

void AppendToOutput(fi::RunArtifacts* artifacts, std::span<const float> values) {
  AppendToOutputT(artifacts, values);
}
void AppendToOutput(fi::RunArtifacts* artifacts, std::span<const double> values) {
  AppendToOutputT(artifacts, values);
}

std::string FloatImm(float value) { return Format("0x%08x", FloatToBits(value)); }

std::uint64_t FloatParam(float value) { return FloatToBits(value); }
std::uint64_t DoubleParam(double value) { return DoubleToBits(value); }

bool ToleranceChecker::IsSdc(const fi::RunArtifacts& golden,
                             const fi::RunArtifacts& run) const {
  if (golden.stdout_text != run.stdout_text) return true;
  if (element_ == Element::kFloat) {
    return ToleranceDiff<float>(golden.output_file, run.output_file, rel_tol_, abs_tol_);
  }
  return ToleranceDiff<double>(golden.output_file, run.output_file, rel_tol_, abs_tol_);
}

// ---- kernel templates --------------------------------------------------------
//
// All templates share the same prologue: compute the global thread id and
// bounds-check it against the n parameter.  Pointer parameters are fetched
// with a single LDC.64 (as the real compiler does) and the bodies carry a
// realistic amount of floating-point work per address computation, so the
// injectable-instruction population is dominated by data computation rather
// than addressing.

namespace {

// gid in R0 (fusing the blockDim constant into the IMAD), then exits
// out-of-range threads.  Leaves n in R3.
std::string GidAndBounds(std::uint32_t n_param_offset) {
  return Format(
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  IMAD R0, R0, c[0][0x0], R1 ;\n"
      "  MOV R3, c[0][0x%x] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n",
      n_param_offset);
}

// Computes &ptr_param[gid * elem_size] into the pair Rd:Rd+1 using a scratch
// pair Rd+2:Rd+3 for the pointer itself.
std::string AddressOf(int rd, std::uint32_t ptr_param_offset, int elem_size) {
  return Format(
      "  LDC.64 R%d, c[0][0x%x] ;\n"
      "  IMAD.WIDE R%d, R0, 0x%x, R%d ;\n",
      rd + 2, ptr_param_offset, rd, elem_size, rd + 2);
}

}  // namespace

std::string StencilKernel(const std::string& name, float coefficient,
                          std::uint32_t n_mask) {
  // Five-point smoothing: out = c + k*(lap1 + 0.25*lap2), with lap1 the
  // nearest-neighbour Laplacian and lap2 the 2-hop one.
  std::string s = Format(".kernel %s regs=32\n", name.c_str());
  s += GidAndBounds(0x170);
  // Interior only: 2 <= gid < n-2.
  s +=
      "  ISETP.LT.AND P0, PT, R0, 0x2, PT ;\n"
      "  IADD3 R4, R3, -2, RZ ;\n"
      "  ISETP.GE.OR P0, PT, R0, R4, P0 ;\n"
      "  @P0 EXIT ;\n";
  s += AddressOf(8, 0x160, 4);  // &in[gid] -> R8:R9, in -> R10:R11
  // Neighbour addressing the way the periodic-boundary codes spell it:
  // wrapped index arithmetic (j = (gid+d) & (n-1)) rather than constant
  // offsets off the centre address.  The interior guard above makes every
  // wrap an identity, so the loaded values are exactly the same.
  s += Format(
      "  IADD3 R5, R0, -1, RZ ;\n"
      "  LOP32I.AND R5, R5, 0x%x ;\n"
      "  IADD3 R6, R0, 1, RZ ;\n"
      "  LOP32I.AND R6, R6, 0x%x ;\n"
      "  IMAD.WIDE R28, R5, 0x4, R10 ;\n"
      "  IMAD.WIDE R30, R6, 0x4, R10 ;\n"
      "  LDG.E.32 R17, [R28] ;\n"
      "  LDG.E.32 R19, [R30] ;\n"
      "  IADD3 R5, R0, -2, RZ ;\n"
      "  LOP32I.AND R5, R5, 0x%x ;\n"
      "  IADD3 R6, R0, 2, RZ ;\n"
      "  LOP32I.AND R6, R6, 0x%x ;\n"
      "  IMAD.WIDE R28, R5, 0x4, R10 ;\n"
      "  IMAD.WIDE R30, R6, 0x4, R10 ;\n"
      "  LDG.E.32 R16, [R28] ;\n"
      "  LDG.E.32 R20, [R30] ;\n",
      n_mask, n_mask, n_mask, n_mask);
  s += Format(
      "  LDG.E.32 R18, [R8] ;\n"
      "  FADD R21, R17, R19 ;\n"
      "  FADD R22, R16, R20 ;\n"
      "  FFMA R23, R18, %s, R21 ;\n"  // lap1 = near - 2c
      "  FFMA R24, R18, %s, R22 ;\n"  // lap2 = far - 2c
      "  FFMA R25, R24, %s, R23 ;\n"   // lap = lap1 + 0.25*lap2
      "  FFMA R26, R25, %s, R18 ;\n"   // out = c + k*lap
      "  MOV32I R27, %s ;\n"
      "  FMNMX R26, R26, R27, PT ;\n"  // clamp to +limit (min)
      "  FMNMX R26, R26, -R27, !PT ;\n",  // clamp to -limit (max)
      FloatImm(-2.0f).c_str(), FloatImm(-2.0f).c_str(), FloatImm(0.25f).c_str(),
      FloatImm(coefficient).c_str(), FloatImm(100.0f).c_str());
  s += AddressOf(12, 0x168, 4);  // &out[gid] -> R12:R13
  s +=
      "  STG.E.32 [R12], R26 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

std::string AxpyKernel(const std::string& name, float a) {
  // y += a * x * (1 + (a/4) x): an affine update with a quadratic correction.
  std::string s = Format(".kernel %s regs=24\n", name.c_str());
  s += GidAndBounds(0x170);
  s += AddressOf(8, 0x160, 4);   // &x[gid]
  s += AddressOf(12, 0x168, 4);  // &y[gid]
  s += Format(
      "  LDG.E.32 R16, [R8] ;\n"
      "  LDG.E.32 R17, [R12] ;\n"
      "  FMUL R18, R16, %s ;\n"
      "  FFMA R19, R18, R16, R16 ;\n"   // x + (a/4) x^2
      "  FFMA R17, R19, %s, R17 ;\n"    // y += a * (...)
      "  FSETP.GT.AND P1, PT, |R17|, %s, PT ;\n"  // runaway guard
      "  FMUL R20, R17, %s ;\n"
      "  FSEL R17, R20, R17, P1 ;\n"    // damp if |y| grew too large
      "  STG.E.32 [R12], R17 ;\n"
      "  EXIT ;\n",
      FloatImm(a * 0.25f).c_str(), FloatImm(a).c_str(), FloatImm(10.0f).c_str(),
      FloatImm(0.5f).c_str());
  s += ".endkernel\n";
  return s;
}

std::string ScaleKernel(const std::string& name, float a, float b) {
  // out = a*v + b + 0.004*v^2*(1 - v): bounded cubic relaxation.
  std::string s = Format(".kernel %s regs=24\n", name.c_str());
  s += GidAndBounds(0x170);
  s += AddressOf(8, 0x160, 4);
  s += Format(
      "  LDG.E.32 R16, [R8] ;\n"
      "  FMUL R17, R16, R16 ;\n"
      "  FADD R18, -R16, %s ;\n"      // 1 - v
      "  FMUL R19, R17, R18 ;\n"
      "  MOV32I R20, %s ;\n"
      "  FFMA R20, R16, %s, R20 ;\n"  // a*v + b
      "  FFMA R20, R19, %s, R20 ;\n"  // + 0.004 v^2 (1-v)
      // Quantised correction term: q = trunc(v * 64) adds conversion
      // traffic (F2I/I2F) like the table-lookup codes this models.
      "  FMUL R21, R16, %s ;\n"
      "  F2I R22, R21 ;\n"
      "  I2F R23, R22 ;\n"
      "  FFMA R20, R23, %s, R20 ;\n",
      FloatImm(1.0f).c_str(), FloatImm(b).c_str(), FloatImm(a).c_str(),
      FloatImm(0.004f).c_str(), FloatImm(64.0f).c_str(), FloatImm(1e-6f).c_str());
  s += AddressOf(12, 0x168, 4);
  s +=
      "  STG.E.32 [R12], R20 ;\n"
      "  EXIT ;\n"
      ".endkernel\n";
  return s;
}

std::string CopyKernel(const std::string& name) {
  std::string s = Format(".kernel %s regs=16\n", name.c_str());
  s += GidAndBounds(0x170);
  s += AddressOf(8, 0x160, 4);
  s += AddressOf(12, 0x168, 4);
  s +=
      "  LDG.E.32 R16, [R8] ;\n"
      // Byte-level repack (identity permutation): halo-exchange codes shuffle
      // bytes through PRMT when repacking strided buffers.
      "  PRMT R16, R16, 0x3210, RZ ;\n"
      "  STG.E.32 [R12], R16 ;\n"
      "  EXIT ;\n";
  s += ".endkernel\n";
  return s;
}

std::string SweepKernel(const std::string& name, float c0, float c1,
                        std::uint32_t n_mask) {
  // data[i] = c0*v + c1*w + 0.01*(v*w - v), v = data[i], w = data[i+stride].
  std::string s = Format(".kernel %s regs=28\n", name.c_str());
  s += GidAndBounds(0x168);  // params: 0=data, 1=n, 2=stride
  s += Format(
      "  IADD3 R5, R0, c[0][0x170], RZ ;\n"  // j = gid + stride
      "  LOP32I.AND R5, R5, 0x%x ;\n",  // periodic wrap (n is a power of two)
      n_mask);
  s += AddressOf(8, 0x160, 4);  // &data[gid] (pointer pair also in R10:R11)
  s += Format(
      "  IMAD.WIDE R12, R5, 0x4, R10 ;\n"  // &data[j]
      "  LDG.E.32 R16, [R8] ;\n"
      "  LDG.E.32 R17, [R12] ;\n"
      "  FMUL R18, R16, %s ;\n"
      "  FFMA R18, R17, %s, R18 ;\n"       // c0 v + c1 w
      "  FMUL R19, R16, R17 ;\n"
      "  FADD R19, R19, -R16 ;\n"          // v w - v
      "  FFMA R18, R19, %s, R18 ;\n"
      "  STG.E.32 [R8], R18 ;\n"
      "  EXIT ;\n",
      FloatImm(c0).c_str(), FloatImm(c1).c_str(), FloatImm(0.01f).c_str());
  s += ".endkernel\n";
  return s;
}

std::string Fp64SquareAccumulateKernel(const std::string& name) {
  // out = 0.9995*out + c*in^2 + 1e-7*in: double-precision relaxation.
  std::string s = Format(".kernel %s regs=36\n", name.c_str());
  s += GidAndBounds(0x170);
  s += AddressOf(8, 0x160, 8);   // &in[gid] (double)
  s += AddressOf(12, 0x168, 8);  // &out[gid] (double)
  s +=
      "  LDG.E.64 R16, [R8] ;\n"          // in[gid] -> R16:R17
      "  LDG.E.64 R18, [R12] ;\n"         // out[gid] -> R18:R19
      "  DMUL R20, R16, R16 ;\n"          // in^2
      "  DMUL R20, R20, c[0][0x178] ;\n"  // c * in^2
      "  DMUL R22, R18, c[0][0x180] ;\n"  // 0.9995 * out
      "  DADD R22, R22, R20 ;\n"
      "  DFMA R22, R16, c[0][0x188], R22 ;\n"  // + 1e-7 * in
      "  STG.E.64 [R12], R22 ;\n"
      "  EXIT ;\n";
  s += ".endkernel\n";
  return s;
}

std::string ReduceKernel(const std::string& name) {
  // Block size fixed at 64 threads (2 warps); shared tree reduction.
  std::string s = Format(".kernel %s regs=20 shared=256\n", name.c_str());
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  IMAD R0, R0, c[0][0x0], R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  MOV R16, RZ ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @!P0 MOV R4, c[0][0x160] ;\n"
      "  @!P0 MOV R5, c[0][0x164] ;\n"
      "  @!P0 IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  @!P0 LDG.E.32 R16, [R6] ;\n"
      "  SHL R8, R1, 0x2 ;\n"  // shared offset = tid*4
      "  STS [R8], R16 ;\n"
      "  BAR.SYNC ;\n"
      "  MOV R9, 0x20 ;\n"  // step = 32
      "reduce_loop:\n"
      "  ISETP.GE.AND P1, PT, R1, R9, PT ;\n"
      "  @P1 BRA reduce_skip ;\n"
      "  IADD3 R10, R1, R9, RZ ;\n"
      "  LOP32I.AND R10, R10, 0x3f ;\n"  // partner slot (tid+step < 64)
      "  SHL R11, R10, 0x2 ;\n"
      "  LDS R12, [R11] ;\n"
      "  LDS R13, [R8] ;\n"
      "  FADD R13, R13, R12 ;\n"
      "  STS [R8], R13 ;\n"
      "reduce_skip:\n"
      "  BAR.SYNC ;\n"
      "  SHR.U32 R9, R9, 0x1 ;\n"
      "  ISETP.NE.AND P2, PT, R9, RZ, PT ;\n"
      "  @P2 BRA reduce_loop ;\n"
      "  ISETP.NE.AND P3, PT, R1, RZ, PT ;\n"
      "  @P3 EXIT ;\n"
      "  S2R R14, SR_CTAID.X ;\n"
      "  MOV R4, c[0][0x168] ;\n"
      "  MOV R5, c[0][0x16c] ;\n"
      "  IMAD.WIDE R6, R14, 0x4, R4 ;\n"
      "  LDS R12, [RZ] ;\n"
      "  STG.E.32 [R6], R12 ;\n"
      "  EXIT ;\n";
  s += ".endkernel\n";
  return s;
}

}  // namespace nvbitfi::workloads
