// The SpecACCEL OpenACC v1.2 proxy suite (Table IV).
//
// Fifteen programs, each reproducing its SpecACCEL counterpart's *kernel
// structure* exactly — the same number of static kernels and the same number
// of dynamic kernel launches as Table IV — with miniaturised data sizes.  The
// programs differ in instruction mix (FP32/FP64/integer/memory/control),
// host-side error-checking discipline, and SDC-check tolerance, which is what
// drives the per-program outcome differences in Figures 2 and 3.
#pragma once

#include <string_view>
#include <vector>

#include "core/target_program.h"
#include "workloads/common.h"

namespace nvbitfi::workloads {

struct WorkloadEntry {
  const fi::TargetProgram* program;
  const char* description;     // Table IV description column
  KernelCounts table4_counts;  // Table IV static/dynamic kernel counts
};

// All 15 programs in Table IV order.  Pointers are to process-lifetime
// singletons.
const std::vector<WorkloadEntry>& AllWorkloads();

// Lookup by program name (e.g. "303.ostencil"); nullptr when unknown.
const fi::TargetProgram* FindWorkload(std::string_view name);

}  // namespace nvbitfi::workloads
