// 304.olbm — computational fluid dynamics proxy: a D2Q5 Lattice Boltzmann
// method on a 16x16 periodic lattice with an inlet boundary row.
// Table IV: 3 static kernels (collide, stream, boundary), 900 dynamic
// kernels (300 time steps x 3).
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/strings.h"
#include "workloads/common.h"
#include "workloads/programs.h"

namespace nvbitfi::workloads {
namespace {

constexpr std::uint32_t kSide = 16;          // 16x16 lattice
constexpr std::uint32_t kCells = kSide * kSide;
constexpr std::uint32_t kBlock = 64;
constexpr int kSteps = 300;
constexpr std::uint32_t kPlaneBytes = kCells * 4;  // one distribution plane

// Distribution weights: rest + 4 neighbours.
constexpr float kW0 = 0.6f;
constexpr float kWk = 0.1f;
constexpr float kOmega = 0.6f;

// BGK collision: rho = sum f_k ; f_k += omega * (w_k * rho - f_k).
// params: 0=f, 1=n
std::string CollideKernel() {
  std::string s = ".kernel lbm_collide regs=32\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x168] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  MOV R4, c[0][0x160] ;\n"
      "  MOV R5, c[0][0x164] ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n";
  // Load the 5 planes.
  s += Format(
      "  LDG.E.32 R8, [R6] ;\n"
      "  LDG.E.32 R9, [R6+0x%x] ;\n"
      "  LDG.E.32 R10, [R6+0x%x] ;\n"
      "  LDG.E.32 R11, [R6+0x%x] ;\n"
      "  LDG.E.32 R12, [R6+0x%x] ;\n",
      kPlaneBytes, 2 * kPlaneBytes, 3 * kPlaneBytes, 4 * kPlaneBytes);
  s +=
      "  FADD R13, R8, R9 ;\n"
      "  FADD R13, R13, R10 ;\n"
      "  FADD R13, R13, R11 ;\n"
      "  FADD R13, R13, R12 ;\n";  // rho
  // f_k = f_k + omega * (w_k * rho - f_k)
  const auto relax = [](int reg, float w) {
    return Format(
        "  FMUL R20, R13, %s ;\n"
        "  FADD R21, R20, -R%d ;\n"
        "  FFMA R%d, R21, %s, R%d ;\n",
        FloatImm(w).c_str(), reg, reg, FloatImm(kOmega).c_str(), reg);
  };
  s += relax(8, kW0);
  s += relax(9, kWk);
  s += relax(10, kWk);
  s += relax(11, kWk);
  s += relax(12, kWk);
  s += Format(
      "  STG.E.32 [R6], R8 ;\n"
      "  STG.E.32 [R6+0x%x], R9 ;\n"
      "  STG.E.32 [R6+0x%x], R10 ;\n"
      "  STG.E.32 [R6+0x%x], R11 ;\n"
      "  STG.E.32 [R6+0x%x], R12 ;\n"
      "  EXIT ;\n",
      kPlaneBytes, 2 * kPlaneBytes, 3 * kPlaneBytes, 4 * kPlaneBytes);
  s += ".endkernel\n";
  return s;
}

// Streaming with periodic wrap: plane 1 flows east, 2 west, 3 north, 4 south.
// fout_k[(x,y)] = fin_k[from_k(x,y)] ; plane 0 copies.
// params: 0=fin, 1=fout, 2=n
std::string StreamKernel() {
  std::string s = ".kernel lbm_stream regs=40\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x170] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      // x = gid & 15 ; y = gid >> 4
      "  LOP32I.AND R4, R0, 0xf ;\n"
      "  SHR.U32 R5, R0, 0x4 ;\n"
      // xm=(x-1)&15 xp=(x+1)&15 ym=(y-1)&15 yp=(y+1)&15
      "  IADD3 R6, R4, -1, RZ ;\n"
      "  LOP32I.AND R6, R6, 0xf ;\n"
      "  IADD3 R7, R4, 1, RZ ;\n"
      "  LOP32I.AND R7, R7, 0xf ;\n"
      "  IADD3 R8, R5, -1, RZ ;\n"
      "  LOP32I.AND R8, R8, 0xf ;\n"
      "  IADD3 R9, R5, 1, RZ ;\n"
      "  LOP32I.AND R9, R9, 0xf ;\n"
      // source cell indices: east-moving came from (xm, y), west from (xp, y),
      // north from (x, ym), south from (x, yp)
      "  SHL R10, R5, 0x4 ;\n"
      "  IADD3 R11, R10, R6, RZ ;\n"   // idx_e
      "  IADD3 R12, R10, R7, RZ ;\n"   // idx_w
      "  SHL R13, R8, 0x4 ;\n"
      "  IADD3 R13, R13, R4, RZ ;\n"   // idx_n
      "  SHL R14, R9, 0x4 ;\n"
      "  IADD3 R14, R14, R4, RZ ;\n"   // idx_s
      "  MOV R16, c[0][0x160] ;\n"
      "  MOV R17, c[0][0x164] ;\n"
      // gather
      "  IMAD.WIDE R18, R0, 0x4, R16 ;\n"
      "  LDG.E.32 R24, [R18] ;\n";  // f0 from same cell
  s += Format(
      "  IMAD.WIDE R18, R11, 0x4, R16 ;\n"
      "  LDG.E.32 R25, [R18+0x%x] ;\n"
      "  IMAD.WIDE R18, R12, 0x4, R16 ;\n"
      "  LDG.E.32 R26, [R18+0x%x] ;\n"
      "  IMAD.WIDE R18, R13, 0x4, R16 ;\n"
      "  LDG.E.32 R27, [R18+0x%x] ;\n"
      "  IMAD.WIDE R18, R14, 0x4, R16 ;\n"
      "  LDG.E.32 R28, [R18+0x%x] ;\n",
      kPlaneBytes, 2 * kPlaneBytes, 3 * kPlaneBytes, 4 * kPlaneBytes);
  s += Format(
      "  MOV R16, c[0][0x168] ;\n"
      "  MOV R17, c[0][0x16c] ;\n"
      "  IMAD.WIDE R18, R0, 0x4, R16 ;\n"
      "  STG.E.32 [R18], R24 ;\n"
      "  STG.E.32 [R18+0x%x], R25 ;\n"
      "  STG.E.32 [R18+0x%x], R26 ;\n"
      "  STG.E.32 [R18+0x%x], R27 ;\n"
      "  STG.E.32 [R18+0x%x], R28 ;\n"
      "  EXIT ;\n",
      kPlaneBytes, 2 * kPlaneBytes, 3 * kPlaneBytes, 4 * kPlaneBytes);
  s += ".endkernel\n";
  return s;
}

// Inlet boundary: the y == 0 row is reset to the inflow distribution.
// params: 0=f, 1=n
std::string BoundaryKernel() {
  std::string s = ".kernel lbm_boundary regs=16\n";
  s +=
      "  S2R R0, SR_CTAID.X ;\n"
      "  S2R R1, SR_TID.X ;\n"
      "  MOV R2, c[0][0x0] ;\n"
      "  IMAD R0, R0, R2, R1 ;\n"
      "  MOV R3, c[0][0x168] ;\n"
      "  ISETP.GE.AND P0, PT, R0, R3, PT ;\n"
      "  @P0 EXIT ;\n"
      "  SHR.U32 R5, R0, 0x4 ;\n"
      "  ISETP.NE.AND P1, PT, R5, RZ, PT ;\n"
      "  @P1 EXIT ;\n"
      "  MOV R6, c[0][0x160] ;\n"
      "  MOV R7, c[0][0x164] ;\n"
      "  IMAD.WIDE R8, R0, 0x4, R6 ;\n";
  s += Format(
      "  MOV32I R10, %s ;\n"
      "  MOV32I R11, %s ;\n"
      "  STG.E.32 [R8], R10 ;\n"
      "  STG.E.32 [R8+0x%x], R11 ;\n"
      "  STG.E.32 [R8+0x%x], R11 ;\n"
      "  STG.E.32 [R8+0x%x], R11 ;\n"
      "  STG.E.32 [R8+0x%x], R11 ;\n"
      "  EXIT ;\n",
      FloatImm(kW0 * 1.2f).c_str(), FloatImm(kWk * 1.2f).c_str(), kPlaneBytes,
      2 * kPlaneBytes, 3 * kPlaneBytes, 4 * kPlaneBytes);
  s += ".endkernel\n";
  return s;
}

class OlbmProgram final : public fi::TargetProgram {
 public:
  OlbmProgram()
      : source_(CollideKernel() + StreamKernel() + BoundaryKernel()),
        checker_(ToleranceChecker::Element::kFloat, 3e-3, 1e-7) {}

  std::string name() const override { return "304.olbm"; }
  std::string description() const override {
    return "Computational fluid dynamics, Lattice Boltzmann Method";
  }
  const fi::SdcChecker& sdc_checker() const override { return checker_; }

  fi::RunArtifacts Run(sim::Context& ctx) const override {
    fi::RunArtifacts art;
    sim::Module* module = nullptr;
    if (ctx.ModuleLoadText(source_, &module) != sim::CuResult::kSuccess) {
      art.exit_code = 2;
      return art;
    }
    sim::Function* collide = ctx.GetFunction("lbm_collide");
    sim::Function* stream = ctx.GetFunction("lbm_stream");
    sim::Function* boundary = ctx.GetFunction("lbm_boundary");
    NVBITFI_CHECK(collide != nullptr && stream != nullptr && boundary != nullptr);

    // Equilibrium initial state over 5 planes.
    std::vector<float> init(5 * kCells);
    for (std::uint32_t i = 0; i < kCells; ++i) init[i] = kW0;
    for (std::uint32_t k = 1; k < 5; ++k) {
      for (std::uint32_t i = 0; i < kCells; ++i) init[k * kCells + i] = kWk;
    }
    sim::DevPtr fa = AllocAndUpload(ctx, init);
    sim::DevPtr fb = AllocAndUpload(ctx, init);

    const sim::Dim3 grid{kCells / kBlock, 1, 1};
    const sim::Dim3 block{kBlock, 1, 1};
    for (int it = 0; it < kSteps; ++it) {
      const std::uint64_t collide_params[] = {fa, kCells};
      ctx.LaunchKernel(collide, grid, block, collide_params);
      const std::uint64_t stream_params[] = {fa, fb, kCells};
      ctx.LaunchKernel(stream, grid, block, stream_params);
      const std::uint64_t bc_params[] = {fb, kCells};
      ctx.LaunchKernel(boundary, grid, block, bc_params);
      std::swap(fa, fb);
    }

    const std::vector<float> f = Download(ctx, fa, 5 * kCells);
    double mass = 0.0;
    for (const float v : f) mass += v;

    art.stdout_text = Format("304.olbm: lattice mass %.3e after %d steps\n", mass, kSteps);
    AppendToOutput(&art, std::span<const float>(f));
    return art;
  }

 private:
  std::string source_;
  ToleranceChecker checker_;
};

}  // namespace

const fi::TargetProgram& Olbm() {
  static const OlbmProgram program;
  return program;
}

}  // namespace nvbitfi::workloads
