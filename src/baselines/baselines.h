// Baseline injector implementations used for the Table I / related-work
// comparison.  Both inject the *same* fault as NVBitFI's transient injector
// (shared corruption semantics) but with the instrumentation strategies of
// the prior tools, so measured overhead differences isolate the injection
// mechanism:
//
//  * StaticInjectorTool (SASSIFI-style): instrumentation is baked into every
//    kernel at "compile time" (module load) and is active for EVERY dynamic
//    launch — no per-launch selectivity.  SASSIFI also needs source-level
//    recompilation and cannot reach dynamically loaded libraries; those are
//    capability rows in Table I, printed by the bench.
//
//  * DebuggerInjectorTool (GPU-Qin / cuda-gdb style): the debugger
//    single-steps the target kernels, paying a large per-instruction state-
//    management cost on every dynamic instruction of every launch ("cuda-gdb
//    ... must maintain a large amount of state for each dynamic kernel",
//    §IV).
#pragma once

#include <cstdint>
#include <string>

#include "core/corruption.h"
#include "core/fault_model.h"
#include "nvbit/nvbit.h"

namespace nvbitfi::baselines {

class StaticInjectorTool final : public nvbit::Tool {
 public:
  explicit StaticInjectorTool(fi::TransientFaultParams params);

  std::string ConfigKey() const override { return "sassifi_style"; }
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const fi::InjectionRecord& record() const { return record_; }

  // Compile-time instrumentation is moderately cheap per site but is always
  // live; it also occupies registers in every kernel.
  static constexpr std::uint32_t kRegs = 16;
  static constexpr std::uint64_t kCycles = 24;

 private:
  void Inject(const sim::InstrEvent& event);

  fi::TransientFaultParams params_;
  fi::InjectionRecord record_;
  std::uint64_t counter_ = 0;
  bool in_target_launch_ = false;
  bool done_ = false;
};

class DebuggerInjectorTool final : public nvbit::Tool {
 public:
  explicit DebuggerInjectorTool(fi::TransientFaultParams params);

  std::string ConfigKey() const override { return "gpuqin_style"; }
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const fi::InjectionRecord& record() const { return record_; }
  std::uint64_t single_steps() const { return single_steps_; }

  // Debugger breakpoint handling: very expensive per dynamic instruction.
  static constexpr std::uint32_t kRegs = 2;  // debugger state lives host-side
  static constexpr std::uint64_t kCycles = 400;

 private:
  void Step(const sim::InstrEvent& event);

  fi::TransientFaultParams params_;
  fi::InjectionRecord record_;
  std::uint64_t counter_ = 0;
  std::uint64_t single_steps_ = 0;
  bool in_target_launch_ = false;
  bool done_ = false;
};

}  // namespace nvbitfi::baselines
