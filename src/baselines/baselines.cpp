#include "baselines/baselines.h"

namespace nvbitfi::baselines {

namespace {
constexpr const char* kStaticFn = "sassifi_style_inject";
constexpr const char* kDebuggerFn = "gpuqin_style_step";
}  // namespace

StaticInjectorTool::StaticInjectorTool(fi::TransientFaultParams params)
    : params_(std::move(params)) {}

void StaticInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kStaticFn;
  fn.regs_used = kRegs;
  fn.cost_cycles = kCycles;
  fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void StaticInjectorTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                                     const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      // "Compile-time" instrumentation: every group-eligible instruction of
      // EVERY kernel carries the check, target or not.
      for (const auto& fn : info.module->functions()) {
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          if (fi::OpcodeInGroup(instr.opcode(), params_.arch_state_id)) {
            runtime.InsertCall(*fn, instr.index(), kStaticFn, sim::InsertPoint::kAfter);
          }
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin:
      // No dynamic selectivity: the instrumented binary is what runs.
      runtime.EnableInstrumented(*info.function, true);
      in_target_launch_ = info.launch->kernel_name == params_.kernel_name &&
                          info.launch->launch_ordinal == params_.kernel_count;
      if (in_target_launch_) counter_ = 0;
      break;
    case nvbit::CudaEvent::kKernelLaunchEnd:
      in_target_launch_ = false;
      break;
  }
}

void StaticInjectorTool::Inject(const sim::InstrEvent& event) {
  if (!in_target_launch_ || done_ || !event.lane.guard_true()) return;
  const std::uint64_t index = counter_++;
  if (index != params_.instruction_count) return;
  done_ = true;
  fi::ApplyTransientCorruption(event, params_, &record_);
}

DebuggerInjectorTool::DebuggerInjectorTool(fi::TransientFaultParams params)
    : params_(std::move(params)) {}

void DebuggerInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kDebuggerFn;
  fn.regs_used = kRegs;
  fn.cost_cycles = kCycles;
  fn.callback = [this](const sim::InstrEvent& event) { Step(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void DebuggerInjectorTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                                       const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      // The debugger traps EVERY instruction (breakpoint single-stepping),
      // not just the eligible ones — it cannot restrict what it sees.
      for (const auto& fn : info.module->functions()) {
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          runtime.InsertCall(*fn, instr.index(), kDebuggerFn, sim::InsertPoint::kAfter);
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin:
      runtime.EnableInstrumented(*info.function, true);
      in_target_launch_ = info.launch->kernel_name == params_.kernel_name &&
                          info.launch->launch_ordinal == params_.kernel_count;
      if (in_target_launch_) counter_ = 0;
      break;
    case nvbit::CudaEvent::kKernelLaunchEnd:
      in_target_launch_ = false;
      break;
  }
}

void DebuggerInjectorTool::Step(const sim::InstrEvent& event) {
  ++single_steps_;
  if (!in_target_launch_ || done_ || !event.lane.guard_true()) return;
  if (!fi::OpcodeInGroup(event.instr.opcode, params_.arch_state_id)) return;
  const std::uint64_t index = counter_++;
  if (index != params_.instruction_count) return;
  done_ = true;
  fi::ApplyTransientCorruption(event, params_, &record_);
}

}  // namespace nvbitfi::baselines
