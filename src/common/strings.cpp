#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nvbitfi {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

namespace {

// strtoull/strtoll need a NUL-terminated buffer; string_views may not be.
bool ToBuffer(std::string_view text, char* buf, std::size_t cap) {
  if (text.empty() || text.size() >= cap) return false;
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  return true;
}

}  // namespace

bool ParseUint64(std::string_view text, std::uint64_t* out) {
  char buf[64];
  if (!ToBuffer(text, buf, sizeof buf)) return false;
  if (buf[0] == '-' || std::isspace(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf, &end, 0);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view text, std::int64_t* out) {
  char buf[64];
  if (!ToBuffer(text, buf, sizeof buf)) return false;
  if (std::isspace(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 0);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  char buf[128];
  if (!ToBuffer(text, buf, sizeof buf)) return false;
  if (std::isspace(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = v;
  return true;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace nvbitfi
