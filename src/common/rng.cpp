#include "common/rng.h"

#include "common/check.h"

namespace nvbitfi {

double Rng::UniformUnit() {
  // 53-bit mantissa construction keeps the value strictly below 1.0.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  NVBITFI_CHECK_MSG(lo <= hi, "UniformInt bounds inverted: [" << lo << ", " << hi << "]");
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

std::uint32_t Rng::Bits32() { return static_cast<std::uint32_t>(engine_()); }

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformUnit() < p;
}

Rng Rng::Fork() { return Rng(engine_()); }

std::uint64_t Rng::SeedFrom(std::uint64_t base, std::string_view tag) {
  // FNV-1a over the tag mixed with the base seed via splitmix64 finalisation.
  std::uint64_t h = 0xcbf29ce484222325ull ^ base;
  for (const char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace nvbitfi
