#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nvbitfi {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void InitLogLevelFromEnv() {
  const char* env = std::getenv("NVBITFI_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) SetLogLevel(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) SetLogLevel(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) SetLogLevel(LogLevel::kWarning);
  else if (std::strcmp(env, "error") == 0) SetLogLevel(LogLevel::kError);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::fprintf(stderr, "[nvbitfi %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace nvbitfi
