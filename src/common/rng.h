// Deterministic random-number generation for injection campaigns.
//
// All randomness in the repository flows through Rng so that a campaign seed
// fully determines the set of injection experiments (site selection, register
// selection, bit-pattern values), making every figure regenerable bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace nvbitfi {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform in [0, 1) — the representation the paper uses for the
  // destination-register and bit-pattern parameters (Table II).
  double UniformUnit();

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  // Uniform 32-bit pattern.
  std::uint32_t Bits32();

  // Bernoulli trial.
  bool Chance(double p);

  // Derive an independent child stream (used to give each injection
  // experiment its own stream so experiment k is reproducible in isolation).
  Rng Fork();

  // Stable seed derivation from a string tag (e.g. a program name), so
  // per-program campaign streams do not depend on iteration order.
  static std::uint64_t SeedFrom(std::uint64_t base, std::string_view tag);

 private:
  std::mt19937_64 engine_;
};

}  // namespace nvbitfi
