// Lightweight contract-checking macros.
//
// NVBITFI_CHECK is for host-API preconditions: violations are programming
// errors in the caller and throw std::logic_error (per the Core Guidelines
// "exceptions for errors that cannot be handled locally").  Simulated
// device-side faults never use these macros; they surface as CuResult values
// and device-log entries instead (see sassim/runtime/driver.h).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nvbitfi {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace nvbitfi

#define NVBITFI_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::nvbitfi::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define NVBITFI_CHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream nvbitfi_check_os;                                 \
      nvbitfi_check_os << msg;                                             \
      ::nvbitfi::CheckFailed(#expr, __FILE__, __LINE__,                    \
                             nvbitfi_check_os.str());                      \
    }                                                                      \
  } while (false)
