// Minimal leveled logging.  The default level is Warning so campaigns stay
// quiet; set NVBITFI_LOG=debug|info|warn|error (or call SetLogLevel) to see
// tool internals — analogous to NVBit's TOOL_VERBOSE environment knob.
#pragma once

#include <sstream>
#include <string>

namespace nvbitfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Reads NVBITFI_LOG once at startup; callable from tests to re-read.
void InitLogLevelFromEnv();

void LogMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace nvbitfi

#define NVBITFI_LOG(level)                                       \
  if (static_cast<int>(::nvbitfi::LogLevel::level) <             \
      static_cast<int>(::nvbitfi::GetLogLevel())) {              \
  } else                                                         \
    ::nvbitfi::detail::LogLine(::nvbitfi::LogLevel::level)

#define LOG_DEBUG NVBITFI_LOG(kDebug)
#define LOG_INFO NVBITFI_LOG(kInfo)
#define LOG_WARN NVBITFI_LOG(kWarning)
#define LOG_ERROR NVBITFI_LOG(kError)
