#include "common/bitutil.h"

#include <cmath>

namespace nvbitfi {

std::uint16_t FloatToHalfBits(float value) {
  const std::uint32_t bits = FloatToBits(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent = static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 128) {  // Inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0u));
  }
  if (exponent > 15) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exponent >= -14) {  // normal half
    // 10-bit mantissa with round-to-nearest-even on the dropped 13 bits.
    std::uint32_t rounded = mantissa + 0xFFFu + ((mantissa >> 13) & 1u);
    std::uint32_t exp_half = static_cast<std::uint32_t>(exponent + 15);
    if (rounded & 0x800000u) {  // mantissa carry bumps the exponent
      rounded = 0;
      ++exp_half;
      if (exp_half >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    return static_cast<std::uint16_t>(sign | (exp_half << 10) | (rounded >> 13));
  }
  if (exponent >= -24) {  // subnormal half
    mantissa |= 0x800000u;  // implicit bit
    const int shift = -exponent - 14 + 13;
    std::uint32_t rounded = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (rounded & 1u))) ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

float HalfBitsToFloat(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1Fu;
  const std::uint32_t mantissa = bits & 0x3FFu;

  if (exponent == 0x1F) {  // Inf / NaN
    return BitsToFloat(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return BitsToFloat(sign);  // signed zero
    // Subnormal half: renormalise.
    const float magnitude =
        std::ldexp(static_cast<float>(mantissa), -24);
    return (sign != 0) ? -magnitude : magnitude;
  }
  return BitsToFloat(sign | ((exponent + 112) << 23) | (mantissa << 13));
}

}  // namespace nvbitfi
