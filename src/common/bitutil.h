// Bit-manipulation helpers shared by the ISA executor and the fault models.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace nvbitfi {

// Reinterpret a 32-bit pattern as float (SASS registers are untyped 32-bit).
inline float BitsToFloat(std::uint32_t bits) { return std::bit_cast<float>(bits); }
inline std::uint32_t FloatToBits(float f) { return std::bit_cast<std::uint32_t>(f); }

inline double BitsToDouble(std::uint64_t bits) { return std::bit_cast<double>(bits); }
inline std::uint64_t DoubleToBits(double d) { return std::bit_cast<std::uint64_t>(d); }

// Compose/decompose a 64-bit value from a register pair (lo = Rn, hi = Rn+1).
inline std::uint64_t PackPair(std::uint32_t lo, std::uint32_t hi) {
  return static_cast<std::uint64_t>(hi) << 32 | lo;
}
inline std::uint32_t PairLo(std::uint64_t v) { return static_cast<std::uint32_t>(v); }
inline std::uint32_t PairHi(std::uint64_t v) { return static_cast<std::uint32_t>(v >> 32); }

// Population count / bit scans with fixed-width semantics.
inline int PopCount32(std::uint32_t v) { return std::popcount(v); }
inline int FindLeadingOne32(std::uint32_t v) {  // SASS FLO: -1 when v == 0.
  return v == 0 ? -1 : 31 - std::countl_zero(v);
}
inline std::uint32_t ReverseBits32(std::uint32_t v) {  // SASS BREV.
  v = ((v >> 1) & 0x55555555u) | ((v & 0x55555555u) << 1);
  v = ((v >> 2) & 0x33333333u) | ((v & 0x33333333u) << 2);
  v = ((v >> 4) & 0x0F0F0F0Fu) | ((v & 0x0F0F0F0Fu) << 4);
  v = ((v >> 8) & 0x00FF00FFu) | ((v & 0x00FF00FFu) << 8);
  return (v >> 16) | (v << 16);
}

// Sign-extend the low `bits` bits of v.
inline std::int32_t SignExtend32(std::uint32_t v, int bits) {
  const int shift = 32 - bits;
  return static_cast<std::int32_t>(v << shift) >> shift;
}

// IEEE 754 binary16 ("half") conversions, used by the packed-FP16 SASS ops
// (HADD2/HMUL2/HFMA2/...).  Round-to-nearest-even on the way down.
std::uint16_t FloatToHalfBits(float value);
float HalfBitsToFloat(std::uint16_t bits);

// Packed-half helpers: a 32-bit register holds two halves (lo = bits 15:0).
inline std::uint16_t HalfLo(std::uint32_t packed) {
  return static_cast<std::uint16_t>(packed);
}
inline std::uint16_t HalfHi(std::uint32_t packed) {
  return static_cast<std::uint16_t>(packed >> 16);
}
inline std::uint32_t PackHalves(std::uint16_t lo, std::uint16_t hi) {
  return static_cast<std::uint32_t>(hi) << 16 | lo;
}

// Generic funnel shift used by SASS SHF.
inline std::uint32_t FunnelShiftRight(std::uint32_t lo, std::uint32_t hi, unsigned amount) {
  amount &= 63u;
  if (amount == 0) return lo;
  if (amount < 32) return (lo >> amount) | (hi << (32 - amount));
  if (amount == 32) return hi;
  return hi >> (amount - 32);
}
inline std::uint32_t FunnelShiftLeft(std::uint32_t lo, std::uint32_t hi, unsigned amount) {
  amount &= 63u;
  if (amount == 0) return hi;
  if (amount < 32) return (hi << amount) | (lo >> (32 - amount));
  if (amount == 32) return lo;
  return lo << (amount - 32);
}

// LOP3 lookup-table boolean: for each bit position, the output bit is
// lut[{a,b,c}] where the 3 input bits form an index 0..7.
inline std::uint32_t Lop3(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                          std::uint8_t lut) {
  std::uint32_t r = 0;
  if (lut & 0x01) r |= ~a & ~b & ~c;
  if (lut & 0x02) r |= ~a & ~b & c;
  if (lut & 0x04) r |= ~a & b & ~c;
  if (lut & 0x08) r |= ~a & b & c;
  if (lut & 0x10) r |= a & ~b & ~c;
  if (lut & 0x20) r |= a & ~b & c;
  if (lut & 0x40) r |= a & b & ~c;
  if (lut & 0x80) r |= a & b & c;
  return r;
}

// Byte-permute used by SASS PRMT (default mode): selector nibbles pick bytes
// from the 8-byte {a,b} pool; bit 3 of a nibble replicates the sign bit.
inline std::uint32_t Prmt(std::uint32_t a, std::uint32_t b, std::uint32_t sel) {
  std::uint8_t pool[8];
  std::memcpy(pool, &a, 4);
  std::memcpy(pool + 4, &b, 4);
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t nib = (sel >> (4 * i)) & 0xFu;
    std::uint8_t byte = pool[nib & 0x7u];
    if (nib & 0x8u) byte = (byte & 0x80u) ? 0xFFu : 0x00u;
    out |= static_cast<std::uint32_t>(byte) << (8 * i);
  }
  return out;
}

}  // namespace nvbitfi
