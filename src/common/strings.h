// Small string helpers used by the assembler, profile serialisation, and the
// benchmark table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nvbitfi {

// Split on a single separator; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

// Split on any whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

std::string_view TrimWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// Case-sensitive string → integer parse; returns false on any malformed input
// (leading/trailing junk, overflow).  Accepts an optional 0x prefix.
bool ParseUint64(std::string_view text, std::uint64_t* out);
bool ParseInt64(std::string_view text, std::int64_t* out);
bool ParseDouble(std::string_view text, double* out);

// printf-style convenience used by the table printers.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace nvbitfi
