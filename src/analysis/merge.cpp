#include "analysis/merge.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "telemetry/metrics.h"

namespace nvbitfi::analysis {
namespace {

// Strips everything a shard is allowed to differ in (its range) and
// everything the merge recomputes (workers, accounting), leaving the
// campaign identity plus the shared state (golden accounting, profile).
StoreMeta NormalizedMeta(const StoreMeta& meta) {
  StoreMeta out = meta;
  out.shard_begin = 0;
  out.shard_end = 0;
  out.workers = 1;
  out.replay_accounting = false;
  out.checkpointed_runs = 0;
  out.replay_launches = 0;
  out.replay_instructions_saved = 0;
  out.replay_fallbacks = 0;
  return out;
}

}  // namespace

std::optional<MergeSummary> MergeShardStores(const std::vector<std::string>& shard_paths,
                                             const std::string& out_path,
                                             std::string* error) {
  const telemetry::ScopedPhase span(telemetry::Phase::kMerge);
  if (shard_paths.empty()) {
    if (error != nullptr) *error = "no shard stores to merge";
    return std::nullopt;
  }

  std::vector<LoadedStore> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    std::optional<LoadedStore> shard = LoadResultStore(path, error);
    if (!shard.has_value()) return std::nullopt;
    if (shard->meta.kind != "transient") {
      if (error != nullptr) {
        *error = Format("'%s': only transient campaigns shard", path.c_str());
      }
      return std::nullopt;
    }
    if (shard->meta.shard_end == 0) {
      if (error != nullptr) {
        *error = Format("'%s' has no shard range (not a shard store)", path.c_str());
      }
      return std::nullopt;
    }
    shards.push_back(*std::move(shard));
  }

  // Identity: every shard must describe the same campaign — not just the
  // resume identity, but the full shared state (golden accounting, profile),
  // since the merged header inherits it.
  const std::string identity = MetaToJson(NormalizedMeta(shards[0].meta)).Dump();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    if (MetaToJson(NormalizedMeta(shards[i].meta)).Dump() != identity) {
      if (error != nullptr) {
        *error = Format("'%s' belongs to a different campaign than '%s'",
                        shard_paths[i].c_str(), shard_paths[0].c_str());
      }
      return std::nullopt;
    }
  }

  // Coverage: the shard ranges must tile [0, num_experiments) exactly, and
  // every shard must hold a record for each index in its range.
  std::vector<std::size_t> order(shards.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shards[a].meta.shard_begin < shards[b].meta.shard_begin;
  });
  const std::uint64_t total = shards[0].meta.num_experiments;
  std::uint64_t next = 0;
  for (const std::size_t i : order) {
    const StoreMeta& meta = shards[i].meta;
    if (meta.shard_begin != next || meta.shard_end > total) {
      if (error != nullptr) {
        *error = Format("shard ranges do not tile [0, %llu): '%s' covers "
                        "[%llu, %llu) but [%llu, ...) is needed",
                        static_cast<unsigned long long>(total),
                        shard_paths[i].c_str(),
                        static_cast<unsigned long long>(meta.shard_begin),
                        static_cast<unsigned long long>(meta.shard_end),
                        static_cast<unsigned long long>(next));
      }
      return std::nullopt;
    }
    const std::size_t expected = meta.shard_end - meta.shard_begin;
    const auto& records = shards[i].transient;
    const bool complete =
        records.size() == expected &&
        (expected == 0 ||
         (records.begin()->first >= meta.shard_begin &&
          records.rbegin()->first < meta.shard_end));
    if (!complete) {
      if (error != nullptr) {
        *error = Format("'%s' is incomplete: %zu of %zu records for "
                        "[%llu, %llu) — finish or resume the shard first",
                        shard_paths[i].c_str(), records.size(), expected,
                        static_cast<unsigned long long>(meta.shard_begin),
                        static_cast<unsigned long long>(meta.shard_end));
      }
      return std::nullopt;
    }
    next = meta.shard_end;
  }
  if (next != total) {
    if (error != nullptr) {
      *error = Format("shards cover [0, %llu) of %llu experiments — missing tail",
                      static_cast<unsigned long long>(next),
                      static_cast<unsigned long long>(total));
    }
    return std::nullopt;
  }

  // The canonical header: shard provenance stripped, workers canonicalized
  // to the serial reference, replay accounting summed from the shard-only
  // per-record stats (exactly what a finalized unsharded campaign records).
  StoreMeta merged = NormalizedMeta(shards[0].meta);
  merged.replay_accounting = true;
  for (const LoadedStore& shard : shards) {
    for (const auto& [index, replay] : shard.replay) {
      (void)index;
      ++merged.checkpointed_runs;
      merged.replay_launches += replay.launches_fast_forwarded;
      merged.replay_instructions_saved += replay.thread_instructions_saved;
      merged.replay_fallbacks += replay.host_divergences + replay.watchdog_fallbacks;
    }
  }

  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = Format("cannot write '%s'", out_path.c_str());
    return std::nullopt;
  }
  auto write_line = [file](const std::string& line) {
    std::fputs(line.c_str(), file);
    std::fputc('\n', file);
  };
  write_line(MetaToJson(merged).Dump());
  for (const std::size_t i : order) {
    for (const auto& [index, run] : shards[i].transient) {
      const auto anatomy = shards[i].anatomy.find(index);
      // Re-serialized without the replay stats: canonical records are
      // byte-identical whether the campaign was sharded, checkpointed, or
      // neither.
      write_line(TransientRunToJson(index, run,
                                    anatomy != shards[i].anatomy.end()
                                        ? &anatomy->second
                                        : nullptr)
                     .Dump());
    }
  }
  std::fflush(file);
  std::fclose(file);

  MergeSummary summary;
  summary.num_experiments = total;
  summary.num_shards = shards.size();
  summary.meta = merged;
  return summary;
}

std::optional<MergeSummary> MergeAdaptiveSliceStores(
    const std::vector<std::string>& slice_paths,
    const std::vector<adaptive::RoundRecord>& rounds, const std::string& out_path,
    std::string* error) {
  const telemetry::ScopedPhase span(telemetry::Phase::kMerge);
  if (slice_paths.empty()) {
    if (error != nullptr) *error = "no slice stores to merge";
    return std::nullopt;
  }

  std::vector<LoadedStore> slices;
  slices.reserve(slice_paths.size());
  for (const std::string& path : slice_paths) {
    std::optional<LoadedStore> slice = LoadResultStore(path, error);
    if (!slice.has_value()) return std::nullopt;
    if (slice->meta.kind != "transient" || !slice->meta.adaptive) {
      if (error != nullptr) {
        *error = Format("'%s' is not an adaptive slice store", path.c_str());
      }
      return std::nullopt;
    }
    slices.push_back(*std::move(slice));
  }

  // Identity: slice headers are already canonical (workers pinned to 1, no
  // shard range, no schedule), so they must match outright.
  const std::string identity = MetaToJson(slices[0].meta).Dump();
  for (std::size_t i = 1; i < slices.size(); ++i) {
    if (MetaToJson(slices[i].meta).Dump() != identity) {
      if (error != nullptr) {
        *error = Format("'%s' belongs to a different campaign than '%s'",
                        slice_paths[i].c_str(), slice_paths[0].c_str());
      }
      return std::nullopt;
    }
  }

  // Coverage: the slices' records must be exactly the scheduled indexes,
  // each held by exactly one slice.
  std::map<std::size_t, const std::string*> lines;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    for (const auto& [index, line] : slices[i].record_lines) {
      if (!lines.emplace(index, &line).second) {
        if (error != nullptr) {
          *error = Format("experiment %zu appears in more than one slice store",
                          index);
        }
        return std::nullopt;
      }
    }
  }
  std::uint64_t scheduled = 0;
  for (const adaptive::RoundRecord& round : rounds) {
    for (const std::uint64_t index : round.indexes) {
      ++scheduled;
      if (lines.find(static_cast<std::size_t>(index)) == lines.end()) {
        if (error != nullptr) {
          *error = Format("scheduled experiment %llu has no record in any slice",
                          static_cast<unsigned long long>(index));
        }
        return std::nullopt;
      }
    }
  }
  if (lines.size() != scheduled) {
    if (error != nullptr) {
      *error = Format("slices hold %zu records but the schedule covers %llu "
                      "experiments",
                      lines.size(), static_cast<unsigned long long>(scheduled));
    }
    return std::nullopt;
  }

  StoreMeta merged = slices[0].meta;
  merged.rounds = rounds;

  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = Format("cannot write '%s'", out_path.c_str());
    return std::nullopt;
  }
  const std::string header = MetaToJson(merged).Dump();
  std::fputs(header.c_str(), file);
  std::fputc('\n', file);
  for (const auto& [index, line] : lines) {
    (void)index;
    std::fputs(line->c_str(), file);
    std::fputc('\n', file);
  }
  std::fflush(file);
  std::fclose(file);

  MergeSummary summary;
  summary.num_experiments = merged.num_experiments;
  summary.num_shards = slices.size();
  summary.meta = merged;
  return summary;
}

}  // namespace nvbitfi::analysis
