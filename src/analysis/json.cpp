#include "analysis/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace nvbitfi::analysis::json {
namespace {

const std::string kEmptyString;

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> ParseDocument() {
    std::optional<Value> value = ParseValue();
    if (!value.has_value()) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        std::optional<std::string> s = ParseString();
        if (!s.has_value()) return std::nullopt;
        return Value(*std::move(s));
      }
      case 't': return ConsumeLiteral("true") ? std::optional<Value>(Value(true))
                                              : std::nullopt;
      case 'f': return ConsumeLiteral("false") ? std::optional<Value>(Value(false))
                                               : std::nullopt;
      case 'n': return ConsumeLiteral("null") ? std::optional<Value>(Value())
                                              : std::nullopt;
      default: return ParseNumber();
    }
  }

  std::optional<Value> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    Value object = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      std::optional<std::string> key = ParseString();
      if (!key.has_value() || !Consume(':')) return std::nullopt;
      std::optional<Value> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      object.Set(*key, *std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return std::nullopt;
    }
  }

  std::optional<Value> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    Value array = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      std::optional<Value> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      array.Push(*std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return std::nullopt;
    }
  }

  std::optional<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Only the \u00XX escapes Dump emits (control bytes) are accepted;
          // anything else in a store file is foreign input we reject.
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          if (code > 0xff) return std::nullopt;
          out += static_cast<char>(code);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return std::nullopt;
    if (integral) {
      if (token.front() == '-') {
        std::int64_t i = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (ec != std::errc() || ptr != token.data() + token.size()) return std::nullopt;
        return Value(i);
      }
      std::uint64_t u = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), u);
      if (ec != std::errc() || ptr != token.data() + token.size()) return std::nullopt;
      return Value(u);
    }
    char* end = nullptr;
    const std::string copy(token);  // strtod needs a terminator
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) return std::nullopt;
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::Array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

void Value::Set(std::string_view key, Value value) {
  kind_ = Kind::kObject;
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Value* Value::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Value::Push(Value value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
}

bool Value::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

std::uint64_t Value::AsUint(std::uint64_t fallback) const {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt: return int_ >= 0 ? static_cast<std::uint64_t>(int_) : fallback;
    case Kind::kDouble: return double_ >= 0 ? static_cast<std::uint64_t>(double_) : fallback;
    default: return fallback;
  }
}

std::int64_t Value::AsInt(std::int64_t fallback) const {
  switch (kind_) {
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    case Kind::kInt: return int_;
    case Kind::kDouble: return static_cast<std::int64_t>(double_);
    default: return fallback;
  }
}

double Value::AsDouble(double fallback) const {
  switch (kind_) {
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kDouble: return double_;
    default: return fallback;
  }
}

const std::string& Value::AsString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value* v = Find(key);
  return v != nullptr ? v->AsBool(fallback) : fallback;
}

std::uint64_t Value::GetUint(std::string_view key, std::uint64_t fallback) const {
  const Value* v = Find(key);
  return v != nullptr ? v->AsUint(fallback) : fallback;
}

std::int64_t Value::GetInt(std::string_view key, std::int64_t fallback) const {
  const Value* v = Find(key);
  return v != nullptr ? v->AsInt(fallback) : fallback;
}

double Value::GetDouble(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

std::string Value::GetString(std::string_view key, std::string_view fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->kind() == Kind::kString ? v->AsString()
                                                    : std::string(fallback);
}

std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::DumpTo(std::string* out) const {
  char buf[32];
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kUint:
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(uint_));
      *out += buf;
      break;
    case Kind::kInt:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    case Kind::kDouble:
      // %.17g round-trips every finite IEEE double.
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      *out += buf;
      break;
    case Kind::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      break;
    case Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& item : items_) {
        if (!first) *out += ',';
        first = false;
        item.DumpTo(out);
      }
      *out += ']';
      break;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += Escape(name);
        *out += "\":";
        value.DumpTo(out);
      }
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

std::optional<Value> Value::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace nvbitfi::analysis::json
