#include "analysis/result_store.h"

#include <sys/stat.h>

#include <fstream>
#include <sstream>

#include "analysis/propagation.h"
#include "common/strings.h"
#include "core/profile.h"
#include "telemetry/metrics.h"

namespace nvbitfi::analysis {
namespace {

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

json::Value ArtifactsToJson(const fi::RunArtifacts& artifacts) {
  json::Value out = json::Value::Object();
  out.Set("cycles", artifacts.cycles);
  out.Set("thread_instructions", artifacts.thread_instructions);
  out.Set("dynamic_kernels", artifacts.dynamic_kernels);
  out.Set("static_kernels", artifacts.static_kernels);
  out.Set("max_launch_thread_instructions", artifacts.max_launch_thread_instructions);
  out.Set("exit_code", artifacts.exit_code);
  out.Set("crashed", artifacts.crashed);
  out.Set("timed_out", artifacts.timed_out);
  out.Set("app_check_failed", artifacts.app_check_failed);
  return out;
}

// Accounting only: outputs and anomaly texts are not persisted (the
// classification and anatomy already distilled them).
fi::RunArtifacts ArtifactsFromJson(const json::Value& value) {
  fi::RunArtifacts artifacts;
  artifacts.cycles = value.GetUint("cycles");
  artifacts.thread_instructions = value.GetUint("thread_instructions");
  artifacts.dynamic_kernels = value.GetUint("dynamic_kernels");
  artifacts.static_kernels = value.GetUint("static_kernels");
  artifacts.max_launch_thread_instructions =
      value.GetUint("max_launch_thread_instructions");
  artifacts.exit_code = static_cast<int>(value.GetInt("exit_code"));
  artifacts.crashed = value.GetBool("crashed");
  artifacts.timed_out = value.GetBool("timed_out");
  artifacts.app_check_failed = value.GetBool("app_check_failed");
  return artifacts;
}

json::Value ClassificationToJson(const fi::Classification& c) {
  json::Value out = json::Value::Object();
  out.Set("outcome", static_cast<std::int64_t>(c.outcome));
  out.Set("symptom", static_cast<std::int64_t>(c.symptom));
  out.Set("potential_due", c.potential_due);
  return out;
}

std::optional<fi::Classification> ClassificationFromJson(const json::Value& value) {
  const std::optional<fi::Outcome> outcome =
      fi::OutcomeFromInt(static_cast<int>(value.GetInt("outcome", -1)));
  const std::optional<fi::Symptom> symptom =
      fi::SymptomFromInt(static_cast<int>(value.GetInt("symptom", -1)));
  if (!outcome.has_value() || !symptom.has_value()) return std::nullopt;
  fi::Classification c;
  c.outcome = *outcome;
  c.symptom = *symptom;
  c.potential_due = value.GetBool("potential_due");
  return c;
}

json::Value RecordToJson(const fi::InjectionRecord& record) {
  json::Value out = json::Value::Object();
  out.Set("activated", record.activated);
  out.Set("kernel_name", record.kernel_name);
  out.Set("kernel_count", record.kernel_count);
  out.Set("static_index", static_cast<std::uint64_t>(record.static_index));
  out.Set("opcode", static_cast<std::int64_t>(record.opcode));
  out.Set("corrupted", record.corrupted);
  out.Set("pred_target", record.pred_target);
  out.Set("target_register", record.target_register);
  out.Set("register_width", record.register_width);
  out.Set("before_bits", record.before_bits);
  out.Set("after_bits", record.after_bits);
  out.Set("mask", record.mask);
  out.Set("sm_id", record.sm_id);
  out.Set("lane_id", record.lane_id);
  return out;
}

std::optional<fi::InjectionRecord> RecordFromJson(const json::Value& value) {
  const std::int64_t opcode = value.GetInt("opcode", -1);
  if (opcode < 0 || opcode >= sim::kOpcodeCount) return std::nullopt;
  fi::InjectionRecord record;
  record.activated = value.GetBool("activated");
  record.kernel_name = value.GetString("kernel_name");
  record.kernel_count = value.GetUint("kernel_count");
  record.static_index = static_cast<std::uint32_t>(value.GetUint("static_index"));
  record.opcode = static_cast<sim::Opcode>(opcode);
  record.corrupted = value.GetBool("corrupted");
  record.pred_target = value.GetBool("pred_target");
  record.target_register = static_cast<int>(value.GetInt("target_register", -1));
  record.register_width = static_cast<int>(value.GetInt("register_width", 32));
  record.before_bits = value.GetUint("before_bits");
  record.after_bits = value.GetUint("after_bits");
  record.mask = value.GetUint("mask");
  record.sm_id = static_cast<int>(value.GetInt("sm_id", -1));
  record.lane_id = static_cast<int>(value.GetInt("lane_id", -1));
  return record;
}

json::Value TransientParamsToJson(const fi::TransientFaultParams& params) {
  json::Value out = json::Value::Object();
  out.Set("group", static_cast<std::int64_t>(params.arch_state_id));
  out.Set("model", static_cast<std::int64_t>(params.bit_flip_model));
  out.Set("kernel_name", params.kernel_name);
  out.Set("kernel_count", params.kernel_count);
  out.Set("instruction_count", params.instruction_count);
  out.Set("destination_register", params.destination_register);
  out.Set("bit_pattern_value", params.bit_pattern_value);
  return out;
}

std::optional<fi::TransientFaultParams> TransientParamsFromJson(const json::Value& value) {
  const std::optional<fi::ArchStateId> group =
      fi::ArchStateIdFromInt(static_cast<int>(value.GetInt("group", -1)));
  const std::optional<fi::BitFlipModel> model =
      fi::BitFlipModelFromInt(static_cast<int>(value.GetInt("model", -1)));
  if (!group.has_value() || !model.has_value()) return std::nullopt;
  fi::TransientFaultParams params;
  params.arch_state_id = *group;
  params.bit_flip_model = *model;
  params.kernel_name = value.GetString("kernel_name");
  params.kernel_count = value.GetUint("kernel_count");
  params.instruction_count = value.GetUint("instruction_count");
  params.destination_register = value.GetDouble("destination_register");
  params.bit_pattern_value = value.GetDouble("bit_pattern_value");
  return params;
}

json::Value ReplayToJson(const sim::ReplayStats& replay) {
  json::Value out = json::Value::Object();
  out.Set("launches_fast_forwarded", replay.launches_fast_forwarded);
  out.Set("thread_instructions_saved", replay.thread_instructions_saved);
  out.Set("host_divergences", replay.host_divergences);
  out.Set("watchdog_fallbacks", replay.watchdog_fallbacks);
  return out;
}

sim::ReplayStats ReplayFromJson(const json::Value& value) {
  sim::ReplayStats replay;
  replay.launches_fast_forwarded = value.GetUint("launches_fast_forwarded");
  replay.thread_instructions_saved = value.GetUint("thread_instructions_saved");
  replay.host_divergences = value.GetUint("host_divergences");
  replay.watchdog_fallbacks = value.GetUint("watchdog_fallbacks");
  return replay;
}

}  // namespace

json::Value MetaToJson(const StoreMeta& meta) {
  json::Value out = json::Value::Object();
  out.Set("nvbitfi_result_store", static_cast<std::int64_t>(meta.version));
  out.Set("kind", meta.kind);
  out.Set("program", meta.program);
  out.Set("seed", meta.seed);
  out.Set("num_experiments", meta.num_experiments);
  out.Set("group", meta.group);
  out.Set("flip_model", meta.flip_model);
  out.Set("randomize_flip_model", meta.randomize_flip_model);
  out.Set("sm_id", meta.sm_id);
  out.Set("fixed_mask", static_cast<std::uint64_t>(meta.fixed_mask));
  out.Set("only_executed_opcodes", meta.only_executed_opcodes);
  out.Set("trace", meta.trace);
  out.Set("checkpoints", meta.checkpoints);
  out.Set("static_mode", meta.static_mode);
  out.Set("approximate_profile", meta.approximate_profile);
  out.Set("watchdog_multiplier", meta.watchdog_multiplier);
  out.Set("element", ElementKindName(meta.element));
  out.Set("workers", meta.workers);
  if (meta.shard_end > 0) {
    out.Set("shard_begin", meta.shard_begin);
    out.Set("shard_end", meta.shard_end);
  }
  if (meta.adaptive) {
    out.Set("adaptive", true);
    out.Set("adaptive_confidence", meta.policy.confidence);
    out.Set("adaptive_target_width", meta.policy.target_half_width);
    out.Set("adaptive_round_size", meta.policy.round_size);
    out.Set("adaptive_min_per_stratum", meta.policy.min_per_stratum);
    json::Value strata = json::Value::Array();
    for (const std::string& label : meta.strata) strata.Push(label);
    out.Set("strata", std::move(strata));
    json::Value rounds = json::Value::Array();
    for (const adaptive::RoundRecord& round : meta.rounds) {
      json::Value round_json = json::Value::Object();
      json::Value allocations = json::Value::Array();
      for (const adaptive::RoundAllocation& allocation : round.allocations) {
        json::Value pair = json::Value::Array();
        pair.Push(static_cast<std::uint64_t>(allocation.stratum));
        pair.Push(allocation.count);
        allocations.Push(std::move(pair));
      }
      round_json.Set("allocations", std::move(allocations));
      json::Value indexes = json::Value::Array();
      for (const std::uint64_t index : round.indexes) indexes.Push(index);
      round_json.Set("indexes", std::move(indexes));
      rounds.Push(std::move(round_json));
    }
    out.Set("rounds", std::move(rounds));
  }
  if (meta.replay_accounting) {
    out.Set("replay_accounting", true);
    out.Set("checkpointed_runs", meta.checkpointed_runs);
    out.Set("replay_launches", meta.replay_launches);
    out.Set("replay_instructions_saved", meta.replay_instructions_saved);
    out.Set("replay_fallbacks", meta.replay_fallbacks);
  }
  out.Set("golden", ArtifactsToJson(meta.golden));
  out.Set("profiling_run_cycles", meta.profiling_run_cycles);
  out.Set("profile", meta.profile_text);
  return out;
}

namespace {

std::optional<StoreMeta> MetaFromJson(const json::Value& value, std::string* error) {
  StoreMeta meta;
  meta.version = static_cast<int>(value.GetInt("nvbitfi_result_store", -1));
  if (meta.version != kResultStoreVersion) {
    *error = Format("unsupported store version %d (expected %d)", meta.version,
                    kResultStoreVersion);
    return std::nullopt;
  }
  meta.kind = value.GetString("kind");
  if (meta.kind != "transient" && meta.kind != "permanent") {
    *error = "store header has no valid 'kind'";
    return std::nullopt;
  }
  meta.program = value.GetString("program");
  meta.seed = value.GetUint("seed");
  meta.num_experiments = value.GetUint("num_experiments");
  meta.group = static_cast<int>(value.GetInt("group"));
  meta.flip_model = static_cast<int>(value.GetInt("flip_model"));
  meta.randomize_flip_model = value.GetBool("randomize_flip_model");
  meta.sm_id = static_cast<int>(value.GetInt("sm_id"));
  meta.fixed_mask = static_cast<std::uint32_t>(value.GetUint("fixed_mask"));
  meta.only_executed_opcodes = value.GetBool("only_executed_opcodes", true);
  meta.trace = value.GetBool("trace");
  meta.checkpoints = value.GetBool("checkpoints", true);
  meta.static_mode = value.GetString("static_mode", "off");
  meta.approximate_profile = value.GetBool("approximate_profile");
  meta.watchdog_multiplier = value.GetUint("watchdog_multiplier");
  meta.element = ElementKindFromName(value.GetString("element", "f32"))
                     .value_or(ElementKind::kF32);
  meta.workers = static_cast<int>(value.GetInt("workers", 1));
  meta.shard_begin = value.GetUint("shard_begin");
  meta.shard_end = value.GetUint("shard_end");
  meta.adaptive = value.GetBool("adaptive");
  if (meta.adaptive) {
    meta.policy.confidence = value.GetDouble("adaptive_confidence");
    meta.policy.target_half_width = value.GetDouble("adaptive_target_width");
    meta.policy.round_size = value.GetUint("adaptive_round_size");
    meta.policy.min_per_stratum = value.GetUint("adaptive_min_per_stratum");
    if (const json::Value* strata = value.Find("strata");
        strata != nullptr && strata->is_array()) {
      for (std::size_t i = 0; i < strata->size(); ++i) {
        meta.strata.push_back(strata->at(i).AsString());
      }
    }
    if (const json::Value* rounds = value.Find("rounds");
        rounds != nullptr && rounds->is_array()) {
      for (std::size_t r = 0; r < rounds->size(); ++r) {
        const json::Value& round_json = rounds->at(r);
        adaptive::RoundRecord round;
        if (const json::Value* allocations = round_json.Find("allocations");
            allocations != nullptr && allocations->is_array()) {
          for (std::size_t a = 0; a < allocations->size(); ++a) {
            const json::Value& pair = allocations->at(a);
            if (!pair.is_array() || pair.size() != 2) {
              *error = "malformed adaptive round allocation";
              return std::nullopt;
            }
            adaptive::RoundAllocation allocation;
            allocation.stratum = static_cast<std::uint32_t>(pair.at(0).AsUint());
            allocation.count = pair.at(1).AsUint();
            round.allocations.push_back(allocation);
          }
        }
        if (const json::Value* indexes = round_json.Find("indexes");
            indexes != nullptr && indexes->is_array()) {
          for (std::size_t i = 0; i < indexes->size(); ++i) {
            round.indexes.push_back(indexes->at(i).AsUint());
          }
        }
        meta.rounds.push_back(std::move(round));
      }
    }
  }
  meta.replay_accounting = value.GetBool("replay_accounting");
  meta.checkpointed_runs = value.GetUint("checkpointed_runs");
  meta.replay_launches = value.GetUint("replay_launches");
  meta.replay_instructions_saved = value.GetUint("replay_instructions_saved");
  meta.replay_fallbacks = value.GetUint("replay_fallbacks");
  if (const json::Value* golden = value.Find("golden"); golden != nullptr) {
    meta.golden = ArtifactsFromJson(*golden);
  }
  meta.profiling_run_cycles = value.GetUint("profiling_run_cycles");
  meta.profile_text = value.GetString("profile");
  return meta;
}

}  // namespace

json::Value TransientRunToJson(std::size_t index, const fi::InjectionRun& run,
                               const SdcAnatomy* anatomy,
                               const sim::ReplayStats* replay) {
  json::Value out = json::Value::Object();
  out.Set("index", static_cast<std::uint64_t>(index));
  out.Set("trivially_masked", run.trivially_masked);
  out.Set("statically_masked", run.statically_masked);
  if (!run.trivially_masked) {
    out.Set("params", TransientParamsToJson(run.params));
    out.Set("record", RecordToJson(run.record));
    out.Set("artifacts", ArtifactsToJson(run.artifacts));
  }
  out.Set("classification", ClassificationToJson(run.classification));
  if (run.propagation.has_value()) out.Set("propagation", ToJson(*run.propagation));
  if (anatomy != nullptr) out.Set("anatomy", ToJson(*anatomy));
  if (replay != nullptr) out.Set("replay", ReplayToJson(*replay));
  return out;
}

namespace {

json::Value PermanentRunToJson(std::size_t index, const fi::PermanentRun& run,
                               const SdcAnatomy* anatomy) {
  json::Value out = json::Value::Object();
  out.Set("index", static_cast<std::uint64_t>(index));
  json::Value params = json::Value::Object();
  params.Set("sm_id", run.params.sm_id);
  params.Set("lane_id", run.params.lane_id);
  params.Set("bit_mask", static_cast<std::uint64_t>(run.params.bit_mask));
  params.Set("opcode_id", run.params.opcode_id);
  out.Set("params", std::move(params));
  out.Set("activations", run.activations);
  out.Set("weight", run.weight);
  out.Set("classification", ClassificationToJson(run.classification));
  out.Set("artifacts", ArtifactsToJson(run.artifacts));
  if (anatomy != nullptr) out.Set("anatomy", ToJson(*anatomy));
  return out;
}

// Parses one record line into `store`; false on malformed content.
bool ParseRecordLine(const json::Value& value, LoadedStore* store,
                     std::size_t* index_out) {
  const json::Value* index_value = value.Find("index");
  if (index_value == nullptr) return false;
  const std::size_t index = index_value->AsUint();
  if (index_out != nullptr) *index_out = index;
  const json::Value* classification_value = value.Find("classification");
  if (classification_value == nullptr) return false;
  const std::optional<fi::Classification> classification =
      ClassificationFromJson(*classification_value);
  if (!classification.has_value()) return false;

  std::optional<SdcAnatomy> anatomy;
  if (const json::Value* anatomy_value = value.Find("anatomy");
      anatomy_value != nullptr) {
    anatomy = SdcAnatomyFromJson(*anatomy_value);
    if (!anatomy.has_value()) return false;
  }

  if (store->meta.kind == "permanent") {
    const json::Value* params = value.Find("params");
    if (params == nullptr) return false;
    const std::int64_t opcode_id = params->GetInt("opcode_id", -1);
    if (opcode_id < 0 || opcode_id >= sim::kOpcodeCount) return false;
    fi::PermanentRun run;
    run.params.sm_id = static_cast<int>(params->GetInt("sm_id"));
    run.params.lane_id = static_cast<int>(params->GetInt("lane_id"));
    run.params.bit_mask = static_cast<std::uint32_t>(params->GetUint("bit_mask"));
    run.params.opcode_id = static_cast<int>(opcode_id);
    run.activations = value.GetUint("activations");
    run.weight = value.GetDouble("weight");
    run.classification = *classification;
    if (const json::Value* artifacts = value.Find("artifacts"); artifacts != nullptr) {
      run.artifacts = ArtifactsFromJson(*artifacts);
    }
    store->permanent[index] = std::move(run);
  } else {
    fi::InjectionRun run;
    run.trivially_masked = value.GetBool("trivially_masked");
    run.statically_masked = value.GetBool("statically_masked");
    run.classification = *classification;
    if (!run.trivially_masked) {
      const json::Value* params = value.Find("params");
      const json::Value* record = value.Find("record");
      const json::Value* artifacts = value.Find("artifacts");
      if (params == nullptr || record == nullptr || artifacts == nullptr) return false;
      std::optional<fi::TransientFaultParams> parsed_params =
          TransientParamsFromJson(*params);
      std::optional<fi::InjectionRecord> parsed_record = RecordFromJson(*record);
      if (!parsed_params.has_value() || !parsed_record.has_value()) return false;
      run.params = *std::move(parsed_params);
      run.record = *std::move(parsed_record);
      run.artifacts = ArtifactsFromJson(*artifacts);
    }
    if (const json::Value* propagation = value.Find("propagation");
        propagation != nullptr) {
      run.propagation = PropagationRecordFromJson(*propagation);
      if (!run.propagation.has_value()) return false;
    }
    if (const json::Value* replay = value.Find("replay"); replay != nullptr) {
      store->replay[index] = ReplayFromJson(*replay);
    }
    store->transient[index] = std::move(run);
  }
  if (anatomy.has_value()) store->anatomy[index] = *std::move(anatomy);
  return true;
}

}  // namespace

bool StoreMeta::CompatibleWith(const StoreMeta& other) const {
  return version == other.version && kind == other.kind && program == other.program &&
         seed == other.seed && num_experiments == other.num_experiments &&
         group == other.group && flip_model == other.flip_model &&
         randomize_flip_model == other.randomize_flip_model &&
         sm_id == other.sm_id && fixed_mask == other.fixed_mask &&
         only_executed_opcodes == other.only_executed_opcodes &&
         trace == other.trace && checkpoints == other.checkpoints &&
         static_mode == other.static_mode &&
         approximate_profile == other.approximate_profile &&
         watchdog_multiplier == other.watchdog_multiplier &&
         element == other.element && shard_begin == other.shard_begin &&
         shard_end == other.shard_end && adaptive == other.adaptive &&
         (!adaptive ||
          (policy.confidence == other.policy.confidence &&
           policy.target_half_width == other.policy.target_half_width &&
           policy.round_size == other.policy.round_size &&
           policy.min_per_stratum == other.policy.min_per_stratum));
}

StoreMeta TransientStoreMeta(const std::string& program,
                             const fi::TransientCampaignConfig& config,
                             const fi::RunArtifacts& golden,
                             std::uint64_t profiling_run_cycles,
                             const fi::ProgramProfile& profile) {
  StoreMeta meta;
  meta.kind = "transient";
  meta.program = program;
  meta.seed = config.seed;
  meta.num_experiments =
      config.num_injections > 0 ? static_cast<std::uint64_t>(config.num_injections) : 0;
  meta.group = static_cast<int>(config.group);
  meta.flip_model = static_cast<int>(config.flip_model);
  meta.randomize_flip_model = config.randomize_flip_model;
  meta.trace = config.trace;
  meta.checkpoints = config.checkpoints;
  meta.static_mode = std::string(fi::StaticSiteModeName(config.static_mode));
  meta.approximate_profile = config.profiling == fi::ProfilerTool::Mode::kApproximate;
  meta.watchdog_multiplier = config.watchdog_multiplier;
  meta.workers = config.num_workers;
  meta.golden = golden;
  meta.golden.stdout_text.clear();
  meta.golden.output_file.clear();
  meta.golden.cuda_errors.clear();
  meta.golden.dmesg.clear();
  meta.profiling_run_cycles = profiling_run_cycles;
  meta.profile_text = profile.Serialize();
  return meta;
}

StoreMeta PermanentStoreMeta(const std::string& program,
                             const fi::PermanentCampaignConfig& config,
                             std::uint64_t num_experiments,
                             const fi::RunArtifacts& golden,
                             const fi::ProgramProfile& profile) {
  StoreMeta meta;
  meta.kind = "permanent";
  meta.program = program;
  meta.seed = config.seed;
  meta.num_experiments = num_experiments;
  meta.sm_id = config.sm_id;
  meta.fixed_mask = config.fixed_mask;
  meta.only_executed_opcodes = config.only_executed_opcodes;
  meta.approximate_profile = profile.approximate;
  meta.watchdog_multiplier = config.watchdog_multiplier;
  meta.workers = config.num_workers;
  meta.golden = golden;
  meta.golden.stdout_text.clear();
  meta.golden.output_file.clear();
  meta.golden.cuda_errors.clear();
  meta.golden.dmesg.clear();
  meta.profile_text = profile.Serialize();
  return meta;
}

std::optional<LoadedStore> LoadResultStore(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = Format("cannot read '%s'", path.c_str());
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << file.rdbuf();
  const std::string text = ss.str();
  const std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || TrimWhitespace(lines[0]).empty()) {
    if (error != nullptr) *error = Format("'%s' has no store header", path.c_str());
    return std::nullopt;
  }

  std::string header_error;
  const std::optional<json::Value> header = json::Value::Parse(lines[0]);
  if (!header.has_value()) {
    if (error != nullptr) *error = Format("'%s': malformed store header", path.c_str());
    return std::nullopt;
  }
  LoadedStore store;
  const std::optional<StoreMeta> meta = MetaFromJson(*header, &header_error);
  if (!meta.has_value()) {
    if (error != nullptr) *error = Format("'%s': %s", path.c_str(), header_error.c_str());
    return std::nullopt;
  }
  store.meta = *meta;

  // Find the last non-empty line: only THAT line may be malformed (the
  // partial write of a killed campaign); corruption anywhere else is an
  // error, not something to silently skip.
  std::size_t last = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (!TrimWhitespace(lines[i]).empty()) last = i;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (TrimWhitespace(lines[i]).empty()) continue;
    const std::optional<json::Value> value = json::Value::Parse(lines[i]);
    std::size_t index = 0;
    if (!value.has_value() || !ParseRecordLine(*value, &store, &index)) {
      if (i == last) continue;  // truncated tail record
      if (error != nullptr) {
        *error = Format("'%s': malformed record on line %zu", path.c_str(), i + 1);
      }
      return std::nullopt;
    }
    store.record_lines[index] = lines[i];
  }
  return store;
}

std::unique_ptr<ResultStore> ResultStore::Open(const std::string& path,
                                               const StoreMeta& meta, bool resume,
                                               std::string* error) {
  LoadedStore loaded;
  loaded.meta = meta;
  if (resume && FileExists(path)) {
    std::optional<LoadedStore> existing = LoadResultStore(path, error);
    if (!existing.has_value()) return nullptr;
    if (!meta.CompatibleWith(existing->meta)) {
      if (error != nullptr) {
        *error = Format("'%s' was written by a different campaign "
                        "(program/seed/size/model mismatch); not resuming",
                        path.c_str());
      }
      return nullptr;
    }
    loaded = *std::move(existing);
  }

  // (Re)write the file in a clean canonical state: header + every loaded
  // record.  On resume this drops the truncated trailing line a killed
  // campaign may have left, so future loads never see mid-file corruption.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = Format("cannot write '%s'", path.c_str());
    return nullptr;
  }
  auto write_line = [file](const std::string& line) {
    std::fputs(line.c_str(), file);
    std::fputc('\n', file);
  };
  write_line(MetaToJson(loaded.meta).Dump());
  // Loaded records are replayed byte-for-byte: re-serializing could disturb
  // shard-only fields (per-run replay stats) or merge/resume byte identity.
  for (const auto& [index, line] : loaded.record_lines) {
    (void)index;
    write_line(line);
  }
  std::fflush(file);
  return std::unique_ptr<ResultStore>(new ResultStore(path, file, std::move(loaded)));
}

ResultStore::~ResultStore() {
  if (file_ != nullptr) std::fclose(file_);
}

void ResultStore::AppendTransient(std::size_t index, const fi::InjectionRun& run,
                                  const SdcAnatomy* anatomy,
                                  const sim::ReplayStats* replay) {
  const telemetry::ScopedPhase span(telemetry::Phase::kStoreAppend);
  const std::string line = TransientRunToJson(index, run, anatomy, replay).Dump();
  std::lock_guard<std::mutex> lock(mu_);
  lines_[index] = line;
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void ResultStore::AppendPermanent(std::size_t index, const fi::PermanentRun& run,
                                  const SdcAnatomy* anatomy) {
  const telemetry::ScopedPhase span(telemetry::Phase::kStoreAppend);
  const std::string line = PermanentRunToJson(index, run, anatomy).Dump();
  std::lock_guard<std::mutex> lock(mu_);
  lines_[index] = line;
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void ResultStore::FinalizeMeta(const StoreMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* file = std::freopen(path_.c_str(), "wb", file_);
  if (file == nullptr) return;  // store left as appended; still loadable
  file_ = file;
  loaded_.meta = meta;
  std::fputs(MetaToJson(meta).Dump().c_str(), file_);
  std::fputc('\n', file_);
  for (const auto& [index, line] : lines_) {
    (void)index;
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
  }
  std::fflush(file_);
}

fi::TransientCampaignResult RebuildTransientResult(const LoadedStore& store) {
  fi::TransientCampaignResult result;
  result.program = store.meta.program;
  result.golden = store.meta.golden;
  result.profiling_run.cycles = store.meta.profiling_run_cycles;
  if (const std::optional<fi::ProgramProfile> profile =
          fi::ProgramProfile::Parse(store.meta.profile_text);
      profile.has_value()) {
    result.profile = *profile;
  }
  result.workers = store.meta.workers;
  if (store.meta.replay_accounting && store.meta.checkpoints) {
    // Finalized store: accounting was persisted in the header (satisfies
    // `analyze` without re-simulating).
    result.checkpoints_used = true;
    result.checkpointed_runs = store.meta.checkpointed_runs;
    result.replay_launches = store.meta.replay_launches;
    result.replay_instructions_saved = store.meta.replay_instructions_saved;
    result.replay_fallbacks = store.meta.replay_fallbacks;
  } else if (!store.replay.empty()) {
    // Unfinalized shard store: sum the per-record replay stats.
    result.checkpoints_used = true;
    for (const auto& [index, replay] : store.replay) {
      (void)index;
      ++result.checkpointed_runs;
      result.replay_launches += replay.launches_fast_forwarded;
      result.replay_instructions_saved += replay.thread_instructions_saved;
      result.replay_fallbacks += replay.host_divergences + replay.watchdog_fallbacks;
    }
  }
  for (const auto& [index, run] : store.transient) {
    (void)index;
    result.injections.push_back(run);
  }
  for (const fi::InjectionRun& run : result.injections) {
    result.counts.Add(run.classification);
    if (run.trivially_masked) {
      ++result.trivially_masked;
    } else if (run.statically_masked) {
      ++result.statically_pruned;
    } else if (!run.record.activated) {
      ++result.never_activated;
    }
  }
  return result;
}

fi::PermanentCampaignResult RebuildPermanentResult(const LoadedStore& store) {
  fi::PermanentCampaignResult result;
  result.program = store.meta.program;
  result.workers = store.meta.workers;
  if (const std::optional<fi::ProgramProfile> profile =
          fi::ProgramProfile::Parse(store.meta.profile_text);
      profile.has_value()) {
    result.executed_opcodes = profile->ExecutedOpcodes().size();
  }
  for (const auto& [index, run] : store.permanent) {
    (void)index;
    result.runs.push_back(run);
  }
  for (const fi::PermanentRun& run : result.runs) {
    result.counts.Add(run.classification);
    result.weighted.Add(run.classification, run.weight);
  }
  return result;
}

AnatomyBreakdown RebuildAnatomy(const LoadedStore& store) {
  AnatomyBreakdown breakdown;
  breakdown.total_runs = store.completed();
  for (const auto& [index, anatomy] : store.anatomy) {
    if (store.meta.kind == "permanent") {
      const auto it = store.permanent.find(index);
      if (it == store.permanent.end()) continue;
      breakdown.Add("", it->second.params.opcode(), anatomy);
    } else {
      const auto it = store.transient.find(index);
      if (it == store.transient.end()) continue;
      const fi::InjectionRun& run = it->second;
      breakdown.Add(run.params.kernel_name,
                    run.record.activated
                        ? std::optional<sim::Opcode>(run.record.opcode)
                        : std::nullopt,
                    anatomy);
    }
  }
  return breakdown;
}

}  // namespace nvbitfi::analysis
