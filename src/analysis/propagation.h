// Propagation analysis: aggregates the per-run PropagationRecords a traced
// campaign produces (src/trace/) into the campaign-level propagation report
// that `nvbitfi analyze` prints.
//
// The report answers the questions the outcome classification cannot:
//  - how far does a fault travel before it dies (masking-distance histogram,
//    bucketed per Table II opcode partition group of the masking opcode),
//  - what fraction of faults never reach a store,
//  - per-kernel escape rates (taint alive in global memory, or control /
//    address divergence, at program end),
//  - and the taint-vs-outcome consistency check: a record that claims the
//    fault fully masked must come from a run classified Masked (the
//    soundness contract of trace/taint_tracker.h), counted here as
//    `consistency_violations` when broken.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/json.h"
#include "analysis/result_store.h"
#include "core/campaign.h"
#include "trace/propagation.h"

namespace nvbitfi::analysis {

// JSON round-trip for the result store (record lines carry "propagation").
json::Value ToJson(const trace::PropagationRecord& record);
std::optional<trace::PropagationRecord> PropagationRecordFromJson(
    const json::Value& value);

// Dynamic-instruction distance buckets for the masking / first-store
// histograms: 0, 1-3, 4-15, 16-63, 64-255, 256+.
inline constexpr int kDistanceBucketCount = 6;
std::string_view DistanceBucketName(int bucket);
int DistanceBucket(std::uint64_t distance);

using DistanceHistogram = std::array<std::uint64_t, kDistanceBucketCount>;

// Aggregate over many traced runs.
struct PropagationAggregate {
  std::uint64_t traced_runs = 0;
  std::uint64_t injected = 0;       // corruption architecturally landed
  std::uint64_t fully_masked = 0;   // taint provably dead at program end
  std::uint64_t dead_before_store = 0;  // fully masked, no tainted store
  std::uint64_t reached_store = 0;
  std::uint64_t escaped = 0;  // injected && !fully_masked
  std::uint64_t control_divergence = 0;
  std::uint64_t address_divergence = 0;
  std::uint64_t live_exit = 0;  // launch ended with live register taint
  std::uint64_t host_visible = 0;  // tainted global bytes at a launch boundary
  std::uint64_t overwrite_masks = 0;
  std::uint64_t absorb_masks = 0;
  std::uint64_t tainted_instructions = 0;
  std::uint64_t dynamic_instructions = 0;
  std::uint64_t graph_truncated = 0;
  std::uint64_t shadow_saturated = 0;
  DistanceHistogram first_store_distance{};

  void Add(const trace::PropagationRecord& record);
  PropagationAggregate& operator+=(const PropagationAggregate& other);
};

// Campaign-wide aggregate plus the per-kernel (escape-rate) and
// per-opcode-group breakdowns, and the masking-distance histogram keyed by
// the Table II partition group of the *masking* opcode.
struct PropagationBreakdown {
  std::uint64_t total_runs = 0;   // every experiment, traced or not
  PropagationAggregate campaign;
  std::map<std::string, PropagationAggregate> by_kernel;
  std::map<std::string, PropagationAggregate> by_opcode_group;
  std::map<std::string, DistanceHistogram> masking_distance;
  std::uint64_t consistency_violations = 0;

  // `kernel` is the injection kernel; `opcode` the injected-at opcode (absent
  // when the fault never activated).
  void Add(std::string_view kernel, std::optional<sim::Opcode> opcode,
           const trace::PropagationRecord& record,
           const fi::Classification& classification);
};

// Builds the breakdown for a completed in-memory traced campaign / a loaded
// result store.  Runs without a propagation record only bump total_runs.
PropagationBreakdown BuildTransientPropagation(
    const fi::TransientCampaignResult& result);
PropagationBreakdown RebuildPropagation(const LoadedStore& store);

// Text report + machine-readable form.
std::string PropagationReportText(const PropagationBreakdown& breakdown);
json::Value PropagationReportJson(const PropagationBreakdown& breakdown);

}  // namespace nvbitfi::analysis
