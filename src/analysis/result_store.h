// Persistent campaign result store (versioned JSONL).
//
// Line 1 is a header object identifying the store format version, the
// campaign configuration, and the shared campaign state (golden-run
// accounting and the serialized profile).  Every following line is one
// completed experiment: its index, fault parameters, injection record,
// classification, run accounting, and — for SDCs — the anatomy record.
//
// Records are appended (and flushed) as workers complete, so a killed
// campaign leaves a loadable prefix: a possibly-truncated final line is
// ignored on load.  Because campaigns are deterministic by construction
// (per-experiment Rng streams pre-forked in index order), a campaign resumed
// from a partial store — re-running only the missing indexes — produces
// results bit-identical to an uninterrupted campaign.
//
// `nvbitfi analyze` rebuilds campaign results, reports, and anatomy
// summaries from a store without re-simulating anything.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "adaptive/round.h"
#include "analysis/anatomy.h"
#include "analysis/json.h"
#include "core/campaign.h"
#include "sassim/runtime/checkpoint.h"

namespace nvbitfi::analysis {

// v5 adds adaptive-campaign headers: the sampling policy joins the resume
// identity and the per-round allocation schedule is persisted so a resumed
// adaptive campaign replays it bit-for-bit.
inline constexpr int kResultStoreVersion = 5;

// Campaign identity + shared state persisted in the header line.  The
// identity fields decide whether a store can be resumed by a given campaign;
// the rest lets `analyze` rebuild the report without re-running anything.
struct StoreMeta {
  int version = kResultStoreVersion;
  std::string kind;  // "transient" | "permanent"
  std::string program;
  std::uint64_t seed = 0;
  std::uint64_t num_experiments = 0;
  // Transient identity.
  int group = 0;
  int flip_model = 0;
  bool randomize_flip_model = false;
  // Permanent identity.
  int sm_id = 0;
  std::uint32_t fixed_mask = 0;
  bool only_executed_opcodes = true;
  // Shared.
  bool trace = false;  // records carry propagation records (traced campaign)
  // Checkpoint-replay campaign (golden-prefix fast-forwarding).  Results are
  // bit-identical either way, but the flag joins the resume identity so a
  // store is never silently completed under a different engine configuration
  // than it was started with (mixed shards would defeat the identity test).
  bool checkpoints = true;
  // Static-liveness site handling ("off" | "check" | "prune").  Part of the
  // resume identity: a pruned store holds synthesized records that a
  // non-pruning campaign would have simulated, and vice versa.
  std::string static_mode = "off";
  bool approximate_profile = false;
  std::uint64_t watchdog_multiplier = 0;
  ElementKind element = ElementKind::kF32;
  int workers = 1;
  // Shard provenance: a shard store holds only experiments in
  // [shard_begin, shard_end) of the full campaign.  0/0 (the default) means
  // an unsharded store covering every index.  Part of the resume identity so
  // a crashed shard is only ever resumed as the SAME shard; the merge tool
  // strips the range again, so merged stores read as unsharded.
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;
  // Checkpoint-replay accounting, persisted when a campaign (or merge)
  // finalizes the store.  Mirrors TransientCampaignResult's accounting so
  // `nvbitfi analyze` reports replay savings without re-simulating.  Not part
  // of the resume identity: an in-progress store simply has none yet.
  bool replay_accounting = false;
  std::uint64_t checkpointed_runs = 0;
  std::uint64_t replay_launches = 0;
  std::uint64_t replay_instructions_saved = 0;
  std::uint64_t replay_fallbacks = 0;
  // Adaptive campaign (store v5).  The policy joins the resume identity: a
  // store scheduled under one stopping rule must never be completed under
  // another.  `strata` and `rounds` are progress state, not identity — they
  // are rewritten on every round boundary (FinalizeMeta) so a killed
  // adaptive campaign resumes with its schedule intact, and `analyze` can
  // audit round accounting without re-deriving the stratification.
  bool adaptive = false;
  adaptive::AdaptivePolicy policy;
  std::vector<std::string> strata;  // stratum id -> label
  std::vector<adaptive::RoundRecord> rounds;
  // Golden-run accounting (outputs are not persisted) and the profile, for
  // report regeneration.
  fi::RunArtifacts golden;
  std::uint64_t profiling_run_cycles = 0;
  std::string profile_text;  // ProgramProfile::Serialize()

  // True when `other` describes the same deterministic experiment sequence,
  // i.e. resuming from a store with this header is sound.
  bool CompatibleWith(const StoreMeta& other) const;
};

StoreMeta TransientStoreMeta(const std::string& program,
                             const fi::TransientCampaignConfig& config,
                             const fi::RunArtifacts& golden,
                             std::uint64_t profiling_run_cycles,
                             const fi::ProgramProfile& profile);
StoreMeta PermanentStoreMeta(const std::string& program,
                             const fi::PermanentCampaignConfig& config,
                             std::uint64_t num_experiments,
                             const fi::RunArtifacts& golden,
                             const fi::ProgramProfile& profile);

// Everything loaded back from a store file.
struct LoadedStore {
  StoreMeta meta;
  std::map<std::size_t, fi::InjectionRun> transient;
  std::map<std::size_t, fi::PermanentRun> permanent;
  std::map<std::size_t, SdcAnatomy> anatomy;  // SDC runs only
  // Per-run replay stats (shard stores only; canonical stores never carry
  // them so checkpointed and uncheckpointed records stay byte-identical).
  std::map<std::size_t, sim::ReplayStats> replay;
  // The raw serialized record lines, preserved so resume rewrites and shard
  // merges reproduce loaded records byte-for-byte instead of re-serializing.
  std::map<std::size_t, std::string> record_lines;

  std::size_t completed() const {
    return meta.kind == "permanent" ? permanent.size() : transient.size();
  }
};

// Store serialization primitives, shared with the shard merger so a merged
// store is byte-identical to an unsharded campaign's by construction.
json::Value MetaToJson(const StoreMeta& meta);
json::Value TransientRunToJson(std::size_t index, const fi::InjectionRun& run,
                               const SdcAnatomy* anatomy,
                               const sim::ReplayStats* replay = nullptr);

// Parses a store file.  A malformed or truncated *final* record line is
// skipped (the footprint of a killed campaign); a malformed header or a
// version mismatch is an error.
std::optional<LoadedStore> LoadResultStore(const std::string& path, std::string* error);

// Append-mode writer.  Thread-safe: campaign workers call Append* directly.
class ResultStore {
 public:
  // Creates `path` with a fresh header.  With `resume`, an existing
  // compatible store is loaded first (its records are served via loaded())
  // and appending continues where it left off; an incompatible or corrupt
  // existing store is an error (nullptr + *error).
  static std::unique_ptr<ResultStore> Open(const std::string& path,
                                           const StoreMeta& meta, bool resume,
                                           std::string* error);

  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  // Serializes one completed run and flushes it.  `anatomy` may be null
  // (non-SDC runs).  `replay` (shard stores only) persists that run's
  // checkpoint-replay stats atomically with the record; canonical stores
  // must pass null so their records stay byte-identical to an
  // uncheckpointed campaign's.
  void AppendTransient(std::size_t index, const fi::InjectionRun& run,
                       const SdcAnatomy* anatomy,
                       const sim::ReplayStats* replay = nullptr);
  void AppendPermanent(std::size_t index, const fi::PermanentRun& run,
                       const SdcAnatomy* anatomy);

  // Rewrites the store in place with an updated header (records are kept
  // byte-for-byte).  Campaigns call this at completion to persist
  // checkpoint-replay accounting in the header without ever touching record
  // bytes; the store stays resumable throughout.
  void FinalizeMeta(const StoreMeta& meta);

  // Runs loaded from the resumed store; campaigns pass these as `preloaded`
  // so completed indexes are skipped.
  const LoadedStore& loaded() const { return loaded_; }
  const std::string& path() const { return path_; }

 private:
  ResultStore(std::string path, std::FILE* file, LoadedStore loaded)
      : path_(std::move(path)), file_(file), loaded_(std::move(loaded)) {
    lines_ = loaded_.record_lines;
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  LoadedStore loaded_;
  // Every record line written or loaded so far, by index — FinalizeMeta
  // rewrites the file from this map so record bytes never change.
  std::map<std::size_t, std::string> lines_;
  std::mutex mu_;
};

// Rebuilds campaign results from a loaded store (wall_seconds is zero: no
// injection phase ran).  Counts, overheads, and CSV rows match the original
// campaign's exactly.
fi::TransientCampaignResult RebuildTransientResult(const LoadedStore& store);
fi::PermanentCampaignResult RebuildPermanentResult(const LoadedStore& store);

// Aggregates the per-run anatomy records persisted in the store.
AnatomyBreakdown RebuildAnatomy(const LoadedStore& store);

}  // namespace nvbitfi::analysis
