// SDC anatomy: *what* a silent data corruption looked like, not just that it
// happened.
//
// The classifier diffs a faulty run's output buffer against the golden run's
// (element-wise, FP32 or FP64 interpretation) and reduces the corruption to a
// compact per-run record: which bit positions flipped, whether the flip was
// single-bit / multi-bit-within-a-byte / word-granular / multi-word, how
// large the relative numeric error was, and how the corrupted elements were
// laid out in the buffer (single element, contiguous cluster, scattered).
// Per-run records are bounded (`max_sampled_elements`), so capturing anatomy
// for thousands of runs stays cheap.
//
// Records aggregate per static kernel, per Table II opcode partition group,
// and campaign-wide — the error-model inputs that "The Anatomy of Silent
// Data Corruption" mines from production fleets (PAPERS.md).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/json.h"
#include "core/campaign.h"
#include "core/fault_model.h"
#include "core/outcome.h"

namespace nvbitfi::analysis {

// How the output buffer's bytes are interpreted when diffing.
enum class ElementKind : std::uint8_t { kF32, kF64 };

std::string_view ElementKindName(ElementKind kind);
std::optional<ElementKind> ElementKindFromName(std::string_view name);

struct AnatomyConfig {
  ElementKind element = ElementKind::kF32;
  // Bound on the per-run diff capture: bit/magnitude histograms and the
  // stored sample cover at most this many corrupted elements (extent and the
  // corrupted-element count always cover the whole buffer).
  std::size_t max_sampled_elements = 64;
};

// The corruption shape of one SDC run.
enum class SdcPattern : std::uint8_t {
  kNoOutputDiff,     // SDC came from stdout / app check; output buffer clean
  kSingleBit,        // one element, exactly one flipped bit
  kMultiBitByte,     // one element, >1 flipped bits all within one byte
  kMultiBitWord,     // one element, flipped bits spanning multiple bytes
  kMultiWord,        // more than one corrupted element
};
inline constexpr int kSdcPatternCount = 5;

std::string_view SdcPatternName(SdcPattern pattern);

// Relative-magnitude buckets for FP outputs: |faulty-golden| / max(|golden|,
// 1e-30), plus a bucket for corrupted values that are no longer finite.
inline constexpr int kMagnitudeBucketCount = 6;
std::string_view MagnitudeBucketName(int bucket);
int MagnitudeBucket(double golden, double faulty);

// How corrupted elements are distributed over the buffer.
enum class SpatialExtent : std::uint8_t {
  kNone,           // no corrupted elements
  kSingleElement,  // exactly one
  kClustered,      // >=50% of the [first,last] span is corrupted
  kScattered,
};
inline constexpr int kSpatialExtentCount = 4;

std::string_view SpatialExtentName(SpatialExtent extent);

struct CorruptedElement {
  std::uint64_t index = 0;      // element index in the output buffer
  std::uint64_t golden_bits = 0;
  std::uint64_t faulty_bits = 0;

  bool operator==(const CorruptedElement&) const = default;
};

// Per-run anatomy record; persisted alongside the run in the result store.
struct SdcAnatomy {
  ElementKind element = ElementKind::kF32;
  std::uint64_t elements_compared = 0;
  std::uint64_t corrupted_elements = 0;  // over the full buffer
  bool stdout_diff = false;
  bool size_mismatch = false;  // output buffers differ in length
  SdcPattern pattern = SdcPattern::kNoOutputDiff;
  SpatialExtent extent = SpatialExtent::kNone;
  std::uint64_t first_corrupted = 0;
  std::uint64_t last_corrupted = 0;
  // Flipped-bit-position histogram over the sampled corrupted elements
  // (FP32 uses positions 0..31).
  std::array<std::uint32_t, 64> bit_histogram{};
  std::array<std::uint32_t, kMagnitudeBucketCount> magnitude{};
  std::vector<CorruptedElement> sample;  // first max_sampled_elements diffs

  bool operator==(const SdcAnatomy&) const = default;
};

// Diffs one run against the golden run.  Works for any run; campaigns call
// it for runs classified as SDC.
SdcAnatomy AnalyzeSdc(const fi::RunArtifacts& golden, const fi::RunArtifacts& run,
                      const AnatomyConfig& config = {});

// JSON round-trip for the result store.
json::Value ToJson(const SdcAnatomy& anatomy);
std::optional<SdcAnatomy> SdcAnatomyFromJson(const json::Value& value);

// The Table II partition groups (1..6) cover every opcode exactly once;
// anatomy aggregates key on this group.
fi::ArchStateId PartitionGroupOf(sim::Opcode opcode);

// Aggregate over many runs' anatomy records.
struct AnatomyAggregate {
  std::uint64_t sdc_runs = 0;
  std::uint64_t corrupted_elements = 0;
  std::array<std::uint64_t, kSdcPatternCount> patterns{};
  std::array<std::uint64_t, kSpatialExtentCount> extents{};
  std::array<std::uint64_t, 64> bit_histogram{};
  std::array<std::uint64_t, kMagnitudeBucketCount> magnitude{};

  void Add(const SdcAnatomy& anatomy);
  AnatomyAggregate& operator+=(const AnatomyAggregate& other);
};

// Campaign-wide aggregate plus the per-static-kernel and per-opcode-group
// breakdowns.
struct AnatomyBreakdown {
  std::uint64_t total_runs = 0;  // all experiments, not just SDCs
  AnatomyAggregate campaign;
  std::map<std::string, AnatomyAggregate> by_kernel;
  std::map<std::string, AnatomyAggregate> by_opcode_group;

  // `kernel` may be empty (permanent faults are not kernel-scoped).
  void Add(std::string_view kernel, std::optional<sim::Opcode> opcode,
           const SdcAnatomy& anatomy);
};

// Builds the breakdown for a completed in-memory campaign (the artifacts
// still hold full outputs).  SDC runs only; trivially-masked runs never are.
AnatomyBreakdown BuildTransientAnatomy(const fi::TransientCampaignResult& result,
                                       const AnatomyConfig& config = {});
AnatomyBreakdown BuildPermanentAnatomy(const fi::PermanentCampaignResult& result,
                                       const fi::RunArtifacts& golden,
                                       const AnatomyConfig& config = {});

// Text report: pattern classes, bit-position histogram, magnitude buckets,
// spatial extent, and the per-kernel / per-opcode-group tables.
std::string AnatomyReportText(const AnatomyBreakdown& breakdown);

// Machine-readable form of the same aggregation.
json::Value AnatomyReportJson(const AnatomyBreakdown& breakdown);

}  // namespace nvbitfi::analysis
