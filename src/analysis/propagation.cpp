#include "analysis/propagation.h"

#include "common/strings.h"
#include "core/fault_model.h"
#include "core/outcome.h"

namespace nvbitfi::analysis {
namespace {

double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

json::Value MaskingEventToJson(const trace::MaskingEvent& event) {
  json::Value out = json::Value::Object();
  out.Set("kind", static_cast<std::int64_t>(event.kind));
  out.Set("opcode", static_cast<std::int64_t>(event.opcode));
  out.Set("static_index", static_cast<std::uint64_t>(event.static_index));
  out.Set("distance", event.distance);
  return out;
}

std::optional<trace::MaskingEvent> MaskingEventFromJson(const json::Value& value) {
  const std::int64_t opcode = value.GetInt("opcode", -1);
  const std::int64_t kind = value.GetInt("kind", -1);
  if (opcode < 0 || opcode >= sim::kOpcodeCount || kind < 0 || kind > 1) {
    return std::nullopt;
  }
  trace::MaskingEvent event;
  event.kind = static_cast<trace::MaskingKind>(kind);
  event.opcode = static_cast<sim::Opcode>(opcode);
  event.static_index = static_cast<std::uint32_t>(value.GetUint("static_index"));
  event.distance = value.GetUint("distance");
  return event;
}

json::Value AggregateJson(const PropagationAggregate& agg) {
  json::Value out = json::Value::Object();
  out.Set("traced_runs", agg.traced_runs);
  out.Set("injected", agg.injected);
  out.Set("fully_masked", agg.fully_masked);
  out.Set("dead_before_store", agg.dead_before_store);
  out.Set("reached_store", agg.reached_store);
  out.Set("escaped", agg.escaped);
  out.Set("control_divergence", agg.control_divergence);
  out.Set("address_divergence", agg.address_divergence);
  out.Set("live_exit", agg.live_exit);
  out.Set("host_visible", agg.host_visible);
  out.Set("overwrite_masks", agg.overwrite_masks);
  out.Set("absorb_masks", agg.absorb_masks);
  out.Set("tainted_instructions", agg.tainted_instructions);
  out.Set("dynamic_instructions", agg.dynamic_instructions);
  out.Set("graph_truncated", agg.graph_truncated);
  out.Set("shadow_saturated", agg.shadow_saturated);
  json::Value hist = json::Value::Array();
  for (const std::uint64_t count : agg.first_store_distance) hist.Push(count);
  out.Set("first_store_distance", std::move(hist));
  return out;
}

}  // namespace

json::Value ToJson(const trace::PropagationRecord& record) {
  json::Value out = json::Value::Object();
  out.Set("injected", record.injected);
  out.Set("dynamic_instructions", record.dynamic_instructions);
  out.Set("tainted_instructions", record.tainted_instructions);
  out.Set("tainted_stores", record.tainted_stores);
  out.Set("reached_store", record.reached_store);
  out.Set("first_store_distance", record.first_store_distance);
  out.Set("overwrite_masks", record.overwrite_masks);
  out.Set("absorb_masks", record.absorb_masks);
  out.Set("control_divergence", record.control_divergence);
  out.Set("address_divergence", record.address_divergence);
  out.Set("live_registers", static_cast<std::uint64_t>(record.live_registers));
  out.Set("live_predicates", static_cast<std::uint64_t>(record.live_predicates));
  out.Set("any_launch_live_exit", record.any_launch_live_exit);
  out.Set("live_global_bytes", record.live_global_bytes);
  out.Set("host_visible_taint", record.host_visible_taint);
  out.Set("shadow_saturated", record.shadow_saturated);
  out.Set("fully_masked", record.fully_masked);
  json::Value masking = json::Value::Array();
  for (const trace::MaskingEvent& event : record.masking_sample) {
    masking.Push(MaskingEventToJson(event));
  }
  out.Set("masking_sample", std::move(masking));
  json::Value nodes = json::Value::Array();
  for (const trace::PropagationNode& node : record.nodes) {
    json::Value n = json::Value::Object();
    n.Set("static_index", static_cast<std::uint64_t>(node.static_index));
    n.Set("opcode", static_cast<std::int64_t>(node.opcode));
    n.Set("events", node.events);
    nodes.Push(std::move(n));
  }
  out.Set("nodes", std::move(nodes));
  json::Value edges = json::Value::Array();
  for (const trace::PropagationEdge& edge : record.edges) {
    json::Value e = json::Value::Object();
    e.Set("from", static_cast<std::uint64_t>(edge.from));
    e.Set("to", static_cast<std::uint64_t>(edge.to));
    e.Set("count", edge.count);
    edges.Push(std::move(e));
  }
  out.Set("edges", std::move(edges));
  out.Set("graph_truncated", record.graph_truncated);
  return out;
}

std::optional<trace::PropagationRecord> PropagationRecordFromJson(
    const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  trace::PropagationRecord record;
  record.injected = value.GetBool("injected");
  record.dynamic_instructions = value.GetUint("dynamic_instructions");
  record.tainted_instructions = value.GetUint("tainted_instructions");
  record.tainted_stores = value.GetUint("tainted_stores");
  record.reached_store = value.GetBool("reached_store");
  record.first_store_distance = value.GetUint("first_store_distance");
  record.overwrite_masks = value.GetUint("overwrite_masks");
  record.absorb_masks = value.GetUint("absorb_masks");
  record.control_divergence = value.GetBool("control_divergence");
  record.address_divergence = value.GetBool("address_divergence");
  record.live_registers = static_cast<std::uint32_t>(value.GetUint("live_registers"));
  record.live_predicates = static_cast<std::uint32_t>(value.GetUint("live_predicates"));
  record.any_launch_live_exit = value.GetBool("any_launch_live_exit");
  record.live_global_bytes = value.GetUint("live_global_bytes");
  record.host_visible_taint = value.GetBool("host_visible_taint");
  record.shadow_saturated = value.GetBool("shadow_saturated");
  record.fully_masked = value.GetBool("fully_masked");
  if (const json::Value* masking = value.Find("masking_sample"); masking != nullptr) {
    if (!masking->is_array()) return std::nullopt;
    for (std::size_t i = 0; i < masking->size(); ++i) {
      const std::optional<trace::MaskingEvent> event =
          MaskingEventFromJson(masking->at(i));
      if (!event.has_value()) return std::nullopt;
      record.masking_sample.push_back(*event);
    }
  }
  if (const json::Value* nodes = value.Find("nodes"); nodes != nullptr) {
    if (!nodes->is_array()) return std::nullopt;
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      const json::Value& n = nodes->at(i);
      const std::int64_t opcode = n.GetInt("opcode", -1);
      if (opcode < 0 || opcode >= sim::kOpcodeCount) return std::nullopt;
      trace::PropagationNode node;
      node.static_index = static_cast<std::uint32_t>(n.GetUint("static_index"));
      node.opcode = static_cast<sim::Opcode>(opcode);
      node.events = n.GetUint("events");
      record.nodes.push_back(node);
    }
  }
  if (const json::Value* edges = value.Find("edges"); edges != nullptr) {
    if (!edges->is_array()) return std::nullopt;
    for (std::size_t i = 0; i < edges->size(); ++i) {
      const json::Value& e = edges->at(i);
      trace::PropagationEdge edge;
      edge.from = static_cast<std::uint32_t>(e.GetUint("from"));
      edge.to = static_cast<std::uint32_t>(e.GetUint("to"));
      edge.count = e.GetUint("count");
      if (edge.from >= record.nodes.size() || edge.to >= record.nodes.size()) {
        return std::nullopt;
      }
      record.edges.push_back(edge);
    }
  }
  record.graph_truncated = value.GetBool("graph_truncated");
  return record;
}

std::string_view DistanceBucketName(int bucket) {
  switch (bucket) {
    case 0: return "0";
    case 1: return "1-3";
    case 2: return "4-15";
    case 3: return "16-63";
    case 4: return "64-255";
    default: return "256+";
  }
}

int DistanceBucket(std::uint64_t distance) {
  if (distance == 0) return 0;
  if (distance <= 3) return 1;
  if (distance <= 15) return 2;
  if (distance <= 63) return 3;
  if (distance <= 255) return 4;
  return 5;
}

void PropagationAggregate::Add(const trace::PropagationRecord& record) {
  ++traced_runs;
  injected += record.injected ? 1 : 0;
  fully_masked += record.fully_masked ? 1 : 0;
  dead_before_store += record.fully_masked && !record.reached_store ? 1 : 0;
  reached_store += record.reached_store ? 1 : 0;
  escaped += record.injected && !record.fully_masked ? 1 : 0;
  control_divergence += record.control_divergence ? 1 : 0;
  address_divergence += record.address_divergence ? 1 : 0;
  live_exit += record.any_launch_live_exit ? 1 : 0;
  host_visible += record.host_visible_taint ? 1 : 0;
  overwrite_masks += record.overwrite_masks;
  absorb_masks += record.absorb_masks;
  tainted_instructions += record.tainted_instructions;
  dynamic_instructions += record.dynamic_instructions;
  graph_truncated += record.graph_truncated ? 1 : 0;
  shadow_saturated += record.shadow_saturated ? 1 : 0;
  if (record.reached_store) {
    ++first_store_distance[DistanceBucket(record.first_store_distance)];
  }
}

PropagationAggregate& PropagationAggregate::operator+=(const PropagationAggregate& other) {
  traced_runs += other.traced_runs;
  injected += other.injected;
  fully_masked += other.fully_masked;
  dead_before_store += other.dead_before_store;
  reached_store += other.reached_store;
  escaped += other.escaped;
  control_divergence += other.control_divergence;
  address_divergence += other.address_divergence;
  live_exit += other.live_exit;
  host_visible += other.host_visible;
  overwrite_masks += other.overwrite_masks;
  absorb_masks += other.absorb_masks;
  tainted_instructions += other.tainted_instructions;
  dynamic_instructions += other.dynamic_instructions;
  graph_truncated += other.graph_truncated;
  shadow_saturated += other.shadow_saturated;
  for (int i = 0; i < kDistanceBucketCount; ++i) {
    first_store_distance[i] += other.first_store_distance[i];
  }
  return *this;
}

void PropagationBreakdown::Add(std::string_view kernel,
                               std::optional<sim::Opcode> opcode,
                               const trace::PropagationRecord& record,
                               const fi::Classification& classification) {
  campaign.Add(record);
  if (!kernel.empty()) by_kernel[std::string(kernel)].Add(record);
  if (opcode.has_value()) {
    by_opcode_group[std::string(fi::ArchStateIdName(PartitionGroupOf(*opcode)))].Add(
        record);
  }
  for (const trace::MaskingEvent& event : record.masking_sample) {
    ++masking_distance[std::string(fi::ArchStateIdName(PartitionGroupOf(event.opcode)))]
                      [DistanceBucket(event.distance)];
  }
  if (record.fully_masked && classification.outcome != fi::Outcome::kMasked) {
    ++consistency_violations;
  }
}

PropagationBreakdown BuildTransientPropagation(
    const fi::TransientCampaignResult& result) {
  PropagationBreakdown breakdown;
  breakdown.total_runs = result.injections.size();
  for (const fi::InjectionRun& run : result.injections) {
    if (!run.propagation.has_value()) continue;
    breakdown.Add(run.params.kernel_name,
                  run.record.activated ? std::optional<sim::Opcode>(run.record.opcode)
                                       : std::nullopt,
                  *run.propagation, run.classification);
  }
  return breakdown;
}

PropagationBreakdown RebuildPropagation(const LoadedStore& store) {
  PropagationBreakdown breakdown;
  breakdown.total_runs = store.completed();
  for (const auto& [index, run] : store.transient) {
    (void)index;
    if (!run.propagation.has_value()) continue;
    breakdown.Add(run.params.kernel_name,
                  run.record.activated ? std::optional<sim::Opcode>(run.record.opcode)
                                       : std::nullopt,
                  *run.propagation, run.classification);
  }
  return breakdown;
}

std::string PropagationReportText(const PropagationBreakdown& breakdown) {
  const PropagationAggregate& agg = breakdown.campaign;
  std::string out;
  out += Format("=== fault propagation: %llu traced runs over %llu experiments ===\n",
                static_cast<unsigned long long>(agg.traced_runs),
                static_cast<unsigned long long>(breakdown.total_runs));
  if (agg.traced_runs == 0) {
    out += "no propagation records (campaign was not traced)\n";
    return out;
  }
  out += Format("injected (architectural change): %llu (%.1f%%)\n",
                static_cast<unsigned long long>(agg.injected),
                Pct(agg.injected, agg.traced_runs));
  out += Format("fully masked (taint provably dead): %llu (%.1f%%)\n",
                static_cast<unsigned long long>(agg.fully_masked),
                Pct(agg.fully_masked, agg.traced_runs));
  out += Format("dead before first store: %llu (%.1f%%)\n",
                static_cast<unsigned long long>(agg.dead_before_store),
                Pct(agg.dead_before_store, agg.traced_runs));
  out += Format("reached a store: %llu (%.1f%%)\n",
                static_cast<unsigned long long>(agg.reached_store),
                Pct(agg.reached_store, agg.traced_runs));
  out += Format("escaped (host-visible taint or divergence): %llu (%.1f%%)\n",
                static_cast<unsigned long long>(agg.escaped),
                Pct(agg.escaped, agg.traced_runs));
  out += Format("control divergence: %llu   address divergence: %llu   "
                "host-visible taint: %llu\n",
                static_cast<unsigned long long>(agg.control_divergence),
                static_cast<unsigned long long>(agg.address_divergence),
                static_cast<unsigned long long>(agg.host_visible));
  out += Format("masking events: %llu overwrite, %llu absorb\n",
                static_cast<unsigned long long>(agg.overwrite_masks),
                static_cast<unsigned long long>(agg.absorb_masks));
  if (agg.graph_truncated != 0 || agg.shadow_saturated != 0) {
    out += Format("bounded: %llu truncated graphs, %llu saturated shadow maps\n",
                  static_cast<unsigned long long>(agg.graph_truncated),
                  static_cast<unsigned long long>(agg.shadow_saturated));
  }
  if (breakdown.consistency_violations != 0) {
    out += Format("WARNING: %llu fully-masked records classified non-Masked "
                  "(taint soundness violation)\n",
                  static_cast<unsigned long long>(breakdown.consistency_violations));
  }

  out += "\nfirst-tainted-store distance (dynamic instructions):\n";
  for (int i = 0; i < kDistanceBucketCount; ++i) {
    if (agg.first_store_distance[i] == 0) continue;
    out += Format("  %5llu  %s\n",
                  static_cast<unsigned long long>(agg.first_store_distance[i]),
                  std::string(DistanceBucketName(i)).c_str());
  }

  if (!breakdown.masking_distance.empty()) {
    out += "\nmasking distance per opcode group (sampled events):\n";
    out += Format("  %-14s", "group");
    for (int i = 0; i < kDistanceBucketCount; ++i) {
      out += Format(" %8s", std::string(DistanceBucketName(i)).c_str());
    }
    out += "\n";
    for (const auto& [group, hist] : breakdown.masking_distance) {
      out += Format("  %-14s", group.c_str());
      for (int i = 0; i < kDistanceBucketCount; ++i) {
        out += Format(" %8llu", static_cast<unsigned long long>(hist[i]));
      }
      out += "\n";
    }
  }

  const char* header = "  %-14s %6s %9s %9s %8s %8s\n";
  if (!breakdown.by_opcode_group.empty()) {
    out += "\nper opcode group (injection site):\n";
    out += Format(header, "group", "traced", "masked", "escaped", "stores", "diverg");
    for (const auto& [group, group_agg] : breakdown.by_opcode_group) {
      out += Format("  %-14s %6llu %8.1f%% %8.1f%% %8llu %8llu\n", group.c_str(),
                    static_cast<unsigned long long>(group_agg.traced_runs),
                    Pct(group_agg.fully_masked, group_agg.traced_runs),
                    Pct(group_agg.escaped, group_agg.traced_runs),
                    static_cast<unsigned long long>(group_agg.reached_store),
                    static_cast<unsigned long long>(group_agg.control_divergence +
                                                    group_agg.address_divergence));
    }
  }
  if (!breakdown.by_kernel.empty()) {
    out += "\nper kernel escape rate:\n";
    out += Format(header, "kernel", "traced", "masked", "escaped", "stores", "diverg");
    for (const auto& [kernel, kernel_agg] : breakdown.by_kernel) {
      out += Format("  %-14s %6llu %8.1f%% %8.1f%% %8llu %8llu\n", kernel.c_str(),
                    static_cast<unsigned long long>(kernel_agg.traced_runs),
                    Pct(kernel_agg.fully_masked, kernel_agg.traced_runs),
                    Pct(kernel_agg.escaped, kernel_agg.traced_runs),
                    static_cast<unsigned long long>(kernel_agg.reached_store),
                    static_cast<unsigned long long>(kernel_agg.control_divergence +
                                                    kernel_agg.address_divergence));
    }
  }
  return out;
}

json::Value PropagationReportJson(const PropagationBreakdown& breakdown) {
  json::Value out = json::Value::Object();
  out.Set("total_runs", breakdown.total_runs);
  out.Set("consistency_violations", breakdown.consistency_violations);
  out.Set("campaign", AggregateJson(breakdown.campaign));
  json::Value kernels = json::Value::Object();
  for (const auto& [kernel, agg] : breakdown.by_kernel) {
    kernels.Set(kernel, AggregateJson(agg));
  }
  out.Set("by_kernel", std::move(kernels));
  json::Value groups = json::Value::Object();
  for (const auto& [group, agg] : breakdown.by_opcode_group) {
    groups.Set(group, AggregateJson(agg));
  }
  out.Set("by_opcode_group", std::move(groups));
  json::Value masking = json::Value::Object();
  for (const auto& [group, hist] : breakdown.masking_distance) {
    json::Value row = json::Value::Array();
    for (const std::uint64_t count : hist) row.Push(count);
    masking.Set(group, std::move(row));
  }
  out.Set("masking_distance", std::move(masking));
  return out;
}

}  // namespace nvbitfi::analysis
