// Minimal JSON reader/writer for the analysis layer.
//
// The result store persists campaign records as JSONL, and the anatomy
// reports have a machine-readable JSON form.  Only what those need is
// implemented: objects preserve insertion order (deterministic output),
// integers are kept as 64-bit integers (cycle counters exceed 2^53), and
// doubles print with enough digits to round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nvbitfi::analysis::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject,
  };

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                     // NOLINT
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}            // NOLINT
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}               // NOLINT
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}               // NOLINT
  Value(double d) : kind_(Kind::kDouble), double_(d) {}               // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}                // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                     // NOLINT

  static Value Array();
  static Value Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Object access.  Set appends or replaces; Find returns nullptr when the
  // key is absent (or this is not an object).
  void Set(std::string_view key, Value value);
  const Value* Find(std::string_view key) const;

  // Array access.
  void Push(Value value);
  std::size_t size() const { return items_.size(); }
  const Value& at(std::size_t i) const { return items_[i]; }

  // Typed getters with defaults; numeric kinds convert between each other.
  bool AsBool(bool fallback = false) const;
  std::uint64_t AsUint(std::uint64_t fallback = 0) const;
  std::int64_t AsInt(std::int64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string for non-strings

  // Convenience: member lookup + typed getter in one call.
  bool GetBool(std::string_view key, bool fallback = false) const;
  std::uint64_t GetUint(std::string_view key, std::uint64_t fallback = 0) const;
  std::int64_t GetInt(std::string_view key, std::int64_t fallback = 0) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  std::string GetString(std::string_view key, std::string_view fallback = "") const;

  // Compact single-line serialisation (no spaces, members in insertion
  // order) — one store record per line.
  std::string Dump() const;

  // Strict parse of a complete JSON document; nullopt on any syntax error
  // or trailing garbage.
  static std::optional<Value> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;                              // array
  std::vector<std::pair<std::string, Value>> members_;    // object
};

// JSON string escaping (used by Dump; exposed for tests).
std::string Escape(std::string_view text);

}  // namespace nvbitfi::analysis::json
