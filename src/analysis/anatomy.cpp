#include "analysis/anatomy.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/strings.h"

namespace nvbitfi::analysis {
namespace {

std::size_t ElementWidth(ElementKind kind) {
  return kind == ElementKind::kF64 ? 8 : 4;
}

std::uint64_t LoadBits(const std::uint8_t* bytes, std::size_t width) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, bytes, width);
  return bits;
}

double BitsToValue(std::uint64_t bits, ElementKind kind) {
  if (kind == ElementKind::kF64) {
    double d = 0;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }
  float f = 0;
  const std::uint32_t lo = static_cast<std::uint32_t>(bits);
  std::memcpy(&f, &lo, sizeof f);
  return f;
}

// All flipped bits inside one byte lane?
bool WithinOneByte(std::uint64_t xor_bits) {
  for (int byte = 0; byte < 8; ++byte) {
    const std::uint64_t lane = 0xffull << (8 * byte);
    if ((xor_bits & ~lane) == 0) return true;
  }
  return false;
}

std::string HistogramRows(const std::array<std::uint64_t, 64>& hist, int bits) {
  std::string out;
  for (int base = 0; base < bits; base += 16) {
    out += Format("  b%02d-b%02d:", base, base + 15);
    for (int i = base; i < base + 16; ++i) {
      out += Format(" %4llu", static_cast<unsigned long long>(hist[i]));
    }
    out += "\n";
  }
  return out;
}

double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

int TopBit(const std::array<std::uint64_t, 64>& hist) {
  int best = -1;
  std::uint64_t best_count = 0;
  for (int i = 0; i < 64; ++i) {
    if (hist[i] > best_count) {
      best_count = hist[i];
      best = i;
    }
  }
  return best;
}

std::string AggregateRow(const std::string& label, const AnatomyAggregate& agg) {
  const int top = TopBit(agg.bit_histogram);
  return Format("  %-14s %5llu %10.1f%% %10.1f%% %10.1f%%   %s\n", label.c_str(),
                static_cast<unsigned long long>(agg.sdc_runs),
                Pct(agg.patterns[static_cast<int>(SdcPattern::kSingleBit)], agg.sdc_runs),
                Pct(agg.patterns[static_cast<int>(SdcPattern::kMultiWord)], agg.sdc_runs),
                Pct(agg.magnitude[kMagnitudeBucketCount - 1], agg.sdc_runs),
                top < 0 ? "-" : Format("b%d", top).c_str());
}

json::Value AggregateJson(const AnatomyAggregate& agg) {
  json::Value out = json::Value::Object();
  out.Set("sdc_runs", agg.sdc_runs);
  out.Set("corrupted_elements", agg.corrupted_elements);
  json::Value patterns = json::Value::Object();
  for (int i = 0; i < kSdcPatternCount; ++i) {
    patterns.Set(SdcPatternName(static_cast<SdcPattern>(i)), agg.patterns[i]);
  }
  out.Set("patterns", std::move(patterns));
  json::Value extents = json::Value::Object();
  for (int i = 0; i < kSpatialExtentCount; ++i) {
    extents.Set(SpatialExtentName(static_cast<SpatialExtent>(i)), agg.extents[i]);
  }
  out.Set("extents", std::move(extents));
  json::Value bits = json::Value::Array();
  for (const std::uint64_t count : agg.bit_histogram) bits.Push(count);
  out.Set("bit_histogram", std::move(bits));
  json::Value magnitude = json::Value::Object();
  for (int i = 0; i < kMagnitudeBucketCount; ++i) {
    magnitude.Set(MagnitudeBucketName(i), agg.magnitude[i]);
  }
  out.Set("magnitude", std::move(magnitude));
  return out;
}

}  // namespace

std::string_view ElementKindName(ElementKind kind) {
  return kind == ElementKind::kF64 ? "f64" : "f32";
}

std::optional<ElementKind> ElementKindFromName(std::string_view name) {
  if (name == "f32") return ElementKind::kF32;
  if (name == "f64") return ElementKind::kF64;
  return std::nullopt;
}

std::string_view SdcPatternName(SdcPattern pattern) {
  switch (pattern) {
    case SdcPattern::kNoOutputDiff: return "no-output-diff";
    case SdcPattern::kSingleBit: return "single-bit";
    case SdcPattern::kMultiBitByte: return "multi-bit-byte";
    case SdcPattern::kMultiBitWord: return "multi-bit-word";
    case SdcPattern::kMultiWord: return "multi-word";
  }
  return "?";
}

std::string_view MagnitudeBucketName(int bucket) {
  switch (bucket) {
    case 0: return "rel<1e-6";
    case 1: return "rel<1e-3";
    case 2: return "rel<1";
    case 3: return "rel<1e3";
    case 4: return "rel>=1e3";
    case 5: return "non-finite";
  }
  return "?";
}

int MagnitudeBucket(double golden, double faulty) {
  if (!std::isfinite(faulty)) return 5;
  const double rel = std::fabs(faulty - golden) / std::max(std::fabs(golden), 1e-30);
  if (rel < 1e-6) return 0;
  if (rel < 1e-3) return 1;
  if (rel < 1.0) return 2;
  if (rel < 1e3) return 3;
  return 4;
}

std::string_view SpatialExtentName(SpatialExtent extent) {
  switch (extent) {
    case SpatialExtent::kNone: return "none";
    case SpatialExtent::kSingleElement: return "single-element";
    case SpatialExtent::kClustered: return "clustered";
    case SpatialExtent::kScattered: return "scattered";
  }
  return "?";
}

SdcAnatomy AnalyzeSdc(const fi::RunArtifacts& golden, const fi::RunArtifacts& run,
                      const AnatomyConfig& config) {
  SdcAnatomy anatomy;
  anatomy.element = config.element;
  anatomy.stdout_diff = golden.stdout_text != run.stdout_text;
  anatomy.size_mismatch = golden.output_file.size() != run.output_file.size();

  const std::size_t width = ElementWidth(config.element);
  const std::size_t common =
      std::min(golden.output_file.size(), run.output_file.size()) / width;
  anatomy.elements_compared = common;

  std::uint64_t sampled_xor = 0;  // union of flipped bits over the sample
  for (std::size_t i = 0; i < common; ++i) {
    const std::uint64_t g = LoadBits(golden.output_file.data() + i * width, width);
    const std::uint64_t f = LoadBits(run.output_file.data() + i * width, width);
    if (g == f) continue;
    if (anatomy.corrupted_elements == 0) anatomy.first_corrupted = i;
    anatomy.last_corrupted = i;
    ++anatomy.corrupted_elements;
    if (anatomy.sample.size() >= config.max_sampled_elements) continue;
    anatomy.sample.push_back({i, g, f});
    const std::uint64_t x = g ^ f;
    sampled_xor |= x;
    for (int bit = 0; bit < 64; ++bit) {
      if ((x >> bit) & 1) ++anatomy.bit_histogram[bit];
    }
    ++anatomy.magnitude[MagnitudeBucket(BitsToValue(g, config.element),
                                        BitsToValue(f, config.element))];
  }

  if (anatomy.corrupted_elements == 0) {
    anatomy.pattern = SdcPattern::kNoOutputDiff;
    anatomy.extent = SpatialExtent::kNone;
  } else if (anatomy.corrupted_elements > 1) {
    anatomy.pattern = SdcPattern::kMultiWord;
    const std::uint64_t span = anatomy.last_corrupted - anatomy.first_corrupted + 1;
    anatomy.extent = 2 * anatomy.corrupted_elements >= span ? SpatialExtent::kClustered
                                                            : SpatialExtent::kScattered;
  } else {
    anatomy.extent = SpatialExtent::kSingleElement;
    if (std::popcount(sampled_xor) == 1) {
      anatomy.pattern = SdcPattern::kSingleBit;
    } else if (WithinOneByte(sampled_xor)) {
      anatomy.pattern = SdcPattern::kMultiBitByte;
    } else {
      anatomy.pattern = SdcPattern::kMultiBitWord;
    }
  }
  return anatomy;
}

json::Value ToJson(const SdcAnatomy& anatomy) {
  json::Value out = json::Value::Object();
  out.Set("element", ElementKindName(anatomy.element));
  out.Set("elements_compared", anatomy.elements_compared);
  out.Set("corrupted_elements", anatomy.corrupted_elements);
  out.Set("stdout_diff", anatomy.stdout_diff);
  out.Set("size_mismatch", anatomy.size_mismatch);
  out.Set("pattern", static_cast<std::int64_t>(anatomy.pattern));
  out.Set("extent", static_cast<std::int64_t>(anatomy.extent));
  out.Set("first_corrupted", anatomy.first_corrupted);
  out.Set("last_corrupted", anatomy.last_corrupted);
  // Histograms are stored sparsely: [position, count] pairs.
  json::Value bits = json::Value::Array();
  for (int i = 0; i < 64; ++i) {
    if (anatomy.bit_histogram[i] == 0) continue;
    json::Value pair = json::Value::Array();
    pair.Push(i);
    pair.Push(static_cast<std::uint64_t>(anatomy.bit_histogram[i]));
    bits.Push(std::move(pair));
  }
  out.Set("bits", std::move(bits));
  json::Value magnitude = json::Value::Array();
  for (int i = 0; i < kMagnitudeBucketCount; ++i) {
    magnitude.Push(static_cast<std::uint64_t>(anatomy.magnitude[i]));
  }
  out.Set("magnitude", std::move(magnitude));
  json::Value sample = json::Value::Array();
  for (const CorruptedElement& element : anatomy.sample) {
    json::Value entry = json::Value::Array();
    entry.Push(element.index);
    entry.Push(element.golden_bits);
    entry.Push(element.faulty_bits);
    sample.Push(std::move(entry));
  }
  out.Set("sample", std::move(sample));
  return out;
}

std::optional<SdcAnatomy> SdcAnatomyFromJson(const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  SdcAnatomy anatomy;
  const std::optional<ElementKind> element =
      ElementKindFromName(value.GetString("element", "f32"));
  if (!element.has_value()) return std::nullopt;
  anatomy.element = *element;
  anatomy.elements_compared = value.GetUint("elements_compared");
  anatomy.corrupted_elements = value.GetUint("corrupted_elements");
  anatomy.stdout_diff = value.GetBool("stdout_diff");
  anatomy.size_mismatch = value.GetBool("size_mismatch");
  const std::int64_t pattern = value.GetInt("pattern", -1);
  const std::int64_t extent = value.GetInt("extent", -1);
  if (pattern < 0 || pattern >= kSdcPatternCount || extent < 0 ||
      extent >= kSpatialExtentCount) {
    return std::nullopt;
  }
  anatomy.pattern = static_cast<SdcPattern>(pattern);
  anatomy.extent = static_cast<SpatialExtent>(extent);
  anatomy.first_corrupted = value.GetUint("first_corrupted");
  anatomy.last_corrupted = value.GetUint("last_corrupted");
  if (const json::Value* bits = value.Find("bits"); bits != nullptr && bits->is_array()) {
    for (std::size_t i = 0; i < bits->size(); ++i) {
      const json::Value& pair = bits->at(i);
      if (!pair.is_array() || pair.size() != 2) return std::nullopt;
      const std::uint64_t position = pair.at(0).AsUint(64);
      if (position >= 64) return std::nullopt;
      anatomy.bit_histogram[position] = static_cast<std::uint32_t>(pair.at(1).AsUint());
    }
  }
  if (const json::Value* magnitude = value.Find("magnitude");
      magnitude != nullptr && magnitude->is_array() &&
      magnitude->size() == kMagnitudeBucketCount) {
    for (int i = 0; i < kMagnitudeBucketCount; ++i) {
      anatomy.magnitude[i] = static_cast<std::uint32_t>(magnitude->at(i).AsUint());
    }
  }
  if (const json::Value* sample = value.Find("sample");
      sample != nullptr && sample->is_array()) {
    for (std::size_t i = 0; i < sample->size(); ++i) {
      const json::Value& entry = sample->at(i);
      if (!entry.is_array() || entry.size() != 3) return std::nullopt;
      anatomy.sample.push_back(
          {entry.at(0).AsUint(), entry.at(1).AsUint(), entry.at(2).AsUint()});
    }
  }
  return anatomy;
}

fi::ArchStateId PartitionGroupOf(sim::Opcode opcode) {
  for (int group = 1; group <= 6; ++group) {
    const fi::ArchStateId id = static_cast<fi::ArchStateId>(group);
    if (fi::OpcodeInGroup(opcode, id)) return id;
  }
  return fi::ArchStateId::kGOthers;  // unreachable: groups 1..6 partition
}

void AnatomyAggregate::Add(const SdcAnatomy& anatomy) {
  ++sdc_runs;
  corrupted_elements += anatomy.corrupted_elements;
  ++patterns[static_cast<int>(anatomy.pattern)];
  ++extents[static_cast<int>(anatomy.extent)];
  for (int i = 0; i < 64; ++i) bit_histogram[i] += anatomy.bit_histogram[i];
  for (int i = 0; i < kMagnitudeBucketCount; ++i) magnitude[i] += anatomy.magnitude[i];
}

AnatomyAggregate& AnatomyAggregate::operator+=(const AnatomyAggregate& other) {
  sdc_runs += other.sdc_runs;
  corrupted_elements += other.corrupted_elements;
  for (int i = 0; i < kSdcPatternCount; ++i) patterns[i] += other.patterns[i];
  for (int i = 0; i < kSpatialExtentCount; ++i) extents[i] += other.extents[i];
  for (int i = 0; i < 64; ++i) bit_histogram[i] += other.bit_histogram[i];
  for (int i = 0; i < kMagnitudeBucketCount; ++i) magnitude[i] += other.magnitude[i];
  return *this;
}

void AnatomyBreakdown::Add(std::string_view kernel, std::optional<sim::Opcode> opcode,
                           const SdcAnatomy& anatomy) {
  campaign.Add(anatomy);
  if (!kernel.empty()) by_kernel[std::string(kernel)].Add(anatomy);
  if (opcode.has_value()) {
    by_opcode_group[std::string(fi::ArchStateIdName(PartitionGroupOf(*opcode)))].Add(
        anatomy);
  }
}

AnatomyBreakdown BuildTransientAnatomy(const fi::TransientCampaignResult& result,
                                       const AnatomyConfig& config) {
  AnatomyBreakdown breakdown;
  breakdown.total_runs = result.injections.size();
  for (const fi::InjectionRun& run : result.injections) {
    if (run.trivially_masked || run.classification.outcome != fi::Outcome::kSdc) {
      continue;
    }
    const SdcAnatomy anatomy = AnalyzeSdc(result.golden, run.artifacts, config);
    breakdown.Add(run.params.kernel_name,
                  run.record.activated ? std::optional<sim::Opcode>(run.record.opcode)
                                       : std::nullopt,
                  anatomy);
  }
  return breakdown;
}

AnatomyBreakdown BuildPermanentAnatomy(const fi::PermanentCampaignResult& result,
                                       const fi::RunArtifacts& golden,
                                       const AnatomyConfig& config) {
  AnatomyBreakdown breakdown;
  breakdown.total_runs = result.runs.size();
  for (const fi::PermanentRun& run : result.runs) {
    if (run.classification.outcome != fi::Outcome::kSdc) continue;
    breakdown.Add("", run.params.opcode(), AnalyzeSdc(golden, run.artifacts, config));
  }
  return breakdown;
}

std::string AnatomyReportText(const AnatomyBreakdown& breakdown) {
  const AnatomyAggregate& agg = breakdown.campaign;
  std::string out;
  out += Format("=== SDC anatomy: %llu SDCs over %llu runs ===\n",
                static_cast<unsigned long long>(agg.sdc_runs),
                static_cast<unsigned long long>(breakdown.total_runs));
  if (agg.sdc_runs == 0) {
    out += "no SDCs to analyze\n";
    return out;
  }
  out += Format("corrupted output elements: %llu\n\n",
                static_cast<unsigned long long>(agg.corrupted_elements));

  out += "pattern classes:\n";
  for (int i = 0; i < kSdcPatternCount; ++i) {
    if (agg.patterns[i] == 0) continue;
    out += Format("  %5llu  %-14s (%.1f%%)\n",
                  static_cast<unsigned long long>(agg.patterns[i]),
                  std::string(SdcPatternName(static_cast<SdcPattern>(i))).c_str(),
                  Pct(agg.patterns[i], agg.sdc_runs));
  }

  // FP64 anatomy uses all 64 positions; FP32 campaigns only populate 0..31.
  int bits = 32;
  for (int i = 32; i < 64; ++i) {
    if (agg.bit_histogram[i] != 0) bits = 64;
  }
  out += "\nflipped-bit-position histogram (sampled elements):\n";
  out += HistogramRows(agg.bit_histogram, bits);

  out += "\nrelative-magnitude buckets (FP interpretation):\n";
  for (int i = 0; i < kMagnitudeBucketCount; ++i) {
    if (agg.magnitude[i] == 0) continue;
    out += Format("  %5llu  %s\n", static_cast<unsigned long long>(agg.magnitude[i]),
                  std::string(MagnitudeBucketName(i)).c_str());
  }

  out += "\nspatial extent of corrupted elements:\n";
  for (int i = 0; i < kSpatialExtentCount; ++i) {
    if (agg.extents[i] == 0) continue;
    out += Format("  %5llu  %s\n", static_cast<unsigned long long>(agg.extents[i]),
                  std::string(SpatialExtentName(static_cast<SpatialExtent>(i))).c_str());
  }

  const char* header = "  %-14s %5s %11s %11s %11s   %s\n";
  if (!breakdown.by_opcode_group.empty()) {
    out += "\nper opcode group:\n";
    out += Format(header, "group", "SDCs", "single-bit", "multi-word", "non-finite",
                  "top bit");
    for (const auto& [group, group_agg] : breakdown.by_opcode_group) {
      out += AggregateRow(group, group_agg);
    }
  }
  if (!breakdown.by_kernel.empty()) {
    out += "\nper static kernel:\n";
    out += Format(header, "kernel", "SDCs", "single-bit", "multi-word", "non-finite",
                  "top bit");
    for (const auto& [kernel, kernel_agg] : breakdown.by_kernel) {
      out += AggregateRow(kernel, kernel_agg);
    }
  }
  return out;
}

json::Value AnatomyReportJson(const AnatomyBreakdown& breakdown) {
  json::Value out = json::Value::Object();
  out.Set("total_runs", breakdown.total_runs);
  out.Set("campaign", AggregateJson(breakdown.campaign));
  json::Value kernels = json::Value::Object();
  for (const auto& [kernel, agg] : breakdown.by_kernel) {
    kernels.Set(kernel, AggregateJson(agg));
  }
  out.Set("by_kernel", std::move(kernels));
  json::Value groups = json::Value::Object();
  for (const auto& [group, agg] : breakdown.by_opcode_group) {
    groups.Set(group, AggregateJson(agg));
  }
  out.Set("by_opcode_group", std::move(groups));
  return out;
}

}  // namespace nvbitfi::analysis
