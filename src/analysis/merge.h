// Offline shard-store merger.
//
// A sharded campaign produces one store per index range, each carrying shard
// provenance (`shard_begin`/`shard_end`) and per-record checkpoint-replay
// stats.  Merging validates that the shards describe the SAME campaign (full
// identity check), that their ranges tile [0, num_experiments) exactly, and
// that every shard is complete — then writes one canonical unsharded store:
// header with summed replay accounting and `workers` canonicalized to 1,
// records in index order with the shard-only replay fields stripped.
//
// The output is byte-identical to the store an unsharded single-process
// campaign would have written and then finalized, because both sides go
// through the same serialization functions (MetaToJson / TransientRunToJson)
// and campaigns are deterministic per experiment index.
#pragma once

#include <string>
#include <vector>

#include "analysis/result_store.h"

namespace nvbitfi::analysis {

struct MergeSummary {
  std::uint64_t num_experiments = 0;
  std::size_t num_shards = 0;
  StoreMeta meta;  // the merged (canonical) header
};

// Merges `shard_paths` into `out_path`.  On any validation failure nothing
// is written and *error describes the offending shard.
std::optional<MergeSummary> MergeShardStores(const std::vector<std::string>& shard_paths,
                                             const std::string& out_path,
                                             std::string* error);

// Merges adaptive round-slice stores into the canonical adaptive store.
// `rounds` is the full schedule the coordinator planned; the merged header
// carries it, and the slices' records must cover exactly its indexes (each
// exactly once).  Unlike shard merging, record lines are copied VERBATIM —
// adaptive records always carry their own replay stats, in slices and in
// locally-run stores alike — so the output is byte-identical to the store a
// single-process `--adaptive` campaign finalizes.
std::optional<MergeSummary> MergeAdaptiveSliceStores(
    const std::vector<std::string>& slice_paths,
    const std::vector<adaptive::RoundRecord>& rounds, const std::string& out_path,
    std::string* error);

}  // namespace nvbitfi::analysis
