// Chrome-trace-compatible JSONL event log (`nvbitfi campaign --trace-events`).
//
// File format: the first line is `[`; every subsequent line is one complete
// JSON event object terminated by `,\n`. Chrome's trace viewer (and Perfetto)
// accept a trailing comma with no closing `]`, and `nvbitfi analyze
// --timeline` parses the file line-by-line, so the log is crash-safe: a run
// killed mid-campaign still leaves a loadable trace.
//
// Span events come from ScopedPhase via the process-global instance; instant
// events carry campaign/shard/round provenance and are emitted explicitly by
// the CLI and the service runners. Timestamps are microseconds on the steady
// clock relative to a process-wide epoch.

#ifndef NVBITFI_TELEMETRY_TRACE_LOG_H_
#define NVBITFI_TELEMETRY_TRACE_LOG_H_

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace nvbitfi::telemetry {

class TraceLog {
 public:
  TraceLog() = default;
  ~TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  bool Open(const std::string& path, std::string* error);
  void Close();
  bool is_open() const;

  // Complete event ("ph":"X"): a span of `dur_us` starting at `ts_us`.
  void AppendSpan(std::string_view name, double ts_us, double dur_us);
  // Instant event ("ph":"i") with string args for provenance.
  void AppendInstant(std::string_view name,
                     const std::vector<std::pair<std::string, std::string>>& args);

  // Process-global instance used by ScopedPhase. Not owned; callers keep the
  // TraceLog alive for the install duration and SetGlobal(nullptr) before
  // destroying it.
  static TraceLog* Global();
  static void SetGlobal(TraceLog* log);

  // Microseconds since the process trace epoch (steady clock).
  static double NowMicros();
  static double MicrosSinceEpoch(std::chrono::steady_clock::time_point when);

 private:
  void AppendLine(const std::string& line);
  int ThreadIdLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::map<std::thread::id, int> thread_ids_;
};

}  // namespace nvbitfi::telemetry

#endif  // NVBITFI_TELEMETRY_TRACE_LOG_H_
