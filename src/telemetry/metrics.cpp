#include "telemetry/metrics.h"

#include <cstdlib>
#include <cstring>

#include "telemetry/trace_log.h"

namespace nvbitfi::telemetry {
namespace {

std::atomic<bool> g_enabled{true};

thread_local PhaseAccumulator* t_accumulator = nullptr;

// Exponential seconds buckets covering microsecond spans (store appends) up
// to minute-scale phases (whole-suite golden runs): 1us .. ~100s.
std::vector<double> PhaseBuckets() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 200.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

}  // namespace

bool TelemetryEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetTelemetryEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void InitTelemetryFromEnv() {
  const char* value = std::getenv("NVBITFI_TELEMETRY");
  if (value == nullptr) return;
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0 ||
      std::strcmp(value, "false") == 0) {
    SetTelemetryEnabled(false);
  } else {
    SetTelemetryEnabled(true);
  }
}

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kProfile: return "profile";
    case Phase::kGolden: return "golden";
    case Phase::kCheckpointRecord: return "checkpoint-record";
    case Phase::kFastForward: return "fast-forward";
    case Phase::kInject: return "inject";
    case Phase::kClassify: return "classify";
    case Phase::kStoreAppend: return "store-append";
    case Phase::kMerge: return "merge";
  }
  return "unknown";
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::Add(double delta) { AtomicAddDouble(value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

std::uint64_t Histogram::BucketCount(std::size_t bucket) const {
  return counts_[bucket].load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

Registry::Registry() {
  std::lock_guard<std::mutex> lock(mu_);
  RegisterPhaseHistogramsLocked();
}

void Registry::RegisterPhaseHistogramsLocked() {
  const std::vector<double> bounds = PhaseBuckets();
  for (int i = 0; i < kPhaseCount; ++i) {
    const std::string name = "nvbitfi_phase_seconds{phase=\"" +
                             std::string(PhaseName(static_cast<Phase>(i))) + "\"}";
    auto [it, inserted] =
        histograms_.emplace(name, std::make_unique<Histogram>(bounds));
    phase_histograms_[i] = it->second.get();
  }
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(bounds)).first;
  }
  return *it->second;
}

Registry::Snapshot Registry::Capture() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts.reserve(histogram->num_buckets());
    for (std::size_t i = 0; i < histogram->num_buckets(); ++i) {
      h.counts.push_back(histogram->BucketCount(i));
    }
    h.count = histogram->count();
    h.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  RegisterPhaseHistogramsLocked();
}

Registry& GlobalRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

void PhaseAccumulator::Add(Phase phase, double seconds) {
  const int i = static_cast<int>(phase);
  AtomicAddDouble(seconds_[i], seconds);
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

PhaseBreakdown PhaseAccumulator::Capture() const {
  PhaseBreakdown breakdown;
  for (int i = 0; i < kPhaseCount; ++i) {
    breakdown.seconds[i] = seconds_[i].load(std::memory_order_relaxed);
    breakdown.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return breakdown;
}

double PhaseBreakdown::TotalSeconds() const {
  double total = 0.0;
  for (const double s : seconds) total += s;
  return total;
}

bool PhaseBreakdown::Empty() const {
  for (const std::uint64_t c : counts) {
    if (c != 0) return false;
  }
  return true;
}

PhaseBreakdown& PhaseBreakdown::operator+=(const PhaseBreakdown& other) {
  for (int i = 0; i < kPhaseCount; ++i) {
    seconds[i] += other.seconds[i];
    counts[i] += other.counts[i];
  }
  return *this;
}

PhaseAccumulator* CurrentAccumulator() { return t_accumulator; }

ScopedAccumulator::ScopedAccumulator(PhaseAccumulator* accumulator)
    : previous_(t_accumulator) {
  t_accumulator = accumulator;
}

ScopedAccumulator::~ScopedAccumulator() { t_accumulator = previous_; }

ScopedPhase::ScopedPhase(Phase phase) : phase_(phase), armed_(TelemetryEnabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (!armed_) return;
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start_).count();
  if (t_accumulator != nullptr) t_accumulator->Add(phase_, seconds);
  GlobalRegistry().PhaseHistogram(phase_).Observe(seconds);
  if (TraceLog* log = TraceLog::Global(); log != nullptr) {
    log->AppendSpan(PhaseName(phase_), TraceLog::MicrosSinceEpoch(start_),
                    seconds * 1e6);
  }
}

}  // namespace nvbitfi::telemetry
