#include "telemetry/exposition.h"

#include <cmath>
#include <cstdio>
#include <set>

#include "common/strings.h"

namespace nvbitfi::telemetry {
namespace {

// Splits `base{labels}` into the base name and the brace-less label text
// ("" when the name carries no labels).
std::pair<std::string_view, std::string_view> SplitName(std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

void AppendTypeHeader(std::string* out, std::string_view base, const char* type,
                      std::set<std::string, std::less<>>* emitted) {
  if (emitted->find(base) != emitted->end()) return;
  emitted->emplace(base);
  *out += Format("# TYPE %.*s %s\n", static_cast<int>(base.size()), base.data(), type);
}

// Re-assembles a sample name from a base, the original embedded label text,
// and optional extra labels (used to splice `le` into histogram buckets).
std::string SampleName(std::string_view base, std::string_view suffix,
                       std::string_view labels, std::string_view extra_label) {
  std::string out(base);
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusEscapeLabel(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    return Format("%lld", static_cast<long long>(value));
  }
  // %.17g round-trips any double; prefer the shortest form that does.
  for (int precision = 6; precision <= 17; ++precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) return buffer;
  }
  return Format("%.17g", value);
}

void AppendPrometheusSample(
    std::string* out, std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels, double value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) *out += ',';
      *out += labels[i].first;
      *out += "=\"";
      *out += PrometheusEscapeLabel(labels[i].second);
      *out += '"';
    }
    *out += '}';
  }
  *out += ' ';
  *out += FormatMetricValue(value);
  *out += '\n';
}

std::string PrometheusText(const Registry& registry) {
  const Registry::Snapshot snapshot = registry.Capture();
  std::string out;
  std::set<std::string, std::less<>> emitted;

  for (const auto& [name, value] : snapshot.counters) {
    const auto [base, labels] = SplitName(name);
    AppendTypeHeader(&out, base, "counter", &emitted);
    out += SampleName(base, "", labels, "");
    out += Format(" %llu\n", static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto [base, labels] = SplitName(name);
    AppendTypeHeader(&out, base, "gauge", &emitted);
    out += SampleName(base, "", labels, "");
    out += ' ';
    out += FormatMetricValue(value);
    out += '\n';
  }
  for (const Registry::HistogramSnapshot& histogram : snapshot.histograms) {
    const auto [base, labels] = SplitName(histogram.name);
    AppendTypeHeader(&out, base, "histogram", &emitted);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      cumulative += histogram.counts[i];
      const std::string le =
          i < histogram.bounds.size()
              ? Format("le=\"%s\"", FormatMetricValue(histogram.bounds[i]).c_str())
              : std::string("le=\"+Inf\"");
      out += SampleName(base, "_bucket", labels, le);
      out += Format(" %llu\n", static_cast<unsigned long long>(cumulative));
    }
    out += SampleName(base, "_sum", labels, "");
    out += ' ';
    out += FormatMetricValue(histogram.sum);
    out += '\n';
    out += SampleName(base, "_count", labels, "");
    out += Format(" %llu\n", static_cast<unsigned long long>(histogram.count));
  }
  return out;
}

std::string RegistryJson(const Registry& registry) {
  const Registry::Snapshot snapshot = registry.Capture();
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ',';
    out += Format("\"%s\":%llu", JsonEscape(snapshot.counters[i].first).c_str(),
                  static_cast<unsigned long long>(snapshot.counters[i].second));
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ',';
    out += Format("\"%s\":%s", JsonEscape(snapshot.gauges[i].first).c_str(),
                  FormatMetricValue(snapshot.gauges[i].second).c_str());
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const Registry::HistogramSnapshot& histogram = snapshot.histograms[i];
    if (i > 0) out += ',';
    out += Format("\"%s\":{\"bounds\":[", JsonEscape(histogram.name).c_str());
    for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b > 0) out += ',';
      out += FormatMetricValue(histogram.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b > 0) out += ',';
      out += Format("%llu", static_cast<unsigned long long>(histogram.counts[b]));
    }
    out += Format("],\"count\":%llu,\"sum\":%s}",
                  static_cast<unsigned long long>(histogram.count),
                  FormatMetricValue(histogram.sum).c_str());
  }
  out += "}}";
  return out;
}

}  // namespace nvbitfi::telemetry
