#include "telemetry/trace_log.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "telemetry/exposition.h"

namespace nvbitfi::telemetry {
namespace {

std::atomic<TraceLog*> g_trace_log{nullptr};

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

TraceLog::~TraceLog() { Close(); }

bool TraceLog::Open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    if (error != nullptr) *error = "trace log already open";
    return false;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = Format("cannot open trace file '%s': %s", path.c_str(),
                      std::strerror(errno));
    }
    return false;
  }
  std::fputs("[\n", file_);
  std::fflush(file_);
  return true;
}

void TraceLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
}

bool TraceLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

int TraceLog::ThreadIdLocked() {
  const std::thread::id self = std::this_thread::get_id();
  auto it = thread_ids_.find(self);
  if (it == thread_ids_.end()) {
    it = thread_ids_.emplace(self, static_cast<int>(thread_ids_.size()) + 1).first;
  }
  return it->second;
}

void TraceLog::AppendLine(const std::string& line) {
  if (file_ == nullptr) return;
  std::fputs(line.c_str(), file_);
  std::fputs(",\n", file_);
  std::fflush(file_);
}

void TraceLog::AppendSpan(std::string_view name, double ts_us, double dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  AppendLine(Format("{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f}",
                    JsonEscape(name).c_str(), ThreadIdLocked(), ts_us, dur_us));
}

void TraceLog::AppendInstant(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::string args_json = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) args_json += ',';
    args_json += Format("\"%s\":\"%s\"", JsonEscape(args[i].first).c_str(),
                        JsonEscape(args[i].second).c_str());
  }
  args_json += '}';
  AppendLine(Format("{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,"
                    "\"tid\":%d,\"ts\":%.3f,\"args\":%s}",
                    JsonEscape(name).c_str(), ThreadIdLocked(), NowMicros(),
                    args_json.c_str()));
}

TraceLog* TraceLog::Global() { return g_trace_log.load(std::memory_order_acquire); }

void TraceLog::SetGlobal(TraceLog* log) {
  g_trace_log.store(log, std::memory_order_release);
}

double TraceLog::NowMicros() {
  // Latch the epoch before reading the clock: on the very first telemetry
  // call in a process the two happen back to back, and the other order
  // would yield a (sub-microsecond) negative timestamp.
  const std::chrono::steady_clock::time_point epoch = ProcessEpoch();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

double TraceLog::MicrosSinceEpoch(std::chrono::steady_clock::time_point when) {
  // `when` may have been captured before the epoch was first latched (a
  // ScopedPhase started before any other telemetry call); clamp the
  // sub-microsecond underflow so event timestamps stay non-negative.
  const double micros =
      std::chrono::duration<double, std::micro>(when - ProcessEpoch()).count();
  return micros < 0.0 ? 0.0 : micros;
}

}  // namespace nvbitfi::telemetry
