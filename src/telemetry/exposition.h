// Prometheus text-format and JSON exposition of a telemetry Registry.
//
// Deliberately self-contained: analysis/json.h sits above core in the link
// graph, and telemetry is linked into sassim/core, so the escaping and
// serialization here depend only on common/.

#ifndef NVBITFI_TELEMETRY_EXPOSITION_H_
#define NVBITFI_TELEMETRY_EXPOSITION_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace nvbitfi::telemetry {

// Escapes for embedding inside a double-quoted JSON string (no quotes added).
std::string JsonEscape(std::string_view text);

// Escapes for a Prometheus label value: backslash, double quote, newline.
std::string PrometheusEscapeLabel(std::string_view text);

// Shortest round-trippable decimal form ("+Inf" for infinity).
std::string FormatMetricValue(double value);

// Appends `name{labels} value\n`; label values are escaped. `labels` is a
// flat key/value list; pass an empty list for an unlabelled sample.
void AppendPrometheusSample(
    std::string* out, std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels, double value);

// Full registry in Prometheus text exposition format 0.0.4. Metric names may
// embed a literal label set (`base{phase="inject"}`); series sharing a base
// name are grouped under one # TYPE header, and histogram buckets are emitted
// in cumulative `_bucket{...,le="..."}` form with `_sum` / `_count`.
std::string PrometheusText(const Registry& registry);

// Same registry as a JSON object:
//   {"counters":{...},"gauges":{...},
//    "histograms":{"name":{"bounds":[...],"counts":[...],"count":n,"sum":s}}}
std::string RegistryJson(const Registry& registry);

}  // namespace nvbitfi::telemetry

#endif  // NVBITFI_TELEMETRY_EXPOSITION_H_
