// Low-overhead metrics and phase timing for campaign observability.
//
// Determinism contract: nothing in this header touches the Rng draw path or
// any persisted record. Spans and counters observe wall-clock time and event
// counts only; result stores remain byte-identical with telemetry on or off
// (ctest-enforced by tests/integration/telemetry_identity_test.cpp).
//
// The layer has two sinks:
//  - a process-global Registry of counters / gauges / histograms, exposed in
//    Prometheus text and JSON form by exposition.h (served by `nvbitfi serve`
//    as GET /metrics and GET /status);
//  - an optional per-campaign PhaseAccumulator installed thread-locally with
//    ScopedAccumulator, so worker threads attribute phase seconds to the
//    campaign result without plumbing a handle through every signature.

#ifndef NVBITFI_TELEMETRY_METRICS_H_
#define NVBITFI_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nvbitfi::telemetry {

// ---------------------------------------------------------------------------
// Global on/off switch. Default on; NVBITFI_TELEMETRY=off|0|false disables.
// When disabled, spans skip the clock reads entirely (bench/table12 measures
// the residual cost of the branch itself).

bool TelemetryEnabled();
void SetTelemetryEnabled(bool enabled);
void InitTelemetryFromEnv();

// ---------------------------------------------------------------------------
// Phases. One span kind per stage of an injection campaign; driver-level
// phases (checkpoint-record, fast-forward) nest inside golden/inject, so the
// breakdown is hierarchical, not a partition of wall clock.

enum class Phase : int {
  kProfile = 0,
  kGolden,
  kCheckpointRecord,
  kFastForward,
  kInject,
  kClassify,
  kStoreAppend,
  kMerge,
};

inline constexpr int kPhaseCount = 8;

std::string_view PhaseName(Phase phase);

// ---------------------------------------------------------------------------
// Metric primitives. All operations are lock-free and relaxed; exposition
// takes a snapshot under the registry mutex (metric object creation only).

class Counter {
 public:
  void Add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds, the
// final +Inf bucket is implicit. Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i] (non-cumulative internally; exposition emits
// the cumulative Prometheus form).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // num_buckets() == bounds().size() + 1; the last bucket is +Inf.
  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t BucketCount(std::size_t bucket) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Registry. Metric names follow the Prometheus convention; a name may carry
// a literal label set, e.g. `nvbitfi_phase_seconds{phase="inject"}` — the
// exposition layer splits on '{' so all series of one base name share a
// single # TYPE header.

class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` is consulted only when the histogram is first created.
  Histogram& GetHistogram(const std::string& name, const std::vector<double>& bounds);
  // Pre-registered per-phase timing histogram (seconds, exponential buckets).
  Histogram& PhaseHistogram(Phase phase) { return *phase_histograms_[static_cast<int>(phase)]; }

  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // per-bucket, bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted by name
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  Snapshot Capture() const;

  // Zeroes nothing; drops every metric object. Test/bench use only — callers
  // holding references obtained before Reset() must re-fetch them.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::array<Histogram*, kPhaseCount> phase_histograms_{};

  void RegisterPhaseHistogramsLocked();
};

// Process-global registry (never destroyed; safe during static teardown).
Registry& GlobalRegistry();

// ---------------------------------------------------------------------------
// Per-campaign phase accounting.

struct PhaseBreakdown {
  std::array<double, kPhaseCount> seconds{};
  std::array<std::uint64_t, kPhaseCount> counts{};

  double SecondsFor(Phase phase) const { return seconds[static_cast<int>(phase)]; }
  std::uint64_t CountFor(Phase phase) const { return counts[static_cast<int>(phase)]; }
  double TotalSeconds() const;
  bool Empty() const;
  PhaseBreakdown& operator+=(const PhaseBreakdown& other);
};

// Thread-safe accumulator shared by every worker thread of one campaign.
class PhaseAccumulator {
 public:
  void Add(Phase phase, double seconds);
  PhaseBreakdown Capture() const;

 private:
  std::array<std::atomic<double>, kPhaseCount> seconds_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> counts_{};
};

// The accumulator installed on the current thread (nullptr when none).
PhaseAccumulator* CurrentAccumulator();

// Installs `accumulator` as the current thread's phase sink for the scope;
// restores the previous one on destruction (scopes nest).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(PhaseAccumulator* accumulator);
  ~ScopedAccumulator();
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  PhaseAccumulator* previous_;
};

// RAII phase timer. On destruction, when telemetry is enabled at construction
// time, adds the elapsed seconds to the thread's PhaseAccumulator (if any),
// observes the global per-phase histogram, and appends a span event to the
// global TraceLog (if installed).
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

// compare_exchange loop; used instead of C++20 atomic<double>::fetch_add so
// the layer builds with pre-libstdc++-12 toolchains too.
void AtomicAddDouble(std::atomic<double>& target, double delta);

}  // namespace nvbitfi::telemetry

#endif  // NVBITFI_TELEMETRY_METRICS_H_
