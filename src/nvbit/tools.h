// Reference instrumentation tools, mirroring the example tools shipped with
// the real NVBit release (instr_count, opcode_hist, mem_trace).  They double
// as living documentation of the tool API and as fixtures for the tests.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nvbit/nvbit.h"

namespace nvbitfi::nvbit {

// nvbit's instr_count: total dynamic instructions (warp- and thread-level),
// reported per kernel launch.
class InstrCountTool final : public Tool {
 public:
  struct LaunchCount {
    std::string kernel_name;
    std::uint64_t launch_ordinal = 0;
    std::uint64_t thread_instructions = 0;  // guard-true executions
    std::uint64_t predicated_off = 0;       // guard-false lane events
  };

  std::string ConfigKey() const override { return "instr_count"; }
  void OnAttach(Runtime& runtime) override;
  void AtCudaEvent(Runtime& runtime, CudaEvent event, const EventInfo& info) override;

  const std::vector<LaunchCount>& launches() const { return launches_; }
  std::uint64_t TotalThreadInstructions() const;

 private:
  std::vector<LaunchCount> launches_;
  LaunchCount current_;
  bool counting_ = false;
};

// nvbit's opcode_hist: dynamic opcode histogram across the whole run.
class OpcodeHistogramTool final : public Tool {
 public:
  std::string ConfigKey() const override { return "opcode_hist"; }
  void OnAttach(Runtime& runtime) override;
  void AtCudaEvent(Runtime& runtime, CudaEvent event, const EventInfo& info) override;

  const std::array<std::uint64_t, sim::kOpcodeCount>& histogram() const {
    return histogram_;
  }
  // Sorted (count, opcode) pairs, largest first.
  std::vector<std::pair<std::uint64_t, sim::Opcode>> Top(std::size_t n) const;
  std::string Render() const;  // text table

 private:
  std::array<std::uint64_t, sim::kOpcodeCount> histogram_{};
};

// nvbit's mem_trace: records every global-memory access (address, width,
// kind) performed by selected kernels.
class MemTraceTool final : public Tool {
 public:
  struct Access {
    std::string kernel_name;
    std::uint64_t launch_ordinal = 0;
    std::uint32_t static_index = 0;
    int lane_id = 0;
    bool is_store = false;
    std::uint64_t address = 0;
    int bytes = 0;
  };

  // Empty filter traces every kernel.
  explicit MemTraceTool(std::string kernel_filter = "");

  std::string ConfigKey() const override { return "mem_trace"; }
  void OnAttach(Runtime& runtime) override;
  void AtCudaEvent(Runtime& runtime, CudaEvent event, const EventInfo& info) override;

  const std::vector<Access>& accesses() const { return accesses_; }

 private:
  std::string kernel_filter_;
  std::vector<Access> accesses_;
};

}  // namespace nvbitfi::nvbit
