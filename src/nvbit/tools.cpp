#include "nvbit/tools.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/strings.h"

namespace nvbitfi::nvbit {

// ---- InstrCountTool -----------------------------------------------------------

void InstrCountTool::OnAttach(Runtime& runtime) {
  DeviceFunction fn;
  fn.name = "instr_count_cb";
  fn.regs_used = 8;
  fn.cost_cycles = 12;
  fn.callback = [this](const sim::InstrEvent& event) {
    if (!counting_) return;
    if (event.lane.guard_true()) {
      ++current_.thread_instructions;
    } else {
      ++current_.predicated_off;
    }
  };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void InstrCountTool::AtCudaEvent(Runtime& runtime, CudaEvent event,
                                 const EventInfo& info) {
  switch (event) {
    case CudaEvent::kModuleLoaded:
      for (const auto& fn : info.module->functions()) {
        for (const Instr& instr : runtime.GetInstrs(*fn)) {
          runtime.InsertCall(*fn, instr.index(), "instr_count_cb",
                             sim::InsertPoint::kBefore);
        }
      }
      break;
    case CudaEvent::kKernelLaunchBegin:
      runtime.EnableInstrumented(*info.function, true);
      current_ = LaunchCount{};
      current_.kernel_name = info.launch->kernel_name;
      current_.launch_ordinal = info.launch->launch_ordinal;
      counting_ = true;
      break;
    case CudaEvent::kKernelLaunchEnd:
      if (counting_) {
        launches_.push_back(current_);
        counting_ = false;
      }
      break;
  }
}

std::uint64_t InstrCountTool::TotalThreadInstructions() const {
  std::uint64_t total = 0;
  for (const LaunchCount& launch : launches_) total += launch.thread_instructions;
  return total;
}

// ---- OpcodeHistogramTool ------------------------------------------------------

void OpcodeHistogramTool::OnAttach(Runtime& runtime) {
  DeviceFunction fn;
  fn.name = "opcode_hist_cb";
  fn.regs_used = 16;
  fn.cost_cycles = 14;
  fn.callback = [this](const sim::InstrEvent& event) {
    if (!event.lane.guard_true()) return;
    ++histogram_[static_cast<std::size_t>(event.instr.opcode)];
  };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void OpcodeHistogramTool::AtCudaEvent(Runtime& runtime, CudaEvent event,
                                      const EventInfo& info) {
  switch (event) {
    case CudaEvent::kModuleLoaded:
      for (const auto& fn : info.module->functions()) {
        for (const Instr& instr : runtime.GetInstrs(*fn)) {
          runtime.InsertCall(*fn, instr.index(), "opcode_hist_cb",
                             sim::InsertPoint::kBefore);
        }
      }
      break;
    case CudaEvent::kKernelLaunchBegin:
      runtime.EnableInstrumented(*info.function, true);
      break;
    case CudaEvent::kKernelLaunchEnd:
      break;
  }
}

std::vector<std::pair<std::uint64_t, sim::Opcode>> OpcodeHistogramTool::Top(
    std::size_t n) const {
  std::vector<std::pair<std::uint64_t, sim::Opcode>> entries;
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    const std::uint64_t count = histogram_[static_cast<std::size_t>(op)];
    if (count > 0) entries.emplace_back(count, static_cast<sim::Opcode>(op));
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

std::string OpcodeHistogramTool::Render() const {
  std::string out = "opcode histogram (dynamic thread instructions):\n";
  for (const auto& [count, opcode] : Top(sim::kOpcodeCount)) {
    out += Format("  %-10s %12llu\n", std::string(sim::OpcodeName(opcode)).c_str(),
                  static_cast<unsigned long long>(count));
  }
  return out;
}

// ---- MemTraceTool -------------------------------------------------------------

MemTraceTool::MemTraceTool(std::string kernel_filter)
    : kernel_filter_(std::move(kernel_filter)) {}

void MemTraceTool::OnAttach(Runtime& runtime) {
  DeviceFunction fn;
  fn.name = "mem_trace_cb";
  fn.regs_used = 12;
  fn.cost_cycles = 20;
  fn.callback = [this](const sim::InstrEvent& event) {
    if (!event.lane.guard_true()) return;
    const sim::Instruction& inst = event.instr;
    if (inst.num_src == 0 || inst.src[0].kind != sim::Operand::Kind::kMem) return;
    Access access;
    access.kernel_name = event.launch.kernel_name;
    access.launch_ordinal = event.launch.launch_ordinal;
    access.static_index = event.static_index;
    access.lane_id = event.lane.lane_id();
    access.is_store = sim::ClassOf(inst.opcode) == sim::OpClass::kStore;
    const int base = inst.src[0].mem_base;
    const std::uint64_t lo = event.lane.ReadGpr(base);
    const std::uint64_t hi = base + 1 < sim::kRZ ? event.lane.ReadGpr(base + 1) : 0;
    access.address = PackPair(static_cast<std::uint32_t>(lo),
                              static_cast<std::uint32_t>(hi)) +
                     static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(inst.src[0].mem_offset));
    access.bytes = sim::MemWidthBytes(inst.mods.width);
    accesses_.push_back(std::move(access));
  };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void MemTraceTool::AtCudaEvent(Runtime& runtime, CudaEvent event,
                               const EventInfo& info) {
  switch (event) {
    case CudaEvent::kModuleLoaded:
      for (const auto& fn : info.module->functions()) {
        if (!kernel_filter_.empty() && fn->name() != kernel_filter_) continue;
        for (const Instr& instr : runtime.GetInstrs(*fn)) {
          const sim::OpClass cls = sim::ClassOf(instr.opcode());
          if ((cls == sim::OpClass::kLoad || cls == sim::OpClass::kStore ||
               cls == sim::OpClass::kAtomic) &&
              instr.opcode() != sim::Opcode::kLDC) {
            runtime.InsertCall(*fn, instr.index(), "mem_trace_cb",
                               sim::InsertPoint::kBefore);
          }
        }
      }
      break;
    case CudaEvent::kKernelLaunchBegin:
      runtime.EnableInstrumented(*info.function, true);
      break;
    case CudaEvent::kKernelLaunchEnd:
      break;
  }
}

}  // namespace nvbitfi::nvbit
