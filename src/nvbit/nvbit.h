// NVBit-like dynamic binary instrumentation layer.
//
// Mirrors the surface of the real NVBit framework (Villa et al., MICRO'19)
// that NVBitFI builds on:
//
//   * a Tool receives CUDA-event callbacks (module load, kernel launch
//     begin/end) — the analogue of nvbit_at_cuda_event;
//   * the tool inspects a function's instructions via Instr handles
//     (nvbit_get_instrs) and splices calls to registered "device functions"
//     before/after chosen instructions (nvbit_insert_call);
//   * instrumentation is *enabled per launch* (nvbit_enable_instrumented):
//     a launch with instrumentation disabled runs the original, unmodified
//     kernel at full speed — this selectivity is NVBitFI's key overhead
//     advantage (§III-C);
//   * the first launch of an instrumented function JIT-compiles the
//     instrumented version and caches it; later launches reuse the cache.
//
// Attaching a Runtime to a sim::Context is the analogue of LD_PRELOADing an
// NVBit tool .so into a CUDA process.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sassim/core/instrumentation.h"
#include "sassim/runtime/driver.h"

namespace nvbitfi::nvbit {

enum class CudaEvent : std::uint8_t {
  kModuleLoaded,
  kKernelLaunchBegin,
  kKernelLaunchEnd,
};

struct EventInfo {
  const sim::Module* module = nullptr;        // kModuleLoaded
  const sim::LaunchInfo* launch = nullptr;    // launch events
  const sim::Function* function = nullptr;    // launch events
  const sim::LaunchStats* stats = nullptr;    // kKernelLaunchEnd only
};

// Read-only instruction handle exposed to tools (the analogue of NVBit's
// Instr class).
class Instr {
 public:
  Instr(const sim::Instruction* inst, std::uint32_t index)
      : inst_(inst), index_(index) {}

  std::uint32_t index() const { return index_; }
  sim::Opcode opcode() const { return inst_->opcode; }
  std::string_view opcode_name() const { return sim::OpcodeName(inst_->opcode); }
  const sim::Instruction& raw() const { return *inst_; }

  bool has_dest() const { return sim::HasDest(inst_->opcode); }
  bool writes_pred_only() const { return sim::WritesPredOnly(inst_->opcode); }
  bool is_memory_read() const { return sim::IsMemoryRead(inst_->opcode); }
  bool is_fp32_arith() const { return sim::IsFp32Arith(inst_->opcode); }
  bool is_fp64_arith() const { return sim::IsFp64Arith(inst_->opcode); }
  int dest_gpr_count() const { return sim::DestGprCount(*inst_); }

 private:
  const sim::Instruction* inst_;
  std::uint32_t index_;
};

// A registered instrumentation device function: the simulator-level analogue
// of the CUDA __device__ function an NVBit tool injects.  `regs_used` and
// `cost_cycles` feed the cost model (register pressure -> spills; per-lane
// execution cost of the spliced code).
struct DeviceFunction {
  std::string name;
  sim::InstrCallback callback;
  std::uint32_t regs_used = 8;
  std::uint64_t cost_cycles = 16;
  // True when the injected code serialises across the warp (e.g. per-thread
  // atomic counter updates, as in the profiler): its cost is charged per
  // active lane instead of per warp issue.
  bool serialized = false;
};

class Runtime;

// Base class for instrumentation tools (profilers and injectors).
class Tool {
 public:
  virtual ~Tool() = default;

  // Stable key identifying this tool's instrumentation configuration; part of
  // the JIT cache key.
  virtual std::string ConfigKey() const = 0;

  virtual void OnAttach(Runtime& runtime) = 0;
  virtual void AtCudaEvent(Runtime& runtime, CudaEvent event, const EventInfo& info) = 0;
};

struct RuntimeStats {
  std::uint64_t jit_compilations = 0;
  std::uint64_t jit_cache_hits = 0;
  std::uint64_t instrumented_launches = 0;
  std::uint64_t uninstrumented_launches = 0;
};

// The per-context NVBit runtime.  Exactly one tool may be attached (NVBitFI
// attaches one .so per process).
class Runtime final : public sim::LaunchInterceptor {
 public:
  // Attaches to `context` (the LD_PRELOAD moment).  The runtime must outlive
  // neither the context nor the tool — detach happens in the destructor.
  Runtime(sim::Context& context, Tool& tool);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- API available to tools ----------------------------------------------
  std::vector<Instr> GetInstrs(const sim::Function& function) const;

  void RegisterDeviceFunction(DeviceFunction fn);

  // Splices a call to the registered device function `device_fn` before or
  // after static instruction `instr_index` of `function`.  Multiple calls
  // accumulate in insertion order.
  void InsertCall(const sim::Function& function, std::uint32_t instr_index,
                  std::string_view device_fn, sim::InsertPoint point);

  // Drops all instrumentation for `function` (bumps the JIT version).
  void ClearInstrumentation(const sim::Function& function);

  // Per-launch toggle: when false (default) the original kernel runs.
  void EnableInstrumented(const sim::Function& function, bool enable);
  bool IsInstrumentedEnabled(const sim::Function& function) const;

  sim::Context& context() { return context_; }
  const RuntimeStats& stats() const { return stats_; }

  // ---- sim::LaunchInterceptor -----------------------------------------------
  const sim::InstrumentationPlan* OnLaunchBegin(const sim::LaunchInfo& info,
                                                const sim::Function& function,
                                                std::uint64_t* extra_cycles) override;
  void OnLaunchEnd(const sim::LaunchInfo& info, const sim::Function& function,
                   const sim::LaunchStats& stats) override;
  void OnModuleLoaded(const sim::Module& module) override;

 private:
  struct InsertedCall {
    std::uint32_t instr_index;
    std::string device_fn;
    sim::InsertPoint point;
  };
  struct FunctionState {
    std::vector<InsertedCall> calls;
    std::uint64_t version = 0;  // bumped by Clear/Insert to invalidate cache
    bool enabled = false;
  };
  struct CacheEntry {
    std::uint64_t version = 0;
    sim::InstrumentationPlan plan;
  };

  FunctionState& StateFor(const sim::Function& function);
  const sim::InstrumentationPlan* GetOrBuildPlan(const sim::Function& function,
                                                 std::uint64_t* extra_cycles);

  sim::Context& context_;
  Tool& tool_;
  std::unordered_map<std::string, DeviceFunction> device_functions_;
  std::unordered_map<std::uint32_t, FunctionState> function_state_;  // by Function::id
  std::unordered_map<std::uint32_t, CacheEntry> plan_cache_;
  RuntimeStats stats_;
};

}  // namespace nvbitfi::nvbit
