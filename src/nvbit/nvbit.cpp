#include "nvbit/nvbit.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace nvbitfi::nvbit {

Runtime::Runtime(sim::Context& context, Tool& tool) : context_(context), tool_(tool) {
  NVBITFI_CHECK_MSG(context.interceptor() == nullptr,
                    "context already has an attached NVBit runtime");
  context_.SetInterceptor(this);
  tool_.OnAttach(*this);
}

Runtime::~Runtime() { context_.SetInterceptor(nullptr); }

std::vector<Instr> Runtime::GetInstrs(const sim::Function& function) const {
  std::vector<Instr> out;
  const auto& body = function.source().instructions;
  out.reserve(body.size());
  for (std::uint32_t i = 0; i < body.size(); ++i) out.emplace_back(&body[i], i);
  return out;
}

void Runtime::RegisterDeviceFunction(DeviceFunction fn) {
  NVBITFI_CHECK_MSG(!fn.name.empty(), "device function needs a name");
  NVBITFI_CHECK_MSG(fn.callback != nullptr, "device function needs a callback");
  device_functions_[fn.name] = std::move(fn);
}

Runtime::FunctionState& Runtime::StateFor(const sim::Function& function) {
  return function_state_[function.id()];
}

void Runtime::InsertCall(const sim::Function& function, std::uint32_t instr_index,
                         std::string_view device_fn, sim::InsertPoint point) {
  NVBITFI_CHECK_MSG(instr_index < function.source().instructions.size(),
                    "instrumentation index out of range for '" << function.name() << "'");
  NVBITFI_CHECK_MSG(device_functions_.count(std::string(device_fn)) != 0,
                    "unregistered device function '" << device_fn << "'");
  FunctionState& state = StateFor(function);
  state.calls.push_back(InsertedCall{instr_index, std::string(device_fn), point});
  ++state.version;
}

void Runtime::ClearInstrumentation(const sim::Function& function) {
  FunctionState& state = StateFor(function);
  state.calls.clear();
  ++state.version;
}

void Runtime::EnableInstrumented(const sim::Function& function, bool enable) {
  StateFor(function).enabled = enable;
}

bool Runtime::IsInstrumentedEnabled(const sim::Function& function) const {
  const auto it = function_state_.find(function.id());
  return it != function_state_.end() && it->second.enabled;
}

const sim::InstrumentationPlan* Runtime::GetOrBuildPlan(const sim::Function& function,
                                                        std::uint64_t* extra_cycles) {
  FunctionState& state = StateFor(function);
  if (state.calls.empty()) return nullptr;

  CacheEntry& entry = plan_cache_[function.id()];
  if (entry.version == state.version && !entry.plan.sites.empty()) {
    ++stats_.jit_cache_hits;
    return &entry.plan;
  }

  // (Re-)JIT the instrumented kernel version: the paper charges this cost the
  // first time a kernel is instrumented; later launches hit the cache.
  const sim::CostModel& cost = context_.cost_model();
  const auto body_size = function.source().instructions.size();
  *extra_cycles += cost.jit_base_cycles +
                   cost.jit_cycles_per_instruction * static_cast<std::uint64_t>(body_size);
  ++stats_.jit_compilations;

  sim::InstrumentationPlan plan;
  plan.sites.assign(body_size, {});
  std::uint32_t extra_regs = 0;
  std::uint64_t lane_cost = 0;
  bool serialized = false;
  for (const InsertedCall& call : state.calls) {
    const DeviceFunction& fn = device_functions_.at(call.device_fn);
    auto& site = plan.sites[call.instr_index];
    (call.point == sim::InsertPoint::kBefore ? site.before : site.after)
        .push_back(fn.callback);
    extra_regs = std::max(extra_regs, fn.regs_used);
    lane_cost = std::max(lane_cost, fn.cost_cycles);
    serialized = serialized || fn.serialized;
  }
  plan.extra_regs = extra_regs;
  plan.cost_per_lane_event = lane_cost;
  plan.serialized = serialized;

  entry.version = state.version;
  entry.plan = std::move(plan);
  return &entry.plan;
}

const sim::InstrumentationPlan* Runtime::OnLaunchBegin(const sim::LaunchInfo& info,
                                                       const sim::Function& function,
                                                       std::uint64_t* extra_cycles) {
  EventInfo event;
  event.launch = &info;
  event.function = &function;
  tool_.AtCudaEvent(*this, CudaEvent::kKernelLaunchBegin, event);

  if (!IsInstrumentedEnabled(function)) {
    ++stats_.uninstrumented_launches;
    return nullptr;
  }
  const sim::InstrumentationPlan* plan = GetOrBuildPlan(function, extra_cycles);
  if (plan == nullptr) {
    ++stats_.uninstrumented_launches;
    return nullptr;
  }
  ++stats_.instrumented_launches;
  return plan;
}

void Runtime::OnLaunchEnd(const sim::LaunchInfo& info, const sim::Function& function,
                          const sim::LaunchStats& stats) {
  EventInfo event;
  event.launch = &info;
  event.function = &function;
  event.stats = &stats;
  tool_.AtCudaEvent(*this, CudaEvent::kKernelLaunchEnd, event);
}

void Runtime::OnModuleLoaded(const sim::Module& module) {
  EventInfo event;
  event.module = &module;
  tool_.AtCudaEvent(*this, CudaEvent::kModuleLoaded, event);
}

}  // namespace nvbitfi::nvbit
