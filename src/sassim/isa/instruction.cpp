#include "sassim/isa/instruction.h"

#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::sim {

std::string_view SpecialRegName(SpecialReg sr) {
  switch (sr) {
    case SpecialReg::kTidX: return "SR_TID.X";
    case SpecialReg::kTidY: return "SR_TID.Y";
    case SpecialReg::kTidZ: return "SR_TID.Z";
    case SpecialReg::kCtaIdX: return "SR_CTAID.X";
    case SpecialReg::kCtaIdY: return "SR_CTAID.Y";
    case SpecialReg::kCtaIdZ: return "SR_CTAID.Z";
    case SpecialReg::kLaneId: return "SR_LANEID";
    case SpecialReg::kWarpId: return "SR_WARPID";
    case SpecialReg::kSmId: return "SR_SMID";
    case SpecialReg::kClockLo: return "SR_CLOCKLO";
    case SpecialReg::kCount: break;
  }
  return "SR_?";
}

int MemWidthBytes(MemWidth w) {
  switch (w) {
    case MemWidth::k8: return 1;
    case MemWidth::k16: return 2;
    case MemWidth::k32: return 4;
    case MemWidth::k64: return 8;
    case MemWidth::k128: return 16;
  }
  return 4;
}

namespace {

std::string RegName(std::uint8_t r) {
  return r == kRZ ? std::string("RZ") : Format("R%u", r);
}

std::string PredName(std::uint8_t p) {
  return p == kPT ? std::string("PT") : Format("P%u", p);
}

std::string OperandToString(const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kNone:
      return "<none>";
    case Operand::Kind::kGpr: {
      std::string body = RegName(op.reg);
      if (op.absolute) body = "|" + body + "|";
      if (op.invert) body = "~" + body;
      if (op.negate) body = "-" + body;
      return body;
    }
    case Operand::Kind::kPred:
      return (op.negate ? "!" : "") + PredName(op.reg);
    case Operand::Kind::kImm:
      return Format("0x%x", op.imm);
    case Operand::Kind::kConst:
      return Format("c[0x%x][0x%x]", op.const_bank, op.const_offset);
    case Operand::Kind::kMem:
      if (op.mem_offset == 0) return "[" + RegName(op.mem_base) + "]";
      return Format("[%s%+d]", RegName(op.mem_base).c_str(), op.mem_offset);
    case Operand::Kind::kLabel:
      return Format("->%u", op.imm);
  }
  return "?";
}

}  // namespace

std::string Instruction::ToString() const {
  std::ostringstream os;
  if (guard_pred != kPT || guard_negate) {
    os << "@" << (guard_negate ? "!" : "") << PredName(guard_pred) << " ";
  }
  os << OpcodeName(opcode);

  bool first = true;
  auto emit = [&](const std::string& s) {
    os << (first ? " " : ", ") << s;
    first = false;
  };
  if (DestKindOf(opcode) == DestKind::kPred || DestKindOf(opcode) == DestKind::kGprPred) {
    emit(PredName(dest_pred));
    if (dest_pred2 != kPT) emit(PredName(dest_pred2));
  }
  if (WritesGpr(opcode)) emit(RegName(dest_gpr));
  for (int i = 0; i < num_src; ++i) emit(OperandToString(src[static_cast<std::size_t>(i)]));
  os << " ;";
  return os.str();
}

bool WritesGprPair(const Instruction& inst) {
  if (DestKindOf(inst.opcode) == DestKind::kGprPair) return true;
  const OpClass cls = ClassOf(inst.opcode);
  if (cls == OpClass::kLoad && inst.mods.width == MemWidth::k64) return true;
  if (inst.mods.wide_dst && (cls == OpClass::kConversion || cls == OpClass::kInt)) {
    return true;
  }
  return false;
}

int DestGprCount(const Instruction& inst) {
  if (!WritesGpr(inst.opcode) || inst.dest_gpr == kRZ) return 0;
  if (ClassOf(inst.opcode) == OpClass::kLoad && inst.mods.width == MemWidth::k128) return 4;
  if (WritesGprPair(inst)) return 2;
  return 1;
}

}  // namespace nvbitfi::sim
