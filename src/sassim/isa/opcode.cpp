#include "sassim/isa/opcode.h"

#include <array>
#include <string>
#include <unordered_map>

#include "common/check.h"

namespace nvbitfi::sim {
namespace {

constexpr std::array<OpcodeInfo, kOpcodeCount> kOpcodeTable = {{
#define SASSIM_INFO(name, cls, dest, cost) \
  OpcodeInfo{#name, OpClass::cls, DestKind::dest, cost},
    SASSIM_OPCODE_LIST(SASSIM_INFO)
#undef SASSIM_INFO
}};

const std::unordered_map<std::string_view, Opcode>& NameMap() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Opcode>();
    for (int i = 0; i < kOpcodeCount; ++i) {
      m->emplace(kOpcodeTable[static_cast<std::size_t>(i)].name,
                 static_cast<Opcode>(i));
    }
    return m;
  }();
  return *map;
}

}  // namespace

const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  NVBITFI_CHECK_MSG(idx < kOpcodeTable.size(), "invalid opcode " << idx);
  return kOpcodeTable[idx];
}

std::string_view OpcodeName(Opcode op) { return GetOpcodeInfo(op).name; }

std::optional<Opcode> OpcodeFromName(std::string_view name) {
  const auto& map = NameMap();
  const auto it = map.find(name);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

}  // namespace nvbitfi::sim
