#include "sassim/isa/encoding.h"

#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::sim {
namespace {

// Control-word field layout (word 0).
//   [7:0]   opcode           [10:8]  guard_pred      [11]    guard_negate
//   [19:12] dest_gpr         [22:20] dest_pred       [25:23] dest_pred2
//   [28:26] num_src          [31:29] cmp             [33:32] bool_op
//   [36:34] mufu             [39:37] width           [40]    sign_extend
//   [41]    src_signed       [42]    wide_src        [43]    wide_dst
//   [45:44] shfl             [48:46] atomic          [50:49] vote
//   [51]    shift_dir        [59:52] lut             [63:60] sreg
//
// Operand-descriptor word (word 1): four 14-bit descriptors at bits 0, 14,
// 28, 42; each descriptor is kind[2:0], reg[10:3], negate[11], absolute[12],
// invert[13].  Payload word k/2 bits (k%2)*32 holds operand k's 32-bit
// payload (imm, const bank<<24|offset, mem offset, or label target).

std::uint64_t PackField(std::uint64_t value, int shift) { return value << shift; }

std::uint64_t UnpackField(std::uint64_t word, int shift, int bits) {
  return (word >> shift) & ((1ull << bits) - 1);
}

std::uint32_t OperandPayload(const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kImm:
    case Operand::Kind::kLabel:
      return op.imm;
    case Operand::Kind::kConst:
      NVBITFI_CHECK_MSG(op.const_offset < (1u << 24),
                        "constant offset too large: " << op.const_offset);
      return static_cast<std::uint32_t>(op.const_bank) << 24 | op.const_offset;
    case Operand::Kind::kMem:
      return static_cast<std::uint32_t>(op.mem_offset);
    case Operand::Kind::kNone:
    case Operand::Kind::kGpr:
    case Operand::Kind::kPred:
      return 0;
  }
  return 0;
}

std::uint8_t OperandReg(const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kGpr:
    case Operand::Kind::kPred:
      return op.reg;
    case Operand::Kind::kMem:
      return op.mem_base;
    default:
      return 0;
  }
}

}  // namespace

EncodedInstruction Encode(const Instruction& inst) {
  NVBITFI_CHECK_MSG(inst.opcode < Opcode::kCount, "invalid opcode");
  NVBITFI_CHECK(inst.guard_pred < kNumPred);
  NVBITFI_CHECK(inst.dest_pred < kNumPred && inst.dest_pred2 < kNumPred);
  NVBITFI_CHECK(inst.num_src <= kMaxSrcOperands);

  EncodedInstruction enc;
  std::uint64_t& w0 = enc.words[0];
  w0 |= PackField(static_cast<std::uint64_t>(inst.opcode), 0);
  w0 |= PackField(inst.guard_pred, 8);
  w0 |= PackField(inst.guard_negate ? 1 : 0, 11);
  w0 |= PackField(inst.dest_gpr, 12);
  w0 |= PackField(inst.dest_pred, 20);
  w0 |= PackField(inst.dest_pred2, 23);
  w0 |= PackField(inst.num_src, 26);
  const Modifiers& m = inst.mods;
  w0 |= PackField(static_cast<std::uint64_t>(m.cmp), 29);
  w0 |= PackField(static_cast<std::uint64_t>(m.bool_op), 32);
  w0 |= PackField(static_cast<std::uint64_t>(m.mufu), 34);
  w0 |= PackField(static_cast<std::uint64_t>(m.width), 37);
  w0 |= PackField(m.sign_extend ? 1 : 0, 40);
  w0 |= PackField(m.src_signed ? 1 : 0, 41);
  w0 |= PackField(m.wide_src ? 1 : 0, 42);
  w0 |= PackField(m.wide_dst ? 1 : 0, 43);
  w0 |= PackField(static_cast<std::uint64_t>(m.shfl), 44);
  w0 |= PackField(static_cast<std::uint64_t>(m.atomic), 46);
  w0 |= PackField(static_cast<std::uint64_t>(m.vote), 49);
  w0 |= PackField(m.shift_dir == ShiftDir::kRight ? 1 : 0, 51);
  w0 |= PackField(m.lut, 52);
  w0 |= PackField(static_cast<std::uint64_t>(m.sreg), 60);

  std::uint64_t& w1 = enc.words[1];
  for (int i = 0; i < kMaxSrcOperands; ++i) {
    const Operand& op = inst.src[static_cast<std::size_t>(i)];
    std::uint64_t desc = 0;
    desc |= static_cast<std::uint64_t>(op.kind);
    desc |= static_cast<std::uint64_t>(OperandReg(op)) << 3;
    desc |= (op.negate ? 1ull : 0ull) << 11;
    desc |= (op.absolute ? 1ull : 0ull) << 12;
    desc |= (op.invert ? 1ull : 0ull) << 13;
    w1 |= desc << (14 * i);
    const std::uint64_t payload = OperandPayload(op);
    enc.words[2 + i / 2] |= payload << (32 * (i % 2));
  }
  return enc;
}

DecodeResult Decode(const EncodedInstruction& enc) {
  DecodeResult result;
  const std::uint64_t w0 = enc.words[0];

  const std::uint64_t opcode_bits = UnpackField(w0, 0, 8);
  if (opcode_bits >= static_cast<std::uint64_t>(kOpcodeCount)) {
    result.error = Format("invalid opcode id %llu",
                          static_cast<unsigned long long>(opcode_bits));
    return result;
  }

  Instruction inst;
  inst.opcode = static_cast<Opcode>(opcode_bits);
  inst.guard_pred = static_cast<std::uint8_t>(UnpackField(w0, 8, 3));
  inst.guard_negate = UnpackField(w0, 11, 1) != 0;
  inst.dest_gpr = static_cast<std::uint8_t>(UnpackField(w0, 12, 8));
  inst.dest_pred = static_cast<std::uint8_t>(UnpackField(w0, 20, 3));
  inst.dest_pred2 = static_cast<std::uint8_t>(UnpackField(w0, 23, 3));
  const std::uint64_t num_src = UnpackField(w0, 26, 3);
  if (num_src > kMaxSrcOperands) {
    result.error = Format("invalid operand count %llu",
                          static_cast<unsigned long long>(num_src));
    return result;
  }
  inst.num_src = static_cast<std::uint8_t>(num_src);

  Modifiers& m = inst.mods;
  m.cmp = static_cast<CmpOp>(UnpackField(w0, 29, 3));
  m.bool_op = static_cast<BoolOp>(UnpackField(w0, 32, 2));
  if (m.bool_op > BoolOp::kXor) {
    result.error = "invalid bool_op";
    return result;
  }
  const std::uint64_t mufu = UnpackField(w0, 34, 3);
  if (mufu > static_cast<std::uint64_t>(MufuFunc::kCos)) {
    result.error = "invalid mufu function";
    return result;
  }
  m.mufu = static_cast<MufuFunc>(mufu);
  const std::uint64_t width = UnpackField(w0, 37, 3);
  if (width > static_cast<std::uint64_t>(MemWidth::k128)) {
    result.error = "invalid memory width";
    return result;
  }
  m.width = static_cast<MemWidth>(width);
  m.sign_extend = UnpackField(w0, 40, 1) != 0;
  m.src_signed = UnpackField(w0, 41, 1) != 0;
  m.wide_src = UnpackField(w0, 42, 1) != 0;
  m.wide_dst = UnpackField(w0, 43, 1) != 0;
  m.shfl = static_cast<ShflMode>(UnpackField(w0, 44, 2));
  const std::uint64_t atomic = UnpackField(w0, 46, 3);
  m.atomic = static_cast<AtomicOp>(atomic);
  const std::uint64_t vote = UnpackField(w0, 49, 2);
  if (vote > static_cast<std::uint64_t>(VoteMode::kBallot)) {
    result.error = "invalid vote mode";
    return result;
  }
  m.vote = static_cast<VoteMode>(vote);
  m.shift_dir = UnpackField(w0, 51, 1) != 0 ? ShiftDir::kRight : ShiftDir::kLeft;
  m.lut = static_cast<std::uint8_t>(UnpackField(w0, 52, 8));
  const std::uint64_t sreg = UnpackField(w0, 60, 4);
  if (sreg >= static_cast<std::uint64_t>(SpecialReg::kCount)) {
    result.error = "invalid special register";
    return result;
  }
  m.sreg = static_cast<SpecialReg>(sreg);

  const std::uint64_t w1 = enc.words[1];
  for (int i = 0; i < inst.num_src; ++i) {
    const std::uint64_t desc = UnpackField(w1, 14 * i, 14);
    const std::uint64_t kind_bits = desc & 0x7;
    if (kind_bits > static_cast<std::uint64_t>(Operand::Kind::kLabel)) {
      result.error = Format("operand %d: invalid kind", i);
      return result;
    }
    Operand& op = inst.src[static_cast<std::size_t>(i)];
    op.kind = static_cast<Operand::Kind>(kind_bits);
    const auto reg = static_cast<std::uint8_t>((desc >> 3) & 0xFF);
    op.negate = (desc >> 11 & 1) != 0;
    op.absolute = (desc >> 12 & 1) != 0;
    op.invert = (desc >> 13 & 1) != 0;
    const auto payload =
        static_cast<std::uint32_t>(enc.words[2 + i / 2] >> (32 * (i % 2)));
    switch (op.kind) {
      case Operand::Kind::kGpr:
        op.reg = reg;
        break;
      case Operand::Kind::kPred:
        if (reg >= kNumPred) {
          result.error = Format("operand %d: predicate index %u out of range", i, reg);
          return result;
        }
        op.reg = reg;
        break;
      case Operand::Kind::kImm:
      case Operand::Kind::kLabel:
        op.imm = payload;
        break;
      case Operand::Kind::kConst:
        op.const_bank = static_cast<std::uint8_t>(payload >> 24);
        op.const_offset = payload & 0xFFFFFFu;
        break;
      case Operand::Kind::kMem:
        op.mem_base = reg;
        op.mem_offset = static_cast<std::int32_t>(payload);
        break;
      case Operand::Kind::kNone:
        break;
    }
  }

  result.ok = true;
  result.instruction = inst;
  return result;
}

std::vector<EncodedInstruction> EncodeProgram(const std::vector<Instruction>& prog) {
  std::vector<EncodedInstruction> out;
  out.reserve(prog.size());
  for (const Instruction& inst : prog) out.push_back(Encode(inst));
  return out;
}

ProgramDecodeResult DecodeProgram(const std::vector<EncodedInstruction>& prog) {
  ProgramDecodeResult result;
  result.instructions.reserve(prog.size());
  for (std::size_t i = 0; i < prog.size(); ++i) {
    DecodeResult one = Decode(prog[i]);
    if (!one.ok) {
      result.error = Format("instruction %zu: %s", i, one.error.c_str());
      result.instructions.clear();
      return result;
    }
    result.instructions.push_back(one.instruction);
  }
  result.ok = true;
  return result;
}

}  // namespace nvbitfi::sim
