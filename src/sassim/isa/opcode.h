// The simulated SASS-like instruction set.
//
// The opcode list mirrors the NVIDIA Volta ISA surface: the paper's Table III
// states "the Volta ISA contains 171 opcodes", and permanent-fault opcode ids
// are indices 0..170 into this table.  Only a subset of opcodes is implemented
// by the functional executor (the subset our SpecACCEL-proxy workloads and the
// NVBitFI instrumentation handlers need); executing an unimplemented opcode
// raises an illegal-instruction trap, exactly like running unknown SASS would.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace nvbitfi::sim {

// Broad functional class of an opcode; drives fault-model group membership
// (Table II arch-state ids) and the cycle cost model.
enum class OpClass : std::uint8_t {
  kFp32,        // FP32 arithmetic
  kFp16,        // packed FP16 arithmetic
  kFp64,        // FP64 arithmetic (register-pair results)
  kMma,         // matrix-multiply-accumulate
  kInt,         // integer arithmetic / logic
  kConversion,  // type conversion
  kMove,        // data movement within the register file
  kPredicate,   // predicate manipulation
  kLoad,        // memory reads
  kStore,       // memory writes
  kAtomic,      // read-modify-write memory
  kMemOther,    // fences, cache control, queries
  kControl,     // branches and thread control
  kMisc,        // special registers, barriers, NOPs
  kGraphics,    // graphics-pipeline interop
  kTexture,     // texture fetches
  kSurface,     // surface loads/stores
  kUniform,     // uniform-datapath ops
};

// What architectural state an opcode's result occupies.  This is the basis of
// the paper's G_PR / G_NODEST / G_GPPR / G_GP instruction groupings.
enum class DestKind : std::uint8_t {
  kNone,      // no destination register (stores, branches, fences)
  kGpr,       // one general-purpose register
  kGprPair,   // a 64-bit register pair Rn:Rn+1 (FP64 results)
  kPred,      // predicate register(s) only
  kGprPred,   // both a GPR and a predicate
};

// X-macro: NAME, class, canonical dest kind, base cost in cycles.
// Order defines the permanent-fault "opcode id" (Table III).
#define SASSIM_OPCODE_LIST(X)                        \
  /* --- FP32 --- */                                 \
  X(FADD, kFp32, kGpr, 4)                            \
  X(FADD32I, kFp32, kGpr, 4)                         \
  X(FCHK, kFp32, kPred, 4)                           \
  X(FFMA, kFp32, kGpr, 4)                            \
  X(FFMA32I, kFp32, kGpr, 4)                         \
  X(FMNMX, kFp32, kGpr, 4)                           \
  X(FMUL, kFp32, kGpr, 4)                            \
  X(FMUL32I, kFp32, kGpr, 4)                         \
  X(FSEL, kFp32, kGpr, 4)                            \
  X(FSET, kFp32, kGpr, 4)                            \
  X(FSETP, kFp32, kPred, 4)                          \
  X(FSWZADD, kFp32, kGpr, 4)                         \
  X(MUFU, kFp32, kGpr, 8)                            \
  /* --- packed FP16 --- */                          \
  X(HADD2, kFp16, kGpr, 4)                           \
  X(HADD2_32I, kFp16, kGpr, 4)                       \
  X(HFMA2, kFp16, kGpr, 4)                           \
  X(HFMA2_32I, kFp16, kGpr, 4)                       \
  X(HMNMX2, kFp16, kGpr, 4)                          \
  X(HMUL2, kFp16, kGpr, 4)                           \
  X(HMUL2_32I, kFp16, kGpr, 4)                       \
  X(HSET2, kFp16, kGpr, 4)                           \
  X(HSETP2, kFp16, kPred, 4)                         \
  /* --- FP64 --- */                                 \
  X(DADD, kFp64, kGprPair, 8)                        \
  X(DFMA, kFp64, kGprPair, 8)                        \
  X(DMUL, kFp64, kGprPair, 8)                        \
  X(DSETP, kFp64, kPred, 8)                          \
  /* --- MMA --- */                                  \
  X(BMMA, kMma, kGpr, 16)                            \
  X(DMMA, kMma, kGprPair, 32)                        \
  X(HMMA, kMma, kGpr, 16)                            \
  X(IMMA, kMma, kGpr, 16)                            \
  /* --- integer --- */                              \
  X(BMSK, kInt, kGpr, 4)                             \
  X(BREV, kInt, kGpr, 4)                             \
  X(FLO, kInt, kGpr, 4)                              \
  X(IABS, kInt, kGpr, 4)                             \
  X(IADD3, kInt, kGpr, 4)                            \
  X(IADD32I, kInt, kGpr, 4)                          \
  X(IDP, kInt, kGpr, 4)                              \
  X(IDP4A, kInt, kGpr, 4)                            \
  X(IMAD, kInt, kGpr, 4)                             \
  X(IMNMX, kInt, kGpr, 4)                            \
  X(ISCADD, kInt, kGpr, 4)                           \
  X(ISETP, kInt, kPred, 4)                           \
  X(LEA, kInt, kGpr, 4)                              \
  X(LOP, kInt, kGpr, 4)                              \
  X(LOP3, kInt, kGpr, 4)                             \
  X(LOP32I, kInt, kGpr, 4)                           \
  X(POPC, kInt, kGpr, 4)                             \
  X(SHF, kInt, kGpr, 4)                              \
  X(SHL, kInt, kGpr, 4)                              \
  X(SHR, kInt, kGpr, 4)                              \
  X(VABSDIFF, kInt, kGpr, 4)                         \
  X(VABSDIFF4, kInt, kGpr, 4)                        \
  X(XMAD, kInt, kGpr, 4)                             \
  /* --- conversion --- */                           \
  X(F2F, kConversion, kGpr, 8)                       \
  X(F2FP, kConversion, kGpr, 8)                      \
  X(F2I, kConversion, kGpr, 8)                       \
  X(FRND, kConversion, kGpr, 8)                      \
  X(I2F, kConversion, kGpr, 8)                       \
  X(I2I, kConversion, kGpr, 8)                       \
  X(I2IP, kConversion, kGpr, 8)                      \
  /* --- movement --- */                             \
  X(MOV, kMove, kGpr, 4)                             \
  X(MOV32I, kMove, kGpr, 4)                          \
  X(MOVM, kMove, kGpr, 8)                            \
  X(PRMT, kMove, kGpr, 4)                            \
  X(SEL, kMove, kGpr, 4)                             \
  X(SGXT, kMove, kGpr, 4)                            \
  X(SHFL, kMove, kGpr, 8)                            \
  /* --- predicate --- */                            \
  X(PLOP3, kPredicate, kPred, 4)                     \
  X(PSETP, kPredicate, kPred, 4)                     \
  X(P2R, kPredicate, kGpr, 4)                        \
  X(R2P, kPredicate, kPred, 4)                       \
  /* --- memory --- */                               \
  X(LD, kLoad, kGpr, 28)                             \
  X(LDC, kLoad, kGpr, 8)                             \
  X(LDG, kLoad, kGpr, 28)                            \
  X(LDL, kLoad, kGpr, 20)                            \
  X(LDS, kLoad, kGpr, 12)                            \
  X(LDSM, kLoad, kGpr, 16)                           \
  X(ST, kStore, kNone, 12)                           \
  X(STG, kStore, kNone, 12)                          \
  X(STL, kStore, kNone, 12)                          \
  X(STS, kStore, kNone, 8)                           \
  X(MATCH, kMemOther, kGpr, 8)                       \
  X(QSPC, kMemOther, kGpr, 8)                        \
  X(ATOM, kAtomic, kGpr, 40)                         \
  X(ATOMS, kAtomic, kGpr, 24)                        \
  X(ATOMG, kAtomic, kGpr, 40)                        \
  X(RED, kAtomic, kNone, 40)                         \
  X(CCTL, kMemOther, kNone, 8)                       \
  X(CCTLL, kMemOther, kNone, 8)                      \
  X(CCTLT, kMemOther, kNone, 8)                      \
  X(ERRBAR, kMemOther, kNone, 8)                     \
  X(MEMBAR, kMemOther, kNone, 8)                     \
  /* --- control --- */                              \
  X(BMOV, kControl, kNone, 4)                        \
  X(BPT, kControl, kNone, 4)                         \
  X(BRA, kControl, kNone, 8)                         \
  X(BREAK, kControl, kNone, 8)                       \
  X(BRX, kControl, kNone, 8)                         \
  X(BRXU, kControl, kNone, 8)                        \
  X(BSSY, kControl, kNone, 4)                        \
  X(BSYNC, kControl, kNone, 4)                       \
  X(CALL, kControl, kNone, 8)                        \
  X(EXIT, kControl, kNone, 4)                        \
  X(JMP, kControl, kNone, 8)                         \
  X(JMX, kControl, kNone, 8)                         \
  X(JMXU, kControl, kNone, 8)                        \
  X(KILL, kControl, kNone, 4)                        \
  X(NANOSLEEP, kControl, kNone, 4)                   \
  X(RET, kControl, kNone, 8)                         \
  X(RPCMOV, kControl, kNone, 4)                      \
  X(RTT, kControl, kNone, 4)                         \
  X(WARPSYNC, kControl, kNone, 4)                    \
  X(YIELD, kControl, kNone, 4)                       \
  /* --- misc --- */                                 \
  X(B2R, kMisc, kGpr, 4)                             \
  X(BAR, kMisc, kNone, 8)                            \
  X(CS2R, kMisc, kGpr, 4)                            \
  X(DEPBAR, kMisc, kNone, 4)                         \
  X(GETLMEMBASE, kMisc, kGpr, 4)                     \
  X(LEPC, kMisc, kGpr, 4)                            \
  X(NOP, kMisc, kNone, 4)                            \
  X(PMTRIG, kMisc, kNone, 4)                         \
  X(R2B, kMisc, kNone, 4)                            \
  X(S2R, kMisc, kGpr, 8)                             \
  X(SETCTAID, kMisc, kNone, 4)                       \
  X(SETLMEMBASE, kMisc, kNone, 4)                    \
  X(VOTE, kMisc, kGprPred, 4)                        \
  X(VOTEU, kMisc, kGpr, 4)                           \
  /* --- graphics interop --- */                     \
  X(AL2P, kGraphics, kGpr, 8)                        \
  X(ALD, kGraphics, kGpr, 8)                         \
  X(AST, kGraphics, kNone, 8)                        \
  X(IPA, kGraphics, kGpr, 8)                         \
  X(ISBERD, kGraphics, kGpr, 8)                      \
  X(OUT, kGraphics, kGpr, 8)                         \
  X(PIXLD, kGraphics, kGpr, 8)                       \
  /* --- texture --- */                              \
  X(TEX, kTexture, kGpr, 40)                         \
  X(TLD, kTexture, kGpr, 40)                         \
  X(TLD4, kTexture, kGpr, 40)                        \
  X(TMML, kTexture, kGpr, 40)                        \
  X(TXD, kTexture, kGpr, 40)                         \
  X(TXQ, kTexture, kGpr, 40)                         \
  /* --- surface --- */                              \
  X(SUATOM, kSurface, kGpr, 40)                      \
  X(SULD, kSurface, kGpr, 40)                        \
  X(SURED, kSurface, kNone, 40)                      \
  X(SUST, kSurface, kNone, 40)                       \
  /* --- uniform datapath --- */                     \
  X(R2UR, kUniform, kGpr, 4)                         \
  X(REDUX, kUniform, kGpr, 8)                        \
  X(S2UR, kUniform, kGpr, 4)                         \
  X(UBMSK, kUniform, kGpr, 4)                        \
  X(UBREV, kUniform, kGpr, 4)                        \
  X(UCLEA, kUniform, kGpr, 4)                        \
  X(UF2FP, kUniform, kGpr, 4)                        \
  X(UFLO, kUniform, kGpr, 4)                         \
  X(UIADD3, kUniform, kGpr, 4)                       \
  X(UIMAD, kUniform, kGpr, 4)                        \
  X(UISETP, kUniform, kPred, 4)                      \
  X(ULDC, kUniform, kGpr, 4)                         \
  X(ULEA, kUniform, kGpr, 4)                         \
  X(ULOP, kUniform, kGpr, 4)                         \
  X(ULOP3, kUniform, kGpr, 4)                        \
  X(ULOP32I, kUniform, kGpr, 4)                      \
  X(UMOV, kUniform, kGpr, 4)                         \
  X(UP2UR, kUniform, kGpr, 4)                        \
  X(UPLOP3, kUniform, kPred, 4)                      \
  X(UPOPC, kUniform, kGpr, 4)                        \
  X(UPRMT, kUniform, kGpr, 4)                        \
  X(UPSETP, kUniform, kPred, 4)                      \
  X(UR2UP, kUniform, kPred, 4)                       \
  X(USEL, kUniform, kGpr, 4)                         \
  X(USGXT, kUniform, kGpr, 4)                        \
  X(USHF, kUniform, kGpr, 4)                         \
  X(USHL, kUniform, kGpr, 4)                         \
  X(USHR, kUniform, kGpr, 4)

enum class Opcode : std::uint16_t {
#define SASSIM_ENUM(name, cls, dest, cost) k##name,
  SASSIM_OPCODE_LIST(SASSIM_ENUM)
#undef SASSIM_ENUM
      kCount,
};

// The paper's Table III: "the Volta ISA contains 171 opcodes".
inline constexpr int kOpcodeCount = static_cast<int>(Opcode::kCount);
static_assert(kOpcodeCount == 171, "opcode table must match the Volta count");

struct OpcodeInfo {
  std::string_view name;
  OpClass op_class;
  DestKind dest_kind;
  std::uint32_t base_cost_cycles;
};

// Metadata lookup; `op` must be a valid opcode (not kCount).
const OpcodeInfo& GetOpcodeInfo(Opcode op);

std::string_view OpcodeName(Opcode op);

// Reverse lookup used by the assembler; nullopt for unknown mnemonics.
std::optional<Opcode> OpcodeFromName(std::string_view name);

inline OpClass ClassOf(Opcode op) { return GetOpcodeInfo(op).op_class; }
inline DestKind DestKindOf(Opcode op) { return GetOpcodeInfo(op).dest_kind; }

inline bool IsMemoryRead(Opcode op) {
  const OpClass c = ClassOf(op);
  return c == OpClass::kLoad;
}

inline bool IsFp64Arith(Opcode op) { return ClassOf(op) == OpClass::kFp64; }
inline bool IsFp32Arith(Opcode op) { return ClassOf(op) == OpClass::kFp32; }

inline bool HasDest(Opcode op) { return DestKindOf(op) != DestKind::kNone; }

// Writes predicate state only (the paper's G_PR population).
inline bool WritesPredOnly(Opcode op) { return DestKindOf(op) == DestKind::kPred; }

// Writes at least one general-purpose register (G_GP population).
inline bool WritesGpr(Opcode op) {
  const DestKind d = DestKindOf(op);
  return d == DestKind::kGpr || d == DestKind::kGprPair || d == DestKind::kGprPred;
}

}  // namespace nvbitfi::sim
