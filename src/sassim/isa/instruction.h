// Structured instruction representation ("decoded SASS").
//
// The executor and the NVBit-like instrumentation layer both operate on this
// IR.  A 128-bit binary encoding exists as well (encoding.h) so that modules
// can round-trip through a byte representation, mirroring how NVBit decodes
// SASS out of the loaded cubin.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sassim/isa/opcode.h"

namespace nvbitfi::sim {

// Register-file constants.  R255 reads as zero and discards writes (RZ); P7
// reads as true and discards writes (PT) — both as in real SASS.
inline constexpr int kNumGpr = 256;
inline constexpr std::uint8_t kRZ = 255;
inline constexpr int kNumPred = 8;
inline constexpr std::uint8_t kPT = 7;
inline constexpr int kWarpSize = 32;

// Special registers readable via S2R.
enum class SpecialReg : std::uint8_t {
  kTidX, kTidY, kTidZ,
  kCtaIdX, kCtaIdY, kCtaIdZ,
  kLaneId,
  kWarpId,
  kSmId,
  kClockLo,
  kCount,
};

std::string_view SpecialRegName(SpecialReg sr);

// Comparison operator for *SETP / *SET / *MNMX-style ops.
enum class CmpOp : std::uint8_t { kF, kLT, kEQ, kLE, kGT, kNE, kGE, kT };

// How a SETP combines the comparison result with its source predicate.
enum class BoolOp : std::uint8_t { kAnd, kOr, kXor };

// MUFU multi-function unit operation.
enum class MufuFunc : std::uint8_t { kRcp, kRsq, kSqrt, kLg2, kEx2, kSin, kCos };

// Memory access width in bits.
enum class MemWidth : std::uint8_t { k8, k16, k32, k64, k128 };

int MemWidthBytes(MemWidth w);

// SHFL data-exchange mode.
enum class ShflMode : std::uint8_t { kIdx, kUp, kDown, kBfly };

// Atomic read-modify-write operation.
enum class AtomicOp : std::uint8_t { kAdd, kMin, kMax, kExch, kCas, kAnd, kOr, kXor };

// VOTE mode.
enum class VoteMode : std::uint8_t { kAll, kAny, kBallot };

enum class ShiftDir : std::uint8_t { kLeft, kRight };

// Collected modifier state.  Only the fields relevant to a given opcode are
// meaningful; the assembler validates which modifiers an opcode accepts.
struct Modifiers {
  CmpOp cmp = CmpOp::kT;
  BoolOp bool_op = BoolOp::kAnd;
  MufuFunc mufu = MufuFunc::kRcp;
  MemWidth width = MemWidth::k32;
  bool sign_extend = false;   // sub-word loads / I2I
  bool src_signed = true;     // I2F/F2I/ISETP signedness
  bool wide_src = false;      // F2F/F2I/I2F with 64-bit source (.F64 source)
  bool wide_dst = false;      // conversion producing a 64-bit result
  ShflMode shfl = ShflMode::kIdx;
  AtomicOp atomic = AtomicOp::kAdd;
  VoteMode vote = VoteMode::kAll;
  ShiftDir shift_dir = ShiftDir::kLeft;
  std::uint8_t lut = 0;       // LOP3/PLOP3 truth table
  SpecialReg sreg = SpecialReg::kTidX;
};

// One instruction operand.
struct Operand {
  enum class Kind : std::uint8_t {
    kNone,
    kGpr,      // Rn (reg), with optional |.|, -, ~ modifiers
    kPred,     // Pn, with optional ! negation
    kImm,      // 32-bit literal (bit pattern; FP32 literals stored as bits)
    kConst,    // c[bank][offset]
    kMem,      // [Rbase(+offset)] — Rbase:Rbase+1 form the 64-bit address
    kLabel,    // branch target, resolved to an instruction index
  };

  Kind kind = Kind::kNone;
  std::uint8_t reg = kRZ;        // kGpr: GPR index; kPred: predicate index
  bool negate = false;           // arithmetic negation (-R1) or !Pn
  bool absolute = false;         // |R1|
  bool invert = false;           // bitwise inversion (~R1)
  std::uint32_t imm = 0;         // kImm literal or kLabel target index
  std::uint8_t const_bank = 0;   // kConst
  std::uint32_t const_offset = 0;
  std::uint8_t mem_base = kRZ;   // kMem base register
  std::int32_t mem_offset = 0;   // kMem signed offset

  static Operand Gpr(std::uint8_t r) {
    Operand o; o.kind = Kind::kGpr; o.reg = r; return o;
  }
  static Operand Pred(std::uint8_t p, bool neg = false) {
    Operand o; o.kind = Kind::kPred; o.reg = p; o.negate = neg; return o;
  }
  static Operand Imm(std::uint32_t bits) {
    Operand o; o.kind = Kind::kImm; o.imm = bits; return o;
  }
  static Operand Const(std::uint8_t bank, std::uint32_t offset) {
    Operand o; o.kind = Kind::kConst; o.const_bank = bank; o.const_offset = offset;
    return o;
  }
  static Operand Mem(std::uint8_t base, std::int32_t offset = 0) {
    Operand o; o.kind = Kind::kMem; o.mem_base = base; o.mem_offset = offset;
    return o;
  }
  static Operand Label(std::uint32_t target) {
    Operand o; o.kind = Kind::kLabel; o.imm = target; return o;
  }
};

inline constexpr int kMaxSrcOperands = 4;

struct Instruction {
  Opcode opcode = Opcode::kNOP;

  // Guard predicate (@Pn / @!Pn); kPT with negate=false means "always".
  std::uint8_t guard_pred = kPT;
  bool guard_negate = false;

  // Destinations.  dest_gpr == kRZ means "no GPR result" (or a discarded
  // one).  SETP-style opcodes write dest_pred (and optionally dest_pred2,
  // which receives the complement); kPT means "discard".
  std::uint8_t dest_gpr = kRZ;
  std::uint8_t dest_pred = kPT;
  std::uint8_t dest_pred2 = kPT;

  std::array<Operand, kMaxSrcOperands> src = {};
  std::uint8_t num_src = 0;

  Modifiers mods;

  // Disassembly-style rendering, e.g. "@!P0 FFMA R4, R2, c[0][0x168], R6 ;".
  std::string ToString() const;
};

// True when `op`'s result width (given modifiers) is a 64-bit register pair.
bool WritesGprPair(const Instruction& inst);

// Number of consecutive GPRs written by the instruction's GPR destination
// (1, 2, or 4 for 128-bit loads); 0 when there is no GPR destination.
int DestGprCount(const Instruction& inst);

}  // namespace nvbitfi::sim
