// A loaded kernel body: the unit the executor runs and the NVBit layer
// instruments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sassim/isa/instruction.h"

namespace nvbitfi::sim {

struct KernelSource {
  std::string name;
  std::uint32_t register_count = 32;  // register pressure; feeds the spill model
  std::uint32_t shared_bytes = 0;
  std::vector<Instruction> instructions;
};

}  // namespace nvbitfi::sim
