// Fixed-width binary encoding of the simulated ISA.
//
// Each instruction encodes to four 64-bit words: a control word (opcode,
// guard, destinations, modifiers), an operand-descriptor word, and two payload
// words holding up to four 32-bit operand payloads (immediates, constant-bank
// offsets, memory offsets, branch targets).  Real Volta SASS is 128 bits per
// instruction with far more constrained operand forms; we trade encoding
// density for a simple, fully round-trippable format — what matters for the
// reproduction is that modules have a genuine binary representation that the
// NVBit layer "decodes", not the bit budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sassim/isa/instruction.h"

namespace nvbitfi::sim {

inline constexpr int kEncodedWords = 4;

struct EncodedInstruction {
  std::uint64_t words[kEncodedWords] = {0, 0, 0, 0};
  bool operator==(const EncodedInstruction&) const = default;
};

// Encodes `inst`; throws std::logic_error on unencodable instructions (e.g.
// register or predicate indices out of range — these cannot be produced by
// the assembler, only by hand-built IR).
EncodedInstruction Encode(const Instruction& inst);

struct DecodeResult {
  bool ok = false;
  std::string error;
  Instruction instruction;
};

// Decodes one instruction, validating every field.
DecodeResult Decode(const EncodedInstruction& enc);

// Whole-program helpers used by the module loader.
std::vector<EncodedInstruction> EncodeProgram(const std::vector<Instruction>& prog);

struct ProgramDecodeResult {
  bool ok = false;
  std::string error;  // references the failing instruction index
  std::vector<Instruction> instructions;
};

ProgramDecodeResult DecodeProgram(const std::vector<EncodedInstruction>& prog);

}  // namespace nvbitfi::sim
