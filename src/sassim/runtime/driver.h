// CUDA-driver-like API over the simulator.
//
// A Context owns a Device, loads modules (assembled from the SASS-like text
// dialect, then round-tripped through the binary encoding the way a real
// driver ingests a cubin), allocates device memory, and launches kernels.
//
// Error semantics mirror CUDA's sticky-context behaviour, which the paper's
// "potential DUE" category depends on (§IV-A): a device-side trap terminates
// the *current kernel* early, records an XID entry in the device log, and
// poisons the context — but LaunchKernel itself reports success (launches are
// conceptually asynchronous).  The error is only visible to host code that
// explicitly checks Synchronize()/last_error(); host programs that never
// check will happily read back partial results.
//
// Constant-bank-0 layout seen by kernels:
//   c[0][0x00..0x08]  blockDim.x/y/z      c[0][0x0c..0x14]  gridDim.x/y/z
//   c[0][0x160 + 8*i] kernel parameter i  (pointers use the full 8 bytes)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sassim/core/cost_model.h"
#include "sassim/core/executor.h"
#include "sassim/core/types.h"
#include "sassim/isa/encoding.h"
#include "sassim/isa/kernel.h"
#include "sassim/runtime/checkpoint.h"
#include "sassim/runtime/cu_result.h"
#include "sassim/runtime/device.h"

namespace nvbitfi::sim {

inline constexpr std::uint32_t kParamBaseOffset = 0x160;

class Context;

// A loaded kernel.  Owned by its Module; pointers remain valid for the life
// of the Context.
class Function {
 public:
  Function(KernelSource source, std::uint32_t id)
      : source_(std::move(source)), id_(id) {}

  const std::string& name() const { return source_.name; }
  const KernelSource& source() const { return source_; }
  std::uint32_t id() const { return id_; }

 private:
  KernelSource source_;
  std::uint32_t id_;
};

class Module {
 public:
  explicit Module(std::vector<std::unique_ptr<Function>> functions)
      : functions_(std::move(functions)) {}

  Function* GetFunction(std::string_view name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const { return functions_; }

 private:
  std::vector<std::unique_ptr<Function>> functions_;
};

// Interface the NVBit layer implements to intercept launches.  The driver
// itself knows nothing about instrumentation tools.
class LaunchInterceptor {
 public:
  virtual ~LaunchInterceptor() = default;

  // Called before the launch executes.  May return an instrumentation plan
  // (nullptr = run uninstrumented) and add cycles (e.g. JIT compilation of an
  // instrumented kernel version) via `extra_cycles`.
  virtual const InstrumentationPlan* OnLaunchBegin(const LaunchInfo& info,
                                                   const Function& function,
                                                   std::uint64_t* extra_cycles) = 0;

  virtual void OnLaunchEnd(const LaunchInfo& info, const Function& function,
                           const LaunchStats& stats) = 0;

  // Called when a module is loaded (NVBit exposes related functions to tools).
  virtual void OnModuleLoaded(const Module& module) = 0;
};

class Context {
 public:
  explicit Context(DeviceProps props = DeviceProps{});
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  Device& device() { return device_; }
  const Device& device() const { return device_; }

  // ---- module management ----
  // Assembles `source`, encodes it to the binary form, and loads the decoded
  // module (a cubin-like round trip).  On success *out points to a module
  // owned by the context.
  CuResult ModuleLoadText(std::string_view source, Module** out);
  Function* GetFunction(std::string_view name) const;  // across all modules
  const std::vector<std::unique_ptr<Module>>& modules() const { return modules_; }

  // ---- memory ----
  CuResult MemAlloc(DevPtr* out, std::size_t bytes);
  CuResult MemFree(DevPtr ptr);
  CuResult MemcpyHtoD(DevPtr dst, const void* src, std::size_t bytes);
  CuResult MemcpyDtoH(void* dst, DevPtr src, std::size_t bytes);

  // ---- launch ----
  // `params` are 8-byte kernel parameters written to c[0][0x160+8i].
  // Returns kSuccess unless the host arguments themselves are invalid; device
  // faults surface through last_error()/Synchronize() (sticky).
  CuResult LaunchKernel(Function* function, Dim3 grid, Dim3 block,
                        std::span<const std::uint64_t> params);

  // Blocks until outstanding work completes (synchronous simulator: no-op)
  // and reports the sticky error state.
  CuResult Synchronize() const { return sticky_error_; }
  CuResult last_error() const { return sticky_error_; }

  // ---- instrumentation attach point (used by the NVBit layer) ----
  void SetInterceptor(LaunchInterceptor* interceptor);
  LaunchInterceptor* interceptor() const { return interceptor_; }

  // ---- accounting / configuration ----
  std::uint64_t total_cycles() const { return total_cycles_; }
  std::uint64_t total_launches() const { return global_launch_ordinal_; }
  std::uint64_t total_thread_instructions() const { return total_thread_instructions_; }
  // Largest single-launch thread-instruction count seen (watchdog calibration).
  std::uint64_t max_launch_thread_instructions() const {
    return max_launch_thread_instructions_;
  }

  const CostModel& cost_model() const { return cost_model_; }
  CostModel& mutable_cost_model() { return cost_model_; }

  // Watchdog bound per launch in thread-instructions (0 = disabled).
  void set_launch_watchdog(std::uint64_t max_thread_instructions) {
    watchdog_ = max_thread_instructions;
  }
  std::uint64_t launch_watchdog() const { return watchdog_; }

  // Per-kernel-name dynamic launch counts (used by tests and the profiler).
  const std::unordered_map<std::string, std::uint64_t>& launch_counts() const {
    return launch_counts_;
  }

  // ---- checkpoint engine (see runtime/checkpoint.h) ----
  // Snapshot of all launch-mutable context state.  `prev` enables
  // copy-on-write page sharing against an earlier snapshot.
  SimState Snapshot(const GlobalMemory::Snapshot* prev = nullptr) const;
  // Restores a snapshot taken on this context (same module table required).
  void Restore(const SimState& state);

  // Record mode: every executed launch appends its identity, stats, and
  // post-launch SimState to `stream` (golden-run recording; pass nullptr to
  // stop).  Recording only observes — accounting is unchanged.
  void RecordCheckpoints(CheckpointStream* stream) { record_stream_ = stream; }

  // Replay mode: launches with global_ordinal < `stop_before_global_ordinal`
  // whose identity and host-action hash match `stream` are fast-forwarded by
  // restoring the recorded post-launch state instead of simulating.  `stats`
  // (optional) counts the work saved and the fallbacks taken.
  void ReplayCheckpoints(const CheckpointStream* stream,
                         std::uint64_t stop_before_global_ordinal,
                         ReplayStats* stats = nullptr) {
    replay_stream_ = stream;
    replay_stop_ = stop_before_global_ordinal;
    replay_stats_ = stats;
    replay_diverged_ = false;
  }

  // Rolling hash over host-visible driver actions (divergence detection).
  std::uint64_t host_action_hash() const { return host_hash_.value(); }

 private:
  // The stream checkpoint this launch can be fast-forwarded from, or nullptr
  // when it must execute live (not replaying, past the stop ordinal, tool
  // instrumentation requested, identity/hash divergence, or watchdog risk).
  const LaunchCheckpoint* FastForwardCandidate(const LaunchInfo& info,
                                               std::span<const std::uint64_t> params,
                                               const InstrumentationPlan* plan,
                                               std::uint64_t entry_hash);

  Device device_;
  CostModel cost_model_;
  std::vector<std::unique_ptr<Module>> modules_;
  LaunchInterceptor* interceptor_ = nullptr;
  CuResult sticky_error_ = CuResult::kSuccess;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t total_thread_instructions_ = 0;
  std::uint64_t max_launch_thread_instructions_ = 0;
  std::uint64_t global_launch_ordinal_ = 0;
  std::unordered_map<std::string, std::uint64_t> launch_counts_;
  std::uint64_t watchdog_ = 0;
  std::uint32_t next_function_id_ = 0;

  // Checkpoint engine state.
  CheckpointStream* record_stream_ = nullptr;
  const CheckpointStream* replay_stream_ = nullptr;
  std::uint64_t replay_stop_ = 0;
  ReplayStats* replay_stats_ = nullptr;
  bool replay_diverged_ = false;
  HostActionHash host_hash_;
};

}  // namespace nvbitfi::sim
