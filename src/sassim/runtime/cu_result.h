// CUDA-driver result codes and their mapping from device traps.
//
// Split out of driver.h so that checkpoint state (runtime/checkpoint.h) can
// name the sticky-error word without pulling in the full driver API; driver.h
// re-exports these names for all existing users.
#pragma once

#include <cstdint>
#include <string_view>

#include "sassim/mem/memory.h"

namespace nvbitfi::sim {

enum class CuResult : std::uint8_t {
  kSuccess,
  kInvalidValue,
  kNotFound,
  kOutOfMemory,
  kIllegalAddress,
  kMisalignedAddress,
  kIllegalInstruction,
  kLaunchTimeout,
  kLaunchFailed,
};

std::string_view CuResultName(CuResult r);
CuResult CuResultFromTrap(TrapKind trap);

}  // namespace nvbitfi::sim
