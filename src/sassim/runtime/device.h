// Device identity, properties, and the device log ("dmesg" analogue).
//
// The paper's outcome taxonomy (Table V) distinguishes failures the *system*
// records from failures the *application* notices.  DeviceLog plays the role
// of the kernel log: every trap writes an XID-style entry here, and the
// outcome classifier inspects it to flag "potential DUE" runs whose stdout
// looked fine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sassim/mem/memory.h"

namespace nvbitfi::sim {

struct DeviceProps {
  std::string name = "Simulated Titan V";
  int num_sms = 8;          // scaled down from 80 (DESIGN.md §6)
  int lanes_per_sm = 32;    // hardware lanes per SM, for permanent faults
  std::string isa = "volta-sim";
};

struct DeviceLogEntry {
  std::uint64_t sequence = 0;
  TrapKind trap = TrapKind::kNone;
  std::string message;
};

class DeviceLog {
 public:
  void Record(TrapKind trap, const std::string& message) {
    entries_.push_back(DeviceLogEntry{next_++, trap, message});
  }
  const std::vector<DeviceLogEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  // Checkpoint support: the sequence counter is part of the log's state, so
  // restoring a snapshot replays XID ordering exactly (entries recorded
  // after a restore continue the captured numbering).
  std::uint64_t next_sequence() const { return next_; }
  void Restore(std::vector<DeviceLogEntry> entries, std::uint64_t next_sequence) {
    entries_ = std::move(entries);
    next_ = next_sequence;
  }

 private:
  std::vector<DeviceLogEntry> entries_;
  std::uint64_t next_ = 0;
};

class Device {
 public:
  explicit Device(DeviceProps props = DeviceProps{}) : props_(std::move(props)) {}

  const DeviceProps& props() const { return props_; }
  GlobalMemory& memory() { return memory_; }
  const GlobalMemory& memory() const { return memory_; }
  DeviceLog& log() { return log_; }
  const DeviceLog& log() const { return log_; }

 private:
  DeviceProps props_;
  GlobalMemory memory_;
  DeviceLog log_;
};

}  // namespace nvbitfi::sim
