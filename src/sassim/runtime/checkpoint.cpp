#include "sassim/runtime/checkpoint.h"

#include <algorithm>

namespace nvbitfi::sim {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

}  // namespace

const LaunchCheckpoint* CheckpointStream::FindGlobalOrdinal(
    std::uint64_t global_ordinal) const {
  // Global ordinals are recorded in strictly increasing order (launches that
  // never executed leave gaps), so binary search applies.
  const auto it = std::lower_bound(
      launches_.begin(), launches_.end(), global_ordinal,
      [](const LaunchCheckpoint& cp, std::uint64_t g) { return cp.global_ordinal < g; });
  if (it == launches_.end() || it->global_ordinal != global_ordinal) return nullptr;
  return &*it;
}

std::optional<std::uint64_t> CheckpointStream::GlobalOrdinalOf(
    std::string_view kernel_name, std::uint64_t launch_ordinal) const {
  for (const LaunchCheckpoint& cp : launches_) {
    if (cp.launch_ordinal == launch_ordinal && cp.kernel_name == kernel_name) {
      return cp.global_ordinal;
    }
  }
  return std::nullopt;
}

void HostActionHash::MixU64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (value >> (8 * i)) & 0xff;
    hash_ *= kFnvPrime;
  }
}

void HostActionHash::MixBytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= kFnvPrime;
  }
}

}  // namespace nvbitfi::sim
