// Checkpoint/restore engine state: golden-prefix reuse for injection runs.
//
// Every transient experiment's device state before the injection point is
// bit-identical to the golden run (ZOFI's "zero overhead" observation), so
// re-simulating the prefix is pure waste.  The engine splits that insight
// into three pieces:
//
//   * SimState — everything a Context owns that a kernel launch can change:
//     global-memory pages (captured copy-on-write), the device log and its
//     sequence counter, the sticky CUDA error, the accounting counters, and
//     the per-kernel launch counts.  Context::Snapshot()/Restore() move a
//     context to/from a SimState at a launch boundary.
//   * LaunchCheckpoint / CheckpointStream — the golden run records, per
//     executed launch, its identity (name, ordinals, geometry, parameters),
//     the cumulative host-action hash at submission, the launch's stats,
//     and the post-launch SimState.
//   * Replay — an injection run re-executes the (deterministic) host program
//     but fast-forwards launches before the injection launch: instead of
//     simulating, the driver restores the recorded post-launch memory, log,
//     and sticky error, and accumulates the recorded stats as deltas.
//
// Host-side program state cannot be snapshotted (the host is arbitrary C++),
// so replay *detects* divergence instead: every host-visible driver action
// (alloc/free/HtoD/DtoH) feeds a rolling hash, and a launch whose recorded
// hash disagrees with the live one — or that the tool wants instrumented, or
// whose recorded cost would trip the run's watchdog — executes live.  After
// a hash divergence the rest of the run stays live (state is still correct:
// restores happen at launch boundaries, and host writes since the last
// restore land on top of restored pages exactly as they did in golden).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sassim/core/executor.h"
#include "sassim/core/types.h"
#include "sassim/mem/memory.h"
#include "sassim/runtime/cu_result.h"
#include "sassim/runtime/device.h"

namespace nvbitfi::sim {

// Snapshot of all launch-mutable context state at a kernel-launch boundary.
struct SimState {
  GlobalMemory::Snapshot memory;
  std::vector<DeviceLogEntry> log_entries;
  std::uint64_t log_next_sequence = 0;
  CuResult sticky_error = CuResult::kSuccess;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_thread_instructions = 0;
  std::uint64_t max_launch_thread_instructions = 0;
  std::uint64_t global_launch_ordinal = 0;
  std::unordered_map<std::string, std::uint64_t> launch_counts;
  // Module/function-table fingerprint.  Loaded modules are immutable so
  // snapshots do not copy them, but restoring onto a context whose table
  // diverged would be silently wrong — Restore() checks this instead.
  std::size_t num_modules = 0;
  std::uint32_t next_function_id = 0;
};

// One recorded golden launch: identity, cost, and the state it produced.
struct LaunchCheckpoint {
  std::string kernel_name;
  std::uint64_t launch_ordinal = 0;  // per-kernel-name instance counter
  std::uint64_t global_ordinal = 0;  // across all kernels
  Dim3 grid;
  Dim3 block;
  std::vector<std::uint64_t> params;
  // Cumulative host-action hash when the launch was submitted; replay
  // fast-forwards only while the live hash still agrees.
  std::uint64_t host_hash = 0;
  LaunchStats stats;   // the golden launch's uninstrumented cost + trap
  SimState post_state; // device state after the launch completed
};

// The golden run's per-launch checkpoint sequence, in execution order.
// Launches that never executed (submitted after a sticky error) have no
// entry; lookups therefore verify the global ordinal rather than index.
class CheckpointStream {
 public:
  void Append(LaunchCheckpoint checkpoint) {
    launches_.push_back(std::move(checkpoint));
  }

  const std::vector<LaunchCheckpoint>& launches() const { return launches_; }
  bool empty() const { return launches_.empty(); }

  // The checkpoint recorded for this global launch ordinal, or nullptr.
  const LaunchCheckpoint* FindGlobalOrdinal(std::uint64_t global_ordinal) const;

  // Maps an injection target's (kernel name, per-name launch ordinal) to its
  // global launch ordinal; nullopt when the golden run never executed it.
  std::optional<std::uint64_t> GlobalOrdinalOf(std::string_view kernel_name,
                                               std::uint64_t launch_ordinal) const;

 private:
  std::vector<LaunchCheckpoint> launches_;
};

// Per-run replay accounting, reported per campaign.
struct ReplayStats {
  std::uint64_t launches_fast_forwarded = 0;
  std::uint64_t launches_executed = 0;  // live launches during a replay run
  std::uint64_t thread_instructions_saved = 0;
  std::uint64_t cycles_saved = 0;  // simulation work skipped (still accounted)
  // Fallbacks to live execution: host actions diverged from the recording
  // (permanent for the rest of the run), or a recorded launch would trip the
  // run's watchdog (that launch only — it must trap live).
  std::uint64_t host_divergences = 0;
  std::uint64_t watchdog_fallbacks = 0;
};

// Rolling FNV-1a hash over host-visible driver actions; the divergence
// detector for state the checkpoint engine cannot snapshot.
class HostActionHash {
 public:
  void MixU64(std::uint64_t value);
  void MixBytes(const void* data, std::size_t size);
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

}  // namespace nvbitfi::sim
