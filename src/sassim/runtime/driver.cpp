#include "sassim/runtime/driver.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "common/strings.h"
#include "sassim/asm/assembler.h"
#include "telemetry/metrics.h"

namespace nvbitfi::sim {
namespace {

// Host-action tags fed to the divergence hash; distinct per driver entry
// point so reordered action sequences cannot collide.
enum HostActionTag : std::uint64_t {
  kTagMemAlloc = 1,
  kTagMemFree = 2,
  kTagMemcpyHtoD = 3,
  kTagMemcpyDtoH = 4,
};

}  // namespace

std::string_view CuResultName(CuResult r) {
  switch (r) {
    case CuResult::kSuccess: return "CUDA_SUCCESS";
    case CuResult::kInvalidValue: return "CUDA_ERROR_INVALID_VALUE";
    case CuResult::kNotFound: return "CUDA_ERROR_NOT_FOUND";
    case CuResult::kOutOfMemory: return "CUDA_ERROR_OUT_OF_MEMORY";
    case CuResult::kIllegalAddress: return "CUDA_ERROR_ILLEGAL_ADDRESS";
    case CuResult::kMisalignedAddress: return "CUDA_ERROR_MISALIGNED_ADDRESS";
    case CuResult::kIllegalInstruction: return "CUDA_ERROR_ILLEGAL_INSTRUCTION";
    case CuResult::kLaunchTimeout: return "CUDA_ERROR_LAUNCH_TIMEOUT";
    case CuResult::kLaunchFailed: return "CUDA_ERROR_LAUNCH_FAILED";
  }
  return "?";
}

CuResult CuResultFromTrap(TrapKind trap) {
  switch (trap) {
    case TrapKind::kNone: return CuResult::kSuccess;
    case TrapKind::kIllegalAddress: return CuResult::kIllegalAddress;
    case TrapKind::kMisalignedAddress: return CuResult::kMisalignedAddress;
    case TrapKind::kIllegalInstruction: return CuResult::kIllegalInstruction;
    case TrapKind::kTimeout: return CuResult::kLaunchTimeout;
    case TrapKind::kBarrierMismatch: return CuResult::kLaunchFailed;
  }
  return CuResult::kLaunchFailed;
}

Function* Module::GetFunction(std::string_view name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

Context::Context(DeviceProps props) : device_(std::move(props)) {}
Context::~Context() = default;

CuResult Context::ModuleLoadText(std::string_view source, Module** out) {
  NVBITFI_CHECK(out != nullptr);
  *out = nullptr;

  AssemblyResult assembled = Assemble(source);
  if (!assembled.ok) {
    LOG_ERROR << "module load failed: " << assembled.error;
    return CuResult::kInvalidValue;
  }

  // Round-trip each kernel through the binary encoding, as a real driver
  // would decode SASS out of the cubin image.
  std::vector<std::unique_ptr<Function>> functions;
  for (KernelSource& kernel : assembled.kernels) {
    const std::vector<EncodedInstruction> binary = EncodeProgram(kernel.instructions);
    ProgramDecodeResult decoded = DecodeProgram(binary);
    if (!decoded.ok) {
      LOG_ERROR << "module decode failed for kernel '" << kernel.name
                << "': " << decoded.error;
      return CuResult::kInvalidValue;
    }
    KernelSource loaded = kernel;
    loaded.instructions = std::move(decoded.instructions);
    functions.push_back(std::make_unique<Function>(std::move(loaded), next_function_id_++));
  }

  modules_.push_back(std::make_unique<Module>(std::move(functions)));
  Module* module = modules_.back().get();
  if (interceptor_ != nullptr) interceptor_->OnModuleLoaded(*module);
  *out = module;
  return CuResult::kSuccess;
}

Function* Context::GetFunction(std::string_view name) const {
  for (const auto& module : modules_) {
    if (Function* fn = module->GetFunction(name); fn != nullptr) return fn;
  }
  return nullptr;
}

CuResult Context::MemAlloc(DevPtr* out, std::size_t bytes) {
  NVBITFI_CHECK(out != nullptr);
  if (bytes == 0) return CuResult::kInvalidValue;
  *out = device_.memory().Alloc(bytes);
  host_hash_.MixU64(kTagMemAlloc);
  host_hash_.MixU64(bytes);
  return CuResult::kSuccess;
}

CuResult Context::MemFree(DevPtr ptr) {
  host_hash_.MixU64(kTagMemFree);
  host_hash_.MixU64(ptr);
  return device_.memory().Free(ptr) ? CuResult::kSuccess : CuResult::kInvalidValue;
}

CuResult Context::MemcpyHtoD(DevPtr dst, const void* src, std::size_t bytes) {
  // Uploaded *content* joins the hash: a host program that computes different
  // inputs (e.g. from data a fault corrupted earlier) must not be
  // fast-forwarded onto golden state.
  host_hash_.MixU64(kTagMemcpyHtoD);
  host_hash_.MixU64(dst);
  host_hash_.MixU64(bytes);
  host_hash_.MixBytes(src, bytes);
  const bool ok = device_.memory().CopyIn(
      dst, std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(src), bytes));
  if (!ok) return CuResult::kInvalidValue;
  total_cycles_ += bytes / 4;
  return sticky_error_;
}

CuResult Context::MemcpyDtoH(void* dst, DevPtr src, std::size_t bytes) {
  // Downloads hash only their location: the content is device state, which
  // restores bit-identically by construction.
  host_hash_.MixU64(kTagMemcpyDtoH);
  host_hash_.MixU64(src);
  host_hash_.MixU64(bytes);
  const bool ok = device_.memory().CopyOut(
      src, std::span<std::uint8_t>(static_cast<std::uint8_t*>(dst), bytes));
  if (!ok) return CuResult::kInvalidValue;
  total_cycles_ += bytes / 4;
  // Sticky device errors surface on dependent API calls (but the copy itself
  // proceeds so that host code that ignores the error reads partial data).
  return sticky_error_;
}

CuResult Context::LaunchKernel(Function* function, Dim3 grid, Dim3 block,
                               std::span<const std::uint64_t> params) {
  if (function == nullptr) return CuResult::kInvalidValue;
  if (grid.Count() == 0 || block.Count() == 0 ||
      block.Count() > Executor::kMaxThreadsPerBlock) {
    return CuResult::kInvalidValue;
  }

  LaunchInfo info;
  info.kernel_name = function->name();
  info.launch_ordinal = launch_counts_[function->name()]++;
  info.global_ordinal = global_launch_ordinal_++;
  info.grid = grid;
  info.block = block;

  // After a sticky error the context is poisoned: new work is not executed
  // (mirrors CUDA), but the dynamic launch still counts — the process kept
  // submitting work it never checked.
  if (sticky_error_ != CuResult::kSuccess) return CuResult::kSuccess;

  // Host-action hash as of this launch's submission: the recorded value a
  // replay of the same launch must reproduce to be fast-forwarded.
  const std::uint64_t entry_hash = host_hash_.value();

  ConstantBank bank0;
  bank0.Write32(0x00, block.x);
  bank0.Write32(0x04, block.y);
  bank0.Write32(0x08, block.z);
  bank0.Write32(0x0c, grid.x);
  bank0.Write32(0x10, grid.y);
  bank0.Write32(0x14, grid.z);
  for (std::size_t i = 0; i < params.size(); ++i) {
    bank0.Write64(kParamBaseOffset + static_cast<std::uint32_t>(8 * i), params[i]);
  }

  const InstrumentationPlan* plan = nullptr;
  std::uint64_t extra_cycles = 0;
  if (interceptor_ != nullptr) {
    plan = interceptor_->OnLaunchBegin(info, *function, &extra_cycles);
    extra_cycles += cost_model_.tool_intercept_cycles;
  }
  total_cycles_ += extra_cycles;

  // Checkpoint fast-forward: skip simulating a golden-prefix launch and
  // restore its recorded outcome instead.  Counters advance by the recorded
  // *deltas* (not a blanket restore) so tool-interception cycles already
  // accumulated this run are preserved and accounting stays bit-identical
  // to a from-scratch run.
  if (const LaunchCheckpoint* cp = FastForwardCandidate(info, params, plan, entry_hash);
      cp != nullptr) {
    const telemetry::ScopedPhase span(telemetry::Phase::kFastForward);
    device_.memory().RestoreSnapshot(cp->post_state.memory);
    device_.log().Restore(cp->post_state.log_entries, cp->post_state.log_next_sequence);
    sticky_error_ = cp->post_state.sticky_error;
    total_cycles_ += cp->stats.cycles;
    total_thread_instructions_ += cp->stats.thread_instructions;
    max_launch_thread_instructions_ =
        std::max(max_launch_thread_instructions_, cp->stats.thread_instructions);
    if (replay_stats_ != nullptr) {
      ++replay_stats_->launches_fast_forwarded;
      replay_stats_->thread_instructions_saved += cp->stats.thread_instructions;
      replay_stats_->cycles_saved += cp->stats.cycles;
    }
    if (interceptor_ != nullptr) interceptor_->OnLaunchEnd(info, *function, cp->stats);
    return CuResult::kSuccess;
  }

  Executor::Request request;
  request.kernel = &function->source();
  request.launch = info;
  request.bank0 = &bank0;
  request.global = &device_.memory();
  request.num_sms = device_.props().num_sms;
  request.plan = plan;
  request.cost = &cost_model_;
  request.max_thread_instructions = watchdog_;

  const LaunchStats stats = Executor::Run(request);
  total_cycles_ += stats.cycles;
  total_thread_instructions_ += stats.thread_instructions;
  max_launch_thread_instructions_ =
      std::max(max_launch_thread_instructions_, stats.thread_instructions);

  if (stats.trap != TrapKind::kNone) {
    sticky_error_ = CuResultFromTrap(stats.trap);
    device_.log().Record(stats.trap,
                         Format("XID 13: %s", stats.trap_detail.c_str()));
    LOG_INFO << "kernel '" << function->name() << "' trapped: " << stats.trap_detail;
  }

  if (interceptor_ != nullptr) interceptor_->OnLaunchEnd(info, *function, stats);

  if (replay_stats_ != nullptr) ++replay_stats_->launches_executed;
  if (record_stream_ != nullptr) {
    const telemetry::ScopedPhase span(telemetry::Phase::kCheckpointRecord);
    LaunchCheckpoint cp;
    cp.kernel_name = info.kernel_name;
    cp.launch_ordinal = info.launch_ordinal;
    cp.global_ordinal = info.global_ordinal;
    cp.grid = grid;
    cp.block = block;
    cp.params.assign(params.begin(), params.end());
    cp.host_hash = entry_hash;
    cp.stats = stats;
    // Share unmodified memory pages with the previous checkpoint: a stream
    // over N launches costs O(pages touched), not O(N * arena).
    cp.post_state = Snapshot(record_stream_->launches().empty()
                                 ? nullptr
                                 : &record_stream_->launches().back().post_state.memory);
    record_stream_->Append(std::move(cp));
  }
  return CuResult::kSuccess;
}

const LaunchCheckpoint* Context::FastForwardCandidate(
    const LaunchInfo& info, std::span<const std::uint64_t> params,
    const InstrumentationPlan* plan, std::uint64_t entry_hash) {
  if (replay_stream_ == nullptr || replay_diverged_) return nullptr;
  if (info.global_ordinal >= replay_stop_) return nullptr;
  // An instrumented launch must actually run: the tool wants its callbacks.
  if (plan != nullptr) return nullptr;

  const LaunchCheckpoint* cp = replay_stream_->FindGlobalOrdinal(info.global_ordinal);
  const bool identity_matches =
      cp != nullptr && cp->kernel_name == info.kernel_name &&
      cp->launch_ordinal == info.launch_ordinal && cp->grid == info.grid &&
      cp->block == info.block && cp->params.size() == params.size() &&
      std::equal(cp->params.begin(), cp->params.end(), params.begin());
  if (!identity_matches || cp->host_hash != entry_hash) {
    // The host program took a different path than the recording (or the
    // recording has no entry here).  Fall back to live execution for the
    // rest of the run — later checkpoints assume this prefix.
    replay_diverged_ = true;
    if (replay_stats_ != nullptr) ++replay_stats_->host_divergences;
    return nullptr;
  }
  if (watchdog_ != 0 && cp->stats.thread_instructions > watchdog_) {
    // The recorded (uncapped) launch exceeds this run's watchdog budget:
    // execute it live so the Timeout trap fires exactly as it would have
    // without checkpoints.  The trap poisons the context, so no later
    // launch executes against post-fallback state.
    if (replay_stats_ != nullptr) ++replay_stats_->watchdog_fallbacks;
    return nullptr;
  }
  return cp;
}

SimState Context::Snapshot(const GlobalMemory::Snapshot* prev) const {
  SimState state;
  state.memory = device_.memory().TakeSnapshot(prev);
  state.log_entries = device_.log().entries();
  state.log_next_sequence = device_.log().next_sequence();
  state.sticky_error = sticky_error_;
  state.total_cycles = total_cycles_;
  state.total_thread_instructions = total_thread_instructions_;
  state.max_launch_thread_instructions = max_launch_thread_instructions_;
  state.global_launch_ordinal = global_launch_ordinal_;
  state.launch_counts = launch_counts_;
  state.num_modules = modules_.size();
  state.next_function_id = next_function_id_;
  return state;
}

void Context::Restore(const SimState& state) {
  NVBITFI_CHECK_MSG(state.num_modules == modules_.size() &&
                        state.next_function_id == next_function_id_,
                    "SimState restore across a different module table");
  device_.memory().RestoreSnapshot(state.memory);
  device_.log().Restore(state.log_entries, state.log_next_sequence);
  sticky_error_ = state.sticky_error;
  total_cycles_ = state.total_cycles;
  total_thread_instructions_ = state.total_thread_instructions;
  max_launch_thread_instructions_ = state.max_launch_thread_instructions;
  global_launch_ordinal_ = state.global_launch_ordinal;
  launch_counts_ = state.launch_counts;
}

void Context::SetInterceptor(LaunchInterceptor* interceptor) { interceptor_ = interceptor; }

}  // namespace nvbitfi::sim
