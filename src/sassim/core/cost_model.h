// Simulated-cycle cost model.
//
// Figures 4 and 5 of the paper report *relative* execution overheads; in this
// reproduction they are computed from deterministic simulated cycles rather
// than wall-clock time, so results are machine-independent.  The model
// charges per-warp-instruction base costs (by opcode class), per-lane costs
// for spliced instrumentation code, a register-spill multiplier when
// instrumentation pushes a kernel past the register budget (the mechanism the
// paper blames for the 558x exact-profiling outlier), and a JIT recompilation
// cost the first time an instrumented kernel version is built.
#pragma once

#include <cstdint>

#include "sassim/isa/instruction.h"

namespace nvbitfi::sim {

struct CostModel {
  // Registers available before instrumentation code forces spills.
  std::uint32_t spill_reg_threshold = 88;
  // Multiplier applied to every instruction of a spilling instrumented kernel.
  std::uint32_t spill_multiplier = 8;
  // Multiplier applied to the instrumentation code itself when it spills
  // (the injected accumulators live in local memory).
  std::uint32_t spill_callback_multiplier = 4;
  // JIT compilation: fixed + per-static-instruction cycles, charged once per
  // (function, tool-config) pair by the NVBit layer's cache.
  std::uint64_t jit_base_cycles = 30000;
  std::uint64_t jit_cycles_per_instruction = 500;
  // Fixed launch overhead (driver + block scheduling).
  std::uint64_t launch_base_cycles = 2000;
  // Extra per-launch cost of having a DBI tool attached at all (launch
  // interception, kernel lookup, instrumentation decision).
  std::uint64_t tool_intercept_cycles = 1500;

  std::uint64_t BaseCost(const Instruction& inst) const {
    return GetOpcodeInfo(inst.opcode).base_cost_cycles;
  }

  bool Spills(std::uint32_t kernel_regs, std::uint32_t extra_regs) const {
    return kernel_regs + extra_regs > spill_reg_threshold;
  }
};

}  // namespace nvbitfi::sim
