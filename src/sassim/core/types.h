// Shared launch-geometry types.
#pragma once

#include <cstdint>
#include <string>

namespace nvbitfi::sim {

struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  std::uint64_t Count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  bool operator==(const Dim3&) const = default;
};

// Identity of one dynamic kernel launch, visible to instrumentation tools.
struct LaunchInfo {
  std::string kernel_name;
  std::uint64_t launch_ordinal = 0;  // per-kernel-name dynamic instance counter
  std::uint64_t global_ordinal = 0;  // across all kernels in the context
  Dim3 grid;
  Dim3 block;
};

}  // namespace nvbitfi::sim
