// Functional SIMT executor.
//
// Executes one kernel launch: blocks are assigned to SMs round-robin, warps
// within a block are interleaved one instruction at a time, and each warp
// step executes the cohort of threads at the minimum live PC (min-PC
// scheduling handles arbitrary divergence without SSY/BSYNC tokens).
// Device-side faults (illegal/misaligned addresses, illegal instructions,
// watchdog timeouts) abort the launch and are reported in LaunchStats — the
// driver layer turns them into CUDA-style sticky errors.
#pragma once

#include <cstdint>
#include <string>

#include "sassim/core/cost_model.h"
#include "sassim/core/instrumentation.h"
#include "sassim/core/types.h"
#include "sassim/isa/kernel.h"
#include "sassim/mem/memory.h"

namespace nvbitfi::sim {

struct LaunchStats {
  std::uint64_t warp_instructions = 0;    // cohort issues
  std::uint64_t thread_instructions = 0;  // guard-true per-thread executions
  std::uint64_t lane_events = 0;          // instrumentation callback events
  std::uint64_t cycles = 0;               // simulated cycles (incl. instrumentation)
  TrapKind trap = TrapKind::kNone;
  std::string trap_detail;

  bool ok() const { return trap == TrapKind::kNone; }
};

class Executor {
 public:
  struct Request {
    const KernelSource* kernel = nullptr;
    LaunchInfo launch;
    ConstantBank* bank0 = nullptr;         // launch config + params (required)
    GlobalMemory* global = nullptr;        // required
    int num_sms = 8;
    const InstrumentationPlan* plan = nullptr;  // optional
    const CostModel* cost = nullptr;            // required
    // Watchdog: aborts with TrapKind::kTimeout once thread_instructions
    // exceeds this bound.  0 disables the watchdog.
    std::uint64_t max_thread_instructions = 0;
  };

  // Runs the launch to completion (or trap).  Throws std::logic_error only on
  // host API misuse (null kernel/memory, oversized block).
  static LaunchStats Run(const Request& request);

  // Hard limits of the simulated machine.
  static constexpr std::uint32_t kMaxThreadsPerBlock = 1024;
  static constexpr std::uint32_t kMaxSharedBytes = 48 * 1024;
  static constexpr std::uint32_t kLocalBytesPerThread = 16 * 1024;
};

// True when the functional executor implements `op`'s semantics; executing an
// unimplemented opcode traps with TrapKind::kIllegalInstruction.
bool IsOpcodeImplemented(Opcode op);

}  // namespace nvbitfi::sim
