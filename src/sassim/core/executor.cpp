#include "sassim/core/executor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::sim {
namespace {

struct ThreadCtx {
  std::array<std::uint32_t, kNumGpr> gpr{};
  std::array<bool, kNumPred> pred{};
  std::uint32_t pc = 0;
  bool exited = false;
  bool at_barrier = false;
  Dim3 tid;
  std::unique_ptr<FlatMemory> local;  // lazily allocated on first LDL/STL
};

std::uint32_t ReadGprRaw(const ThreadCtx& t, int r) {
  return r == kRZ ? 0u : t.gpr[static_cast<std::size_t>(r)];
}

void WriteGprRaw(ThreadCtx& t, int r, std::uint32_t v) {
  if (r != kRZ) t.gpr[static_cast<std::size_t>(r)] = v;
}

std::uint64_t ReadPairRaw(const ThreadCtx& t, int r) {
  if (r == kRZ) return 0;
  const std::uint32_t lo = t.gpr[static_cast<std::size_t>(r)];
  const std::uint32_t hi = r + 1 < kRZ ? t.gpr[static_cast<std::size_t>(r) + 1] : 0u;
  return PackPair(lo, hi);
}

void WritePairRaw(ThreadCtx& t, int r, std::uint64_t v) {
  if (r == kRZ) return;
  t.gpr[static_cast<std::size_t>(r)] = PairLo(v);
  if (r + 1 < kRZ) t.gpr[static_cast<std::size_t>(r) + 1] = PairHi(v);
}

bool ReadPredRaw(const ThreadCtx& t, int p) {
  return p == kPT ? true : t.pred[static_cast<std::size_t>(p)];
}

void WritePredRaw(ThreadCtx& t, int p, bool v) {
  if (p != kPT) t.pred[static_cast<std::size_t>(p)] = v;
}

template <typename T>
bool EvalCmp(CmpOp op, T a, T b) {
  switch (op) {
    case CmpOp::kF: return false;
    case CmpOp::kLT: return a < b;
    case CmpOp::kEQ: return a == b;
    case CmpOp::kLE: return a <= b;
    case CmpOp::kGT: return a > b;
    case CmpOp::kNE: return a != b;
    case CmpOp::kGE: return a >= b;
    case CmpOp::kT: return true;
  }
  return false;
}

bool ApplyBool(BoolOp op, bool a, bool b) {
  switch (op) {
    case BoolOp::kAnd: return a && b;
    case BoolOp::kOr: return a || b;
    case BoolOp::kXor: return a != b;
  }
  return false;
}

bool IsWarpCollective(Opcode op) {
  return op == Opcode::kSHFL || op == Opcode::kVOTE;
}

enum class LaneOutcome : std::uint8_t { kNext, kBranch, kExit, kTrap };

class BlockRunner {
 public:
  BlockRunner(const Executor::Request& req, LaunchStats& stats, Dim3 ctaid, int sm_id)
      : req_(req),
        stats_(stats),
        body_(req.kernel->instructions),
        ctaid_(ctaid),
        sm_id_(sm_id),
        shared_(std::max<std::size_t>(req.kernel->shared_bytes, 1),
                Executor::kMaxSharedBytes),
        spilling_(req.plan != nullptr &&
                  req.cost->Spills(req.kernel->register_count, req.plan->extra_regs)) {
    const Dim3 b = req.launch.block;
    const std::uint32_t threads = static_cast<std::uint32_t>(b.Count());
    const std::uint32_t warps = (threads + kWarpSize - 1) / kWarpSize;
    warps_.resize(warps);
    for (std::uint32_t w = 0; w < warps; ++w) {
      const std::uint32_t lo = w * kWarpSize;
      const std::uint32_t hi = std::min(threads, lo + kWarpSize);
      warps_[w].resize(hi - lo);
      for (std::uint32_t i = lo; i < hi; ++i) {
        ThreadCtx& t = warps_[w][i - lo];
        t.tid.x = i % b.x;
        t.tid.y = (i / b.x) % b.y;
        t.tid.z = i / (b.x * b.y);
      }
    }
  }

  // Runs the block to completion; false if a trap aborted the launch.
  bool Run() {
    while (true) {
      bool issued = false;
      for (std::size_t w = 0; w < warps_.size(); ++w) {
        const int step = StepWarp(static_cast<int>(w));
        if (step < 0) return false;  // trapped
        issued = issued || step > 0;
        if (req_.max_thread_instructions != 0 &&
            stats_.thread_instructions > req_.max_thread_instructions) {
          return Trap(TrapKind::kTimeout,
                      Format("watchdog after %llu thread instructions",
                             static_cast<unsigned long long>(stats_.thread_instructions)));
        }
      }
      if (issued) continue;
      // No warp could issue: either everything exited, or live threads wait
      // at a barrier (all of them, by construction) — release and continue.
      bool any_barrier = false;
      for (auto& warp : warps_) {
        for (ThreadCtx& t : warp) any_barrier = any_barrier || (!t.exited && t.at_barrier);
      }
      if (!any_barrier) return true;
      for (auto& warp : warps_) {
        for (ThreadCtx& t : warp) t.at_barrier = false;
      }
    }
  }

 private:
  bool Trap(TrapKind kind, const std::string& detail) {
    stats_.trap = kind;
    stats_.trap_detail = Format("%s: kernel '%s' pc %u: %s", std::string(TrapKindName(kind)).c_str(),
                                req_.kernel->name.c_str(), trap_pc_, detail.c_str());
    return false;
  }

  // Returns 1 if the warp issued an instruction, 0 if it had no eligible
  // thread, -1 on trap.
  int StepWarp(int warp_index) {
    auto& warp = warps_[static_cast<std::size_t>(warp_index)];

    std::uint32_t min_pc = std::numeric_limits<std::uint32_t>::max();
    for (const ThreadCtx& t : warp) {
      if (!t.exited && !t.at_barrier) min_pc = std::min(min_pc, t.pc);
    }
    if (min_pc == std::numeric_limits<std::uint32_t>::max()) return 0;
    trap_pc_ = min_pc;
    if (min_pc >= body_.size()) {
      Trap(TrapKind::kIllegalInstruction, "PC ran past the end of the kernel");
      return -1;
    }

    cohort_.clear();
    for (std::size_t i = 0; i < warp.size(); ++i) {
      ThreadCtx& t = warp[i];
      if (!t.exited && !t.at_barrier && t.pc == min_pc) {
        cohort_.push_back(static_cast<int>(i));
      }
    }

    const Instruction& inst = body_[min_pc];
    ++stats_.warp_instructions;
    std::uint64_t cost = req_.cost->BaseCost(inst);
    if (spilling_) cost *= req_.cost->spill_multiplier;
    stats_.cycles += cost;

    // Guard evaluation snapshot (callbacks and semantics both use it).
    guard_.resize(warp.size());
    int active = 0;
    for (const int lane : cohort_) {
      const ThreadCtx& t = warp[static_cast<std::size_t>(lane)];
      const bool g = ReadPredRaw(t, inst.guard_pred) != inst.guard_negate;
      guard_[static_cast<std::size_t>(lane)] = g;
      if (g) ++active;
    }
    stats_.thread_instructions += static_cast<std::uint64_t>(active);

    const InstrumentationPlan::Site* site = nullptr;
    if (req_.plan != nullptr && req_.plan->HasSite(min_pc)) {
      site = &req_.plan->sites[min_pc];
    }
    if (site != nullptr) RunCallbacks(site->before, inst, min_pc, warp_index);

    if (IsWarpCollective(inst.opcode)) {
      ExecCollective(inst, warp, warp_index);
    } else {
      for (const int lane : cohort_) {
        ThreadCtx& t = warp[static_cast<std::size_t>(lane)];
        if (!guard_[static_cast<std::size_t>(lane)]) {
          ++t.pc;
          continue;
        }
        std::uint32_t branch_target = 0;
        const LaneOutcome outcome = ExecLane(inst, t, warp_index, lane, &branch_target);
        switch (outcome) {
          case LaneOutcome::kNext: ++t.pc; break;
          case LaneOutcome::kBranch: t.pc = branch_target; break;
          case LaneOutcome::kExit: t.exited = true; break;
          case LaneOutcome::kTrap: return -1;
        }
      }
    }

    if (site != nullptr) RunCallbacks(site->after, inst, min_pc, warp_index);
    return 1;
  }

  void RunCallbacks(const std::vector<InstrCallback>& callbacks, const Instruction& inst,
                    std::uint32_t index, int warp_index) {
    if (callbacks.empty()) return;
    auto& warp = warps_[static_cast<std::size_t>(warp_index)];
    for (const int lane : cohort_) {
      ThreadCtx& t = warp[static_cast<std::size_t>(lane)];
      LaneView view(t.gpr.data(), t.pred.data(), lane, warp_index, sm_id_, t.tid, ctaid_,
                    guard_[static_cast<std::size_t>(lane)]);
      InstrEvent event{inst, index, req_.launch, view};
      for (const InstrCallback& cb : callbacks) {
        cb(event);
        ++stats_.lane_events;
        if (spilling_) {
          // Spilled instrumentation state lives in per-thread local memory,
          // so the injected code serialises badly: charge every lane with the
          // spill penalty.
          stats_.cycles +=
              req_.plan->cost_per_lane_event * req_.cost->spill_callback_multiplier;
        } else if (req_.plan->serialized) {
          // Atomic-heavy tools (the profiler's counter updates) serialise
          // across the warp even without spills.
          stats_.cycles += req_.plan->cost_per_lane_event;
        }
      }
    }
    // Un-spilled, non-serialised instrumentation executes SIMT like any other
    // warp instruction: one issue per cohort per spliced call.
    if (!spilling_ && !req_.plan->serialized) {
      stats_.cycles +=
          req_.plan->cost_per_lane_event * static_cast<std::uint64_t>(callbacks.size());
    }
  }

  // ---- operand access -----------------------------------------------------

  bool ReadPredOperand(const ThreadCtx& t, const Operand& op) const {
    const bool v = ReadPredRaw(t, op.reg);
    return op.negate ? !v : v;
  }

  std::uint32_t ReadSrc32(const ThreadCtx& t, const Operand& op, bool fp) const {
    std::uint32_t v = 0;
    switch (op.kind) {
      case Operand::Kind::kGpr: v = ReadGprRaw(t, op.reg); break;
      case Operand::Kind::kImm:
      case Operand::Kind::kLabel: v = op.imm; break;
      case Operand::Kind::kConst: v = req_.bank0->Read32(op.const_offset); break;
      case Operand::Kind::kPred: return ReadPredOperand(t, op) ? 1u : 0u;
      case Operand::Kind::kMem:
      case Operand::Kind::kNone: v = 0; break;
    }
    if (op.absolute) v = fp ? (v & 0x7FFFFFFFu) : static_cast<std::uint32_t>(std::abs(static_cast<std::int32_t>(v)));
    if (op.invert) v = ~v;
    if (op.negate) {
      v = fp ? (v ^ 0x80000000u) : static_cast<std::uint32_t>(-static_cast<std::int32_t>(v));
    }
    return v;
  }

  std::uint64_t ReadSrc64(const ThreadCtx& t, const Operand& op, bool fp) const {
    std::uint64_t v = 0;
    switch (op.kind) {
      case Operand::Kind::kGpr: v = ReadPairRaw(t, op.reg); break;
      case Operand::Kind::kImm:
      case Operand::Kind::kLabel: v = op.imm; break;
      case Operand::Kind::kConst: v = req_.bank0->Read64(op.const_offset); break;
      default: v = 0; break;
    }
    if (op.absolute && fp) v &= ~(1ull << 63);
    if (op.invert) v = ~v;
    if (op.negate) v = fp ? (v ^ (1ull << 63)) : static_cast<std::uint64_t>(-static_cast<std::int64_t>(v));
    return v;
  }

  float ReadSrcF32(const ThreadCtx& t, const Operand& op) const {
    return BitsToFloat(ReadSrc32(t, op, /*fp=*/true));
  }
  double ReadSrcF64(const ThreadCtx& t, const Operand& op) const {
    return BitsToDouble(ReadSrc64(t, op, /*fp=*/true));
  }

  // ---- semantics ----------------------------------------------------------

  LaneOutcome LaneTrap(TrapKind kind, const Instruction& inst, const std::string& why) {
    Trap(kind, Format("%s (%s)", why.c_str(), std::string(OpcodeName(inst.opcode)).c_str()));
    return LaneOutcome::kTrap;
  }

  void DoSetp(ThreadCtx& t, const Instruction& inst, bool cmp, int pred_src_index) {
    bool combine = true;
    if (pred_src_index >= 0 && pred_src_index < inst.num_src &&
        inst.src[static_cast<std::size_t>(pred_src_index)].kind == Operand::Kind::kPred) {
      combine = ReadPredOperand(t, inst.src[static_cast<std::size_t>(pred_src_index)]);
    }
    WritePredRaw(t, inst.dest_pred, ApplyBool(inst.mods.bool_op, cmp, combine));
    WritePredRaw(t, inst.dest_pred2, ApplyBool(inst.mods.bool_op, !cmp, combine));
  }

  LaneOutcome ExecMemAccess(const Instruction& inst, ThreadCtx& t, bool is_load,
                            bool is_atomic) {
    const Operand& mem = inst.src[0];
    if (mem.kind != Operand::Kind::kMem) {
      return LaneTrap(TrapKind::kIllegalInstruction, inst, "memory operand expected");
    }
    const int bytes = MemWidthBytes(inst.mods.width);
    const Opcode op = inst.opcode;
    const bool shared_space = op == Opcode::kLDS || op == Opcode::kSTS || op == Opcode::kATOMS;
    const bool local_space = op == Opcode::kLDL || op == Opcode::kSTL;

    std::uint64_t addr = 0;
    if (shared_space || local_space) {
      addr = static_cast<std::uint64_t>(ReadGprRaw(t, mem.mem_base)) +
             static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.mem_offset));
    } else {
      addr = ReadPairRaw(t, mem.mem_base) +
             static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.mem_offset));
    }

    if (local_space && t.local == nullptr) {
      // Local memory lives in the global address space on real GPUs; give it
      // a generous mapped window so small offset corruptions stay silent.
      t.local = std::make_unique<FlatMemory>(Executor::kLocalBytesPerThread, 1u << 20);
    }

    auto read_one = [&](std::uint64_t a, int n) -> MemAccessResult {
      if (shared_space) return shared_.Read(a, n);
      if (local_space) return t.local->Read(a, n);
      return req_.global->Read(a, n);
    };
    auto write_one = [&](std::uint64_t a, std::uint64_t v, int n) -> TrapKind {
      if (shared_space) return shared_.Write(a, v, n);
      if (local_space) return t.local->Write(a, v, n);
      return req_.global->Write(a, v, n);
    };

    if (is_atomic) {
      const std::uint32_t operand = ReadSrc32(t, inst.src[1], /*fp=*/false);
      MemAccessResult r;
      if (inst.mods.atomic == AtomicOp::kCas) {
        // ATOM.CAS dst, [addr], compare, value
        const std::uint32_t compare = operand;
        const std::uint32_t value =
            inst.num_src > 2 ? ReadSrc32(t, inst.src[2], /*fp=*/false) : 0;
        r = read_one(addr, 4);
        if (r.ok() && static_cast<std::uint32_t>(r.value) == compare) {
          const TrapKind w = write_one(addr, value, 4);
          if (w != TrapKind::kNone) r.trap = w;
        }
      } else if (shared_space) {
        r = shared_.AtomicRmw(addr, operand, static_cast<int>(inst.mods.atomic), 4);
      } else {
        r = req_.global->AtomicRmw(addr, operand, static_cast<int>(inst.mods.atomic), 4);
      }
      if (!r.ok()) return LaneTrap(r.trap, inst, Format("address 0x%llx", static_cast<unsigned long long>(addr)));
      if (op != Opcode::kRED) WriteGprRaw(t, inst.dest_gpr, static_cast<std::uint32_t>(r.value));
      return LaneOutcome::kNext;
    }

    if (is_load) {
      if (bytes == 16) {
        if ((addr & 0xF) != 0) {
          return LaneTrap(TrapKind::kMisalignedAddress, inst,
                          Format("address 0x%llx", static_cast<unsigned long long>(addr)));
        }
        for (int half = 0; half < 2; ++half) {
          const MemAccessResult r = read_one(addr + 8 * static_cast<std::uint64_t>(half), 8);
          if (!r.ok()) {
            return LaneTrap(r.trap, inst,
                            Format("address 0x%llx", static_cast<unsigned long long>(addr)));
          }
          WritePairRaw(t, inst.dest_gpr + 2 * half, r.value);
        }
        return LaneOutcome::kNext;
      }
      const MemAccessResult r = read_one(addr, bytes);
      if (!r.ok()) {
        return LaneTrap(r.trap, inst,
                        Format("address 0x%llx", static_cast<unsigned long long>(addr)));
      }
      if (bytes == 8) {
        WritePairRaw(t, inst.dest_gpr, r.value);
      } else {
        std::uint32_t v = static_cast<std::uint32_t>(r.value);
        if (inst.mods.sign_extend) {
          v = static_cast<std::uint32_t>(SignExtend32(v, bytes * 8));
        }
        WriteGprRaw(t, inst.dest_gpr, v);
      }
      return LaneOutcome::kNext;
    }

    // Store: value operand is src[1].
    const int value_reg = inst.src[1].kind == Operand::Kind::kGpr ? inst.src[1].reg : kRZ;
    if (bytes == 16) {
      if ((addr & 0xF) != 0) {
        return LaneTrap(TrapKind::kMisalignedAddress, inst,
                        Format("address 0x%llx", static_cast<unsigned long long>(addr)));
      }
      for (int half = 0; half < 2; ++half) {
        const std::uint64_t v = ReadPairRaw(t, value_reg + 2 * half);
        const TrapKind w = write_one(addr + 8 * static_cast<std::uint64_t>(half), v, 8);
        if (w != TrapKind::kNone) {
          return LaneTrap(w, inst, Format("address 0x%llx", static_cast<unsigned long long>(addr)));
        }
      }
      return LaneOutcome::kNext;
    }
    std::uint64_t value = 0;
    if (bytes == 8) {
      value = ReadPairRaw(t, value_reg);
    } else {
      value = ReadSrc32(t, inst.src[1], /*fp=*/false) &
              (bytes >= 4 ? 0xFFFFFFFFull : (1ull << (8 * bytes)) - 1);
    }
    const TrapKind w = write_one(addr, value, bytes);
    if (w != TrapKind::kNone) {
      return LaneTrap(w, inst, Format("address 0x%llx", static_cast<unsigned long long>(addr)));
    }
    return LaneOutcome::kNext;
  }

  LaneOutcome ExecLane(const Instruction& inst, ThreadCtx& t, int warp_index, int lane,
                       std::uint32_t* branch_target) {
    const Modifiers& m = inst.mods;
    switch (inst.opcode) {
      // ---- FP32 ----
      case Opcode::kFADD:
      case Opcode::kFADD32I:
        WriteGprRaw(t, inst.dest_gpr,
                    FloatToBits(ReadSrcF32(t, inst.src[0]) + ReadSrcF32(t, inst.src[1])));
        return LaneOutcome::kNext;
      case Opcode::kFMUL:
      case Opcode::kFMUL32I:
        WriteGprRaw(t, inst.dest_gpr,
                    FloatToBits(ReadSrcF32(t, inst.src[0]) * ReadSrcF32(t, inst.src[1])));
        return LaneOutcome::kNext;
      case Opcode::kFFMA:
      case Opcode::kFFMA32I:
        WriteGprRaw(t, inst.dest_gpr,
                    FloatToBits(std::fma(ReadSrcF32(t, inst.src[0]), ReadSrcF32(t, inst.src[1]),
                                         ReadSrcF32(t, inst.src[2]))));
        return LaneOutcome::kNext;
      case Opcode::kFMNMX: {
        const float a = ReadSrcF32(t, inst.src[0]);
        const float b = ReadSrcF32(t, inst.src[1]);
        const bool take_min =
            inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        WriteGprRaw(t, inst.dest_gpr,
                    FloatToBits(take_min ? std::fmin(a, b) : std::fmax(a, b)));
        return LaneOutcome::kNext;
      }
      case Opcode::kFSEL: {
        const bool take_a = inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        WriteGprRaw(t, inst.dest_gpr,
                    take_a ? ReadSrc32(t, inst.src[0], true) : ReadSrc32(t, inst.src[1], true));
        return LaneOutcome::kNext;
      }
      case Opcode::kFSET: {
        const bool cmp = EvalCmp(m.cmp, ReadSrcF32(t, inst.src[0]), ReadSrcF32(t, inst.src[1]));
        const bool combine = inst.num_src > 2 && inst.src[2].kind == Operand::Kind::kPred
                                 ? ReadPredOperand(t, inst.src[2])
                                 : true;
        WriteGprRaw(t, inst.dest_gpr, ApplyBool(m.bool_op, cmp, combine) ? 0xFFFFFFFFu : 0u);
        return LaneOutcome::kNext;
      }
      case Opcode::kFSETP:
        DoSetp(t, inst, EvalCmp(m.cmp, ReadSrcF32(t, inst.src[0]), ReadSrcF32(t, inst.src[1])), 2);
        return LaneOutcome::kNext;
      case Opcode::kMUFU: {
        const float a = ReadSrcF32(t, inst.src[0]);
        float r = 0.0f;
        switch (m.mufu) {
          case MufuFunc::kRcp: r = 1.0f / a; break;
          case MufuFunc::kRsq: r = 1.0f / std::sqrt(a); break;
          case MufuFunc::kSqrt: r = std::sqrt(a); break;
          case MufuFunc::kLg2: r = std::log2(a); break;
          case MufuFunc::kEx2: r = std::exp2(a); break;
          case MufuFunc::kSin: r = std::sin(a); break;
          case MufuFunc::kCos: r = std::cos(a); break;
        }
        WriteGprRaw(t, inst.dest_gpr, FloatToBits(r));
        return LaneOutcome::kNext;
      }

      // ---- packed FP16 ----
      case Opcode::kHADD2:
      case Opcode::kHMUL2:
      case Opcode::kHADD2_32I:
      case Opcode::kHMUL2_32I: {
        const bool is_add = inst.opcode == Opcode::kHADD2 ||
                            inst.opcode == Opcode::kHADD2_32I;
        const std::uint32_t a = ReadSrc32(t, inst.src[0], true);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], true);
        auto one = [&](std::uint16_t x, std::uint16_t y) {
          const float fx = HalfBitsToFloat(x);
          const float fy = HalfBitsToFloat(y);
          return FloatToHalfBits(is_add ? fx + fy : fx * fy);
        };
        WriteGprRaw(t, inst.dest_gpr,
                    PackHalves(one(HalfLo(a), HalfLo(b)), one(HalfHi(a), HalfHi(b))));
        return LaneOutcome::kNext;
      }
      case Opcode::kHFMA2:
      case Opcode::kHFMA2_32I: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], true);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], true);
        const std::uint32_t c =
            inst.num_src > 2 ? ReadSrc32(t, inst.src[2], true) : 0;
        auto one = [](std::uint16_t x, std::uint16_t y, std::uint16_t z) {
          return FloatToHalfBits(std::fma(HalfBitsToFloat(x), HalfBitsToFloat(y),
                                          HalfBitsToFloat(z)));
        };
        WriteGprRaw(t, inst.dest_gpr,
                    PackHalves(one(HalfLo(a), HalfLo(b), HalfLo(c)),
                               one(HalfHi(a), HalfHi(b), HalfHi(c))));
        return LaneOutcome::kNext;
      }
      case Opcode::kHMNMX2: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], true);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], true);
        const bool take_min = inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        auto one = [take_min](std::uint16_t x, std::uint16_t y) {
          const float fx = HalfBitsToFloat(x);
          const float fy = HalfBitsToFloat(y);
          return FloatToHalfBits(take_min ? std::fmin(fx, fy) : std::fmax(fx, fy));
        };
        WriteGprRaw(t, inst.dest_gpr,
                    PackHalves(one(HalfLo(a), HalfLo(b)), one(HalfHi(a), HalfHi(b))));
        return LaneOutcome::kNext;
      }

      // ---- FP64 (register pairs) ----
      case Opcode::kDADD:
        WritePairRaw(t, inst.dest_gpr,
                     DoubleToBits(ReadSrcF64(t, inst.src[0]) + ReadSrcF64(t, inst.src[1])));
        return LaneOutcome::kNext;
      case Opcode::kDMUL:
        WritePairRaw(t, inst.dest_gpr,
                     DoubleToBits(ReadSrcF64(t, inst.src[0]) * ReadSrcF64(t, inst.src[1])));
        return LaneOutcome::kNext;
      case Opcode::kDFMA:
        WritePairRaw(t, inst.dest_gpr,
                     DoubleToBits(std::fma(ReadSrcF64(t, inst.src[0]),
                                           ReadSrcF64(t, inst.src[1]),
                                           ReadSrcF64(t, inst.src[2]))));
        return LaneOutcome::kNext;
      case Opcode::kDSETP:
        DoSetp(t, inst, EvalCmp(m.cmp, ReadSrcF64(t, inst.src[0]), ReadSrcF64(t, inst.src[1])), 2);
        return LaneOutcome::kNext;

      // ---- integer ----
      case Opcode::kIADD3:
      case Opcode::kIADD32I: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        const std::uint32_t c = inst.num_src > 2 ? ReadSrc32(t, inst.src[2], false) : 0;
        WriteGprRaw(t, inst.dest_gpr, a + b + c);
        return LaneOutcome::kNext;
      }
      case Opcode::kIMAD: {
        if (m.wide_dst) {
          // IMAD.WIDE Rd(pair), Ra, Sb, Rc(pair): 32x32 -> 64 MAC, the
          // canonical SASS address computation.
          const std::int64_t a = m.src_signed
                                     ? static_cast<std::int64_t>(static_cast<std::int32_t>(
                                           ReadSrc32(t, inst.src[0], false)))
                                     : static_cast<std::int64_t>(ReadSrc32(t, inst.src[0], false));
          const std::int64_t b = m.src_signed
                                     ? static_cast<std::int64_t>(static_cast<std::int32_t>(
                                           ReadSrc32(t, inst.src[1], false)))
                                     : static_cast<std::int64_t>(ReadSrc32(t, inst.src[1], false));
          const std::uint64_t c = inst.num_src > 2 ? ReadSrc64(t, inst.src[2], false) : 0;
          WritePairRaw(t, inst.dest_gpr,
                       static_cast<std::uint64_t>(a * b) + c);
          return LaneOutcome::kNext;
        }
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        const std::uint32_t c = inst.num_src > 2 ? ReadSrc32(t, inst.src[2], false) : 0;
        WriteGprRaw(t, inst.dest_gpr, a * b + c);
        return LaneOutcome::kNext;
      }
      case Opcode::kIMNMX: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        const bool take_min = inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        std::uint32_t r;
        if (m.src_signed) {
          const auto sa = static_cast<std::int32_t>(a);
          const auto sb = static_cast<std::int32_t>(b);
          r = static_cast<std::uint32_t>(take_min ? std::min(sa, sb) : std::max(sa, sb));
        } else {
          r = take_min ? std::min(a, b) : std::max(a, b);
        }
        WriteGprRaw(t, inst.dest_gpr, r);
        return LaneOutcome::kNext;
      }
      case Opcode::kIABS: {
        const auto a = static_cast<std::int32_t>(ReadSrc32(t, inst.src[0], false));
        WriteGprRaw(t, inst.dest_gpr, static_cast<std::uint32_t>(a < 0 ? -a : a));
        return LaneOutcome::kNext;
      }
      case Opcode::kISETP: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        const bool cmp = m.src_signed
                             ? EvalCmp(m.cmp, static_cast<std::int32_t>(a),
                                       static_cast<std::int32_t>(b))
                             : EvalCmp(m.cmp, a, b);
        DoSetp(t, inst, cmp, 2);
        return LaneOutcome::kNext;
      }
      case Opcode::kLEA:
      case Opcode::kISCADD: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        const std::uint32_t shift =
            inst.num_src > 2 ? (ReadSrc32(t, inst.src[2], false) & 31u) : 0u;
        WriteGprRaw(t, inst.dest_gpr, (a << shift) + b);
        return LaneOutcome::kNext;
      }
      case Opcode::kLOP3: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        const std::uint32_t c = ReadSrc32(t, inst.src[2], false);
        const std::uint8_t lut =
            inst.num_src > 3 ? static_cast<std::uint8_t>(ReadSrc32(t, inst.src[3], false)) : m.lut;
        WriteGprRaw(t, inst.dest_gpr, Lop3(a, b, c, lut));
        return LaneOutcome::kNext;
      }
      case Opcode::kLOP:
      case Opcode::kLOP32I: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t b = ReadSrc32(t, inst.src[1], false);
        std::uint32_t r = 0;
        switch (m.bool_op) {
          case BoolOp::kAnd: r = a & b; break;
          case BoolOp::kOr: r = a | b; break;
          case BoolOp::kXor: r = a ^ b; break;
        }
        WriteGprRaw(t, inst.dest_gpr, r);
        return LaneOutcome::kNext;
      }
      case Opcode::kSHL:
        WriteGprRaw(t, inst.dest_gpr, ReadSrc32(t, inst.src[0], false)
                                          << (ReadSrc32(t, inst.src[1], false) & 31u));
        return LaneOutcome::kNext;
      case Opcode::kSHR: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t s = ReadSrc32(t, inst.src[1], false) & 31u;
        WriteGprRaw(t, inst.dest_gpr,
                    m.src_signed
                        ? static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> s)
                        : a >> s);
        return LaneOutcome::kNext;
      }
      case Opcode::kSHF: {
        const std::uint32_t lo = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t amount = ReadSrc32(t, inst.src[1], false);
        const std::uint32_t hi = inst.num_src > 2 ? ReadSrc32(t, inst.src[2], false) : 0;
        WriteGprRaw(t, inst.dest_gpr, m.shift_dir == ShiftDir::kRight
                                          ? FunnelShiftRight(lo, hi, amount)
                                          : FunnelShiftLeft(lo, hi, amount));
        return LaneOutcome::kNext;
      }
      case Opcode::kPOPC:
        WriteGprRaw(t, inst.dest_gpr,
                    static_cast<std::uint32_t>(PopCount32(ReadSrc32(t, inst.src[0], false))));
        return LaneOutcome::kNext;
      case Opcode::kFLO:
        WriteGprRaw(t, inst.dest_gpr,
                    static_cast<std::uint32_t>(FindLeadingOne32(ReadSrc32(t, inst.src[0], false))));
        return LaneOutcome::kNext;
      case Opcode::kBREV:
        WriteGprRaw(t, inst.dest_gpr, ReverseBits32(ReadSrc32(t, inst.src[0], false)));
        return LaneOutcome::kNext;
      case Opcode::kBMSK: {
        const std::uint32_t base = ReadSrc32(t, inst.src[0], false) & 31u;
        const std::uint32_t count = ReadSrc32(t, inst.src[1], false) & 63u;
        const std::uint32_t mask =
            count >= 32 ? 0xFFFFFFFFu : ((1u << count) - 1u);
        WriteGprRaw(t, inst.dest_gpr, mask << base);
        return LaneOutcome::kNext;
      }
      case Opcode::kSGXT: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t width = ReadSrc32(t, inst.src[1], false) & 31u;
        WriteGprRaw(t, inst.dest_gpr,
                    width == 0 ? 0u
                               : static_cast<std::uint32_t>(
                                     SignExtend32(a, static_cast<int>(width))));
        return LaneOutcome::kNext;
      }
      case Opcode::kVABSDIFF: {
        const auto a = static_cast<std::int64_t>(
            static_cast<std::int32_t>(ReadSrc32(t, inst.src[0], false)));
        const auto b = static_cast<std::int64_t>(
            static_cast<std::int32_t>(ReadSrc32(t, inst.src[1], false)));
        WriteGprRaw(t, inst.dest_gpr, static_cast<std::uint32_t>(std::llabs(a - b)));
        return LaneOutcome::kNext;
      }

      // ---- conversion ----
      case Opcode::kF2I: {
        double a = m.wide_src ? ReadSrcF64(t, inst.src[0])
                              : static_cast<double>(ReadSrcF32(t, inst.src[0]));
        std::int64_t r;
        if (std::isnan(a)) {
          r = 0;
        } else {
          a = std::trunc(a);
          constexpr double kMin = -2147483648.0, kMax = 2147483647.0;
          r = static_cast<std::int64_t>(std::clamp(a, kMin, kMax));
        }
        WriteGprRaw(t, inst.dest_gpr, static_cast<std::uint32_t>(static_cast<std::int32_t>(r)));
        return LaneOutcome::kNext;
      }
      case Opcode::kI2F: {
        const std::uint32_t raw = ReadSrc32(t, inst.src[0], false);
        const double v = m.src_signed
                             ? static_cast<double>(static_cast<std::int32_t>(raw))
                             : static_cast<double>(raw);
        if (m.wide_dst) {
          WritePairRaw(t, inst.dest_gpr, DoubleToBits(v));
        } else {
          WriteGprRaw(t, inst.dest_gpr, FloatToBits(static_cast<float>(v)));
        }
        return LaneOutcome::kNext;
      }
      case Opcode::kF2F: {
        if (m.wide_src && !m.wide_dst) {
          WriteGprRaw(t, inst.dest_gpr,
                      FloatToBits(static_cast<float>(ReadSrcF64(t, inst.src[0]))));
        } else if (!m.wide_src && m.wide_dst) {
          WritePairRaw(t, inst.dest_gpr,
                       DoubleToBits(static_cast<double>(ReadSrcF32(t, inst.src[0]))));
        } else if (m.wide_src && m.wide_dst) {
          WritePairRaw(t, inst.dest_gpr, DoubleToBits(ReadSrcF64(t, inst.src[0])));
        } else {
          WriteGprRaw(t, inst.dest_gpr, FloatToBits(ReadSrcF32(t, inst.src[0])));
        }
        return LaneOutcome::kNext;
      }
      case Opcode::kFRND:
        WriteGprRaw(t, inst.dest_gpr,
                    FloatToBits(std::nearbyint(ReadSrcF32(t, inst.src[0]))));
        return LaneOutcome::kNext;
      case Opcode::kI2I:
        WriteGprRaw(t, inst.dest_gpr, ReadSrc32(t, inst.src[0], false));
        return LaneOutcome::kNext;

      // ---- movement ----
      case Opcode::kMOV:
      case Opcode::kMOV32I:
        WriteGprRaw(t, inst.dest_gpr, ReadSrc32(t, inst.src[0], false));
        return LaneOutcome::kNext;
      case Opcode::kPRMT: {
        const std::uint32_t a = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t sel = ReadSrc32(t, inst.src[1], false);
        const std::uint32_t b = inst.num_src > 2 ? ReadSrc32(t, inst.src[2], false) : 0;
        WriteGprRaw(t, inst.dest_gpr, Prmt(a, b, sel));
        return LaneOutcome::kNext;
      }
      case Opcode::kSEL: {
        const bool take_a = inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        WriteGprRaw(t, inst.dest_gpr, take_a ? ReadSrc32(t, inst.src[0], false)
                                             : ReadSrc32(t, inst.src[1], false));
        return LaneOutcome::kNext;
      }

      // ---- predicate manipulation ----
      case Opcode::kPSETP: {
        const bool a = inst.num_src > 0 ? ReadPredOperand(t, inst.src[0]) : true;
        const bool b = inst.num_src > 1 ? ReadPredOperand(t, inst.src[1]) : true;
        const bool c = inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        const bool r = ApplyBool(m.bool_op, a, b) && c;
        WritePredRaw(t, inst.dest_pred, r);
        WritePredRaw(t, inst.dest_pred2, !r && c);
        return LaneOutcome::kNext;
      }
      case Opcode::kPLOP3: {
        const bool a = inst.num_src > 0 ? ReadPredOperand(t, inst.src[0]) : true;
        const bool b = inst.num_src > 1 ? ReadPredOperand(t, inst.src[1]) : true;
        const bool c = inst.num_src > 2 ? ReadPredOperand(t, inst.src[2]) : true;
        const std::uint8_t lut =
            inst.num_src > 3 ? static_cast<std::uint8_t>(ReadSrc32(t, inst.src[3], false)) : m.lut;
        const int index = (a ? 4 : 0) | (b ? 2 : 0) | (c ? 1 : 0);
        const bool r = (lut >> index & 1) != 0;
        WritePredRaw(t, inst.dest_pred, r);
        WritePredRaw(t, inst.dest_pred2, !r);
        return LaneOutcome::kNext;
      }
      case Opcode::kP2R: {
        const std::uint32_t mask =
            inst.num_src > 0 ? ReadSrc32(t, inst.src[0], false) : 0xFFFFFFFFu;
        std::uint32_t bits = 0;
        for (int p = 0; p < kPT; ++p) {
          if (ReadPredRaw(t, p)) bits |= 1u << p;
        }
        WriteGprRaw(t, inst.dest_gpr, bits & mask);
        return LaneOutcome::kNext;
      }
      case Opcode::kR2P: {
        const std::uint32_t value = ReadSrc32(t, inst.src[0], false);
        const std::uint32_t mask =
            inst.num_src > 1 ? ReadSrc32(t, inst.src[1], false) : 0xFFFFFFFFu;
        for (int p = 0; p < kPT; ++p) {
          if (mask >> p & 1) WritePredRaw(t, p, (value >> p & 1) != 0);
        }
        return LaneOutcome::kNext;
      }

      // ---- memory ----
      case Opcode::kLD:
      case Opcode::kLDG:
      case Opcode::kLDS:
      case Opcode::kLDL:
        return ExecMemAccess(inst, t, /*is_load=*/true, /*is_atomic=*/false);
      case Opcode::kLDC: {
        const Operand& src = inst.src[0];
        if (src.kind != Operand::Kind::kConst) {
          return LaneTrap(TrapKind::kIllegalInstruction, inst, "LDC needs a constant operand");
        }
        if (m.width == MemWidth::k64) {
          WritePairRaw(t, inst.dest_gpr, req_.bank0->Read64(src.const_offset));
        } else {
          WriteGprRaw(t, inst.dest_gpr, req_.bank0->Read32(src.const_offset));
        }
        return LaneOutcome::kNext;
      }
      case Opcode::kST:
      case Opcode::kSTG:
      case Opcode::kSTS:
      case Opcode::kSTL:
        return ExecMemAccess(inst, t, /*is_load=*/false, /*is_atomic=*/false);
      case Opcode::kATOM:
      case Opcode::kATOMG:
      case Opcode::kATOMS:
      case Opcode::kRED:
        return ExecMemAccess(inst, t, /*is_load=*/false, /*is_atomic=*/true);

      // ---- control ----
      case Opcode::kBRA:
      case Opcode::kJMP: {
        const std::uint32_t target = inst.src[0].imm;
        if (target > body_.size()) {
          return LaneTrap(TrapKind::kIllegalInstruction, inst, "branch target out of range");
        }
        *branch_target = target;
        return LaneOutcome::kBranch;
      }
      case Opcode::kEXIT:
      case Opcode::kKILL:
        return LaneOutcome::kExit;
      case Opcode::kWARPSYNC:
      case Opcode::kYIELD:
      case Opcode::kNANOSLEEP:
      case Opcode::kMEMBAR:
      case Opcode::kERRBAR:
      case Opcode::kDEPBAR:
      case Opcode::kCCTL:
      case Opcode::kCCTLL:
      case Opcode::kNOP:
      case Opcode::kPMTRIG:
        return LaneOutcome::kNext;

      // ---- misc ----
      case Opcode::kBAR:
        t.at_barrier = true;
        return LaneOutcome::kNext;
      case Opcode::kS2R: {
        std::uint32_t v = 0;
        switch (m.sreg) {
          case SpecialReg::kTidX: v = t.tid.x; break;
          case SpecialReg::kTidY: v = t.tid.y; break;
          case SpecialReg::kTidZ: v = t.tid.z; break;
          case SpecialReg::kCtaIdX: v = ctaid_.x; break;
          case SpecialReg::kCtaIdY: v = ctaid_.y; break;
          case SpecialReg::kCtaIdZ: v = ctaid_.z; break;
          case SpecialReg::kLaneId: v = static_cast<std::uint32_t>(lane); break;
          case SpecialReg::kWarpId: v = static_cast<std::uint32_t>(warp_index); break;
          case SpecialReg::kSmId: v = static_cast<std::uint32_t>(sm_id_); break;
          case SpecialReg::kClockLo: v = static_cast<std::uint32_t>(stats_.cycles); break;
          case SpecialReg::kCount: break;
        }
        WriteGprRaw(t, inst.dest_gpr, v);
        return LaneOutcome::kNext;
      }
      case Opcode::kCS2R:
        WritePairRaw(t, inst.dest_gpr, stats_.cycles);
        return LaneOutcome::kNext;

      default:
        return LaneTrap(TrapKind::kIllegalInstruction, inst,
                        "opcode not implemented by the functional executor");
    }
  }

  void ExecCollective(const Instruction& inst, std::vector<ThreadCtx>& warp,
                      int /*warp_index*/) {
    // Gather phase over guard-true cohort lanes, then scatter results.
    if (inst.opcode == Opcode::kVOTE) {
      std::uint32_t ballot = 0;
      std::uint32_t active = 0;
      for (const int lane : cohort_) {
        if (!guard_[static_cast<std::size_t>(lane)]) continue;
        active |= 1u << lane;
        const ThreadCtx& t = warp[static_cast<std::size_t>(lane)];
        const bool p = inst.num_src > 0 ? ReadPredOperand(t, inst.src[0]) : true;
        if (p) ballot |= 1u << lane;
      }
      const bool all = ballot == active && active != 0;
      const bool any = ballot != 0;
      for (const int lane : cohort_) {
        if (!guard_[static_cast<std::size_t>(lane)]) {
          ++warp[static_cast<std::size_t>(lane)].pc;
          continue;
        }
        ThreadCtx& t = warp[static_cast<std::size_t>(lane)];
        WriteGprRaw(t, inst.dest_gpr, ballot);
        switch (inst.mods.vote) {
          case VoteMode::kAll: WritePredRaw(t, inst.dest_pred, all); break;
          case VoteMode::kAny: WritePredRaw(t, inst.dest_pred, any); break;
          case VoteMode::kBallot: WritePredRaw(t, inst.dest_pred, any); break;
        }
        ++t.pc;
      }
      return;
    }

    // SHFL: exchange src[0] values across the warp.
    std::array<std::uint32_t, kWarpSize> values{};
    std::array<bool, kWarpSize> valid{};
    for (const int lane : cohort_) {
      if (!guard_[static_cast<std::size_t>(lane)]) continue;
      values[static_cast<std::size_t>(lane)] =
          ReadSrc32(warp[static_cast<std::size_t>(lane)], inst.src[0], false);
      valid[static_cast<std::size_t>(lane)] = true;
    }
    for (const int lane : cohort_) {
      ThreadCtx& t = warp[static_cast<std::size_t>(lane)];
      if (!guard_[static_cast<std::size_t>(lane)]) {
        ++t.pc;
        continue;
      }
      const std::uint32_t b = inst.num_src > 1 ? ReadSrc32(t, inst.src[1], false) : 0;
      int src_lane = lane;
      switch (inst.mods.shfl) {
        case ShflMode::kIdx: src_lane = static_cast<int>(b & 31u); break;
        case ShflMode::kUp: src_lane = lane - static_cast<int>(b); break;
        case ShflMode::kDown: src_lane = lane + static_cast<int>(b); break;
        case ShflMode::kBfly: src_lane = lane ^ static_cast<int>(b & 31u); break;
      }
      std::uint32_t result = values[static_cast<std::size_t>(lane)];
      if (src_lane >= 0 && src_lane < kWarpSize && valid[static_cast<std::size_t>(src_lane)]) {
        result = values[static_cast<std::size_t>(src_lane)];
      }
      WriteGprRaw(t, inst.dest_gpr, result);
      ++t.pc;
    }
  }

  const Executor::Request& req_;
  LaunchStats& stats_;
  const std::vector<Instruction>& body_;
  Dim3 ctaid_;
  int sm_id_;
  FlatMemory shared_;
  bool spilling_;
  std::vector<std::vector<ThreadCtx>> warps_;
  std::vector<int> cohort_;
  std::vector<bool> guard_;
  std::uint32_t trap_pc_ = 0;
};

}  // namespace

LaunchStats Executor::Run(const Request& request) {
  NVBITFI_CHECK_MSG(request.kernel != nullptr, "launch without a kernel");
  NVBITFI_CHECK_MSG(request.bank0 != nullptr && request.global != nullptr &&
                        request.cost != nullptr,
                    "launch without device state");
  NVBITFI_CHECK_MSG(request.launch.block.Count() > 0 &&
                        request.launch.block.Count() <= kMaxThreadsPerBlock,
                    "block size out of range: " << request.launch.block.Count());
  NVBITFI_CHECK_MSG(request.launch.grid.Count() > 0, "empty grid");
  NVBITFI_CHECK_MSG(request.kernel->shared_bytes <= kMaxSharedBytes,
                    "shared memory request too large");
  NVBITFI_CHECK_MSG(request.num_sms > 0, "device needs at least one SM");
  NVBITFI_CHECK_MSG(request.plan == nullptr ||
                        request.plan->sites.size() == request.kernel->instructions.size(),
                    "instrumentation plan does not match kernel body");

  LaunchStats stats;
  stats.cycles += request.cost->launch_base_cycles;

  const Dim3 grid = request.launch.grid;
  std::uint64_t block_linear = 0;
  for (std::uint32_t bz = 0; bz < grid.z; ++bz) {
    for (std::uint32_t by = 0; by < grid.y; ++by) {
      for (std::uint32_t bx = 0; bx < grid.x; ++bx, ++block_linear) {
        const int sm_id = static_cast<int>(block_linear % static_cast<std::uint64_t>(request.num_sms));
        BlockRunner runner(request, stats, Dim3{bx, by, bz}, sm_id);
        if (!runner.Run()) return stats;  // trap recorded in stats
      }
    }
  }
  return stats;
}

bool IsOpcodeImplemented(Opcode op) {
  switch (op) {
    case Opcode::kFADD: case Opcode::kFADD32I: case Opcode::kFMUL: case Opcode::kFMUL32I:
    case Opcode::kFFMA: case Opcode::kFFMA32I: case Opcode::kFMNMX: case Opcode::kFSEL:
    case Opcode::kFSET: case Opcode::kFSETP: case Opcode::kMUFU:
    case Opcode::kHADD2: case Opcode::kHADD2_32I: case Opcode::kHMUL2:
    case Opcode::kHMUL2_32I: case Opcode::kHFMA2: case Opcode::kHFMA2_32I:
    case Opcode::kHMNMX2:
    case Opcode::kDADD: case Opcode::kDMUL: case Opcode::kDFMA: case Opcode::kDSETP:
    case Opcode::kIADD3: case Opcode::kIADD32I: case Opcode::kIMAD: case Opcode::kIMNMX:
    case Opcode::kIABS: case Opcode::kISETP: case Opcode::kLEA: case Opcode::kISCADD:
    case Opcode::kLOP: case Opcode::kLOP3: case Opcode::kLOP32I: case Opcode::kSHL:
    case Opcode::kSHR: case Opcode::kSHF: case Opcode::kPOPC: case Opcode::kFLO:
    case Opcode::kBREV: case Opcode::kBMSK: case Opcode::kSGXT: case Opcode::kVABSDIFF:
    case Opcode::kF2I: case Opcode::kI2F: case Opcode::kF2F: case Opcode::kFRND:
    case Opcode::kI2I:
    case Opcode::kMOV: case Opcode::kMOV32I: case Opcode::kPRMT: case Opcode::kSEL:
    case Opcode::kSHFL:
    case Opcode::kPSETP: case Opcode::kPLOP3: case Opcode::kP2R: case Opcode::kR2P:
    case Opcode::kLD: case Opcode::kLDG: case Opcode::kLDS: case Opcode::kLDL:
    case Opcode::kLDC: case Opcode::kST: case Opcode::kSTG: case Opcode::kSTS:
    case Opcode::kSTL: case Opcode::kATOM: case Opcode::kATOMG: case Opcode::kATOMS:
    case Opcode::kRED:
    case Opcode::kBRA: case Opcode::kJMP: case Opcode::kEXIT: case Opcode::kKILL:
    case Opcode::kWARPSYNC: case Opcode::kYIELD: case Opcode::kNANOSLEEP:
    case Opcode::kMEMBAR: case Opcode::kERRBAR: case Opcode::kDEPBAR:
    case Opcode::kCCTL: case Opcode::kCCTLL: case Opcode::kNOP: case Opcode::kPMTRIG:
    case Opcode::kBAR: case Opcode::kS2R: case Opcode::kCS2R: case Opcode::kVOTE:
      return true;
    default:
      return false;
  }
}

}  // namespace nvbitfi::sim
