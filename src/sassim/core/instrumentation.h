// Instrumentation hook interface between the executor and the NVBit layer.
//
// An InstrumentationPlan is the executor-facing form of an instrumented
// kernel: per-static-instruction callback lists plus the cost parameters the
// cycle model charges for running the injected code (the analogue of the
// extra SASS that NVBit splices into the instrumented kernel).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sassim/core/types.h"
#include "sassim/isa/instruction.h"

namespace nvbitfi::sim {

// Mutable view of one thread's architectural state, handed to callbacks.
// Register writes through this view are exactly how fault injectors corrupt
// state.
class LaneView {
 public:
  LaneView(std::uint32_t* gpr, bool* pred, int lane_id, int warp_id, int sm_id,
           Dim3 tid, Dim3 ctaid, bool guard_true)
      : gpr_(gpr), pred_(pred), lane_id_(lane_id), warp_id_(warp_id), sm_id_(sm_id),
        tid_(tid), ctaid_(ctaid), guard_true_(guard_true) {}

  std::uint32_t ReadGpr(int r) const { return r == kRZ ? 0u : gpr_[r]; }
  void WriteGpr(int r, std::uint32_t v) {
    if (r != kRZ) gpr_[r] = v;
  }
  bool ReadPred(int p) const { return p == kPT ? true : pred_[p]; }
  void WritePred(int p, bool v) {
    if (p != kPT) pred_[p] = v;
  }

  int lane_id() const { return lane_id_; }
  int warp_id() const { return warp_id_; }
  int sm_id() const { return sm_id_; }
  Dim3 tid() const { return tid_; }
  Dim3 ctaid() const { return ctaid_; }

  // False when the instruction's guard predicate suppressed execution for
  // this thread.  Profilers skip such events (the paper: "instructions that
  // are not executed based on a predicate register are not included").
  bool guard_true() const { return guard_true_; }
  // NVBit-style name for the same flag: the lane receives the event but the
  // instruction did not architecturally execute for it.
  bool active() const { return guard_true_; }

 private:
  std::uint32_t* gpr_;
  bool* pred_;
  int lane_id_;
  int warp_id_;
  int sm_id_;
  Dim3 tid_;
  Dim3 ctaid_;
  bool guard_true_;
};

struct InstrEvent {
  const Instruction& instr;
  std::uint32_t static_index;  // index within the kernel body
  const LaunchInfo& launch;
  LaneView& lane;
};

using InstrCallback = std::function<void(const InstrEvent&)>;

enum class InsertPoint : std::uint8_t { kBefore, kAfter };

struct InstrumentationPlan {
  struct Site {
    std::vector<InstrCallback> before;
    std::vector<InstrCallback> after;
    bool empty() const { return before.empty() && after.empty(); }
  };

  // Dense per-static-instruction table; sized to the kernel body (sites may
  // be empty).  An empty vector means "nothing instrumented".
  std::vector<Site> sites;

  // Register demand of the injected code; feeds the spill model.
  std::uint32_t extra_regs = 0;

  // Simulated cycles charged per callback event — the cost of the spliced-in
  // SASS.  Charged once per warp issue normally (SIMT execution), or once per
  // active lane when `serialized` is set or the kernel spills.
  std::uint64_t cost_per_lane_event = 16;

  // The injected code serialises across the warp (atomic-heavy tools).
  bool serialized = false;

  bool HasSite(std::uint32_t index) const {
    return index < sites.size() && !sites[index].empty();
  }
  std::uint64_t InstrumentedSiteCount() const {
    std::uint64_t n = 0;
    for (const Site& s : sites) {
      if (!s.empty()) ++n;
    }
    return n;
  }
};

}  // namespace nvbitfi::sim
