#include "sassim/asm/disassembler.h"

#include <set>

#include "common/strings.h"

namespace nvbitfi::sim {
namespace {

std::string RegName(std::uint8_t r) {
  return r == kRZ ? std::string("RZ") : Format("R%u", r);
}

std::string PredName(std::uint8_t p) {
  return p == kPT ? std::string("PT") : Format("P%u", p);
}

const char* CmpName(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kF: return "F";
    case CmpOp::kLT: return "LT";
    case CmpOp::kEQ: return "EQ";
    case CmpOp::kLE: return "LE";
    case CmpOp::kGT: return "GT";
    case CmpOp::kNE: return "NE";
    case CmpOp::kGE: return "GE";
    case CmpOp::kT: return "T";
  }
  return "?";
}

const char* BoolName(BoolOp op) {
  switch (op) {
    case BoolOp::kAnd: return "AND";
    case BoolOp::kOr: return "OR";
    case BoolOp::kXor: return "XOR";
  }
  return "?";
}

bool IsSetpLike(Opcode op) {
  return op == Opcode::kFSETP || op == Opcode::kISETP || op == Opcode::kDSETP ||
         op == Opcode::kHSETP2 || op == Opcode::kPSETP;
}

// Modifier suffix after the mnemonic.
std::string Suffix(const Instruction& inst) {
  const Modifiers& m = inst.mods;
  const OpClass cls = ClassOf(inst.opcode);
  std::string s;

  if (inst.opcode == Opcode::kPSETP) {
    // PSETP combines predicates only: no comparison operator.
    return Format(".%s", BoolName(m.bool_op));
  }
  if (IsSetpLike(inst.opcode) || inst.opcode == Opcode::kFSET) {
    s += Format(".%s", CmpName(m.cmp));
    if (inst.opcode == Opcode::kISETP && !m.src_signed) s += ".U32";
    s += Format(".%s", BoolName(m.bool_op));
    return s;
  }
  if (inst.opcode == Opcode::kLOP || inst.opcode == Opcode::kLOP32I) {
    return Format(".%s", BoolName(m.bool_op));
  }
  if (inst.opcode == Opcode::kMUFU) {
    switch (m.mufu) {
      case MufuFunc::kRcp: return ".RCP";
      case MufuFunc::kRsq: return ".RSQ";
      case MufuFunc::kSqrt: return ".SQRT";
      case MufuFunc::kLg2: return ".LG2";
      case MufuFunc::kEx2: return ".EX2";
      case MufuFunc::kSin: return ".SIN";
      case MufuFunc::kCos: return ".COS";
    }
  }
  if (cls == OpClass::kLoad || cls == OpClass::kStore || cls == OpClass::kAtomic) {
    if (cls == OpClass::kAtomic) {
      switch (m.atomic) {
        case AtomicOp::kAdd: s += ".ADD"; break;
        case AtomicOp::kMin: s += ".MIN"; break;
        case AtomicOp::kMax: s += ".MAX"; break;
        case AtomicOp::kExch: s += ".EXCH"; break;
        case AtomicOp::kCas: s += ".CAS"; break;
        case AtomicOp::kAnd: s += ".AND"; break;
        case AtomicOp::kOr: s += ".OR"; break;
        case AtomicOp::kXor: s += ".XOR"; break;
      }
    }
    if (inst.opcode != Opcode::kLDC || m.width == MemWidth::k64) {
      switch (m.width) {
        case MemWidth::k8: s += m.sign_extend ? ".S8" : ".U8"; break;
        case MemWidth::k16: s += m.sign_extend ? ".S16" : ".U16"; break;
        case MemWidth::k32: s += ".E.32"; break;
        case MemWidth::k64: s += inst.opcode == Opcode::kLDC ? ".64" : ".E.64"; break;
        case MemWidth::k128: s += ".E.128"; break;
      }
    }
    return s;
  }
  if (inst.opcode == Opcode::kIMAD && m.wide_dst) {
    s += ".WIDE";
    if (!m.src_signed) s += ".U32";
    return s;
  }
  if (inst.opcode == Opcode::kIMNMX && !m.src_signed) return ".U32";
  if (inst.opcode == Opcode::kSHR) return m.src_signed ? ".S32" : ".U32";
  if (inst.opcode == Opcode::kSHF) {
    s += m.shift_dir == ShiftDir::kLeft ? ".L" : ".R";
    if (!m.src_signed) s += ".U32";
    return s;
  }
  if (inst.opcode == Opcode::kSHFL) {
    switch (m.shfl) {
      case ShflMode::kIdx: return ".IDX";
      case ShflMode::kUp: return ".UP";
      case ShflMode::kDown: return ".DOWN";
      case ShflMode::kBfly: return ".BFLY";
    }
  }
  if (inst.opcode == Opcode::kVOTE || inst.opcode == Opcode::kVOTEU) {
    switch (m.vote) {
      case VoteMode::kAll: return ".ALL";
      case VoteMode::kAny: return ".ANY";
      case VoteMode::kBallot: return ".BALLOT";
    }
  }
  if (inst.opcode == Opcode::kF2F) {
    return Format(".%s.%s", m.wide_dst ? "F64" : "F32", m.wide_src ? "F64" : "F32");
  }
  if (inst.opcode == Opcode::kF2I) {
    return Format(".%s.%s", m.src_signed ? "S32" : "U32", m.wide_src ? "F64" : "F32");
  }
  if (inst.opcode == Opcode::kI2F) {
    return Format(".%s.%s", m.wide_dst ? "F64" : "F32", m.src_signed ? "S32" : "U32");
  }
  return s;
}

std::string OperandText(const Instruction& inst, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kNone:
      return "";
    case Operand::Kind::kGpr: {
      std::string body = RegName(op.reg);
      if (op.absolute) body = "|" + body + "|";
      if (op.invert) body = "~" + body;
      if (op.negate) body = "-" + body;
      return body;
    }
    case Operand::Kind::kPred:
      return (op.negate ? "!" : "") + PredName(op.reg);
    case Operand::Kind::kImm:
      if (inst.opcode == Opcode::kS2R || inst.opcode == Opcode::kCS2R) {
        return std::string(SpecialRegName(inst.mods.sreg));
      }
      return Format("0x%x", op.imm);
    case Operand::Kind::kConst:
      return Format("c[%u][0x%x]", op.const_bank, op.const_offset);
    case Operand::Kind::kMem:
      if (op.mem_offset == 0) return "[" + RegName(op.mem_base) + "]";
      if (op.mem_offset > 0) {
        return Format("[%s+0x%x]", RegName(op.mem_base).c_str(), op.mem_offset);
      }
      return Format("[%s-0x%x]", RegName(op.mem_base).c_str(), -op.mem_offset);
    case Operand::Kind::kLabel:
      return Format("L%u", op.imm);
  }
  return "";
}

}  // namespace

std::string DisassembleInstruction(const Instruction& inst) {
  std::string line = "  ";
  if (inst.guard_pred != kPT || inst.guard_negate) {
    line += "@";
    if (inst.guard_negate) line += "!";
    line += PredName(inst.guard_pred) + " ";
  }
  line += std::string(OpcodeName(inst.opcode)) + Suffix(inst);

  std::vector<std::string> operands;
  const DestKind dk = DestKindOf(inst.opcode);
  // Destination order mirrors the assembler's SignatureFor.
  if (inst.opcode == Opcode::kVOTE) {
    operands.push_back(RegName(inst.dest_gpr));
    operands.push_back(PredName(inst.dest_pred));
  } else if (dk == DestKind::kPred &&
             (IsSetpLike(inst.opcode) || inst.opcode == Opcode::kPLOP3 ||
              inst.opcode == Opcode::kUPLOP3 || inst.opcode == Opcode::kUISETP ||
              inst.opcode == Opcode::kUPSETP)) {
    operands.push_back(PredName(inst.dest_pred));
    operands.push_back(PredName(inst.dest_pred2));
  } else if (dk == DestKind::kPred &&
             (inst.opcode == Opcode::kFCHK || inst.opcode == Opcode::kUR2UP)) {
    operands.push_back(PredName(inst.dest_pred));
  } else if (WritesGpr(inst.opcode) && inst.opcode != Opcode::kR2P) {
    operands.push_back(RegName(inst.dest_gpr));
  }
  for (int i = 0; i < inst.num_src; ++i) {
    operands.push_back(OperandText(inst, inst.src[static_cast<std::size_t>(i)]));
  }

  for (std::size_t i = 0; i < operands.size(); ++i) {
    line += (i == 0 ? " " : ", ") + operands[i];
  }
  line += " ;";
  return line;
}

std::string Disassemble(const KernelSource& kernel) {
  // Collect branch targets for label emission.
  std::set<std::uint32_t> targets;
  for (const Instruction& inst : kernel.instructions) {
    for (int i = 0; i < inst.num_src; ++i) {
      const Operand& op = inst.src[static_cast<std::size_t>(i)];
      if (op.kind == Operand::Kind::kLabel) targets.insert(op.imm);
    }
  }

  std::string out = Format(".kernel %s regs=%u shared=%u\n", kernel.name.c_str(),
                           kernel.register_count, kernel.shared_bytes);
  for (std::uint32_t pc = 0; pc < kernel.instructions.size(); ++pc) {
    if (targets.count(pc) != 0) out += Format("L%u:\n", pc);
    out += DisassembleInstruction(kernel.instructions[pc]);
    out += "\n";
  }
  // A branch may target one past the end.
  if (targets.count(static_cast<std::uint32_t>(kernel.instructions.size())) != 0) {
    out += Format("L%zu:\n", kernel.instructions.size());
  }
  out += ".endkernel\n";
  return out;
}

}  // namespace nvbitfi::sim
