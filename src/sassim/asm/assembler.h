// Text assembler for the simulated SASS dialect.
//
// Module syntax:
//
//   // comment                          # comment
//   .kernel saxpy regs=16 shared=128
//   loop:
//     S2R R0, SR_CTAID.X ;
//     IMAD R0, R0, c[0][0x0], R1 ;
//     ISETP.LT.AND P0, PT, R0, c[0][0x170], PT ;
//     @!P0 BRA done ;
//     LDG.64 R4, [R2+0x10] ;
//     @P0 BRA loop ;
//   done:
//     EXIT ;
//   .endkernel
//
// Mnemonic modifiers (".LT", ".AND", ".64", ".RCP", ...) follow SASS
// conventions; kernel-launch parameters land in constant bank 0 starting at
// offset 0x160 (8 bytes per parameter), with block/grid dimensions at
// c[0][0x0]..c[0][0x14], matching the layout described in runtime/driver.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sassim/isa/instruction.h"
#include "sassim/isa/kernel.h"

namespace nvbitfi::sim {

struct AssemblyResult {
  bool ok = false;
  std::string error;  // first error, with line number
  std::vector<KernelSource> kernels;
};

// Assembles a full module (possibly several kernels).
AssemblyResult Assemble(std::string_view source);

// Convenience for building a single kernel in tests: wraps `body` in
// ".kernel <name>" / ".endkernel" and asserts success.
KernelSource AssembleKernelOrDie(std::string_view name, std::string_view body);

}  // namespace nvbitfi::sim
