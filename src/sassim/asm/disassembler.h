// Disassembler: renders a loaded kernel back into the assembler's input
// dialect (the analogue of dumping SASS from a cubin with nvdisasm).
//
// The output is re-assemblable: Assemble(Disassemble(k)) produces a kernel
// whose binary encoding is identical to k's, a property the tests enforce
// over every kernel template and workload module.
#pragma once

#include <string>

#include "sassim/isa/kernel.h"

namespace nvbitfi::sim {

// Full kernel block: ".kernel name regs=.. shared=.." + body + ".endkernel".
// Branch targets get generated labels ("L12:").
std::string Disassemble(const KernelSource& kernel);

// One instruction without label resolution (branch targets render as "L<n>").
std::string DisassembleInstruction(const Instruction& inst);

}  // namespace nvbitfi::sim
