#include "sassim/asm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::sim {
namespace {

struct ParseError {
  std::string message;
};

// Per-line parser state shared across helpers.
class LineParser {
 public:
  LineParser(std::string_view line, int line_number)
      : line_(line), line_number_(line_number) {}

  [[noreturn]] void Fail(const std::string& why) const {
    throw ParseError{Format("line %d: %s", line_number_, why.c_str())};
  }

  int line_number() const { return line_number_; }
  std::string_view line() const { return line_; }

 private:
  std::string_view line_;
  int line_number_;
};

std::string_view StripComment(std::string_view line) {
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    if (line[i] == '/' && line[i + 1] == '/') return line.substr(0, i);
  }
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) return line.substr(0, hash);
  return line;
}

bool ParsePredToken(std::string_view tok, std::uint8_t* index, bool* negate) {
  *negate = false;
  if (!tok.empty() && tok.front() == '!') {
    *negate = true;
    tok.remove_prefix(1);
  }
  if (tok == "PT") {
    *index = kPT;
    return true;
  }
  if (tok.size() == 2 && tok[0] == 'P' && tok[1] >= '0' && tok[1] <= '6') {
    *index = static_cast<std::uint8_t>(tok[1] - '0');
    return true;
  }
  return false;
}

bool ParseGprToken(std::string_view tok, std::uint8_t* index) {
  if (tok == "RZ") {
    *index = kRZ;
    return true;
  }
  if (tok.size() < 2 || tok[0] != 'R') return false;
  std::uint64_t v = 0;
  if (!ParseUint64(tok.substr(1), &v) || v >= kNumGpr) return false;
  *index = static_cast<std::uint8_t>(v);
  return true;
}

std::optional<SpecialReg> ParseSpecialReg(std::string_view tok) {
  static const std::unordered_map<std::string_view, SpecialReg> kMap = {
      {"SR_TID.X", SpecialReg::kTidX},     {"SR_TID.Y", SpecialReg::kTidY},
      {"SR_TID.Z", SpecialReg::kTidZ},     {"SR_CTAID.X", SpecialReg::kCtaIdX},
      {"SR_CTAID.Y", SpecialReg::kCtaIdY}, {"SR_CTAID.Z", SpecialReg::kCtaIdZ},
      {"SR_LANEID", SpecialReg::kLaneId},  {"SR_WARPID", SpecialReg::kWarpId},
      {"SR_SMID", SpecialReg::kSmId},      {"SR_CLOCKLO", SpecialReg::kClockLo},
  };
  const auto it = kMap.find(tok);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

bool IsIdentifier(std::string_view tok) {
  if (tok.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(tok[0])) && tok[0] != '_') return false;
  for (const char c : tok) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.') return false;
  }
  return true;
}

// Parses a numeric literal: hex, signed decimal, or FP32 with 'f' suffix.
// Integer forms win ties (so "0xf" is hex 15, not a float).
bool ParseImmediate(std::string_view tok, std::uint32_t* bits) {
  if (tok.empty()) return false;
  std::int64_t sv = 0;
  if (ParseInt64(tok, &sv)) {
    *bits = static_cast<std::uint32_t>(sv);
    return true;
  }
  if (tok.back() == 'f' || tok.back() == 'F') {
    double d = 0;
    if (!ParseDouble(tok.substr(0, tok.size() - 1), &d)) return false;
    *bits = FloatToBits(static_cast<float>(d));
    return true;
  }
  return false;
}

// Splits "FFMA.FTZ" → mnemonic "FFMA", modifier tokens {"FTZ"}.
void SplitMnemonic(std::string_view word, std::string* mnemonic,
                   std::vector<std::string>* mods) {
  const auto parts = Split(word, '.');
  *mnemonic = parts[0];
  mods->assign(parts.begin() + 1, parts.end());
}

// Signature: how many leading operands are destinations.
struct OpSignature {
  int pred_dests = 0;
  bool gpr_dest = false;
};

OpSignature SignatureFor(Opcode op) {
  switch (op) {
    case Opcode::kFSETP:
    case Opcode::kISETP:
    case Opcode::kDSETP:
    case Opcode::kHSETP2:
    case Opcode::kPSETP:
    case Opcode::kPLOP3:
    case Opcode::kUISETP:
    case Opcode::kUPSETP:
    case Opcode::kUPLOP3:
      return {.pred_dests = 2, .gpr_dest = false};
    case Opcode::kFCHK:
    case Opcode::kUR2UP:
      return {.pred_dests = 1, .gpr_dest = false};
    case Opcode::kR2P:
      return {.pred_dests = 0, .gpr_dest = false};  // writes preds via mask operand
    case Opcode::kVOTE:
      return {.pred_dests = 1, .gpr_dest = true};  // VOTE Rd, Pd, Psrc
    default: {
      const DestKind dk = DestKindOf(op);
      OpSignature sig;
      sig.gpr_dest = dk == DestKind::kGpr || dk == DestKind::kGprPair ||
                     dk == DestKind::kGprPred;
      sig.pred_dests = dk == DestKind::kPred ? 1 : 0;
      return sig;
    }
  }
}

// Splits an operand list on top-level commas (commas inside [] or c[][] are
// protected by bracket depth).
std::vector<std::string> SplitOperands(std::string_view text) {
  std::vector<std::string> out;
  int depth = 0;
  std::string current;
  for (const char c : text) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(TrimWhitespace(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string_view last = TrimWhitespace(current);
  if (!last.empty()) out.emplace_back(last);
  return out;
}

class ModuleAssembler {
 public:
  AssemblyResult Run(std::string_view source) {
    AssemblyResult result;
    try {
      const auto lines = Split(source, '\n');
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const int line_number = static_cast<int>(i) + 1;
        const std::string_view line = TrimWhitespace(StripComment(lines[i]));
        if (line.empty()) continue;
        ProcessLine(line, line_number);
      }
      if (in_kernel_) {
        throw ParseError{Format("kernel '%s' missing .endkernel", current_.name.c_str())};
      }
      result.ok = true;
      result.kernels = std::move(kernels_);
    } catch (const ParseError& e) {
      result.error = e.message;
    }
    return result;
  }

 private:
  void ProcessLine(std::string_view line, int line_number) {
    const LineParser lp(line, line_number);
    if (line.front() == '.') {
      ProcessDirective(lp, line);
      return;
    }
    if (!in_kernel_) lp.Fail("instruction outside .kernel block");

    // One or more "label:" prefixes, then optionally an instruction.
    std::string_view rest = line;
    while (true) {
      const std::size_t colon = rest.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view candidate = TrimWhitespace(rest.substr(0, colon));
      if (!IsIdentifier(candidate) || candidate.find('.') != std::string_view::npos) break;
      DefineLabel(lp, std::string(candidate));
      rest = TrimWhitespace(rest.substr(colon + 1));
      if (rest.empty()) return;
    }
    ParseInstruction(lp, rest);
  }

  void ProcessDirective(const LineParser& lp, std::string_view line) {
    const auto words = SplitWhitespace(line);
    if (words[0] == ".kernel") {
      if (in_kernel_) lp.Fail("nested .kernel");
      if (words.size() < 2 || !IsIdentifier(words[1])) lp.Fail(".kernel needs a name");
      current_ = KernelSource{};
      current_.name = words[1];
      for (std::size_t i = 2; i < words.size(); ++i) {
        const auto kv = Split(words[i], '=');
        std::uint64_t value = 0;
        if (kv.size() != 2 || !ParseUint64(kv[1], &value)) {
          lp.Fail(Format("bad kernel attribute '%s'", words[i].c_str()));
        }
        if (kv[0] == "regs") {
          if (value == 0 || value > kNumGpr) lp.Fail("regs out of range");
          current_.register_count = static_cast<std::uint32_t>(value);
        } else if (kv[0] == "shared") {
          current_.shared_bytes = static_cast<std::uint32_t>(value);
        } else {
          lp.Fail(Format("unknown kernel attribute '%s'", kv[0].c_str()));
        }
      }
      labels_.clear();
      fixups_.clear();
      in_kernel_ = true;
      return;
    }
    if (words[0] == ".endkernel") {
      if (!in_kernel_) lp.Fail(".endkernel without .kernel");
      ResolveFixups(lp);
      for (const auto& [name, _] : labels_) (void)name;
      kernels_.push_back(std::move(current_));
      in_kernel_ = false;
      return;
    }
    lp.Fail(Format("unknown directive '%s'", std::string(words[0]).c_str()));
  }

  void DefineLabel(const LineParser& lp, std::string name) {
    if (labels_.count(name) != 0) lp.Fail(Format("duplicate label '%s'", name.c_str()));
    labels_[std::move(name)] = static_cast<std::uint32_t>(current_.instructions.size());
  }

  void ParseInstruction(const LineParser& lp, std::string_view text) {
    Instruction inst;

    // Optional trailing ';'.
    while (!text.empty() && (text.back() == ';' || std::isspace(static_cast<unsigned char>(text.back())))) {
      text.remove_suffix(1);
    }
    if (text.empty()) return;

    // Guard predicate.
    if (text.front() == '@') {
      const std::size_t space = text.find_first_of(" \t");
      if (space == std::string_view::npos) lp.Fail("guard without instruction");
      std::string_view guard = text.substr(1, space - 1);
      bool neg = false;
      std::uint8_t idx = kPT;
      if (!ParsePredToken(guard, &idx, &neg)) {
        lp.Fail(Format("bad guard predicate '%s'", std::string(guard).c_str()));
      }
      inst.guard_pred = idx;
      inst.guard_negate = neg;
      text = TrimWhitespace(text.substr(space + 1));
    }

    // Mnemonic word.
    const std::size_t mnem_end = text.find_first_of(" \t");
    const std::string_view mnem_word =
        mnem_end == std::string_view::npos ? text : text.substr(0, mnem_end);
    std::string mnemonic;
    std::vector<std::string> mod_tokens;
    SplitMnemonic(mnem_word, &mnemonic, &mod_tokens);
    const auto opcode = OpcodeFromName(mnemonic);
    if (!opcode) lp.Fail(Format("unknown opcode '%s'", mnemonic.c_str()));
    inst.opcode = *opcode;
    ApplyModifiers(lp, &inst, mod_tokens);

    // Operands.
    std::vector<std::string> operand_tokens;
    if (mnem_end != std::string_view::npos) {
      operand_tokens = SplitOperands(TrimWhitespace(text.substr(mnem_end + 1)));
    }
    AssignOperands(lp, &inst, operand_tokens);
    current_.instructions.push_back(inst);
  }

  void ApplyModifiers(const LineParser& lp, Instruction* inst,
                      const std::vector<std::string>& tokens) {
    Modifiers& m = inst->mods;
    const OpClass cls = ClassOf(inst->opcode);
    int type_tokens_seen = 0;
    for (const std::string& tok : tokens) {
      // Comparison ops.
      if (tok == "F") { m.cmp = CmpOp::kF; continue; }
      if (tok == "T") { m.cmp = CmpOp::kT; continue; }
      if (tok == "LT") { m.cmp = CmpOp::kLT; continue; }
      if (tok == "EQ") { m.cmp = CmpOp::kEQ; continue; }
      if (tok == "LE") { m.cmp = CmpOp::kLE; continue; }
      if (tok == "GT") { m.cmp = CmpOp::kGT; continue; }
      if (tok == "NE" || tok == "NEU") { m.cmp = CmpOp::kNE; continue; }
      if (tok == "GE") { m.cmp = CmpOp::kGE; continue; }
      // Boolean combine vs atomic op (AND/OR/XOR are ambiguous).
      if (tok == "AND" || tok == "OR" || tok == "XOR") {
        if (cls == OpClass::kAtomic) {
          m.atomic = tok == "AND" ? AtomicOp::kAnd
                     : tok == "OR" ? AtomicOp::kOr
                                   : AtomicOp::kXor;
        } else {
          m.bool_op = tok == "AND" ? BoolOp::kAnd
                      : tok == "OR" ? BoolOp::kOr
                                    : BoolOp::kXor;
        }
        continue;
      }
      // MUFU functions.
      if (inst->opcode == Opcode::kMUFU) {
        if (tok == "RCP") { m.mufu = MufuFunc::kRcp; continue; }
        if (tok == "RSQ") { m.mufu = MufuFunc::kRsq; continue; }
        if (tok == "SQRT") { m.mufu = MufuFunc::kSqrt; continue; }
        if (tok == "LG2") { m.mufu = MufuFunc::kLg2; continue; }
        if (tok == "EX2") { m.mufu = MufuFunc::kEx2; continue; }
        if (tok == "SIN") { m.mufu = MufuFunc::kSin; continue; }
        if (tok == "COS") { m.mufu = MufuFunc::kCos; continue; }
      }
      // Memory widths / sub-word signedness.
      if (cls == OpClass::kLoad || cls == OpClass::kStore || cls == OpClass::kAtomic) {
        if (tok == "E") continue;  // extended (64-bit) addressing: always on
        if (tok == "U8") { m.width = MemWidth::k8; m.sign_extend = false; continue; }
        if (tok == "S8") { m.width = MemWidth::k8; m.sign_extend = true; continue; }
        if (tok == "U16") { m.width = MemWidth::k16; m.sign_extend = false; continue; }
        if (tok == "S16") { m.width = MemWidth::k16; m.sign_extend = true; continue; }
        if (tok == "32") { m.width = MemWidth::k32; continue; }
        if (tok == "64") { m.width = MemWidth::k64; continue; }
        if (tok == "128") { m.width = MemWidth::k128; continue; }
        if (tok == "ADD") { m.atomic = AtomicOp::kAdd; continue; }
        if (tok == "MIN") { m.atomic = AtomicOp::kMin; continue; }
        if (tok == "MAX") { m.atomic = AtomicOp::kMax; continue; }
        if (tok == "EXCH") { m.atomic = AtomicOp::kExch; continue; }
        if (tok == "CAS") { m.atomic = AtomicOp::kCas; continue; }
      }
      // Conversion / setp type tokens: first = destination, second = source.
      if (tok == "F64" || tok == "F32" || tok == "S32" || tok == "U32" ||
          tok == "S64" || tok == "U64" || tok == "F16") {
        const bool wide = tok == "F64" || tok == "S64" || tok == "U64";
        const bool is_unsigned = tok[0] == 'U';
        if (cls == OpClass::kConversion) {
          if (type_tokens_seen == 0) {
            m.wide_dst = wide;
            if (inst->opcode == Opcode::kF2I || inst->opcode == Opcode::kI2I) {
              m.src_signed = !is_unsigned;  // dest signedness reuses src_signed for F2I
            }
          } else {
            m.wide_src = wide;
            if (inst->opcode == Opcode::kI2F || inst->opcode == Opcode::kI2I) {
              m.src_signed = !is_unsigned;
            }
          }
          ++type_tokens_seen;
        } else {
          // e.g. ISETP.LT.U32, SHF.R.U32, IMAD.U32
          m.src_signed = !is_unsigned;
          m.wide_src = wide;
        }
        continue;
      }
      // SHF direction.
      if (inst->opcode == Opcode::kSHF && (tok == "L" || tok == "R")) {
        m.shift_dir = tok == "L" ? ShiftDir::kLeft : ShiftDir::kRight;
        continue;
      }
      // SHFL modes.
      if (inst->opcode == Opcode::kSHFL) {
        if (tok == "IDX") { m.shfl = ShflMode::kIdx; continue; }
        if (tok == "UP") { m.shfl = ShflMode::kUp; continue; }
        if (tok == "DOWN") { m.shfl = ShflMode::kDown; continue; }
        if (tok == "BFLY") { m.shfl = ShflMode::kBfly; continue; }
      }
      // VOTE modes.
      if (inst->opcode == Opcode::kVOTE || inst->opcode == Opcode::kVOTEU) {
        if (tok == "ALL") { m.vote = VoteMode::kAll; continue; }
        if (tok == "ANY") { m.vote = VoteMode::kAny; continue; }
        if (tok == "BALLOT") { m.vote = VoteMode::kBallot; continue; }
      }
      // IMAD.WIDE: 32x32 -> 64-bit multiply-add writing a register pair.
      if (tok == "WIDE") {
        m.wide_dst = true;
        continue;
      }
      // Accepted-and-ignored noise modifiers (scheduling/rounding hints).
      if (tok == "FTZ" || tok == "SAT" || tok == "RN" || tok == "RZ" ||
          tok == "RM" || tok == "RP" || tok == "TRUNC" || tok == "FLOOR" ||
          tok == "CEIL" || tok == "SYNC" || tok == "LUT" || tok == "STRONG" ||
          tok == "WEAK" || tok == "CTA" || tok == "GPU" || tok == "SYS" ||
          tok == "HI" || tok == "X") {
        continue;
      }
      lp.Fail(Format("opcode %s: unknown modifier '.%s'",
                     std::string(OpcodeName(inst->opcode)).c_str(), tok.c_str()));
    }
  }

  Operand ParseOperand(const LineParser& lp, Instruction* inst, std::string_view tok,
                       bool allow_label) {
    NVBITFI_CHECK(!tok.empty());

    // Memory operand [Rb], [Rb+imm], [Rb-imm].
    if (tok.front() == '[') {
      if (tok.back() != ']') lp.Fail(Format("unterminated memory operand '%s'", std::string(tok).c_str()));
      std::string_view body = TrimWhitespace(tok.substr(1, tok.size() - 2));
      std::uint8_t base = kRZ;
      std::int32_t offset = 0;
      const std::size_t plus = body.find_first_of("+-", 1);
      std::string_view base_tok = plus == std::string_view::npos ? body : TrimWhitespace(body.substr(0, plus));
      if (!ParseGprToken(base_tok, &base)) {
        // Absolute address: [0x1000].
        std::uint32_t bits = 0;
        if (plus == std::string_view::npos && ParseImmediate(body, &bits)) {
          Operand o = Operand::Mem(kRZ, static_cast<std::int32_t>(bits));
          return o;
        }
        lp.Fail(Format("bad memory base '%s'", std::string(base_tok).c_str()));
      }
      if (plus != std::string_view::npos) {
        std::string_view off_tok = TrimWhitespace(body.substr(plus));
        if (!off_tok.empty() && off_tok.front() == '+') off_tok.remove_prefix(1);
        std::int64_t v = 0;
        if (!ParseInt64(TrimWhitespace(off_tok), &v)) {
          lp.Fail(Format("bad memory offset '%s'", std::string(off_tok).c_str()));
        }
        offset = static_cast<std::int32_t>(v);
      }
      return Operand::Mem(base, offset);
    }

    // Constant bank c[b][off].
    if (StartsWith(tok, "c[")) {
      const std::size_t close1 = tok.find(']');
      const std::size_t open2 = tok.find('[', 2);
      if (close1 == std::string_view::npos || open2 != close1 + 1 || tok.back() != ']') {
        lp.Fail(Format("bad constant operand '%s'", std::string(tok).c_str()));
      }
      std::uint64_t bank = 0, offset = 0;
      if (!ParseUint64(tok.substr(2, close1 - 2), &bank) ||
          !ParseUint64(tok.substr(open2 + 1, tok.size() - open2 - 2), &offset) ||
          bank > 0xFF || offset > 0xFFFFFF) {
        lp.Fail(Format("bad constant operand '%s'", std::string(tok).c_str()));
      }
      return Operand::Const(static_cast<std::uint8_t>(bank),
                            static_cast<std::uint32_t>(offset));
    }

    // Register with optional modifiers.
    {
      std::string_view body = tok;
      bool negate = false, absolute = false, invert = false;
      if (!body.empty() && body.front() == '-') { negate = true; body.remove_prefix(1); }
      if (!body.empty() && body.front() == '~') { invert = true; body.remove_prefix(1); }
      if (body.size() >= 2 && body.front() == '|' && body.back() == '|') {
        absolute = true;
        body = body.substr(1, body.size() - 2);
      }
      std::uint8_t reg = kRZ;
      if (ParseGprToken(body, &reg)) {
        Operand o = Operand::Gpr(reg);
        o.negate = negate;
        o.absolute = absolute;
        o.invert = invert;
        return o;
      }
    }

    // Predicate.
    {
      std::uint8_t idx = kPT;
      bool neg = false;
      if (ParsePredToken(tok, &idx, &neg)) return Operand::Pred(idx, neg);
    }

    // Special register (consumed into modifiers, represented as imm operand).
    if (StartsWith(tok, "SR_")) {
      const auto sr = ParseSpecialReg(tok);
      if (!sr) lp.Fail(Format("unknown special register '%s'", std::string(tok).c_str()));
      inst->mods.sreg = *sr;
      return Operand::Imm(static_cast<std::uint32_t>(*sr));
    }

    // Immediate.
    {
      std::uint32_t bits = 0;
      if (ParseImmediate(tok, &bits)) return Operand::Imm(bits);
    }

    // Label reference.
    if (allow_label && IsIdentifier(tok)) {
      Operand o = Operand::Label(0);
      fixups_.emplace_back(Fixup{std::string(tok),
                                 static_cast<std::uint32_t>(current_.instructions.size()),
                                 lp.line_number()});
      return o;
    }

    lp.Fail(Format("cannot parse operand '%s'", std::string(tok).c_str()));
  }

  void AssignOperands(const LineParser& lp, Instruction* inst,
                      const std::vector<std::string>& tokens) {
    const OpSignature sig = SignatureFor(inst->opcode);
    std::size_t cursor = 0;

    if (sig.gpr_dest) {
      if (cursor >= tokens.size()) lp.Fail("missing destination register");
      std::uint8_t reg = kRZ;
      if (!ParseGprToken(tokens[cursor], &reg)) {
        lp.Fail(Format("bad destination register '%s'", tokens[cursor].c_str()));
      }
      inst->dest_gpr = reg;
      ++cursor;
    }
    for (int p = 0; p < sig.pred_dests; ++p) {
      if (cursor >= tokens.size()) lp.Fail("missing destination predicate");
      std::uint8_t idx = kPT;
      bool neg = false;
      if (!ParsePredToken(tokens[cursor], &idx, &neg) || neg) {
        lp.Fail(Format("bad destination predicate '%s'", tokens[cursor].c_str()));
      }
      (p == 0 ? inst->dest_pred : inst->dest_pred2) = idx;
      ++cursor;
    }

    const bool is_branch = inst->opcode == Opcode::kBRA ||
                           inst->opcode == Opcode::kJMP ||
                           inst->opcode == Opcode::kCALL;
    int n = 0;
    for (; cursor < tokens.size(); ++cursor) {
      if (n >= kMaxSrcOperands) lp.Fail("too many source operands");
      inst->src[static_cast<std::size_t>(n)] =
          ParseOperand(lp, inst, tokens[cursor], is_branch);
      ++n;
    }
    inst->num_src = static_cast<std::uint8_t>(n);
  }

  void ResolveFixups(const LineParser& lp) {
    for (const Fixup& fx : fixups_) {
      const auto it = labels_.find(fx.label);
      if (it == labels_.end()) {
        throw ParseError{Format("line %d: undefined label '%s'", fx.line_number,
                                fx.label.c_str())};
      }
      Instruction& inst = current_.instructions[fx.instruction_index];
      bool patched = false;
      for (int i = 0; i < inst.num_src; ++i) {
        Operand& op = inst.src[static_cast<std::size_t>(i)];
        if (op.kind == Operand::Kind::kLabel && !patched) {
          op.imm = it->second;
          patched = true;
        }
      }
      if (!patched) lp.Fail("internal: label fixup lost its operand");
    }
  }

  struct Fixup {
    std::string label;
    std::uint32_t instruction_index;
    int line_number;
  };

  bool in_kernel_ = false;
  KernelSource current_;
  std::map<std::string, std::uint32_t> labels_;
  std::vector<Fixup> fixups_;
  std::vector<KernelSource> kernels_;
};

}  // namespace

AssemblyResult Assemble(std::string_view source) {
  ModuleAssembler assembler;
  return assembler.Run(source);
}

KernelSource AssembleKernelOrDie(std::string_view name, std::string_view body) {
  std::string source;
  source += ".kernel ";
  source += name;
  source += "\n";
  source += body;
  source += "\n.endkernel\n";
  AssemblyResult result = Assemble(source);
  NVBITFI_CHECK_MSG(result.ok, "assembly failed: " << result.error);
  NVBITFI_CHECK(result.kernels.size() == 1);
  return std::move(result.kernels.front());
}

}  // namespace nvbitfi::sim
