#include "sassim/mem/memory.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace nvbitfi::sim {

std::string_view TrapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kIllegalAddress: return "illegal address";
    case TrapKind::kMisalignedAddress: return "misaligned address";
    case TrapKind::kIllegalInstruction: return "illegal instruction";
    case TrapKind::kTimeout: return "launch timeout";
    case TrapKind::kBarrierMismatch: return "barrier mismatch";
  }
  return "?";
}

namespace {

bool ValidBytes(int bytes) {
  return bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8;
}

bool Misaligned(std::uint64_t addr, int bytes) {
  return (addr & static_cast<std::uint64_t>(bytes - 1)) != 0;
}

std::uint64_t LoadLE(const std::uint8_t* p, int bytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, static_cast<std::size_t>(bytes));
  return v;
}

void StoreLE(std::uint8_t* p, std::uint64_t v, int bytes) {
  std::memcpy(p, &v, static_cast<std::size_t>(bytes));
}

}  // namespace

std::uint64_t ApplyAtomicOp(std::uint64_t old_value, std::uint64_t operand, int op_code,
                            int bytes) {
  // Mirrors sim::AtomicOp: 0=Add 1=Min 2=Max 3=Exch 4=Cas 5=And 6=Or 7=Xor.
  const std::uint64_t mask = bytes >= 8 ? ~0ull : (1ull << (8 * bytes)) - 1;
  const std::uint64_t a = old_value & mask;
  const std::uint64_t b = operand & mask;
  std::uint64_t result = 0;
  switch (op_code) {
    case 0: result = a + b; break;
    case 1: result = std::min(a, b); break;  // unsigned min, as ATOM.MIN.U32
    case 2: result = std::max(a, b); break;
    case 3: result = b; break;
    case 4: result = b; break;  // CAS compare handled by caller; plain swap here
    case 5: result = a & b; break;
    case 6: result = a | b; break;
    case 7: result = a ^ b; break;
    default: result = a; break;
  }
  return result & mask;
}

DevPtr GlobalMemory::Alloc(std::size_t size) {
  NVBITFI_CHECK_MSG(size > 0, "zero-byte device allocation");
  const DevPtr base = next_;
  const std::size_t offset = static_cast<std::size_t>(base - kHeapBase);
  NVBITFI_CHECK_MSG(offset + size <= kArenaBytes,
                    "device arena exhausted (" << offset + size << " bytes)");
  const std::size_t old_size = arena_.size();
  if (arena_.size() < offset + size) arena_.resize(offset + size, 0);
  // The zero-filled growth (alignment gap included) changes page contents.
  const std::size_t touch_from = std::min(old_size, offset);
  TouchRange(touch_from, offset + size - touch_from);
  allocations_.emplace(base, Allocation{offset, size});
  bytes_allocated_ += size;
  next_ += (size + 0xFF) & ~0xFFull;  // 256-byte alignment for the next one
  return base;
}

bool GlobalMemory::Free(DevPtr ptr) {
  const auto it = allocations_.find(ptr);
  if (it == allocations_.end()) return false;
  bytes_allocated_ -= it->second.size;
  allocations_.erase(it);
  return true;
}

bool GlobalMemory::InArena(DevPtr addr, int bytes, std::size_t* offset) const {
  if (addr < kHeapBase) return false;
  const std::uint64_t off = addr - kHeapBase;
  if (off + static_cast<std::uint64_t>(bytes) > arena_.size()) return false;
  *offset = static_cast<std::size_t>(off);
  return true;
}

const GlobalMemory::Allocation* GlobalMemory::FindAllocation(DevPtr addr,
                                                             std::size_t bytes) const {
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return nullptr;
  --it;
  const DevPtr base = it->first;
  const Allocation& alloc = it->second;
  if (addr < base || addr - base + bytes > alloc.size) return nullptr;
  return &alloc;
}

bool GlobalMemory::CopyIn(DevPtr dst, std::span<const std::uint8_t> src) {
  if (src.empty()) return true;
  const Allocation* alloc = FindAllocation(dst, src.size());
  if (alloc == nullptr) return false;
  const std::size_t offset = static_cast<std::size_t>(dst - kHeapBase);
  std::memcpy(arena_.data() + offset, src.data(), src.size());
  TouchRange(offset, src.size());
  return true;
}

bool GlobalMemory::CopyOut(DevPtr src, std::span<std::uint8_t> dst) const {
  if (dst.empty()) return true;
  const Allocation* alloc = FindAllocation(src, dst.size());
  if (alloc == nullptr) return false;
  std::memcpy(dst.data(),
              arena_.data() + alloc->offset + (src - kHeapBase - alloc->offset),
              dst.size());
  return true;
}

MemAccessResult GlobalMemory::Read(DevPtr addr, int bytes) const {
  MemAccessResult r;
  if (!ValidBytes(bytes)) {
    r.trap = TrapKind::kIllegalInstruction;
    return r;
  }
  if (Misaligned(addr, bytes)) {
    r.trap = TrapKind::kMisalignedAddress;
    return r;
  }
  std::size_t offset = 0;
  if (!InArena(addr, bytes, &offset)) {
    r.trap = TrapKind::kIllegalAddress;
    return r;
  }
  r.value = LoadLE(arena_.data() + offset, bytes);
  return r;
}

TrapKind GlobalMemory::Write(DevPtr addr, std::uint64_t value, int bytes) {
  if (!ValidBytes(bytes)) return TrapKind::kIllegalInstruction;
  if (Misaligned(addr, bytes)) return TrapKind::kMisalignedAddress;
  std::size_t offset = 0;
  if (!InArena(addr, bytes, &offset)) return TrapKind::kIllegalAddress;
  StoreLE(arena_.data() + offset, value, bytes);
  TouchRange(offset, static_cast<std::size_t>(bytes));
  return TrapKind::kNone;
}

MemAccessResult GlobalMemory::AtomicRmw(DevPtr addr, std::uint64_t operand, int op_code,
                                        int bytes) {
  MemAccessResult r = Read(addr, bytes);
  if (!r.ok()) return r;
  const std::uint64_t updated = ApplyAtomicOp(r.value, operand, op_code, bytes);
  const TrapKind trap = Write(addr, updated, bytes);
  if (trap != TrapKind::kNone) r.trap = trap;
  return r;
}

void GlobalMemory::Reset() {
  arena_.clear();
  allocations_.clear();
  next_ = kHeapBase;
  bytes_allocated_ = 0;
  page_stamps_.clear();
}

void GlobalMemory::TouchRange(std::size_t offset, std::size_t len) {
  if (len == 0) return;
  const std::size_t pages = (arena_.size() + kPageBytes - 1) / kPageBytes;
  if (page_stamps_.size() < pages) page_stamps_.resize(pages, 0);
  ++write_clock_;
  const std::size_t last = (offset + len - 1) / kPageBytes;
  for (std::size_t p = offset / kPageBytes; p <= last; ++p) {
    page_stamps_[p] = write_clock_;
  }
}

GlobalMemory::Snapshot GlobalMemory::TakeSnapshot(const Snapshot* prev) const {
  Snapshot snap;
  snap.arena_size = arena_.size();
  snap.allocations = allocations_;
  snap.next = next_;
  snap.bytes_allocated = bytes_allocated_;
  const std::size_t pages = (arena_.size() + kPageBytes - 1) / kPageBytes;
  snap.pages.reserve(pages);
  snap.stamps.reserve(pages);
  for (std::size_t p = 0; p < pages; ++p) {
    const std::uint64_t stamp = p < page_stamps_.size() ? page_stamps_[p] : 0;
    const std::size_t begin = p * kPageBytes;
    const std::size_t len = std::min(kPageBytes, arena_.size() - begin);
    if (prev != nullptr && p < prev->pages.size() && prev->stamps[p] == stamp &&
        prev->pages[p]->size() == len) {
      snap.pages.push_back(prev->pages[p]);
    } else {
      snap.pages.push_back(std::make_shared<const std::vector<std::uint8_t>>(
          arena_.begin() + static_cast<std::ptrdiff_t>(begin),
          arena_.begin() + static_cast<std::ptrdiff_t>(begin + len)));
    }
    snap.stamps.push_back(stamp);
  }
  return snap;
}

void GlobalMemory::RestoreSnapshot(const Snapshot& snapshot) {
  arena_.resize(snapshot.arena_size);
  for (std::size_t p = 0; p < snapshot.pages.size(); ++p) {
    const std::vector<std::uint8_t>& page = *snapshot.pages[p];
    std::memcpy(arena_.data() + p * kPageBytes, page.data(), page.size());
  }
  // Stamps are restored too: page contents now match the capture exactly, so
  // a later TakeSnapshot against `snapshot` shares every untouched page.
  page_stamps_ = snapshot.stamps;
  allocations_ = snapshot.allocations;
  next_ = snapshot.next;
  bytes_allocated_ = snapshot.bytes_allocated;
}

MemAccessResult FlatMemory::Read(std::uint64_t offset, int bytes) const {
  MemAccessResult r;
  if (!ValidBytes(bytes)) {
    r.trap = TrapKind::kIllegalInstruction;
    return r;
  }
  if (Misaligned(offset, bytes)) {
    r.trap = TrapKind::kMisalignedAddress;
    return r;
  }
  if (offset + static_cast<std::uint64_t>(bytes) > window_) {
    r.trap = TrapKind::kIllegalAddress;
    return r;
  }
  if (offset + static_cast<std::uint64_t>(bytes) > data_.size()) {
    r.value = 0;  // in-window, unbacked: reads return garbage (zeros)
    return r;
  }
  r.value = LoadLE(data_.data() + offset, bytes);
  return r;
}

TrapKind FlatMemory::Write(std::uint64_t offset, std::uint64_t value, int bytes) {
  if (!ValidBytes(bytes)) return TrapKind::kIllegalInstruction;
  if (Misaligned(offset, bytes)) return TrapKind::kMisalignedAddress;
  if (offset + static_cast<std::uint64_t>(bytes) > window_) {
    return TrapKind::kIllegalAddress;
  }
  if (offset + static_cast<std::uint64_t>(bytes) > data_.size()) {
    return TrapKind::kNone;  // in-window, unbacked: write dropped
  }
  StoreLE(data_.data() + offset, value, bytes);
  return TrapKind::kNone;
}

MemAccessResult FlatMemory::AtomicRmw(std::uint64_t offset, std::uint64_t operand,
                                      int op_code, int bytes) {
  MemAccessResult r = Read(offset, bytes);
  if (!r.ok()) return r;
  const std::uint64_t updated = ApplyAtomicOp(r.value, operand, op_code, bytes);
  const TrapKind trap = Write(offset, updated, bytes);
  if (trap != TrapKind::kNone) r.trap = trap;
  return r;
}

void ConstantBank::Write32(std::uint32_t offset, std::uint32_t value) {
  if (offset + 4 > data_.size()) data_.resize(offset + 4, 0);
  std::memcpy(data_.data() + offset, &value, 4);
}

void ConstantBank::Write64(std::uint32_t offset, std::uint64_t value) {
  if (offset + 8 > data_.size()) data_.resize(offset + 8, 0);
  std::memcpy(data_.data() + offset, &value, 8);
}

std::uint32_t ConstantBank::Read32(std::uint32_t offset) const {
  if (offset + 4 > data_.size()) return 0;
  std::uint32_t v = 0;
  std::memcpy(&v, data_.data() + offset, 4);
  return v;
}

std::uint64_t ConstantBank::Read64(std::uint32_t offset) const {
  if (offset + 8 > data_.size()) return 0;
  std::uint64_t v = 0;
  std::memcpy(&v, data_.data() + offset, 8);
  return v;
}

}  // namespace nvbitfi::sim
