// Device memory model: global memory with allocation tracking, per-block
// shared memory, per-thread local memory, and constant banks.
//
// Device-side accesses are validated the way a real GPU MMU would: an access
// outside any live allocation raises an illegal-address trap, and a naturally
// unaligned access raises a misaligned-address trap.  These traps are the
// mechanism behind the paper's "potential DUE" outcome class (Table V):
// a bit-flip in an address register typically lands here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace nvbitfi::sim {

using DevPtr = std::uint64_t;

enum class TrapKind : std::uint8_t {
  kNone,
  kIllegalAddress,
  kMisalignedAddress,
  kIllegalInstruction,
  kTimeout,          // watchdog fired (hang detection)
  kBarrierMismatch,  // BAR.SYNC deadlock / divergent barrier
};

std::string_view TrapKindName(TrapKind kind);

struct MemAccessResult {
  TrapKind trap = TrapKind::kNone;
  std::uint64_t value = 0;  // for reads
  bool ok() const { return trap == TrapKind::kNone; }
};

// Linear global memory with a bump allocator and allocation bookkeeping.
//
// Device-side accesses are validated against the *mapped arena window*, not
// individual allocations: like a real GPU virtual address space, the heap is
// one contiguous mapped region, so a low-order corruption of an address
// usually lands in mapped memory (silent data corruption), while corruptions
// of high-order bits (or zeroed pointers) leave the mapped region and trap.
// Host-side copies (CopyIn/CopyOut) are still validated against the precise
// allocation, as the driver would.
class GlobalMemory {
 public:
  // Allocations start away from zero so that null-ish corrupted pointers trap.
  static constexpr DevPtr kHeapBase = 0x7f0000000000ull;
  // Size of the mapped arena window device accesses are checked against.
  static constexpr std::size_t kArenaBytes = 4 * 1024 * 1024;
  // Snapshot page granularity (checkpoint engine).
  static constexpr std::size_t kPageBytes = 4096;

  // Allocates `size` bytes (size > 0) aligned to 256; returns the device
  // pointer.  Never returns 0.
  DevPtr Alloc(std::size_t size);

  // Frees a pointer previously returned by Alloc; false if unknown.
  bool Free(DevPtr ptr);

  // Host-side copies (no alignment requirements, must be in-bounds of one
  // allocation); returns false on bad ranges.
  bool CopyIn(DevPtr dst, std::span<const std::uint8_t> src);
  bool CopyOut(DevPtr src, std::span<std::uint8_t> dst) const;

  // Device-side accesses: `bytes` in {1,2,4,8,16}; must be naturally aligned
  // and inside a live allocation.  16-byte accesses are performed as two
  // 8-byte halves by the executor.
  MemAccessResult Read(DevPtr addr, int bytes) const;
  TrapKind Write(DevPtr addr, std::uint64_t value, int bytes);

  // Atomic read-modify-write returns the old value in MemAccessResult::value.
  MemAccessResult AtomicRmw(DevPtr addr, std::uint64_t operand, int op_code, int bytes);

  std::size_t live_allocations() const { return allocations_.size(); }
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  // Drops all allocations (used between campaign runs to give every
  // experiment a pristine device).
  void Reset();

 private:
  struct Allocation {
    std::size_t offset = 0;  // into the arena
    std::size_t size = 0;
  };

 public:
  // Copy-on-write snapshot of the arena and the allocation table.  Captured
  // pages are immutable copies: later mutations of the memory cannot leak
  // into a snapshot.  `TakeSnapshot(prev)` shares (rather than re-copies)
  // every page whose write stamp is unchanged since `prev` was captured, so
  // a stream of per-launch checkpoints costs O(pages written per launch).
  struct Snapshot {
    std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> pages;
    std::vector<std::uint64_t> stamps;  // write stamp each page was captured at
    std::size_t arena_size = 0;
    std::map<DevPtr, Allocation> allocations;
    DevPtr next = kHeapBase;
    std::size_t bytes_allocated = 0;
  };

  Snapshot TakeSnapshot(const Snapshot* prev = nullptr) const;
  // Restores arena contents, allocation table, and write stamps to exactly
  // the captured state (a later TakeSnapshot against the same snapshot
  // shares every page again).
  void RestoreSnapshot(const Snapshot& snapshot);

  // Maps [addr, addr+bytes) to an arena offset; false when the range leaves
  // the mapped window.
  bool InArena(DevPtr addr, int bytes, std::size_t* offset) const;
  // Host-copy validation: the precise allocation containing the range.
  const Allocation* FindAllocation(DevPtr addr, std::size_t bytes) const;
  // Stamps the pages covering [offset, offset+len) with a fresh write clock
  // (every mutation path funnels through here).
  void TouchRange(std::size_t offset, std::size_t len);

  std::vector<std::uint8_t> arena_;           // backing store (lazily sized)
  std::map<DevPtr, Allocation> allocations_;  // keyed by base address
  DevPtr next_ = kHeapBase;
  std::size_t bytes_allocated_ = 0;
  std::vector<std::uint64_t> page_stamps_;    // per-page last-write stamp
  std::uint64_t write_clock_ = 0;
};

// Flat byte array with bounds + alignment checks (shared and local memory).
//
// Accesses beyond the allocation but inside `window` model a real SM's
// shared/local address window: reads return zeros and writes are dropped
// (garbage, not a fault); only accesses outside the hardware window trap.
class FlatMemory {
 public:
  explicit FlatMemory(std::size_t size, std::size_t window = 0)
      : data_(size, 0), window_(std::max(size, window)) {}

  MemAccessResult Read(std::uint64_t offset, int bytes) const;
  TrapKind Write(std::uint64_t offset, std::uint64_t value, int bytes);
  MemAccessResult AtomicRmw(std::uint64_t offset, std::uint64_t operand, int op_code,
                            int bytes);

  std::size_t size() const { return data_.size(); }
  std::size_t window() const { return window_; }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t window_;
};

// Read-only constant bank (bank 0 carries launch configuration + kernel
// parameters; see runtime/driver.h for the layout).
class ConstantBank {
 public:
  ConstantBank() = default;
  explicit ConstantBank(std::vector<std::uint8_t> bytes) : data_(std::move(bytes)) {}

  void Write32(std::uint32_t offset, std::uint32_t value);
  void Write64(std::uint32_t offset, std::uint64_t value);

  // Out-of-bounds constant reads return 0 (real hardware reads back
  // undefined data rather than trapping on constant-bank slop).
  std::uint32_t Read32(std::uint32_t offset) const;
  std::uint64_t Read64(std::uint32_t offset) const;

  std::size_t size() const { return data_.size(); }

 private:
  std::vector<std::uint8_t> data_;
};

// Performs the shared atomic arithmetic for GlobalMemory/FlatMemory RMWs.
// `op_code` is a sim::AtomicOp cast to int (kept as int here to avoid a
// dependency cycle with the ISA header).
std::uint64_t ApplyAtomicOp(std::uint64_t old_value, std::uint64_t operand, int op_code,
                            int bytes);

}  // namespace nvbitfi::sim
