#include "core/corruption.h"

#include <algorithm>
#include <vector>

#include "common/bitutil.h"
#include "common/log.h"

namespace nvbitfi::fi {

std::vector<CorruptionTarget> CandidateTargets(const sim::Instruction& inst) {
  using Target = CorruptionTarget;
  std::vector<Target> out;
  const int gprs = sim::DestGprCount(inst);
  if (gprs == 1) {
    out.push_back({Target::Kind::kGpr32, inst.dest_gpr});
  } else if (gprs == 2) {
    out.push_back({Target::Kind::kGpr64, inst.dest_gpr});
  } else if (gprs == 4) {
    out.push_back({Target::Kind::kGpr64, inst.dest_gpr});
    out.push_back({Target::Kind::kGpr64, inst.dest_gpr + 2});
  }
  if (sim::DestKindOf(inst.opcode) == sim::DestKind::kPred ||
      sim::DestKindOf(inst.opcode) == sim::DestKind::kGprPred) {
    if (inst.dest_pred != sim::kPT) out.push_back({Target::Kind::kPred, inst.dest_pred});
    if (inst.dest_pred2 != sim::kPT) out.push_back({Target::Kind::kPred, inst.dest_pred2});
  }
  if (!out.empty()) return out;

  // No-destination instructions (stores, branches): corrupt a source GPR
  // instead — the register holding the store value or address stays corrupted
  // for later uses, modelling a fault in the operand-collector path.
  for (int i = 0; i < inst.num_src; ++i) {
    const sim::Operand& op = inst.src[static_cast<std::size_t>(i)];
    if (op.kind == sim::Operand::Kind::kGpr && op.reg != sim::kRZ) {
      out.push_back({Target::Kind::kGpr32, op.reg});
    } else if (op.kind == sim::Operand::Kind::kMem && op.mem_base != sim::kRZ) {
      out.push_back({Target::Kind::kGpr64, op.mem_base});
    }
  }
  return out;
}

std::size_t ChooseTargetIndex(std::size_t count, double destination_register) {
  const auto pick =
      static_cast<std::size_t>(destination_register * static_cast<double>(count));
  return std::min(pick, count - 1);
}

namespace {

void CorruptGpr32(sim::LaneView& lane, int reg, const TransientFaultParams& params,
                  InjectionRecord* record) {
  const std::uint32_t before = lane.ReadGpr(reg);
  const std::uint32_t mask =
      InjectionMask32(params.bit_flip_model, params.bit_pattern_value, before);
  const std::uint32_t after = before ^ mask;
  lane.WriteGpr(reg, after);
  record->corrupted = mask != 0 || params.bit_flip_model == BitFlipModel::kZeroValue;
  record->pred_target = false;
  record->target_register = reg;
  record->register_width = 32;
  record->before_bits = before;
  record->after_bits = after;
  record->mask = mask;
}

void CorruptGpr64(sim::LaneView& lane, int reg, const TransientFaultParams& params,
                  InjectionRecord* record) {
  const std::uint64_t before =
      PackPair(lane.ReadGpr(reg), reg + 1 < sim::kRZ ? lane.ReadGpr(reg + 1) : 0);
  const std::uint64_t mask =
      InjectionMask64(params.bit_flip_model, params.bit_pattern_value, before);
  const std::uint64_t after = before ^ mask;
  lane.WriteGpr(reg, PairLo(after));
  if (reg + 1 < sim::kRZ) lane.WriteGpr(reg + 1, PairHi(after));
  record->corrupted = mask != 0 || params.bit_flip_model == BitFlipModel::kZeroValue;
  record->pred_target = false;
  record->target_register = reg;
  record->register_width = 64;
  record->before_bits = before;
  record->after_bits = after;
  record->mask = mask;
}

void CorruptPred(sim::LaneView& lane, int pred, const TransientFaultParams& params,
                 InjectionRecord* record) {
  const bool before = lane.ReadPred(pred);
  bool after = before;
  switch (params.bit_flip_model) {
    case BitFlipModel::kFlipSingleBit:
    case BitFlipModel::kFlipTwoBits:
      after = !before;
      break;
    case BitFlipModel::kRandomValue:
      after = params.bit_pattern_value >= 0.5;
      break;
    case BitFlipModel::kZeroValue:
      after = false;
      break;
  }
  lane.WritePred(pred, after);
  record->corrupted = after != before || params.bit_flip_model == BitFlipModel::kZeroValue;
  record->pred_target = true;
  record->target_register = pred;
  record->register_width = 1;
  record->before_bits = before ? 1 : 0;
  record->after_bits = after ? 1 : 0;
  record->mask = (before != after) ? 1 : 0;
}

}  // namespace

void ApplyTransientCorruption(const sim::InstrEvent& event,
                              const TransientFaultParams& params,
                              InjectionRecord* record) {
  record->activated = true;
  record->kernel_name = event.launch.kernel_name;
  record->kernel_count = event.launch.launch_ordinal;
  record->static_index = event.static_index;
  record->opcode = event.instr.opcode;
  record->sm_id = event.lane.sm_id();
  record->lane_id = event.lane.lane_id();

  const std::vector<CorruptionTarget> targets = CandidateTargets(event.instr);
  if (targets.empty()) {
    LOG_INFO << "injection site has no architectural target; fault vanished";
    return;
  }
  const CorruptionTarget target =
      targets[ChooseTargetIndex(targets.size(), params.destination_register)];
  switch (target.kind) {
    case CorruptionTarget::Kind::kGpr32:
      CorruptGpr32(event.lane, target.reg, params, record);
      break;
    case CorruptionTarget::Kind::kGpr64:
      CorruptGpr64(event.lane, target.reg, params, record);
      break;
    case CorruptionTarget::Kind::kPred:
      CorruptPred(event.lane, target.reg, params, record);
      break;
  }
}

}  // namespace nvbitfi::fi
