#include "core/report.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "core/statistics.h"

namespace nvbitfi::fi {
namespace {

std::string OutcomeLine(const char* label, const ProportionEstimate& estimate,
                        std::uint64_t count) {
  return Format("  %-7s %5.1f%%  ±%4.1f  [%4.1f, %4.1f]  (%llu runs)\n", label,
                100.0 * estimate.value, 100.0 * estimate.margin, 100.0 * estimate.lower,
                100.0 * estimate.upper, static_cast<unsigned long long>(count));
}

// Satellite to §IV-B's sizing discussion: the conservative p = 0.5 normal
// margin the campaign was sized for, next to the widest interval the data
// actually achieved — so a reader can tell whether the run count was
// over- or under-provisioned for the observed rates.
std::string SizingLine(const OutcomeCounts& counts, const OutcomeEstimates& estimates,
                       double confidence) {
  const std::uint64_t n = counts.total();
  if (n == 0) return "";
  const double achieved =
      std::max({estimates.sdc.margin, estimates.due.margin, estimates.masked.margin});
  return Format("  sizing: worst-case ±%.1f%% for %llu runs (p 0.5, normal); "
                "achieved ±%.1f%% max (Wilson)\n",
                100.0 * WorstCaseMarginOfError(n, confidence),
                static_cast<unsigned long long>(n), 100.0 * achieved);
}

// Satellite phase accounting (telemetry spans): CPU-seconds summed across
// workers, so the inject/classify columns exceed wall clock on multi-worker
// campaigns, and driver-level phases (checkpoint-record, fast-forward) nest
// inside golden/inject rather than partitioning them.
std::string PhaseBreakdownLines(const telemetry::PhaseBreakdown& phases) {
  if (phases.Empty()) return "";
  std::string out = "phase cpu-seconds:";
  for (int i = 0; i < telemetry::kPhaseCount; ++i) {
    const auto phase = static_cast<telemetry::Phase>(i);
    if (phases.CountFor(phase) == 0) continue;
    out += Format("  %s %.3f", std::string(telemetry::PhaseName(phase)).c_str(),
                  phases.SecondsFor(phase));
  }
  out += "\n";
  return out;
}

std::string SymptomBreakdown(const std::map<std::string, int>& symptoms) {
  std::string out = "symptoms:\n";
  for (const auto& [name, count] : symptoms) {
    out += Format("  %4d  %s\n", count, name.c_str());
  }
  return out;
}

}  // namespace

std::string CsvField(std::string_view value) {
  if (value.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(value);
  }
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string TransientCampaignReport(const TransientCampaignResult& result,
                                    double confidence) {
  std::string out;
  out += Format("=== NVBitFI transient campaign report: %s ===\n",
                result.program.c_str());
  out += Format("injections: %zu (%s profiling)\n", result.injections.size(),
                result.profile.approximate ? "approximate" : "exact");
  if (result.CompletedRuns() < result.injections.size()) {
    out += Format("completed: %llu of %zu experiments%s\n",
                  static_cast<unsigned long long>(result.CompletedRuns()),
                  result.injections.size(),
                  result.cancelled ? " (interrupted — store flushed, resume "
                                     "with --resume)"
                                   : " (partial index range)");
  }
  out += Format("golden: %llu dynamic kernels, %llu thread instructions, "
                "%llu cycles\n",
                static_cast<unsigned long long>(result.golden.dynamic_kernels),
                static_cast<unsigned long long>(result.golden.thread_instructions),
                static_cast<unsigned long long>(result.golden.cycles));
  out += Format("profiled population: %llu dynamic instructions\n\n",
                static_cast<unsigned long long>(result.profile.TotalInstructions()));

  const OutcomeEstimates estimates = EstimateOutcomes(result.counts, confidence);
  out += Format("outcomes at %.0f%% confidence:\n", 100.0 * confidence);
  out += OutcomeLine("SDC", estimates.sdc, result.counts.sdc);
  out += OutcomeLine("DUE", estimates.due, result.counts.due);
  out += OutcomeLine("Masked", estimates.masked, result.counts.masked);
  out += SizingLine(result.counts, estimates, confidence);
  out += Format("  potential DUEs: %llu\n",
                static_cast<unsigned long long>(result.counts.potential_due));
  if (result.trivially_masked > 0) {
    out += Format("  trivially masked (no eligible site): %llu\n",
                  static_cast<unsigned long long>(result.trivially_masked));
  }
  if (result.never_activated > 0) {
    out += Format("  never activated (site not reached): %llu\n",
                  static_cast<unsigned long long>(result.never_activated));
  }
  if (result.statically_pruned > 0) {
    out += Format("  statically pruned (dead site, simulation skipped): %llu\n",
                  static_cast<unsigned long long>(result.statically_pruned));
  }
  if (result.statically_checked > 0) {
    out += Format("  static check: %llu sites checked, %llu statically dead, "
                  "%llu violation%s\n",
                  static_cast<unsigned long long>(result.statically_checked),
                  static_cast<unsigned long long>(result.statically_dead),
                  static_cast<unsigned long long>(result.static_violations.size()),
                  result.static_violations.size() == 1 ? "" : "s");
    for (const StaticViolation& violation : result.static_violations) {
      out += Format("    VIOLATION experiment %llu kernel %s site %u: %s\n",
                    static_cast<unsigned long long>(violation.index),
                    violation.params.kernel_name.c_str(), violation.static_index,
                    violation.detail.c_str());
    }
  }
  out += "\n";

  out += Format("overheads: profiling %.1fx, median injection %.2fx\n",
                result.ProfilingOverhead(), result.MedianInjectionOverhead());
  out += Format("campaign total: %.3f Gcycles\n",
                result.TotalCampaignCycles() * 1e-9);
  if (result.checkpoints_used) {
    out += Format("checkpoint replay: %llu/%zu runs fast-forwarded %llu launches, "
                  "%.3f G thread-instructions of simulation saved, %llu fallbacks\n",
                  static_cast<unsigned long long>(result.checkpointed_runs),
                  result.injections.size(),
                  static_cast<unsigned long long>(result.replay_launches),
                  result.replay_instructions_saved * 1e-9,
                  static_cast<unsigned long long>(result.replay_fallbacks));
  }
  out += Format("injection phase: %.3f s wall clock on %d worker%s (%.1f runs/s)\n",
                result.wall_seconds, result.workers, result.workers == 1 ? "" : "s",
                result.wall_seconds > 0
                    ? static_cast<double>(result.CompletedRuns()) / result.wall_seconds
                    : 0.0);
  out += PhaseBreakdownLines(result.phases);
  out += "\n";

  std::map<std::string, int> symptoms;
  for (std::size_t i = 0; i < result.injections.size(); ++i) {
    if (!result.RunCompleted(i)) continue;
    ++symptoms[std::string(SymptomName(result.injections[i].classification.symptom))];
  }
  out += SymptomBreakdown(symptoms);
  return out;
}

std::string TransientCampaignCsv(const TransientCampaignResult& result) {
  std::string out =
      "index,kernel,kernel_count,instruction_count,arch_state_id,bit_flip_model,"
      "opcode,activated,target,mask,outcome,symptom,potential_due,cycles\n";
  for (std::size_t i = 0; i < result.injections.size(); ++i) {
    if (!result.RunCompleted(i)) continue;
    const InjectionRun& run = result.injections[i];
    const std::string target =
        run.record.corrupted
            ? Format("%s%d", run.record.pred_target ? "P" : "R",
                     run.record.target_register)
            : "";
    out += Format("%zu,%s,%llu,%llu,%d,%d,%s,%d,%s,0x%llx,%s,%s,%d,%llu\n", i,
                  CsvField(run.params.kernel_name).c_str(),
                  static_cast<unsigned long long>(run.params.kernel_count),
                  static_cast<unsigned long long>(run.params.instruction_count),
                  static_cast<int>(run.params.arch_state_id),
                  static_cast<int>(run.params.bit_flip_model),
                  run.record.activated
                      ? std::string(sim::OpcodeName(run.record.opcode)).c_str()
                      : "",
                  run.record.activated ? 1 : 0, target.c_str(),
                  static_cast<unsigned long long>(run.record.mask),
                  std::string(OutcomeName(run.classification.outcome)).c_str(),
                  std::string(SymptomName(run.classification.symptom)).c_str(),
                  run.classification.potential_due ? 1 : 0,
                  static_cast<unsigned long long>(run.artifacts.cycles));
  }
  return out;
}

std::string PermanentCampaignReport(const PermanentCampaignResult& result,
                                    double confidence) {
  std::string out;
  out += Format("=== NVBitFI permanent campaign report: %s ===\n",
                result.program.c_str());
  out += Format("experiments: %zu (executed opcodes: %zu of %d)\n",
                result.runs.size(), result.executed_opcodes, sim::kOpcodeCount);
  if (result.cancelled) {
    out += Format("completed: %llu of %zu experiments (interrupted — store "
                  "flushed, resume with --resume)\n",
                  static_cast<unsigned long long>(result.counts.total()),
                  result.runs.size());
  }
  out += Format("injection phase: %.3f s wall clock on %d worker%s\n",
                result.wall_seconds, result.workers,
                result.workers == 1 ? "" : "s");
  out += PhaseBreakdownLines(result.phases);
  out += "\n";

  const OutcomeEstimates estimates = EstimateOutcomes(result.counts, confidence);
  out += Format("unweighted outcomes at %.0f%% confidence:\n", 100.0 * confidence);
  out += OutcomeLine("SDC", estimates.sdc, result.counts.sdc);
  out += OutcomeLine("DUE", estimates.due, result.counts.due);
  out += OutcomeLine("Masked", estimates.masked, result.counts.masked);
  out += SizingLine(result.counts, estimates, confidence);

  const double total = result.weighted.total();
  if (total > 0) {
    out += "\nweighted by opcode dynamic-instruction share (Fig. 3):\n";
    out += Format("  SDC    %5.1f%%\n", 100.0 * result.weighted.sdc / total);
    out += Format("  DUE    %5.1f%%\n", 100.0 * result.weighted.due / total);
    out += Format("  Masked %5.1f%%\n", 100.0 * result.weighted.masked / total);
  }

  std::map<std::string, int> symptoms;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (!result.RunCompleted(i)) continue;
    ++symptoms[std::string(SymptomName(result.runs[i].classification.symptom))];
  }
  out += "\n" + SymptomBreakdown(symptoms);
  return out;
}

std::string PermanentCampaignCsv(const PermanentCampaignResult& result) {
  std::string out =
      "opcode,sm,lane,mask,activations,weight,outcome,symptom,potential_due,cycles\n";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (!result.RunCompleted(i)) continue;
    const PermanentRun& run = result.runs[i];
    out += Format("%s,%d,%d,0x%x,%llu,%.9f,%s,%s,%d,%llu\n",
                  std::string(sim::OpcodeName(run.params.opcode())).c_str(),
                  run.params.sm_id, run.params.lane_id, run.params.bit_mask,
                  static_cast<unsigned long long>(run.activations), run.weight,
                  std::string(OutcomeName(run.classification.outcome)).c_str(),
                  std::string(SymptomName(run.classification.symptom)).c_str(),
                  run.classification.potential_due ? 1 : 0,
                  static_cast<unsigned long long>(run.artifacts.cycles));
  }
  return out;
}

}  // namespace nvbitfi::fi
