#include "core/outcome.h"

#include "common/strings.h"

namespace nvbitfi::fi {

std::string_view OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "Masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kDue: return "DUE";
  }
  return "?";
}

std::optional<Outcome> OutcomeFromInt(int value) {
  if (value < 0 || value > static_cast<int>(Outcome::kDue)) return std::nullopt;
  return static_cast<Outcome>(value);
}

std::string_view SymptomName(Symptom symptom) {
  switch (symptom) {
    case Symptom::kNone: return "no difference detected";
    case Symptom::kStdoutDiff: return "standard output is different";
    case Symptom::kOutputFileDiff: return "output file is different";
    case Symptom::kAppCheckFailed: return "application-specific check failed";
    case Symptom::kTimeout: return "timeout (monitor detection)";
    case Symptom::kCrash: return "process crash (OS detection)";
    case Symptom::kNonZeroExit: return "non-zero exit status (application detection)";
  }
  return "?";
}

std::optional<Symptom> SymptomFromInt(int value) {
  if (value < 0 || value > static_cast<int>(Symptom::kNonZeroExit)) return std::nullopt;
  return static_cast<Symptom>(value);
}

bool SdcChecker::IsSdc(const RunArtifacts& golden, const RunArtifacts& run) const {
  return golden.stdout_text != run.stdout_text || golden.output_file != run.output_file;
}

Classification Classify(const RunArtifacts& golden, const RunArtifacts& run,
                        const SdcChecker& checker) {
  Classification c;

  // DUE symptoms take precedence: a run that hung or died produced no result.
  if (run.timed_out) {
    c.outcome = Outcome::kDue;
    c.symptom = Symptom::kTimeout;
    return c;
  }
  if (run.crashed) {
    c.outcome = Outcome::kDue;
    c.symptom = Symptom::kCrash;
    return c;
  }
  if (run.exit_code != 0) {
    c.outcome = Outcome::kDue;
    c.symptom = Symptom::kNonZeroExit;
    return c;
  }

  // SDC symptoms.  The program-specific checker is authoritative for output
  // comparison (SPEC-style checkers accept small numeric deviations, so an
  // exact byte diff alone must NOT imply SDC).
  if (run.app_check_failed) {
    c.outcome = Outcome::kSdc;
    c.symptom = Symptom::kAppCheckFailed;
  } else if (checker.IsSdc(golden, run)) {
    c.outcome = Outcome::kSdc;
    c.symptom = golden.stdout_text != run.stdout_text ? Symptom::kStdoutDiff
                                                      : Symptom::kOutputFileDiff;
  } else {
    c.outcome = Outcome::kMasked;
    c.symptom = Symptom::kNone;
  }

  // Potential DUE: the system saw an anomaly the application did not handle.
  c.potential_due = !run.cuda_errors.empty() || !run.dmesg.empty();
  return c;
}

void HarvestContextState(const sim::Context& context, RunArtifacts* artifacts) {
  if (context.last_error() != sim::CuResult::kSuccess) {
    artifacts->cuda_errors.emplace_back(sim::CuResultName(context.last_error()));
    if (context.last_error() == sim::CuResult::kLaunchTimeout) {
      artifacts->timed_out = true;
    }
  }
  for (const sim::DeviceLogEntry& entry : context.device().log().entries()) {
    artifacts->dmesg.push_back(entry.message);
  }
  artifacts->cycles = context.total_cycles();
  artifacts->thread_instructions = context.total_thread_instructions();
  artifacts->dynamic_kernels = context.total_launches();
  artifacts->static_kernels = context.launch_counts().size();
  artifacts->max_launch_thread_instructions = context.max_launch_thread_instructions();
}

double OutcomeCounts::MaskedPct() const {
  return total() == 0 ? 0.0 : 100.0 * static_cast<double>(masked) / static_cast<double>(total());
}
double OutcomeCounts::SdcPct() const {
  return total() == 0 ? 0.0 : 100.0 * static_cast<double>(sdc) / static_cast<double>(total());
}
double OutcomeCounts::DuePct() const {
  return total() == 0 ? 0.0 : 100.0 * static_cast<double>(due) / static_cast<double>(total());
}

void OutcomeCounts::Add(const Classification& c) {
  switch (c.outcome) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kDue: ++due; break;
  }
  if (c.potential_due) ++potential_due;
}

OutcomeCounts& OutcomeCounts::operator+=(const OutcomeCounts& other) {
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  potential_due += other.potential_due;
  return *this;
}

void WeightedOutcomes::Add(const Classification& c, double weight) {
  switch (c.outcome) {
    case Outcome::kMasked: masked += weight; break;
    case Outcome::kSdc: sdc += weight; break;
    case Outcome::kDue: due += weight; break;
  }
  if (c.potential_due) potential_due += weight;
}

WeightedOutcomes& WeightedOutcomes::operator+=(const WeightedOutcomes& other) {
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  potential_due += other.potential_due;
  return *this;
}

}  // namespace nvbitfi::fi
