// Abstraction of a program under fault injection.
//
// A TargetProgram is the host-side application: it loads its GPU modules into
// a Context, allocates and initialises device memory, launches kernels, reads
// results back, and produces observable artifacts (stdout text, an output
// file, an exit code).  The campaign harness attaches NVBitFI tools to the
// context *before* calling Run — the analogue of LD_PRELOADing a tool .so
// into an unmodified binary: the program itself is completely unaware of the
// instrumentation.
#pragma once

#include <string>

#include "core/outcome.h"
#include "sassim/runtime/driver.h"

namespace nvbitfi::fi {

class TargetProgram {
 public:
  virtual ~TargetProgram() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const { return {}; }

  // Runs the full host program.  Implementations fill stdout_text,
  // output_file, exit_code, and the app-level flags (crashed,
  // app_check_failed); the harness harvests CUDA/device-log state afterwards.
  virtual RunArtifacts Run(sim::Context& context) const = 0;

  // Program-specific SDC checking script (§IV-A: "SDC checking scripts must
  // always be provided by the user").  The default is exact comparison.
  virtual const SdcChecker& sdc_checker() const;
};

}  // namespace nvbitfi::fi
