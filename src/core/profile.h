// Program instruction profiles (Figure 1, step 1).
//
// A profile holds, for every *dynamic* kernel, the dynamic instruction count
// of every opcode (summed across all threads, excluding predicated-off
// instructions).  It is the uniform population from which transient injection
// sites are drawn, and it tells permanent campaigns which opcodes a program
// actually executes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fault_model.h"
#include "sassim/isa/instruction.h"
#include "sassim/isa/opcode.h"

namespace nvbitfi::fi {

// Run-length-encoded dynamic site stream entry: `count` consecutive
// guard-true lane events at static instruction `static_index`.
struct SiteStreamEntry {
  std::uint32_t static_index = 0;
  std::uint64_t count = 0;
};

struct KernelProfile {
  std::string kernel_name;
  std::uint64_t kernel_count = 0;  // which dynamic instance of the kernel
  std::array<std::uint64_t, sim::kOpcodeCount> opcode_counts{};

  // Exact-mode only: the launch's guard-true events in issue order, RLE by
  // static instruction.  This is the same event order the transient injector
  // counts, so an instruction_count draw can be resolved to the static
  // instruction it will hit.  Empty in approximate profiles; not serialized.
  std::vector<SiteStreamEntry> site_stream;

  std::uint64_t Total() const;
  std::uint64_t GroupTotal(ArchStateId group) const;
};

struct ProgramProfile {
  std::string program_name;
  bool approximate = false;
  std::vector<KernelProfile> kernels;  // one entry per dynamic kernel, in launch order

  std::uint64_t TotalInstructions() const;
  std::uint64_t GroupTotal(ArchStateId group) const;
  std::uint64_t OpcodeTotal(sim::Opcode op) const;

  // Distinct kernel names (static kernels) and dynamic kernel count.
  std::size_t StaticKernelCount() const;
  std::size_t DynamicKernelCount() const { return kernels.size(); }

  // Opcodes with a non-zero dynamic count — the permanent-fault sweep set
  // ("permanent fault experiments can be skipped for unused opcodes").
  std::vector<sim::Opcode> ExecutedOpcodes() const;

  // Text format: one line per dynamic kernel —
  //   kernel_name kernel_count opcode=count opcode=count ...
  std::string Serialize() const;
  static std::optional<ProgramProfile> Parse(std::string_view text);
};

// Figure 1, step 2: selects an injection site uniformly from the group
// population of `profile` and fills in the full Table II parameter set.
// Returns nullopt when the program executes no instruction in the group.
std::optional<TransientFaultParams> SelectTransientFault(const ProgramProfile& profile,
                                                         ArchStateId group,
                                                         BitFlipModel model, Rng& rng);

// Resolves an instruction_count draw against a kernel's recorded site
// stream: returns the static index of the (instruction_count+1)-th
// guard-true event whose opcode belongs to `group`, or nullopt when the
// stream is absent or the draw exceeds the recorded population.
std::optional<std::uint32_t> ResolveSiteStream(const KernelProfile& kernel,
                                               const std::vector<sim::Instruction>& body,
                                               ArchStateId group,
                                               std::uint64_t instruction_count);

}  // namespace nvbitfi::fi
