// NVBitFI fault models: the parameter sets of Table II (transient) and
// Table III (permanent), plus the instruction-group and bit-pattern semantics
// they reference.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sassim/isa/instruction.h"

namespace nvbitfi::fi {

// Table II "arch state id": the instruction subset eligible for injection.
// Integer values match the paper's numbering (1-based).
enum class ArchStateId : std::uint8_t {
  kGFp64 = 1,    // FP64 arithmetic instructions
  kGFp32 = 2,    // FP32 arithmetic instructions
  kGLd = 3,      // instructions that read from memory
  kGPr = 4,      // instructions that write to predicate registers only
  kGNoDest = 5,  // instructions with no destination register
  kGOthers = 6,  // everything not covered by 1-5
  kGGppr = 7,    // writes GP and/or predicate registers: all - G_NODEST
  kGGp = 8,      // writes general-purpose registers: all - G_NODEST - G_PR
};

std::string_view ArchStateIdName(ArchStateId id);
std::optional<ArchStateId> ArchStateIdFromInt(int value);

// Table II "bit-flip model".  Integer values match the paper's numbering.
enum class BitFlipModel : std::uint8_t {
  kFlipSingleBit = 1,
  kFlipTwoBits = 2,   // two adjacent bits
  kRandomValue = 3,
  kZeroValue = 4,
};

std::string_view BitFlipModelName(BitFlipModel model);
std::optional<BitFlipModel> BitFlipModelFromInt(int value);

// Group membership of an opcode (G_LD, G_PR, ... partitions / unions).
bool OpcodeInGroup(sim::Opcode op, ArchStateId group);

// Table II: the full transient-fault specification.  The paper stores these
// one per line in a parameter file; Serialize/Parse reproduce that format.
struct TransientFaultParams {
  ArchStateId arch_state_id = ArchStateId::kGGp;
  BitFlipModel bit_flip_model = BitFlipModel::kFlipSingleBit;
  std::string kernel_name;
  std::uint64_t kernel_count = 0;       // n: the (n+1)th dynamic kernel instance
  std::uint64_t instruction_count = 0;  // n: the (n+1)th eligible dynamic instruction
  double destination_register = 0.0;    // [0,1): picks among the dest registers
  double bit_pattern_value = 0.0;       // [0,1): picks the bit-error mask

  std::string Serialize() const;
  static std::optional<TransientFaultParams> Parse(std::string_view text);

  bool operator==(const TransientFaultParams&) const = default;
};

// Table III: the permanent-fault specification.
struct PermanentFaultParams {
  int sm_id = 0;                  // 0..N-1
  int lane_id = 0;                // 0..31
  std::uint32_t bit_mask = 1;     // XOR mask
  int opcode_id = 0;              // 0..170 (Volta: 171 opcodes)

  sim::Opcode opcode() const { return static_cast<sim::Opcode>(opcode_id); }

  std::string Serialize() const;
  static std::optional<PermanentFaultParams> Parse(std::string_view text);

  bool operator==(const PermanentFaultParams&) const = default;
};

// Extension (paper §V "Intermittent faults"): a permanent-style fault that is
// only active during bursts of a random on/off process.
struct IntermittentFaultParams {
  PermanentFaultParams base;
  double duty_cycle = 0.5;          // long-run fraction of time the fault is active
  double mean_burst_events = 16.0;  // expected eligible events per active burst
  std::uint64_t seed = 1;

  std::string Serialize() const;
  static std::optional<IntermittentFaultParams> Parse(std::string_view text);

  bool operator==(const IntermittentFaultParams&) const = default;
};

// Table II bit-pattern semantics: the 32-bit XOR mask derived from the model
// and the [0,1) bit-pattern value.
//   FLIP_SINGLE_BIT: 0x1 << (32 * value)
//   FLIP_TWO_BITS:   0x3 << (31 * value)
//   RANDOM_VALUE:    0xffffffff * value  (applied so the register BECOMES it)
//   ZERO_VALUE:      mask equals the original value, so XOR produces 0
std::uint32_t InjectionMask32(BitFlipModel model, double value, std::uint32_t original);

// 64-bit variant for register-pair destinations (FP64 results, wide loads).
std::uint64_t InjectionMask64(BitFlipModel model, double value, std::uint64_t original);

}  // namespace nvbitfi::fi
