#include "core/profile.h"

#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::fi {

std::uint64_t KernelProfile::Total() const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : opcode_counts) n += c;
  return n;
}

std::uint64_t KernelProfile::GroupTotal(ArchStateId group) const {
  std::uint64_t n = 0;
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    if (OpcodeInGroup(static_cast<sim::Opcode>(op), group)) {
      n += opcode_counts[static_cast<std::size_t>(op)];
    }
  }
  return n;
}

std::uint64_t ProgramProfile::TotalInstructions() const {
  std::uint64_t n = 0;
  for (const KernelProfile& k : kernels) n += k.Total();
  return n;
}

std::uint64_t ProgramProfile::GroupTotal(ArchStateId group) const {
  std::uint64_t n = 0;
  for (const KernelProfile& k : kernels) n += k.GroupTotal(group);
  return n;
}

std::uint64_t ProgramProfile::OpcodeTotal(sim::Opcode op) const {
  std::uint64_t n = 0;
  for (const KernelProfile& k : kernels) {
    n += k.opcode_counts[static_cast<std::size_t>(op)];
  }
  return n;
}

std::size_t ProgramProfile::StaticKernelCount() const {
  std::set<std::string> names;
  for (const KernelProfile& k : kernels) names.insert(k.kernel_name);
  return names.size();
}

std::vector<sim::Opcode> ProgramProfile::ExecutedOpcodes() const {
  std::vector<sim::Opcode> out;
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    if (OpcodeTotal(static_cast<sim::Opcode>(op)) > 0) {
      out.push_back(static_cast<sim::Opcode>(op));
    }
  }
  return out;
}

std::string ProgramProfile::Serialize() const {
  std::string out;
  out += Format("# nvbitfi profile program=%s mode=%s\n", program_name.c_str(),
                approximate ? "approximate" : "exact");
  for (const KernelProfile& k : kernels) {
    out += k.kernel_name;
    out += Format(" %llu", static_cast<unsigned long long>(k.kernel_count));
    for (int op = 0; op < sim::kOpcodeCount; ++op) {
      const std::uint64_t c = k.opcode_counts[static_cast<std::size_t>(op)];
      if (c == 0) continue;
      out += Format(" %s=%llu",
                    std::string(sim::OpcodeName(static_cast<sim::Opcode>(op))).c_str(),
                    static_cast<unsigned long long>(c));
    }
    out += "\n";
  }
  return out;
}

std::optional<ProgramProfile> ProgramProfile::Parse(std::string_view text) {
  ProgramProfile profile;
  bool saw_header = false;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string_view line = TrimWhitespace(raw_line);
    if (line.empty()) continue;
    if (line.front() == '#') {
      // Header: "# nvbitfi profile program=<name> mode=<exact|approximate>".
      for (const std::string& word : SplitWhitespace(line)) {
        if (StartsWith(word, "program=")) profile.program_name = word.substr(8);
        if (word == "mode=approximate") profile.approximate = true;
      }
      saw_header = true;
      continue;
    }
    const auto fields = SplitWhitespace(line);
    if (fields.size() < 2) return std::nullopt;
    KernelProfile k;
    k.kernel_name = fields[0];
    if (!ParseUint64(fields[1], &k.kernel_count)) return std::nullopt;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto kv = Split(fields[i], '=');
      if (kv.size() != 2) return std::nullopt;
      const auto op = sim::OpcodeFromName(kv[0]);
      std::uint64_t count = 0;
      if (!op || !ParseUint64(kv[1], &count)) return std::nullopt;
      k.opcode_counts[static_cast<std::size_t>(*op)] = count;
    }
    profile.kernels.push_back(std::move(k));
  }
  if (!saw_header && profile.kernels.empty()) return std::nullopt;
  return profile;
}

std::optional<TransientFaultParams> SelectTransientFault(const ProgramProfile& profile,
                                                         ArchStateId group,
                                                         BitFlipModel model, Rng& rng) {
  const std::uint64_t total = profile.GroupTotal(group);
  if (total == 0) return std::nullopt;

  // Uniform index into the group population, then walk the dynamic kernels to
  // translate it into the paper's <kernel_name, kernel_count,
  // instruction_count> tuple.
  std::uint64_t n = rng.UniformInt(0, total - 1);
  for (const KernelProfile& k : profile.kernels) {
    const std::uint64_t here = k.GroupTotal(group);
    if (n < here) {
      TransientFaultParams params;
      params.arch_state_id = group;
      params.bit_flip_model = model;
      params.kernel_name = k.kernel_name;
      params.kernel_count = k.kernel_count;
      params.instruction_count = n;
      params.destination_register = rng.UniformUnit();
      params.bit_pattern_value = rng.UniformUnit();
      return params;
    }
    n -= here;
  }
  NVBITFI_CHECK_MSG(false, "profile group totals are inconsistent");
  return std::nullopt;
}

std::optional<std::uint32_t> ResolveSiteStream(const KernelProfile& kernel,
                                               const std::vector<sim::Instruction>& body,
                                               ArchStateId group,
                                               std::uint64_t instruction_count) {
  std::uint64_t remaining = instruction_count;
  for (const SiteStreamEntry& entry : kernel.site_stream) {
    if (entry.static_index >= body.size()) return std::nullopt;
    if (!OpcodeInGroup(body[entry.static_index].opcode, group)) continue;
    if (remaining < entry.count) return entry.static_index;
    remaining -= entry.count;
  }
  return std::nullopt;
}

}  // namespace nvbitfi::fi
