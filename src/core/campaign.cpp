#include "core/campaign.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>

#include "common/check.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/parallel.h"
#include "core/statistics.h"

namespace nvbitfi::fi {
namespace {

double Overhead(std::uint64_t cycles, std::uint64_t golden_cycles) {
  return golden_cycles == 0 ? 0.0
                            : static_cast<double>(cycles) / static_cast<double>(golden_cycles);
}

// Pre-forks one independent stream per experiment on the driving thread.
// The fork sequence is exactly the serial campaign's, so experiment i sees
// the same stream no matter how many workers later execute it.
std::vector<Rng> ForkStreams(Rng& rng, std::size_t count) {
  std::vector<Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(rng.Fork());
  return streams;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// The record a statically-pruned run would have produced: the injector
// always activates (exact site streams resolve within the recorded
// population) and corrupts the verdict's target; the corruption is dead, so
// no before/after bits are known (the run never executed).
InjectionRecord SynthesizeMaskedRecord(const TransientFaultParams& params,
                                       const StaticSiteVerdict& verdict) {
  InjectionRecord record;
  record.activated = true;
  record.kernel_name = params.kernel_name;
  record.kernel_count = params.kernel_count;
  record.static_index = verdict.static_index;
  record.opcode = verdict.opcode;
  record.corrupted = verdict.has_target;
  record.pred_target = verdict.pred_target;
  record.target_register = verdict.target_register;
  record.register_width = verdict.register_width;
  return record;
}

void WarnIfGoldenNotClean(const std::string& program, const RunArtifacts& golden) {
  if (golden.exit_code != 0 || golden.crashed || !golden.cuda_errors.empty()) {
    LOG_WARN << "golden run of '" << program << "' is not clean (exit "
             << golden.exit_code << ", " << golden.cuda_errors.size() << " CUDA errors)";
  }
}

}  // namespace

TransientDraw DrawTransientExperiment(const ProgramProfile& profile,
                                      ArchStateId group, BitFlipModel flip_model,
                                      bool randomize_flip_model, Rng& rng) {
  TransientDraw draw;
  draw.model =
      randomize_flip_model
          ? *BitFlipModelFromInt(static_cast<int>(rng.UniformInt(1, 4)))
          : flip_model;
  draw.params = SelectTransientFault(profile, group, draw.model, rng);
  return draw;
}

std::vector<TransientDraw> PreviewTransientFaults(
    const ProgramProfile& profile, const TransientCampaignConfig& config,
    const std::string& program_name) {
  const std::size_t n =
      config.num_injections > 0 ? static_cast<std::size_t>(config.num_injections) : 0;
  Rng rng(Rng::SeedFrom(config.seed, program_name));
  std::vector<Rng> streams = ForkStreams(rng, n);
  std::vector<TransientDraw> draws;
  draws.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    draws.push_back(DrawTransientExperiment(profile, config.group,
                                            config.flip_model,
                                            config.randomize_flip_model,
                                            streams[i]));
  }
  return draws;
}

double TransientCampaignResult::ProfilingOverhead() const {
  return Overhead(profiling_run.cycles, golden.cycles);
}

std::uint64_t TransientCampaignResult::CompletedRuns() const {
  if (completed.empty()) return injections.size();
  std::uint64_t total = 0;
  for (const std::uint8_t c : completed) total += c != 0 ? 1 : 0;
  return total;
}

double TransientCampaignResult::MedianInjectionOverhead() const {
  std::vector<double> overheads;
  overheads.reserve(injections.size());
  for (std::size_t i = 0; i < injections.size(); ++i) {
    const InjectionRun& run = injections[i];
    if (!RunCompleted(i)) continue;
    if (run.trivially_masked || run.statically_masked) continue;  // no run happened
    overheads.push_back(Overhead(run.artifacts.cycles, golden.cycles));
  }
  return Median(std::move(overheads));
}

std::uint64_t TransientCampaignResult::TotalInjectionCycles() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < injections.size(); ++i) {
    if (RunCompleted(i)) total += injections[i].artifacts.cycles;
  }
  return total;
}

std::uint64_t TransientCampaignResult::TotalCampaignCycles() const {
  return profiling_run.cycles + TotalInjectionCycles();
}

double PermanentCampaignResult::MedianInjectionOverhead(std::uint64_t golden_cycles) const {
  std::vector<double> overheads;
  overheads.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!RunCompleted(i)) continue;
    overheads.push_back(Overhead(runs[i].artifacts.cycles, golden_cycles));
  }
  return Median(std::move(overheads));
}

std::uint64_t PermanentCampaignResult::TotalCampaignCycles() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (RunCompleted(i)) total += runs[i].artifacts.cycles;
  }
  return total;
}

RunArtifacts CampaignRunner::Execute(nvbit::Tool* tool, const sim::DeviceProps& device,
                                     std::uint64_t watchdog) const {
  return Execute(tool, device, watchdog, /*checkpoints=*/nullptr,
                 /*stop_before_global_ordinal=*/0, /*replay_stats=*/nullptr);
}

RunArtifacts CampaignRunner::Execute(nvbit::Tool* tool, const sim::DeviceProps& device,
                                     std::uint64_t watchdog,
                                     const sim::CheckpointStream* checkpoints,
                                     std::uint64_t stop_before_global_ordinal,
                                     sim::ReplayStats* replay_stats) const {
  sim::Context context(device);
  context.set_launch_watchdog(watchdog);
  if (checkpoints != nullptr) {
    context.ReplayCheckpoints(checkpoints, stop_before_global_ordinal, replay_stats);
  }
  std::optional<nvbit::Runtime> runtime;
  if (tool != nullptr) runtime.emplace(context, *tool);
  RunArtifacts artifacts = program_.Run(context);
  HarvestContextState(context, &artifacts);
  return artifacts;
}

RunArtifacts CampaignRunner::RunGolden(const sim::DeviceProps& device) const {
  RunArtifacts golden = Execute(nullptr, device, /*watchdog=*/0);
  WarnIfGoldenNotClean(program_.name(), golden);
  return golden;
}

RunCache::GoldenEntry CampaignRunner::RunGoldenCheckpointed(
    const sim::DeviceProps& device) const {
  auto stream = std::make_shared<sim::CheckpointStream>();
  sim::Context context(device);
  context.RecordCheckpoints(stream.get());
  RunCache::GoldenEntry entry;
  entry.run = program_.Run(context);
  HarvestContextState(context, &entry.run);
  WarnIfGoldenNotClean(program_.name(), entry.run);
  entry.checkpoints = std::move(stream);
  return entry;
}

ProgramProfile CampaignRunner::RunProfiler(ProfilerTool::Mode mode,
                                           const sim::DeviceProps& device,
                                           RunArtifacts* profiling_artifacts) const {
  ProfilerTool profiler(program_.name(), mode);
  RunArtifacts artifacts = Execute(&profiler, device, /*watchdog=*/0);
  if (profiling_artifacts != nullptr) *profiling_artifacts = std::move(artifacts);
  return profiler.TakeProfile();
}

RunArtifacts CampaignRunner::Golden(const sim::DeviceProps& device) const {
  if (cache_ == nullptr) return RunGolden(device);
  return cache_->Golden(program_.name(), device, [&] { return RunGolden(device); });
}

RunCache::GoldenEntry CampaignRunner::GoldenCheckpointed(
    const sim::DeviceProps& device) const {
  if (cache_ == nullptr) return RunGoldenCheckpointed(device);
  return cache_->GoldenCheckpointed(program_.name(), device,
                                    [&] { return RunGoldenCheckpointed(device); });
}

ProgramProfile CampaignRunner::Profile(ProfilerTool::Mode mode,
                                       const sim::DeviceProps& device,
                                       RunArtifacts* profiling_artifacts) const {
  if (cache_ == nullptr) return RunProfiler(mode, device, profiling_artifacts);
  RunCache::ProfileEntry entry =
      cache_->Profile(program_.name(), mode, device, [&] {
        RunCache::ProfileEntry fresh;
        fresh.profile = RunProfiler(mode, device, &fresh.run);
        return fresh;
      });
  if (profiling_artifacts != nullptr) *profiling_artifacts = std::move(entry.run);
  return std::move(entry.profile);
}

TransientCampaignResult CampaignRunner::RunTransientCampaign(
    const TransientCampaignConfig& config) const {
  TransientCampaignResult result;
  result.program = program_.name();

  // Phase accounting: the accumulator is installed thread-locally here (the
  // driving thread runs golden + profile, and the driver's checkpoint-record
  // span fires inside the golden run) and again inside each worker task, so
  // nested driver-level spans attribute to this campaign without any
  // signature changes.  Spans never touch the Rng path.
  telemetry::PhaseAccumulator phase_accumulator;
  telemetry::ScopedAccumulator install_accumulator(&phase_accumulator);

  // Figure 1 step 0: the golden run provides reference outputs, the
  // uninstrumented cycle baseline, and the watchdog calibration.  With
  // checkpoints enabled it also records the per-launch checkpoint stream the
  // injection runs below fast-forward from.
  std::shared_ptr<const sim::CheckpointStream> checkpoints;
  {
    const telemetry::ScopedPhase span(telemetry::Phase::kGolden);
    if (config.checkpoints) {
      RunCache::GoldenEntry entry = GoldenCheckpointed(config.device);
      result.golden = std::move(entry.run);
      checkpoints = std::move(entry.checkpoints);
      result.checkpoints_used = true;
    } else {
      result.golden = Golden(config.device);
    }
  }
  const std::uint64_t watchdog =
      config.watchdog_multiplier *
      std::max<std::uint64_t>(result.golden.max_launch_thread_instructions, 1000);

  // Step 1: profiling.
  {
    const telemetry::ScopedPhase span(telemetry::Phase::kProfile);
    result.profile = Profile(config.profiling, config.device, &result.profiling_run);
  }

  // Steps 2-4, once per injection experiment, distributed over the pool.
  const std::size_t n =
      config.num_injections > 0 ? static_cast<std::size_t>(config.num_injections) : 0;
  // Shard range / adaptive index set: every stream below is still forked,
  // but only the selected indexes execute (see TransientCampaignConfig).
  const std::size_t begin = std::min(config.index_begin, n);
  const std::size_t end =
      config.index_end == 0 ? n : std::min(config.index_end, n);
  std::vector<std::size_t> todo;
  if (config.index_set != nullptr) {
    todo.reserve(config.index_set->size());
    for (const std::size_t i : *config.index_set) {
      NVBITFI_CHECK_MSG(i < n, "index_set entry " << i << " >= " << n);
      todo.push_back(i);
    }
  } else {
    todo.reserve(end > begin ? end - begin : 0);
    for (std::size_t i = begin; i < end; ++i) todo.push_back(i);
  }
  Rng rng(Rng::SeedFrom(config.seed, program_.name()));
  std::vector<Rng> streams = ForkStreams(rng, n);
  result.injections.resize(n);
  result.completed.assign(n, 0);

  // Per-experiment replay accounting, merged after the pool drains.  Kept
  // out of InjectionRun deliberately: stored records must be bit-identical
  // between checkpointed and uncheckpointed campaigns.
  std::vector<sim::ReplayStats> replay(n);
  std::vector<std::uint8_t> replayed(n, 0);

  WorkerPool pool(config.num_workers);
  result.workers = pool.workers();
  const auto start = std::chrono::steady_clock::now();
  pool.ParallelFor(todo.size(), [&](std::size_t task) {
    const telemetry::ScopedAccumulator install(&phase_accumulator);
    const std::size_t i = todo[task];
    InjectionRun& run = result.injections[i];
    // Cancellation (SIGINT/SIGTERM): leave the slot unclaimed — the
    // completed mask excludes it from counts, and a resumed campaign will
    // run it later.
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      return;
    }
    result.completed[i] = 1;
    // Resumed experiment: the interrupted campaign already ran (and
    // persisted) this index; adopt its result without re-executing.
    if (config.preloaded != nullptr) {
      const auto it = config.preloaded->find(i);
      if (it != config.preloaded->end()) {
        run = it->second;
        return;
      }
    }
    const TransientDraw draw = DrawTransientExperiment(
        result.profile, config.group, config.flip_model,
        config.randomize_flip_model, streams[i]);
    const std::optional<TransientFaultParams>& params = draw.params;
    if (!params.has_value()) {
      // The program executes nothing in this group; the experiment is a
      // trivially masked run (no fault could be placed, nothing executed, so
      // it contributes zero cycles to the Fig. 5 campaign total).
      run.trivially_masked = true;
      run.classification = Classification{};
      if (config.on_run_complete) config.on_run_complete(i, run);
      return;
    }
    run.params = *params;

    // --static-prune: skip simulating sites the oracle proves dead — either
    // the whole target (statically_dead) or the specific bits this draw's
    // flip mask touches (flip_dead).  The synthesized classification is
    // exactly what the simulation would have produced (the soundness
    // contract; --static-check campaigns verify it), so outcome
    // distributions are bit-identical to an unpruned campaign.
    if (config.static_mode == StaticSiteMode::kPrune && config.static_oracle != nullptr) {
      const StaticSiteVerdict verdict =
          config.static_oracle->Evaluate(result.profile, run.params);
      if (verdict.resolved && (verdict.statically_dead || verdict.flip_dead)) {
        run.statically_masked = true;
        run.record = SynthesizeMaskedRecord(run.params, verdict);
        run.classification = Classification{};
        if (config.on_run_complete) config.on_run_complete(i, run);
        return;
      }
    }

    std::unique_ptr<TransientExperimentTool> tool =
        config.tool_factory ? config.tool_factory(i, run.params)
                            : std::make_unique<TransientInjectorTool>(run.params);
    // Fast-forward the golden prefix: every launch before the target launch
    // is state-identical to the recording.  A target the golden run never
    // executed (no global ordinal) replays nothing — full live run.
    std::optional<std::uint64_t> target_ordinal;
    if (checkpoints != nullptr) {
      target_ordinal =
          checkpoints->GlobalOrdinalOf(run.params.kernel_name, run.params.kernel_count);
    }
    {
      const telemetry::ScopedPhase span(telemetry::Phase::kInject);
      if (target_ordinal.has_value()) {
        replayed[i] = 1;
        run.artifacts = Execute(tool.get(), config.device, watchdog, checkpoints.get(),
                                *target_ordinal, &replay[i]);
      } else {
        run.artifacts = Execute(tool.get(), config.device, watchdog);
      }
    }
    run.record = tool->record();
    run.propagation = tool->TakePropagation();
    {
      const telemetry::ScopedPhase span(telemetry::Phase::kClassify);
      run.classification =
          Classify(result.golden, run.artifacts, program_.sdc_checker());
    }
    if (config.on_run_replay) {
      config.on_run_replay(i, replayed[i] != 0 ? &replay[i] : nullptr);
    }
    if (config.on_run_complete) config.on_run_complete(i, run);
  });
  result.wall_seconds = SecondsSince(start);
  if (config.cancel != nullptr && config.cancel->load(std::memory_order_relaxed)) {
    for (const std::size_t i : todo) {
      if (result.completed[i] == 0) {
        result.cancelled = true;  // at least one experiment was cut off
        break;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (replayed[i] == 0) continue;
    ++result.checkpointed_runs;
    result.replay_launches += replay[i].launches_fast_forwarded;
    result.replay_instructions_saved += replay[i].thread_instructions_saved;
    result.replay_fallbacks += replay[i].host_divergences + replay[i].watchdog_fallbacks;
  }

  result.phases = phase_accumulator.Capture();
  if (telemetry::TelemetryEnabled()) {
    telemetry::Registry& registry = telemetry::GlobalRegistry();
    registry.GetCounter("nvbitfi_campaigns_total").Increment();
    registry.GetCounter("nvbitfi_experiments_completed_total")
        .Add(result.CompletedRuns());
    registry.GetCounter("nvbitfi_replay_fastforwarded_launches_total")
        .Add(result.replay_launches);
    registry.GetCounter("nvbitfi_replay_fallbacks_total").Add(result.replay_fallbacks);
  }

  // Merge outcomes in experiment order (workers finish in arbitrary order).
  // Out-of-range and cancellation-skipped slots are excluded — their
  // default-constructed runs are not results.  --static-check verdicts are
  // re-evaluated here rather than captured on the workers: the oracle is
  // deterministic, and this also covers preloaded (resumed) runs, which
  // never visited a worker in this process.
  for (std::size_t i = 0; i < result.injections.size(); ++i) {
    if (!result.RunCompleted(i)) continue;
    const InjectionRun& run = result.injections[i];
    result.counts.Add(run.classification);
    if (run.trivially_masked) {
      ++result.trivially_masked;
    } else if (run.statically_masked) {
      ++result.statically_pruned;
    } else if (!run.record.activated) {
      ++result.never_activated;
    }
    if (config.static_mode == StaticSiteMode::kCheck && config.static_oracle != nullptr &&
        !run.trivially_masked && !run.statically_masked) {
      const StaticSiteVerdict verdict =
          config.static_oracle->Evaluate(result.profile, run.params);
      if (!verdict.resolved) continue;
      ++result.statically_checked;
      if (verdict.statically_dead || verdict.flip_dead) ++result.statically_dead;
      auto add_violation = [&](std::string detail) {
        StaticViolation v;
        v.index = i;
        v.params = run.params;
        v.static_index = verdict.static_index;
        v.classification = run.classification;
        v.detail = std::move(detail);
        result.static_violations.push_back(std::move(v));
      };
      if (run.record.activated && run.record.static_index != verdict.static_index) {
        add_violation(Format("site resolution mismatch: injector hit static index %u, "
                             "oracle resolved %u",
                             run.record.static_index, verdict.static_index));
      }
      if ((verdict.statically_dead || verdict.flip_dead) &&
          run.classification.outcome != Outcome::kMasked) {
        add_violation(Format("statically %s site classified %s",
                             verdict.statically_dead ? "dead" : "bit-dead",
                             std::string(OutcomeName(run.classification.outcome)).c_str()));
      }
    }
  }
  return result;
}

PermanentCampaignResult CampaignRunner::RunPermanentCampaign(
    const PermanentCampaignConfig& config, const ProgramProfile& profile) const {
  PermanentCampaignResult result;
  result.program = program_.name();

  // A device with no SMs can neither run nor host a fault; clamp to one SM
  // so the executor accepts it and the uniform SM draw below cannot wrap
  // (num_sms - 1 underflows a u64 range otherwise).
  sim::DeviceProps device = config.device;
  device.num_sms = std::max(device.num_sms, 1);

  telemetry::PhaseAccumulator phase_accumulator;
  telemetry::ScopedAccumulator install_accumulator(&phase_accumulator);

  std::optional<RunArtifacts> golden_run;
  {
    const telemetry::ScopedPhase span(telemetry::Phase::kGolden);
    golden_run = Golden(device);
  }
  const RunArtifacts& golden = *golden_run;
  const std::uint64_t watchdog =
      config.watchdog_multiplier *
      std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

  std::vector<sim::Opcode> opcodes;
  if (config.only_executed_opcodes) {
    opcodes = profile.ExecutedOpcodes();
  } else {
    opcodes.reserve(static_cast<std::size_t>(sim::kOpcodeCount));
    for (int op = 0; op < sim::kOpcodeCount; ++op) {
      opcodes.push_back(static_cast<sim::Opcode>(op));
    }
  }
  result.executed_opcodes = profile.ExecutedOpcodes().size();

  const double total_instructions =
      static_cast<double>(std::max<std::uint64_t>(profile.TotalInstructions(), 1));
  const std::uint64_t num_sms = static_cast<std::uint64_t>(device.num_sms);

  Rng rng(Rng::SeedFrom(config.seed, program_.name() + "/permanent"));
  std::vector<Rng> streams = ForkStreams(rng, opcodes.size());
  result.runs.resize(opcodes.size());

  WorkerPool pool(config.num_workers);
  result.workers = pool.workers();
  const auto start = std::chrono::steady_clock::now();
  result.completed.assign(opcodes.size(), 0);
  pool.ParallelFor(opcodes.size(), [&](std::size_t i) {
    const telemetry::ScopedAccumulator install(&phase_accumulator);
    PermanentRun& run = result.runs[i];
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_relaxed)) {
      return;
    }
    result.completed[i] = 1;
    if (config.preloaded != nullptr) {
      const auto it = config.preloaded->find(i);
      if (it != config.preloaded->end()) {
        run = it->second;
        return;
      }
    }
    Rng& experiment_rng = streams[i];
    const sim::Opcode opcode = opcodes[i];
    run.params.opcode_id = static_cast<int>(opcode);
    run.params.sm_id = config.sm_id >= 0
                           ? config.sm_id
                           : static_cast<int>(experiment_rng.UniformInt(0, num_sms - 1));
    run.params.lane_id = static_cast<int>(experiment_rng.UniformInt(0, sim::kWarpSize - 1));
    if (config.fixed_mask != 0) {
      run.params.bit_mask = config.fixed_mask;
    } else {
      // Table III's mask is an arbitrary XOR pattern (a stuck functional
      // unit garbles many bits, not one); draw a random non-zero mask.
      run.params.bit_mask = experiment_rng.Bits32();
      if (run.params.bit_mask == 0) run.params.bit_mask = 1;
    }
    run.weight = static_cast<double>(profile.OpcodeTotal(opcode)) / total_instructions;

    PermanentInjectorTool injector(run.params);
    {
      const telemetry::ScopedPhase span(telemetry::Phase::kInject);
      run.artifacts = Execute(&injector, device, watchdog);
    }
    run.activations = injector.activations();
    {
      const telemetry::ScopedPhase span(telemetry::Phase::kClassify);
      run.classification = Classify(golden, run.artifacts, program_.sdc_checker());
    }
    if (config.on_run_complete) config.on_run_complete(i, run);
  });
  result.wall_seconds = SecondsSince(start);
  result.phases = phase_accumulator.Capture();
  if (config.cancel != nullptr && config.cancel->load(std::memory_order_relaxed)) {
    for (const std::uint8_t c : result.completed) {
      if (c == 0) {
        result.cancelled = true;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (!result.RunCompleted(i)) continue;
    const PermanentRun& run = result.runs[i];
    result.counts.Add(run.classification);
    result.weighted.Add(run.classification, run.weight);
  }
  return result;
}

}  // namespace nvbitfi::fi
