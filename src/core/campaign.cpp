#include "core/campaign.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "common/log.h"

namespace nvbitfi::fi {
namespace {

double Overhead(std::uint64_t cycles, std::uint64_t golden_cycles) {
  return golden_cycles == 0 ? 0.0
                            : static_cast<double>(cycles) / static_cast<double>(golden_cycles);
}

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

}  // namespace

double TransientCampaignResult::ProfilingOverhead() const {
  return Overhead(profiling_run.cycles, golden.cycles);
}

double TransientCampaignResult::MedianInjectionOverhead() const {
  std::vector<double> overheads;
  overheads.reserve(injections.size());
  for (const InjectionRun& run : injections) {
    overheads.push_back(Overhead(run.artifacts.cycles, golden.cycles));
  }
  return MedianOf(std::move(overheads));
}

std::uint64_t TransientCampaignResult::TotalInjectionCycles() const {
  std::uint64_t total = 0;
  for (const InjectionRun& run : injections) total += run.artifacts.cycles;
  return total;
}

std::uint64_t TransientCampaignResult::TotalCampaignCycles() const {
  return profiling_run.cycles + TotalInjectionCycles();
}

double PermanentCampaignResult::MedianInjectionOverhead(std::uint64_t golden_cycles) const {
  std::vector<double> overheads;
  overheads.reserve(runs.size());
  for (const PermanentRun& run : runs) {
    overheads.push_back(Overhead(run.artifacts.cycles, golden_cycles));
  }
  return MedianOf(std::move(overheads));
}

std::uint64_t PermanentCampaignResult::TotalCampaignCycles() const {
  std::uint64_t total = 0;
  for (const PermanentRun& run : runs) total += run.artifacts.cycles;
  return total;
}

RunArtifacts CampaignRunner::Execute(nvbit::Tool* tool, const sim::DeviceProps& device,
                                     std::uint64_t watchdog) const {
  sim::Context context(device);
  context.set_launch_watchdog(watchdog);
  std::optional<nvbit::Runtime> runtime;
  if (tool != nullptr) runtime.emplace(context, *tool);
  RunArtifacts artifacts = program_.Run(context);
  HarvestContextState(context, &artifacts);
  return artifacts;
}

RunArtifacts CampaignRunner::RunGolden(const sim::DeviceProps& device) const {
  RunArtifacts golden = Execute(nullptr, device, /*watchdog=*/0);
  if (golden.exit_code != 0 || golden.crashed || !golden.cuda_errors.empty()) {
    LOG_WARN << "golden run of '" << program_.name() << "' is not clean (exit "
             << golden.exit_code << ", " << golden.cuda_errors.size() << " CUDA errors)";
  }
  return golden;
}

ProgramProfile CampaignRunner::RunProfiler(ProfilerTool::Mode mode,
                                           const sim::DeviceProps& device,
                                           RunArtifacts* profiling_artifacts) const {
  ProfilerTool profiler(program_.name(), mode);
  RunArtifacts artifacts = Execute(&profiler, device, /*watchdog=*/0);
  if (profiling_artifacts != nullptr) *profiling_artifacts = std::move(artifacts);
  return profiler.TakeProfile();
}

TransientCampaignResult CampaignRunner::RunTransientCampaign(
    const TransientCampaignConfig& config) const {
  TransientCampaignResult result;
  result.program = program_.name();

  // Figure 1 step 0: the golden run provides reference outputs, the
  // uninstrumented cycle baseline, and the watchdog calibration.
  result.golden = RunGolden(config.device);
  const std::uint64_t watchdog =
      config.watchdog_multiplier *
      std::max<std::uint64_t>(result.golden.max_launch_thread_instructions, 1000);

  // Step 1: profiling.
  result.profile = RunProfiler(config.profiling, config.device, &result.profiling_run);

  // Steps 2-4, once per injection experiment.
  Rng rng(Rng::SeedFrom(config.seed, program_.name()));
  for (int i = 0; i < config.num_injections; ++i) {
    Rng experiment_rng = rng.Fork();
    const BitFlipModel model =
        config.randomize_flip_model
            ? *BitFlipModelFromInt(static_cast<int>(experiment_rng.UniformInt(1, 4)))
            : config.flip_model;

    InjectionRun run;
    const std::optional<TransientFaultParams> params =
        SelectTransientFault(result.profile, config.group, model, experiment_rng);
    if (!params.has_value()) {
      // The program executes nothing in this group; the experiment is a
      // trivially masked run (no fault could be placed).
      run.artifacts = result.golden;
      run.classification = Classification{};
      result.counts.Add(run.classification);
      result.injections.push_back(std::move(run));
      continue;
    }
    run.params = *params;

    TransientInjectorTool injector(run.params);
    run.artifacts = Execute(&injector, config.device, watchdog);
    run.record = injector.record();
    run.classification = Classify(result.golden, run.artifacts, program_.sdc_checker());
    result.counts.Add(run.classification);
    result.injections.push_back(std::move(run));
  }
  return result;
}

PermanentCampaignResult CampaignRunner::RunPermanentCampaign(
    const PermanentCampaignConfig& config, const ProgramProfile& profile) const {
  PermanentCampaignResult result;
  result.program = program_.name();

  const RunArtifacts golden = RunGolden(config.device);
  const std::uint64_t watchdog =
      config.watchdog_multiplier *
      std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

  std::vector<sim::Opcode> opcodes;
  if (config.only_executed_opcodes) {
    opcodes = profile.ExecutedOpcodes();
  } else {
    opcodes.reserve(static_cast<std::size_t>(sim::kOpcodeCount));
    for (int op = 0; op < sim::kOpcodeCount; ++op) {
      opcodes.push_back(static_cast<sim::Opcode>(op));
    }
  }
  result.executed_opcodes = profile.ExecutedOpcodes().size();

  const double total_instructions =
      static_cast<double>(std::max<std::uint64_t>(profile.TotalInstructions(), 1));

  Rng rng(Rng::SeedFrom(config.seed, program_.name() + "/permanent"));
  for (const sim::Opcode opcode : opcodes) {
    Rng experiment_rng = rng.Fork();
    PermanentRun run;
    run.params.opcode_id = static_cast<int>(opcode);
    run.params.sm_id =
        config.sm_id >= 0
            ? config.sm_id
            : static_cast<int>(experiment_rng.UniformInt(
                  0, static_cast<std::uint64_t>(config.device.num_sms) - 1));
    run.params.lane_id = static_cast<int>(experiment_rng.UniformInt(0, sim::kWarpSize - 1));
    if (config.fixed_mask != 0) {
      run.params.bit_mask = config.fixed_mask;
    } else {
      // Table III's mask is an arbitrary XOR pattern (a stuck functional
      // unit garbles many bits, not one); draw a random non-zero mask.
      run.params.bit_mask = experiment_rng.Bits32();
      if (run.params.bit_mask == 0) run.params.bit_mask = 1;
    }
    run.weight = static_cast<double>(profile.OpcodeTotal(opcode)) / total_instructions;

    PermanentInjectorTool injector(run.params);
    run.artifacts = Execute(&injector, config.device, watchdog);
    run.activations = injector.activations();
    run.classification = Classify(golden, run.artifacts, program_.sdc_checker());
    result.counts.Add(run.classification);
    result.weighted.Add(run.classification, run.weight);
    result.runs.push_back(std::move(run));
  }
  return result;
}

}  // namespace nvbitfi::fi
