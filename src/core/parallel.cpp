#include "core/parallel.h"

#include <algorithm>

namespace nvbitfi::fi {

int ResolveWorkerCount(int requested) {
  if (requested > 0) return std::min(requested, 256);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

WorkerPool::WorkerPool(int workers) {
  const int resolved = ResolveWorkerCount(workers);
  threads_.reserve(static_cast<std::size_t>(resolved - 1));
  for (int i = 1; i < resolved; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::DrainBatch(const std::function<void(std::size_t)>& task,
                            std::size_t count) {
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= count) return;
      index = next_++;
    }
    std::exception_ptr error;
    try {
      task(index);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (error && !first_error_) first_error_ = error;
    if (++finished_ == count_) done_cv_.notify_all();
  }
}

void WorkerPool::WorkerMain() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
      count = count_;
    }
    DrainBatch(*task, count);
  }
}

void WorkerPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (threads_.empty()) {
    // Serial pool: plain in-order loop on the calling thread.
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    next_ = 0;
    finished_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  DrainBatch(task, count);  // the calling thread is a worker too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return finished_ == count_; });
    task_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace nvbitfi::fi
