// The NVBitFI permanent fault injector (the paper's pf_injector.so).
//
// Corrupts the destination register of *every* dynamic instance of one opcode
// (Table III), restricted to threads executing on the chosen SM and hardware
// lane — the model of a stuck-at fault in one functional unit.  Unlike the
// transient injector, instrumentation is enabled for every launch (all
// dynamic instances of the opcode are fault sites), which is why the paper
// measures higher injection overhead for permanent faults (Fig. 4).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "core/fault_model.h"
#include "nvbit/nvbit.h"

namespace nvbitfi::fi {

class PermanentInjectorTool final : public nvbit::Tool {
 public:
  explicit PermanentInjectorTool(PermanentFaultParams params);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const PermanentFaultParams& params() const { return params_; }

  // Number of dynamic corruptions performed (fault activations).
  std::uint64_t activations() const { return activations_; }

  static constexpr std::uint32_t kInjectorRegs = 8;
  static constexpr std::uint64_t kInjectorCycles = 96;

 private:
  void Inject(const sim::InstrEvent& event);

  PermanentFaultParams params_;
  std::uint64_t activations_ = 0;
};

// Paper §V extension: an intermittent fault — a permanent-fault location that
// is only active during bursts of a random on/off (Gilbert) process.
class IntermittentInjectorTool final : public nvbit::Tool {
 public:
  explicit IntermittentInjectorTool(IntermittentFaultParams params);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const IntermittentFaultParams& params() const { return params_; }
  std::uint64_t activations() const { return activations_; }
  std::uint64_t eligible_events() const { return eligible_events_; }

 private:
  void Inject(const sim::InstrEvent& event);
  bool StepBurstProcess();

  IntermittentFaultParams params_;
  Rng rng_;
  bool burst_active_ = false;
  double p_enter_burst_ = 0.0;
  double p_exit_burst_ = 0.0;
  std::uint64_t activations_ = 0;
  std::uint64_t eligible_events_ = 0;
};

}  // namespace nvbitfi::fi
