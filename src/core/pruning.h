// Fault-site pruning (the practicality technique of Nie et al. [24], which
// the paper cites when discussing campaign statistics).
//
// Instead of sampling injection sites uniformly from the full dynamic-
// instruction population, sites are grouped into equivalence classes —
// (static kernel, opcode), collapsing the iteration dimension exactly as
// fault-site pruning does — and a small number of representatives is injected
// per class (the representative's dynamic instance is drawn proportionally to
// the per-instance populations).  Each class's outcome is then weighted by
// its dynamic-instruction share, giving a population estimate from far fewer
// runs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/campaign.h"
#include "core/fault_model.h"
#include "core/profile.h"

namespace nvbitfi::fi {

struct PrunedSite {
  TransientFaultParams params;
  // This class's share of the group's dynamic-instruction population.
  double weight = 0.0;
  // Class identity, for reporting.
  std::string kernel_name;
  std::uint64_t kernel_count = 0;
  sim::Opcode opcode = sim::Opcode::kNOP;
};

struct PruningConfig {
  ArchStateId group = ArchStateId::kGGp;
  BitFlipModel flip_model = BitFlipModel::kFlipSingleBit;
  // Representatives sampled per (kernel instance, opcode) class.
  int representatives_per_class = 1;
  // Classes whose share of the population is below this threshold are merged
  // into their kernel's largest class rather than sampled (pruned outright).
  double min_class_share = 0.0;
};

// Builds the pruned site list from a profile.  Weights over the returned
// sites sum to ~1 (the share of classes dropped by min_class_share is
// redistributed proportionally).
std::vector<PrunedSite> BuildPrunedSites(const ProgramProfile& profile,
                                         const PruningConfig& config, Rng& rng);

struct PrunedCampaignResult {
  std::vector<PrunedSite> sites;
  std::vector<Classification> classifications;  // parallel to sites
  WeightedOutcomes weighted;
  std::uint64_t total_runs = 0;
};

// Runs one injection per pruned site and aggregates weighted outcomes.
PrunedCampaignResult RunPrunedCampaign(const CampaignRunner& runner,
                                       const TargetProgram& program,
                                       const ProgramProfile& profile,
                                       const PruningConfig& config, Rng& rng,
                                       const sim::DeviceProps& device = {});

}  // namespace nvbitfi::fi
