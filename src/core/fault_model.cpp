#include "core/fault_model.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::fi {

std::string_view ArchStateIdName(ArchStateId id) {
  switch (id) {
    case ArchStateId::kGFp64: return "G_FP64";
    case ArchStateId::kGFp32: return "G_FP32";
    case ArchStateId::kGLd: return "G_LD";
    case ArchStateId::kGPr: return "G_PR";
    case ArchStateId::kGNoDest: return "G_NODEST";
    case ArchStateId::kGOthers: return "G_OTHERS";
    case ArchStateId::kGGppr: return "G_GPPR";
    case ArchStateId::kGGp: return "G_GP";
  }
  return "?";
}

std::optional<ArchStateId> ArchStateIdFromInt(int value) {
  if (value < 1 || value > 8) return std::nullopt;
  return static_cast<ArchStateId>(value);
}

std::string_view BitFlipModelName(BitFlipModel model) {
  switch (model) {
    case BitFlipModel::kFlipSingleBit: return "FLIP_SINGLE_BIT";
    case BitFlipModel::kFlipTwoBits: return "FLIP_TWO_BITS";
    case BitFlipModel::kRandomValue: return "RANDOM_VALUE";
    case BitFlipModel::kZeroValue: return "ZERO_VALUE";
  }
  return "?";
}

std::optional<BitFlipModel> BitFlipModelFromInt(int value) {
  if (value < 1 || value > 4) return std::nullopt;
  return static_cast<BitFlipModel>(value);
}

bool OpcodeInGroup(sim::Opcode op, ArchStateId group) {
  // Groups 1..6 partition the ISA; 7 and 8 are the unions Table II defines.
  // FP comparison opcodes that only write predicates (FSETP/DSETP/FCHK)
  // belong to G_PR, not to the FP arithmetic groups.
  switch (group) {
    case ArchStateId::kGFp64:
      return sim::IsFp64Arith(op) && sim::WritesGpr(op);
    case ArchStateId::kGFp32:
      return sim::IsFp32Arith(op) && sim::WritesGpr(op);
    case ArchStateId::kGLd:
      return sim::IsMemoryRead(op);
    case ArchStateId::kGPr:
      return sim::WritesPredOnly(op);
    case ArchStateId::kGNoDest:
      return !sim::HasDest(op);
    case ArchStateId::kGOthers:
      return sim::HasDest(op) && !sim::IsFp64Arith(op) && !sim::IsFp32Arith(op) &&
             !sim::IsMemoryRead(op) && !sim::WritesPredOnly(op);
    case ArchStateId::kGGppr:
      return sim::HasDest(op);
    case ArchStateId::kGGp:
      return sim::WritesGpr(op);
  }
  return false;
}

std::string TransientFaultParams::Serialize() const {
  // One parameter per line, in Table II order.
  return Format("%d\n%d\n%s\n%llu\n%llu\n%.17g\n%.17g\n",
                static_cast<int>(arch_state_id), static_cast<int>(bit_flip_model),
                kernel_name.c_str(), static_cast<unsigned long long>(kernel_count),
                static_cast<unsigned long long>(instruction_count), destination_register,
                bit_pattern_value);
}

std::optional<TransientFaultParams> TransientFaultParams::Parse(std::string_view text) {
  const auto lines = Split(text, '\n');
  if (lines.size() < 7) return std::nullopt;
  TransientFaultParams p;
  std::int64_t arch = 0, flip = 0;
  if (!ParseInt64(TrimWhitespace(lines[0]), &arch) ||
      !ParseInt64(TrimWhitespace(lines[1]), &flip)) {
    return std::nullopt;
  }
  const auto arch_id = ArchStateIdFromInt(static_cast<int>(arch));
  const auto flip_model = BitFlipModelFromInt(static_cast<int>(flip));
  if (!arch_id || !flip_model) return std::nullopt;
  p.arch_state_id = *arch_id;
  p.bit_flip_model = *flip_model;
  p.kernel_name = std::string(TrimWhitespace(lines[2]));
  if (p.kernel_name.empty()) return std::nullopt;
  if (!ParseUint64(TrimWhitespace(lines[3]), &p.kernel_count)) return std::nullopt;
  if (!ParseUint64(TrimWhitespace(lines[4]), &p.instruction_count)) return std::nullopt;
  if (!ParseDouble(TrimWhitespace(lines[5]), &p.destination_register)) return std::nullopt;
  if (!ParseDouble(TrimWhitespace(lines[6]), &p.bit_pattern_value)) return std::nullopt;
  if (p.destination_register < 0.0 || p.destination_register >= 1.0) return std::nullopt;
  if (p.bit_pattern_value < 0.0 || p.bit_pattern_value >= 1.0) return std::nullopt;
  return p;
}

std::string PermanentFaultParams::Serialize() const {
  return Format("%d\n%d\n0x%x\n%d\n", sm_id, lane_id, bit_mask, opcode_id);
}

std::optional<PermanentFaultParams> PermanentFaultParams::Parse(std::string_view text) {
  const auto lines = Split(text, '\n');
  if (lines.size() < 4) return std::nullopt;
  PermanentFaultParams p;
  std::int64_t sm = 0, lane = 0, opcode = 0;
  std::uint64_t mask = 0;
  if (!ParseInt64(TrimWhitespace(lines[0]), &sm) ||
      !ParseInt64(TrimWhitespace(lines[1]), &lane) ||
      !ParseUint64(TrimWhitespace(lines[2]), &mask) ||
      !ParseInt64(TrimWhitespace(lines[3]), &opcode)) {
    return std::nullopt;
  }
  if (sm < 0 || lane < 0 || lane >= sim::kWarpSize || mask > 0xFFFFFFFFull ||
      opcode < 0 || opcode >= sim::kOpcodeCount) {
    return std::nullopt;
  }
  p.sm_id = static_cast<int>(sm);
  p.lane_id = static_cast<int>(lane);
  p.bit_mask = static_cast<std::uint32_t>(mask);
  p.opcode_id = static_cast<int>(opcode);
  return p;
}

std::string IntermittentFaultParams::Serialize() const {
  return base.Serialize() +
         Format("%.17g\n%.17g\n%llu\n", duty_cycle, mean_burst_events,
                static_cast<unsigned long long>(seed));
}

std::optional<IntermittentFaultParams> IntermittentFaultParams::Parse(
    std::string_view text) {
  const auto lines = Split(text, '\n');
  if (lines.size() < 7) return std::nullopt;
  IntermittentFaultParams p;
  // The first four lines are the Table III base parameters.
  const std::string base_text = std::string(lines[0]) + "\n" + std::string(lines[1]) +
                                "\n" + std::string(lines[2]) + "\n" +
                                std::string(lines[3]) + "\n";
  const auto base = PermanentFaultParams::Parse(base_text);
  if (!base) return std::nullopt;
  p.base = *base;
  if (!ParseDouble(TrimWhitespace(lines[4]), &p.duty_cycle)) return std::nullopt;
  if (!ParseDouble(TrimWhitespace(lines[5]), &p.mean_burst_events)) return std::nullopt;
  if (!ParseUint64(TrimWhitespace(lines[6]), &p.seed)) return std::nullopt;
  // Match the IntermittentInjectorTool preconditions so a parsed file never
  // CHECK-fails at injection time.
  if (!(p.duty_cycle > 0.0 && p.duty_cycle < 1.0)) return std::nullopt;
  if (!(p.mean_burst_events >= 1.0)) return std::nullopt;
  return p;
}

std::uint32_t InjectionMask32(BitFlipModel model, double value, std::uint32_t original) {
  NVBITFI_CHECK_MSG(value >= 0.0 && value < 1.0, "bit-pattern value outside [0,1)");
  switch (model) {
    case BitFlipModel::kFlipSingleBit:
      return 0x1u << static_cast<unsigned>(32.0 * value);
    case BitFlipModel::kFlipTwoBits:
      return 0x3u << static_cast<unsigned>(31.0 * value);
    case BitFlipModel::kRandomValue: {
      // The register becomes 0xffffffff * value: mask = original ^ new.
      const auto target = static_cast<std::uint32_t>(4294967295.0 * value);
      return original ^ target;
    }
    case BitFlipModel::kZeroValue:
      return original;  // XOR with itself -> 0
  }
  return 0;
}

std::uint64_t InjectionMask64(BitFlipModel model, double value, std::uint64_t original) {
  NVBITFI_CHECK_MSG(value >= 0.0 && value < 1.0, "bit-pattern value outside [0,1)");
  switch (model) {
    case BitFlipModel::kFlipSingleBit:
      return 1ull << static_cast<unsigned>(64.0 * value);
    case BitFlipModel::kFlipTwoBits:
      return 3ull << static_cast<unsigned>(63.0 * value);
    case BitFlipModel::kRandomValue: {
      const auto target =
          static_cast<std::uint64_t>(18446744073709551615.0 * value);
      return original ^ target;
    }
    case BitFlipModel::kZeroValue:
      return original;
  }
  return 0;
}

}  // namespace nvbitfi::fi
