// Interface between the campaign loop and the tool that runs one transient
// experiment.
//
// The default tool is the paper's minimal injector (TransientInjectorTool);
// the trace library supplies a drop-in replacement that additionally follows
// the corruption through the dataflow.  The campaign loop only needs the
// injection record (did the fault activate, what changed) and, optionally,
// the propagation record — it never sees the tool's internals.
//
// trace/propagation.h is header-only plain data, so depending on it here does
// not make the core library link against the trace library (the dependency
// runs the other way: trace links core for the corruption semantics).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "core/corruption.h"
#include "core/fault_model.h"
#include "nvbit/nvbit.h"
#include "trace/propagation.h"

namespace nvbitfi::fi {

class TransientExperimentTool : public nvbit::Tool {
 public:
  // The what-happened record of the injection attempt.
  virtual const InjectionRecord& record() const = 0;

  // Tools that trace propagation hand their record over here after the run;
  // the plain injector has nothing to report.
  virtual std::optional<trace::PropagationRecord> TakePropagation() {
    return std::nullopt;
  }
};

// Builds the tool for experiment `index` with the selected fault parameters.
// Called on the worker thread that runs the experiment; implementations must
// not share mutable state across experiments (determinism contract).
using TransientToolFactory =
    std::function<std::unique_ptr<TransientExperimentTool>(
        std::size_t index, const TransientFaultParams& params)>;

}  // namespace nvbitfi::fi
