// Extended fault models — the paper's §V "future directions", implemented:
//
//   * multi-register corruption: "(1) corrupting multiple registers" — a
//     fault in persistent microarchitectural state manifests across a span of
//     architecturally adjacent registers;
//   * corruption functions "(2) beyond the current set of XOR, random, and
//     zero functions" — stuck-at-0/1 masks, shifts, sign inversion;
//   * warp-wide faults: a fault in shared decode/scheduler state corrupts
//     every active lane at the site, not just one thread;
//   * a fault dictionary "(3)/(4)": per-opcode weighted error-pattern tables,
//     standing in for patterns derived from circuit/microarchitectural
//     simulation, sampled per activation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/corruption.h"
#include "core/fault_model.h"
#include "nvbit/nvbit.h"

namespace nvbitfi::fi {

// ---- corruption functions (§V item 2) ----------------------------------------

enum class CorruptionFn : std::uint8_t {
  kXorMask = 0,     // value ^ mask (the base model)
  kStuckAtZero,     // value & ~mask (mask bits forced to 0)
  kStuckAtOne,      // value | mask  (mask bits forced to 1)
  kLeftShift,       // value << popcount(mask): a datapath mis-steer
  kSignInvert,      // value ^ 0x80000000, ignoring the mask
};

std::string_view CorruptionFnName(CorruptionFn fn);
std::optional<CorruptionFn> CorruptionFnFromInt(int value);

std::uint32_t ApplyCorruptionFn(CorruptionFn fn, std::uint32_t value,
                                std::uint32_t mask);

// ---- extended transient injector ----------------------------------------------

struct ExtendedTransientParams {
  TransientFaultParams base;
  // Corrupt this many consecutive destination registers (>= 1).
  int register_span = 1;
  // Corrupt every active lane of the warp at the site, not just the one
  // thread the counter lands on.  (Corruption covers the selected lane and
  // the rest of its cohort; lanes whose events preceded the selected one in
  // the same warp issue are untouched, so select an early lane to cover the
  // full warp.)
  bool warp_wide = false;
  CorruptionFn corruption = CorruptionFn::kXorMask;
};

// Like TransientInjectorTool, but applies the extended model at the site.
class ExtendedInjectorTool final : public nvbit::Tool {
 public:
  explicit ExtendedInjectorTool(ExtendedTransientParams params);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const ExtendedTransientParams& params() const { return params_; }
  // One record per corrupted (lane, register).
  const std::vector<InjectionRecord>& records() const { return records_; }
  bool activated() const { return !records_.empty(); }

 private:
  void Inject(const sim::InstrEvent& event);
  void CorruptLane(const sim::InstrEvent& event);

  ExtendedTransientParams params_;
  std::vector<InjectionRecord> records_;
  std::uint64_t counter_ = 0;
  // warp-wide mode: the static index + warp armed once the counter fires.
  bool site_latched_ = false;
  std::uint32_t latched_index_ = 0;
  int latched_warp_ = -1;
  bool armed_ = false;
  bool done_ = false;
};

// ---- fault dictionary (§V items 3 and 4) ---------------------------------------

// Per-opcode weighted error patterns.  In production these tables come from
// circuit- or RTL-level fault simulation; Synthetic() builds a plausible
// class-conditioned stand-in (FP faults biased to mantissa/exponent bits,
// integer faults to low bits, address-producing ops to mid bits).
class FaultDictionary {
 public:
  struct Entry {
    std::uint32_t mask = 0;
    double weight = 1.0;
  };

  void Add(sim::Opcode op, Entry entry);
  const std::vector<Entry>* Lookup(sim::Opcode op) const;
  bool empty() const { return table_.empty(); }
  std::size_t opcode_count() const { return table_.size(); }

  // Weighted sample of a mask for `op`; falls back to a single-bit mask drawn
  // from `rng` when the opcode has no dictionary entry.
  std::uint32_t Sample(sim::Opcode op, Rng& rng) const;

  // Text form: one line per entry, "OPCODE 0xMASK WEIGHT".
  std::string Serialize() const;
  static std::optional<FaultDictionary> Parse(std::string_view text);

  static FaultDictionary Synthetic(std::uint64_t seed);

 private:
  std::unordered_map<std::uint16_t, std::vector<Entry>> table_;
};

// Transient injector whose bit pattern is drawn from a fault dictionary at
// the moment of injection (conditioned on the faulted instruction's opcode).
class DictionaryInjectorTool final : public nvbit::Tool {
 public:
  DictionaryInjectorTool(TransientFaultParams site, const FaultDictionary& dictionary,
                         std::uint64_t seed);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const InjectionRecord& record() const { return record_; }

 private:
  void Inject(const sim::InstrEvent& event);

  TransientFaultParams site_;
  const FaultDictionary& dictionary_;
  Rng rng_;
  InjectionRecord record_;
  std::uint64_t counter_ = 0;
  bool armed_ = false;
  bool done_ = false;
};

}  // namespace nvbitfi::fi
