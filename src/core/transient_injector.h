// The NVBitFI transient fault injector (the paper's injector.so).
//
// Given a Table II parameter set, instruments *only* the group-eligible
// instructions of *only* the target kernel, and enables the instrumented
// version for *only* the target dynamic instance (kernel_count) — every other
// launch runs the original code.  This minimal-set dynamic selectivity is the
// paper's core overhead claim.  When the (instruction_count+1)-th eligible
// dynamic instruction executes, the destination register selected by the
// destination-register value is corrupted with the bit-flip-model mask.
#pragma once

#include <cstdint>
#include <string>

#include "core/corruption.h"
#include "core/experiment_tool.h"
#include "core/fault_model.h"
#include "nvbit/nvbit.h"

namespace nvbitfi::fi {

class TransientInjectorTool final : public TransientExperimentTool {
 public:
  explicit TransientInjectorTool(TransientFaultParams params);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const TransientFaultParams& params() const { return params_; }
  const InjectionRecord& record() const override { return record_; }

  // Cost parameters of the injection check (a counter bump + compare).
  static constexpr std::uint32_t kInjectorRegs = 8;
  static constexpr std::uint64_t kInjectorCycles = 24;

 private:
  void Inject(const sim::InstrEvent& event);

  TransientFaultParams params_;
  InjectionRecord record_;
  std::uint64_t counter_ = 0;
  bool armed_ = false;
  bool done_ = false;
};

}  // namespace nvbitfi::fi
