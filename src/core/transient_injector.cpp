#include "core/transient_injector.h"

#include "common/check.h"

namespace nvbitfi::fi {

namespace {
constexpr const char* kInjectFn = "nvbitfi_inject_error";
}  // namespace

TransientInjectorTool::TransientInjectorTool(TransientFaultParams params)
    : params_(std::move(params)) {
  NVBITFI_CHECK_MSG(params_.destination_register >= 0.0 && params_.destination_register < 1.0,
                    "destination-register value outside [0,1)");
  NVBITFI_CHECK_MSG(params_.bit_pattern_value >= 0.0 && params_.bit_pattern_value < 1.0,
                    "bit-pattern value outside [0,1)");
}

std::string TransientInjectorTool::ConfigKey() const {
  return "injector/" + params_.kernel_name;
}

void TransientInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kInjectFn;
  fn.regs_used = kInjectorRegs;
  fn.cost_cycles = kInjectorCycles;
  fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void TransientInjectorTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                                        const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      // Instrument only the target kernel, and within it only the
      // group-eligible instructions — the paper's "minimal set".
      for (const auto& fn : info.module->functions()) {
        if (fn->name() != params_.kernel_name) continue;
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          if (OpcodeInGroup(instr.opcode(), params_.arch_state_id)) {
            runtime.InsertCall(*fn, instr.index(), kInjectFn, sim::InsertPoint::kAfter);
          }
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin: {
      const bool is_target = info.launch->kernel_name == params_.kernel_name &&
                             info.launch->launch_ordinal == params_.kernel_count;
      runtime.EnableInstrumented(*info.function, is_target && !done_);
      armed_ = is_target && !done_;
      if (armed_) counter_ = 0;
      break;
    }
    case nvbit::CudaEvent::kKernelLaunchEnd:
      if (armed_) {
        runtime.EnableInstrumented(*info.function, false);
        armed_ = false;
      }
      break;
  }
}

void TransientInjectorTool::Inject(const sim::InstrEvent& event) {
  if (!armed_ || done_ || !event.lane.guard_true()) return;
  const std::uint64_t index = counter_++;
  if (index != params_.instruction_count) return;
  done_ = true;
  ApplyTransientCorruption(event, params_, &record_);
}

}  // namespace nvbitfi::fi
