// Campaign report rendering: the results logs a campaign leaves behind.
//
// Two formats per campaign type: a human-readable text report (with §IV-B
// confidence intervals on every outcome proportion) and a machine-readable
// CSV with one row per experiment, suitable for downstream analysis —
// mirroring the logs the real NVBitFI scripts write.
#pragma once

#include <string>
#include <string_view>

#include "core/campaign.h"

namespace nvbitfi::fi {

// RFC 4180 field quoting: values containing a comma, double quote, CR, or LF
// are wrapped in double quotes with internal quotes doubled; everything else
// passes through unchanged.  Free-text CSV fields (kernel names come from
// target programs) go through this.
std::string CsvField(std::string_view value);

// Text report: golden stats, profile summary, outcome distribution with
// confidence intervals, overheads, and symptom breakdown.
std::string TransientCampaignReport(const TransientCampaignResult& result,
                                    double confidence = 0.90);

// CSV: header + one row per injection —
// index,kernel,kernel_count,instruction_count,arch_state_id,bit_flip_model,
// opcode,activated,target,mask,outcome,symptom,potential_due,cycles
std::string TransientCampaignCsv(const TransientCampaignResult& result);

std::string PermanentCampaignReport(const PermanentCampaignResult& result,
                                    double confidence = 0.90);

// CSV: opcode,sm,lane,mask,activations,weight,outcome,symptom,potential_due,cycles
std::string PermanentCampaignCsv(const PermanentCampaignResult& result);

}  // namespace nvbitfi::fi
