// Golden-run and profile memoisation for campaign drivers.
//
// Every campaign variant (transient vs permanent, different seeds, different
// groups, different worker counts) starts from the same golden run and — per
// profiling mode — the same profile.  Benches and the CLI used to re-run both
// for every variant; a RunCache keyed by (program, device, profiling mode)
// runs each at most once per process and serves copies afterwards.
//
// Thread-safe: campaign workers and bench loops may share one cache.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/outcome.h"
#include "core/profile.h"
#include "core/profiler_tool.h"
#include "sassim/runtime/checkpoint.h"
#include "sassim/runtime/device.h"

namespace nvbitfi::fi {

// Stable cache-key fragment for a device configuration.  Free-text parts
// (device name, ISA) are length-prefixed inside the key so that no device
// name can collide with another configuration's delimiters.
std::string DeviceCacheKey(const sim::DeviceProps& device);

class RunCache {
 public:
  struct ProfileEntry {
    ProgramProfile profile;
    RunArtifacts run;  // the instrumented profiling run's artifacts
  };

  struct GoldenEntry {
    RunArtifacts run;
    // Per-launch checkpoint stream recorded alongside the (uninstrumented)
    // golden run; null when the golden run was computed without recording.
    // Shared: campaign workers replay from it concurrently (read-only).
    std::shared_ptr<const sim::CheckpointStream> checkpoints;
  };

  // Returns the golden artifacts for (program, device), invoking `compute`
  // only on the first request for that key.
  RunArtifacts Golden(const std::string& program, const sim::DeviceProps& device,
                      const std::function<RunArtifacts()>& compute);

  // Golden artifacts plus the checkpoint stream.  A cached stream-less entry
  // (seeded by Golden()) does not satisfy this: `compute` runs and its entry
  // — which must carry checkpoints — replaces the cached one (a miss).  The
  // artifacts are bit-identical either way, since recording only observes.
  GoldenEntry GoldenCheckpointed(const std::string& program,
                                 const sim::DeviceProps& device,
                                 const std::function<GoldenEntry()>& compute);

  // Same for (program, device, profiling mode).
  ProfileEntry Profile(const std::string& program, ProfilerTool::Mode mode,
                       const sim::DeviceProps& device,
                       const std::function<ProfileEntry()>& compute);

  // Pre-seeds an entry (tests use this to campaign against a synthetic
  // profile; drivers can use it to load a profile from disk).
  void PutProfile(const std::string& program, ProfilerTool::Mode mode,
                  const sim::DeviceProps& device, ProfileEntry entry);

  // How many times compute() actually ran (i.e. cache misses).
  std::uint64_t golden_runs() const;
  std::uint64_t profile_runs() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, GoldenEntry> golden_;
  std::map<std::string, ProfileEntry> profiles_;
  std::uint64_t golden_runs_ = 0;
  std::uint64_t profile_runs_ = 0;
};

}  // namespace nvbitfi::fi
