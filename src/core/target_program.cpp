#include "core/target_program.h"

namespace nvbitfi::fi {

const SdcChecker& TargetProgram::sdc_checker() const {
  static const SdcChecker exact;
  return exact;
}

}  // namespace nvbitfi::fi
