// The NVBitFI profiler (the paper's profiler.so).
//
// Instruments every instruction of every loaded kernel with a counting
// callback.  In *exact* mode instrumentation is enabled for every dynamic
// kernel; in *approximate* mode only the first instance of each static kernel
// is instrumented and its counts are replicated to subsequent instances
// (§III-A).  Predicated-off instructions are never counted.
#pragma once

#include <string>
#include <unordered_map>

#include "core/profile.h"
#include "nvbit/nvbit.h"

namespace nvbitfi::fi {

class ProfilerTool final : public nvbit::Tool {
 public:
  enum class Mode { kExact, kApproximate };

  ProfilerTool(std::string program_name, Mode mode);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  Mode mode() const { return mode_; }

  // The finished profile (valid once the target program has run).
  ProgramProfile TakeProfile();
  const ProgramProfile& profile() const { return profile_; }

  // Cost parameters of the counting device function.  The per-thread atomic
  // counter updates serialise across the warp, and the wide accumulator array
  // makes exact profiling spill registers on register-hungry kernels (Fig. 4).
  static constexpr std::uint32_t kProfilerRegs = 32;
  static constexpr std::uint64_t kProfilerCycles = 32;
  static constexpr bool kProfilerSerialized = true;

 private:
  void OnLaunchBegin(nvbit::Runtime& runtime, const nvbit::EventInfo& info);
  void OnLaunchEnd(const nvbit::EventInfo& info);

  std::string program_name_;
  Mode mode_;
  ProgramProfile profile_;
  KernelProfile current_;
  bool counting_ = false;
  // Approximate mode: first-instance counts per static kernel, replicated to
  // later instances.
  std::unordered_map<std::string, KernelProfile> first_instance_;
};

}  // namespace nvbitfi::fi
