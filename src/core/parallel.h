// Bounded worker pool for embarrassingly parallel campaign execution.
//
// Injection experiments are independent processes (ZOFI makes the same
// observation), so a campaign is a ParallelFor over experiment indexes.
// Determinism is preserved by construction, not by scheduling: callers
// pre-fork one Rng per experiment on the calling thread and give every task
// its own result slot, so any worker count — including 1 — produces
// bit-identical campaign results.  The pool only decides *when* each index
// runs, never *what* it computes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvbitfi::fi {

// Resolves a requested worker count: 0 (or negative) means "use the
// hardware's concurrency".  An explicit request is honoured even beyond the
// core count (oversubscription is harmless for these independent tasks and
// keeps worker-count determinism testable on small machines), capped at 256.
int ResolveWorkerCount(int requested);

class WorkerPool {
 public:
  // Spawns `ResolveWorkerCount(workers) - 1` threads; the caller's thread is
  // the remaining worker, so a 1-worker pool runs everything inline.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Total workers, including the calling thread.
  int workers() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs task(0) .. task(count-1), claiming indexes in ascending order from a
  // shared cursor, and blocks until every task has finished.  Tasks must not
  // touch each other's state (each writes only its own slot).  The first
  // exception a task throws is rethrown here once the batch has drained.
  // Not reentrant: one ParallelFor per pool at a time.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void WorkerMain();
  // Claims and runs tasks from the current batch until the cursor passes
  // `count`; returns once this thread can make no further progress.
  void DrainBatch(const std::function<void(std::size_t)>& task, std::size_t count);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a new batch
  std::condition_variable done_cv_;   // ParallelFor waits here for completion
  const std::function<void(std::size_t)>* task_ = nullptr;  // current batch
  std::size_t count_ = 0;      // tasks in the current batch
  std::size_t next_ = 0;       // next unclaimed index
  std::size_t finished_ = 0;   // tasks completed in the current batch
  std::uint64_t generation_ = 0;  // bumped per batch to wake workers
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace nvbitfi::fi
