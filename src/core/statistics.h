// Campaign statistics (§IV-B).
//
// The paper sizes campaigns by binomial confidence intervals: "100 injections
// provide results with 90% confidence intervals and ±8% error margins" and
// "1000 injections are necessary to obtain results with 95% confidence
// intervals and ±3% error margins".  This module implements those
// calculations (normal-approximation intervals with the conservative p = 0.5
// worst case for campaign sizing) so reports can annotate every proportion
// with its uncertainty.
#pragma once

#include <cstdint>
#include <vector>

#include "core/outcome.h"

namespace nvbitfi::fi {

// Sample median.  Even-sized inputs return the mean of the two middle
// elements; returning the upper-middle alone biases medians of overhead
// distributions (Fig. 4) upward.  Empty input returns 0.
double Median(std::vector<double> values);

// z-value for a two-sided interval at `confidence` in (0, 1), e.g.
// 0.90 -> 1.6449, 0.95 -> 1.9600.  Computed numerically from erf.
double ZScore(double confidence);

// Worst-case (p = 0.5) margin of error for a proportion estimated from n
// samples, as an absolute fraction (0.08 = ±8 percentage points).
double WorstCaseMarginOfError(std::uint64_t n, double confidence);

// Samples needed so the worst-case margin is at most `margin`.
std::uint64_t InjectionsForMargin(double margin, double confidence);

// Normal-approximation interval for an observed proportion.
struct ProportionEstimate {
  double value = 0.0;   // successes / n
  double margin = 0.0;  // half-width of the interval
  double lower = 0.0;   // clamped to [0, 1]
  double upper = 0.0;
};

ProportionEstimate EstimateProportion(std::uint64_t successes, std::uint64_t n,
                                      double confidence);

// Convenience: per-outcome estimates for a campaign tally.
struct OutcomeEstimates {
  ProportionEstimate sdc;
  ProportionEstimate due;
  ProportionEstimate masked;
};

OutcomeEstimates EstimateOutcomes(const OutcomeCounts& counts, double confidence);

}  // namespace nvbitfi::fi
