// Campaign statistics (§IV-B).
//
// The paper sizes campaigns by binomial confidence intervals: "100 injections
// provide results with 90% confidence intervals and ±8% error margins" and
// "1000 injections are necessary to obtain results with 95% confidence
// intervals and ±3% error margins".  Campaign *sizing* keeps the paper's
// normal approximation with the conservative p = 0.5 worst case, so the
// quoted run counts stay reproducible.  Observed proportions, however, are
// reported with Wilson score intervals by default: the normal approximation
// collapses to a zero-width interval at p = 0 or 1 (exactly where rare SDC
// outcomes live) and undercovers for small n, while Wilson stays calibrated
// there.  The normal form remains available behind IntervalMethod for
// paper-parity benches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/outcome.h"

namespace nvbitfi::fi {

// Sample median.  Even-sized inputs return the mean of the two middle
// elements; returning the upper-middle alone biases medians of overhead
// distributions (Fig. 4) upward.  Empty input returns 0.
double Median(std::vector<double> values);

// z-value for a two-sided interval at `confidence` in (0, 1), e.g.
// 0.90 -> 1.6449, 0.95 -> 1.9600.  Computed numerically from erf.
double ZScore(double confidence);

// Worst-case (p = 0.5) margin of error for a proportion estimated from n
// samples, as an absolute fraction (0.08 = ±8 percentage points).
double WorstCaseMarginOfError(std::uint64_t n, double confidence);

// Samples needed so the worst-case margin is at most `margin`.
std::uint64_t InjectionsForMargin(double margin, double confidence);

// Interval construction for observed proportions.
enum class IntervalMethod {
  kWilson,        // score interval; calibrated for p near 0/1 and small n
  kNormalApprox,  // Wald interval; paper-parity only
};

// Confidence interval for an observed proportion.  `value` is always the
// observed successes / n; for Wilson intervals the interval is centered on
// the (shrunken) Wilson midpoint, so [lower, upper] need not be symmetric
// about `value`.  `margin` is the interval half-width.
struct ProportionEstimate {
  double value = 0.0;   // successes / n
  double margin = 0.0;  // half-width of the interval
  double lower = 0.0;   // clamped to [0, 1]
  double upper = 0.0;
};

ProportionEstimate EstimateProportion(std::uint64_t successes, std::uint64_t n,
                                      double confidence,
                                      IntervalMethod method = IntervalMethod::kWilson);

// Convenience: per-outcome estimates for a campaign tally.
struct OutcomeEstimates {
  ProportionEstimate sdc;
  ProportionEstimate due;
  ProportionEstimate masked;
};

OutcomeEstimates EstimateOutcomes(const OutcomeCounts& counts, double confidence,
                                  IntervalMethod method = IntervalMethod::kWilson);

}  // namespace nvbitfi::fi
