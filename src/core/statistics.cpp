#include "core/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nvbitfi::fi {

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  const auto mid_it = values.begin() + static_cast<std::ptrdiff_t>(mid);
  std::nth_element(values.begin(), mid_it, values.end());
  if (values.size() % 2 != 0) return values[mid];
  // nth_element leaves the lower half unordered; its max is the lower middle.
  const double lower = *std::max_element(values.begin(), mid_it);
  return 0.5 * (lower + values[mid]);
}

double ZScore(double confidence) {
  NVBITFI_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                    "confidence must be in (0,1), got " << confidence);
  // Solve erf(z / sqrt(2)) = confidence by bisection; erf is monotone.
  double lo = 0.0, hi = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (std::erf(mid / std::sqrt(2.0)) < confidence) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double WorstCaseMarginOfError(std::uint64_t n, double confidence) {
  NVBITFI_CHECK_MSG(n > 0, "margin of error needs at least one sample");
  return ZScore(confidence) * std::sqrt(0.25 / static_cast<double>(n));
}

std::uint64_t InjectionsForMargin(double margin, double confidence) {
  NVBITFI_CHECK_MSG(margin > 0.0 && margin < 1.0, "margin must be in (0,1)");
  const double z = ZScore(confidence);
  return static_cast<std::uint64_t>(std::ceil(0.25 * z * z / (margin * margin)));
}

ProportionEstimate EstimateProportion(std::uint64_t successes, std::uint64_t n,
                                      double confidence, IntervalMethod method) {
  ProportionEstimate estimate;
  if (n == 0) return estimate;
  NVBITFI_CHECK_MSG(successes <= n, "successes " << successes << " > n " << n);
  const double nd = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nd;
  const double z = ZScore(confidence);
  estimate.value = p;
  if (method == IntervalMethod::kNormalApprox) {
    estimate.margin = z * std::sqrt(std::max(p * (1.0 - p), 1e-12) / nd);
    estimate.lower = std::max(0.0, p - estimate.margin);
    estimate.upper = std::min(1.0, p + estimate.margin);
    return estimate;
  }
  // Wilson score interval: invert the score test.  Unlike the Wald form it
  // never degenerates to zero width at p = 0 or 1, and its midpoint shrinks
  // the raw estimate toward 1/2 by z^2 pseudo-observations.
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nd;
  const double center = (p + z2 / (2.0 * nd)) / denom;
  estimate.margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / nd + z2 / (4.0 * nd * nd));
  estimate.lower = std::max(0.0, center - estimate.margin);
  estimate.upper = std::min(1.0, center + estimate.margin);
  // At the boundaries the Wilson bound is exactly 0 (or 1); pin it so the
  // rounding noise of center - margin never reports an impossible rate.
  if (successes == 0) estimate.lower = 0.0;
  if (successes == n) estimate.upper = 1.0;
  return estimate;
}

OutcomeEstimates EstimateOutcomes(const OutcomeCounts& counts, double confidence,
                                  IntervalMethod method) {
  OutcomeEstimates estimates;
  const std::uint64_t n = counts.total();
  estimates.sdc = EstimateProportion(counts.sdc, n, confidence, method);
  estimates.due = EstimateProportion(counts.due, n, confidence, method);
  estimates.masked = EstimateProportion(counts.masked, n, confidence, method);
  return estimates;
}

}  // namespace nvbitfi::fi
