#include "core/campaign_spec.h"

#include <algorithm>

#include "common/strings.h"

namespace nvbitfi::fi {
namespace {

constexpr std::string_view kSpecHeader = "nvbitfi campaign spec v1";

bool ParseBoolField(std::string_view value, bool* out) {
  if (value == "0") {
    *out = false;
    return true;
  }
  if (value == "1") {
    *out = true;
    return true;
  }
  return false;
}

}  // namespace

std::string CampaignSpec::Serialize() const {
  std::string out(kSpecHeader);
  out += "\n";
  out += Format("program %s\n", program.c_str());
  out += Format("seed %llu\n", static_cast<unsigned long long>(seed));
  out += Format("injections %d\n", num_injections);
  out += Format("group %d\n", group);
  out += Format("flip_model %d\n", flip_model);
  out += Format("randomize_flip_model %d\n", randomize_flip_model ? 1 : 0);
  out += Format("approximate %d\n", approximate ? 1 : 0);
  out += Format("watchdog_multiplier %llu\n",
                static_cast<unsigned long long>(watchdog_multiplier));
  out += Format("trace %d\n", trace ? 1 : 0);
  out += Format("checkpoints %d\n", checkpoints ? 1 : 0);
  out += Format("static_mode %s\n", static_mode.c_str());
  out += Format("element %s\n", element.c_str());
  // Emitted only for adaptive campaigns, so uniform specs keep the exact
  // byte form older peers produce and expect.
  if (adaptive) {
    out += "adaptive 1\n";
    out += Format("adaptive_confidence %.17g\n", adaptive_confidence);
    out += Format("adaptive_target_width %.17g\n", adaptive_target_width);
    out += Format("adaptive_round_size %llu\n",
                  static_cast<unsigned long long>(adaptive_round_size));
    out += Format("adaptive_min_per_stratum %llu\n",
                  static_cast<unsigned long long>(adaptive_min_per_stratum));
  }
  return out;
}

std::optional<CampaignSpec> CampaignSpec::Parse(std::string_view text) {
  const std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || TrimWhitespace(lines[0]) != kSpecHeader) return std::nullopt;

  CampaignSpec spec;
  bool have_program = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = TrimWhitespace(lines[i]);
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) return std::nullopt;
    const std::string_view key = line.substr(0, space);
    const std::string_view value = TrimWhitespace(line.substr(space + 1));
    if (value.empty()) return std::nullopt;

    std::uint64_t u = 0;
    if (key == "program") {
      spec.program = std::string(value);
      have_program = true;
    } else if (key == "seed") {
      if (!ParseUint64(value, &spec.seed)) return std::nullopt;
    } else if (key == "injections") {
      if (!ParseUint64(value, &u) || u > 1000000000ull) return std::nullopt;
      spec.num_injections = static_cast<int>(u);
    } else if (key == "group") {
      if (!ParseUint64(value, &u) || !ArchStateIdFromInt(static_cast<int>(u))) {
        return std::nullopt;
      }
      spec.group = static_cast<int>(u);
    } else if (key == "flip_model") {
      if (!ParseUint64(value, &u) || !BitFlipModelFromInt(static_cast<int>(u))) {
        return std::nullopt;
      }
      spec.flip_model = static_cast<int>(u);
    } else if (key == "randomize_flip_model") {
      if (!ParseBoolField(value, &spec.randomize_flip_model)) return std::nullopt;
    } else if (key == "approximate") {
      if (!ParseBoolField(value, &spec.approximate)) return std::nullopt;
    } else if (key == "watchdog_multiplier") {
      if (!ParseUint64(value, &spec.watchdog_multiplier)) return std::nullopt;
    } else if (key == "trace") {
      if (!ParseBoolField(value, &spec.trace)) return std::nullopt;
    } else if (key == "checkpoints") {
      if (!ParseBoolField(value, &spec.checkpoints)) return std::nullopt;
    } else if (key == "static_mode") {
      if (value != "off" && value != "check" && value != "prune") return std::nullopt;
      spec.static_mode = std::string(value);
    } else if (key == "element") {
      if (value != "f32" && value != "f64") return std::nullopt;
      spec.element = std::string(value);
    } else if (key == "adaptive") {
      if (!ParseBoolField(value, &spec.adaptive)) return std::nullopt;
    } else if (key == "adaptive_confidence") {
      if (!ParseDouble(value, &spec.adaptive_confidence) ||
          spec.adaptive_confidence <= 0.0 || spec.adaptive_confidence >= 1.0) {
        return std::nullopt;
      }
    } else if (key == "adaptive_target_width") {
      if (!ParseDouble(value, &spec.adaptive_target_width) ||
          spec.adaptive_target_width <= 0.0 || spec.adaptive_target_width >= 1.0) {
        return std::nullopt;
      }
    } else if (key == "adaptive_round_size") {
      if (!ParseUint64(value, &spec.adaptive_round_size) ||
          spec.adaptive_round_size == 0) {
        return std::nullopt;
      }
    } else if (key == "adaptive_min_per_stratum") {
      if (!ParseUint64(value, &spec.adaptive_min_per_stratum)) return std::nullopt;
    } else {
      return std::nullopt;  // unknown key: a different/newer spec format
    }
  }
  if (!have_program) return std::nullopt;
  // Static site handling needs exact profiling (site-stream resolution).
  if (spec.static_mode != "off" && spec.approximate) return std::nullopt;
  // So does adaptive stratification (static-oracle stratum keys).
  if (spec.adaptive && spec.approximate) return std::nullopt;
  return spec;
}

TransientCampaignConfig CampaignSpec::ToConfig() const {
  TransientCampaignConfig config;
  config.seed = seed;
  config.num_injections = num_injections;
  config.group = ArchStateIdFromInt(group).value_or(ArchStateId::kGGp);
  config.flip_model = BitFlipModelFromInt(flip_model).value_or(BitFlipModel::kFlipSingleBit);
  config.randomize_flip_model = randomize_flip_model;
  config.profiling = approximate ? ProfilerTool::Mode::kApproximate
                                 : ProfilerTool::Mode::kExact;
  config.watchdog_multiplier = watchdog_multiplier;
  config.trace = trace;
  config.checkpoints = checkpoints;
  config.static_mode = static_mode == "prune"   ? StaticSiteMode::kPrune
                       : static_mode == "check" ? StaticSiteMode::kCheck
                                                : StaticSiteMode::kOff;
  return config;
}

std::vector<ShardRange> PlanShards(std::size_t num_experiments, std::size_t num_shards) {
  std::vector<ShardRange> shards;
  if (num_experiments == 0 || num_shards == 0) return shards;
  num_shards = std::min(num_shards, num_experiments);
  const std::size_t base = num_experiments / num_shards;
  const std::size_t extra = num_experiments % num_shards;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    shards.push_back(ShardRange{begin, begin + size});
    begin += size;
  }
  return shards;
}

std::optional<ShardRange> ParseShardRange(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  if (!ParseUint64(text.substr(0, colon), &begin) ||
      !ParseUint64(text.substr(colon + 1), &end) || end < begin) {
    return std::nullopt;
  }
  return ShardRange{static_cast<std::size_t>(begin), static_cast<std::size_t>(end)};
}

}  // namespace nvbitfi::fi
