// Error-propagation outcomes (Table V) and the run-outcome classifier.
//
// Following §IV-A:
//   SDC    — stdout differs, output file differs, or the program-specific
//            check (the SPEC-style "SDC checking script") failed;
//   DUE    — hang (watchdog/monitor), process crash (OS), or non-zero exit
//            status (application detection);
//   Masked — no difference detected;
//   Potential DUE — an (SDC or Masked) run during which the system recorded a
//            non-handled anomaly (a CUDA error the host never checked, or a
//            device-log/"dmesg" entry).  As in the paper's results, potential
//            DUEs are *counted* as their underlying SDC/Masked outcome and
//            reported separately.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sassim/runtime/driver.h"

namespace nvbitfi::fi {

enum class Outcome : std::uint8_t { kMasked, kSdc, kDue };

std::string_view OutcomeName(Outcome outcome);
// Integer round-trip for persisted classifications (the result store).
std::optional<Outcome> OutcomeFromInt(int value);

// The specific Table V symptom that produced the outcome.
enum class Symptom : std::uint8_t {
  kNone,            // masked
  kStdoutDiff,      // SDC
  kOutputFileDiff,  // SDC
  kAppCheckFailed,  // SDC
  kTimeout,         // DUE (monitor detection)
  kCrash,           // DUE (OS detection)
  kNonZeroExit,     // DUE (application detection)
};

std::string_view SymptomName(Symptom symptom);
std::optional<Symptom> SymptomFromInt(int value);

// Everything observable from one run of a target program.
struct RunArtifacts {
  std::string stdout_text;
  std::vector<std::uint8_t> output_file;
  int exit_code = 0;
  bool crashed = false;      // host-process crash (OS detection)
  bool timed_out = false;    // watchdog fired on some launch
  bool app_check_failed = false;  // program-internal assertion/consistency check

  // Anomalies harvested by the harness after the run (Table V's "potential
  // DUE" evidence): the context's final sticky CUDA error, if any, and the
  // device-log entries.
  std::vector<std::string> cuda_errors;
  std::vector<std::string> dmesg;

  // Accounting (Figures 4/5).
  std::uint64_t cycles = 0;
  std::uint64_t thread_instructions = 0;
  std::uint64_t dynamic_kernels = 0;
  std::uint64_t static_kernels = 0;  // distinct kernel names launched
  std::uint64_t max_launch_thread_instructions = 0;  // watchdog calibration
};

struct Classification {
  Outcome outcome = Outcome::kMasked;
  Symptom symptom = Symptom::kNone;
  bool potential_due = false;

  bool operator==(const Classification&) const = default;
};

// Program-specific SDC check: returns true when `run`'s outputs should count
// as corrupted relative to `golden`.  The default performs exact stdout and
// output-file comparison; workloads override it with tolerance-aware checks
// (SpecACCEL ships one per program).
class SdcChecker {
 public:
  virtual ~SdcChecker() = default;
  virtual bool IsSdc(const RunArtifacts& golden, const RunArtifacts& run) const;
};

// Classifies one run against the golden run per Table V.
Classification Classify(const RunArtifacts& golden, const RunArtifacts& run,
                        const SdcChecker& checker);

// Fills the harness-harvested fields of `artifacts` from the context's final
// state (sticky errors, device log, accounting).
void HarvestContextState(const sim::Context& context, RunArtifacts* artifacts);

// Aggregate outcome tallies used by every results table.
struct OutcomeCounts {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  std::uint64_t potential_due = 0;  // subset of masked+sdc

  std::uint64_t total() const { return masked + sdc + due; }
  double MaskedPct() const;
  double SdcPct() const;
  double DuePct() const;

  void Add(const Classification& c);
  OutcomeCounts& operator+=(const OutcomeCounts& other);
};

// Weighted variant for the permanent-fault analysis (Fig. 3): each run is
// weighted by the dynamic-instruction share of its opcode.
struct WeightedOutcomes {
  double masked = 0;
  double sdc = 0;
  double due = 0;
  double potential_due = 0;

  double total() const { return masked + sdc + due; }
  void Add(const Classification& c, double weight);
  WeightedOutcomes& operator+=(const WeightedOutcomes& other);
};

}  // namespace nvbitfi::fi
