// Shared register-corruption semantics: given an instruction event and a
// Table II transient-fault specification, pick the architectural target
// (destination GPR / register pair / predicate, per the destination-register
// value) and apply the bit-flip-model mask.  Used by the NVBitFI transient
// injector and by the baseline injectors (SASSIFI-style and debugger-style),
// so that overhead comparisons inject *identical* faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_model.h"
#include "sassim/core/instrumentation.h"

namespace nvbitfi::fi {

// One candidate architectural target of an injection at an instruction.
struct CorruptionTarget {
  enum class Kind : std::uint8_t { kGpr32, kGpr64, kPred } kind;
  int reg;
};

// Candidate targets at `inst`, in the fixed order the destination-register
// draw indexes: destination GPR / pair(s), then destination predicates; with
// no destination, the source GPRs (operand-collector fault model).  Empty
// means the fault vanishes (nothing to corrupt).  Exposed so static analysis
// can replicate site selection exactly.
std::vector<CorruptionTarget> CandidateTargets(const sim::Instruction& inst);

// The Table II destination-register draw: maps the uniform [0,1) value onto
// an index into CandidateTargets().  `count` must be nonzero.
std::size_t ChooseTargetIndex(std::size_t count, double destination_register);

// What an injection actually did, for campaign logs and tests.
struct InjectionRecord {
  bool activated = false;  // the target dynamic instruction was reached
  std::string kernel_name;
  std::uint64_t kernel_count = 0;
  std::uint32_t static_index = 0;        // static instruction index hit
  sim::Opcode opcode = sim::Opcode::kNOP;
  bool corrupted = false;                // false if the site had no target register
  bool pred_target = false;              // corrupted a predicate instead of a GPR
  int target_register = -1;              // GPR index or predicate index
  int register_width = 32;               // 32, 64, or 1 (predicate)
  std::uint64_t before_bits = 0;
  std::uint64_t after_bits = 0;
  std::uint64_t mask = 0;
  int sm_id = -1;
  int lane_id = -1;
};

// Applies the corruption for `params` at `event`, filling `record`.
// Pre-populates the site-identification fields as well.
void ApplyTransientCorruption(const sim::InstrEvent& event,
                              const TransientFaultParams& params,
                              InjectionRecord* record);

}  // namespace nvbitfi::fi
