// Serializable transient-campaign description and shard planning.
//
// A CampaignSpec is the wire form of a TransientCampaignConfig: everything
// that determines the deterministic experiment sequence (program, seed,
// size, fault model, engine flags), and nothing that is process-local
// (worker count, observers, caches).  The campaign service sends specs over
// its line protocol, `nvbitfi shard` rebuilds one from CLI flags, and both
// end up with bit-identical configs — the spec IS the campaign identity.
//
// Shard planning splits the experiment index space [0, num_injections) into
// contiguous ranges.  Because per-experiment Rng streams are pre-forked in
// index order regardless of which indexes execute (see campaign.h), any
// range of a campaign can run in any process and produce exactly the records
// the unsharded campaign would have produced for those indexes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace nvbitfi::fi {

struct CampaignSpec {
  std::string program;
  std::uint64_t seed = 1;
  int num_injections = 100;
  int group = 8;               // ArchStateId, 1..8 (Table II)
  int flip_model = 1;          // BitFlipModel, 1..4
  bool randomize_flip_model = true;
  bool approximate = false;    // profiling mode
  std::uint64_t watchdog_multiplier = 20;
  bool trace = false;
  bool checkpoints = true;
  std::string static_mode = "off";  // off | check | prune
  std::string element = "f32";      // SDC-anatomy element kind (f32 | f64)
  // Adaptive stratified sampling (src/adaptive/).  When set, num_injections
  // is the POOL size; the engine schedules experiments from it in rounds
  // until every stratum converges or exhausts.  The policy fields are part
  // of the campaign identity (they decide the schedule), so they live in the
  // spec, not in process-local config.  Requires exact profiling: strata are
  // keyed on static-oracle verdicts, which need event-exact site streams.
  bool adaptive = false;
  double adaptive_confidence = 0.95;
  double adaptive_target_width = 0.10;
  std::uint64_t adaptive_round_size = 32;
  std::uint64_t adaptive_min_per_stratum = 4;

  // Line-based text form ("nvbitfi campaign spec v1" header, one `key value`
  // per line).  Parse rejects unknown keys, malformed values, and out-of-range
  // enums, so a spec that parses always builds a valid config.
  std::string Serialize() const;
  static std::optional<CampaignSpec> Parse(std::string_view text);

  // The campaign config this spec describes.  Process-local fields (workers,
  // observers, static oracle, tool factory, preloaded runs, index range) are
  // left at their defaults for the caller to fill in.
  TransientCampaignConfig ToConfig() const;
};

// A half-open experiment index range [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool operator==(const ShardRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

// Splits [0, num_experiments) into `num_shards` contiguous near-equal ranges
// (the first `num_experiments % num_shards` ranges are one longer).  Fewer
// experiments than shards yields fewer (non-empty) ranges; zero experiments
// yields none.
std::vector<ShardRange> PlanShards(std::size_t num_experiments, std::size_t num_shards);

// Parses "A:B" into a half-open range; nullopt on malformed input or B < A.
std::optional<ShardRange> ParseShardRange(std::string_view text);

}  // namespace nvbitfi::fi
