#include "core/extended_models.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/strings.h"

namespace nvbitfi::fi {

std::string_view CorruptionFnName(CorruptionFn fn) {
  switch (fn) {
    case CorruptionFn::kXorMask: return "XOR_MASK";
    case CorruptionFn::kStuckAtZero: return "STUCK_AT_ZERO";
    case CorruptionFn::kStuckAtOne: return "STUCK_AT_ONE";
    case CorruptionFn::kLeftShift: return "LEFT_SHIFT";
    case CorruptionFn::kSignInvert: return "SIGN_INVERT";
  }
  return "?";
}

std::optional<CorruptionFn> CorruptionFnFromInt(int value) {
  if (value < 0 || value > static_cast<int>(CorruptionFn::kSignInvert)) {
    return std::nullopt;
  }
  return static_cast<CorruptionFn>(value);
}

std::uint32_t ApplyCorruptionFn(CorruptionFn fn, std::uint32_t value,
                                std::uint32_t mask) {
  switch (fn) {
    case CorruptionFn::kXorMask: return value ^ mask;
    case CorruptionFn::kStuckAtZero: return value & ~mask;
    case CorruptionFn::kStuckAtOne: return value | mask;
    case CorruptionFn::kLeftShift: return value << (std::popcount(mask) & 31);
    case CorruptionFn::kSignInvert: return value ^ 0x80000000u;
  }
  return value;
}

// ---- extended transient injector ----------------------------------------------

namespace {
constexpr const char* kExtendedFn = "nvbitfi_extended_inject";
constexpr const char* kDictionaryFn = "nvbitfi_dictionary_inject";
}  // namespace

ExtendedInjectorTool::ExtendedInjectorTool(ExtendedTransientParams params)
    : params_(std::move(params)) {
  NVBITFI_CHECK_MSG(params_.register_span >= 1 && params_.register_span <= 8,
                    "register span out of range: " << params_.register_span);
}

std::string ExtendedInjectorTool::ConfigKey() const {
  return "extended_injector/" + params_.base.kernel_name;
}

void ExtendedInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kExtendedFn;
  fn.regs_used = 8;
  fn.cost_cycles = 24;
  fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void ExtendedInjectorTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                                       const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      for (const auto& fn : info.module->functions()) {
        if (fn->name() != params_.base.kernel_name) continue;
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          if (OpcodeInGroup(instr.opcode(), params_.base.arch_state_id)) {
            runtime.InsertCall(*fn, instr.index(), kExtendedFn, sim::InsertPoint::kAfter);
          }
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin: {
      const bool is_target = info.launch->kernel_name == params_.base.kernel_name &&
                             info.launch->launch_ordinal == params_.base.kernel_count;
      runtime.EnableInstrumented(*info.function, is_target && !done_);
      armed_ = is_target && !done_;
      if (armed_) counter_ = 0;
      break;
    }
    case nvbit::CudaEvent::kKernelLaunchEnd:
      if (armed_) {
        runtime.EnableInstrumented(*info.function, false);
        armed_ = false;
        done_ = done_ || site_latched_;
      }
      break;
  }
}

void ExtendedInjectorTool::Inject(const sim::InstrEvent& event) {
  if (!armed_ || !event.lane.guard_true()) return;

  if (site_latched_) {
    // Warp-wide mode: every further lane event at the latched site in the
    // same warp gets corrupted too (the cohort's events arrive back to back).
    if (params_.warp_wide && event.static_index == latched_index_ &&
        event.lane.warp_id() == latched_warp_) {
      CorruptLane(event);
    }
    return;
  }

  const std::uint64_t index = counter_++;
  if (index != params_.base.instruction_count) return;

  site_latched_ = true;
  latched_index_ = event.static_index;
  latched_warp_ = event.lane.warp_id();
  CorruptLane(event);
  if (!params_.warp_wide) done_ = true;
}

void ExtendedInjectorTool::CorruptLane(const sim::InstrEvent& event) {
  // Span of consecutive destination registers starting at the primary dest
  // (or the first source GPR for no-dest instructions).
  int base_reg = -1;
  if (sim::DestGprCount(event.instr) > 0) {
    base_reg = event.instr.dest_gpr;
  } else {
    for (int i = 0; i < event.instr.num_src; ++i) {
      const sim::Operand& op = event.instr.src[static_cast<std::size_t>(i)];
      if (op.kind == sim::Operand::Kind::kGpr && op.reg != sim::kRZ) {
        base_reg = op.reg;
        break;
      }
      if (op.kind == sim::Operand::Kind::kMem && op.mem_base != sim::kRZ) {
        base_reg = op.mem_base;
        break;
      }
    }
  }
  if (base_reg < 0) return;

  const std::uint32_t mask = InjectionMask32(
      params_.base.bit_flip_model, params_.base.bit_pattern_value,
      event.lane.ReadGpr(base_reg));
  for (int span = 0; span < params_.register_span; ++span) {
    const int reg = base_reg + span;
    if (reg >= sim::kRZ) break;
    const std::uint32_t before = event.lane.ReadGpr(reg);
    const std::uint32_t after = ApplyCorruptionFn(params_.corruption, before, mask);
    event.lane.WriteGpr(reg, after);

    InjectionRecord record;
    record.activated = true;
    record.kernel_name = event.launch.kernel_name;
    record.kernel_count = event.launch.launch_ordinal;
    record.static_index = event.static_index;
    record.opcode = event.instr.opcode;
    record.corrupted = before != after;
    record.target_register = reg;
    record.register_width = 32;
    record.before_bits = before;
    record.after_bits = after;
    record.mask = mask;
    record.sm_id = event.lane.sm_id();
    record.lane_id = event.lane.lane_id();
    records_.push_back(record);
  }
}

// ---- fault dictionary ----------------------------------------------------------

void FaultDictionary::Add(sim::Opcode op, Entry entry) {
  NVBITFI_CHECK_MSG(entry.weight > 0.0, "dictionary entries need positive weight");
  table_[static_cast<std::uint16_t>(op)].push_back(entry);
}

const std::vector<FaultDictionary::Entry>* FaultDictionary::Lookup(sim::Opcode op) const {
  const auto it = table_.find(static_cast<std::uint16_t>(op));
  return it == table_.end() ? nullptr : &it->second;
}

std::uint32_t FaultDictionary::Sample(sim::Opcode op, Rng& rng) const {
  const std::vector<Entry>* entries = Lookup(op);
  if (entries == nullptr || entries->empty()) {
    return 1u << rng.UniformInt(0, 31);
  }
  double total = 0.0;
  for (const Entry& e : *entries) total += e.weight;
  double pick = rng.UniformUnit() * total;
  for (const Entry& e : *entries) {
    pick -= e.weight;
    if (pick <= 0.0) return e.mask;
  }
  return entries->back().mask;
}

std::string FaultDictionary::Serialize() const {
  std::string out;
  // Deterministic order: by opcode id.
  std::vector<std::uint16_t> ids;
  ids.reserve(table_.size());
  for (const auto& [id, _] : table_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint16_t id : ids) {
    for (const Entry& e : table_.at(id)) {
      out += Format("%s 0x%x %.17g\n",
                    std::string(sim::OpcodeName(static_cast<sim::Opcode>(id))).c_str(),
                    e.mask, e.weight);
    }
  }
  return out;
}

std::optional<FaultDictionary> FaultDictionary::Parse(std::string_view text) {
  FaultDictionary dict;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = SplitWhitespace(line);
    if (fields.size() != 3) return std::nullopt;
    const auto op = sim::OpcodeFromName(fields[0]);
    std::uint64_t mask = 0;
    double weight = 0;
    if (!op || !ParseUint64(fields[1], &mask) || mask > 0xFFFFFFFFull ||
        !ParseDouble(fields[2], &weight) || weight <= 0.0) {
      return std::nullopt;
    }
    dict.Add(*op, Entry{static_cast<std::uint32_t>(mask), weight});
  }
  return dict;
}

FaultDictionary FaultDictionary::Synthetic(std::uint64_t seed) {
  FaultDictionary dict;
  Rng rng(seed);
  for (int i = 0; i < sim::kOpcodeCount; ++i) {
    const sim::Opcode op = static_cast<sim::Opcode>(i);
    if (!sim::HasDest(op)) continue;
    const sim::OpClass cls = sim::ClassOf(op);
    // Class-conditioned bit ranges, mimicking which datapath bits a
    // unit-level fault would reach.
    int lo = 0, hi = 31;
    switch (cls) {
      case sim::OpClass::kFp32:
      case sim::OpClass::kFp16:
      case sim::OpClass::kFp64:
        lo = 10; hi = 30;  // mantissa high bits + exponent
        break;
      case sim::OpClass::kInt:
      case sim::OpClass::kUniform:
        lo = 0; hi = 15;   // adder low bits dominate
        break;
      case sim::OpClass::kLoad:
      case sim::OpClass::kAtomic:
        lo = 2; hi = 23;   // data-bus bits
        break;
      default:
        lo = 0; hi = 31;
        break;
    }
    for (int k = 0; k < 4; ++k) {
      const auto bit = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)));
      // Occasional multi-bit burst, as unit-level faults often smear.
      const std::uint32_t mask =
          rng.Chance(0.25) ? (0x3u << (bit & 30)) : (1u << bit);
      dict.Add(op, Entry{mask, 1.0 + rng.UniformUnit()});
    }
  }
  return dict;
}

// ---- dictionary injector -------------------------------------------------------

DictionaryInjectorTool::DictionaryInjectorTool(TransientFaultParams site,
                                               const FaultDictionary& dictionary,
                                               std::uint64_t seed)
    : site_(std::move(site)), dictionary_(dictionary), rng_(seed) {}

std::string DictionaryInjectorTool::ConfigKey() const {
  return "dictionary_injector/" + site_.kernel_name;
}

void DictionaryInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kDictionaryFn;
  fn.regs_used = 8;
  fn.cost_cycles = 24;
  fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void DictionaryInjectorTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                                         const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      for (const auto& fn : info.module->functions()) {
        if (fn->name() != site_.kernel_name) continue;
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          if (OpcodeInGroup(instr.opcode(), site_.arch_state_id)) {
            runtime.InsertCall(*fn, instr.index(), kDictionaryFn,
                               sim::InsertPoint::kAfter);
          }
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin: {
      const bool is_target = info.launch->kernel_name == site_.kernel_name &&
                             info.launch->launch_ordinal == site_.kernel_count;
      runtime.EnableInstrumented(*info.function, is_target && !done_);
      armed_ = is_target && !done_;
      if (armed_) counter_ = 0;
      break;
    }
    case nvbit::CudaEvent::kKernelLaunchEnd:
      if (armed_) {
        runtime.EnableInstrumented(*info.function, false);
        armed_ = false;
      }
      break;
  }
}

void DictionaryInjectorTool::Inject(const sim::InstrEvent& event) {
  if (!armed_ || done_ || !event.lane.guard_true()) return;
  const std::uint64_t index = counter_++;
  if (index != site_.instruction_count) return;
  done_ = true;

  const sim::Instruction& inst = event.instr;
  record_.activated = true;
  record_.kernel_name = event.launch.kernel_name;
  record_.kernel_count = event.launch.launch_ordinal;
  record_.static_index = event.static_index;
  record_.opcode = inst.opcode;
  record_.sm_id = event.lane.sm_id();
  record_.lane_id = event.lane.lane_id();

  // Predicate-only destinations flip the predicate, as in the base model.
  if (sim::WritesPredOnly(inst.opcode) && inst.dest_pred != sim::kPT) {
    const bool before = event.lane.ReadPred(inst.dest_pred);
    event.lane.WritePred(inst.dest_pred, !before);
    record_.corrupted = true;
    record_.pred_target = true;
    record_.target_register = inst.dest_pred;
    record_.register_width = 1;
    record_.before_bits = before ? 1 : 0;
    record_.after_bits = before ? 0 : 1;
    record_.mask = 1;
    return;
  }

  // Opcode-conditioned pattern: the 32-bit XOR mask is drawn from the
  // dictionary rather than the generic Table II formulas; register-pair
  // destinations take the mask on their low word (the dictionary models a
  // 32-bit lane of the functional unit).
  int reg = -1;
  if (sim::DestGprCount(inst) > 0) {
    reg = inst.dest_gpr;
  } else {
    for (int i = 0; i < inst.num_src; ++i) {
      const sim::Operand& op = inst.src[static_cast<std::size_t>(i)];
      if (op.kind == sim::Operand::Kind::kGpr && op.reg != sim::kRZ) {
        reg = op.reg;
        break;
      }
      if (op.kind == sim::Operand::Kind::kMem && op.mem_base != sim::kRZ) {
        reg = op.mem_base;
        break;
      }
    }
  }
  if (reg < 0) return;

  const std::uint32_t mask = dictionary_.Sample(inst.opcode, rng_);
  const std::uint32_t before = event.lane.ReadGpr(reg);
  event.lane.WriteGpr(reg, before ^ mask);
  record_.corrupted = mask != 0;
  record_.target_register = reg;
  record_.register_width = 32;
  record_.before_bits = before;
  record_.after_bits = before ^ mask;
  record_.mask = mask;
}

}  // namespace nvbitfi::fi
