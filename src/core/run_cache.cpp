#include "core/run_cache.h"

#include "common/strings.h"

namespace nvbitfi::fi {
namespace {

// Free-text key fragments (program names, device names, ISA strings) are
// length-prefixed so they self-delimit: no choice of separator character can
// make two distinct fragment sequences concatenate to the same key (e.g.
// name "x/1" + 1 SM vs name "x" + 11 SMs under naive '/' joining).
std::string KeyFragment(const std::string& text) {
  return Format("%zu:%s", text.size(), text.c_str());
}

std::string ProfileKey(const std::string& program, ProfilerTool::Mode mode,
                       const sim::DeviceProps& device) {
  return KeyFragment(program) + "|" +
         (mode == ProfilerTool::Mode::kExact ? "exact" : "approximate") + "|" +
         DeviceCacheKey(device);
}

std::string GoldenKey(const std::string& program, const sim::DeviceProps& device) {
  return KeyFragment(program) + "|" + DeviceCacheKey(device);
}

}  // namespace

std::string DeviceCacheKey(const sim::DeviceProps& device) {
  return Format("%s/%d/%d/%s", KeyFragment(device.name).c_str(), device.num_sms,
                device.lanes_per_sm, KeyFragment(device.isa).c_str());
}

RunArtifacts RunCache::Golden(const std::string& program,
                              const sim::DeviceProps& device,
                              const std::function<RunArtifacts()>& compute) {
  const std::string key = GoldenKey(program, device);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = golden_.find(key);
    if (it != golden_.end()) return it->second.run;
  }
  // Run outside the lock: golden runs are the expensive part, and two threads
  // racing on a cold key just do redundant (identical, deterministic) work.
  RunArtifacts artifacts = compute();
  std::lock_guard<std::mutex> lock(mu_);
  ++golden_runs_;
  return golden_.try_emplace(key, GoldenEntry{std::move(artifacts), nullptr})
      .first->second.run;
}

RunCache::GoldenEntry RunCache::GoldenCheckpointed(
    const std::string& program, const sim::DeviceProps& device,
    const std::function<GoldenEntry()>& compute) {
  const std::string key = GoldenKey(program, device);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = golden_.find(key);
    if (it != golden_.end() && it->second.checkpoints != nullptr) return it->second;
  }
  GoldenEntry entry = compute();
  std::lock_guard<std::mutex> lock(mu_);
  ++golden_runs_;
  return golden_.insert_or_assign(key, std::move(entry)).first->second;
}

RunCache::ProfileEntry RunCache::Profile(const std::string& program,
                                         ProfilerTool::Mode mode,
                                         const sim::DeviceProps& device,
                                         const std::function<ProfileEntry()>& compute) {
  const std::string key = ProfileKey(program, mode, device);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = profiles_.find(key);
    if (it != profiles_.end()) return it->second;
  }
  ProfileEntry entry = compute();
  std::lock_guard<std::mutex> lock(mu_);
  ++profile_runs_;
  return profiles_.try_emplace(key, std::move(entry)).first->second;
}

void RunCache::PutProfile(const std::string& program, ProfilerTool::Mode mode,
                          const sim::DeviceProps& device, ProfileEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.insert_or_assign(ProfileKey(program, mode, device), std::move(entry));
}

std::uint64_t RunCache::golden_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return golden_runs_;
}

std::uint64_t RunCache::profile_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profile_runs_;
}

}  // namespace nvbitfi::fi
