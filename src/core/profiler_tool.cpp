#include "core/profiler_tool.h"

#include "common/check.h"
#include "common/log.h"

namespace nvbitfi::fi {

namespace {
constexpr const char* kCountFn = "nvbitfi_count_instrs";
}  // namespace

ProfilerTool::ProfilerTool(std::string program_name, Mode mode)
    : program_name_(std::move(program_name)), mode_(mode) {
  profile_.program_name = program_name_;
  profile_.approximate = mode_ == Mode::kApproximate;
}

std::string ProfilerTool::ConfigKey() const {
  return mode_ == Mode::kExact ? "profiler/exact" : "profiler/approx";
}

void ProfilerTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kCountFn;
  fn.regs_used = kProfilerRegs;
  fn.cost_cycles = kProfilerCycles;
  fn.serialized = kProfilerSerialized;
  fn.callback = [this](const sim::InstrEvent& event) {
    if (!counting_ || !event.lane.guard_true()) return;
    ++current_.opcode_counts[static_cast<std::size_t>(event.instr.opcode)];
    if (mode_ == Mode::kExact) {
      // Record the guard-true event stream (RLE by static instruction) so
      // static analysis can map instruction_count draws back to static
      // instructions.  The profiler's kBefore events and the injector's
      // kAfter events enumerate the same guard-true lanes in the same order.
      if (!current_.site_stream.empty() &&
          current_.site_stream.back().static_index == event.static_index) {
        ++current_.site_stream.back().count;
      } else {
        current_.site_stream.push_back({event.static_index, 1});
      }
    }
  };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void ProfilerTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                               const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      // Instrument every instruction of every kernel in the module; whether a
      // given launch actually pays for it is decided per launch below.
      for (const auto& fn : info.module->functions()) {
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          runtime.InsertCall(*fn, instr.index(), kCountFn, sim::InsertPoint::kBefore);
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin:
      OnLaunchBegin(runtime, info);
      break;
    case nvbit::CudaEvent::kKernelLaunchEnd:
      OnLaunchEnd(info);
      break;
  }
}

void ProfilerTool::OnLaunchBegin(nvbit::Runtime& runtime, const nvbit::EventInfo& info) {
  const bool instrument =
      mode_ == Mode::kExact || info.launch->launch_ordinal == 0;
  runtime.EnableInstrumented(*info.function, instrument);
  counting_ = instrument;
  if (instrument) {
    current_ = KernelProfile{};
    current_.kernel_name = info.launch->kernel_name;
    current_.kernel_count = info.launch->launch_ordinal;
  }
}

void ProfilerTool::OnLaunchEnd(const nvbit::EventInfo& info) {
  if (counting_) {
    if (mode_ == Mode::kApproximate) first_instance_[current_.kernel_name] = current_;
    profile_.kernels.push_back(current_);
    counting_ = false;
    return;
  }
  if (mode_ == Mode::kApproximate) {
    // Replicate the first-instance counts for this uninstrumented instance
    // ("assumes that the instruction counts for subsequent instances of the
    // same static kernel are the same").
    const auto it = first_instance_.find(info.launch->kernel_name);
    if (it == first_instance_.end()) {
      LOG_WARN << "approximate profiler missed first instance of '"
               << info.launch->kernel_name << "'";
      return;
    }
    KernelProfile replicated = it->second;
    replicated.kernel_count = info.launch->launch_ordinal;
    // Replicated counts are an approximation; a site stream would falsely
    // claim event-exact knowledge of this launch.
    replicated.site_stream.clear();
    profile_.kernels.push_back(std::move(replicated));
  }
}

ProgramProfile ProfilerTool::TakeProfile() {
  ProgramProfile out = std::move(profile_);
  profile_ = ProgramProfile{};
  profile_.program_name = program_name_;
  profile_.approximate = mode_ == Mode::kApproximate;
  first_instance_.clear();
  return out;
}

}  // namespace nvbitfi::fi
