#include "core/pruning.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/check.h"
#include "core/corruption.h"
#include "nvbit/nvbit.h"

namespace nvbitfi::fi {
namespace {

constexpr const char* kPruneFn = "nvbitfi_pruned_inject";

// Injector targeting the n-th dynamic instance of one *opcode* within one
// dynamic kernel instance (a pruning equivalence class).
class PrunedSiteInjectorTool final : public nvbit::Tool {
 public:
  explicit PrunedSiteInjectorTool(const PrunedSite& site) : site_(site) {}

  std::string ConfigKey() const override { return "pruned_injector"; }

  void OnAttach(nvbit::Runtime& runtime) override {
    nvbit::DeviceFunction fn;
    fn.name = kPruneFn;
    fn.regs_used = 8;
    fn.cost_cycles = 24;
    fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
    runtime.RegisterDeviceFunction(std::move(fn));
  }

  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override {
    switch (event) {
      case nvbit::CudaEvent::kModuleLoaded:
        for (const auto& fn : info.module->functions()) {
          if (fn->name() != site_.kernel_name) continue;
          for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
            if (instr.opcode() == site_.opcode) {
              runtime.InsertCall(*fn, instr.index(), kPruneFn, sim::InsertPoint::kAfter);
            }
          }
        }
        break;
      case nvbit::CudaEvent::kKernelLaunchBegin: {
        const bool is_target = info.launch->kernel_name == site_.kernel_name &&
                               info.launch->launch_ordinal == site_.kernel_count;
        runtime.EnableInstrumented(*info.function, is_target && !done_);
        armed_ = is_target && !done_;
        if (armed_) counter_ = 0;
        break;
      }
      case nvbit::CudaEvent::kKernelLaunchEnd:
        if (armed_) {
          runtime.EnableInstrumented(*info.function, false);
          armed_ = false;
        }
        break;
    }
  }

  const InjectionRecord& record() const { return record_; }

 private:
  void Inject(const sim::InstrEvent& event) {
    if (!armed_ || done_ || !event.lane.guard_true()) return;
    const std::uint64_t index = counter_++;
    if (index != site_.params.instruction_count) return;
    done_ = true;
    ApplyTransientCorruption(event, site_.params, &record_);
  }

  PrunedSite site_;
  InjectionRecord record_;
  std::uint64_t counter_ = 0;
  bool armed_ = false;
  bool done_ = false;
};

}  // namespace

std::vector<PrunedSite> BuildPrunedSites(const ProgramProfile& profile,
                                         const PruningConfig& config, Rng& rng) {
  NVBITFI_CHECK_MSG(config.representatives_per_class >= 1,
                    "need at least one representative per class");
  const double group_total =
      static_cast<double>(std::max<std::uint64_t>(profile.GroupTotal(config.group), 1));

  // Aggregate classes across dynamic instances: the class is (static kernel,
  // opcode) — iteration-equivalent instances are exactly what pruning
  // collapses.  For each class keep the per-instance counts so that the
  // representative's dynamic instance is drawn proportionally.
  struct ClassKey {
    std::string kernel;
    int opcode;
    bool operator<(const ClassKey& other) const {
      return std::tie(kernel, opcode) < std::tie(other.kernel, other.opcode);
    }
  };
  struct ClassData {
    std::uint64_t total = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> instances;  // (ordinal, count)
  };
  std::map<ClassKey, ClassData> classes;
  for (const KernelProfile& kernel : profile.kernels) {
    for (int op = 0; op < sim::kOpcodeCount; ++op) {
      if (!OpcodeInGroup(static_cast<sim::Opcode>(op), config.group)) continue;
      const std::uint64_t count = kernel.opcode_counts[static_cast<std::size_t>(op)];
      if (count == 0) continue;
      ClassData& data = classes[ClassKey{kernel.kernel_name, op}];
      data.total += count;
      data.instances.emplace_back(kernel.kernel_count, count);
    }
  }

  std::vector<PrunedSite> sites;
  double covered_share = 0.0;
  for (const auto& [key, data] : classes) {
    const double share = static_cast<double>(data.total) / group_total;
    if (share < config.min_class_share) continue;  // pruned outright

    for (int r = 0; r < config.representatives_per_class; ++r) {
      // Draw a class-global index, then map it to a dynamic instance.
      std::uint64_t index = rng.UniformInt(0, data.total - 1);
      std::uint64_t ordinal = data.instances.front().first;
      for (const auto& [instance_ordinal, count] : data.instances) {
        if (index < count) {
          ordinal = instance_ordinal;
          break;
        }
        index -= count;
      }

      PrunedSite site;
      site.kernel_name = key.kernel;
      site.kernel_count = ordinal;
      site.opcode = static_cast<sim::Opcode>(key.opcode);
      site.weight = share / config.representatives_per_class;
      site.params.arch_state_id = config.group;
      site.params.bit_flip_model = config.flip_model;
      site.params.kernel_name = key.kernel;
      site.params.kernel_count = ordinal;
      site.params.instruction_count = index;  // within the instance's class events
      site.params.destination_register = rng.UniformUnit();
      site.params.bit_pattern_value = rng.UniformUnit();
      sites.push_back(std::move(site));
    }
    covered_share += share;
  }

  // Redistribute the pruned classes' share so weights sum to 1.
  if (covered_share > 0.0) {
    for (PrunedSite& site : sites) site.weight /= covered_share;
  }
  return sites;
}

PrunedCampaignResult RunPrunedCampaign(const CampaignRunner& runner,
                                       const TargetProgram& program,
                                       const ProgramProfile& profile,
                                       const PruningConfig& config, Rng& rng,
                                       const sim::DeviceProps& device) {
  PrunedCampaignResult result;
  const RunArtifacts golden = runner.RunGolden(device);
  const std::uint64_t watchdog =
      20 * std::max<std::uint64_t>(golden.max_launch_thread_instructions, 1000);

  result.sites = BuildPrunedSites(profile, config, rng);
  for (const PrunedSite& site : result.sites) {
    PrunedSiteInjectorTool tool(site);
    const RunArtifacts run = runner.Execute(&tool, device, watchdog);
    const Classification c = Classify(golden, run, program.sdc_checker());
    result.classifications.push_back(c);
    result.weighted.Add(c, site.weight);
    ++result.total_runs;
  }
  return result;
}

}  // namespace nvbitfi::fi
