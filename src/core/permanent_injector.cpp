#include "core/permanent_injector.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"

namespace nvbitfi::fi {
namespace {

constexpr const char* kPermanentFn = "nvbitfi_pf_inject";
constexpr const char* kIntermittentFn = "nvbitfi_if_inject";

// XORs the instruction's destination with the 32-bit mask (each written GPR
// gets the mask; predicate destinations flip when mask bit 0 is set).
// Returns true if any architectural state changed.
bool ApplyMask(const sim::InstrEvent& event, std::uint32_t mask) {
  const sim::Instruction& inst = event.instr;
  bool changed = false;
  const int gprs = sim::DestGprCount(inst);
  for (int i = 0; i < gprs; ++i) {
    const int reg = inst.dest_gpr + i;
    if (reg >= sim::kRZ) break;
    event.lane.WriteGpr(reg, event.lane.ReadGpr(reg) ^ mask);
    changed = changed || mask != 0;
  }
  if ((mask & 1u) != 0 &&
      (sim::DestKindOf(inst.opcode) == sim::DestKind::kPred ||
       sim::DestKindOf(inst.opcode) == sim::DestKind::kGprPred)) {
    if (inst.dest_pred != sim::kPT) {
      event.lane.WritePred(inst.dest_pred, !event.lane.ReadPred(inst.dest_pred));
      changed = true;
    }
  }
  return changed;
}

// Instruments every instance of `opcode` in every kernel of the module.
void InstrumentOpcode(nvbit::Runtime& runtime, const sim::Module& module,
                      sim::Opcode opcode, const char* device_fn) {
  for (const auto& fn : module.functions()) {
    for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
      if (instr.opcode() == opcode) {
        runtime.InsertCall(*fn, instr.index(), device_fn, sim::InsertPoint::kAfter);
      }
    }
  }
}

}  // namespace

PermanentInjectorTool::PermanentInjectorTool(PermanentFaultParams params)
    : params_(params) {
  NVBITFI_CHECK_MSG(params_.opcode_id >= 0 && params_.opcode_id < sim::kOpcodeCount,
                    "opcode id out of range: " << params_.opcode_id);
  NVBITFI_CHECK_MSG(params_.lane_id >= 0 && params_.lane_id < sim::kWarpSize,
                    "lane id out of range: " << params_.lane_id);
}

std::string PermanentInjectorTool::ConfigKey() const {
  return "pf_injector/" + std::string(sim::OpcodeName(params_.opcode()));
}

void PermanentInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kPermanentFn;
  fn.regs_used = kInjectorRegs;
  fn.cost_cycles = kInjectorCycles;
  fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void PermanentInjectorTool::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                                        const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      InstrumentOpcode(runtime, *info.module, params_.opcode(), kPermanentFn);
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin:
      // A permanent fault is present in every launch.
      runtime.EnableInstrumented(*info.function, true);
      break;
    case nvbit::CudaEvent::kKernelLaunchEnd:
      break;
  }
}

void PermanentInjectorTool::Inject(const sim::InstrEvent& event) {
  if (!event.lane.guard_true()) return;
  if (event.lane.sm_id() != params_.sm_id || event.lane.lane_id() != params_.lane_id) {
    return;
  }
  if (ApplyMask(event, params_.bit_mask)) ++activations_;
}

IntermittentInjectorTool::IntermittentInjectorTool(IntermittentFaultParams params)
    : params_(params), rng_(params.seed) {
  NVBITFI_CHECK_MSG(params_.duty_cycle > 0.0 && params_.duty_cycle < 1.0,
                    "duty cycle must be in (0,1)");
  NVBITFI_CHECK_MSG(params_.mean_burst_events >= 1.0, "burst length must be >= 1 event");
  // Gilbert on/off process: exit probability fixes the mean burst length;
  // entry probability then fixes the long-run duty cycle.
  p_exit_burst_ = 1.0 / params_.mean_burst_events;
  const double mean_off =
      params_.mean_burst_events * (1.0 - params_.duty_cycle) / params_.duty_cycle;
  p_enter_burst_ = 1.0 / std::max(mean_off, 1.0);
}

std::string IntermittentInjectorTool::ConfigKey() const {
  return "if_injector/" + std::string(sim::OpcodeName(params_.base.opcode()));
}

void IntermittentInjectorTool::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction fn;
  fn.name = kIntermittentFn;
  fn.regs_used = PermanentInjectorTool::kInjectorRegs;
  fn.cost_cycles = PermanentInjectorTool::kInjectorCycles;
  fn.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(fn));
}

void IntermittentInjectorTool::AtCudaEvent(nvbit::Runtime& runtime,
                                           nvbit::CudaEvent event,
                                           const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      InstrumentOpcode(runtime, *info.module, params_.base.opcode(), kIntermittentFn);
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin:
      runtime.EnableInstrumented(*info.function, true);
      break;
    case nvbit::CudaEvent::kKernelLaunchEnd:
      break;
  }
}

bool IntermittentInjectorTool::StepBurstProcess() {
  if (burst_active_) {
    if (rng_.Chance(p_exit_burst_)) burst_active_ = false;
  } else {
    if (rng_.Chance(p_enter_burst_)) burst_active_ = true;
  }
  return burst_active_;
}

void IntermittentInjectorTool::Inject(const sim::InstrEvent& event) {
  if (!event.lane.guard_true()) return;
  if (event.lane.sm_id() != params_.base.sm_id ||
      event.lane.lane_id() != params_.base.lane_id) {
    return;
  }
  ++eligible_events_;
  if (!StepBurstProcess()) return;
  if (ApplyMask(event, params_.base.bit_mask)) ++activations_;
}

}  // namespace nvbitfi::fi
