// Interface between the campaign engine and the static analysis layer.
//
// The core library defines only this hook; the implementation lives in
// src/staticanalysis (StaticSiteAnalysis), which depends on core — the same
// inversion the trace library uses for its campaign tool factory, keeping
// the dependency graph acyclic.
//
// Soundness contract (one-sided, mirroring the fault-propagation tracer): a
// verdict with `statically_dead == true` promises the injection is
// dynamically fully masked — the corrupted register is overwritten (or never
// read) along every path from the injection point, so the run's outputs are
// bit-identical to the golden run.  `statically_dead == false` promises
// nothing.  Campaigns consume the verdict in one of two modes:
//
//   kPrune — skip simulating statically-dead sites and synthesize the Masked
//            result they are guaranteed to produce.
//   kCheck — simulate everything anyway and report any statically-dead site
//            that did NOT come back Masked as a static_violation.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/fault_model.h"
#include "core/profile.h"
#include "sassim/isa/opcode.h"

namespace nvbitfi::fi {

enum class StaticSiteMode : std::uint8_t { kOff, kCheck, kPrune };

inline std::string_view StaticSiteModeName(StaticSiteMode mode) {
  switch (mode) {
    case StaticSiteMode::kCheck: return "check";
    case StaticSiteMode::kPrune: return "prune";
    case StaticSiteMode::kOff: break;
  }
  return "off";
}

struct StaticSiteVerdict {
  // The dynamic site was mapped to a static instruction.  False when the
  // kernel is unknown, the profile lacks an exact site stream, or the
  // instruction_count draw falls outside the recorded population.
  bool resolved = false;
  bool statically_dead = false;
  std::uint32_t static_index = 0;
  sim::Opcode opcode = sim::Opcode::kNOP;
  // The corruption target the destination-register draw selects at that
  // instruction (mirrors InjectionRecord's target fields).  has_target is
  // false when the site has no architectural target at all — the fault
  // vanishes, which is itself a statically-dead site.
  bool has_target = false;
  bool pred_target = false;
  int target_register = -1;
  int register_width = 32;
  // The register-granular verdict alone (the PR 5 oracle): every register of
  // the target is absent from the live-out set.  statically_dead additionally
  // folds in the bit-granular all-bits-dead case, so reports can show the
  // increment the bit-level analysis buys.
  bool register_dead = false;
  // Bit-granular refinement: bit j set means flipping bit j of the target
  // cannot change observable output (same one-sided contract as
  // statically_dead, which it implies when all register_width bits are set).
  // Zero when nothing is known (unresolved, excluded, or no target).
  std::uint64_t dead_bits = 0;
  // popcount(dead_bits) / register_width — the static masking score used as
  // an adaptive stratum dimension and importance weight.
  double masking_score = 0.0;
  // The concrete XOR mask implied by the params' bit-flip model touches only
  // dead bits, so this specific draw is provably Masked even though the
  // register as a whole is live.  Only single-/two-bit flip models have
  // statically known masks; pruning consumes statically_dead || flip_dead.
  bool flip_dead = false;
};

class StaticSiteOracle {
 public:
  virtual ~StaticSiteOracle() = default;

  // Maps `params` (drawn against `profile`) to a static verdict.  Must be
  // thread-safe: campaign workers call it concurrently.
  virtual StaticSiteVerdict Evaluate(const ProgramProfile& profile,
                                     const TransientFaultParams& params) const = 0;
};

}  // namespace nvbitfi::fi
