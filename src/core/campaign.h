// Injection-campaign orchestration (Figure 1).
//
// A transient campaign: (1) golden run, (2) profiling run (exact or
// approximate), (3) N injection runs with randomly selected sites, each
// classified against the golden outputs per Table V.
//
// A permanent campaign: one run per opcode (optionally restricted to the
// opcodes the profile shows are executed — the Fig. 5 optimisation), each
// weighted by the opcode's dynamic-instruction share (Fig. 3).
//
// Injection runs are independent (each gets its own sim::Context and a Rng
// stream pre-forked on the driving thread), so campaigns execute them on a
// WorkerPool of `num_workers` threads.  Results are merged in experiment
// order, and the fork sequence matches the serial one, so every worker count
// produces bit-identical results; only wall-clock time changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/experiment_tool.h"
#include "core/fault_model.h"
#include "core/outcome.h"
#include "core/permanent_injector.h"
#include "core/profile.h"
#include "core/profiler_tool.h"
#include "core/run_cache.h"
#include "core/static_oracle.h"
#include "core/target_program.h"
#include "core/transient_injector.h"
#include "nvbit/nvbit.h"
#include "telemetry/metrics.h"

namespace nvbitfi::fi {

struct InjectionRun;
struct PermanentRun;

// Streaming hook: invoked once per freshly executed experiment, from the
// worker thread that ran it, after classification.  Implementations must be
// thread-safe (the analysis layer's ResultStore serialises internally).
// Experiments served from `preloaded` do NOT fire the observer — they were
// already persisted by the interrupted campaign being resumed.
using TransientRunObserver = std::function<void(std::size_t, const InjectionRun&)>;
using PermanentRunObserver = std::function<void(std::size_t, const PermanentRun&)>;

// Replay-accounting hook: invoked immediately before on_run_complete, on the
// same worker thread, for every freshly executed experiment.  `stats` is
// null when the run did not fast-forward from checkpoints (checkpoints off,
// or the golden run never executed the target launch).  Shard stores use
// this to persist per-run replay stats atomically with the run record.
using TransientReplayObserver =
    std::function<void(std::size_t, const sim::ReplayStats*)>;

struct TransientCampaignConfig {
  std::uint64_t seed = 1;
  int num_injections = 100;
  ArchStateId group = ArchStateId::kGGp;
  BitFlipModel flip_model = BitFlipModel::kFlipSingleBit;
  // When true, each injection draws its bit-flip model uniformly from the
  // four Table II models instead of using `flip_model`.
  bool randomize_flip_model = true;
  ProfilerTool::Mode profiling = ProfilerTool::Mode::kExact;
  // Watchdog bound for injection runs, as a multiple of the golden run's
  // largest per-launch thread-instruction count (hang detection).
  std::uint64_t watchdog_multiplier = 20;
  // Concurrent injection runs: 1 = serial, 0 = hardware concurrency.  Any
  // value yields the same results as 1 (see the class comment).
  int num_workers = 1;
  sim::DeviceProps device;
  // Resume support: experiments whose index appears here are not re-executed;
  // the stored run is used verbatim.  Rng streams are still forked for every
  // index on the driving thread, so the remaining experiments see exactly the
  // streams an uninterrupted campaign would have given them — a resumed
  // campaign is bit-identical to an unresumed one by construction.
  const std::map<std::size_t, InjectionRun>* preloaded = nullptr;
  TransientRunObserver on_run_complete;
  // Opt-in replacement for the default TransientInjectorTool — e.g. the
  // trace library's TaintTracker, which injects *and* follows the corruption.
  // Invoked on the worker thread; each call must return a fresh tool.
  TransientToolFactory tool_factory;
  // Marks the campaign as propagation-traced.  Identity only (result-store
  // header + resume compatibility); the tracing itself comes from
  // tool_factory — core cannot depend on the trace library, so callers set
  // both (the CLI's --trace does).
  bool trace = false;
  // Golden-prefix checkpoint reuse (see sassim/runtime/checkpoint.h): the
  // golden run records a per-launch checkpoint stream, and each injection run
  // fast-forwards the launches before its target launch by restoring recorded
  // state instead of re-simulating.  Outcome distributions, accounting, and
  // stored records are bit-identical to an uncheckpointed campaign (the
  // engine falls back to live execution whenever they would not be); only
  // wall-clock time changes.  Campaign identity still records the flag so
  // that a resumed store matches the original's configuration exactly.
  bool checkpoints = true;
  // Static-liveness site handling (see static_oracle.h).  kPrune skips
  // simulating statically-dead sites and synthesizes their guaranteed Masked
  // result; kCheck simulates everything and records disagreements as
  // static_violations.  Requires `static_oracle` and exact profiling (an
  // approximate profile has no event-exact site streams to resolve against).
  StaticSiteMode static_mode = StaticSiteMode::kOff;
  const StaticSiteOracle* static_oracle = nullptr;
  // Shard execution: only experiments with index in [index_begin, index_end)
  // run (0/0 = all).  Rng streams are still pre-forked for EVERY index in
  // order, so an in-range experiment sees exactly the stream the unsharded
  // campaign gives it — a sharded campaign's records are bit-identical to
  // the unsharded campaign's records for the same indexes by construction.
  std::size_t index_begin = 0;
  std::size_t index_end = 0;
  // Adaptive execution: when set, only the listed indexes (each must be
  // < num_injections) run, overriding index_begin/index_end.  The same
  // stream-pre-fork rule applies, so an experiment's record depends only on
  // its index, never on which round or subset scheduled it — the property
  // that makes adaptive stores bit-comparable against uniform campaigns.
  const std::vector<std::size_t>* index_set = nullptr;
  // Cooperative cancellation (SIGINT/SIGTERM): once set, workers stop
  // claiming new experiments; already-started runs finish and are reported.
  // The result's `completed` mask and `cancelled` flag record the cut.
  const std::atomic<bool>* cancel = nullptr;
  TransientReplayObserver on_run_replay;
};

// One experiment's pre-execution randomness, resolved from its Rng stream:
// the bit-flip model draw plus the selected fault site (nullopt when the
// profile has no eligible site in the group — a trivially masked run).
struct TransientDraw {
  BitFlipModel model = BitFlipModel::kFlipSingleBit;
  std::optional<TransientFaultParams> params;
};

// Consumes `rng` exactly as RunTransientCampaign's experiment loop does.
// Both call sites share this function so the adaptive stratifier can never
// drift from what the campaign actually executes.
TransientDraw DrawTransientExperiment(const ProgramProfile& profile,
                                      ArchStateId group, BitFlipModel flip_model,
                                      bool randomize_flip_model, Rng& rng);

// Pre-draws every experiment in [0, config.num_injections) by replaying the
// campaign's stream pre-fork (seed + program name), without running anything.
// Element i is exactly the draw experiment i will make; the adaptive engine
// stratifies the full site population from this.
std::vector<TransientDraw> PreviewTransientFaults(
    const ProgramProfile& profile, const TransientCampaignConfig& config,
    const std::string& program_name);

struct InjectionRun {
  TransientFaultParams params;
  InjectionRecord record;
  RunArtifacts artifacts;
  Classification classification;
  // No eligible site existed in the configured group, so no run happened:
  // the experiment counts as Masked with zero cycles (copying the golden
  // artifacts here would double-count golden cycles in Fig. 5 totals).
  bool trivially_masked = false;
  // --static-prune: the static oracle proved the site dead, so the run was
  // not simulated; `record` is synthesized from the verdict and
  // `classification` is the Masked result the simulation would have produced.
  bool statically_masked = false;
  // Present when the campaign ran with a propagation-tracing tool factory.
  std::optional<trace::PropagationRecord> propagation;
};

// --static-check: a statically-dead site whose simulated outcome was not
// Masked (or whose recorded static instruction differs from the oracle's
// resolution) — a soundness-contract breach worth failing a campaign over.
struct StaticViolation {
  std::size_t index = 0;  // experiment index
  TransientFaultParams params;
  std::uint32_t static_index = 0;  // the oracle's resolution
  Classification classification;
  std::string detail;
};

struct TransientCampaignResult {
  std::string program;
  ProgramProfile profile;
  RunArtifacts golden;            // uninstrumented reference run
  RunArtifacts profiling_run;     // the instrumented profiling run
  std::vector<InjectionRun> injections;
  OutcomeCounts counts;
  // Experiments with no eligible site (subset of counts.masked).
  std::uint64_t trivially_masked = 0;
  // Experiments whose selected site was never reached (the injector armed
  // but the target dynamic instruction did not execute — possible when an
  // approximate profile overestimates an instance's dynamic count).  Also a
  // subset of counts.masked, but distinct from a genuine masked injection.
  std::uint64_t never_activated = 0;
  // --static-prune: runs skipped on a statically-dead verdict (subset of
  // counts.masked).  --static-check: runs whose verdict resolved, and the
  // statically-dead subset among them (all simulated).
  std::uint64_t statically_pruned = 0;
  std::uint64_t statically_checked = 0;
  std::uint64_t statically_dead = 0;
  std::vector<StaticViolation> static_violations;
  int workers = 1;           // worker count the campaign actually used
  double wall_seconds = 0.0; // wall-clock time of the injection phase
  // Per-phase CPU-seconds summed across workers (telemetry spans; empty when
  // telemetry is disabled).  Never persisted: the result store stays
  // byte-identical with telemetry on or off.
  telemetry::PhaseBreakdown phases;
  // Checkpoint-replay accounting (config.checkpoints): how many injection
  // runs started from a golden checkpoint, the launches and simulated
  // thread-instructions that fast-forwarding skipped, and the runs/launches
  // that had to fall back to live execution (host divergence or watchdog).
  bool checkpoints_used = false;
  std::uint64_t checkpointed_runs = 0;
  std::uint64_t replay_launches = 0;
  std::uint64_t replay_instructions_saved = 0;
  std::uint64_t replay_fallbacks = 0;
  // Per-experiment completion mask (empty = every experiment completed, the
  // form hand-built results use).  Index i is 0 when the experiment was
  // outside the campaign's index range or was cut off by cancellation; such
  // slots in `injections` are default-constructed and excluded from counts,
  // reports, and CSVs.
  std::vector<std::uint8_t> completed;
  bool cancelled = false;

  // Whether experiment i completed (ran, was preloaded, or was synthesized).
  bool RunCompleted(std::size_t i) const {
    return completed.empty() || (i < completed.size() && completed[i] != 0);
  }
  std::uint64_t CompletedRuns() const;

  double ProfilingOverhead() const;       // profiling cycles / golden cycles
  // Median run cycles / golden cycles over the runs that actually executed.
  double MedianInjectionOverhead() const;
  std::uint64_t TotalInjectionCycles() const;
  // Total campaign cycles: profiling + all injection runs (Fig. 5).
  std::uint64_t TotalCampaignCycles() const;
};

struct PermanentCampaignConfig {
  std::uint64_t seed = 1;
  // Restrict the sweep to opcodes with non-zero profile counts ("permanent
  // fault experiments can be skipped for unused opcodes").
  bool only_executed_opcodes = true;
  // SM to pin the fault to; -1 draws one uniformly per run.
  int sm_id = 0;
  // Lane is drawn uniformly per run; the XOR mask is a random non-zero
  // 32-bit pattern (Table III's arbitrary mask) unless `fixed_mask` is set.
  std::uint32_t fixed_mask = 0;
  std::uint64_t watchdog_multiplier = 20;
  // Concurrent injection runs: 1 = serial, 0 = hardware concurrency.
  int num_workers = 1;
  sim::DeviceProps device;
  // Resume support; see TransientCampaignConfig.
  const std::map<std::size_t, PermanentRun>* preloaded = nullptr;
  PermanentRunObserver on_run_complete;
  // Cooperative cancellation; see TransientCampaignConfig.
  const std::atomic<bool>* cancel = nullptr;
};

struct PermanentRun {
  PermanentFaultParams params;
  std::uint64_t activations = 0;
  double weight = 0.0;  // dynamic-instruction share of the opcode (Fig. 3)
  RunArtifacts artifacts;
  Classification classification;
};

struct PermanentCampaignResult {
  std::string program;
  std::vector<PermanentRun> runs;
  OutcomeCounts counts;          // unweighted tallies
  WeightedOutcomes weighted;     // Fig. 3 weighting
  std::size_t executed_opcodes = 0;
  int workers = 1;               // worker count the campaign actually used
  double wall_seconds = 0.0;     // wall-clock time of the injection phase
  telemetry::PhaseBreakdown phases;  // see TransientCampaignResult::phases
  // Completion mask + cancellation flag; see TransientCampaignResult.
  std::vector<std::uint8_t> completed;
  bool cancelled = false;

  bool RunCompleted(std::size_t i) const {
    return completed.empty() || (i < completed.size() && completed[i] != 0);
  }

  double MedianInjectionOverhead(std::uint64_t golden_cycles) const;
  std::uint64_t TotalCampaignCycles() const;  // all permanent runs (Fig. 5)
};

class CampaignRunner {
 public:
  // With a cache, the golden run and the profile of each (program, device,
  // mode) key are computed once per cache and shared across campaign
  // variants; without one, every campaign runs its own.
  explicit CampaignRunner(const TargetProgram& program, RunCache* cache = nullptr)
      : program_(program), cache_(cache) {}

  // Runs the program with an optional tool attached and the given watchdog;
  // harvests context state into the returned artifacts.
  RunArtifacts Execute(nvbit::Tool* tool, const sim::DeviceProps& device,
                       std::uint64_t watchdog) const;

  // Replay variant: launches before `stop_before_global_ordinal` are
  // fast-forwarded from `checkpoints` where the engine's safety rules allow
  // (see sassim/runtime/checkpoint.h); `replay_stats` (optional) counts the
  // work saved.  Results are bit-identical to the plain Execute.
  RunArtifacts Execute(nvbit::Tool* tool, const sim::DeviceProps& device,
                       std::uint64_t watchdog,
                       const sim::CheckpointStream* checkpoints,
                       std::uint64_t stop_before_global_ordinal,
                       sim::ReplayStats* replay_stats) const;

  // Step 0/1 of Figure 1, reusable separately by benches.  These always run
  // the program; the cache-aware Golden/Profile below are what campaigns use.
  RunArtifacts RunGolden(const sim::DeviceProps& device) const;
  // Golden run that also records the per-launch checkpoint stream (the
  // artifacts are bit-identical to RunGolden: recording only observes).
  RunCache::GoldenEntry RunGoldenCheckpointed(const sim::DeviceProps& device) const;
  ProgramProfile RunProfiler(ProfilerTool::Mode mode, const sim::DeviceProps& device,
                             RunArtifacts* profiling_artifacts) const;

  // Cache-aware step 0/1: served from the RunCache when one was supplied,
  // computed fresh otherwise.
  RunArtifacts Golden(const sim::DeviceProps& device) const;
  RunCache::GoldenEntry GoldenCheckpointed(const sim::DeviceProps& device) const;
  ProgramProfile Profile(ProfilerTool::Mode mode, const sim::DeviceProps& device,
                         RunArtifacts* profiling_artifacts) const;

  TransientCampaignResult RunTransientCampaign(const TransientCampaignConfig& config) const;

  // `profile` supplies the executed-opcode set and Fig. 3 weights (pass the
  // profile from a transient campaign, or run RunProfiler first).
  PermanentCampaignResult RunPermanentCampaign(const PermanentCampaignConfig& config,
                                               const ProgramProfile& profile) const;

 private:
  const TargetProgram& program_;
  RunCache* cache_ = nullptr;
};

}  // namespace nvbitfi::fi
