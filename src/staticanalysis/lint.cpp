#include "staticanalysis/lint.h"

#include "common/strings.h"
#include "sassim/isa/opcode.h"
#include "staticanalysis/liveness.h"
#include "staticanalysis/reaching_defs.h"

namespace nvbitfi::staticanalysis {

namespace {

using sim::Instruction;
using sim::Opcode;

// Opcode is removable when its results are dead: pure register-to-register
// computation, no memory traffic, no control effect, no cross-lane data
// exchange.
bool SideEffectFree(const Instruction& inst) {
  switch (sim::ClassOf(inst.opcode)) {
    case sim::OpClass::kFp16:
    case sim::OpClass::kFp32:
    case sim::OpClass::kFp64:
    case sim::OpClass::kInt:
    case sim::OpClass::kConversion:
    case sim::OpClass::kMove:
    case sim::OpClass::kPredicate:
      break;
    default:
      return false;
  }
  // Collectives contribute source values to other lanes even when their own
  // destination is dead.
  return inst.opcode != Opcode::kSHFL && inst.opcode != Opcode::kVOTE;
}

void LintReadBeforeDef(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                       const ReachingDefsAnalysis& reaching,
                       std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    if (!liveness.cfg().InstructionReachable(i)) continue;
    const RegSet& uses = liveness.effects(i).uses;
    for (int r = 0; r < sim::kRZ; ++r) {
      if (uses.TestGpr(r) && reaching.EntryDefReaches(i, /*is_pred=*/false,
                                                      static_cast<std::uint8_t>(r))) {
        findings.push_back({LintKind::kReadBeforeDef, i,
                            Format("R%d may be read before any definition", r)});
      }
    }
    for (int p = 0; p < sim::kPT; ++p) {
      if (uses.TestPred(p) && reaching.EntryDefReaches(i, /*is_pred=*/true,
                                                       static_cast<std::uint8_t>(p))) {
        findings.push_back({LintKind::kReadBeforeDef, i,
                            Format("P%d may be read before any definition", p)});
      }
    }
  }
}

void LintUnreachable(const ControlFlowGraph& cfg, std::vector<LintFinding>& findings) {
  for (const BasicBlock& block : cfg.blocks()) {
    if (block.reachable) continue;
    findings.push_back({LintKind::kUnreachableBlock, block.begin,
                        Format("basic block [%u, %u) is unreachable from kernel entry",
                               block.begin, block.end)});
  }
}

void LintDeadStores(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                    std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    const Instruction& inst = kernel.instructions[i];
    // Guarded instructions are skipped: per-lane execution may differ, and a
    // "dead" guarded write is usually intentional divergence handling.
    if (inst.guard_pred != sim::kPT || inst.guard_negate) continue;
    if (!liveness.cfg().InstructionReachable(i)) continue;
    if (!SideEffectFree(inst)) continue;
    const RegSet& defs = liveness.effects(i).may_defs;
    if (defs.Empty()) continue;
    const RegSet& live_out = liveness.LiveOutAt(i);
    if (defs.Intersects(live_out)) continue;
    findings.push_back({LintKind::kDeadStore, i,
                        "result is never read (dead on every path)"});
  }
}

void LintGuards(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                std::vector<LintFinding>& findings) {
  // Predicates written anywhere in the kernel (by reachable instructions).
  RegSet written;
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    if (liveness.cfg().InstructionReachable(i)) written |= liveness.effects(i).may_defs;
  }
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    if (!liveness.cfg().InstructionReachable(i)) continue;
    const Instruction& inst = kernel.instructions[i];
    if (inst.guard_pred == sim::kPT) {
      if (inst.guard_negate) {
        findings.push_back({LintKind::kConstantGuard, i,
                            "@!PT guard: the instruction can never execute"});
      }
      continue;
    }
    if (written.TestPred(inst.guard_pred)) continue;
    // Predicates are zero-initialised, so an unwritten guard is constant.
    if (inst.guard_negate) {
      findings.push_back(
          {LintKind::kConstantGuard, i,
           Format("@!P%d guard is always taken: P%d is never written", inst.guard_pred,
                  inst.guard_pred)});
    } else {
      findings.push_back(
          {LintKind::kConstantGuard, i,
           Format("@P%d guard is never taken: P%d is never written", inst.guard_pred,
                  inst.guard_pred)});
    }
  }
}

void LintSharedOffsets(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                       std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    const Instruction& inst = kernel.instructions[i];
    if (inst.opcode != Opcode::kLDS && inst.opcode != Opcode::kSTS &&
        inst.opcode != Opcode::kATOMS) {
      continue;
    }
    if (!liveness.cfg().InstructionReachable(i)) continue;
    if (inst.num_src == 0 || inst.src[0].kind != sim::Operand::Kind::kMem) continue;
    if (inst.src[0].mem_base != sim::kRZ) continue;  // dynamic address
    const std::int64_t offset = inst.src[0].mem_offset;
    // Atomics access a 32-bit word regardless of the width modifier.
    const std::int64_t bytes =
        inst.opcode == Opcode::kATOMS ? 4 : sim::MemWidthBytes(inst.mods.width);
    if (offset < 0 || offset + bytes > static_cast<std::int64_t>(kernel.shared_bytes)) {
      findings.push_back(
          {LintKind::kSharedOutOfRange, i,
           Format("constant shared access [%lld, %lld) is outside the declared "
                  "%u shared bytes",
                  static_cast<long long>(offset), static_cast<long long>(offset + bytes),
                  kernel.shared_bytes)});
    }
  }
}

}  // namespace

std::string_view LintKindName(LintKind kind) {
  switch (kind) {
    case LintKind::kReadBeforeDef: return "read-before-def";
    case LintKind::kUnreachableBlock: return "unreachable-block";
    case LintKind::kDeadStore: return "dead-store";
    case LintKind::kConstantGuard: return "constant-guard";
    case LintKind::kSharedOutOfRange: return "shared-out-of-range";
  }
  return "unknown";
}

std::vector<LintFinding> LintKernel(const sim::KernelSource& kernel) {
  std::vector<LintFinding> findings;
  if (kernel.instructions.empty()) return findings;
  const LivenessAnalysis liveness(kernel);
  const ReachingDefsAnalysis reaching(kernel, liveness.cfg());
  LintReadBeforeDef(kernel, liveness, reaching, findings);
  LintUnreachable(liveness.cfg(), findings);
  LintDeadStores(kernel, liveness, findings);
  LintGuards(kernel, liveness, findings);
  LintSharedOffsets(kernel, liveness, findings);
  return findings;
}

std::string LintReport(const sim::KernelSource& kernel,
                       const std::vector<LintFinding>& findings) {
  std::string out;
  for (const LintFinding& f : findings) {
    out += Format("%s:%u: %s: %s", kernel.name.c_str(), f.instr_index,
                  std::string(LintKindName(f.kind)).c_str(), f.message.c_str());
    if (f.instr_index < kernel.instructions.size()) {
      out += "   [" + kernel.instructions[f.instr_index].ToString() + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace nvbitfi::staticanalysis
