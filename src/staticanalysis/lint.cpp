#include "staticanalysis/lint.h"

#include "common/strings.h"
#include "sassim/isa/opcode.h"
#include "staticanalysis/bitliveness.h"
#include "staticanalysis/liveness.h"
#include "staticanalysis/reaching_defs.h"

namespace nvbitfi::staticanalysis {

namespace {

using sim::Instruction;
using sim::Opcode;

void LintReadBeforeDef(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                       const ReachingDefsAnalysis& reaching,
                       std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    if (!liveness.cfg().InstructionReachable(i)) continue;
    const RegSet& uses = liveness.effects(i).uses;
    for (int r = 0; r < sim::kRZ; ++r) {
      if (uses.TestGpr(r) && reaching.EntryDefReaches(i, /*is_pred=*/false,
                                                      static_cast<std::uint8_t>(r))) {
        findings.push_back({LintKind::kReadBeforeDef, i,
                            Format("R%d may be read before any definition", r)});
      }
    }
    for (int p = 0; p < sim::kPT; ++p) {
      if (uses.TestPred(p) && reaching.EntryDefReaches(i, /*is_pred=*/true,
                                                       static_cast<std::uint8_t>(p))) {
        findings.push_back({LintKind::kReadBeforeDef, i,
                            Format("P%d may be read before any definition", p)});
      }
    }
  }
}

void LintUnreachable(const ControlFlowGraph& cfg, std::vector<LintFinding>& findings) {
  for (const BasicBlock& block : cfg.blocks()) {
    if (block.reachable) continue;
    findings.push_back({LintKind::kUnreachableBlock, block.begin,
                        Format("basic block [%u, %u) is unreachable from kernel entry",
                               block.begin, block.end)});
  }
}

void LintDeadStores(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                    std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    const Instruction& inst = kernel.instructions[i];
    // Guarded instructions are skipped: per-lane execution may differ, and a
    // "dead" guarded write is usually intentional divergence handling.
    if (inst.guard_pred != sim::kPT || inst.guard_negate) continue;
    if (!liveness.cfg().InstructionReachable(i)) continue;
    if (!SideEffectFreeInstr(inst)) continue;
    const RegSet& defs = liveness.effects(i).may_defs;
    if (defs.Empty()) continue;
    const RegSet& live_out = liveness.LiveOutAt(i);
    if (defs.Intersects(live_out)) continue;
    findings.push_back({LintKind::kDeadStore, i,
                        "result is never read (dead on every path)"});
  }
}

void LintGuards(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                std::vector<LintFinding>& findings) {
  // Predicates written anywhere in the kernel (by reachable instructions).
  RegSet written;
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    if (liveness.cfg().InstructionReachable(i)) written |= liveness.effects(i).may_defs;
  }
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    if (!liveness.cfg().InstructionReachable(i)) continue;
    const Instruction& inst = kernel.instructions[i];
    if (inst.guard_pred == sim::kPT) {
      if (inst.guard_negate) {
        findings.push_back({LintKind::kConstantGuard, i,
                            "@!PT guard: the instruction can never execute"});
      }
      continue;
    }
    if (written.TestPred(inst.guard_pred)) continue;
    // Predicates are zero-initialised, so an unwritten guard is constant.
    if (inst.guard_negate) {
      findings.push_back(
          {LintKind::kConstantGuard, i,
           Format("@!P%d guard is always taken: P%d is never written", inst.guard_pred,
                  inst.guard_pred)});
    } else {
      findings.push_back(
          {LintKind::kConstantGuard, i,
           Format("@P%d guard is never taken: P%d is never written", inst.guard_pred,
                  inst.guard_pred)});
    }
  }
}

void LintSharedOffsets(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                       std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    const Instruction& inst = kernel.instructions[i];
    if (inst.opcode != Opcode::kLDS && inst.opcode != Opcode::kSTS &&
        inst.opcode != Opcode::kATOMS) {
      continue;
    }
    if (!liveness.cfg().InstructionReachable(i)) continue;
    if (inst.num_src == 0 || inst.src[0].kind != sim::Operand::Kind::kMem) continue;
    if (inst.src[0].mem_base != sim::kRZ) continue;  // dynamic address
    const std::int64_t offset = inst.src[0].mem_offset;
    // Atomics access a 32-bit word regardless of the width modifier.
    const std::int64_t bytes =
        inst.opcode == Opcode::kATOMS ? 4 : sim::MemWidthBytes(inst.mods.width);
    if (offset < 0 || offset + bytes > static_cast<std::int64_t>(kernel.shared_bytes)) {
      findings.push_back(
          {LintKind::kSharedOutOfRange, i,
           Format("constant shared access [%lld, %lld) is outside the declared "
                  "%u shared bytes",
                  static_cast<long long>(offset), static_cast<long long>(offset + bytes),
                  kernel.shared_bytes)});
    }
  }
}

void LintRedundantMasks(const sim::KernelSource& kernel,
                        const LivenessAnalysis& liveness,
                        const BitLivenessAnalysis& bitliveness,
                        std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    const Instruction& inst = kernel.instructions[i];
    if (inst.opcode != Opcode::kLOP && inst.opcode != Opcode::kLOP32I) continue;
    if (inst.num_src < 2) continue;
    if (sim::DestKindOf(inst.opcode) != sim::DestKind::kGpr) continue;
    if (!liveness.cfg().InstructionReachable(i)) continue;
    const auto va = KnownOperandValue(inst.src[0]);
    const auto vb = KnownOperandValue(inst.src[1]);
    // Exactly one immediate operand: two immediates are a constant fold, two
    // registers are not a mask.
    if (va.has_value() == vb.has_value()) continue;
    const std::uint32_t v = va.has_value() ? *va : *vb;
    const std::uint32_t L = bitliveness.LiveOutAt(i).GprBits(inst.dest_gpr);
    if (L == 0) continue;  // fully dead result: the dead-store rule's turf
    // AND can only change bits the immediate clears; OR only bits it sets.
    std::uint32_t changeable = 0;
    const char* verb = nullptr;
    switch (inst.mods.bool_op) {
      case sim::BoolOp::kAnd:
        changeable = ~v;
        verb = "AND";
        break;
      case sim::BoolOp::kOr:
        changeable = v;
        verb = "OR";
        break;
      case sim::BoolOp::kXor:
        changeable = v;
        verb = "XOR";
        break;
    }
    if ((L & changeable) != 0) continue;
    findings.push_back(
        {LintKind::kRedundantMask, i,
         Format("%s with 0x%08X cannot change any live bit of R%d "
                "(live mask 0x%08X)",
                verb, v, inst.dest_gpr, L)});
  }
}

void LintShiftRanges(const sim::KernelSource& kernel, const LivenessAnalysis& liveness,
                     std::vector<LintFinding>& findings) {
  for (std::uint32_t i = 0; i < kernel.instructions.size(); ++i) {
    const Instruction& inst = kernel.instructions[i];
    std::uint32_t modulus = 0;
    if (inst.opcode == Opcode::kSHL || inst.opcode == Opcode::kSHR) {
      modulus = 32;
    } else if (inst.opcode == Opcode::kSHF) {
      modulus = 64;
    } else {
      continue;
    }
    if (inst.num_src < 2) continue;
    if (!liveness.cfg().InstructionReachable(i)) continue;
    const auto amount = KnownOperandValue(inst.src[1]);
    if (!amount.has_value() || *amount < modulus) continue;
    findings.push_back(
        {LintKind::kShiftOutOfRange, i,
         Format("shift amount %u exceeds the hardware's %u-bit range and "
                "truncates to %u",
                *amount, modulus == 32 ? 5u : 6u, *amount % modulus)});
  }
}

}  // namespace

std::string_view LintKindName(LintKind kind) {
  switch (kind) {
    case LintKind::kReadBeforeDef: return "read-before-def";
    case LintKind::kUnreachableBlock: return "unreachable-block";
    case LintKind::kDeadStore: return "dead-store";
    case LintKind::kConstantGuard: return "constant-guard";
    case LintKind::kSharedOutOfRange: return "shared-out-of-range";
    case LintKind::kRedundantMask: return "redundant-mask";
    case LintKind::kShiftOutOfRange: return "shift-out-of-range";
  }
  return "unknown";
}

std::vector<LintFinding> LintKernel(const sim::KernelSource& kernel) {
  std::vector<LintFinding> findings;
  if (kernel.instructions.empty()) return findings;
  const LivenessAnalysis liveness(kernel);
  const ReachingDefsAnalysis reaching(kernel, liveness.cfg());
  const BitLivenessAnalysis bitliveness(kernel, liveness.cfg());
  LintReadBeforeDef(kernel, liveness, reaching, findings);
  LintUnreachable(liveness.cfg(), findings);
  LintDeadStores(kernel, liveness, findings);
  LintGuards(kernel, liveness, findings);
  LintSharedOffsets(kernel, liveness, findings);
  LintRedundantMasks(kernel, liveness, bitliveness, findings);
  LintShiftRanges(kernel, liveness, findings);
  return findings;
}

std::string LintReport(const sim::KernelSource& kernel,
                       const std::vector<LintFinding>& findings) {
  std::string out;
  for (const LintFinding& f : findings) {
    out += Format("%s:%u: %s: %s", kernel.name.c_str(), f.instr_index,
                  std::string(LintKindName(f.kind)).c_str(), f.message.c_str());
    if (f.instr_index < kernel.instructions.size()) {
      out += "   [" + kernel.instructions[f.instr_index].ToString() + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace nvbitfi::staticanalysis
