// Generic iterative dataflow framework over a ControlFlowGraph.
//
// An Analysis type supplies the lattice and transfer function:
//
//   struct MyAnalysis {
//     using Value = ...;                       // lattice element (copyable)
//     Direction direction() const;             // kForward or kBackward
//     Value Boundary() const;                  // value at the graph boundary
//     Value Init() const;                      // initial interior value (top)
//     void Meet(Value& into, const Value& from) const;  // lattice meet (join)
//     Value Transfer(std::uint32_t block, const Value& in) const;
//     bool Equal(const Value& a, const Value& b) const;
//   };
//
// Solve() iterates a worklist over the reachable blocks until a fixed point.
// For a backward analysis, `out[b]` is the meet over successors' `in` (the
// boundary value for exit blocks) and `in[b] = Transfer(b, out[b])`.  For a
// forward analysis the roles mirror: `in[b]` is the meet over predecessors'
// `out` (the boundary value for the entry) and `out[b] = Transfer(b, in[b])`.
// Unreachable blocks keep Init() on both sides.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "staticanalysis/cfg.h"

namespace nvbitfi::staticanalysis {

enum class Direction : std::uint8_t { kForward, kBackward };

template <typename Analysis>
struct DataflowResult {
  std::vector<typename Analysis::Value> in;   // value at block entry
  std::vector<typename Analysis::Value> out;  // value at block exit
};

template <typename Analysis>
DataflowResult<Analysis> Solve(const ControlFlowGraph& cfg, const Analysis& analysis) {
  const auto& blocks = cfg.blocks();
  DataflowResult<Analysis> result;
  result.in.assign(blocks.size(), analysis.Init());
  result.out.assign(blocks.size(), analysis.Init());

  const bool backward = analysis.direction() == Direction::kBackward;
  // Seed in the direction-appropriate order (postorder for backward) so most
  // acyclic graphs converge in one sweep.
  std::deque<std::uint32_t> worklist;
  std::vector<bool> queued(blocks.size(), false);
  const auto& rpo = cfg.rpo();
  if (backward) {
    worklist.assign(rpo.rbegin(), rpo.rend());
  } else {
    worklist.assign(rpo.begin(), rpo.end());
  }
  for (const std::uint32_t b : worklist) queued[b] = true;

  while (!worklist.empty()) {
    const std::uint32_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    const auto& sources = backward ? blocks[b].succ : blocks[b].pred;
    typename Analysis::Value incoming = analysis.Init();
    bool any_source = false;
    for (const std::uint32_t s : sources) {
      if (!blocks[s].reachable) continue;
      analysis.Meet(incoming, backward ? result.in[s] : result.out[s]);
      any_source = true;
    }
    if (!any_source) incoming = analysis.Boundary();

    typename Analysis::Value transferred = analysis.Transfer(b, incoming);
    auto& incoming_slot = backward ? result.out[b] : result.in[b];
    auto& transferred_slot = backward ? result.in[b] : result.out[b];
    const bool changed = !analysis.Equal(transferred_slot, transferred);
    incoming_slot = std::move(incoming);
    if (!changed) continue;
    transferred_slot = std::move(transferred);
    const auto& dependents = backward ? blocks[b].pred : blocks[b].succ;
    for (const std::uint32_t d : dependents) {
      if (blocks[d].reachable && !queued[d]) {
        queued[d] = true;
        worklist.push_back(d);
      }
    }
  }
  return result;
}

}  // namespace nvbitfi::staticanalysis
