#include "staticanalysis/reaching_defs.h"

#include "staticanalysis/dataflow.h"

namespace nvbitfi::staticanalysis {

namespace {

struct ReachingProblem {
  using Value = SiteSet;

  const ReachingDefsAnalysis* analysis;
  const SiteSet* boundary;
  std::size_t num_sites;

  Direction direction() const { return Direction::kForward; }
  Value Boundary() const { return *boundary; }
  Value Init() const { return Value(num_sites); }
  void Meet(Value& into, const Value& from) const { into |= from; }
  bool Equal(const Value& a, const Value& b) const { return a == b; }
  Value Transfer(std::uint32_t block, const Value& in) const {
    return analysis->TransferBlock(block, in);
  }
};

}  // namespace

std::uint32_t ReachingDefsAnalysis::EntrySiteOf(bool is_pred, std::uint8_t reg) const {
  if (is_pred) return reg < sim::kPT ? pred_entry_site_[reg] : kEntryDef;
  return reg < sim::kRZ ? gpr_entry_site_[reg] : kEntryDef;
}

ReachingDefsAnalysis::ReachingDefsAnalysis(const sim::KernelSource& kernel,
                                           const ControlFlowGraph& cfg)
    : cfg_(&cfg),
      gpr_entry_site_(sim::kNumGpr, kEntryDef),
      pred_entry_site_(sim::kNumPred, kEntryDef) {
  const auto& body = kernel.instructions;
  std::vector<InstrEffects> effects;
  effects.reserve(body.size());
  for (const sim::Instruction& inst : body) effects.push_back(EffectsOf(inst));

  // Mentioned registers get entry pseudo-sites.
  RegSet mentioned;
  for (const InstrEffects& e : effects) {
    mentioned |= e.uses;
    mentioned |= e.may_defs;
  }
  for (int r = 0; r < sim::kRZ; ++r) {
    if (mentioned.TestGpr(r)) {
      gpr_entry_site_[static_cast<std::size_t>(r)] = static_cast<std::uint32_t>(sites_.size());
      sites_.push_back({kEntryDef, false, static_cast<std::uint8_t>(r)});
    }
  }
  for (int p = 0; p < sim::kPT; ++p) {
    if (mentioned.TestPred(p)) {
      pred_entry_site_[static_cast<std::size_t>(p)] = static_cast<std::uint32_t>(sites_.size());
      sites_.push_back({kEntryDef, true, static_cast<std::uint8_t>(p)});
    }
  }

  // Real sites, one per (instruction, may-defined register).
  std::vector<std::vector<std::uint32_t>> gpr_sites(sim::kNumGpr);
  std::vector<std::vector<std::uint32_t>> pred_sites(sim::kNumPred);
  instr_sites_.resize(body.size());
  for (std::uint32_t i = 0; i < body.size(); ++i) {
    const RegSet& defs = effects[i].may_defs;
    for (int r = 0; r < sim::kRZ; ++r) {
      if (!defs.TestGpr(r)) continue;
      const auto id = static_cast<std::uint32_t>(sites_.size());
      sites_.push_back({i, false, static_cast<std::uint8_t>(r)});
      gpr_sites[static_cast<std::size_t>(r)].push_back(id);
      instr_sites_[i].gen.push_back(id);
    }
    for (int p = 0; p < sim::kPT; ++p) {
      if (!defs.TestPred(p)) continue;
      const auto id = static_cast<std::uint32_t>(sites_.size());
      sites_.push_back({i, true, static_cast<std::uint8_t>(p)});
      pred_sites[static_cast<std::size_t>(p)].push_back(id);
      instr_sites_[i].gen.push_back(id);
    }
  }

  // Kill sets: must-defs kill every other site of the register; any may-def
  // kills the register's entry pseudo-site (see header).
  for (std::uint32_t i = 0; i < body.size(); ++i) {
    auto kill_reg = [&](bool is_pred, int reg, bool certain) {
      const std::uint32_t entry = EntrySiteOf(is_pred, static_cast<std::uint8_t>(reg));
      if (entry != kEntryDef) instr_sites_[i].kill.push_back(entry);
      if (!certain) return;
      const auto& all = is_pred ? pred_sites[static_cast<std::size_t>(reg)]
                                : gpr_sites[static_cast<std::size_t>(reg)];
      for (const std::uint32_t s : all) {
        if (sites_[s].instr != i) instr_sites_[i].kill.push_back(s);
      }
    };
    const RegSet& may = effects[i].may_defs;
    const RegSet& must = effects[i].must_defs;
    for (int r = 0; r < sim::kRZ; ++r) {
      if (may.TestGpr(r)) kill_reg(false, r, must.TestGpr(r));
    }
    for (int p = 0; p < sim::kPT; ++p) {
      if (may.TestPred(p)) kill_reg(true, p, must.TestPred(p));
    }
  }

  // Boundary: all entry pseudo-sites.
  SiteSet boundary(sites_.size());
  for (std::uint32_t s = 0; s < sites_.size(); ++s) {
    if (sites_[s].instr == kEntryDef) boundary.Add(s);
  }

  ReachingProblem problem{this, &boundary, sites_.size()};
  DataflowResult<ReachingProblem> solved = Solve(cfg, problem);
  block_in_ = std::move(solved.in);
}

SiteSet ReachingDefsAnalysis::TransferBlock(std::uint32_t block, const SiteSet& in) const {
  SiteSet value = in;
  const BasicBlock& b = cfg_->blocks()[block];
  for (std::uint32_t i = b.begin; i < b.end; ++i) ApplyInstr(value, i);
  return value;
}

void ReachingDefsAnalysis::ApplyInstr(SiteSet& value, std::uint32_t index) const {
  const InstrSites& s = instr_sites_[index];
  for (const std::uint32_t k : s.kill) value.Remove(k);
  for (const std::uint32_t g : s.gen) value.Add(g);
}

SiteSet ReachingDefsAnalysis::ReachingAt(std::uint32_t index) const {
  const std::uint32_t b = cfg_->BlockOf(index);
  if (b == kNoBlock || !cfg_->blocks()[b].reachable) return SiteSet(sites_.size());
  SiteSet value = block_in_[b];
  for (std::uint32_t i = cfg_->blocks()[b].begin; i < index; ++i) ApplyInstr(value, i);
  return value;
}

bool ReachingDefsAnalysis::EntryDefReaches(std::uint32_t index, bool is_pred,
                                           std::uint8_t reg) const {
  const std::uint32_t entry = EntrySiteOf(is_pred, reg);
  if (entry == kEntryDef) return false;
  return ReachingAt(index).Test(entry);
}

}  // namespace nvbitfi::staticanalysis
