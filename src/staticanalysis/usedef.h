// Per-instruction use/def sets, mirroring the functional executor's read and
// write behaviour (src/sassim/core/executor.cpp) operand for operand.  The
// soundness of every dataflow client rests on these sets over-approximating
// uses and under-approximating certain defs:
//
//   * `uses`  — every register the instruction MAY read (including the guard
//               predicate and 64-bit pair halves).
//   * `may_defs`  — every register the instruction MAY write.
//   * `must_defs` — registers the instruction writes on EVERY dynamic
//               execution; empty for guarded instructions (the guard may
//               suppress the write) and for R2P under a dynamic mask.
//
// An instruction guarded @!PT never executes and has empty sets.
#pragma once

#include "sassim/isa/instruction.h"
#include "staticanalysis/regset.h"

namespace nvbitfi::staticanalysis {

struct InstrEffects {
  RegSet uses;
  RegSet may_defs;
  RegSet must_defs;
};

InstrEffects EffectsOf(const sim::Instruction& inst);

}  // namespace nvbitfi::staticanalysis
