// Bit-granular register liveness over a kernel CFG.
//
// Refines LivenessAnalysis from "is this register live" to "which BITS of
// this register can still influence an observable output".  The lattice
// element is a per-register 32-bit mask plus a predicate set; the transfer
// functions model the bit-killing instructions the functional executor
// (src/sassim/core/executor.cpp) actually implements:
//
//   * LOP/LOP32I/LOP3 with immediate operands — bits an AND zeroes or an OR
//     forces to one cannot propagate through the untouched operand.
//   * SHL/SHR/SHF — shifted-out bits die; a constant amount maps demands
//     bit-exactly, an unknown amount demands the reachable cone.
//   * SGXT / sub-word stores / PRMT byte selects — only the extracted bits
//     (plus the replicated sign bit) are demanded.
//   * Address arithmetic (IADD3, IMAD, LEA, ISCADD) — carries propagate
//     strictly upward, so bits above the highest live result bit are dead.
//   * Comparisons and other unmodeled side-effect-free ops — when every
//     destination bit and predicate is dead the instruction demands nothing
//     (the "only the predicate survives" rule falls out of this gating);
//     otherwise they conservatively demand every bit of every register the
//     register-level analysis says they use.
//
// Soundness is one-sided and inherits EffectsOf's conservatism: kills are
// whole-register (the executor only writes full 32-bit registers), guarded
// instructions never kill, and anything that can trap, branch, touch memory,
// or cross lanes demands its sources fully.  By construction the result is a
// refinement: a bit can only be live if its register is live in
// LivenessAnalysis (tested as a property over every bundled workload).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sassim/isa/kernel.h"
#include "staticanalysis/cfg.h"
#include "staticanalysis/regset.h"

namespace nvbitfi::staticanalysis {

// Per-register live-bit masks: gpr_[r] bit j set means bit j of Rr may still
// influence an observable output.  RZ (R255) and PT are never members.
class BitLiveSet {
 public:
  void AddGprBits(int reg, std::uint32_t mask) {
    if (reg >= 0 && reg < sim::kRZ) gpr_[static_cast<std::size_t>(reg)] |= mask;
  }
  std::uint32_t GprBits(int reg) const {
    if (reg < 0 || reg >= sim::kRZ) return 0;
    return gpr_[static_cast<std::size_t>(reg)];
  }
  void KillGpr(int reg) {
    if (reg >= 0 && reg < sim::kRZ) gpr_[static_cast<std::size_t>(reg)] = 0;
  }

  void AddPred(int pred) {
    if (pred >= 0 && pred < sim::kPT) preds_ |= static_cast<std::uint8_t>(1u << pred);
  }
  void RemovePred(int pred) {
    if (pred >= 0 && pred < sim::kPT) preds_ &= static_cast<std::uint8_t>(~(1u << pred));
  }
  bool TestPred(int pred) const {
    if (pred < 0 || pred >= sim::kPT) return false;
    return (preds_ & (1u << pred)) != 0;
  }

  BitLiveSet& operator|=(const BitLiveSet& other) {
    for (std::size_t i = 0; i < gpr_.size(); ++i) gpr_[i] |= other.gpr_[i];
    preds_ |= other.preds_;
    return *this;
  }

  bool Empty() const {
    for (const std::uint32_t m : gpr_) {
      if (m != 0) return false;
    }
    return preds_ == 0;
  }

  bool operator==(const BitLiveSet&) const = default;

 private:
  std::array<std::uint32_t, sim::kRZ> gpr_{};
  std::uint8_t preds_ = 0;
};

// One backward step: the bit-live set immediately before `inst` given the
// set immediately after it.  Exposed for the table-driven transfer tests.
BitLiveSet BitTransfer(const sim::Instruction& inst, const BitLiveSet& live_out);

// Pure register-to-register computation: no memory traffic, no control
// effect, no cross-lane data exchange.  Such an instruction is removable
// (lint dead-store rule) and demands nothing once its destinations are dead
// (bit-liveness gating).
bool SideEffectFreeInstr(const sim::Instruction& inst);

// Known constant value of a source operand after the executor's integer
// modifier pipeline (absolute, then invert, then negate).  Only literals are
// statically known.  Shared with the lint rules that reason about immediates.
std::optional<std::uint32_t> KnownOperandValue(const sim::Operand& op);

class BitLivenessAnalysis {
 public:
  // Solves over `cfg` (built for `kernel` by the register-level analysis —
  // sharing it avoids a second CFG construction and guarantees both
  // analyses reason about identical reachability).
  BitLivenessAnalysis(const sim::KernelSource& kernel, const ControlFlowGraph& cfg);

  const BitLiveSet& LiveIn(std::uint32_t block) const { return block_in_[block]; }
  const BitLiveSet& LiveOut(std::uint32_t block) const { return block_out_[block]; }

  // Bit-live set immediately before / after instruction `index`.
  // Instructions in unreachable blocks report empty sets.
  const BitLiveSet& LiveInAt(std::uint32_t index) const { return instr_in_[index]; }
  const BitLiveSet& LiveOutAt(std::uint32_t index) const { return instr_out_[index]; }

 private:
  std::vector<BitLiveSet> block_in_;
  std::vector<BitLiveSet> block_out_;
  std::vector<BitLiveSet> instr_in_;
  std::vector<BitLiveSet> instr_out_;
};

}  // namespace nvbitfi::staticanalysis
