#include "staticanalysis/cfg.h"

#include <algorithm>

#include "sassim/isa/opcode.h"

namespace nvbitfi::staticanalysis {

namespace {

// Guard outcome known at compile time.
enum class GuardKind { kAlways, kNever, kConditional };

GuardKind GuardKindOf(const sim::Instruction& inst) {
  if (inst.guard_pred != sim::kPT) return GuardKind::kConditional;
  return inst.guard_negate ? GuardKind::kNever : GuardKind::kAlways;
}

}  // namespace

ControlEffect ControlEffectOf(const sim::Instruction& inst) {
  ControlEffect effect;
  const GuardKind guard = GuardKindOf(inst);
  switch (inst.opcode) {
    case sim::Opcode::kBRA:
    case sim::Opcode::kJMP:
      effect.terminates_block = true;
      effect.target = static_cast<std::uint32_t>(inst.src[0].imm);
      effect.has_taken_edge = guard != GuardKind::kNever;
      effect.has_fallthrough = guard != GuardKind::kAlways;
      break;
    case sim::Opcode::kEXIT:
    case sim::Opcode::kKILL:
      effect.terminates_block = true;
      // Guarded exits retire only the lanes that pass the guard; the rest
      // continue at the next instruction.
      effect.has_fallthrough = guard != GuardKind::kAlways;
      break;
    default:
      effect.has_fallthrough = true;
      break;
  }
  return effect;
}

ControlFlowGraph ControlFlowGraph::Build(const sim::KernelSource& kernel) {
  ControlFlowGraph cfg;
  const auto& body = kernel.instructions;
  const std::uint32_t n = static_cast<std::uint32_t>(body.size());
  if (n == 0) return cfg;

  // Leaders: instruction 0, every in-range branch target, and the
  // instruction after each block terminator.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    const ControlEffect effect = ControlEffectOf(body[i]);
    if (!effect.terminates_block) continue;
    if (effect.has_taken_edge && effect.target < n) leader[effect.target] = true;
    if (i + 1 < n) leader[i + 1] = true;
  }

  cfg.block_of_.assign(n, kNoBlock);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (leader[i]) {
      BasicBlock block;
      block.begin = i;
      cfg.blocks_.push_back(block);
    }
    cfg.block_of_[i] = static_cast<std::uint32_t>(cfg.blocks_.size() - 1);
    cfg.blocks_.back().end = i + 1;
  }
  cfg.entry_ = 0;

  // Edges.  A block's control effect is that of its last instruction; blocks
  // ending in a non-terminator (split by a following leader) fall through.
  // Edges that run off the end of the body (the executor traps there) get no
  // successor.
  for (std::uint32_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const ControlEffect effect = ControlEffectOf(body[block.end - 1]);
    auto add_edge = [&](std::uint32_t target_index) {
      if (target_index >= n) return;
      const std::uint32_t s = cfg.block_of_[target_index];
      if (std::find(block.succ.begin(), block.succ.end(), s) == block.succ.end()) {
        block.succ.push_back(s);
        cfg.blocks_[s].pred.push_back(b);
      }
    };
    if (effect.has_taken_edge) add_edge(effect.target);
    if (effect.has_fallthrough) add_edge(block.end);
  }

  // Reachability + reverse postorder from the entry (iterative DFS).
  std::vector<std::uint8_t> state(cfg.blocks_.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::uint32_t> postorder;
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(cfg.entry_, 0);
  state[cfg.entry_] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < cfg.blocks_[b].succ.size()) {
      const std::uint32_t s = cfg.blocks_[b].succ[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      postorder.push_back(b);
      stack.pop_back();
    }
  }
  cfg.rpo_.assign(postorder.rbegin(), postorder.rend());
  std::vector<std::uint32_t> rpo_index(cfg.blocks_.size(), kNoBlock);
  for (std::uint32_t i = 0; i < cfg.rpo_.size(); ++i) rpo_index[cfg.rpo_[i]] = i;
  for (const std::uint32_t b : cfg.rpo_) cfg.blocks_[b].reachable = true;

  // Immediate dominators (Cooper-Harvey-Kennedy) over reachable blocks.
  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = cfg.blocks_[a].idom;
      while (rpo_index[b] > rpo_index[a]) b = cfg.blocks_[b].idom;
    }
    return a;
  };
  cfg.blocks_[cfg.entry_].idom = cfg.entry_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t b : cfg.rpo_) {
      if (b == cfg.entry_) continue;
      std::uint32_t new_idom = kNoBlock;
      for (const std::uint32_t p : cfg.blocks_[b].pred) {
        if (cfg.blocks_[p].idom == kNoBlock) continue;  // not yet processed
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && cfg.blocks_[b].idom != new_idom) {
        cfg.blocks_[b].idom = new_idom;
        changed = true;
      }
    }
  }
  return cfg;
}

bool ControlFlowGraph::Dominates(std::uint32_t a, std::uint32_t b) const {
  if (a >= blocks_.size() || b >= blocks_.size()) return false;
  if (!blocks_[a].reachable || !blocks_[b].reachable) return false;
  while (true) {
    if (a == b) return true;
    if (b == entry_) return false;
    b = blocks_[b].idom;
  }
}

}  // namespace nvbitfi::staticanalysis
