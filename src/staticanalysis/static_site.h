// StaticSiteAnalysis: the liveness-based StaticSiteOracle implementation.
//
// For every kernel of a program it precomputes the CFG, per-instruction
// live-out sets, and a conservative exclusion set, then maps transient fault
// draws (<kernel_name, kernel_count, instruction_count,
// destination_register>) to a static verdict:
//
//   1. Resolve the dynamic site to a static instruction by replaying the
//      profile's site stream (exact profiles only — the profiler's kBefore
//      guard-true event order equals the injector's kAfter order).
//   2. Replicate the injector's target selection (CandidateTargets +
//      ChooseTargetIndex from core/corruption.h) at that instruction.
//   3. Report the site statically dead iff every register of the selected
//      target is absent from the instruction's live-out set (the kAfter
//      corruption point) — or the site has no target at all, in which case
//      the fault vanishes by construction.
//
// Conservative exclusions keeping the verdict one-sided (dead ⇒ masked):
//
//   * Kernels reading the cycle counter (S2R CLOCKLO / CS2R) are excluded
//     wholesale: their outputs can differ between instrumented and
//     uninstrumented runs regardless of the fault, so "dead" would not imply
//     "output-identical to golden".
//   * Registers read cross-lane (SHFL data operand, VOTE predicate) are
//     never reported dead: a guard-false or exited lane still contributes
//     its register value to other lanes' results, which per-lane liveness
//     does not see.
//   * Everything else is inherited from liveness conservatism: guarded
//     definitions never kill, unimplemented-control blocks keep fallthrough
//     edges, and unreachable-from-entry code is simply never resolved to.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/static_oracle.h"
#include "core/target_program.h"
#include "sassim/isa/kernel.h"
#include "staticanalysis/bitliveness.h"
#include "staticanalysis/liveness.h"

namespace nvbitfi::staticanalysis {

// Per-kernel precomputed analysis state.
struct KernelStaticInfo {
  sim::KernelSource kernel;
  LivenessAnalysis liveness;
  BitLivenessAnalysis bitliveness;  // shares liveness's CFG
  RegSet crosslane_hazard;          // registers read cross-lane (SHFL/VOTE)
  bool clock_dependent = false;     // kernel reads the cycle counter

  explicit KernelStaticInfo(sim::KernelSource k);
};

class StaticSiteAnalysis final : public fi::StaticSiteOracle {
 public:
  // Analyses the given kernels (one entry per static kernel).
  explicit StaticSiteAnalysis(std::vector<sim::KernelSource> kernels);

  // Harvests `program`'s kernels by running it once with a passive
  // module-observer tool attached, then analyses them.
  static StaticSiteAnalysis ForProgram(const fi::TargetProgram& program,
                                       const sim::DeviceProps& device);

  // fi::StaticSiteOracle.
  fi::StaticSiteVerdict Evaluate(const fi::ProgramProfile& profile,
                                 const fi::TransientFaultParams& params) const override;

  // Verdict for an already-resolved static instruction (the post-hoc path:
  // `nvbitfi analyze --static` audits stored records, which carry the static
  // index the injector actually hit).  Passing the bit-flip model and its
  // pattern value additionally resolves flip_dead; the default leaves it
  // false (no concrete mask to judge).
  fi::StaticSiteVerdict EvaluateStatic(std::string_view kernel_name,
                                       std::uint32_t static_index,
                                       double destination_register) const;
  fi::StaticSiteVerdict EvaluateStatic(std::string_view kernel_name,
                                       std::uint32_t static_index,
                                       double destination_register,
                                       fi::BitFlipModel bit_flip_model,
                                       double bit_pattern_value) const;

  const KernelStaticInfo* FindKernel(std::string_view name) const;

  // Expected fraction of the profile's group population a --static-prune
  // campaign skips: per dynamic site, the fraction of destination-register
  // draws that select a dead target, averaged over the population.
  double DeadFraction(const fi::ProgramProfile& profile, fi::ArchStateId group) const;

 private:
  std::vector<KernelStaticInfo> kernels_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

// All kernels loaded by one run of `program` (also used by `nvbitfi lint`).
std::vector<sim::KernelSource> HarvestKernels(const fi::TargetProgram& program,
                                              const sim::DeviceProps& device);

}  // namespace nvbitfi::staticanalysis
