#include "staticanalysis/usedef.h"

#include "sassim/isa/opcode.h"

namespace nvbitfi::staticanalysis {

namespace {

using sim::Instruction;
using sim::Opcode;
using sim::Operand;

bool IsStore(Opcode op) {
  return op == Opcode::kST || op == Opcode::kSTG || op == Opcode::kSTS ||
         op == Opcode::kSTL;
}

bool IsSharedOrLocalSpace(Opcode op) {
  // These address memory with a single 32-bit base register; everything else
  // with a kMem operand uses the 64-bit Rbase:Rbase+1 pair.
  return op == Opcode::kLDS || op == Opcode::kSTS || op == Opcode::kATOMS ||
         op == Opcode::kLDL || op == Opcode::kSTL;
}

// Number of consecutive GPRs read when source operand `i` of `inst` is a
// kGpr operand, following the executor's 64-bit read contexts: FP64
// arithmetic sources, IMAD.WIDE's addend (src[2]), and F2F/F2I with a wide
// source (src[0]).  Store value operands (src[1]) widen with the access.
int GprSrcCount(const Instruction& inst, int i) {
  if (sim::ClassOf(inst.opcode) == sim::OpClass::kFp64) return 2;
  if (inst.opcode == Opcode::kIMAD && inst.mods.wide_dst && i == 2) return 2;
  if ((inst.opcode == Opcode::kF2F || inst.opcode == Opcode::kF2I) &&
      inst.mods.wide_src && i == 0) {
    return 2;
  }
  if (IsStore(inst.opcode) && i == 1) {
    if (inst.mods.width == sim::MemWidth::k128) return 4;
    if (inst.mods.width == sim::MemWidth::k64) return 2;
  }
  return 1;
}

void AddUses(const Instruction& inst, RegSet& uses) {
  if (inst.guard_pred != sim::kPT) uses.AddPred(inst.guard_pred);
  for (int i = 0; i < inst.num_src; ++i) {
    const Operand& op = inst.src[i];
    switch (op.kind) {
      case Operand::Kind::kGpr:
        uses.AddGprRange(op.reg, GprSrcCount(inst, i));
        break;
      case Operand::Kind::kPred:
        uses.AddPred(op.reg);
        break;
      case Operand::Kind::kMem:
        uses.AddGprRange(op.mem_base, IsSharedOrLocalSpace(inst.opcode) ? 1 : 2);
        break;
      case Operand::Kind::kNone:
      case Operand::Kind::kImm:
      case Operand::Kind::kConst:
      case Operand::Kind::kLabel:
        break;
    }
  }
  // P2R materialises the whole predicate file into a GPR.
  if (inst.opcode == Opcode::kP2R) {
    for (int p = 0; p < sim::kPT; ++p) uses.AddPred(p);
  }
}

void AddDefs(const Instruction& inst, RegSet& may, RegSet& must) {
  RegSet defs;
  // CS2R always writes a register pair even though DestGprCount() models it
  // as a single-register destination (the executor uses WritePairRaw).
  const int gpr_count =
      inst.opcode == Opcode::kCS2R && inst.dest_gpr != sim::kRZ ? 2 : sim::DestGprCount(inst);
  defs.AddGprRange(inst.dest_gpr, gpr_count);
  const sim::DestKind dest_kind = sim::DestKindOf(inst.opcode);
  if (dest_kind == sim::DestKind::kPred || dest_kind == sim::DestKind::kGprPred) {
    defs.AddPred(inst.dest_pred);
    defs.AddPred(inst.dest_pred2);
  }
  if (inst.opcode == Opcode::kR2P) {
    // Writes the predicates selected by the mask operand.  A literal mask
    // gives exact def sets; a register mask makes every predicate a may-def
    // and none a must-def.
    const bool literal_mask = inst.num_src > 1 && inst.src[1].kind == Operand::Kind::kImm;
    const std::uint32_t mask = inst.num_src > 1
                                   ? (literal_mask ? inst.src[1].imm : 0u)
                                   : 0xFFFFFFFFu;
    if (literal_mask || inst.num_src <= 1) {
      for (int p = 0; p < sim::kPT; ++p) {
        if (mask >> p & 1) defs.AddPred(p);
      }
      may |= defs;
      must |= defs;
      return;
    }
    for (int p = 0; p < sim::kPT; ++p) may.AddPred(p);
    return;
  }
  may |= defs;
  must |= defs;
}

}  // namespace

InstrEffects EffectsOf(const Instruction& inst) {
  InstrEffects e;
  // @!PT: statically never executed.
  if (inst.guard_pred == sim::kPT && inst.guard_negate) return e;
  AddUses(inst, e.uses);
  AddDefs(inst, e.may_defs, e.must_defs);
  // A real guard may suppress the write on any given lane, so nothing is
  // written for certain.
  if (inst.guard_pred != sim::kPT) e.must_defs = RegSet{};
  return e;
}

}  // namespace nvbitfi::staticanalysis
