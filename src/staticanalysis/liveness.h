// Register/predicate liveness over a kernel CFG.
//
// Backward may-analysis: a register is live at a program point when some
// path from that point reaches a read of it before a certain overwrite.
// Kills use the must-def sets from usedef.h, so a guarded definition
// generates uses without killing anything — exactly the conservatism the
// fault-injection client needs (a register is only reported dead when it is
// dead along EVERY path and under EVERY guard outcome).
//
// Per-instruction results are precomputed for the kAfter instrumentation
// point: LiveOutAt(i) is the live set immediately after instruction i
// executes, which is where TransientInjectorTool corrupts state.
#pragma once

#include <cstdint>
#include <vector>

#include "sassim/isa/kernel.h"
#include "staticanalysis/cfg.h"
#include "staticanalysis/regset.h"
#include "staticanalysis/usedef.h"

namespace nvbitfi::staticanalysis {

class LivenessAnalysis {
 public:
  // Builds the CFG, extracts per-instruction effects, and solves to a fixed
  // point.  The kernel must outlive nothing — all state is copied out.
  explicit LivenessAnalysis(const sim::KernelSource& kernel);

  const ControlFlowGraph& cfg() const { return cfg_; }
  const InstrEffects& effects(std::uint32_t index) const { return effects_[index]; }

  const RegSet& LiveIn(std::uint32_t block) const { return block_in_[block]; }
  const RegSet& LiveOut(std::uint32_t block) const { return block_out_[block]; }

  // Live set immediately before / after instruction `index`.  Instructions in
  // unreachable blocks report empty sets (nothing executed there matters).
  const RegSet& LiveInAt(std::uint32_t index) const { return instr_in_[index]; }
  const RegSet& LiveOutAt(std::uint32_t index) const { return instr_out_[index]; }

 private:
  ControlFlowGraph cfg_;
  std::vector<InstrEffects> effects_;
  std::vector<RegSet> block_in_;
  std::vector<RegSet> block_out_;
  std::vector<RegSet> instr_in_;
  std::vector<RegSet> instr_out_;
};

}  // namespace nvbitfi::staticanalysis
