#include "staticanalysis/static_site.h"

#include <bit>
#include <optional>
#include <utility>

#include "core/corruption.h"
#include "nvbit/nvbit.h"
#include "sassim/runtime/driver.h"

namespace nvbitfi::staticanalysis {

namespace {

// Passive tool: observes module loads to copy out kernel sources, inserts no
// instrumentation, so the harvest run executes at uninstrumented speed.
class KernelHarvestTool final : public nvbit::Tool {
 public:
  std::string ConfigKey() const override { return "staticanalysis/harvest"; }
  void OnAttach(nvbit::Runtime&) override {}
  void AtCudaEvent(nvbit::Runtime&, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override {
    if (event != nvbit::CudaEvent::kModuleLoaded) return;
    for (const auto& fn : info.module->functions()) {
      kernels_.push_back(fn->source());
    }
  }
  std::vector<sim::KernelSource> TakeKernels() { return std::move(kernels_); }

 private:
  std::vector<sim::KernelSource> kernels_;
};

bool ReadsClock(const sim::Instruction& inst) {
  if (inst.opcode == sim::Opcode::kCS2R) return true;
  return inst.opcode == sim::Opcode::kS2R &&
         inst.mods.sreg == sim::SpecialReg::kClockLo;
}

RegSet CrosslaneHazardOf(const sim::KernelSource& kernel) {
  // Registers whose values cross lanes: per-lane liveness already accounts
  // for the executing lane's own use, so this exclusion is defence in depth
  // against any future cross-cohort read semantics.
  RegSet hazard;
  for (const sim::Instruction& inst : kernel.instructions) {
    if (inst.opcode == sim::Opcode::kSHFL && inst.num_src > 0 &&
        inst.src[0].kind == sim::Operand::Kind::kGpr) {
      hazard.AddGpr(inst.src[0].reg);
    }
    if (inst.opcode == sim::Opcode::kVOTE && inst.num_src > 0 &&
        inst.src[0].kind == sim::Operand::Kind::kPred) {
      hazard.AddPred(inst.src[0].reg);
    }
  }
  return hazard;
}

bool TargetDead(const KernelStaticInfo& info, const RegSet& live_out,
                const fi::CorruptionTarget& target) {
  switch (target.kind) {
    case fi::CorruptionTarget::Kind::kGpr32:
      return !live_out.TestGpr(target.reg) && !info.crosslane_hazard.TestGpr(target.reg);
    case fi::CorruptionTarget::Kind::kGpr64: {
      for (int r = target.reg; r < target.reg + 2; ++r) {
        // RZ as the high half discards the corruption; only real registers
        // need to be dead.
        if (r >= sim::kRZ) continue;
        if (live_out.TestGpr(r) || info.crosslane_hazard.TestGpr(r)) return false;
      }
      return true;
    }
    case fi::CorruptionTarget::Kind::kPred:
      return !live_out.TestPred(target.reg) && !info.crosslane_hazard.TestPred(target.reg);
  }
  return false;
}

// Bit-dead mask of `target` at the instruction's kAfter point, in target
// width.  Exclusions mirror TargetDead: a cross-lane-hazard register has no
// provably dead bits; the RZ high half of a pair discards writes, so every
// one of its bits is dead.
std::uint64_t DeadBitsOf(const KernelStaticInfo& info, const BitLiveSet& bitlive,
                         const fi::CorruptionTarget& target) {
  switch (target.kind) {
    case fi::CorruptionTarget::Kind::kGpr32:
      if (info.crosslane_hazard.TestGpr(target.reg)) return 0;
      return static_cast<std::uint64_t>(~bitlive.GprBits(target.reg)) & 0xFFFFFFFFull;
    case fi::CorruptionTarget::Kind::kGpr64: {
      std::uint64_t dead = 0;
      for (int half = 0; half < 2; ++half) {
        const int r = target.reg + half;
        if (r >= sim::kRZ) {
          dead |= 0xFFFFFFFFull << (32 * half);
          continue;
        }
        if (info.crosslane_hazard.TestGpr(r)) continue;
        dead |= (static_cast<std::uint64_t>(~bitlive.GprBits(r)) & 0xFFFFFFFFull)
                << (32 * half);
      }
      return dead;
    }
    case fi::CorruptionTarget::Kind::kPred:
      if (info.crosslane_hazard.TestPred(target.reg)) return 0;
      return bitlive.TestPred(target.reg) ? 0 : 1;
  }
  return 0;
}

fi::StaticSiteVerdict VerdictAt(const KernelStaticInfo& info, std::uint32_t static_index,
                                double destination_register,
                                std::optional<fi::BitFlipModel> bit_flip_model,
                                double bit_pattern_value) {
  fi::StaticSiteVerdict verdict;
  if (static_index >= info.kernel.instructions.size()) return verdict;
  const sim::Instruction& inst = info.kernel.instructions[static_index];
  verdict.resolved = true;
  verdict.static_index = static_index;
  verdict.opcode = inst.opcode;

  const std::vector<fi::CorruptionTarget> targets = fi::CandidateTargets(inst);
  if (!targets.empty()) {
    const fi::CorruptionTarget target =
        targets[fi::ChooseTargetIndex(targets.size(), destination_register)];
    verdict.has_target = true;
    verdict.pred_target = target.kind == fi::CorruptionTarget::Kind::kPred;
    verdict.target_register = target.reg;
    verdict.register_width = target.kind == fi::CorruptionTarget::Kind::kPred ? 1
                             : target.kind == fi::CorruptionTarget::Kind::kGpr64 ? 64
                                                                                 : 32;
    // Output comparability against the golden run requires a clock-free
    // kernel, and a CFG position the analysis actually reasoned about.
    if (info.clock_dependent || !info.liveness.cfg().InstructionReachable(static_index)) {
      return verdict;
    }
    verdict.register_dead =
        TargetDead(info, info.liveness.LiveOutAt(static_index), target);
    const std::uint64_t width_mask =
        verdict.register_width >= 64 ? ~0ull : (1ull << verdict.register_width) - 1;
    verdict.dead_bits =
        DeadBitsOf(info, info.bitliveness.LiveOutAt(static_index), target) & width_mask;
    verdict.masking_score = static_cast<double>(std::popcount(verdict.dead_bits)) /
                            static_cast<double>(verdict.register_width);
    // All bits dead masks EVERY corruption of the target (any XOR, any
    // overwrite), regardless of the bit-flip model.
    verdict.statically_dead = verdict.register_dead || verdict.dead_bits == width_mask;
    // A statically known flip mask that touches only dead bits masks this
    // specific draw even when the register as a whole stays live.  Only the
    // single-/two-bit models have value-independent masks.
    if (bit_flip_model.has_value() && !verdict.pred_target &&
        (*bit_flip_model == fi::BitFlipModel::kFlipSingleBit ||
         *bit_flip_model == fi::BitFlipModel::kFlipTwoBits)) {
      const std::uint64_t mask =
          verdict.register_width == 64
              ? fi::InjectionMask64(*bit_flip_model, bit_pattern_value, 0)
              : fi::InjectionMask32(*bit_flip_model, bit_pattern_value, 0);
      verdict.flip_dead = mask != 0 && (mask & ~verdict.dead_bits & width_mask) == 0;
    }
    return verdict;
  }

  // No architectural target: the fault vanishes, a Masked run by
  // construction — unless clock reads make the outputs incomparable.
  verdict.statically_dead = !info.clock_dependent;
  verdict.register_dead = verdict.statically_dead;
  verdict.masking_score = verdict.statically_dead ? 1.0 : 0.0;
  return verdict;
}

// Fraction of destination-register draws at `static_index` that land on a
// dead target (the draw picks each candidate with equal probability).  Uses
// the combined register-or-all-bits-dead verdict, matching what kPrune
// campaigns skip for every bit-flip model.
double DeadDrawFraction(const KernelStaticInfo& info, std::uint32_t static_index) {
  if (info.clock_dependent) return 0.0;
  if (static_index >= info.kernel.instructions.size() ||
      !info.liveness.cfg().InstructionReachable(static_index)) {
    return 0.0;
  }
  const std::vector<fi::CorruptionTarget> targets =
      fi::CandidateTargets(info.kernel.instructions[static_index]);
  if (targets.empty()) return 1.0;
  const RegSet& live_out = info.liveness.LiveOutAt(static_index);
  const BitLiveSet& bit_out = info.bitliveness.LiveOutAt(static_index);
  std::size_t dead = 0;
  for (const fi::CorruptionTarget& target : targets) {
    const int width = target.kind == fi::CorruptionTarget::Kind::kPred ? 1
                      : target.kind == fi::CorruptionTarget::Kind::kGpr64 ? 64
                                                                          : 32;
    const std::uint64_t width_mask = width >= 64 ? ~0ull : (1ull << width) - 1;
    if (TargetDead(info, live_out, target) ||
        (DeadBitsOf(info, bit_out, target) & width_mask) == width_mask) {
      ++dead;
    }
  }
  return static_cast<double>(dead) / static_cast<double>(targets.size());
}

}  // namespace

KernelStaticInfo::KernelStaticInfo(sim::KernelSource k)
    : kernel(std::move(k)),
      liveness(kernel),
      bitliveness(kernel, liveness.cfg()),
      crosslane_hazard(CrosslaneHazardOf(kernel)) {
  for (const sim::Instruction& inst : kernel.instructions) {
    if (ReadsClock(inst)) {
      clock_dependent = true;
      break;
    }
  }
}

StaticSiteAnalysis::StaticSiteAnalysis(std::vector<sim::KernelSource> kernels) {
  kernels_.reserve(kernels.size());
  for (sim::KernelSource& kernel : kernels) {
    by_name_.emplace(kernel.name, kernels_.size());
    kernels_.emplace_back(std::move(kernel));
  }
}

StaticSiteAnalysis StaticSiteAnalysis::ForProgram(const fi::TargetProgram& program,
                                                  const sim::DeviceProps& device) {
  return StaticSiteAnalysis(HarvestKernels(program, device));
}

const KernelStaticInfo* StaticSiteAnalysis::FindKernel(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : &kernels_[it->second];
}

fi::StaticSiteVerdict StaticSiteAnalysis::Evaluate(
    const fi::ProgramProfile& profile, const fi::TransientFaultParams& params) const {
  fi::StaticSiteVerdict verdict;
  // Approximate profiles replicate first-instance counts; their site streams
  // are not event-exact, so nothing can be resolved soundly.
  if (profile.approximate) return verdict;
  const KernelStaticInfo* info = FindKernel(params.kernel_name);
  if (info == nullptr) return verdict;
  for (const fi::KernelProfile& kp : profile.kernels) {
    if (kp.kernel_name != params.kernel_name || kp.kernel_count != params.kernel_count) {
      continue;
    }
    const std::optional<std::uint32_t> static_index = fi::ResolveSiteStream(
        kp, info->kernel.instructions, params.arch_state_id, params.instruction_count);
    if (!static_index.has_value()) return verdict;
    return VerdictAt(*info, *static_index, params.destination_register,
                     params.bit_flip_model, params.bit_pattern_value);
  }
  return verdict;
}

fi::StaticSiteVerdict StaticSiteAnalysis::EvaluateStatic(std::string_view kernel_name,
                                                         std::uint32_t static_index,
                                                         double destination_register) const {
  const KernelStaticInfo* info = FindKernel(kernel_name);
  if (info == nullptr) return fi::StaticSiteVerdict{};
  return VerdictAt(*info, static_index, destination_register, std::nullopt, 0.0);
}

fi::StaticSiteVerdict StaticSiteAnalysis::EvaluateStatic(
    std::string_view kernel_name, std::uint32_t static_index, double destination_register,
    fi::BitFlipModel bit_flip_model, double bit_pattern_value) const {
  const KernelStaticInfo* info = FindKernel(kernel_name);
  if (info == nullptr) return fi::StaticSiteVerdict{};
  return VerdictAt(*info, static_index, destination_register, bit_flip_model,
                   bit_pattern_value);
}

double StaticSiteAnalysis::DeadFraction(const fi::ProgramProfile& profile,
                                        fi::ArchStateId group) const {
  if (profile.approximate) return 0.0;
  std::uint64_t population = 0;
  double dead_weight = 0.0;
  for (const fi::KernelProfile& kp : profile.kernels) {
    const KernelStaticInfo* info = FindKernel(kp.kernel_name);
    if (info == nullptr) continue;
    const auto& body = info->kernel.instructions;
    for (const fi::SiteStreamEntry& entry : kp.site_stream) {
      if (entry.static_index >= body.size()) continue;
      if (!fi::OpcodeInGroup(body[entry.static_index].opcode, group)) continue;
      population += entry.count;
      dead_weight += static_cast<double>(entry.count) *
                     DeadDrawFraction(*info, entry.static_index);
    }
  }
  return population == 0 ? 0.0 : dead_weight / static_cast<double>(population);
}

std::vector<sim::KernelSource> HarvestKernels(const fi::TargetProgram& program,
                                              const sim::DeviceProps& device) {
  sim::Context context(device);
  KernelHarvestTool tool;
  nvbit::Runtime runtime(context, tool);
  program.Run(context);
  return tool.TakeKernels();
}

}  // namespace nvbitfi::staticanalysis
