// Dense register sets over the sassim architectural state: 256 general-
// purpose registers plus the 7 real predicate registers (P7/PT is constant
// true and is never a member).  This is the lattice element of the liveness
// analysis and the def/use vocabulary of every other dataflow client.
#pragma once

#include <array>
#include <cstdint>

#include "sassim/isa/instruction.h"

namespace nvbitfi::staticanalysis {

class RegSet {
 public:
  void AddGpr(int reg) {
    if (reg >= 0 && reg < sim::kRZ) {
      gpr_[Word(reg)] |= Bit(reg);
    }
  }
  // Adds `count` consecutive GPRs starting at `reg` (register pairs, quads).
  void AddGprRange(int reg, int count) {
    for (int i = 0; i < count; ++i) AddGpr(reg + i);
  }
  void AddPred(int pred) {
    if (pred >= 0 && pred < sim::kPT) preds_ |= static_cast<std::uint8_t>(1u << pred);
  }

  void RemoveGpr(int reg) {
    if (reg >= 0 && reg < sim::kRZ) gpr_[Word(reg)] &= ~Bit(reg);
  }
  void RemovePred(int pred) {
    if (pred >= 0 && pred < sim::kPT) preds_ &= static_cast<std::uint8_t>(~(1u << pred));
  }

  bool TestGpr(int reg) const {
    if (reg < 0 || reg >= sim::kRZ) return false;  // RZ is never live
    return (gpr_[Word(reg)] & Bit(reg)) != 0;
  }
  bool TestPred(int pred) const {
    if (pred < 0 || pred >= sim::kPT) return false;  // PT is never live
    return (preds_ & (1u << pred)) != 0;
  }

  RegSet& operator|=(const RegSet& other) {
    for (std::size_t i = 0; i < gpr_.size(); ++i) gpr_[i] |= other.gpr_[i];
    preds_ |= other.preds_;
    return *this;
  }
  RegSet& operator&=(const RegSet& other) {
    for (std::size_t i = 0; i < gpr_.size(); ++i) gpr_[i] &= other.gpr_[i];
    preds_ &= other.preds_;
    return *this;
  }
  // Set difference: removes `other`'s members.
  RegSet& Subtract(const RegSet& other) {
    for (std::size_t i = 0; i < gpr_.size(); ++i) gpr_[i] &= ~other.gpr_[i];
    preds_ &= static_cast<std::uint8_t>(~other.preds_);
    return *this;
  }

  bool Intersects(const RegSet& other) const {
    for (std::size_t i = 0; i < gpr_.size(); ++i) {
      if ((gpr_[i] & other.gpr_[i]) != 0) return true;
    }
    return (preds_ & other.preds_) != 0;
  }

  bool Empty() const {
    for (const std::uint64_t w : gpr_) {
      if (w != 0) return false;
    }
    return preds_ == 0;
  }

  bool operator==(const RegSet&) const = default;

 private:
  static std::size_t Word(int reg) { return static_cast<std::size_t>(reg) / 64; }
  static std::uint64_t Bit(int reg) { return 1ull << (static_cast<std::size_t>(reg) % 64); }

  std::array<std::uint64_t, 4> gpr_{};
  std::uint8_t preds_ = 0;
};

}  // namespace nvbitfi::staticanalysis
