#include "staticanalysis/liveness.h"

#include "staticanalysis/dataflow.h"

namespace nvbitfi::staticanalysis {

namespace {

struct LivenessProblem {
  using Value = RegSet;

  const ControlFlowGraph* cfg;
  const std::vector<InstrEffects>* effects;

  Direction direction() const { return Direction::kBackward; }
  Value Boundary() const { return RegSet{}; }  // nothing live after EXIT
  Value Init() const { return RegSet{}; }
  void Meet(Value& into, const Value& from) const { into |= from; }
  bool Equal(const Value& a, const Value& b) const { return a == b; }

  Value Transfer(std::uint32_t block, const Value& live_out) const {
    RegSet live = live_out;
    const BasicBlock& b = cfg->blocks()[block];
    for (std::uint32_t i = b.end; i-- > b.begin;) {
      const InstrEffects& e = (*effects)[i];
      live.Subtract(e.must_defs);
      live |= e.uses;
    }
    return live;
  }
};

}  // namespace

LivenessAnalysis::LivenessAnalysis(const sim::KernelSource& kernel)
    : cfg_(ControlFlowGraph::Build(kernel)) {
  const std::size_t n = kernel.instructions.size();
  effects_.reserve(n);
  for (const sim::Instruction& inst : kernel.instructions) {
    effects_.push_back(EffectsOf(inst));
  }

  LivenessProblem problem{&cfg_, &effects_};
  DataflowResult<LivenessProblem> solved = Solve(cfg_, problem);
  block_in_ = std::move(solved.in);
  block_out_ = std::move(solved.out);

  // Per-instruction sets by replaying each block's backward transfer.
  instr_in_.assign(n, RegSet{});
  instr_out_.assign(n, RegSet{});
  for (std::uint32_t bi = 0; bi < cfg_.blocks().size(); ++bi) {
    const BasicBlock& b = cfg_.blocks()[bi];
    if (!b.reachable) continue;
    RegSet live = block_out_[bi];
    for (std::uint32_t i = b.end; i-- > b.begin;) {
      instr_out_[i] = live;
      const InstrEffects& e = effects_[i];
      live.Subtract(e.must_defs);
      live |= e.uses;
      instr_in_[i] = live;
    }
  }
}

}  // namespace nvbitfi::staticanalysis
