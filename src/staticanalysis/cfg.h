// Control-flow graph over a sassim kernel body.
//
// Mirrors the executor's control semantics exactly (src/sassim/core/
// executor.cpp): only BRA/JMP transfer control (target = src[0].imm, an
// absolute instruction index), EXIT/KILL retire the lane, and every other
// opcode — including the unimplemented control-class ones, which trap at
// execution time — falls through.  Guards refine the edge set: an
// unconditionally guarded branch (@PT) has only its taken edge, a
// never-executed one (@!PT) only its fallthrough edge, and a branch under a
// real predicate has both.
#pragma once

#include <cstdint>
#include <vector>

#include "sassim/isa/kernel.h"

namespace nvbitfi::staticanalysis {

inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

struct BasicBlock {
  std::uint32_t begin = 0;  // first instruction index (inclusive)
  std::uint32_t end = 0;    // one past the last instruction index
  std::vector<std::uint32_t> succ;
  std::vector<std::uint32_t> pred;
  bool reachable = false;
  // Immediate dominator block id; the entry block dominates itself.
  // kNoBlock for unreachable blocks.
  std::uint32_t idom = kNoBlock;
};

class ControlFlowGraph {
 public:
  static ControlFlowGraph Build(const sim::KernelSource& kernel);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  // Block id containing instruction `index`; kNoBlock out of range.
  std::uint32_t BlockOf(std::uint32_t index) const {
    return index < block_of_.size() ? block_of_[index] : kNoBlock;
  }
  std::uint32_t entry() const { return entry_; }
  // Reachable blocks in reverse postorder (entry first).
  const std::vector<std::uint32_t>& rpo() const { return rpo_; }
  bool InstructionReachable(std::uint32_t index) const {
    const std::uint32_t b = BlockOf(index);
    return b != kNoBlock && blocks_[b].reachable;
  }
  // True when block `a` dominates block `b` (both must be reachable).
  bool Dominates(std::uint32_t a, std::uint32_t b) const;

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<std::uint32_t> block_of_;  // instruction index -> block id
  std::vector<std::uint32_t> rpo_;
  std::uint32_t entry_ = kNoBlock;
};

// Classification of an instruction's effect on control flow, with guard
// refinement already applied.
struct ControlEffect {
  bool terminates_block = false;  // BRA/JMP/EXIT/KILL
  bool has_taken_edge = false;    // branch target may be taken
  bool has_fallthrough = false;   // execution may continue at index+1
  std::uint32_t target = 0;       // valid when has_taken_edge
};
ControlEffect ControlEffectOf(const sim::Instruction& inst);

}  // namespace nvbitfi::staticanalysis
