#include "staticanalysis/bitliveness.h"

#include <bit>
#include <optional>

#include "common/bitutil.h"
#include "sassim/isa/instruction.h"
#include "sassim/isa/opcode.h"
#include "staticanalysis/dataflow.h"
#include "staticanalysis/usedef.h"

namespace nvbitfi::staticanalysis {

namespace {

using sim::Instruction;
using sim::Opcode;
using sim::Operand;

// All bits at or below the highest demanded bit: the source cone of
// upward-carry arithmetic (addition, multiplication, two's-complement
// negation — bit j of the result depends only on source bits 0..j).
std::uint32_t MaskUpToMsb(std::uint32_t mask) {
  if (mask == 0) return 0;
  const int msb = 31 - std::countl_zero(mask);
  return msb == 31 ? 0xFFFFFFFFu : (1u << (msb + 1)) - 1u;
}

// All bits at or above the lowest demanded bit (the right-shift cone: with an
// unknown amount, source bit i can only reach result bits at or below i).
std::uint32_t MaskDownToLsb(std::uint32_t mask) {
  if (mask == 0) return 0;
  return ~((1u << std::countr_zero(mask)) - 1u);
}

// Shorthand for the public helper within the transfer functions.
std::optional<std::uint32_t> KnownValue(const Operand& op) {
  return KnownOperandValue(op);
}

// Demands `mask` bits of the post-modifier value of source operand `op`.
// Back-propagates the modifier pipeline in reverse: bitwise inversion is
// per-bit (mask unchanged), integer negation makes bit j depend on bits
// 0..j, and absolute value additionally reads the sign bit.  FP-typed reads
// (sign-bit flip / clear) are strictly narrower than this, so using the
// integer rules everywhere stays conservative.
void Demand(BitLiveSet& live, const Operand& op, std::uint32_t mask) {
  if (mask == 0) return;
  if (op.negate) mask = MaskUpToMsb(mask);
  if (op.absolute) mask = MaskUpToMsb(mask) | 0x80000000u;
  switch (op.kind) {
    case Operand::Kind::kGpr:
      live.AddGprBits(op.reg, mask);
      break;
    case Operand::Kind::kPred:
      // A predicate read contributes a single boolean regardless of which
      // value bits are demanded.
      live.AddPred(op.reg);
      break;
    case Operand::Kind::kNone:
    case Operand::Kind::kImm:
    case Operand::Kind::kConst:
    case Operand::Kind::kMem:
    case Operand::Kind::kLabel:
      break;
  }
}

// Conservative fallback: every register the register-level analysis says the
// instruction may read is demanded at full width.
void DemandAll(BitLiveSet& live, const RegSet& uses) {
  for (int r = 0; r < sim::kRZ; ++r) {
    if (uses.TestGpr(r)) live.AddGprBits(r, 0xFFFFFFFFu);
  }
  for (int p = 0; p < sim::kPT; ++p) {
    if (uses.TestPred(p)) live.AddPred(p);
  }
}

// Any bit of any register the instruction may write still live?
bool AnyDefLive(const InstrEffects& e, const BitLiveSet& live_out) {
  for (int r = 0; r < sim::kRZ; ++r) {
    if (e.may_defs.TestGpr(r) && live_out.GprBits(r) != 0) return true;
  }
  for (int p = 0; p < sim::kPT; ++p) {
    if (e.may_defs.TestPred(p) && live_out.TestPred(p)) return true;
  }
  return false;
}

// True when the instruction writes exactly one 32-bit GPR and nothing else —
// the shape every precise transfer function below assumes.
bool SinglePlainGprDest(const Instruction& inst) {
  if (sim::DestKindOf(inst.opcode) != sim::DestKind::kGpr) return false;
  if (inst.opcode == Opcode::kCS2R) return false;  // writes a register pair
  return sim::DestGprCount(inst) == 1;
}

bool IsStoreOp(Opcode op) {
  return op == Opcode::kST || op == Opcode::kSTG || op == Opcode::kSTS ||
         op == Opcode::kSTL;
}

// The LOP3 truth table, if statically known (modifier table or an immediate
// fourth operand; a register LUT defeats the analysis).
std::optional<std::uint8_t> KnownLut(const Instruction& inst) {
  if (inst.num_src <= 3) return inst.mods.lut;
  const std::optional<std::uint32_t> v = KnownValue(inst.src[3]);
  if (!v.has_value()) return std::nullopt;
  return static_cast<std::uint8_t>(*v);
}

// Per-bit LOP3 demands: input `which` (0=a, 1=b, 2=c) is demanded at bit j
// when toggling it can change the output there, given the other inputs range
// over their possible values (fixed when statically known).
std::uint32_t Lop3InputDemand(std::uint32_t live, std::uint8_t lut, int which,
                              const std::optional<std::uint32_t> known[3]) {
  std::uint32_t demand = 0;
  for (int j = 0; j < 32; ++j) {
    if ((live >> j & 1) == 0) continue;
    bool matters = false;
    for (int a = 0; a < 2 && !matters; ++a) {
      for (int b = 0; b < 2 && !matters; ++b) {
        for (int c = 0; c < 2 && !matters; ++c) {
          const int in[3] = {a, b, c};
          if (known[0] && a != static_cast<int>(*known[0] >> j & 1)) continue;
          if (known[1] && b != static_cast<int>(*known[1] >> j & 1)) continue;
          if (known[2] && c != static_cast<int>(*known[2] >> j & 1)) continue;
          const int base = (a << 2) | (b << 1) | c;
          const int flipped = base ^ (1 << (2 - which));
          if ((lut >> base & 1) != (lut >> flipped & 1)) matters = true;
          (void)in;
        }
      }
    }
    if (matters) demand |= 1u << j;
  }
  return demand;
}

// Precise demands for an instruction writing a single 32-bit GPR whose live
// mask is `L`.  Returns false when the opcode or operand shape is unmodeled
// (caller falls back to full-width demands).  Every case mirrors the
// corresponding executor.cpp semantics bit for bit.
bool PreciseGprDemands(const Instruction& inst, std::uint32_t L, BitLiveSet& live) {
  switch (inst.opcode) {
    // Plain copies: MOV/MOV32I, and I2I, which the executor implements as a
    // 32-bit copy.
    case Opcode::kMOV:
    case Opcode::kMOV32I:
    case Opcode::kI2I:
      if (inst.num_src < 1) return false;
      Demand(live, inst.src[0], L);
      return true;

    // Predicated selects copy one of two sources.
    case Opcode::kSEL:
    case Opcode::kFSEL:
      if (inst.num_src < 2) return false;
      Demand(live, inst.src[0], L);
      Demand(live, inst.src[1], L);
      if (inst.num_src > 2) Demand(live, inst.src[2], 1);
      return true;

    // Two-operand boolean: bits a known immediate forces (AND with 0, OR
    // with 1) cannot propagate through the other operand.
    case Opcode::kLOP:
    case Opcode::kLOP32I: {
      if (inst.num_src < 2) return false;
      const std::optional<std::uint32_t> va = KnownValue(inst.src[0]);
      const std::optional<std::uint32_t> vb = KnownValue(inst.src[1]);
      const auto demand_through = [&](const std::optional<std::uint32_t>& other) {
        if (!other.has_value()) return L;
        switch (inst.mods.bool_op) {
          case sim::BoolOp::kAnd: return L & *other;
          case sim::BoolOp::kOr: return L & ~*other;
          case sim::BoolOp::kXor: return L;
        }
        return L;
      };
      Demand(live, inst.src[0], demand_through(vb));
      Demand(live, inst.src[1], demand_through(va));
      return true;
    }

    case Opcode::kLOP3: {
      if (inst.num_src < 3) return false;
      const std::optional<std::uint8_t> lut = KnownLut(inst);
      if (!lut.has_value()) return false;
      const std::optional<std::uint32_t> known[3] = {
          KnownValue(inst.src[0]), KnownValue(inst.src[1]), KnownValue(inst.src[2])};
      for (int i = 0; i < 3; ++i) {
        Demand(live, inst.src[i], Lop3InputDemand(L, *lut, i, known));
      }
      return true;
    }

    // Shifts: the executor masks the amount to 5 bits (6 for SHF), and bits
    // shifted out of the demanded window die.
    case Opcode::kSHL: {
      if (inst.num_src < 2) return false;
      if (const std::optional<std::uint32_t> s = KnownValue(inst.src[1])) {
        Demand(live, inst.src[0], L >> (*s & 31u));
      } else {
        Demand(live, inst.src[1], 0x1Fu);
        Demand(live, inst.src[0], MaskUpToMsb(L));
      }
      return true;
    }
    case Opcode::kSHR: {
      if (inst.num_src < 2) return false;
      if (const std::optional<std::uint32_t> s = KnownValue(inst.src[1])) {
        const unsigned c = *s & 31u;
        std::uint32_t demand = L << c;
        // Arithmetic shift replicates the sign bit into the vacated window.
        if (inst.mods.src_signed && c > 0 && (L >> (32 - c)) != 0) {
          demand |= 0x80000000u;
        }
        Demand(live, inst.src[0], demand);
      } else {
        Demand(live, inst.src[1], 0x1Fu);
        Demand(live, inst.src[0], MaskDownToLsb(L));
      }
      return true;
    }
    case Opcode::kSHF: {
      if (inst.num_src < 2) return false;
      const bool has_hi = inst.num_src > 2;
      if (const std::optional<std::uint32_t> s = KnownValue(inst.src[1])) {
        const unsigned c = *s & 63u;
        std::uint32_t lo_demand = 0;
        std::uint32_t hi_demand = 0;
        if (inst.mods.shift_dir == sim::ShiftDir::kRight) {
          if (c == 0) {
            lo_demand = L;
          } else if (c < 32) {
            lo_demand = L << c;
            hi_demand = L >> (32 - c);
          } else if (c == 32) {
            hi_demand = L;
          } else {
            hi_demand = L << (c - 32);
          }
        } else {
          if (c == 0) {
            hi_demand = L;
          } else if (c < 32) {
            hi_demand = L >> c;
            lo_demand = L << (32 - c);
          } else if (c == 32) {
            lo_demand = L;
          } else {
            lo_demand = L >> (c - 32);
          }
        }
        Demand(live, inst.src[0], lo_demand);
        if (has_hi) Demand(live, inst.src[2], hi_demand);
      } else {
        Demand(live, inst.src[1], 0x3Fu);
        Demand(live, inst.src[0], 0xFFFFFFFFu);
        if (has_hi) Demand(live, inst.src[2], 0xFFFFFFFFu);
      }
      return true;
    }

    // Add/multiply family: carries propagate strictly upward, so only bits
    // at or below the highest live result bit are demanded.
    case Opcode::kIADD3:
    case Opcode::kIADD32I: {
      if (inst.num_src < 2) return false;
      const std::uint32_t cone = MaskUpToMsb(L);
      for (int i = 0; i < inst.num_src && i < 3; ++i) Demand(live, inst.src[i], cone);
      return true;
    }
    case Opcode::kIMAD: {
      if (inst.mods.wide_dst || inst.num_src < 2) return false;
      const std::uint32_t cone = MaskUpToMsb(L);
      for (int i = 0; i < inst.num_src && i < 3; ++i) Demand(live, inst.src[i], cone);
      return true;
    }
    case Opcode::kLEA:
    case Opcode::kISCADD: {
      if (inst.num_src < 2) return false;
      const std::uint32_t cone = MaskUpToMsb(L);
      std::uint32_t a_demand = cone;
      if (inst.num_src > 2) {
        if (const std::optional<std::uint32_t> s = KnownValue(inst.src[2])) {
          a_demand = cone >> (*s & 31u);
        } else {
          Demand(live, inst.src[2], 0x1Fu);
        }
      }
      Demand(live, inst.src[0], a_demand);
      Demand(live, inst.src[1], cone);
      return true;
    }

    // Bit-field helpers.
    case Opcode::kBMSK:
      if (inst.num_src < 2) return false;
      Demand(live, inst.src[0], 0x1Fu);
      Demand(live, inst.src[1], 0x3Fu);
      return true;
    case Opcode::kSGXT: {
      if (inst.num_src < 2) return false;
      if (const std::optional<std::uint32_t> s = KnownValue(inst.src[1])) {
        const unsigned w = *s & 31u;
        if (w != 0) {
          const std::uint32_t low = (1u << w) - 1u;
          std::uint32_t demand = L & low;
          if ((L & ~low) != 0) demand |= 1u << (w - 1);  // replicated sign bit
          Demand(live, inst.src[0], demand);
        }
      } else {
        Demand(live, inst.src[1], 0x1Fu);
        Demand(live, inst.src[0], MaskUpToMsb(L));
      }
      return true;
    }
    case Opcode::kBREV:
      if (inst.num_src < 1) return false;
      Demand(live, inst.src[0], ReverseBits32(L));
      return true;

    // Byte permute: each live destination byte demands its selected pool
    // byte (or only that byte's sign bit in replicate mode).
    case Opcode::kPRMT: {
      if (inst.num_src < 2) return false;
      const bool has_b = inst.num_src > 2;
      if (const std::optional<std::uint32_t> sel = KnownValue(inst.src[1])) {
        std::uint32_t a_demand = 0;
        std::uint32_t b_demand = 0;
        for (int i = 0; i < 4; ++i) {
          const std::uint32_t live_byte = L >> (8 * i) & 0xFFu;
          if (live_byte == 0) continue;
          const std::uint32_t nib = *sel >> (4 * i) & 0xFu;
          const std::uint32_t byte_demand = (nib & 0x8u) != 0 ? 0x80u : live_byte;
          const unsigned pool = nib & 0x7u;
          if (pool < 4) {
            a_demand |= byte_demand << (8 * pool);
          } else if (has_b) {
            b_demand |= byte_demand << (8 * (pool - 4));
          }
        }
        Demand(live, inst.src[0], a_demand);
        if (has_b) Demand(live, inst.src[2], b_demand);
      } else {
        Demand(live, inst.src[1], 0xFFFFu);  // four selector nibbles
        Demand(live, inst.src[0], 0xFFFFFFFFu);
        if (has_b) Demand(live, inst.src[2], 0xFFFFFFFFu);
      }
      return true;
    }

    // P2R: destination bit p mirrors predicate p (under the mask); bits 7+
    // are constant zero.
    case Opcode::kP2R: {
      std::optional<std::uint32_t> mask = 0xFFFFFFFFu;
      if (inst.num_src > 0) {
        mask = KnownValue(inst.src[0]);
        if (!mask.has_value()) Demand(live, inst.src[0], L & 0x7Fu);
      }
      for (int p = 0; p < sim::kPT; ++p) {
        if ((L >> p & 1) == 0) continue;
        if (mask.has_value() && (*mask >> p & 1) == 0) continue;
        live.AddPred(p);
      }
      return true;
    }

    default:
      return false;
  }
}

// R2P writes predicates from value-register bits: predicate p (when selected
// by the mask) is bit p of the value, so only the bits of live masked
// predicates are demanded.  Demands are judged against the PRE-kill live set
// (a predicate's new value is observed iff it is live after the write).
bool R2PDemands(const Instruction& inst, const BitLiveSet& live_out, BitLiveSet& live) {
  if (inst.num_src < 1) return false;
  std::optional<std::uint32_t> mask = 0xFFFFFFFFu;
  if (inst.num_src > 1) {
    mask = KnownValue(inst.src[1]);
    if (!mask.has_value()) Demand(live, inst.src[1], 0x7Fu);
  }
  std::uint32_t value_demand = 0;
  for (int p = 0; p < sim::kPT; ++p) {
    if (!live_out.TestPred(p)) continue;
    if (mask.has_value() && (*mask >> p & 1) == 0) continue;
    value_demand |= 1u << p;
  }
  Demand(live, inst.src[0], value_demand);
  return true;
}

// Sub-word stores consume only the low bytes of the value register; the
// address registers are always fully demanded.
bool StoreDemands(const Instruction& inst, BitLiveSet& live) {
  if (inst.num_src < 2) return false;
  if (inst.src[0].kind != Operand::Kind::kMem) return false;
  if (inst.src[1].kind != Operand::Kind::kGpr) return false;
  const bool narrow_base =
      inst.opcode == Opcode::kSTS || inst.opcode == Opcode::kSTL;
  live.AddGprBits(inst.src[0].mem_base, 0xFFFFFFFFu);
  if (!narrow_base) live.AddGprBits(inst.src[0].mem_base + 1, 0xFFFFFFFFu);
  std::uint32_t value_mask = 0xFFFFFFFFu;
  int value_regs = 1;
  switch (inst.mods.width) {
    case sim::MemWidth::k8: value_mask = 0xFFu; break;
    case sim::MemWidth::k16: value_mask = 0xFFFFu; break;
    case sim::MemWidth::k32: break;
    case sim::MemWidth::k64: value_regs = 2; break;
    case sim::MemWidth::k128: value_regs = 4; break;
  }
  live.AddGprBits(inst.src[1].reg, value_mask);
  for (int i = 1; i < value_regs; ++i) {
    live.AddGprBits(inst.src[1].reg + i, 0xFFFFFFFFu);
  }
  return true;
}

struct BitLivenessProblem {
  using Value = BitLiveSet;

  const ControlFlowGraph* cfg;
  const std::vector<Instruction>* instructions;

  Direction direction() const { return Direction::kBackward; }
  Value Boundary() const { return BitLiveSet{}; }
  Value Init() const { return BitLiveSet{}; }
  void Meet(Value& into, const Value& from) const { into |= from; }
  bool Equal(const Value& a, const Value& b) const { return a == b; }

  Value Transfer(std::uint32_t block, const Value& live_out) const {
    BitLiveSet live = live_out;
    const BasicBlock& b = cfg->blocks()[block];
    for (std::uint32_t i = b.end; i-- > b.begin;) {
      live = BitTransfer((*instructions)[i], live);
    }
    return live;
  }
};

}  // namespace

std::optional<std::uint32_t> KnownOperandValue(const Operand& op) {
  // Mirrors the executor's ReadSrc32 with fp=false: absolute value first,
  // then bitwise inversion, then arithmetic negation.
  if (op.kind != Operand::Kind::kImm) return std::nullopt;
  std::uint32_t v = op.imm;
  if (op.absolute && static_cast<std::int32_t>(v) < 0) v = 0u - v;
  if (op.invert) v = ~v;
  if (op.negate) v = 0u - v;
  return v;
}

bool SideEffectFreeInstr(const Instruction& inst) {
  switch (sim::ClassOf(inst.opcode)) {
    case sim::OpClass::kFp16:
    case sim::OpClass::kFp32:
    case sim::OpClass::kFp64:
    case sim::OpClass::kInt:
    case sim::OpClass::kConversion:
    case sim::OpClass::kMove:
    case sim::OpClass::kPredicate:
      break;
    default:
      return false;
  }
  // Collectives contribute source values to other lanes even when their own
  // destination is dead.
  return inst.opcode != Opcode::kSHFL && inst.opcode != Opcode::kVOTE;
}

BitLiveSet BitTransfer(const Instruction& inst, const BitLiveSet& live_out) {
  // @!PT: statically never executed.
  if (inst.guard_pred == sim::kPT && inst.guard_negate) return live_out;

  const InstrEffects e = EffectsOf(inst);
  BitLiveSet live = live_out;

  // Kills are whole-register, from the same must-def sets the register-level
  // analysis uses (empty under a real guard — the write may be suppressed).
  for (int r = 0; r < sim::kRZ; ++r) {
    if (e.must_defs.TestGpr(r)) live.KillGpr(r);
  }
  for (int p = 0; p < sim::kPT; ++p) {
    if (e.must_defs.TestPred(p)) live.RemovePred(p);
  }

  // Dead-destination gating: a side-effect-free instruction whose written
  // bits are all dead demands nothing — not even its guard, because whether
  // it executes is unobservable.  This is what makes comparisons bit-kill
  // their sources: once the destination predicates die, so do the demands.
  if (SideEffectFreeInstr(inst) && !AnyDefLive(e, live_out)) return live;

  bool precise = false;
  if (inst.opcode == Opcode::kR2P) {
    precise = R2PDemands(inst, live_out, live);
  } else if (IsStoreOp(inst.opcode)) {
    precise = StoreDemands(inst, live);
  } else if (SinglePlainGprDest(inst)) {
    precise = PreciseGprDemands(inst, live_out.GprBits(inst.dest_gpr), live);
  }

  if (precise) {
    if (inst.guard_pred != sim::kPT) live.AddPred(inst.guard_pred);
  } else {
    // Conservative fallback: full-width demands on the register-level use
    // set (which already includes the guard predicate).
    DemandAll(live, e.uses);
  }
  return live;
}

BitLivenessAnalysis::BitLivenessAnalysis(const sim::KernelSource& kernel,
                                         const ControlFlowGraph& cfg) {
  const std::size_t n = kernel.instructions.size();

  BitLivenessProblem problem{&cfg, &kernel.instructions};
  DataflowResult<BitLivenessProblem> solved = Solve(cfg, problem);
  block_in_ = std::move(solved.in);
  block_out_ = std::move(solved.out);

  // Per-instruction sets by replaying each block's backward transfer.
  instr_in_.assign(n, BitLiveSet{});
  instr_out_.assign(n, BitLiveSet{});
  for (std::uint32_t bi = 0; bi < cfg.blocks().size(); ++bi) {
    const BasicBlock& b = cfg.blocks()[bi];
    if (!b.reachable) continue;
    BitLiveSet live = block_out_[bi];
    for (std::uint32_t i = b.end; i-- > b.begin;) {
      instr_out_[i] = live;
      live = BitTransfer(kernel.instructions[i], live);
      instr_in_[i] = live;
    }
  }
}

}  // namespace nvbitfi::staticanalysis
