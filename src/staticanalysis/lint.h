// Static kernel linter (`nvbitfi lint`).
//
// Flags likely bugs in SASS kernels — hand-written, assembled, or harvested
// from a workload — using the CFG and the dataflow analyses:
//
//   * read-before-def:  a path from kernel entry reaches a register read
//     with no prior write (reaching definitions: the entry pseudo-def
//     reaches the use).  The simulator zero-fills the register file, so this
//     is not UB, but it almost always indicates a missing initialisation.
//   * unreachable-block: a basic block no path from entry reaches.
//   * dead-store: an unguarded side-effect-free instruction whose results
//     are all dead (never read before certain overwrite on every path).
//   * constant-guard: a guard that can never fire (@!PT, or @Pn where Pn is
//     never written — constant false) or that always fires (@!Pn, Pn never
//     written — the negation of constant false), making the predicate
//     pointless.
//   * shared-out-of-range: LDS/STS/ATOMS at a constant address (RZ base)
//     whose access falls outside the kernel's declared shared_bytes.
//   * redundant-mask: an AND/OR with an immediate that cannot change any
//     bit-live bit of its result (bit-granular liveness: every bit the mask
//     could alter is dead downstream), so the mask is a no-op.
//   * shift-out-of-range: a constant shift amount the hardware truncates
//     (>= 32 for SHL/SHR, >= 64 for SHF), so the shift silently acts as a
//     smaller one — almost always a width confusion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sassim/isa/kernel.h"

namespace nvbitfi::staticanalysis {

enum class LintKind : std::uint8_t {
  kReadBeforeDef,
  kUnreachableBlock,
  kDeadStore,
  kConstantGuard,
  kSharedOutOfRange,
  kRedundantMask,
  kShiftOutOfRange,
};

std::string_view LintKindName(LintKind kind);

struct LintFinding {
  LintKind kind;
  std::uint32_t instr_index = 0;
  std::string message;
};

std::vector<LintFinding> LintKernel(const sim::KernelSource& kernel);

// Human-readable report, one line per finding:
//   <kernel>:<index>: <kind>: <message>   [<disassembled instruction>]
std::string LintReport(const sim::KernelSource& kernel,
                       const std::vector<LintFinding>& findings);

}  // namespace nvbitfi::staticanalysis
