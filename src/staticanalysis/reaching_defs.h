// Reaching definitions over a kernel CFG.
//
// Forward may-analysis over definition sites.  Each (instruction, register)
// may-def is a site; every register mentioned anywhere in the kernel also
// gets an *entry pseudo-site* standing for "still holds its launch-time
// value" (the simulator zero-initialises the register file).  A real site is
// killed by a later certain (must) def of the same register; an entry
// pseudo-site is killed by ANY def of the register, so pseudo-sites track
// "exists a path from entry with no write at all" — the path-based notion a
// read-before-definition lint wants (a guarded write on the path counts as a
// definition, as in compiler -Wmaybe-uninitialized diagnostics).
#pragma once

#include <cstdint>
#include <vector>

#include "sassim/isa/kernel.h"
#include "staticanalysis/cfg.h"
#include "staticanalysis/usedef.h"

namespace nvbitfi::staticanalysis {

// Dense bitset over definition-site ids.
class SiteSet {
 public:
  explicit SiteSet(std::size_t bits = 0) : words_((bits + 63) / 64, 0) {}
  void Add(std::uint32_t i) { words_[i / 64] |= 1ull << (i % 64); }
  void Remove(std::uint32_t i) { words_[i / 64] &= ~(1ull << (i % 64)); }
  bool Test(std::uint32_t i) const { return (words_[i / 64] >> (i % 64)) & 1; }
  SiteSet& operator|=(const SiteSet& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
    return *this;
  }
  bool operator==(const SiteSet&) const = default;

 private:
  std::vector<std::uint64_t> words_;
};

class ReachingDefsAnalysis {
 public:
  static constexpr std::uint32_t kEntryDef = 0xffffffffu;

  struct DefSite {
    std::uint32_t instr = kEntryDef;  // kEntryDef for entry pseudo-sites
    bool is_pred = false;
    std::uint8_t reg = 0;
  };

  ReachingDefsAnalysis(const sim::KernelSource& kernel, const ControlFlowGraph& cfg);

  const std::vector<DefSite>& sites() const { return sites_; }
  const ControlFlowGraph& cfg() const { return *cfg_; }

  // Definition sites reaching the point immediately before instruction
  // `index` (replays the block prefix; empty set in unreachable blocks).
  SiteSet ReachingAt(std::uint32_t index) const;

  // True when a path from kernel entry reaches instruction `index` without
  // any write to the register — i.e. its entry pseudo-site reaches `index`.
  bool EntryDefReaches(std::uint32_t index, bool is_pred, std::uint8_t reg) const;

  // Block transfer function (public for the dataflow problem adapter).
  SiteSet TransferBlock(std::uint32_t block, const SiteSet& in) const;

 private:
  struct InstrSites {
    std::vector<std::uint32_t> gen;          // sites this instruction creates
    std::vector<std::uint32_t> kill;         // sites it certainly overwrites
  };
  std::uint32_t EntrySiteOf(bool is_pred, std::uint8_t reg) const;
  void ApplyInstr(SiteSet& value, std::uint32_t index) const;

  const ControlFlowGraph* cfg_;
  std::vector<DefSite> sites_;
  std::vector<InstrSites> instr_sites_;
  std::vector<std::uint32_t> gpr_entry_site_;   // per-GPR entry site id or kEntryDef
  std::vector<std::uint32_t> pred_entry_site_;  // per-pred entry site id or kEntryDef
  std::vector<SiteSet> block_in_;
};

}  // namespace nvbitfi::staticanalysis
