// Per-stratum reporting: achieved confidence intervals, convergence state,
// and an RFC-4180-safe CSV export.
//
// Two producers share these rows: a live AdaptiveEngine (campaign reports,
// serve completion reports) and `nvbitfi analyze --strata`, which rebuilds
// rows post-hoc from any stored campaign — adaptive or uniform — so the two
// sampling modes can be cross-tabbed with identical formatting.
#pragma once

#include <string>
#include <vector>

#include "adaptive/engine.h"
#include "core/outcome.h"

namespace nvbitfi::adaptive {

struct StratumRow {
  std::string label;
  std::uint64_t population = 0;  // pool members (0 when unknown, e.g. post-hoc)
  std::uint64_t scheduled = 0;
  fi::OutcomeCounts counts;
  bool converged = false;
  bool exhausted = false;
};

// Rows for every stratum of a live engine, in stratum-id (label) order.
std::vector<StratumRow> EngineRows(const AdaptiveEngine& engine);

// Text table: one line per stratum with its observed rates and Wilson
// half-widths at `confidence`.  `target_half_width` > 0 annotates each
// stratum's convergence state against that target.
std::string StrataReport(const std::vector<StratumRow>& rows, double confidence,
                         double target_half_width = 0.0);

// CSV export (header + one row per stratum).  Labels contain kernel names,
// so every free-text field passes through RFC-4180 quoting.
std::string StrataCsv(const std::vector<StratumRow>& rows, double confidence);

// Round-accounting summary for a finished engine: rounds planned, runs
// scheduled vs pool size, converged/exhausted tallies.
std::string AdaptiveSummary(const AdaptiveEngine& engine);

}  // namespace nvbitfi::adaptive
