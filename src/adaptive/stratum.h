// Stratification of an injection-site pool for adaptive sampling.
//
// The campaign's experiment pool [0, num_injections) is deterministic before
// anything runs: per-experiment Rng streams are pre-forked in index order, so
// every experiment's fault draw can be previewed (core's
// PreviewTransientFaults).  The stratifier partitions the pool by what is
// known about each draw statically:
//
//   kernel        — the kernel the fault lands in
//   opcode group  — the Table II partition (fp64/fp32/ld/pr/nodest/other) of
//                   the target instruction, resolved via the static oracle
//   liveness      — the static-analysis verdict: dead / live / unresolved;
//                   live sites further split by the bit-liveness masking
//                   score (fraction of statically dead target bits), binned
//                   into quartiles m00/m25/m50/m75
//
// Draws with no eligible site (trivially masked experiments) form their own
// stratum.  Observed anatomy patterns cannot stratify *scheduling* (they
// only exist after a run); `nvbitfi analyze --strata` cross-tabs them
// post-hoc instead.
//
// Each stratum also carries an importance weight — the mean propagation
// potential (1 - masking score, floored so fully-masked strata keep a
// trickle) of its members — which the allocator multiplies into the
// uncertainty weights, spending runs where flips can actually propagate.
//
// Stratum ids are assigned by sorting the distinct labels, so the mapping is
// a pure function of (profile, seed, group, flip model) — every process that
// stratifies the same campaign derives the identical partition, which is
// what lets coordinator and workers agree on stratum ids by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/static_oracle.h"

namespace nvbitfi::adaptive {

// Human-readable Table II partition-group label for an opcode.
std::string_view OpcodeGroupLabel(sim::Opcode op);

// Quartile bin of a static masking score, rendered as "m00".."m75" (the
// lower bound of the bin as a percentage).  A score of 1.0 lands in m75.
int MaskingScoreBin(double masking_score);
std::string_view MaskingScoreBinLabel(int bin);

// Stratum label of one previewed draw ("kernel/group/liveness", with live
// sites suffixed by their masking-score bin — "k/other/live/m25" — or
// "(no-site)" for trivially masked draws).  `oracle` may be null — sites
// then stratify as ".../unresolved" with an unknown opcode group.
std::string StratumLabelFor(const fi::ProgramProfile& profile,
                            const fi::TransientDraw& draw,
                            const fi::StaticSiteOracle* oracle);

struct Stratification {
  std::vector<std::string> labels;                  // stratum id -> label, sorted
  std::vector<std::uint32_t> stratum_of;            // pool index -> stratum id
  std::vector<std::vector<std::uint64_t>> members;  // stratum id -> ascending indexes
  // stratum id -> allocator importance weight (mean member propagation
  // potential).  May be empty (hand-built stratifications): every stratum
  // then weighs 1.0.
  std::vector<double> importance;

  std::size_t num_strata() const { return labels.size(); }
  std::size_t pool_size() const { return stratum_of.size(); }
};

// Partitions the full pool.  `draws` must be PreviewTransientFaults' output
// for the campaign being stratified.
Stratification StratifyPool(const fi::ProgramProfile& profile,
                            const std::vector<fi::TransientDraw>& draws,
                            const fi::StaticSiteOracle* oracle);

}  // namespace nvbitfi::adaptive
