#include "adaptive/stratum.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace nvbitfi::adaptive {

std::string_view OpcodeGroupLabel(sim::Opcode op) {
  using fi::ArchStateId;
  // Table II's groups 1-5 partition the ISA (6, "others", is the rest); the
  // first match wins in the paper's numbering order.
  if (fi::OpcodeInGroup(op, ArchStateId::kGFp64)) return "fp64";
  if (fi::OpcodeInGroup(op, ArchStateId::kGFp32)) return "fp32";
  if (fi::OpcodeInGroup(op, ArchStateId::kGLd)) return "ld";
  if (fi::OpcodeInGroup(op, ArchStateId::kGPr)) return "pr";
  if (fi::OpcodeInGroup(op, ArchStateId::kGNoDest)) return "nodest";
  return "other";
}

int MaskingScoreBin(double masking_score) {
  const int bin = static_cast<int>(masking_score * 4.0);
  return std::clamp(bin, 0, 3);
}

std::string_view MaskingScoreBinLabel(int bin) {
  switch (bin) {
    case 0: return "m00";
    case 1: return "m25";
    case 2: return "m50";
    case 3: return "m75";
    default: return "m??";
  }
}

namespace {

struct DrawStratum {
  std::string label;
  // Propagation potential: how much of the target a flip can still reach.
  // Unresolved sites count fully (nothing is known); no-site and dead draws
  // are certainly masked and carry none.
  double potential = 1.0;
};

// Keep strata with no propagation potential allocatable: their outcome rates
// are known a priori, but a trickle verifies the static verdict dynamically.
constexpr double kImportanceFloor = 0.05;

DrawStratum StratumFor(const fi::ProgramProfile& profile, const fi::TransientDraw& draw,
                       const fi::StaticSiteOracle* oracle) {
  if (!draw.params.has_value()) return {"(no-site)", 0.0};
  const fi::TransientFaultParams& params = *draw.params;
  std::string group = "?";
  std::string liveness = "unresolved";
  double potential = 1.0;
  if (oracle != nullptr) {
    const fi::StaticSiteVerdict verdict = oracle->Evaluate(profile, params);
    if (verdict.resolved) {
      group = std::string(OpcodeGroupLabel(verdict.opcode));
      potential = 1.0 - verdict.masking_score;
      if (verdict.statically_dead) {
        liveness = "dead";
        potential = 0.0;
      } else {
        liveness = "live/";
        liveness += MaskingScoreBinLabel(MaskingScoreBin(verdict.masking_score));
      }
    }
  }
  return {params.kernel_name + "/" + group + "/" + liveness, potential};
}

}  // namespace

std::string StratumLabelFor(const fi::ProgramProfile& profile,
                            const fi::TransientDraw& draw,
                            const fi::StaticSiteOracle* oracle) {
  return StratumFor(profile, draw, oracle).label;
}

Stratification StratifyPool(const fi::ProgramProfile& profile,
                            const std::vector<fi::TransientDraw>& draws,
                            const fi::StaticSiteOracle* oracle) {
  std::vector<std::string> pool_labels;
  std::vector<double> pool_potential;
  pool_labels.reserve(draws.size());
  pool_potential.reserve(draws.size());
  for (const fi::TransientDraw& draw : draws) {
    DrawStratum ds = StratumFor(profile, draw, oracle);
    pool_labels.push_back(std::move(ds.label));
    pool_potential.push_back(ds.potential);
  }

  // std::map keeps labels sorted; ids are their rank in that order.
  std::map<std::string, std::uint32_t> ids;
  for (const std::string& label : pool_labels) ids.emplace(label, 0);
  Stratification out;
  out.labels.reserve(ids.size());
  for (auto& [label, id] : ids) {
    id = static_cast<std::uint32_t>(out.labels.size());
    out.labels.push_back(label);
  }

  out.stratum_of.reserve(pool_labels.size());
  out.members.resize(out.labels.size());
  std::vector<double> potential_sum(out.labels.size(), 0.0);
  for (std::size_t i = 0; i < pool_labels.size(); ++i) {
    const std::uint32_t id = ids.at(pool_labels[i]);
    out.stratum_of.push_back(id);
    out.members[id].push_back(i);
    potential_sum[id] += pool_potential[i];
  }

  out.importance.reserve(out.labels.size());
  for (std::size_t s = 0; s < out.labels.size(); ++s) {
    const double mean =
        potential_sum[s] / static_cast<double>(out.members[s].size());
    out.importance.push_back(std::max(mean, kImportanceFloor));
  }
  return out;
}

}  // namespace nvbitfi::adaptive
