#include "adaptive/stratum.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace nvbitfi::adaptive {

std::string_view OpcodeGroupLabel(sim::Opcode op) {
  using fi::ArchStateId;
  // Table II's groups 1-5 partition the ISA (6, "others", is the rest); the
  // first match wins in the paper's numbering order.
  if (fi::OpcodeInGroup(op, ArchStateId::kGFp64)) return "fp64";
  if (fi::OpcodeInGroup(op, ArchStateId::kGFp32)) return "fp32";
  if (fi::OpcodeInGroup(op, ArchStateId::kGLd)) return "ld";
  if (fi::OpcodeInGroup(op, ArchStateId::kGPr)) return "pr";
  if (fi::OpcodeInGroup(op, ArchStateId::kGNoDest)) return "nodest";
  return "other";
}

std::string StratumLabelFor(const fi::ProgramProfile& profile,
                            const fi::TransientDraw& draw,
                            const fi::StaticSiteOracle* oracle) {
  if (!draw.params.has_value()) return "(no-site)";
  const fi::TransientFaultParams& params = *draw.params;
  std::string group = "?";
  std::string liveness = "unresolved";
  if (oracle != nullptr) {
    const fi::StaticSiteVerdict verdict = oracle->Evaluate(profile, params);
    if (verdict.resolved) {
      group = std::string(OpcodeGroupLabel(verdict.opcode));
      liveness = verdict.statically_dead ? "dead" : "live";
    }
  }
  return params.kernel_name + "/" + group + "/" + liveness;
}

Stratification StratifyPool(const fi::ProgramProfile& profile,
                            const std::vector<fi::TransientDraw>& draws,
                            const fi::StaticSiteOracle* oracle) {
  std::vector<std::string> pool_labels;
  pool_labels.reserve(draws.size());
  for (const fi::TransientDraw& draw : draws) {
    pool_labels.push_back(StratumLabelFor(profile, draw, oracle));
  }

  // std::map keeps labels sorted; ids are their rank in that order.
  std::map<std::string, std::uint32_t> ids;
  for (const std::string& label : pool_labels) ids.emplace(label, 0);
  Stratification out;
  out.labels.reserve(ids.size());
  for (auto& [label, id] : ids) {
    id = static_cast<std::uint32_t>(out.labels.size());
    out.labels.push_back(label);
  }

  out.stratum_of.reserve(pool_labels.size());
  out.members.resize(out.labels.size());
  for (std::size_t i = 0; i < pool_labels.size(); ++i) {
    const std::uint32_t id = ids.at(pool_labels[i]);
    out.stratum_of.push_back(id);
    out.members[id].push_back(i);
  }
  return out;
}

}  // namespace nvbitfi::adaptive
