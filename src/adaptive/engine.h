// The adaptive sampling engine: allocator + stopping rule over a
// stratified pool.
//
// The engine is a pure state machine — no simulation, no I/O.  Callers
// (the CLI's --adaptive runner, the serve coordinator) drive it:
//
//   while (!(round = engine.PlanRound()).indexes.empty()) {
//     persist round;                       // BEFORE running: crash-safe
//     run round.indexes;                   // any workers / shards
//     engine.Observe(index, classification) for each;
//   }
//
// PlanRound is a pure function of the observed outcome tallies, which are
// themselves deterministic (campaign records depend only on experiment
// index), so any two processes that observe the same prefix of rounds plan
// identical continuations.  Resume additionally adopts the persisted rounds
// verbatim (AdoptRound) rather than re-planning, making the schedule replay
// bit-for-bit by construction even if the allocator ever changes.
//
// Allocation rule, per round:
//   1. Seed: strata below policy.min_per_stratum scheduled experiments are
//      topped up first (ascending stratum id), so every stratum's
//      uncertainty means something before it competes for budget.
//   2. The remaining budget is split across unconverged, unexhausted strata
//      proportionally to their outcome-uncertainty (widest Wilson half-width
//      across Masked/SDC/DUE at policy.confidence) times their importance
//      weight (the stratification's mean propagation potential, 1.0 when
//      absent), largest-remainder rounding, ties to the lower stratum id.
//   3. A stratum whose uncertainty is at most policy.target_half_width is
//      converged: it receives nothing and is retired early.
// The campaign ends when no stratum is both unconverged and unexhausted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adaptive/round.h"
#include "adaptive/stratum.h"
#include "core/outcome.h"

namespace nvbitfi::adaptive {

// Widest Wilson half-width across the three Table V outcome rates; 1.0 when
// nothing has been observed yet.
double OutcomeUncertainty(const fi::OutcomeCounts& counts, double confidence);

class AdaptiveEngine {
 public:
  AdaptiveEngine(Stratification stratification, AdaptivePolicy policy);

  // Plans and commits the next round.  An empty round (no indexes) means the
  // campaign is done: every stratum is converged or exhausted.  Requires all
  // previously scheduled experiments to have been Observe()d.
  RoundRecord PlanRound();

  // Resume path: commits a persisted round verbatim after verifying it is
  // consistent with the stratification (each allocation takes exactly the
  // next unscheduled members of its stratum).  False + *error on a round
  // that could not have been produced for this campaign.
  bool AdoptRound(const RoundRecord& round, std::string* error);

  // Feeds back one scheduled experiment's outcome.
  void Observe(std::uint64_t index, const fi::Classification& classification);

  bool Done() const;

  const Stratification& stratification() const { return stratification_; }
  const AdaptivePolicy& policy() const { return policy_; }
  std::size_t rounds_planned() const { return rounds_; }
  std::uint64_t total_scheduled() const;
  std::uint64_t total_observed() const;

  // Per-stratum state for reports.
  const fi::OutcomeCounts& StratumCounts(std::size_t s) const { return counts_[s]; }
  std::uint64_t StratumScheduled(std::size_t s) const { return scheduled_[s]; }
  std::uint64_t StratumPopulation(std::size_t s) const {
    return stratification_.members[s].size();
  }
  bool StratumExhausted(std::size_t s) const {
    return scheduled_[s] >= StratumPopulation(s);
  }
  bool StratumConverged(std::size_t s) const;
  double StratumUncertainty(std::size_t s) const;
  // Allocator weight multiplier from the stratification's masking-score
  // analysis; 1.0 when the stratification carries no importance vector.
  double StratumImportance(std::size_t s) const;

 private:
  void Commit(const RoundRecord& round);

  Stratification stratification_;
  AdaptivePolicy policy_;
  std::vector<fi::OutcomeCounts> counts_;
  std::vector<std::uint64_t> scheduled_;
  std::vector<std::uint64_t> observed_;
  std::size_t rounds_ = 0;
};

}  // namespace nvbitfi::adaptive
