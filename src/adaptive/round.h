// Adaptive-campaign schedule records (persisted in store header v5).
//
// An adaptive campaign runs in rounds: each round the engine allocates a
// budget of experiments across strata and commits the exact pool indexes it
// scheduled.  The committed rounds ARE the campaign's schedule — they are
// persisted in the result-store header before the round executes, so a
// resumed campaign adopts them verbatim and replays the identical schedule
// bit-for-bit instead of re-deriving it.
//
// Header-only: the analysis layer serializes these into store headers
// without linking the adaptive engine.
#pragma once

#include <cstdint>
#include <vector>

namespace nvbitfi::adaptive {

// Stopping/allocation policy.  All four fields join the store's resume
// identity: a store scheduled under one policy must never be completed under
// another.
struct AdaptivePolicy {
  // Confidence level of the per-stratum Wilson intervals.
  double confidence = 0.95;
  // A stratum is converged (retired from allocation) when the widest Wilson
  // half-width across its Masked/SDC/DUE rates is at most this.
  double target_half_width = 0.10;
  // Experiment budget per round.
  std::uint64_t round_size = 32;
  // Round-robin seeding floor: strata are topped up to this many scheduled
  // experiments before uncertainty-proportional allocation kicks in.
  std::uint64_t min_per_stratum = 4;
};

struct RoundAllocation {
  std::uint32_t stratum = 0;  // index into the stratification's label list
  std::uint64_t count = 0;
};

struct RoundRecord {
  // Per-stratum budget, ascending by stratum id.
  std::vector<RoundAllocation> allocations;
  // The exact pool indexes scheduled, concatenated in allocation order (each
  // stratum contributes its members in ascending index order).
  std::vector<std::uint64_t> indexes;
};

}  // namespace nvbitfi::adaptive
