#include "adaptive/engine.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"
#include "core/statistics.h"

namespace nvbitfi::adaptive {

double OutcomeUncertainty(const fi::OutcomeCounts& counts, double confidence) {
  const std::uint64_t n = counts.total();
  if (n == 0) return 1.0;
  double widest = 0.0;
  for (const std::uint64_t successes : {counts.masked, counts.sdc, counts.due}) {
    widest = std::max(
        widest, fi::EstimateProportion(successes, n, confidence).margin);
  }
  return widest;
}

AdaptiveEngine::AdaptiveEngine(Stratification stratification, AdaptivePolicy policy)
    : stratification_(std::move(stratification)), policy_(policy) {
  NVBITFI_CHECK_MSG(policy_.confidence > 0.0 && policy_.confidence < 1.0,
                    "adaptive confidence must be in (0,1)");
  NVBITFI_CHECK_MSG(policy_.target_half_width > 0.0 && policy_.target_half_width < 1.0,
                    "adaptive target width must be in (0,1)");
  NVBITFI_CHECK_MSG(policy_.round_size > 0, "adaptive round size must be positive");
  const std::size_t num_strata = stratification_.num_strata();
  counts_.resize(num_strata);
  scheduled_.assign(num_strata, 0);
  observed_.assign(num_strata, 0);
}

bool AdaptiveEngine::StratumConverged(std::size_t s) const {
  return counts_[s].total() > 0 &&
         OutcomeUncertainty(counts_[s], policy_.confidence) <=
             policy_.target_half_width;
}

double AdaptiveEngine::StratumUncertainty(std::size_t s) const {
  return OutcomeUncertainty(counts_[s], policy_.confidence);
}

double AdaptiveEngine::StratumImportance(std::size_t s) const {
  if (s >= stratification_.importance.size()) return 1.0;
  return stratification_.importance[s];
}

std::uint64_t AdaptiveEngine::total_scheduled() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : scheduled_) total += s;
  return total;
}

std::uint64_t AdaptiveEngine::total_observed() const {
  std::uint64_t total = 0;
  for (const std::uint64_t o : observed_) total += o;
  return total;
}

bool AdaptiveEngine::Done() const {
  for (std::size_t s = 0; s < stratification_.num_strata(); ++s) {
    if (!StratumExhausted(s) && !StratumConverged(s)) return false;
  }
  return true;
}

void AdaptiveEngine::Observe(std::uint64_t index,
                             const fi::Classification& classification) {
  NVBITFI_CHECK_MSG(index < stratification_.pool_size(),
                    "observed index " << index << " outside the pool");
  const std::uint32_t s = stratification_.stratum_of[index];
  counts_[s].Add(classification);
  ++observed_[s];
  NVBITFI_CHECK_MSG(observed_[s] <= scheduled_[s],
                    "stratum " << s << " observed more runs than scheduled");
}

void AdaptiveEngine::Commit(const RoundRecord& round) {
  for (const RoundAllocation& allocation : round.allocations) {
    scheduled_[allocation.stratum] += allocation.count;
  }
  ++rounds_;
}

RoundRecord AdaptiveEngine::PlanRound() {
  NVBITFI_CHECK_MSG(total_observed() == total_scheduled(),
                    "PlanRound called with outcomes still outstanding");
  const std::size_t num_strata = stratification_.num_strata();
  std::vector<std::uint64_t> alloc(num_strata, 0);
  std::uint64_t budget = policy_.round_size;

  const auto remaining = [&](std::size_t s) {
    return StratumPopulation(s) - scheduled_[s] - alloc[s];
  };
  const auto eligible = [&](std::size_t s) {
    return remaining(s) > 0 && !StratumConverged(s);
  };

  // Step 1: seeding floor, ascending stratum id.
  for (std::size_t s = 0; s < num_strata && budget > 0; ++s) {
    if (!eligible(s) || scheduled_[s] >= policy_.min_per_stratum) continue;
    const std::uint64_t take = std::min(
        {policy_.min_per_stratum - scheduled_[s], remaining(s), budget});
    alloc[s] += take;
    budget -= take;
  }

  // Step 2: uncertainty-proportional with largest-remainder rounding.  The
  // loop re-runs when population caps strand budget; it terminates because
  // each pass either hands out experiments or finds no capacity.
  while (budget > 0) {
    std::vector<std::size_t> open;
    double total_weight = 0.0;
    for (std::size_t s = 0; s < num_strata; ++s) {
      if (!eligible(s)) continue;
      open.push_back(s);
      total_weight += StratumUncertainty(s) * StratumImportance(s);
    }
    if (open.empty() || total_weight <= 0.0) break;

    std::uint64_t given = 0;
    struct Remainder {
      double fraction;
      std::size_t stratum;
    };
    std::vector<Remainder> remainders;
    for (const std::size_t s : open) {
      const double ideal = static_cast<double>(budget) * StratumUncertainty(s) *
                           StratumImportance(s) / total_weight;
      const std::uint64_t whole = std::min(
          static_cast<std::uint64_t>(ideal), remaining(s));
      alloc[s] += whole;
      given += whole;
      if (remaining(s) > 0) {
        remainders.push_back({ideal - std::floor(ideal), s});
      }
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const Remainder& a, const Remainder& b) {
                if (a.fraction != b.fraction) return a.fraction > b.fraction;
                return a.stratum < b.stratum;
              });
    for (const Remainder& r : remainders) {
      if (given >= budget) break;
      if (remaining(r.stratum) == 0) continue;
      ++alloc[r.stratum];
      ++given;
    }
    budget -= given;
    if (given == 0) break;  // every open stratum is capped
  }

  RoundRecord round;
  for (std::size_t s = 0; s < num_strata; ++s) {
    if (alloc[s] == 0) continue;
    round.allocations.push_back({static_cast<std::uint32_t>(s), alloc[s]});
    for (std::uint64_t k = 0; k < alloc[s]; ++k) {
      round.indexes.push_back(stratification_.members[s][scheduled_[s] + k]);
    }
  }
  if (!round.indexes.empty()) Commit(round);
  return round;
}

bool AdaptiveEngine::AdoptRound(const RoundRecord& round, std::string* error) {
  std::size_t cursor = 0;
  std::uint32_t previous_stratum = 0;
  for (std::size_t a = 0; a < round.allocations.size(); ++a) {
    const RoundAllocation& allocation = round.allocations[a];
    const std::uint32_t s = allocation.stratum;
    if (s >= stratification_.num_strata()) {
      if (error != nullptr) *error = Format("round names unknown stratum %u", s);
      return false;
    }
    if (a > 0 && s <= previous_stratum) {
      if (error != nullptr) *error = "round allocations not ascending by stratum";
      return false;
    }
    previous_stratum = s;
    if (scheduled_[s] + allocation.count > StratumPopulation(s)) {
      if (error != nullptr) {
        *error = Format("round overruns stratum %u (%llu scheduled + %llu > %llu)",
                        s, static_cast<unsigned long long>(scheduled_[s]),
                        static_cast<unsigned long long>(allocation.count),
                        static_cast<unsigned long long>(StratumPopulation(s)));
      }
      return false;
    }
    for (std::uint64_t k = 0; k < allocation.count; ++k, ++cursor) {
      const std::uint64_t expected = stratification_.members[s][scheduled_[s] + k];
      if (cursor >= round.indexes.size() || round.indexes[cursor] != expected) {
        if (error != nullptr) {
          *error = Format("round index list disagrees with stratification at "
                          "position %zu (expected %llu)",
                          cursor, static_cast<unsigned long long>(expected));
        }
        return false;
      }
    }
  }
  if (cursor != round.indexes.size()) {
    if (error != nullptr) *error = "round index list longer than its allocations";
    return false;
  }
  Commit(round);
  return true;
}

}  // namespace nvbitfi::adaptive
