#include "adaptive/report.h"

#include "common/strings.h"
#include "core/report.h"
#include "core/statistics.h"

namespace nvbitfi::adaptive {
namespace {

std::string RateCell(std::uint64_t successes, std::uint64_t n, double confidence) {
  if (n == 0) return Format("%16s", "-");
  const fi::ProportionEstimate e = fi::EstimateProportion(successes, n, confidence);
  return Format("%5.1f%% ±%4.1f%%  ", 100.0 * e.value, 100.0 * e.margin);
}

}  // namespace

std::vector<StratumRow> EngineRows(const AdaptiveEngine& engine) {
  std::vector<StratumRow> rows;
  const Stratification& stratification = engine.stratification();
  rows.reserve(stratification.num_strata());
  for (std::size_t s = 0; s < stratification.num_strata(); ++s) {
    StratumRow row;
    row.label = stratification.labels[s];
    row.population = engine.StratumPopulation(s);
    row.scheduled = engine.StratumScheduled(s);
    row.counts = engine.StratumCounts(s);
    row.converged = engine.StratumConverged(s);
    row.exhausted = engine.StratumExhausted(s);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string StrataReport(const std::vector<StratumRow>& rows, double confidence,
                         double target_half_width) {
  std::string out = Format("strata at %.0f%% confidence (Wilson):\n",
                           100.0 * confidence);
  for (const StratumRow& row : rows) {
    const std::uint64_t n = row.counts.total();
    std::string state;
    if (target_half_width > 0.0) {
      if (row.converged) {
        state = "  converged";
      } else if (row.exhausted) {
        state = "  exhausted";
      } else {
        state = Format("  width %.3f > %.3f", OutcomeUncertainty(row.counts, confidence),
                       target_half_width);
      }
    }
    out += Format("  %-40s %6llu/%llu runs  M %s S %s D %s%s\n", row.label.c_str(),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(
                      row.population > 0 ? row.population : n),
                  RateCell(row.counts.masked, n, confidence).c_str(),
                  RateCell(row.counts.sdc, n, confidence).c_str(),
                  RateCell(row.counts.due, n, confidence).c_str(), state.c_str());
  }
  return out;
}

std::string StrataCsv(const std::vector<StratumRow>& rows, double confidence) {
  std::string out =
      "stratum,population,scheduled,runs,masked,sdc,due,potential_due,"
      "masked_rate,masked_lower,masked_upper,sdc_rate,sdc_lower,sdc_upper,"
      "due_rate,due_lower,due_upper,max_half_width,converged,exhausted\n";
  for (const StratumRow& row : rows) {
    const std::uint64_t n = row.counts.total();
    const fi::OutcomeEstimates e = fi::EstimateOutcomes(row.counts, confidence);
    out += Format(
        "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d\n",
        fi::CsvField(row.label).c_str(),
        static_cast<unsigned long long>(row.population),
        static_cast<unsigned long long>(row.scheduled),
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(row.counts.masked),
        static_cast<unsigned long long>(row.counts.sdc),
        static_cast<unsigned long long>(row.counts.due),
        static_cast<unsigned long long>(row.counts.potential_due),
        e.masked.value, e.masked.lower, e.masked.upper, e.sdc.value, e.sdc.lower,
        e.sdc.upper, e.due.value, e.due.lower, e.due.upper,
        OutcomeUncertainty(row.counts, confidence), row.converged ? 1 : 0,
        row.exhausted ? 1 : 0);
  }
  return out;
}

std::string AdaptiveSummary(const AdaptiveEngine& engine) {
  std::size_t converged = 0;
  std::size_t exhausted = 0;
  const std::size_t num_strata = engine.stratification().num_strata();
  for (std::size_t s = 0; s < num_strata; ++s) {
    if (engine.StratumConverged(s)) {
      ++converged;
    } else if (engine.StratumExhausted(s)) {
      ++exhausted;
    }
  }
  return Format(
      "adaptive: %zu rounds, %llu/%zu pool experiments scheduled; "
      "%zu/%zu strata converged (target ±%.3f at %.0f%%), %zu exhausted\n",
      engine.rounds_planned(),
      static_cast<unsigned long long>(engine.total_scheduled()),
      engine.stratification().pool_size(), converged, num_strata,
      engine.policy().target_half_width, 100.0 * engine.policy().confidence,
      exhausted);
}

}  // namespace nvbitfi::adaptive
