// Minimal AF_UNIX plumbing for the campaign service.
//
// The coordinator listens on a filesystem socket; clients (`nvbitfi submit`)
// and external workers (`nvbitfi shard --connect`) dial it, and in-process
// worker threads talk over a socketpair — all four ends speak the same
// line-delimited JSON protocol (see protocol.h), so the coordinator cannot
// tell a thread from a process.
#pragma once

#include <optional>
#include <string>

namespace nvbitfi::service {

// Creates, binds, and listens on a unix stream socket at `path` (an existing
// socket file is replaced).  Returns the listening fd, or -1 with *error.
int ListenUnix(const std::string& path, std::string* error);

// Connects to the unix stream socket at `path`; -1 with *error on failure.
int ConnectUnix(const std::string& path, std::string* error);

// A connected stream socket pair (in-process worker transport).  Returns
// false on failure.
bool SocketPair(int fds[2], std::string* error);

// Writes `data` exactly as given, retrying partial writes.  False when the
// peer is gone (the caller should treat the connection as dead); SIGPIPE is
// suppressed.  Used for HTTP responses on the status endpoint.
bool SendRaw(int fd, const std::string& data);

// Writes `line` plus a terminating newline (SendRaw semantics otherwise).
bool SendLine(int fd, const std::string& line);

// Reassembles newline-delimited messages from stream reads.
class LineBuffer {
 public:
  void Append(const char* data, std::size_t size) { buffer_.append(data, size); }

  // Next complete line (without the newline), or nullopt when none is
  // buffered yet.
  std::optional<std::string> PopLine();

 private:
  std::string buffer_;
};

}  // namespace nvbitfi::service
