#include "service/coordinator.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "analysis/json.h"
#include "analysis/merge.h"
#include "analysis/result_store.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/report.h"
#include "service/worker.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

namespace nvbitfi::service {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options, fi::RunCache* cache)
    : options_(std::move(options)), cache_(cache) {
  // --verbose promotes the process log level so scheduling decisions show;
  // NVBITFI_LOG=info reaches the same messages without the flag.
  if (options_.verbose && GetLogLevel() > LogLevel::kInfo) {
    SetLogLevel(LogLevel::kInfo);
  }
}

Coordinator::~Coordinator() {
  if (listener_ >= 0) ::close(listener_);
  for (const auto& [fd, connection] : connections_) {
    (void)connection;
    ::close(fd);
  }
  for (std::thread& thread : worker_threads_) {
    if (thread.joinable()) thread.join();
  }
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

bool Coordinator::Start(std::string* error) {
  listener_ = ListenUnix(options_.socket_path, error);
  if (listener_ < 0) return false;
  for (int i = 0; i < options_.inprocess_workers; ++i) {
    int fds[2];
    if (!SocketPair(fds, error)) return false;
    connections_[fds[0]] = Connection{};
    inprocess_fds_.push_back(fds[0]);
    WorkerOptions worker_options;
    worker_options.shard_workers = options_.shard_workers;
    worker_options.verbose = options_.verbose;
    fi::RunCache* cache = cache_;
    const int worker_fd = fds[1];
    worker_threads_.emplace_back(
        [worker_fd, cache, worker_options] { WorkerLoop(worker_fd, cache, worker_options); });
  }
  Log("listening on %s (%d in-process workers)", options_.socket_path.c_str(),
      options_.inprocess_workers);
  return true;
}

int Coordinator::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listener_, POLLIN, 0});
    for (const auto& [fd, connection] : connections_) {
      (void)connection;
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    ::poll(fds.data(), fds.size(), 200);

    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listener_, nullptr, nullptr);
      if (fd >= 0) connections_[fd] = Connection{};
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = fds[i].fd;
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        Disconnect(fd);
        continue;
      }
      it->second.buffer.Append(chunk, static_cast<std::size_t>(n));
      // Drain complete lines; the connection may die mid-drain (a handler
      // can disconnect it), so re-look it up each iteration.
      while (true) {
        auto live = connections_.find(fd);
        if (live == connections_.end()) break;
        std::optional<std::string> line = live->second.buffer.PopLine();
        if (!line.has_value()) break;
        HandleLine(fd, *line);
      }
    }

    CheckHeartbeats();
    ScheduleShards();

    const bool target_reached =
        options_.max_campaigns > 0 && completed_campaigns_ >= options_.max_campaigns;
    if ((draining_ || target_reached) && campaigns_.empty()) break;
  }

  // Clean shutdown: tell every worker (thread or external process) to exit.
  for (const auto& [fd, connection] : connections_) {
    if (connection.role == Connection::Role::kWorker) SendLine(fd, ShutdownLine());
  }
  Log("shutting down after %d campaign%s", completed_campaigns_,
      completed_campaigns_ == 1 ? "" : "s");
  return 0;
}

void Coordinator::HandleLine(int fd, const std::string& line) {
  // HTTP status endpoint: the protocol is line-delimited, so an HTTP/1.0
  // request line arrives here verbatim (with its trailing '\r').  Respond
  // and close before JSON parsing ever sees it.
  if (line.rfind("GET ", 0) == 0) {
    HandleHttpGet(fd, line);
    return;
  }
  const std::optional<Message> message = ParseMessage(line);
  if (!message.has_value()) return;  // not ours; ignore
  Connection& connection = connections_[fd];
  if (message->type == "hello") {
    connection.role = message->role == "worker" ? Connection::Role::kWorker
                                                : Connection::Role::kClient;
    return;
  }
  if (message->type == "submit") {
    connection.role = Connection::Role::kClient;
    HandleSubmit(fd, *message);
  } else if (message->type == "heartbeat") {
    HandleHeartbeat(fd, *message);
  } else if (message->type == "shard_done") {
    HandleShardDone(fd, *message);
  } else if (message->type == "shutdown") {
    draining_ = true;
    Log("shutdown requested; draining %zu active campaign%s", campaigns_.size(),
        campaigns_.size() == 1 ? "" : "s");
  }
}

void Coordinator::HandleHttpGet(int fd, const std::string& request_line) {
  // "GET /status HTTP/1.0\r" (or a bare "GET /status").
  std::string target = request_line.substr(4);
  std::size_t cut = target.find(' ');
  if (cut == std::string::npos) cut = target.find('\r');
  if (cut != std::string::npos) target = target.substr(0, cut);

  int code = 200;
  const char* reason = "OK";
  std::string type = "application/json";
  std::string body;
  if (target == "/status") {
    body = StatusJson();
  } else if (target == "/metrics") {
    type = "text/plain; version=0.0.4";
    body = MetricsText();
  } else {
    code = 404;
    reason = "Not Found";
    body = "{\"error\":\"unknown path; try /status or /metrics\"}\n";
  }
  if (telemetry::TelemetryEnabled()) {
    telemetry::GlobalRegistry()
        .GetCounter(Format("nvbitfi_serve_http_requests_total{path=\"%s\"}",
                           telemetry::PrometheusEscapeLabel(target).c_str()))
        .Increment();
  }

  std::string response =
      Format("HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
             "Connection: close\r\n\r\n",
             code, reason, type.c_str(), body.size());
  response += body;
  (void)SendRaw(fd, response);
  Disconnect(fd);
}

std::string Coordinator::StatusJson() const {
  namespace json = analysis::json;
  const double now = Now();
  json::Value root = json::Value::Object();

  json::Value service = json::Value::Object();
  service.Set("active_campaigns", static_cast<std::uint64_t>(campaigns_.size()));
  service.Set("completed_campaigns", static_cast<std::int64_t>(completed_campaigns_));
  service.Set("draining", draining_);
  json::Value workers = json::Value::Array();
  for (const auto& [fd, connection] : connections_) {
    if (connection.role != Connection::Role::kWorker) continue;
    json::Value worker = json::Value::Object();
    worker.Set("fd", static_cast<std::int64_t>(fd));
    worker.Set("busy", connection.busy);
    if (connection.busy) {
      worker.Set("campaign", connection.campaign);
      worker.Set("shard", static_cast<std::uint64_t>(connection.shard_begin));
    }
    worker.Set("heartbeat_age_seconds", now - connection.deadline_base);
    workers.Push(std::move(worker));
  }
  service.Set("workers", std::move(workers));
  root.Set("service", std::move(service));

  json::Value campaigns = json::Value::Array();
  for (const auto& [id, campaign] : campaigns_) {
    json::Value entry = json::Value::Object();
    entry.Set("id", id);
    entry.Set("program", campaign.spec.program);
    entry.Set("adaptive", campaign.adaptive);
    std::uint64_t completed = 0;
    for (const Shard& shard : campaign.shards) {
      completed +=
          shard.state == Shard::State::kDone ? shard.size() : shard.completed;
    }
    const std::uint64_t total =
        campaign.adaptive
            ? campaign.engine->total_scheduled()
            : static_cast<std::uint64_t>(campaign.spec.num_injections);
    entry.Set("completed", completed);
    entry.Set("total", total);
    if (campaign.adaptive) {
      entry.Set("rounds_planned", static_cast<std::uint64_t>(campaign.rounds.size()));
      entry.Set("observed", campaign.engine->total_observed());
    }

    json::Value shards = json::Value::Array();
    for (const Shard& shard : campaign.shards) {
      json::Value s = json::Value::Object();
      s.Set("key", static_cast<std::uint64_t>(shard.begin));
      if (shard.slice) {
        s.Set("slice", true);
      } else {
        s.Set("begin", static_cast<std::uint64_t>(shard.begin));
        s.Set("end", static_cast<std::uint64_t>(shard.end));
      }
      s.Set("state", shard.state == Shard::State::kPending   ? "pending"
                     : shard.state == Shard::State::kRunning ? "running"
                                                             : "done");
      s.Set("completed",
            shard.state == Shard::State::kDone ? shard.size() : shard.completed);
      s.Set("size", shard.size());
      s.Set("attempts", static_cast<std::int64_t>(shard.attempts));
      if (shard.state == Shard::State::kRunning && shard.worker_fd >= 0) {
        s.Set("worker_fd", static_cast<std::int64_t>(shard.worker_fd));
        const auto connection = connections_.find(shard.worker_fd);
        if (connection != connections_.end()) {
          s.Set("heartbeat_age_seconds", now - connection->second.deadline_base);
        }
      }
      shards.Push(std::move(s));
    }
    entry.Set("shards", std::move(shards));

    // Adaptive convergence: the same Wilson half-widths the final analyze
    // report prints, live per stratum.
    if (campaign.adaptive && campaign.engine != nullptr &&
        campaign.setup != nullptr) {
      json::Value strata = json::Value::Array();
      const std::size_t n = campaign.setup->stratification.num_strata();
      for (std::size_t s = 0; s < n; ++s) {
        json::Value stratum = json::Value::Object();
        stratum.Set("label", campaign.setup->stratification.labels[s]);
        stratum.Set("population", campaign.engine->StratumPopulation(s));
        stratum.Set("scheduled", campaign.engine->StratumScheduled(s));
        stratum.Set("observed", campaign.engine->StratumCounts(s).total());
        stratum.Set("half_width", campaign.engine->StratumUncertainty(s));
        stratum.Set("converged", campaign.engine->StratumConverged(s));
        stratum.Set("exhausted", campaign.engine->StratumExhausted(s));
        strata.Push(std::move(stratum));
      }
      entry.Set("strata", std::move(strata));
    }
    campaigns.Push(std::move(entry));
  }
  root.Set("campaigns", std::move(campaigns));
  return root.Dump() + "\n";
}

std::string Coordinator::MetricsText() const {
  std::string out = telemetry::PrometheusText(telemetry::GlobalRegistry());
  const double now = Now();
  using Labels = std::vector<std::pair<std::string, std::string>>;

  out += "# TYPE nvbitfi_serve_active_campaigns gauge\n";
  telemetry::AppendPrometheusSample(&out, "nvbitfi_serve_active_campaigns", {},
                                    static_cast<double>(campaigns_.size()));
  out += "# TYPE nvbitfi_serve_campaigns_completed gauge\n";
  telemetry::AppendPrometheusSample(&out, "nvbitfi_serve_campaigns_completed", {},
                                    static_cast<double>(completed_campaigns_));

  out += "# TYPE nvbitfi_serve_worker_heartbeat_age_seconds gauge\n";
  out += "# TYPE nvbitfi_serve_worker_busy gauge\n";
  for (const auto& [fd, connection] : connections_) {
    if (connection.role != Connection::Role::kWorker) continue;
    const Labels labels = {{"fd", Format("%d", fd)}};
    telemetry::AppendPrometheusSample(&out,
                                      "nvbitfi_serve_worker_heartbeat_age_seconds",
                                      labels, now - connection.deadline_base);
    telemetry::AppendPrometheusSample(&out, "nvbitfi_serve_worker_busy", labels,
                                      connection.busy ? 1.0 : 0.0);
  }

  out += "# TYPE nvbitfi_serve_shard_completed gauge\n";
  out += "# TYPE nvbitfi_serve_shard_size gauge\n";
  out += "# TYPE nvbitfi_serve_shard_running gauge\n";
  out += "# TYPE nvbitfi_serve_shard_attempts gauge\n";
  for (const auto& [id, campaign] : campaigns_) {
    const std::string campaign_label = Format("%llu", static_cast<unsigned long long>(id));
    for (const Shard& shard : campaign.shards) {
      const Labels labels = {{"campaign", campaign_label},
                             {"shard", Format("%zu", shard.begin)}};
      telemetry::AppendPrometheusSample(
          &out, "nvbitfi_serve_shard_completed", labels,
          static_cast<double>(shard.state == Shard::State::kDone ? shard.size()
                                                                 : shard.completed));
      telemetry::AppendPrometheusSample(&out, "nvbitfi_serve_shard_size", labels,
                                        static_cast<double>(shard.size()));
      telemetry::AppendPrometheusSample(
          &out, "nvbitfi_serve_shard_running", labels,
          shard.state == Shard::State::kRunning ? 1.0 : 0.0);
      telemetry::AppendPrometheusSample(&out, "nvbitfi_serve_shard_attempts",
                                        labels, static_cast<double>(shard.attempts));
    }
  }

  out += "# TYPE nvbitfi_serve_stratum_half_width gauge\n";
  out += "# TYPE nvbitfi_serve_stratum_scheduled gauge\n";
  out += "# TYPE nvbitfi_serve_stratum_observed gauge\n";
  out += "# TYPE nvbitfi_serve_stratum_converged gauge\n";
  for (const auto& [id, campaign] : campaigns_) {
    if (!campaign.adaptive || campaign.engine == nullptr ||
        campaign.setup == nullptr) {
      continue;
    }
    const std::string campaign_label = Format("%llu", static_cast<unsigned long long>(id));
    const std::size_t n = campaign.setup->stratification.num_strata();
    for (std::size_t s = 0; s < n; ++s) {
      const Labels labels = {{"campaign", campaign_label},
                             {"stratum", campaign.setup->stratification.labels[s]}};
      telemetry::AppendPrometheusSample(&out, "nvbitfi_serve_stratum_half_width",
                                        labels, campaign.engine->StratumUncertainty(s));
      telemetry::AppendPrometheusSample(
          &out, "nvbitfi_serve_stratum_scheduled", labels,
          static_cast<double>(campaign.engine->StratumScheduled(s)));
      telemetry::AppendPrometheusSample(
          &out, "nvbitfi_serve_stratum_observed", labels,
          static_cast<double>(campaign.engine->StratumCounts(s).total()));
      telemetry::AppendPrometheusSample(
          &out, "nvbitfi_serve_stratum_converged", labels,
          campaign.engine->StratumConverged(s) ? 1.0 : 0.0);
    }
  }
  return out;
}

void Coordinator::HandleSubmit(int fd, const Message& message) {
  if (draining_) {
    SendToClient(fd, ErrorLine("server is shutting down"));
    return;
  }
  const std::optional<fi::CampaignSpec> spec = fi::CampaignSpec::Parse(message.spec);
  if (!spec.has_value()) {
    SendToClient(fd, ErrorLine("malformed campaign spec"));
    return;
  }
  if (spec->num_injections <= 0) {
    SendToClient(fd, ErrorLine("campaign has no experiments"));
    return;
  }

  Campaign campaign;
  campaign.id = next_campaign_id_++;
  campaign.spec_text = message.spec;
  campaign.spec = *spec;
  campaign.client_fd = fd;
  campaign.out_store =
      !message.store.empty()
          ? message.store
          : Format("%s/campaign_%llu.jsonl", options_.workdir.c_str(),
                   static_cast<unsigned long long>(campaign.id));
  campaign.requested_shards = message.shards > 0 ? message.shards : 1;

  if (spec->adaptive) {
    // Stratify the pool up front (golden + profile run here, served from
    // the shared cache thereafter) and plan the first round; subsequent
    // rounds are planned as outcomes come back.
    campaign.adaptive = true;
    std::string error;
    std::optional<AdaptiveSetup> setup = BuildAdaptiveSetup(*spec, cache_, &error);
    if (!setup.has_value()) {
      SendToClient(fd, ErrorLine(error));
      return;
    }
    campaign.setup = std::make_shared<AdaptiveSetup>(*std::move(setup));
    campaign.engine = std::make_shared<adaptive::AdaptiveEngine>(
        campaign.setup->stratification, campaign.setup->policy);
    Log("campaign %llu: %s, adaptive pool of %d over %zu strata "
        "(target ±%.3f at %.0f%%)",
        static_cast<unsigned long long>(campaign.id), spec->program.c_str(),
        spec->num_injections, campaign.setup->stratification.num_strata(),
        campaign.setup->policy.target_half_width,
        100.0 * campaign.setup->policy.confidence);
    if (!PlanAdaptiveRound(campaign)) {
      SendToClient(fd, ErrorLine("adaptive campaign scheduled no experiments"));
      return;
    }
    const std::uint64_t id = campaign.id;
    campaigns_[id] = std::move(campaign);
    SendToClient(fd, AcceptedLine(id));
    return;
  }

  const std::vector<fi::ShardRange> ranges = fi::PlanShards(
      static_cast<std::size_t>(spec->num_injections),
      static_cast<std::size_t>(campaign.requested_shards));
  for (const fi::ShardRange& range : ranges) {
    Shard shard;
    shard.begin = range.begin;
    shard.end = range.end;
    shard.store = Format("%s/campaign_%llu_shard_%06zu_%06zu.jsonl",
                         options_.workdir.c_str(),
                         static_cast<unsigned long long>(campaign.id), range.begin,
                         range.end);
    campaign.shards.push_back(std::move(shard));
  }
  Log("campaign %llu: %s, %d experiments over %zu shards",
      static_cast<unsigned long long>(campaign.id), spec->program.c_str(),
      spec->num_injections, campaign.shards.size());
  const std::uint64_t id = campaign.id;
  campaigns_[id] = std::move(campaign);
  SendToClient(fd, AcceptedLine(id));
}

bool Coordinator::PlanAdaptiveRound(Campaign& campaign) {
  const adaptive::RoundRecord round = campaign.engine->PlanRound();
  if (round.indexes.empty()) return false;
  campaign.rounds.push_back(round);
  campaign.round_first_shard = campaign.shards.size();
  const std::size_t round_number = campaign.rounds.size();
  const std::vector<fi::ShardRange> ranges =
      fi::PlanShards(round.indexes.size(),
                     static_cast<std::size_t>(campaign.requested_shards));
  for (const fi::ShardRange& range : ranges) {
    Shard shard;
    shard.slice = true;
    shard.begin = static_cast<std::size_t>(campaign.next_slice++);
    shard.end = shard.begin;
    shard.indexes.assign(round.indexes.begin() + range.begin,
                         round.indexes.begin() + range.end);
    shard.store = Format("%s/campaign_%llu_slice_%06llu.jsonl",
                         options_.workdir.c_str(),
                         static_cast<unsigned long long>(campaign.id),
                         static_cast<unsigned long long>(shard.begin));
    campaign.slice_paths.push_back(shard.store);
    campaign.shards.push_back(std::move(shard));
  }
  Log("campaign %llu: round %zu schedules %zu experiments over %zu slices",
      static_cast<unsigned long long>(campaign.id), round_number,
      round.indexes.size(), campaign.shards.size() - campaign.round_first_shard);
  return true;
}

void Coordinator::HandleHeartbeat(int fd, const Message& message) {
  auto connection = connections_.find(fd);
  if (connection == connections_.end()) return;
  connection->second.deadline_base = Now();
  auto campaign = campaigns_.find(message.campaign);
  if (campaign == campaigns_.end()) return;  // stale (failed/kicked campaign)
  for (Shard& shard : campaign->second.shards) {
    if (shard.begin != message.begin) continue;
    if (shard.worker_fd == fd && shard.state == Shard::State::kRunning) {
      shard.completed = message.completed;
      SendProgress(campaign->second);
    }
    return;
  }
}

void Coordinator::HandleShardDone(int fd, const Message& message) {
  auto connection = connections_.find(fd);
  if (connection != connections_.end()) {
    connection->second.busy = false;
    connection->second.deadline_base = Now();
  }
  auto it = campaigns_.find(message.campaign);
  if (it == campaigns_.end()) return;  // stale
  Campaign& campaign = it->second;
  for (Shard& shard : campaign.shards) {
    if (shard.begin != message.begin || shard.worker_fd != fd ||
        shard.state != Shard::State::kRunning) {
      continue;
    }
    if (!message.ok) {
      FailCampaign(campaign.id,
                   message.error.empty() ? "shard failed" : message.error);
      return;
    }
    shard.state = Shard::State::kDone;
    shard.worker_fd = -1;
    shard.completed = shard.size();
    if (shard.slice) {
      Log("campaign %llu: slice %zu (%zu indexes) done",
          static_cast<unsigned long long>(campaign.id), shard.begin,
          shard.indexes.size());
    } else {
      Log("campaign %llu: shard [%zu, %zu) done",
          static_cast<unsigned long long>(campaign.id), shard.begin, shard.end);
    }
    SendProgress(campaign);
    bool all_done = true;
    for (const Shard& s : campaign.shards) {
      all_done = all_done && s.state == Shard::State::kDone;
    }
    if (all_done) {
      if (campaign.adaptive) {
        FinishAdaptiveRound(campaign.id);
      } else {
        CompleteCampaign(campaign.id);
      }
    }
    return;
  }
}

void Coordinator::Disconnect(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second.role == Connection::Role::kWorker && it->second.busy) {
    RequeueAssignment(fd);
  }
  for (auto& [id, campaign] : campaigns_) {
    (void)id;
    if (campaign.client_fd == fd) campaign.client_fd = -1;  // campaign continues
  }
  ::close(fd);
  connections_.erase(it);
}

void Coordinator::RequeueAssignment(int fd) {
  const Connection& connection = connections_[fd];
  auto campaign = campaigns_.find(connection.campaign);
  if (campaign == campaigns_.end()) return;
  for (Shard& shard : campaign->second.shards) {
    if (shard.begin == connection.shard_begin && shard.worker_fd == fd &&
        shard.state == Shard::State::kRunning) {
      shard.state = Shard::State::kPending;
      shard.worker_fd = -1;
      Log("campaign %llu: shard [%zu, %zu) lost its worker; requeued for resume",
          static_cast<unsigned long long>(campaign->second.id), shard.begin,
          shard.end);
      return;
    }
  }
}

void Coordinator::ScheduleShards() {
  while (true) {
    int idle_fd = -1;
    for (auto& [fd, connection] : connections_) {
      if (connection.role == Connection::Role::kWorker && !connection.busy) {
        idle_fd = fd;
        break;
      }
    }
    if (idle_fd < 0) return;
    Campaign* campaign = nullptr;
    Shard* shard = nullptr;
    for (auto& [id, candidate] : campaigns_) {
      (void)id;
      for (Shard& s : candidate.shards) {
        if (s.state == Shard::State::kPending) {
          campaign = &candidate;
          shard = &s;
          break;
        }
      }
      if (shard != nullptr) break;
    }
    if (shard == nullptr) return;
    const std::string assignment =
        shard->slice
            ? AssignSliceLine(campaign->id, campaign->spec_text, shard->begin,
                              shard->indexes, shard->store)
            : AssignLine(campaign->id, campaign->spec_text, shard->begin,
                         shard->end, shard->store);
    if (!SendLine(idle_fd, assignment)) {
      Disconnect(idle_fd);
      continue;
    }
    shard->state = Shard::State::kRunning;
    shard->worker_fd = idle_fd;
    ++shard->attempts;
    Connection& connection = connections_[idle_fd];
    connection.busy = true;
    connection.campaign = campaign->id;
    connection.shard_begin = shard->begin;
    connection.deadline_base = Now();
    if (shard->slice) {
      Log("campaign %llu: slice %zu (%zu indexes) -> worker fd %d (attempt %d)",
          static_cast<unsigned long long>(campaign->id), shard->begin,
          shard->indexes.size(), idle_fd, shard->attempts);
    } else {
      Log("campaign %llu: shard [%zu, %zu) -> worker fd %d (attempt %d)",
          static_cast<unsigned long long>(campaign->id), shard->begin, shard->end,
          idle_fd, shard->attempts);
    }
  }
}

void Coordinator::CheckHeartbeats() {
  const double now = Now();
  std::vector<int> dead;
  for (const auto& [fd, connection] : connections_) {
    if (connection.role == Connection::Role::kWorker && connection.busy &&
        now - connection.deadline_base > options_.heartbeat_timeout) {
      dead.push_back(fd);
    }
  }
  for (const int fd : dead) {
    Log("worker fd %d missed the heartbeat deadline (%.1fs); kicking it", fd,
        options_.heartbeat_timeout);
    // Closing the socket makes the kicked worker's next heartbeat fail, which
    // cancels its shard; Disconnect requeues the shard for resume elsewhere.
    Disconnect(fd);
  }
}

void Coordinator::SendProgress(const Campaign& campaign) {
  std::uint64_t completed = 0;
  for (const Shard& shard : campaign.shards) {
    completed += shard.state == Shard::State::kDone ? shard.size() : shard.completed;
  }
  // Adaptive totals grow as rounds are planned; uniform totals are fixed.
  const std::uint64_t total =
      campaign.adaptive ? campaign.engine->total_scheduled()
                        : static_cast<std::uint64_t>(campaign.spec.num_injections);
  SendToClient(campaign.client_fd, ProgressLine(campaign.id, completed, total));
}

void Coordinator::FinishAdaptiveRound(std::uint64_t id) {
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) return;
  Campaign& campaign = it->second;
  // Feed every slice's outcomes back into the engine.  Classifications are
  // read from the slice stores — the same bytes the final merge will copy —
  // so the engine's view can never drift from the persisted results.
  for (std::size_t s = campaign.round_first_shard; s < campaign.shards.size(); ++s) {
    const Shard& shard = campaign.shards[s];
    std::string error;
    const std::optional<analysis::LoadedStore> loaded =
        analysis::LoadResultStore(shard.store, &error);
    if (!loaded.has_value()) {
      FailCampaign(id, Format("cannot read slice store '%s': %s",
                              shard.store.c_str(), error.c_str()));
      return;
    }
    for (const std::uint64_t index : shard.indexes) {
      const auto record = loaded->transient.find(static_cast<std::size_t>(index));
      if (record == loaded->transient.end()) {
        FailCampaign(id, Format("slice store '%s' is missing experiment %llu",
                                shard.store.c_str(),
                                static_cast<unsigned long long>(index)));
        return;
      }
      campaign.engine->Observe(index, record->second.classification);
    }
  }
  Log("campaign %llu: round %zu observed (%llu/%llu experiments)",
      static_cast<unsigned long long>(id), campaign.rounds.size(),
      static_cast<unsigned long long>(campaign.engine->total_observed()),
      static_cast<unsigned long long>(campaign.engine->total_scheduled()));
  if (!PlanAdaptiveRound(campaign)) CompleteAdaptiveCampaign(id);
}

void Coordinator::CompleteAdaptiveCampaign(std::uint64_t id) {
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) return;
  Campaign& campaign = it->second;
  std::string error;
  const std::optional<analysis::MergeSummary> summary =
      analysis::MergeAdaptiveSliceStores(campaign.slice_paths, campaign.rounds,
                                         campaign.out_store, &error);
  if (!summary.has_value()) {
    FailCampaign(id, Format("adaptive merge failed: %s", error.c_str()));
    return;
  }
  Log("campaign %llu: merged %zu slices over %zu rounds into %s",
      static_cast<unsigned long long>(id), campaign.slice_paths.size(),
      campaign.rounds.size(), campaign.out_store.c_str());

  const std::optional<analysis::LoadedStore> loaded =
      analysis::LoadResultStore(campaign.out_store, &error);
  if (loaded.has_value()) {
    const fi::TransientCampaignResult result = analysis::RebuildTransientResult(*loaded);
    const adaptive::AdaptivePolicy& policy = campaign.setup->policy;
    std::string report = fi::TransientCampaignReport(result);
    report += "\n";
    report += adaptive::StrataReport(adaptive::EngineRows(*campaign.engine),
                                     policy.confidence, policy.target_half_width);
    report += adaptive::AdaptiveSummary(*campaign.engine);
    SendToClient(campaign.client_fd, ReportLine(id, report));
  }
  SendToClient(campaign.client_fd, DoneLine(id, true, campaign.out_store, ""));
  campaigns_.erase(it);
  ++completed_campaigns_;
}

void Coordinator::CompleteCampaign(std::uint64_t id) {
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) return;
  Campaign& campaign = it->second;
  std::vector<std::string> shard_paths;
  shard_paths.reserve(campaign.shards.size());
  for (const Shard& shard : campaign.shards) shard_paths.push_back(shard.store);

  std::string error;
  const std::optional<analysis::MergeSummary> summary =
      analysis::MergeShardStores(shard_paths, campaign.out_store, &error);
  if (!summary.has_value()) {
    FailCampaign(id, Format("merge failed: %s", error.c_str()));
    return;
  }
  Log("campaign %llu: merged %zu shards into %s",
      static_cast<unsigned long long>(id), summary->num_shards,
      campaign.out_store.c_str());

  const std::optional<analysis::LoadedStore> loaded =
      analysis::LoadResultStore(campaign.out_store, &error);
  if (loaded.has_value()) {
    const fi::TransientCampaignResult result = analysis::RebuildTransientResult(*loaded);
    SendToClient(campaign.client_fd,
                 ReportLine(id, fi::TransientCampaignReport(result)));
  }
  SendToClient(campaign.client_fd, DoneLine(id, true, campaign.out_store, ""));
  campaigns_.erase(it);
  ++completed_campaigns_;
}

void Coordinator::FailCampaign(std::uint64_t id, const std::string& error) {
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) return;
  Log("campaign %llu: failed: %s", static_cast<unsigned long long>(id),
      error.c_str());
  SendToClient(it->second.client_fd, DoneLine(id, false, "", error));
  campaigns_.erase(it);
  ++completed_campaigns_;
}

void Coordinator::SendToClient(int fd, const std::string& line) {
  if (fd < 0 || connections_.find(fd) == connections_.end()) return;
  // A failed send just means the client left; the poll loop reaps the fd.
  (void)SendLine(fd, line);
}

void Coordinator::Log(const char* format, ...) {
  if (GetLogLevel() > LogLevel::kInfo) return;
  char buffer[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  LogMessage(LogLevel::kInfo, std::string("serve: ") + buffer);
}

}  // namespace nvbitfi::service
