// Line-delimited JSON protocol between the campaign coordinator, workers,
// and submit clients.
//
// Every message is one JSON object on one line with a "type" field:
//
//   client → server   hello{role=client}, submit{spec, shards, store},
//                     shutdown
//   worker → server   hello{role=worker}, heartbeat{campaign, begin,
//                     completed}, shard_done{campaign, begin, ok, error}
//   server → worker   assign{campaign, spec, begin, end, store[, indexes]},
//                     shutdown
//   server → client   accepted{campaign}, progress{campaign, completed,
//                     total}, report{campaign, text}, done{campaign, ok,
//                     store, error}, error{error}
//
// A shard is identified by (campaign, begin): ranges within a campaign never
// overlap, so `begin` names a shard uniquely even across reassignment.  For
// adaptive campaigns the coordinator schedules ROUND SLICES instead of index
// ranges: an assign carrying an `indexes` array tells the worker to run
// exactly those pool indexes (begin is then an opaque slice key, unique
// within the campaign, echoed back in heartbeats and shard_done).  The
// campaign spec travels as its serialized text form (campaign_spec.h), which
// both sides parse strictly — a worker can never run a subtly different
// campaign than the one submitted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nvbitfi::service {

struct Message {
  std::string type;
  std::string role;   // hello
  std::string spec;   // submit / assign (serialized CampaignSpec)
  std::string store;  // submit / assign / done (store path)
  std::string text;   // report
  std::string error;  // shard_done / done / error
  std::uint64_t campaign = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t completed = 0;
  std::uint64_t total = 0;
  int shards = 0;  // submit
  bool ok = false;
  // assign (adaptive round slices): explicit pool indexes to run.  Empty
  // means a conventional [begin, end) range assignment.
  std::vector<std::uint64_t> indexes;
};

// nullopt on malformed JSON or a missing/unknown "type".
std::optional<Message> ParseMessage(const std::string& line);

// Builders: one serialized line each (no trailing newline).
std::string HelloLine(const std::string& role);
std::string SubmitLine(const std::string& spec_text, int shards,
                       const std::string& store);
std::string AcceptedLine(std::uint64_t campaign);
std::string AssignLine(std::uint64_t campaign, const std::string& spec_text,
                       std::uint64_t begin, std::uint64_t end,
                       const std::string& store);
// Adaptive round-slice assignment: run exactly `indexes`; `slice` is the
// campaign-unique key echoed back as `begin` in heartbeats/shard_done.
std::string AssignSliceLine(std::uint64_t campaign, const std::string& spec_text,
                            std::uint64_t slice,
                            const std::vector<std::uint64_t>& indexes,
                            const std::string& store);
std::string HeartbeatLine(std::uint64_t campaign, std::uint64_t begin,
                          std::uint64_t completed);
std::string ShardDoneLine(std::uint64_t campaign, std::uint64_t begin, bool ok,
                          const std::string& error);
std::string ProgressLine(std::uint64_t campaign, std::uint64_t completed,
                         std::uint64_t total);
std::string ReportLine(std::uint64_t campaign, const std::string& text);
std::string DoneLine(std::uint64_t campaign, bool ok, const std::string& store,
                     const std::string& error);
std::string ErrorLine(const std::string& error);
std::string ShutdownLine();

}  // namespace nvbitfi::service
