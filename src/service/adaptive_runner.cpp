#include "service/adaptive_runner.h"

#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "analysis/anatomy.h"
#include "common/strings.h"
#include "telemetry/trace_log.h"
#include "trace/taint_tracker.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {
namespace {

// Folds one round's campaign result into the accumulated result.  Rounds
// cover disjoint index sets, so tallies and accounting simply add.
void MergeRoundResult(fi::TransientCampaignResult* merged,
                      fi::TransientCampaignResult&& round, bool first) {
  if (first) {
    *merged = std::move(round);
    if (merged->completed.empty()) {
      merged->completed.assign(merged->injections.size(), 1);
    }
    return;
  }
  for (std::size_t i = 0; i < round.injections.size(); ++i) {
    if (!round.RunCompleted(i) || merged->RunCompleted(i)) continue;
    merged->injections[i] = std::move(round.injections[i]);
    merged->completed[i] = 1;
  }
  merged->counts += round.counts;
  merged->trivially_masked += round.trivially_masked;
  merged->never_activated += round.never_activated;
  merged->statically_pruned += round.statically_pruned;
  merged->statically_checked += round.statically_checked;
  merged->statically_dead += round.statically_dead;
  for (fi::StaticViolation& violation : round.static_violations) {
    merged->static_violations.push_back(std::move(violation));
  }
  merged->wall_seconds += round.wall_seconds;
  merged->phases += round.phases;
  merged->checkpoints_used = merged->checkpoints_used || round.checkpoints_used;
  merged->checkpointed_runs += round.checkpointed_runs;
  merged->replay_launches += round.replay_launches;
  merged->replay_instructions_saved += round.replay_instructions_saved;
  merged->replay_fallbacks += round.replay_fallbacks;
}

std::vector<std::size_t> ToIndexVector(const std::vector<std::uint64_t>& indexes) {
  return std::vector<std::size_t>(indexes.begin(), indexes.end());
}

}  // namespace

adaptive::AdaptivePolicy PolicyFromSpec(const fi::CampaignSpec& spec) {
  adaptive::AdaptivePolicy policy;
  policy.confidence = spec.adaptive_confidence;
  policy.target_half_width = spec.adaptive_target_width;
  policy.round_size = spec.adaptive_round_size;
  policy.min_per_stratum = spec.adaptive_min_per_stratum;
  return policy;
}

std::optional<AdaptiveSetup> BuildAdaptiveSetup(const fi::CampaignSpec& spec,
                                                fi::RunCache* cache,
                                                std::string* error) {
  if (!spec.adaptive) {
    if (error != nullptr) *error = "spec is not an adaptive campaign";
    return std::nullopt;
  }
  const fi::TargetProgram* program = workloads::FindWorkload(spec.program);
  if (program == nullptr) {
    if (error != nullptr) *error = Format("unknown program '%s'", spec.program.c_str());
    return std::nullopt;
  }
  const fi::CampaignRunner runner(*program, cache);
  const fi::TransientCampaignConfig config = spec.ToConfig();

  AdaptiveSetup setup;
  setup.golden = config.checkpoints ? runner.GoldenCheckpointed(config.device).run
                                    : runner.Golden(config.device);
  fi::RunArtifacts profiling_run;
  setup.profile = runner.Profile(config.profiling, config.device, &profiling_run);
  setup.profiling_run_cycles = profiling_run.cycles;
  // Adaptive specs always profile exactly (Parse enforces it), so liveness
  // verdicts are available for stratum keys even with static_mode off.
  if (config.profiling == fi::ProfilerTool::Mode::kExact) {
    setup.static_analysis = std::make_shared<staticanalysis::StaticSiteAnalysis>(
        staticanalysis::StaticSiteAnalysis::ForProgram(*program, config.device));
  }
  const std::vector<fi::TransientDraw> draws =
      fi::PreviewTransientFaults(setup.profile, config, program->name());
  setup.stratification =
      adaptive::StratifyPool(setup.profile, draws, setup.static_analysis.get());
  setup.policy = PolicyFromSpec(spec);

  setup.meta = analysis::TransientStoreMeta(program->name(), config, setup.golden,
                                            setup.profiling_run_cycles, setup.profile);
  setup.meta.element = analysis::ElementKindFromName(spec.element)
                           .value_or(analysis::ElementKind::kF32);
  // Canonical adaptive header: the worker count never shapes the schedule or
  // the records, so it is pinned — resumed, re-parallelised, and merged
  // adaptive stores stay byte-identical.
  setup.meta.workers = 1;
  setup.meta.adaptive = true;
  setup.meta.policy = setup.policy;
  setup.meta.strata = setup.stratification.labels;
  return setup;
}

AdaptiveOutcome RunAdaptiveJob(const AdaptiveJob& job, fi::RunCache* cache) {
  AdaptiveOutcome outcome;
  // Each round re-enters the campaign runner; a cache keeps golden/profile
  // at one computation per process even if the caller did not pass one.
  fi::RunCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  std::string error;
  std::optional<AdaptiveSetup> setup = BuildAdaptiveSetup(job.spec, cache, &error);
  if (!setup.has_value()) {
    outcome.error = error;
    return outcome;
  }
  const fi::TargetProgram* program = workloads::FindWorkload(job.spec.program);
  const fi::CampaignRunner runner(*program, cache);
  outcome.policy = setup->policy;
  outcome.pool = static_cast<std::uint64_t>(job.spec.num_injections);

  fi::TransientCampaignConfig config = job.spec.ToConfig();
  config.num_workers = job.workers;
  config.cancel = job.cancel;
  if (config.trace) {
    config.tool_factory = [](std::size_t, const fi::TransientFaultParams& params) {
      return std::make_unique<trace::TaintTracker>(params);
    };
  }
  if (config.static_mode != fi::StaticSiteMode::kOff) {
    config.static_oracle = setup->static_analysis.get();
  }

  analysis::AnatomyConfig anatomy_config;
  anatomy_config.element = setup->meta.element;

  adaptive::AdaptiveEngine engine(setup->stratification, setup->policy);

  std::unique_ptr<analysis::ResultStore> store;
  analysis::StoreMeta meta = setup->meta;
  if (!job.store_path.empty()) {
    store = analysis::ResultStore::Open(job.store_path, setup->meta, job.resume, &error);
    if (store == nullptr) {
      outcome.error = error;
      return outcome;
    }
    // A resumed store's header carries the schedule planned so far; a fresh
    // store's carries none.  Either way the header becomes the working meta,
    // so FinalizeMeta below only ever extends the round list.
    meta = store->loaded().meta;
    if (meta.strata != setup->stratification.labels) {
      outcome.error = "existing store's strata do not match this campaign's "
                      "stratification";
      return outcome;
    }
    outcome.resumed_records = store->loaded().transient.size();
  }

  // Persistence hooks: adaptive records always carry their own replay stats
  // (like shard records), so the header never needs summed accounting and
  // the final bytes cannot depend on how execution was interrupted.
  std::mutex replay_mu;
  std::map<std::size_t, sim::ReplayStats> pending_replay;
  std::atomic<std::size_t> progressed{outcome.resumed_records};
  if (store != nullptr) {
    config.on_run_replay = [&](std::size_t i, const sim::ReplayStats* replay) {
      if (replay == nullptr) return;
      std::lock_guard<std::mutex> lock(replay_mu);
      pending_replay[i] = *replay;
    };
    config.on_run_complete = [&](std::size_t i, const fi::InjectionRun& run) {
      std::optional<sim::ReplayStats> replay;
      {
        std::lock_guard<std::mutex> lock(replay_mu);
        const auto it = pending_replay.find(i);
        if (it != pending_replay.end()) {
          replay = it->second;
          pending_replay.erase(it);
        }
      }
      std::optional<analysis::SdcAnatomy> anatomy;
      if (!run.trivially_masked && run.classification.outcome == fi::Outcome::kSdc) {
        anatomy = analysis::AnalyzeSdc(setup->golden, run.artifacts, anatomy_config);
      }
      store->AppendTransient(i, run, anatomy.has_value() ? &*anatomy : nullptr,
                             replay.has_value() ? &*replay : nullptr);
      if (job.on_progress) {
        job.on_progress(progressed.fetch_add(1, std::memory_order_relaxed) + 1,
                        static_cast<std::size_t>(engine.total_scheduled()));
      }
    };
  } else if (job.on_progress) {
    config.on_run_complete = [&](std::size_t i, const fi::InjectionRun& run) {
      (void)i;
      (void)run;
      job.on_progress(progressed.fetch_add(1, std::memory_order_relaxed) + 1,
                      static_cast<std::size_t>(engine.total_scheduled()));
    };
  }

  bool have_result = false;
  const auto run_indexes = [&](const std::vector<std::size_t>& indexes) -> bool {
    config.index_set = &indexes;
    config.preloaded = store != nullptr ? &store->loaded().transient : nullptr;
    fi::TransientCampaignResult result = runner.RunTransientCampaign(config);
    const bool cancelled = result.cancelled;
    for (const std::size_t i : indexes) {
      if (result.RunCompleted(i)) {
        engine.Observe(static_cast<std::uint64_t>(i),
                       result.injections[i].classification);
      }
    }
    MergeRoundResult(&outcome.result, std::move(result), !have_result);
    have_result = true;
    return !cancelled;
  };

  // Resume: adopt the persisted schedule verbatim, then run whatever of it
  // is missing from the store.  Re-planning instead would only coincidentally
  // reproduce the same rounds; adoption makes the replay exact by
  // construction.
  if (!meta.rounds.empty()) {
    std::vector<std::size_t> scheduled;
    for (const adaptive::RoundRecord& round : meta.rounds) {
      if (!engine.AdoptRound(round, &error)) {
        outcome.error = Format("persisted schedule is inconsistent: %s", error.c_str());
        return outcome;
      }
      const std::vector<std::size_t> indexes = ToIndexVector(round.indexes);
      scheduled.insert(scheduled.end(), indexes.begin(), indexes.end());
    }
    if (!run_indexes(scheduled)) {
      outcome.cancelled = true;
      outcome.rounds = meta.rounds.size();
      outcome.scheduled = engine.total_scheduled();
      return outcome;
    }
  }

  while (job.cancel == nullptr || !job.cancel->load(std::memory_order_relaxed)) {
    const adaptive::RoundRecord round = engine.PlanRound();
    if (round.indexes.empty()) break;
    if (telemetry::TraceLog* log = telemetry::TraceLog::Global(); log != nullptr) {
      log->AppendInstant(
          "adaptive-round",
          {{"program", job.spec.program},
           {"round", Format("%zu", meta.rounds.size() + 1)},
           {"scheduled", Format("%zu", round.indexes.size())}});
    }
    meta.rounds.push_back(round);
    // The schedule hits disk BEFORE the round executes: a crash mid-round
    // resumes by adopting this exact round, never by re-planning it.
    if (store != nullptr) store->FinalizeMeta(meta);
    if (!run_indexes(ToIndexVector(round.indexes))) {
      outcome.cancelled = true;
      outcome.rounds = meta.rounds.size();
      outcome.scheduled = engine.total_scheduled();
      return outcome;
    }
  }
  if (job.cancel != nullptr && job.cancel->load(std::memory_order_relaxed)) {
    outcome.cancelled = true;
    outcome.rounds = meta.rounds.size();
    outcome.scheduled = engine.total_scheduled();
    return outcome;
  }

  // Final rewrite: same header, records now sorted by index — the canonical
  // byte form shared by resumed, re-parallelised, and merged stores.
  if (store != nullptr) store->FinalizeMeta(meta);

  outcome.ok = true;
  outcome.rounds = meta.rounds.size();
  outcome.scheduled = engine.total_scheduled();
  outcome.result.program = program->name();
  outcome.result.workers = job.workers;
  outcome.strata = adaptive::EngineRows(engine);
  outcome.summary = adaptive::AdaptiveSummary(engine);
  return outcome;
}

AdaptiveSliceOutcome RunAdaptiveSlice(const AdaptiveSliceJob& job,
                                      fi::RunCache* cache) {
  AdaptiveSliceOutcome outcome;
  std::string error;
  std::optional<AdaptiveSetup> setup = BuildAdaptiveSetup(job.spec, cache, &error);
  if (!setup.has_value()) {
    outcome.error = error;
    return outcome;
  }
  const fi::TargetProgram* program = workloads::FindWorkload(job.spec.program);
  const fi::CampaignRunner runner(*program, cache);

  fi::TransientCampaignConfig config = job.spec.ToConfig();
  config.num_workers = job.workers;
  config.cancel = job.cancel;
  if (config.trace) {
    config.tool_factory = [](std::size_t, const fi::TransientFaultParams& params) {
      return std::make_unique<trace::TaintTracker>(params);
    };
  }
  if (config.static_mode != fi::StaticSiteMode::kOff) {
    config.static_oracle = setup->static_analysis.get();
  }

  analysis::AnatomyConfig anatomy_config;
  anatomy_config.element = setup->meta.element;

  // A slice store is always resumable: a slice reassigned after a worker
  // death continues from the records the dead worker flushed.
  std::unique_ptr<analysis::ResultStore> store =
      analysis::ResultStore::Open(job.store_path, setup->meta, /*resume=*/true, &error);
  if (store == nullptr) {
    outcome.error = error;
    return outcome;
  }
  config.preloaded = &store->loaded().transient;

  std::mutex replay_mu;
  std::map<std::size_t, sim::ReplayStats> pending_replay;
  std::atomic<std::size_t> progressed{0};
  for (const std::size_t i : job.indexes) {
    if (store->loaded().transient.count(i) != 0) {
      progressed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  config.on_run_replay = [&](std::size_t i, const sim::ReplayStats* replay) {
    if (replay == nullptr) return;
    std::lock_guard<std::mutex> lock(replay_mu);
    pending_replay[i] = *replay;
  };
  config.on_run_complete = [&](std::size_t i, const fi::InjectionRun& run) {
    std::optional<sim::ReplayStats> replay;
    {
      std::lock_guard<std::mutex> lock(replay_mu);
      const auto it = pending_replay.find(i);
      if (it != pending_replay.end()) {
        replay = it->second;
        pending_replay.erase(it);
      }
    }
    std::optional<analysis::SdcAnatomy> anatomy;
    if (!run.trivially_masked && run.classification.outcome == fi::Outcome::kSdc) {
      anatomy = analysis::AnalyzeSdc(setup->golden, run.artifacts, anatomy_config);
    }
    store->AppendTransient(i, run, anatomy.has_value() ? &*anatomy : nullptr,
                           replay.has_value() ? &*replay : nullptr);
    if (job.on_progress) {
      job.on_progress(progressed.fetch_add(1, std::memory_order_relaxed) + 1,
                      job.indexes.size());
    }
  };

  config.index_set = &job.indexes;
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);
  outcome.cancelled = result.cancelled;
  outcome.ok = !outcome.cancelled;
  return outcome;
}

}  // namespace nvbitfi::service
