#include "service/shard_runner.h"

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "analysis/anatomy.h"
#include "analysis/result_store.h"
#include "common/strings.h"
#include "staticanalysis/static_site.h"
#include "telemetry/trace_log.h"
#include "trace/taint_tracker.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {

ShardOutcome RunShardJob(const ShardJob& job, fi::RunCache* cache) {
  ShardOutcome outcome;
  const fi::TargetProgram* program = workloads::FindWorkload(job.spec.program);
  if (program == nullptr) {
    outcome.error = Format("unknown program '%s'", job.spec.program.c_str());
    return outcome;
  }

  const fi::CampaignRunner runner(*program, cache);
  fi::TransientCampaignConfig config = job.spec.ToConfig();
  config.num_workers = job.workers;
  config.index_begin = job.begin;
  config.index_end = job.end;
  config.cancel = job.cancel;
  if (config.trace) {
    config.tool_factory = [](std::size_t, const fi::TransientFaultParams& params) {
      return std::make_unique<trace::TaintTracker>(params);
    };
  }
  std::optional<staticanalysis::StaticSiteAnalysis> static_analysis;
  if (config.static_mode != fi::StaticSiteMode::kOff) {
    static_analysis.emplace(
        staticanalysis::StaticSiteAnalysis::ForProgram(*program, config.device));
    config.static_oracle = &*static_analysis;
  }

  const std::size_t n =
      config.num_injections > 0 ? static_cast<std::size_t>(config.num_injections) : 0;
  const std::size_t range_begin = std::min(job.begin, n);
  const std::size_t range_end = job.end == 0 ? n : std::min(job.end, n);
  const std::size_t range_size = range_end > range_begin ? range_end - range_begin : 0;

  if (telemetry::TraceLog* log = telemetry::TraceLog::Global(); log != nullptr) {
    log->AppendInstant("shard", {{"program", job.spec.program},
                                 {"begin", Format("%zu", range_begin)},
                                 {"end", Format("%zu", range_end)}});
  }

  analysis::AnatomyConfig anatomy_config;
  anatomy_config.element =
      analysis::ElementKindFromName(job.spec.element).value_or(analysis::ElementKind::kF32);

  // Replay stats arrive via on_run_replay just before on_run_complete on the
  // same worker thread; this map carries them across the two callbacks so a
  // shard record and its stats are written as one atomic line.
  std::mutex replay_mu;
  std::map<std::size_t, sim::ReplayStats> pending_replay;
  std::atomic<std::size_t> progressed{0};

  std::unique_ptr<analysis::ResultStore> store;
  fi::RunArtifacts golden;
  if (!job.store_path.empty()) {
    golden = config.checkpoints ? runner.GoldenCheckpointed(config.device).run
                                : runner.Golden(config.device);
    fi::RunArtifacts profiling_run;
    const fi::ProgramProfile profile =
        runner.Profile(config.profiling, config.device, &profiling_run);
    analysis::StoreMeta meta = analysis::TransientStoreMeta(
        program->name(), config, golden, profiling_run.cycles, profile);
    meta.element = anatomy_config.element;
    if (job.shard_records && job.end > 0) {
      meta.shard_begin = job.begin;
      meta.shard_end = job.end;
    }
    std::string error;
    store = analysis::ResultStore::Open(job.store_path, meta, job.resume, &error);
    if (store == nullptr) {
      outcome.error = error;
      return outcome;
    }
    config.preloaded = &store->loaded().transient;
    outcome.resumed_records = store->loaded().transient.size();
    progressed.store(outcome.resumed_records, std::memory_order_relaxed);

    if (job.shard_records) {
      config.on_run_replay = [&](std::size_t i, const sim::ReplayStats* replay) {
        if (replay == nullptr) return;
        std::lock_guard<std::mutex> lock(replay_mu);
        pending_replay[i] = *replay;
      };
    }
    config.on_run_complete = [&](std::size_t i, const fi::InjectionRun& run) {
      std::optional<sim::ReplayStats> replay;
      if (job.shard_records) {
        std::lock_guard<std::mutex> lock(replay_mu);
        const auto it = pending_replay.find(i);
        if (it != pending_replay.end()) {
          replay = it->second;
          pending_replay.erase(it);
        }
      }
      std::optional<analysis::SdcAnatomy> anatomy;
      if (!run.trivially_masked && run.classification.outcome == fi::Outcome::kSdc) {
        anatomy = analysis::AnalyzeSdc(golden, run.artifacts, anatomy_config);
      }
      store->AppendTransient(i, run, anatomy.has_value() ? &*anatomy : nullptr,
                             replay.has_value() ? &*replay : nullptr);
      if (job.on_progress) {
        job.on_progress(progressed.fetch_add(1, std::memory_order_relaxed) + 1,
                        range_size);
      }
    };
  } else if (job.on_progress) {
    config.on_run_complete = [&](std::size_t i, const fi::InjectionRun& run) {
      (void)i;
      (void)run;
      job.on_progress(progressed.fetch_add(1, std::memory_order_relaxed) + 1,
                      range_size);
    };
  }

  outcome.result = runner.RunTransientCampaign(config);
  outcome.cancelled = outcome.result.cancelled;
  outcome.ok = !outcome.cancelled;

  if (store != nullptr && job.finalize && !outcome.cancelled &&
      outcome.result.CompletedRuns() == outcome.result.injections.size()) {
    analysis::StoreMeta meta = store->loaded().meta;
    meta.replay_accounting = true;
    meta.checkpointed_runs = outcome.result.checkpointed_runs;
    meta.replay_launches = outcome.result.replay_launches;
    meta.replay_instructions_saved = outcome.result.replay_instructions_saved;
    meta.replay_fallbacks = outcome.result.replay_fallbacks;
    store->FinalizeMeta(meta);
  }
  return outcome;
}

}  // namespace nvbitfi::service
