// Adaptive-campaign execution (src/adaptive/ wired into the service layer).
//
// An adaptive campaign treats the spec's num_injections as a POOL: the
// engine stratifies it (kernel / opcode group / static liveness), then runs
// experiments in rounds, steering each round's budget toward the strata with
// the widest Wilson intervals until every stratum converges or exhausts.
//
// Two entry points share one setup path:
//
//   RunAdaptiveJob    — the whole campaign in this process (`nvbitfi
//                       campaign --adaptive`).  Rounds are persisted in the
//                       store header BEFORE they execute, so a killed
//                       campaign resumed with --resume adopts the recorded
//                       schedule verbatim and completes bit-identically.
//   RunAdaptiveSlice  — one round's index slice in a fleet worker (`nvbitfi
//                       serve` plans rounds centrally and deals out slices).
//                       Slice stores carry per-record replay stats and the
//                       campaign's stratification, but no schedule — the
//                       coordinator owns that and writes it into the merged
//                       store.
//
// Adaptive stores are canonicalised for byte-identity: header workers is
// always 1, records always carry their own replay stats, and the header
// never carries summed replay accounting — so resume, worker count, and
// sharded-vs-local execution all produce the same final bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/engine.h"
#include "adaptive/report.h"
#include "analysis/result_store.h"
#include "core/campaign.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "staticanalysis/static_site.h"

namespace nvbitfi::service {

// The deterministic pre-round state every adaptive participant derives
// independently from the spec: golden + profile, the previewed draw pool,
// its stratification, and the canonical store header.  Coordinator and
// workers each build one and agree on stratum ids by construction.
struct AdaptiveSetup {
  fi::RunArtifacts golden;
  std::uint64_t profiling_run_cycles = 0;
  fi::ProgramProfile profile;
  // Built whenever profiling is exact (adaptive requires it) so strata can
  // key on liveness verdicts even when static_mode is off.
  std::shared_ptr<staticanalysis::StaticSiteAnalysis> static_analysis;
  adaptive::Stratification stratification;
  adaptive::AdaptivePolicy policy;
  // Canonical adaptive header: workers=1, strata labels, empty schedule.
  analysis::StoreMeta meta;
};

adaptive::AdaptivePolicy PolicyFromSpec(const fi::CampaignSpec& spec);

// Derives the setup for `spec` (which must have spec.adaptive).  Runs the
// golden + profiling steps through `cache`.  nullopt + *error on an unknown
// program or a non-adaptive spec.
std::optional<AdaptiveSetup> BuildAdaptiveSetup(const fi::CampaignSpec& spec,
                                                fi::RunCache* cache,
                                                std::string* error);

struct AdaptiveJob {
  fi::CampaignSpec spec;   // spec.adaptive must be set
  std::string store_path;  // empty: in-memory only (benches)
  int workers = 1;
  bool resume = true;
  const std::atomic<bool>* cancel = nullptr;
  // Invoked after every newly completed experiment with the number completed
  // and scheduled so far (both grow as rounds are planned).
  std::function<void(std::size_t completed, std::size_t scheduled)> on_progress;
};

struct AdaptiveOutcome {
  bool ok = false;
  bool cancelled = false;
  std::string error;
  std::size_t resumed_records = 0;  // records adopted from an existing store
  std::size_t rounds = 0;           // rounds in the final schedule
  std::uint64_t scheduled = 0;      // experiments scheduled across all rounds
  std::uint64_t pool = 0;           // spec.num_injections
  adaptive::AdaptivePolicy policy;
  // Merged over every round (and resumed records): exactly the runs the
  // schedule covers; untouched pool indexes are incomplete slots.
  fi::TransientCampaignResult result;
  std::vector<adaptive::StratumRow> strata;  // final per-stratum state
  std::string summary;                       // round-accounting line
};

AdaptiveOutcome RunAdaptiveJob(const AdaptiveJob& job, fi::RunCache* cache);

// One round slice for a fleet worker: run exactly `indexes` into a slice
// store at `store_path` (resumable — a reassigned slice continues where the
// dead worker stopped).  The coordinator merges slice stores and owns the
// schedule.
struct AdaptiveSliceJob {
  fi::CampaignSpec spec;
  std::vector<std::size_t> indexes;
  std::string store_path;
  int workers = 1;
  const std::atomic<bool>* cancel = nullptr;
  std::function<void(std::size_t completed, std::size_t total)> on_progress;
};

struct AdaptiveSliceOutcome {
  bool ok = false;
  bool cancelled = false;
  std::string error;
};

AdaptiveSliceOutcome RunAdaptiveSlice(const AdaptiveSliceJob& job,
                                      fi::RunCache* cache);

}  // namespace nvbitfi::service
