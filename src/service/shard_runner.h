// Campaign execution shared by `nvbitfi campaign`, `nvbitfi shard`, and the
// fleet workers.
//
// A ShardJob is one CampaignSpec plus an index range and store policy.  The
// runner rebuilds exactly what the CLI's campaign command builds — tool
// factory for traced campaigns, static-site oracle, golden + profile through
// the shared RunCache, JSONL persistence with SDC anatomy — so a shard
// executed by a fleet worker produces records bit-identical to the same
// indexes of an unsharded `nvbitfi campaign` run.
//
// Shard stores (`shard_records`) additionally carry shard provenance in the
// header and per-record checkpoint-replay stats, which survive crash/resume
// verbatim and let the merger reconstruct the canonical header's replay
// accounting.  Canonical stores instead persist accounting via a
// FinalizeMeta header rewrite at completion (`finalize`), keeping record
// bytes identical to an uncheckpointed campaign's.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "core/campaign.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"

namespace nvbitfi::service {

struct ShardJob {
  fi::CampaignSpec spec;
  // Half-open experiment range; 0/0 runs the full campaign.
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string store_path;  // empty: in-memory only (no persistence)
  int workers = 1;         // in-process campaign workers
  bool resume = true;      // adopt a compatible existing store's records
  bool shard_records = false;  // shard store: provenance + per-record replay
  bool finalize = false;       // persist replay accounting on completion
  const std::atomic<bool>* cancel = nullptr;
  // Invoked after every newly completed experiment (possibly from several
  // worker threads at once) with the number completed so far in the range,
  // including resumed records, and the range size.
  std::function<void(std::size_t completed, std::size_t total)> on_progress;
};

struct ShardOutcome {
  bool ok = false;
  bool cancelled = false;
  std::string error;
  std::size_t resumed_records = 0;  // records adopted from an existing store
  fi::TransientCampaignResult result;
};

ShardOutcome RunShardJob(const ShardJob& job, fi::RunCache* cache);

}  // namespace nvbitfi::service
