// Fleet worker loop: executes assigned shards over a coordinator connection.
//
// Used from two places with the same semantics: `nvbitfi shard --connect`
// wraps it around a dialed socket (own process, own RunCache), and
// `nvbitfi serve` runs it on threads over socketpairs (shared process-wide
// RunCache — the multi-tenant golden/checkpoint pool).
//
// The worker sends a heartbeat after every completed experiment.  When a
// heartbeat can no longer be delivered — the coordinator died, or it kicked
// this worker after a heartbeat timeout and reassigned the shard — the
// worker cancels its shard immediately rather than keep appending to a
// store another worker may now own.
#pragma once

#include "core/run_cache.h"

namespace nvbitfi::service {

struct WorkerOptions {
  int shard_workers = 1;  // in-process campaign workers per shard
  bool verbose = false;   // promote the log level to info (see common/log.h)
};

// Speaks the worker side of the protocol on `fd` until the coordinator
// sends shutdown or closes the connection.  Closes `fd` before returning.
// Returns 0 on a clean shutdown, 1 when the transport died mid-shard.
int WorkerLoop(int fd, fi::RunCache* cache, const WorkerOptions& options);

}  // namespace nvbitfi::service
