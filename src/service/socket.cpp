#include "service/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace nvbitfi::service {
namespace {

bool FillAddress(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = Format("socket path too long (%zu bytes): %s", path.size(),
                      path.c_str());
    }
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

int ListenUnix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (!FillAddress(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Format("socket: %s", std::strerror(errno));
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = Format("cannot listen on '%s': %s", path.c_str(),
                      std::strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (!FillAddress(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Format("socket: %s", std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = Format("cannot connect to '%s': %s", path.c_str(),
                      std::strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SocketPair(int fds[2], std::string* error) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    if (error != nullptr) *error = Format("socketpair: %s", std::strerror(errno));
    return false;
  }
  return true;
}

bool SendRaw(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) { return SendRaw(fd, line + '\n'); }

std::optional<std::string> LineBuffer::PopLine() {
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return line;
}

}  // namespace nvbitfi::service
