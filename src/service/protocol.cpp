#include "service/protocol.h"

#include "analysis/json.h"

namespace nvbitfi::service {
namespace {

using analysis::json::Value;

Value Base(const char* type) {
  Value out = Value::Object();
  out.Set("type", type);
  return out;
}

bool KnownType(const std::string& type) {
  return type == "hello" || type == "submit" || type == "accepted" ||
         type == "assign" || type == "heartbeat" || type == "shard_done" ||
         type == "progress" || type == "report" || type == "done" ||
         type == "error" || type == "shutdown";
}

}  // namespace

std::optional<Message> ParseMessage(const std::string& line) {
  const std::optional<Value> value = Value::Parse(line);
  if (!value.has_value() || !value->is_object()) return std::nullopt;
  Message message;
  message.type = value->GetString("type");
  if (!KnownType(message.type)) return std::nullopt;
  message.role = value->GetString("role");
  message.spec = value->GetString("spec");
  message.store = value->GetString("store");
  message.text = value->GetString("text");
  message.error = value->GetString("error");
  message.campaign = value->GetUint("campaign");
  message.begin = value->GetUint("begin");
  message.end = value->GetUint("end");
  message.completed = value->GetUint("completed");
  message.total = value->GetUint("total");
  message.shards = static_cast<int>(value->GetInt("shards"));
  message.ok = value->GetBool("ok");
  const Value* indexes = value->Find("indexes");
  if (indexes != nullptr && indexes->is_array()) {
    message.indexes.reserve(indexes->size());
    for (std::size_t i = 0; i < indexes->size(); ++i) {
      message.indexes.push_back(indexes->at(i).AsUint());
    }
  }
  return message;
}

std::string HelloLine(const std::string& role) {
  Value out = Base("hello");
  out.Set("role", role);
  return out.Dump();
}

std::string SubmitLine(const std::string& spec_text, int shards,
                       const std::string& store) {
  Value out = Base("submit");
  out.Set("spec", spec_text);
  out.Set("shards", shards);
  if (!store.empty()) out.Set("store", store);
  return out.Dump();
}

std::string AcceptedLine(std::uint64_t campaign) {
  Value out = Base("accepted");
  out.Set("campaign", campaign);
  return out.Dump();
}

std::string AssignLine(std::uint64_t campaign, const std::string& spec_text,
                       std::uint64_t begin, std::uint64_t end,
                       const std::string& store) {
  Value out = Base("assign");
  out.Set("campaign", campaign);
  out.Set("spec", spec_text);
  out.Set("begin", begin);
  out.Set("end", end);
  out.Set("store", store);
  return out.Dump();
}

std::string AssignSliceLine(std::uint64_t campaign, const std::string& spec_text,
                            std::uint64_t slice,
                            const std::vector<std::uint64_t>& indexes,
                            const std::string& store) {
  Value out = Base("assign");
  out.Set("campaign", campaign);
  out.Set("spec", spec_text);
  out.Set("begin", slice);
  out.Set("end", slice);
  out.Set("store", store);
  Value array = Value::Array();
  for (const std::uint64_t index : indexes) array.Push(index);
  out.Set("indexes", std::move(array));
  return out.Dump();
}

std::string HeartbeatLine(std::uint64_t campaign, std::uint64_t begin,
                          std::uint64_t completed) {
  Value out = Base("heartbeat");
  out.Set("campaign", campaign);
  out.Set("begin", begin);
  out.Set("completed", completed);
  return out.Dump();
}

std::string ShardDoneLine(std::uint64_t campaign, std::uint64_t begin, bool ok,
                          const std::string& error) {
  Value out = Base("shard_done");
  out.Set("campaign", campaign);
  out.Set("begin", begin);
  out.Set("ok", ok);
  if (!error.empty()) out.Set("error", error);
  return out.Dump();
}

std::string ProgressLine(std::uint64_t campaign, std::uint64_t completed,
                         std::uint64_t total) {
  Value out = Base("progress");
  out.Set("campaign", campaign);
  out.Set("completed", completed);
  out.Set("total", total);
  return out.Dump();
}

std::string ReportLine(std::uint64_t campaign, const std::string& text) {
  Value out = Base("report");
  out.Set("campaign", campaign);
  out.Set("text", text);
  return out.Dump();
}

std::string DoneLine(std::uint64_t campaign, bool ok, const std::string& store,
                     const std::string& error) {
  Value out = Base("done");
  out.Set("campaign", campaign);
  out.Set("ok", ok);
  if (!store.empty()) out.Set("store", store);
  if (!error.empty()) out.Set("error", error);
  return out.Dump();
}

std::string ErrorLine(const std::string& error) {
  Value out = Base("error");
  out.Set("error", error);
  return out.Dump();
}

std::string ShutdownLine() { return Base("shutdown").Dump(); }

}  // namespace nvbitfi::service
