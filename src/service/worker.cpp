#include "service/worker.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/log.h"
#include "service/adaptive_runner.h"
#include "service/protocol.h"
#include "service/shard_runner.h"
#include "service/socket.h"

namespace nvbitfi::service {

int WorkerLoop(int fd, fi::RunCache* cache, const WorkerOptions& options) {
  // Same contract as the coordinator: --verbose promotes the shared log
  // level, NVBITFI_LOG overrides both ways.
  if (options.verbose && GetLogLevel() > LogLevel::kInfo) {
    SetLogLevel(LogLevel::kInfo);
  }
  SendLine(fd, HelloLine("worker"));

  LineBuffer buffer;
  char chunk[4096];
  bool transport_died = false;
  bool done = false;
  while (!done) {
    std::optional<std::string> line = buffer.PopLine();
    if (!line.has_value()) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;  // coordinator gone
      buffer.Append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::optional<Message> message = ParseMessage(*line);
    if (!message.has_value()) continue;  // tolerate unknown traffic
    if (message->type == "shutdown") {
      done = true;
      continue;
    }
    if (message->type != "assign") continue;

    const std::optional<fi::CampaignSpec> spec = fi::CampaignSpec::Parse(message->spec);
    if (!spec.has_value()) {
      SendLine(fd, ShardDoneLine(message->campaign, message->begin, false,
                                 "worker cannot parse campaign spec"));
      continue;
    }
    const bool slice = !message->indexes.empty();
    if (slice) {
      LOG_INFO << "worker: campaign " << message->campaign << " slice "
               << message->begin << " (" << message->indexes.size()
               << " indexes) -> " << message->store;
    } else {
      LOG_INFO << "worker: campaign " << message->campaign << " shard ["
               << message->begin << ", " << message->end << ") -> "
               << message->store;
    }

    // Heartbeat per completed experiment; an undeliverable heartbeat means
    // the coordinator kicked us (or died) and the shard may already be
    // running elsewhere — stop appending to its store at once.
    std::atomic<bool> cancel{false};
    std::mutex send_mu;
    const std::uint64_t campaign = message->campaign;
    const std::uint64_t begin = message->begin;
    const auto heartbeat = [&](std::size_t completed, std::size_t total) {
      (void)total;
      std::lock_guard<std::mutex> lock(send_mu);
      if (!SendLine(fd, HeartbeatLine(campaign, begin, completed))) {
        cancel.store(true, std::memory_order_relaxed);
      }
    };

    bool ok = false;
    std::string error;
    if (slice) {
      AdaptiveSliceJob job;
      job.spec = *spec;
      job.indexes.assign(message->indexes.begin(), message->indexes.end());
      job.store_path = message->store;
      job.workers = options.shard_workers;
      job.cancel = &cancel;
      job.on_progress = heartbeat;
      const AdaptiveSliceOutcome outcome = RunAdaptiveSlice(job, cache);
      ok = outcome.ok && !outcome.cancelled;
      error = outcome.error;
    } else {
      ShardJob job;
      job.spec = *spec;
      job.begin = message->begin;
      job.end = message->end;
      job.store_path = message->store;
      job.workers = options.shard_workers;
      job.resume = true;  // reassigned shards continue where the dead worker left off
      job.shard_records = true;
      job.cancel = &cancel;
      job.on_progress = heartbeat;
      const ShardOutcome outcome = RunShardJob(job, cache);
      ok = outcome.ok && !outcome.cancelled;
      error = outcome.error;
    }
    if (cancel.load(std::memory_order_relaxed)) {
      transport_died = true;
      break;  // connection is dead; don't bother with shard_done
    }
    if (!SendLine(fd, ShardDoneLine(campaign, begin, ok, error))) {
      transport_died = true;
      break;
    }
  }
  ::close(fd);
  return transport_died ? 1 : 0;
}

}  // namespace nvbitfi::service
