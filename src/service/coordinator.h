// Campaign service coordinator: sharded, resumable, multi-tenant fleet
// execution.
//
// `nvbitfi serve` runs one Coordinator: a single-threaded poll loop over a
// unix listening socket.  Clients submit campaign specs; the coordinator
// splits each into contiguous index-range shards (PlanShards), dispatches
// them to whichever workers are idle — in-process worker threads it spawned
// itself and/or external `nvbitfi shard --connect` processes — and tracks
// per-shard heartbeats.  A worker that disconnects or goes silent past the
// heartbeat timeout forfeits its shard: the shard goes back in the queue and
// the next idle worker RESUMES it from its crash-safe store, re-running only
// the missing indexes.  When every shard of a campaign is done the
// coordinator merges the shard stores into one canonical store
// (bit-identical to an unsharded run, see analysis/merge.h), streams the
// report to the submitting client, and deletes nothing — shard stores stay
// on disk for audit.
//
// Multi-tenancy: concurrent campaigns interleave freely over the same worker
// pool, and in-process workers share the coordinator's RunCache, so the
// golden runs, profiles, and golden checkpoint streams of a program are
// computed once per process no matter how many tenants campaign against it.
//
// Adaptive campaigns (spec.adaptive) are scheduled in ROUNDS instead of one
// fixed shard split: the coordinator stratifies the pool, plans each round
// with the adaptive engine, deals the round's indexes out as slices, and
// feeds the slice outcomes back before planning the next round.  The final
// merge stitches every slice into one canonical adaptive store carrying the
// full schedule — byte-identical to a single-process `--adaptive` run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/engine.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/adaptive_runner.h"
#include "service/protocol.h"
#include "service/socket.h"

namespace nvbitfi::service {

struct CoordinatorOptions {
  std::string socket_path;
  std::string workdir = ".";   // shard + merged store files land here
  int inprocess_workers = 1;   // worker threads spawned by the coordinator
  int shard_workers = 1;       // in-process campaign workers per shard
  double heartbeat_timeout = 60.0;  // seconds of silence before reassignment
  // Exit after this many campaigns complete (0 = run until shutdown/stop).
  int max_campaigns = 0;
  bool verbose = false;  // promote the log level to info (see common/log.h)
};

class Coordinator {
 public:
  Coordinator(CoordinatorOptions options, fi::RunCache* cache);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Binds the socket and spawns the in-process workers.
  bool Start(std::string* error);

  // Runs the poll loop until shutdown is requested (shutdown message,
  // RequestStop, or max_campaigns reached).  Returns 0 on clean shutdown.
  int Serve();

  // Async-signal-safe stop request; Serve returns at the next poll tick.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::string store;
    enum class State { kPending, kRunning, kDone } state = State::kPending;
    int worker_fd = -1;
    std::uint64_t completed = 0;
    int attempts = 0;  // assignments, counting reassignments after failures
    // Adaptive round slice: the explicit pool indexes to run.  `begin` is
    // then a campaign-unique slice key (end == begin) rather than a range.
    bool slice = false;
    std::vector<std::uint64_t> indexes;

    std::uint64_t size() const {
      return slice ? indexes.size() : static_cast<std::uint64_t>(end - begin);
    }
  };
  struct Campaign {
    std::uint64_t id = 0;
    std::string spec_text;
    fi::CampaignSpec spec;
    std::vector<Shard> shards;
    int client_fd = -1;
    std::string out_store;
    // Adaptive campaigns: the coordinator owns the engine and plans rounds
    // centrally; workers only ever see index slices.  `shards` accumulates
    // every round's slices (finished rounds stay kDone); the current round's
    // slices start at `round_first_shard`.
    bool adaptive = false;
    std::shared_ptr<AdaptiveSetup> setup;
    std::shared_ptr<adaptive::AdaptiveEngine> engine;
    std::vector<adaptive::RoundRecord> rounds;
    std::vector<std::string> slice_paths;  // across all rounds, merge order
    std::size_t round_first_shard = 0;
    std::uint64_t next_slice = 0;  // slice-key allocator
    int requested_shards = 1;
  };
  struct Connection {
    enum class Role { kUnknown, kWorker, kClient } role = Role::kUnknown;
    LineBuffer buffer;
    bool busy = false;
    std::uint64_t campaign = 0;
    std::size_t shard_begin = 0;
    double deadline_base = 0.0;  // last heartbeat (or assignment) time
  };

  void HandleLine(int fd, const std::string& line);
  // Plain HTTP/1.0 on the same socket: `GET /status` (JSON) and
  // `GET /metrics` (Prometheus text).  One-shot — respond and disconnect.
  void HandleHttpGet(int fd, const std::string& request_line);
  std::string StatusJson() const;
  std::string MetricsText() const;
  void HandleSubmit(int fd, const Message& message);
  void HandleHeartbeat(int fd, const Message& message);
  void HandleShardDone(int fd, const Message& message);
  void Disconnect(int fd);
  void RequeueAssignment(int fd);
  void ScheduleShards();
  void CheckHeartbeats();
  void SendProgress(const Campaign& campaign);
  // Plans the engine's next round and queues its slices; false when the
  // engine is done (every stratum converged or exhausted).
  bool PlanAdaptiveRound(Campaign& campaign);
  // All slices of the current round are done: feed the outcomes back into
  // the engine, then plan the next round or complete the campaign.
  void FinishAdaptiveRound(std::uint64_t id);
  void CompleteAdaptiveCampaign(std::uint64_t id);
  void CompleteCampaign(std::uint64_t id);
  void FailCampaign(std::uint64_t id, const std::string& error);
  void SendToClient(int fd, const std::string& line);
  void Log(const char* format, ...);

  CoordinatorOptions options_;
  fi::RunCache* cache_;
  int listener_ = -1;
  std::map<int, Connection> connections_;
  std::map<std::uint64_t, Campaign> campaigns_;
  std::uint64_t next_campaign_id_ = 1;
  int completed_campaigns_ = 0;
  bool draining_ = false;  // shutdown received: no new submissions
  std::atomic<bool> stop_{false};
  std::vector<std::thread> worker_threads_;
  std::vector<int> inprocess_fds_;  // coordinator-side ends of the pairs
};

}  // namespace nvbitfi::service
