// Taint storage for the propagation tracer: per-thread register/predicate
// bitsets plus byte-granular shadow maps over the three memory spaces.
//
// Every tainted location also remembers the propagation-graph node that
// produced its taint, so consumers can add producer->consumer edges.  The
// shadow maps saturate at kMaxShadowBytes instead of growing without bound;
// a saturated state may have dropped taint, so the owning record must never
// claim the fault fully masked (TaintState exposes the flag, the tracker
// folds it into the record).
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <unordered_map>

#include "sassim/isa/instruction.h"
#include "trace/propagation.h"

namespace nvbitfi::trace {

// Producer sentinel: taint whose producing node is unknown (graph cap hit).
inline constexpr std::int16_t kNoProducer = -1;

struct ThreadTaint {
  std::bitset<sim::kNumGpr> gpr;
  std::bitset<sim::kNumPred> pred;
  std::array<std::int16_t, sim::kNumGpr> gpr_producer;
  std::array<std::int16_t, sim::kNumPred> pred_producer;

  ThreadTaint() {
    gpr_producer.fill(kNoProducer);
    pred_producer.fill(kNoProducer);
  }
  bool Any() const { return gpr.any() || pred.any(); }
};

enum class MemSpace : std::uint8_t { kGlobal, kShared, kLocal };

class TaintState {
 public:
  // Per-thread register state, keyed by a launch-scoped linear thread id.
  // `Thread` creates the entry; `FindThread` returns nullptr for untouched
  // threads (the common case — most threads never see taint).
  ThreadTaint& Thread(std::uint64_t key);
  const ThreadTaint* FindThread(std::uint64_t key) const;
  ThreadTaint* FindThread(std::uint64_t key);

  // Byte-granular shadow taint.  `key` addresses the first byte; callers
  // pre-compose space-scoped keys (global: the address itself; shared/local:
  // block/thread id folded in, see taint_tracker.cpp).
  void MarkBytes(MemSpace space, std::uint64_t key, int bytes, std::int16_t producer);
  // Strong update: clears the range; true when at least one byte was tainted.
  bool ClearBytes(MemSpace space, std::uint64_t key, int bytes);
  // True when any byte in the range is tainted; *producer receives the
  // producer of the first tainted byte (may be kNoProducer).
  bool AnyTainted(MemSpace space, std::uint64_t key, int bytes,
                  std::int16_t* producer) const;

  // Launch-scoped state (threads, shared, local) — it dies with the launch.
  bool AnyLaunchStateLive() const;
  void CountLiveThreadTaint(std::uint32_t* registers, std::uint32_t* predicates) const;
  void ClearLaunchState();

  std::uint64_t GlobalBytes() const { return global_.size(); }
  bool saturated() const { return saturated_; }

 private:
  using Shadow = std::unordered_map<std::uint64_t, std::int16_t>;

  Shadow& Of(MemSpace space);
  const Shadow& Of(MemSpace space) const;
  std::size_t TotalShadowBytes() const {
    return global_.size() + shared_.size() + local_.size();
  }

  std::unordered_map<std::uint64_t, ThreadTaint> threads_;
  Shadow global_;
  Shadow shared_;
  Shadow local_;
  bool saturated_ = false;
};

}  // namespace nvbitfi::trace
