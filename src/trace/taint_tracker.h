// The propagation-tracing experiment tool: injects the Table II transient
// fault exactly like TransientInjectorTool, then follows the corrupted bits
// through the dataflow and emits a PropagationRecord explaining the outcome.
//
// One nvbit Runtime admits one tool, so the tracker performs the injection
// itself (same arming protocol and counting discipline as the plain
// injector, so a traced campaign selects bit-identical fault sites and
// produces identical outcome classifications — only cycle counts differ, by
// the extra instrumentation cost).
//
// Mechanics: every instruction of every kernel gets a before-callback (which
// snapshots source values, addresses, and source taint) and an
// after-callback (which propagates taint to the destinations).  Eligible
// sites of the target kernel additionally get the inject callback, inserted
// before the after-callback so the corrupted destination is seen by the
// tracer in the same warp step.  Instrumentation is enabled for the target
// launch and for every launch after the injection (taint can flow through
// global memory into later kernels).
//
// Soundness contract (the ctest-verified invariant): an untainted location
// always holds the same value as in the fault-free run, so a record with
// fully_masked == true can only come from a run that classifies as Masked.
// To keep that one-sided guarantee the tracker is conservative everywhere:
// pair-width source reads over-approximate, absorption rules fire only on
// provably value-independent results, tainted predicates/addresses set
// sticky divergence flags, clock reads taint their destination (the traced
// run's cycle counter differs from golden by instrumentation cost), and a
// launch aborted mid-step with tainted sources in flight counts as
// divergence.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/corruption.h"
#include "core/experiment_tool.h"
#include "core/fault_model.h"
#include "nvbit/nvbit.h"
#include "trace/propagation.h"
#include "trace/taint_state.h"

namespace nvbitfi::trace {

class TaintTracker final : public fi::TransientExperimentTool {
 public:
  explicit TaintTracker(fi::TransientFaultParams params);

  std::string ConfigKey() const override;
  void OnAttach(nvbit::Runtime& runtime) override;
  void AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                   const nvbit::EventInfo& info) override;

  const fi::InjectionRecord& record() const override { return record_; }
  std::optional<PropagationRecord> TakePropagation() override;

  // Cost parameters of the tracing callbacks (register snapshot + shadow-map
  // lookups; far heavier than the injector's counter bump).
  static constexpr std::uint32_t kTracerRegs = 16;
  static constexpr std::uint64_t kTracerCycles = 32;

 private:
  // Pre-step snapshot of one lane: source values and taint are captured in
  // the before-callback because the instruction may overwrite its own
  // sources (LD R2, [R2]) and because collectives read other lanes'
  // pre-step state.
  struct LaneSnapshot {
    bool valid = false;
    bool consumed = false;
    bool guard_true = false;
    bool guard_tainted = false;
    std::int16_t guard_producer = kNoProducer;
    std::uint64_t thread_key = 0;
    std::uint64_t cta_linear = 0;
    // Per source operand: raw (unmodified) value, pair-combined for 64-bit
    // reads.  `known` is false for constant-bank operands (not readable
    // through LaneView) — they are never tainted but block absorption math.
    std::array<std::uint64_t, sim::kMaxSrcOperands> value{};
    std::array<bool, sim::kMaxSrcOperands> known{};
    std::array<bool, sim::kMaxSrcOperands> tainted{};
    std::array<std::int16_t, sim::kMaxSrcOperands> producer{};
    // Memory operand (loads/stores/atomics): effective address and the taint
    // of the base register (pair) that formed it.
    std::uint64_t addr = 0;
    bool addr_tainted = false;
    std::int16_t addr_producer = kNoProducer;
    // Store-value taint over the full access width (pair/quad registers).
    bool store_tainted = false;
    std::int16_t store_producer = kNoProducer;
    // Any of the above (guard included): used to detect a launch aborting
    // (trap/watchdog) between this snapshot and the matching after-event.
    bool sources_tainted = false;
  };

  void Inject(const sim::InstrEvent& event);
  void Before(const sim::InstrEvent& event);
  void After(const sim::InstrEvent& event);

  void SeedTaint(const sim::InstrEvent& event);
  void Propagate(const sim::InstrEvent& event, const LaneSnapshot& snap);
  void PropagateMemory(const sim::InstrEvent& event, const LaneSnapshot& snap);
  void PropagateCollective(const sim::InstrEvent& event, const LaneSnapshot& snap);
  void PropagateSpecial(const sim::InstrEvent& event, const LaneSnapshot& snap);
  void PropagateAlu(const sim::InstrEvent& event, const LaneSnapshot& snap);

  // Destination helpers (GPR span + both predicate destinations).
  void TaintDests(const sim::InstrEvent& event, std::int16_t node);
  bool ClearDests(const sim::InstrEvent& event);

  // True when the result provably does not depend on the tainted sources.
  bool Absorbed(const sim::Instruction& inst, const LaneSnapshot& snap) const;

  // Bumps tainted_instructions at most once per after-event.
  void CountTainted();
  // Node lookup + per-event counter bump for the current instruction.
  std::int16_t TouchNode(const sim::InstrEvent& event);
  std::int16_t NodeFor(std::uint32_t static_index, sim::Opcode opcode);
  void AddEdge(std::int16_t from, std::int16_t to);
  void RecordMask(MaskingKind kind, const sim::InstrEvent& event);
  void ResetStage();
  void HarvestLaunchEnd();

  fi::TransientFaultParams params_;
  fi::InjectionRecord record_;
  PropagationRecord rec_;
  TaintState taint_;

  std::uint64_t counter_ = 0;
  bool armed_ = false;
  bool done_ = false;
  bool tracing_launch_ = false;
  bool pending_seed_ = false;
  int pending_seed_lane_ = -1;
  bool in_before_phase_ = false;
  bool counted_tainted_ = false;

  std::array<LaneSnapshot, sim::kWarpSize> staged_{};
  std::unordered_map<std::uint64_t, std::int16_t> node_ids_;
  std::unordered_map<std::uint32_t, std::size_t> edge_ids_;
};

}  // namespace nvbitfi::trace
