// Fault-propagation record: what one injected corruption *did* between the
// injection site and the end of the program.
//
// NVBitFI classifies an experiment only by its end-to-end outcome (Table V);
// this record explains the outcome.  A TaintTracker (taint_tracker.h) marks
// the corrupted destination register and follows the taint through
// register->register dataflow, predicate writes, and loads/stores; the
// resulting PropagationRecord is carried on the campaign's InjectionRun,
// persisted in the result store, and aggregated by `nvbitfi analyze`.
//
// Header-only on purpose: core/campaign.h embeds the record in InjectionRun,
// and the core library must not link against the trace library (trace links
// core for the corruption semantics).  Everything here is plain data.
#pragma once

#include <cstdint>
#include <vector>

#include "sassim/isa/opcode.h"

namespace nvbitfi::trace {

// Why a tainted destination lost its taint.
enum class MaskingKind : std::uint8_t {
  kOverwrite,  // overwritten by a result computed from clean sources
  kAbsorb,     // tainted sources provably did not affect the result
               // (AND with 0, OR with ~0, multiply by 0, untainted select)
};

// One taint-death event: a previously tainted register (or memory range) was
// rewritten with a provably clean value.  `distance` is the number of dynamic
// instructions executed between the injection and the masking event, the
// masking-distance metric of the propagation report.
struct MaskingEvent {
  MaskingKind kind = MaskingKind::kOverwrite;
  sim::Opcode opcode = sim::Opcode::kNOP;  // the masking instruction
  std::uint32_t static_index = 0;
  std::uint64_t distance = 0;

  bool operator==(const MaskingEvent&) const = default;
};

// A static instruction that processed taint at least once.  Node 0 is always
// the injection site when the injection corrupted a register.
struct PropagationNode {
  std::uint32_t static_index = 0;
  sim::Opcode opcode = sim::Opcode::kNOP;
  std::uint64_t events = 0;  // dynamic taint-processing events at this node

  bool operator==(const PropagationNode&) const = default;
};

// Dataflow edge: taint produced by `from` was consumed by `to`.
struct PropagationEdge {
  std::uint32_t from = 0;  // index into PropagationRecord::nodes
  std::uint32_t to = 0;
  std::uint64_t count = 0;

  bool operator==(const PropagationEdge&) const = default;
};

// Bounds that keep tracing O(dynamic instructions) with O(1) extra state per
// record: the graph and the masking-event sample are capped, and the shadow
// memory map saturates (conservatively treated as live taint) instead of
// growing without bound.
inline constexpr std::size_t kMaxPropagationNodes = 256;
inline constexpr std::size_t kMaxPropagationEdges = 1024;
inline constexpr std::size_t kMaxMaskingSample = 64;
inline constexpr std::size_t kMaxShadowBytes = 1u << 20;

struct PropagationRecord {
  // False when the fault was never activated (site not reached) or the
  // corruption had no architectural effect (no target register, or the mask
  // happened to change no bits) — such faults are dead at distance zero.
  bool injected = false;

  // Dynamic instructions (guard-true lane events) observed after injection.
  std::uint64_t dynamic_instructions = 0;
  // Dynamic instructions that read or wrote at least one tainted value.
  std::uint64_t tainted_instructions = 0;

  // Stores whose value (or address) was tainted, and the dynamic-instruction
  // distance from the injection to the first one.
  std::uint64_t tainted_stores = 0;
  bool reached_store = false;
  std::uint64_t first_store_distance = 0;

  // Taint-death accounting: totals plus a bounded sample with opcodes and
  // distances (the masking-distance histogram input).
  std::uint64_t overwrite_masks = 0;
  std::uint64_t absorb_masks = 0;
  std::vector<MaskingEvent> masking_sample;

  // Sticky divergence flags.  Once the fault touches a predicate write or a
  // memory address, pure value-tracking can no longer prove the run clean:
  // control flow / access patterns may differ from the fault-free execution.
  bool control_divergence = false;
  bool address_divergence = false;

  // Live taint at the end of the injected kernel launch (registers and
  // predicates die with the launch; this is the "live at kernel exit" view).
  std::uint32_t live_registers = 0;
  std::uint32_t live_predicates = 0;
  // True when any traced launch ended with register/predicate/shared/local
  // taint still live.  Metric only: that state dies with the launch, so it
  // does not keep a fault from being fully masked.
  bool any_launch_live_exit = false;
  // Tainted global-memory bytes when the program finished — the taint that
  // is visible to the host's output readback.
  std::uint64_t live_global_bytes = 0;
  // Sticky: some launch ended with tainted global bytes.  Between launches
  // the host may read device memory and fold the corruption into scalars it
  // feeds back through constant banks — a channel the tracer cannot follow —
  // so taint that was ever host-visible permanently blocks fully_masked,
  // even if a later untainted store scrubs the shadow bytes.
  bool host_visible_taint = false;
  // The shadow map hit its size cap; taint may have been dropped, so the
  // record is conservative (never reported fully masked).
  bool shadow_saturated = false;

  // True when the fault provably had no surviving effect: no divergence and
  // no tainted global memory at the end of any launch
  // (register/predicate/shared/local taint dies with its launch and cannot
  // reach the host; global taint at a launch boundary can).  Conservative
  // soundness contract: fully_masked implies the run classifies as Masked
  // (never the other way around — an outcome-Masked run may still carry
  // coincidentally-correct tainted values).
  bool fully_masked = false;

  // Bounded propagation graph over static instructions.
  std::vector<PropagationNode> nodes;
  std::vector<PropagationEdge> edges;
  bool graph_truncated = false;

  bool operator==(const PropagationRecord&) const = default;
};

}  // namespace nvbitfi::trace
