#include "trace/taint_tracker.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace nvbitfi::trace {
namespace {

constexpr const char* kBeforeFn = "nvbitfi_trace_before";
constexpr const char* kInjectFn = "nvbitfi_trace_inject";
constexpr const char* kAfterFn = "nvbitfi_trace_after";

// Shared/local addresses are a 32-bit base register plus a signed offset, so
// they fit in 33 bits; block / thread ids are folded in above that.
constexpr std::uint64_t kSpaceShift = 33;

std::uint64_t CtaLinear(const sim::LaunchInfo& launch, sim::Dim3 ctaid) {
  return (static_cast<std::uint64_t>(ctaid.z) * launch.grid.y + ctaid.y) *
             launch.grid.x +
         ctaid.x;
}

std::uint64_t ThreadKeyOf(const sim::LaunchInfo& launch, sim::Dim3 ctaid,
                          sim::Dim3 tid) {
  const std::uint64_t tid_linear =
      (static_cast<std::uint64_t>(tid.z) * launch.block.y + tid.y) * launch.block.x +
      tid.x;
  return CtaLinear(launch, ctaid) * launch.block.Count() + tid_linear;
}

MemSpace SpaceOf(sim::Opcode op) {
  using sim::Opcode;
  if (op == Opcode::kLDS || op == Opcode::kSTS || op == Opcode::kATOMS) {
    return MemSpace::kShared;
  }
  if (op == Opcode::kLDL || op == Opcode::kSTL) return MemSpace::kLocal;
  return MemSpace::kGlobal;
}

std::uint64_t ShadowKey(MemSpace space, const std::uint64_t addr,
                        std::uint64_t cta_linear, std::uint64_t thread_key) {
  const std::uint64_t masked = addr & ((1ull << kSpaceShift) - 1);
  switch (space) {
    case MemSpace::kGlobal: return addr;
    case MemSpace::kShared: return (cta_linear << kSpaceShift) | masked;
    case MemSpace::kLocal: break;
  }
  return (thread_key << kSpaceShift) | masked;
}

// Number of consecutive GPRs a source operand reads.  Over-approximating is
// safe (extra taint, never missed taint); under-approximating is not.
int SrcGprSpan(const sim::Instruction& inst, int i) {
  using sim::Opcode;
  if (sim::ClassOf(inst.opcode) == sim::OpClass::kFp64) return 2;
  if (inst.opcode == Opcode::kDSETP) return 2;
  if (inst.mods.wide_src) return 2;
  if (inst.opcode == Opcode::kIMAD && inst.mods.wide_dst && i == 2) return 2;
  return 1;
}

// Mirrors ReadSrc32's integer modifier pipeline (absolute, invert, negate).
std::uint32_t ApplyIntMods32(const sim::Operand& op, std::uint32_t v) {
  if (op.absolute) {
    v = static_cast<std::uint32_t>(std::abs(static_cast<std::int32_t>(v)));
  }
  if (op.invert) v = ~v;
  if (op.negate) v = static_cast<std::uint32_t>(-static_cast<std::int32_t>(v));
  return v;
}

bool ApplyBoolOp(sim::BoolOp op, bool a, bool b) {
  switch (op) {
    case sim::BoolOp::kAnd: return a && b;
    case sim::BoolOp::kOr: return a || b;
    case sim::BoolOp::kXor: return a != b;
  }
  return false;
}

}  // namespace

TaintTracker::TaintTracker(fi::TransientFaultParams params)
    : params_(std::move(params)) {
  NVBITFI_CHECK_MSG(params_.destination_register >= 0.0 && params_.destination_register < 1.0,
                    "destination-register value outside [0,1)");
  NVBITFI_CHECK_MSG(params_.bit_pattern_value >= 0.0 && params_.bit_pattern_value < 1.0,
                    "bit-pattern value outside [0,1)");
}

std::string TaintTracker::ConfigKey() const {
  return "tracer/" + params_.kernel_name + "/g" +
         std::to_string(static_cast<int>(params_.arch_state_id));
}

void TaintTracker::OnAttach(nvbit::Runtime& runtime) {
  nvbit::DeviceFunction before;
  before.name = kBeforeFn;
  before.regs_used = kTracerRegs;
  before.cost_cycles = kTracerCycles;
  before.serialized = true;
  before.callback = [this](const sim::InstrEvent& event) { Before(event); };
  runtime.RegisterDeviceFunction(std::move(before));

  nvbit::DeviceFunction inject;
  inject.name = kInjectFn;
  inject.regs_used = kTracerRegs;
  inject.cost_cycles = kTracerCycles;
  inject.callback = [this](const sim::InstrEvent& event) { Inject(event); };
  runtime.RegisterDeviceFunction(std::move(inject));

  nvbit::DeviceFunction after;
  after.name = kAfterFn;
  after.regs_used = kTracerRegs;
  after.cost_cycles = kTracerCycles;
  after.serialized = true;
  after.callback = [this](const sim::InstrEvent& event) { After(event); };
  runtime.RegisterDeviceFunction(std::move(after));
}

void TaintTracker::AtCudaEvent(nvbit::Runtime& runtime, nvbit::CudaEvent event,
                               const nvbit::EventInfo& info) {
  switch (event) {
    case nvbit::CudaEvent::kModuleLoaded:
      // Unlike the minimal injector, the tracer instruments *every*
      // instruction of *every* kernel — taint can travel anywhere.  The
      // inject callback still goes only on the group-eligible sites of the
      // target kernel, spliced before the after-callback so the corrupted
      // destination is seeded within the same warp step.
      for (const auto& fn : info.module->functions()) {
        const bool target = fn->name() == params_.kernel_name;
        for (const nvbit::Instr& instr : runtime.GetInstrs(*fn)) {
          runtime.InsertCall(*fn, instr.index(), kBeforeFn, sim::InsertPoint::kBefore);
          if (target && OpcodeInGroup(instr.opcode(), params_.arch_state_id)) {
            runtime.InsertCall(*fn, instr.index(), kInjectFn, sim::InsertPoint::kAfter);
          }
          runtime.InsertCall(*fn, instr.index(), kAfterFn, sim::InsertPoint::kAfter);
        }
      }
      break;
    case nvbit::CudaEvent::kKernelLaunchBegin: {
      const bool is_target = info.launch->kernel_name == params_.kernel_name &&
                             info.launch->launch_ordinal == params_.kernel_count;
      armed_ = is_target && !done_;
      if (armed_) counter_ = 0;
      // Trace the target launch and everything after the injection; earlier
      // launches carry no taint and run uninstrumented at full speed.
      tracing_launch_ = armed_ || done_;
      runtime.EnableInstrumented(*info.function, tracing_launch_);
      ResetStage();
      break;
    }
    case nvbit::CudaEvent::kKernelLaunchEnd:
      if (tracing_launch_) HarvestLaunchEnd();
      armed_ = false;
      tracing_launch_ = false;
      break;
  }
}

std::optional<PropagationRecord> TaintTracker::TakePropagation() {
  rec_.live_global_bytes = taint_.GlobalBytes();
  if (rec_.live_global_bytes > 0) rec_.host_visible_taint = true;
  rec_.shadow_saturated = taint_.saturated();
  // Registers/predicates/shared/local die with their launch, so only
  // divergence and host-visible global-memory taint (live now, or live at
  // any earlier launch boundary) can make the fault visible.
  rec_.fully_masked = !rec_.injected ||
                      (!rec_.control_divergence && !rec_.address_divergence &&
                       !rec_.host_visible_taint && !rec_.shadow_saturated);
  return rec_;
}

// ---- injection ------------------------------------------------------------

void TaintTracker::Inject(const sim::InstrEvent& event) {
  if (!armed_ || done_ || !event.lane.guard_true()) return;
  const std::uint64_t index = counter_++;
  if (index != params_.instruction_count) return;
  done_ = true;
  fi::ApplyTransientCorruption(event, params_, &record_);
  // The matching after-callback for this lane runs next; it seeds the taint.
  pending_seed_ = true;
  pending_seed_lane_ = event.lane.lane_id();
}

void TaintTracker::SeedTaint(const sim::InstrEvent& event) {
  if (!record_.corrupted || record_.after_bits == record_.before_bits) {
    return;  // no architectural change: dead at distance zero
  }
  rec_.injected = true;
  const std::int16_t node = NodeFor(record_.static_index, record_.opcode);
  if (node >= 0) ++rec_.nodes[static_cast<std::size_t>(node)].events;
  ThreadTaint& taint =
      taint_.Thread(ThreadKeyOf(event.launch, event.lane.ctaid(), event.lane.tid()));
  if (record_.pred_target) {
    if (record_.target_register >= 0 && record_.target_register < sim::kPT) {
      taint.pred.set(static_cast<std::size_t>(record_.target_register));
      taint.pred_producer[static_cast<std::size_t>(record_.target_register)] = node;
    }
    return;
  }
  if (record_.target_register < 0) return;
  const int span = record_.register_width == 64 ? 2 : 1;
  for (int r = 0; r < span; ++r) {
    const int idx = record_.target_register + r;
    if (idx < sim::kNumGpr && idx != sim::kRZ) {
      taint.gpr.set(static_cast<std::size_t>(idx));
      taint.gpr_producer[static_cast<std::size_t>(idx)] = node;
    }
  }
}

// ---- event staging --------------------------------------------------------

void TaintTracker::ResetStage() {
  staged_.fill(LaneSnapshot{});
  in_before_phase_ = false;
}

void TaintTracker::Before(const sim::InstrEvent& event) {
  if (!done_) return;
  if (!in_before_phase_) {
    staged_.fill(LaneSnapshot{});
    in_before_phase_ = true;
  }
  const sim::Instruction& inst = event.instr;
  const sim::LaneView& lane = event.lane;
  LaneSnapshot& s = staged_[static_cast<std::size_t>(lane.lane_id())];
  s = LaneSnapshot{};
  s.valid = true;
  s.guard_true = lane.active();
  s.thread_key = ThreadKeyOf(event.launch, lane.ctaid(), lane.tid());
  s.cta_linear = CtaLinear(event.launch, lane.ctaid());
  const ThreadTaint* taint = taint_.FindThread(s.thread_key);

  if (inst.guard_pred != sim::kPT && taint != nullptr &&
      taint->pred[inst.guard_pred]) {
    s.guard_tainted = true;
    s.guard_producer = taint->pred_producer[inst.guard_pred];
  }
  if (!s.guard_true) {
    // Predicated-off lanes do not execute: only their guard read matters.
    s.sources_tainted = s.guard_tainted;
    return;
  }

  for (int i = 0; i < inst.num_src; ++i) {
    const sim::Operand& op = inst.src[static_cast<std::size_t>(i)];
    switch (op.kind) {
      case sim::Operand::Kind::kGpr: {
        const int span = SrcGprSpan(inst, i);
        std::uint64_t v = lane.ReadGpr(op.reg);
        if (span == 2 && op.reg + 1 < sim::kNumGpr) {
          v |= static_cast<std::uint64_t>(lane.ReadGpr(op.reg + 1)) << 32;
        }
        s.value[static_cast<std::size_t>(i)] = v;
        s.known[static_cast<std::size_t>(i)] = true;
        if (taint != nullptr) {
          for (int r = 0; r < span; ++r) {
            const int idx = op.reg + r;
            if (idx < sim::kNumGpr && idx != sim::kRZ && taint->gpr[idx]) {
              s.tainted[static_cast<std::size_t>(i)] = true;
              s.producer[static_cast<std::size_t>(i)] = taint->gpr_producer[idx];
            }
          }
        }
        break;
      }
      case sim::Operand::Kind::kPred:
        s.value[static_cast<std::size_t>(i)] = lane.ReadPred(op.reg) ? 1 : 0;
        s.known[static_cast<std::size_t>(i)] = true;
        if (taint != nullptr && op.reg != sim::kPT && taint->pred[op.reg]) {
          s.tainted[static_cast<std::size_t>(i)] = true;
          s.producer[static_cast<std::size_t>(i)] = taint->pred_producer[op.reg];
        }
        break;
      case sim::Operand::Kind::kImm:
      case sim::Operand::Kind::kLabel:
        s.value[static_cast<std::size_t>(i)] = op.imm;
        s.known[static_cast<std::size_t>(i)] = true;
        break;
      case sim::Operand::Kind::kConst:
        break;  // unreadable through LaneView; never tainted
      case sim::Operand::Kind::kMem: {
        const MemSpace space = SpaceOf(inst.opcode);
        const int base_span = space == MemSpace::kGlobal ? 2 : 1;
        std::uint64_t base = lane.ReadGpr(op.mem_base);
        if (base_span == 2 && op.mem_base + 1 < sim::kNumGpr) {
          base |= static_cast<std::uint64_t>(lane.ReadGpr(op.mem_base + 1)) << 32;
        }
        s.addr = base + static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(op.mem_offset));
        if (taint != nullptr) {
          for (int r = 0; r < base_span; ++r) {
            const int idx = op.mem_base + r;
            if (idx < sim::kNumGpr && idx != sim::kRZ && taint->gpr[idx]) {
              s.addr_tainted = true;
              s.addr_producer = taint->gpr_producer[idx];
            }
          }
        }
        break;
      }
      case sim::Operand::Kind::kNone:
        break;
    }
  }

  if (sim::ClassOf(inst.opcode) == sim::OpClass::kStore && taint != nullptr) {
    const int value_reg = inst.src[1].kind == sim::Operand::Kind::kGpr
                              ? inst.src[1].reg
                              : sim::kRZ;
    const int regs = inst.mods.width == sim::MemWidth::k64    ? 2
                     : inst.mods.width == sim::MemWidth::k128 ? 4
                                                              : 1;
    for (int r = 0; r < regs; ++r) {
      const int idx = value_reg + r;
      if (idx < sim::kNumGpr && idx != sim::kRZ && taint->gpr[idx]) {
        s.store_tainted = true;
        s.store_producer = taint->gpr_producer[idx];
      }
    }
  }

  s.sources_tainted = s.guard_tainted || s.addr_tainted || s.store_tainted;
  for (int i = 0; i < inst.num_src; ++i) {
    s.sources_tainted = s.sources_tainted || s.tainted[static_cast<std::size_t>(i)];
  }
}

void TaintTracker::After(const sim::InstrEvent& event) {
  in_before_phase_ = false;
  const int lane_id = event.lane.lane_id();
  if (pending_seed_ && lane_id == pending_seed_lane_) {
    pending_seed_ = false;
    SeedTaint(event);
    return;
  }
  if (!done_) return;
  LaneSnapshot& s = staged_[static_cast<std::size_t>(lane_id)];
  if (!s.valid || s.consumed) return;
  s.consumed = true;
  if (s.guard_tainted) {
    // A tainted guard means this lane's participation may differ from the
    // fault-free run — sticky control divergence.
    rec_.control_divergence = true;
    AddEdge(s.guard_producer, TouchNode(event));
  }
  if (!s.guard_true) return;  // not executed: not counted, not propagated
  ++rec_.dynamic_instructions;
  counted_tainted_ = false;
  if (s.guard_tainted) CountTainted();
  Propagate(event, s);
}

// ---- propagation ----------------------------------------------------------

void TaintTracker::Propagate(const sim::InstrEvent& event, const LaneSnapshot& snap) {
  using sim::Opcode;
  const Opcode op = event.instr.opcode;
  if (op == Opcode::kSHFL || op == Opcode::kVOTE) {
    PropagateCollective(event, snap);
    return;
  }
  if (op == Opcode::kP2R || op == Opcode::kR2P || op == Opcode::kS2R ||
      op == Opcode::kCS2R) {
    PropagateSpecial(event, snap);
    return;
  }
  const sim::OpClass c = sim::ClassOf(op);
  if ((c == sim::OpClass::kLoad && op != Opcode::kLDC) ||
      c == sim::OpClass::kStore || c == sim::OpClass::kAtomic) {
    PropagateMemory(event, snap);
    return;
  }
  if (c == sim::OpClass::kControl) {
    bool any = false;
    std::int16_t producer = kNoProducer;
    for (int i = 0; i < event.instr.num_src; ++i) {
      if (snap.tainted[static_cast<std::size_t>(i)]) {
        any = true;
        producer = snap.producer[static_cast<std::size_t>(i)];
      }
    }
    if (any) {
      rec_.control_divergence = true;
      CountTainted();
      AddEdge(producer, TouchNode(event));
    }
    return;
  }
  PropagateAlu(event, snap);
}

void TaintTracker::PropagateAlu(const sim::InstrEvent& event, const LaneSnapshot& snap) {
  bool any = false;
  for (int i = 0; i < event.instr.num_src; ++i) {
    any = any || snap.tainted[static_cast<std::size_t>(i)];
  }
  if (!any) {
    if (ClearDests(event)) {
      CountTainted();
      TouchNode(event);
      RecordMask(MaskingKind::kOverwrite, event);
    }
    return;
  }
  CountTainted();
  const std::int16_t node = TouchNode(event);
  for (int i = 0; i < event.instr.num_src; ++i) {
    if (snap.tainted[static_cast<std::size_t>(i)]) {
      AddEdge(snap.producer[static_cast<std::size_t>(i)], node);
    }
  }
  if (Absorbed(event.instr, snap)) {
    ClearDests(event);
    RecordMask(MaskingKind::kAbsorb, event);
  } else {
    TaintDests(event, node);
  }
}

void TaintTracker::PropagateMemory(const sim::InstrEvent& event,
                                   const LaneSnapshot& snap) {
  using sim::Opcode;
  const sim::Instruction& inst = event.instr;
  const sim::OpClass c = sim::ClassOf(inst.opcode);
  const MemSpace space = SpaceOf(inst.opcode);
  const std::uint64_t key =
      ShadowKey(space, snap.addr, snap.cta_linear, snap.thread_key);

  if (c == sim::OpClass::kLoad) {
    const int bytes = sim::MemWidthBytes(inst.mods.width);
    if (snap.addr_tainted) {
      // The access may target a different address than the fault-free run:
      // the loaded value is unknowable, and the access pattern diverged.
      rec_.address_divergence = true;
      CountTainted();
      const std::int16_t node = TouchNode(event);
      AddEdge(snap.addr_producer, node);
      TaintDests(event, node);
      return;
    }
    std::int16_t producer = kNoProducer;
    if (taint_.AnyTainted(space, key, bytes, &producer)) {
      CountTainted();
      const std::int16_t node = TouchNode(event);
      AddEdge(producer, node);
      TaintDests(event, node);
    } else if (ClearDests(event)) {
      CountTainted();
      TouchNode(event);
      RecordMask(MaskingKind::kOverwrite, event);
    }
    return;
  }

  if (c == sim::OpClass::kStore) {
    const int bytes = sim::MemWidthBytes(inst.mods.width);
    if (snap.addr_tainted) rec_.address_divergence = true;
    if (snap.addr_tainted || snap.store_tainted) {
      CountTainted();
      const std::int16_t node = TouchNode(event);
      AddEdge(snap.store_producer, node);
      AddEdge(snap.addr_producer, node);
      taint_.MarkBytes(space, key, bytes, node);
      ++rec_.tainted_stores;
      if (!rec_.reached_store) {
        rec_.reached_store = true;
        rec_.first_store_distance = rec_.dynamic_instructions;
      }
    } else if (taint_.ClearBytes(space, key, bytes)) {
      CountTainted();
      TouchNode(event);
      RecordMask(MaskingKind::kOverwrite, event);
    }
    return;
  }

  // Atomics (ATOM/ATOMG/ATOMS/RED): 32-bit read-modify-write; the GPR
  // destination (absent for RED) receives the OLD memory value.
  const int bytes = 4;
  std::int16_t old_producer = kNoProducer;
  const bool old_tainted = taint_.AnyTainted(space, key, bytes, &old_producer);
  const bool operand_tainted = snap.tainted[1] || snap.tainted[2];
  if (snap.addr_tainted) rec_.address_divergence = true;
  if (old_tainted || operand_tainted || snap.addr_tainted) {
    CountTainted();
    const std::int16_t node = TouchNode(event);
    if (old_tainted) AddEdge(old_producer, node);
    if (snap.tainted[1]) AddEdge(snap.producer[1], node);
    if (snap.tainted[2]) AddEdge(snap.producer[2], node);
    AddEdge(snap.addr_producer, node);
    taint_.MarkBytes(space, key, bytes, node);
    ++rec_.tainted_stores;
    if (!rec_.reached_store) {
      rec_.reached_store = true;
      rec_.first_store_distance = rec_.dynamic_instructions;
    }
    if (inst.opcode != Opcode::kRED) {
      if (old_tainted || snap.addr_tainted) {
        TaintDests(event, node);
      } else if (ClearDests(event)) {
        RecordMask(MaskingKind::kOverwrite, event);
      }
    }
  } else if (inst.opcode != Opcode::kRED && ClearDests(event)) {
    CountTainted();
    TouchNode(event);
    RecordMask(MaskingKind::kOverwrite, event);
  }
}

void TaintTracker::PropagateCollective(const sim::InstrEvent& event,
                                       const LaneSnapshot& snap) {
  using sim::Opcode;
  const sim::Instruction& inst = event.instr;

  if (inst.opcode == Opcode::kVOTE) {
    // Ballot/all/any mix every participating lane's source predicate.
    bool any = false;
    std::int16_t producer = kNoProducer;
    for (const LaneSnapshot& other : staged_) {
      if (other.valid && other.guard_true && other.tainted[0]) {
        any = true;
        producer = other.producer[0];
      }
    }
    if (any) {
      CountTainted();
      const std::int16_t node = TouchNode(event);
      for (const LaneSnapshot& other : staged_) {
        if (other.valid && other.guard_true && other.tainted[0]) {
          AddEdge(other.producer[0], node);
        }
      }
      (void)producer;
      TaintDests(event, node);
    } else if (ClearDests(event)) {
      CountTainted();
      TouchNode(event);
      RecordMask(MaskingKind::kOverwrite, event);
    }
    return;
  }

  // SHFL: the destination comes from the selected lane's pre-step source.
  bool tainted = false;
  std::int16_t producer = kNoProducer;
  if (inst.num_src > 1 && snap.tainted[1]) {
    tainted = true;  // tainted selector: the source lane itself may differ
    producer = snap.producer[1];
  } else if (inst.num_src > 1 && !snap.known[1]) {
    // Selector from the constant bank — unreadable here; any participating
    // lane's source could be selected.
    for (const LaneSnapshot& other : staged_) {
      if (other.valid && other.guard_true && other.tainted[0]) {
        tainted = true;
        producer = other.producer[0];
      }
    }
  } else {
    const std::uint32_t b =
        inst.num_src > 1
            ? ApplyIntMods32(inst.src[1], static_cast<std::uint32_t>(snap.value[1]))
            : 0;
    const int lane = event.lane.lane_id();
    int src_lane = lane;
    switch (inst.mods.shfl) {
      case sim::ShflMode::kIdx: src_lane = static_cast<int>(b & 31u); break;
      case sim::ShflMode::kUp: src_lane = lane - static_cast<int>(b); break;
      case sim::ShflMode::kDown: src_lane = lane + static_cast<int>(b); break;
      case sim::ShflMode::kBfly: src_lane = lane ^ static_cast<int>(b & 31u); break;
    }
    const LaneSnapshot* from =
        src_lane >= 0 && src_lane < sim::kWarpSize
            ? &staged_[static_cast<std::size_t>(src_lane)]
            : nullptr;
    if (from != nullptr && from->valid && from->guard_true) {
      tainted = from->tainted[0];
      producer = from->producer[0];
    } else {
      tainted = snap.tainted[0];  // invalid source lane: own value
      producer = snap.producer[0];
    }
  }
  if (tainted) {
    CountTainted();
    const std::int16_t node = TouchNode(event);
    AddEdge(producer, node);
    TaintDests(event, node);
  } else if (ClearDests(event)) {
    CountTainted();
    TouchNode(event);
    RecordMask(MaskingKind::kOverwrite, event);
  }
}

void TaintTracker::PropagateSpecial(const sim::InstrEvent& event,
                                    const LaneSnapshot& snap) {
  using sim::Opcode;
  const sim::Instruction& inst = event.instr;

  if (inst.opcode == Opcode::kP2R) {
    // Reads the whole predicate file (masked), so any predicate taint flows.
    bool any = snap.tainted[0];
    std::int16_t producer = snap.producer[0];
    const ThreadTaint* taint = taint_.FindThread(snap.thread_key);
    if (taint != nullptr) {
      for (int p = 0; p < sim::kPT; ++p) {
        if (taint->pred[p]) {
          any = true;
          producer = taint->pred_producer[p];
        }
      }
    }
    if (any) {
      CountTainted();
      const std::int16_t node = TouchNode(event);
      AddEdge(producer, node);
      TaintDests(event, node);
    } else if (ClearDests(event)) {
      CountTainted();
      TouchNode(event);
      RecordMask(MaskingKind::kOverwrite, event);
    }
    return;
  }

  if (inst.opcode == Opcode::kR2P) {
    // Writes the predicate file from a GPR, under a mask.
    if (snap.tainted[0] || snap.tainted[1]) {
      CountTainted();
      const std::int16_t node = TouchNode(event);
      if (snap.tainted[0]) AddEdge(snap.producer[0], node);
      if (snap.tainted[1]) AddEdge(snap.producer[1], node);
      ThreadTaint& taint = taint_.Thread(snap.thread_key);
      for (int p = 0; p < sim::kPT; ++p) {
        taint.pred.set(static_cast<std::size_t>(p));
        taint.pred_producer[static_cast<std::size_t>(p)] = node;
      }
      return;
    }
    // Clean sources: strong-update the predicates named by a known mask;
    // with an unknowable (constant-bank) mask, leave taint in place (safe).
    std::uint32_t mask = 0xFFFFFFFFu;
    if (inst.num_src > 1) {
      if (!snap.known[1]) return;
      mask = ApplyIntMods32(inst.src[1], static_cast<std::uint32_t>(snap.value[1]));
    }
    ThreadTaint* taint = taint_.FindThread(snap.thread_key);
    if (taint == nullptr) return;
    bool cleared = false;
    for (int p = 0; p < sim::kPT; ++p) {
      if ((mask >> p & 1) != 0 && taint->pred[p]) {
        taint->pred.reset(static_cast<std::size_t>(p));
        cleared = true;
      }
    }
    if (cleared) {
      CountTainted();
      TouchNode(event);
      RecordMask(MaskingKind::kOverwrite, event);
    }
    return;
  }

  // S2R/CS2R.  The cycle counter differs from the fault-free run by the
  // instrumentation cost, so clock reads conservatively taint their
  // destination; all other special registers are launch geometry (clean).
  const bool clock = inst.opcode == Opcode::kCS2R ||
                     (inst.opcode == Opcode::kS2R &&
                      inst.mods.sreg == sim::SpecialReg::kClockLo);
  if (clock) {
    TaintDests(event, kNoProducer);
  } else if (ClearDests(event)) {
    CountTainted();
    TouchNode(event);
    RecordMask(MaskingKind::kOverwrite, event);
  }
}

// ---- destinations ---------------------------------------------------------

void TaintTracker::TaintDests(const sim::InstrEvent& event, std::int16_t node) {
  const sim::Instruction& inst = event.instr;
  ThreadTaint& taint = taint_.Thread(
      ThreadKeyOf(event.launch, event.lane.ctaid(), event.lane.tid()));
  if (inst.dest_gpr != sim::kRZ) {
    const int span = sim::DestGprCount(inst);
    for (int r = 0; r < span; ++r) {
      const int idx = inst.dest_gpr + r;
      if (idx < sim::kNumGpr && idx != sim::kRZ) {
        taint.gpr.set(static_cast<std::size_t>(idx));
        taint.gpr_producer[static_cast<std::size_t>(idx)] = node;
      }
    }
  }
  if (inst.dest_pred != sim::kPT) {
    taint.pred.set(inst.dest_pred);
    taint.pred_producer[inst.dest_pred] = node;
  }
  if (inst.dest_pred2 != sim::kPT) {
    taint.pred.set(inst.dest_pred2);
    taint.pred_producer[inst.dest_pred2] = node;
  }
}

bool TaintTracker::ClearDests(const sim::InstrEvent& event) {
  const sim::Instruction& inst = event.instr;
  ThreadTaint* taint = taint_.FindThread(
      ThreadKeyOf(event.launch, event.lane.ctaid(), event.lane.tid()));
  if (taint == nullptr) return false;
  bool cleared = false;
  if (inst.dest_gpr != sim::kRZ) {
    const int span = sim::DestGprCount(inst);
    for (int r = 0; r < span; ++r) {
      const int idx = inst.dest_gpr + r;
      if (idx < sim::kNumGpr && idx != sim::kRZ && taint->gpr[idx]) {
        taint->gpr.reset(static_cast<std::size_t>(idx));
        cleared = true;
      }
    }
  }
  if (inst.dest_pred != sim::kPT && taint->pred[inst.dest_pred]) {
    taint->pred.reset(inst.dest_pred);
    cleared = true;
  }
  if (inst.dest_pred2 != sim::kPT && taint->pred[inst.dest_pred2]) {
    taint->pred.reset(inst.dest_pred2);
    cleared = true;
  }
  return cleared;
}

// ---- absorption -----------------------------------------------------------

bool TaintTracker::Absorbed(const sim::Instruction& inst,
                            const LaneSnapshot& snap) const {
  using sim::Opcode;
  switch (inst.opcode) {
    case Opcode::kSEL:
    case Opcode::kFSEL: {
      if (inst.num_src < 3) return false;
      const sim::Operand& sel = inst.src[2];
      if (sel.kind != sim::Operand::Kind::kPred || snap.tainted[2] || !snap.known[2]) {
        return false;
      }
      const bool take_a = (snap.value[2] != 0) != sel.negate;
      return !snap.tainted[take_a ? 0 : 1];  // taint only on the unselected side
    }
    case Opcode::kLOP:
    case Opcode::kLOP32I: {
      if (inst.num_src < 2 || snap.tainted[0] == snap.tainted[1]) return false;
      const int other = snap.tainted[0] ? 1 : 0;
      if (!snap.known[static_cast<std::size_t>(other)]) return false;
      const std::uint32_t v =
          ApplyIntMods32(inst.src[static_cast<std::size_t>(other)],
                         static_cast<std::uint32_t>(snap.value[static_cast<std::size_t>(other)]));
      if (inst.mods.bool_op == sim::BoolOp::kAnd) return v == 0;
      if (inst.mods.bool_op == sim::BoolOp::kOr) return v == 0xFFFFFFFFu;
      return false;  // XOR always depends on both sides
    }
    case Opcode::kLOP3: {
      if (inst.num_src < 3) return false;
      std::uint8_t lut = inst.mods.lut;
      if (inst.num_src > 3) {
        if (snap.tainted[3] || !snap.known[3]) return false;
        lut = static_cast<std::uint8_t>(
            ApplyIntMods32(inst.src[3], static_cast<std::uint32_t>(snap.value[3])));
      }
      const int tainted_count =
          (snap.tainted[0] ? 1 : 0) + (snap.tainted[1] ? 1 : 0) + (snap.tainted[2] ? 1 : 0);
      if (tainted_count != 1) return false;
      const int ti = snap.tainted[0] ? 0 : snap.tainted[1] ? 1 : 2;
      const int o1 = ti == 0 ? 1 : 0;
      const int o2 = ti == 2 ? 1 : 2;
      if (!snap.known[static_cast<std::size_t>(o1)] ||
          !snap.known[static_cast<std::size_t>(o2)]) {
        return false;
      }
      std::uint32_t vals[3] = {};
      vals[o1] = ApplyIntMods32(inst.src[static_cast<std::size_t>(o1)],
                                static_cast<std::uint32_t>(snap.value[static_cast<std::size_t>(o1)]));
      vals[o2] = ApplyIntMods32(inst.src[static_cast<std::size_t>(o2)],
                                static_cast<std::uint32_t>(snap.value[static_cast<std::size_t>(o2)]));
      // Per bit: does the lut output depend on the tainted input, given the
      // observed bits of the two clean inputs?  (a=bit2, b=bit1, c=bit0.)
      for (int k = 0; k < 32; ++k) {
        int idx0 = 0;
        int idx1 = 0;
        for (int j = 0; j < 3; ++j) {
          const int bit = j == ti ? 0 : static_cast<int>(vals[j] >> k & 1);
          const int weight = j == 0 ? 4 : j == 1 ? 2 : 1;
          idx0 |= bit * weight;
          idx1 |= (j == ti ? 1 : bit) * weight;
        }
        if (((lut >> idx0) & 1) != ((lut >> idx1) & 1)) return false;
      }
      return true;
    }
    case Opcode::kIMAD: {
      // a*b + c: a tainted multiplicand is absorbed by an untainted zero
      // co-factor (integer only; FP has NaN*0 != 0).
      if (snap.tainted[2]) return false;
      if (snap.tainted[0] && snap.tainted[1]) return false;
      const int ti = snap.tainted[0] ? 0 : snap.tainted[1] ? 1 : -1;
      if (ti < 0) return false;
      const int co = 1 - ti;
      if (co >= inst.num_src || !snap.known[static_cast<std::size_t>(co)]) return false;
      return ApplyIntMods32(inst.src[static_cast<std::size_t>(co)],
                            static_cast<std::uint32_t>(snap.value[static_cast<std::size_t>(co)])) == 0;
    }
    case Opcode::kPSETP:
    case Opcode::kPLOP3: {
      // At most three boolean inputs: brute-force the tainted ones and check
      // that both outputs are constant.
      std::uint8_t lut = inst.mods.lut;
      if (inst.opcode == Opcode::kPLOP3 && inst.num_src > 3) {
        if (snap.tainted[3] || !snap.known[3]) return false;
        lut = static_cast<std::uint8_t>(
            ApplyIntMods32(inst.src[3], static_cast<std::uint32_t>(snap.value[3])));
      }
      bool in[3];
      bool tainted_in[3];
      for (int i = 0; i < 3; ++i) {
        const bool present =
            i < inst.num_src &&
            inst.src[static_cast<std::size_t>(i)].kind == sim::Operand::Kind::kPred;
        in[i] = present ? (snap.value[static_cast<std::size_t>(i)] != 0) !=
                              inst.src[static_cast<std::size_t>(i)].negate
                        : true;
        tainted_in[i] = present && snap.tainted[static_cast<std::size_t>(i)];
      }
      bool first = true;
      bool out1 = false;
      bool out2 = false;
      for (int m = 0; m < 8; ++m) {
        bool skip = false;
        bool v[3];
        for (int i = 0; i < 3; ++i) {
          v[i] = (m >> i & 1) != 0;
          if (!tainted_in[i] && v[i] != in[i]) skip = true;
        }
        if (skip) continue;
        bool r1 = false;
        bool r2 = false;
        if (inst.opcode == Opcode::kPSETP) {
          r1 = ApplyBoolOp(inst.mods.bool_op, v[0], v[1]) && v[2];
          r2 = !r1 && v[2];
        } else {
          const int index = (v[0] ? 4 : 0) | (v[1] ? 2 : 0) | (v[2] ? 1 : 0);
          r1 = (lut >> index & 1) != 0;
          r2 = !r1;
        }
        if (first) {
          out1 = r1;
          out2 = r2;
          first = false;
        } else if (r1 != out1 || r2 != out2) {
          return false;
        }
      }
      return !first;
    }
    default:
      return false;
  }
}

// ---- bookkeeping ----------------------------------------------------------

void TaintTracker::CountTainted() {
  if (!counted_tainted_) {
    counted_tainted_ = true;
    ++rec_.tainted_instructions;
  }
}

std::int16_t TaintTracker::TouchNode(const sim::InstrEvent& event) {
  const std::int16_t node = NodeFor(event.static_index, event.instr.opcode);
  if (node >= 0) ++rec_.nodes[static_cast<std::size_t>(node)].events;
  return node;
}

std::int16_t TaintTracker::NodeFor(std::uint32_t static_index, sim::Opcode opcode) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(opcode) << 32) | static_index;
  const auto it = node_ids_.find(key);
  if (it != node_ids_.end()) return it->second;
  if (rec_.nodes.size() >= kMaxPropagationNodes) {
    rec_.graph_truncated = true;
    return kNoProducer;
  }
  const auto id = static_cast<std::int16_t>(rec_.nodes.size());
  rec_.nodes.push_back(PropagationNode{static_index, opcode, 0});
  node_ids_.emplace(key, id);
  return id;
}

void TaintTracker::AddEdge(std::int16_t from, std::int16_t to) {
  if (from < 0 || to < 0 || from == to) return;
  const std::uint32_t key = (static_cast<std::uint32_t>(from) << 16) |
                            static_cast<std::uint32_t>(to);
  const auto it = edge_ids_.find(key);
  if (it != edge_ids_.end()) {
    ++rec_.edges[it->second].count;
    return;
  }
  if (rec_.edges.size() >= kMaxPropagationEdges) {
    rec_.graph_truncated = true;
    return;
  }
  edge_ids_.emplace(key, rec_.edges.size());
  rec_.edges.push_back(PropagationEdge{static_cast<std::uint32_t>(from),
                                       static_cast<std::uint32_t>(to), 1});
}

void TaintTracker::RecordMask(MaskingKind kind, const sim::InstrEvent& event) {
  if (kind == MaskingKind::kOverwrite) {
    ++rec_.overwrite_masks;
  } else {
    ++rec_.absorb_masks;
  }
  if (rec_.masking_sample.size() < kMaxMaskingSample) {
    rec_.masking_sample.push_back(MaskingEvent{kind, event.instr.opcode,
                                               event.static_index,
                                               rec_.dynamic_instructions});
  }
}

void TaintTracker::HarvestLaunchEnd() {
  // A launch that aborted mid-step (trap, watchdog) leaves staged snapshots
  // without their matching after-event; if any of them had tainted sources
  // in flight, the abort itself may be fault-induced.
  for (const LaneSnapshot& s : staged_) {
    if (s.valid && !s.consumed && s.sources_tainted) {
      if (s.addr_tainted) {
        rec_.address_divergence = true;
      } else {
        rec_.control_divergence = true;
      }
    }
  }
  if (armed_) {
    // End of the injected launch: the "live at kernel exit" snapshot.
    taint_.CountLiveThreadTaint(&rec_.live_registers, &rec_.live_predicates);
  }
  if (done_ && taint_.AnyLaunchStateLive()) rec_.any_launch_live_exit = true;
  // Tainted global bytes at a launch boundary are host-observable: the host
  // can read them back and re-enter the corruption through constant banks,
  // beyond the tracer's reach.  Latch before a later launch scrubs them.
  if (done_ && taint_.GlobalBytes() > 0) rec_.host_visible_taint = true;
  taint_.ClearLaunchState();
  ResetStage();
}

}  // namespace nvbitfi::trace
