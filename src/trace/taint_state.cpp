#include "trace/taint_state.h"

namespace nvbitfi::trace {

ThreadTaint& TaintState::Thread(std::uint64_t key) { return threads_[key]; }

const ThreadTaint* TaintState::FindThread(std::uint64_t key) const {
  const auto it = threads_.find(key);
  return it == threads_.end() ? nullptr : &it->second;
}

ThreadTaint* TaintState::FindThread(std::uint64_t key) {
  const auto it = threads_.find(key);
  return it == threads_.end() ? nullptr : &it->second;
}

TaintState::Shadow& TaintState::Of(MemSpace space) {
  switch (space) {
    case MemSpace::kGlobal: return global_;
    case MemSpace::kShared: return shared_;
    case MemSpace::kLocal: break;
  }
  return local_;
}

const TaintState::Shadow& TaintState::Of(MemSpace space) const {
  return const_cast<TaintState*>(this)->Of(space);
}

void TaintState::MarkBytes(MemSpace space, std::uint64_t key, int bytes,
                           std::int16_t producer) {
  Shadow& shadow = Of(space);
  for (int i = 0; i < bytes; ++i) {
    if (!saturated_ && TotalShadowBytes() >= kMaxShadowBytes &&
        shadow.find(key + static_cast<std::uint64_t>(i)) == shadow.end()) {
      saturated_ = true;  // dropped taint; the record stays conservative
    }
    if (saturated_) {
      auto it = shadow.find(key + static_cast<std::uint64_t>(i));
      if (it != shadow.end()) it->second = producer;
      continue;
    }
    shadow[key + static_cast<std::uint64_t>(i)] = producer;
  }
}

bool TaintState::ClearBytes(MemSpace space, std::uint64_t key, int bytes) {
  Shadow& shadow = Of(space);
  bool any = false;
  for (int i = 0; i < bytes; ++i) {
    any = shadow.erase(key + static_cast<std::uint64_t>(i)) > 0 || any;
  }
  return any;
}

bool TaintState::AnyTainted(MemSpace space, std::uint64_t key, int bytes,
                            std::int16_t* producer) const {
  const Shadow& shadow = Of(space);
  for (int i = 0; i < bytes; ++i) {
    const auto it = shadow.find(key + static_cast<std::uint64_t>(i));
    if (it != shadow.end()) {
      if (producer != nullptr) *producer = it->second;
      return true;
    }
  }
  return false;
}

bool TaintState::AnyLaunchStateLive() const {
  if (!shared_.empty() || !local_.empty()) return true;
  for (const auto& [key, taint] : threads_) {
    if (taint.Any()) return true;
  }
  return false;
}

void TaintState::CountLiveThreadTaint(std::uint32_t* registers,
                                      std::uint32_t* predicates) const {
  std::uint32_t regs = 0;
  std::uint32_t preds = 0;
  for (const auto& [key, taint] : threads_) {
    regs += static_cast<std::uint32_t>(taint.gpr.count());
    preds += static_cast<std::uint32_t>(taint.pred.count());
  }
  if (registers != nullptr) *registers = regs;
  if (predicates != nullptr) *predicates = preds;
}

void TaintState::ClearLaunchState() {
  threads_.clear();
  shared_.clear();
  local_.clear();
}

}  // namespace nvbitfi::trace
