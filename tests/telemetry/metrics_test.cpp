#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nvbitfi::telemetry {
namespace {

// The enabled flag is process-global; every test that flips it restores the
// default so ordering cannot leak between tests.
class TelemetryFlagGuard {
 public:
  TelemetryFlagGuard() : previous_(TelemetryEnabled()) {}
  ~TelemetryFlagGuard() { SetTelemetryEnabled(previous_); }

 private:
  bool previous_;
};

TEST(Counter, AddAndIncrement) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 4.0});
  ASSERT_EQ(histogram.num_buckets(), 4u);  // 3 finite + implicit +Inf

  histogram.Observe(0.5);  // bucket 0
  histogram.Observe(1.0);  // bucket 0: bounds are inclusive
  histogram.Observe(1.001);  // bucket 1
  histogram.Observe(2.0);  // bucket 1
  histogram.Observe(3.0);  // bucket 2
  histogram.Observe(4.0);  // bucket 2
  histogram.Observe(100.0);  // bucket 3 (+Inf)

  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 2u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  EXPECT_EQ(histogram.BucketCount(3), 1u);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 3.0 + 4.0 + 100.0);
}

TEST(Histogram, ConcurrentObservationsAllLand) {
  Histogram histogram({0.5});
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Observe(i % 2 == 0 ? 0.1 : 1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram.BucketCount(0) + histogram.BucketCount(1), histogram.count());
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  Registry registry;
  Counter& a = registry.GetCounter("nvbitfi_test_total");
  a.Add(7);
  EXPECT_EQ(registry.GetCounter("nvbitfi_test_total").value(), 7u);
  Gauge& g = registry.GetGauge("nvbitfi_test_gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("nvbitfi_test_gauge").value(), 2.5);
  Histogram& h = registry.GetHistogram("nvbitfi_test_hist", {1.0});
  h.Observe(0.5);
  // Bounds are only consulted at creation.
  EXPECT_EQ(registry.GetHistogram("nvbitfi_test_hist", {9.0}).count(), 1u);
  EXPECT_EQ(registry.GetHistogram("nvbitfi_test_hist", {9.0}).bounds().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("nvbitfi_test_hist", {9.0}).bounds()[0], 1.0);
}

TEST(Registry, PhaseHistogramsArePreRegistered) {
  Registry registry;
  for (int i = 0; i < kPhaseCount; ++i) {
    Histogram& histogram = registry.PhaseHistogram(static_cast<Phase>(i));
    EXPECT_GT(histogram.bounds().size(), 4u);
  }
  const Registry::Snapshot snapshot = registry.Capture();
  EXPECT_EQ(snapshot.histograms.size(), static_cast<std::size_t>(kPhaseCount));
}

TEST(Registry, CaptureSnapshotsEverything) {
  Registry registry;
  registry.GetCounter("b_total").Add(2);
  registry.GetCounter("a_total").Add(1);
  registry.GetGauge("g").Set(3.0);
  registry.GetHistogram("h", {1.0}).Observe(0.5);

  const Registry::Snapshot snapshot = registry.Capture();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  // std::map iteration: sorted by name.
  EXPECT_EQ(snapshot.counters[0].first, "a_total");
  EXPECT_EQ(snapshot.counters[1].first, "b_total");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 3.0);
  ASSERT_EQ(snapshot.histograms.size(), static_cast<std::size_t>(kPhaseCount) + 1);
}

TEST(PhaseBreakdown, AccumulatesAndSums) {
  PhaseBreakdown breakdown;
  EXPECT_TRUE(breakdown.Empty());
  EXPECT_DOUBLE_EQ(breakdown.TotalSeconds(), 0.0);

  PhaseAccumulator accumulator;
  accumulator.Add(Phase::kInject, 1.5);
  accumulator.Add(Phase::kInject, 0.5);
  accumulator.Add(Phase::kClassify, 0.25);
  breakdown = accumulator.Capture();

  EXPECT_FALSE(breakdown.Empty());
  EXPECT_DOUBLE_EQ(breakdown.SecondsFor(Phase::kInject), 2.0);
  EXPECT_EQ(breakdown.CountFor(Phase::kInject), 2u);
  EXPECT_DOUBLE_EQ(breakdown.SecondsFor(Phase::kClassify), 0.25);
  EXPECT_DOUBLE_EQ(breakdown.TotalSeconds(), 2.25);

  PhaseBreakdown other;
  other.seconds[static_cast<int>(Phase::kGolden)] = 1.0;
  other.counts[static_cast<int>(Phase::kGolden)] = 1;
  breakdown += other;
  EXPECT_DOUBLE_EQ(breakdown.SecondsFor(Phase::kGolden), 1.0);
  EXPECT_DOUBLE_EQ(breakdown.TotalSeconds(), 3.25);
}

TEST(ScopedPhase, FeedsTheInstalledAccumulator) {
  TelemetryFlagGuard guard;
  SetTelemetryEnabled(true);
  PhaseAccumulator accumulator;
  {
    const ScopedAccumulator install(&accumulator);
    EXPECT_EQ(CurrentAccumulator(), &accumulator);
    { const ScopedPhase span(Phase::kProfile); }
    { const ScopedPhase span(Phase::kProfile); }
  }
  EXPECT_EQ(CurrentAccumulator(), nullptr);
  const PhaseBreakdown breakdown = accumulator.Capture();
  EXPECT_EQ(breakdown.CountFor(Phase::kProfile), 2u);
  EXPECT_GE(breakdown.SecondsFor(Phase::kProfile), 0.0);
}

TEST(ScopedPhase, DisabledTelemetryObservesNothing) {
  TelemetryFlagGuard guard;
  SetTelemetryEnabled(false);
  PhaseAccumulator accumulator;
  {
    const ScopedAccumulator install(&accumulator);
    const ScopedPhase span(Phase::kMerge);
  }
  EXPECT_TRUE(accumulator.Capture().Empty());
}

TEST(ScopedPhase, EnabledStateIsLatchedAtConstruction) {
  TelemetryFlagGuard guard;
  SetTelemetryEnabled(true);
  PhaseAccumulator accumulator;
  {
    const ScopedAccumulator install(&accumulator);
    const ScopedPhase span(Phase::kGolden);
    // Disabling mid-span must not drop the already-armed observation.
    SetTelemetryEnabled(false);
  }
  EXPECT_EQ(accumulator.Capture().CountFor(Phase::kGolden), 1u);
}

TEST(ScopedAccumulator, ScopesNestAndRestore) {
  PhaseAccumulator outer;
  PhaseAccumulator inner;
  EXPECT_EQ(CurrentAccumulator(), nullptr);
  {
    const ScopedAccumulator install_outer(&outer);
    {
      const ScopedAccumulator install_inner(&inner);
      EXPECT_EQ(CurrentAccumulator(), &inner);
    }
    EXPECT_EQ(CurrentAccumulator(), &outer);
  }
  EXPECT_EQ(CurrentAccumulator(), nullptr);
}

TEST(ScopedAccumulator, InstallIsPerThread) {
  PhaseAccumulator accumulator;
  const ScopedAccumulator install(&accumulator);
  PhaseAccumulator* seen = &accumulator;
  std::thread([&seen] { seen = CurrentAccumulator(); }).join();
  EXPECT_EQ(seen, nullptr);
}

TEST(PhaseName, CoversEveryPhase) {
  for (int i = 0; i < kPhaseCount; ++i) {
    EXPECT_FALSE(PhaseName(static_cast<Phase>(i)).empty());
  }
  EXPECT_EQ(PhaseName(Phase::kFastForward), "fast-forward");
  EXPECT_EQ(PhaseName(Phase::kCheckpointRecord), "checkpoint-record");
}

TEST(AtomicAddDouble, AccumulatesUnderContention) {
  std::atomic<double> total{0.0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&total] {
      for (int i = 0; i < 1000; ++i) AtomicAddDouble(total, 0.25);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(total.load(), 1000.0);
}

}  // namespace
}  // namespace nvbitfi::telemetry
