#include "telemetry/trace_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.h"
#include "telemetry/metrics.h"

namespace nvbitfi::telemetry {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

// Parses a trace file the way `nvbitfi analyze --timeline` does: line by
// line, stripping the trailing comma; every line after `[` must be a
// complete JSON object even if the file was never closed.
std::vector<analysis::json::Value> ParseTrace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<analysis::json::Value> events;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      EXPECT_EQ(line, "[");
      first = false;
      continue;
    }
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (line.empty()) continue;
    auto parsed = analysis::json::Value::Parse(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    if (parsed.has_value()) events.push_back(std::move(*parsed));
  }
  return events;
}

TEST(TraceLog, OpenFailsWithError) {
  TraceLog log;
  std::string error;
  EXPECT_FALSE(log.Open("/nonexistent-dir/trace.jsonl", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(log.is_open());
}

TEST(TraceLog, SpanEventsCarryChromeTraceFields) {
  const std::string path = TempPath("trace_span.jsonl");
  TraceLog log;
  std::string error;
  ASSERT_TRUE(log.Open(path, &error)) << error;
  EXPECT_TRUE(log.is_open());
  log.AppendSpan("inject", 100.0, 250.5);
  log.Close();
  EXPECT_FALSE(log.is_open());

  const auto events = ParseTrace(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].GetString("name"), "inject");
  EXPECT_EQ(events[0].GetString("ph"), "X");
  EXPECT_DOUBLE_EQ(events[0].GetDouble("ts"), 100.0);
  EXPECT_DOUBLE_EQ(events[0].GetDouble("dur"), 250.5);
  EXPECT_EQ(events[0].GetUint("pid"), 1u);
}

TEST(TraceLog, InstantEventsCarryArgs) {
  const std::string path = TempPath("trace_instant.jsonl");
  TraceLog log;
  std::string error;
  ASSERT_TRUE(log.Open(path, &error)) << error;
  log.AppendInstant("shard", {{"program", "vector\"add"}, {"begin", "0"}});
  log.Close();

  const auto events = ParseTrace(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].GetString("ph"), "i");
  const analysis::json::Value* args = events[0].Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->GetString("program"), "vector\"add");  // escaped + reparsed
  EXPECT_EQ(args->GetString("begin"), "0");
}

TEST(TraceLog, UnclosedFileIsStillParseable) {
  // Crash-safety: simulate a killed process by never calling Close.  The
  // line-oriented format must still parse every flushed event.
  const std::string path = TempPath("trace_unclosed.jsonl");
  {
    TraceLog log;
    std::string error;
    ASSERT_TRUE(log.Open(path, &error)) << error;
    log.AppendSpan("golden", 0.0, 10.0);
    log.AppendSpan("inject", 10.0, 20.0);
    // TraceLog's destructor closes the FILE but writes no terminator.
  }
  const auto events = ParseTrace(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].GetString("name"), "golden");
  EXPECT_EQ(events[1].GetString("name"), "inject");
}

TEST(TraceLog, ThreadsGetDistinctSmallTids) {
  const std::string path = TempPath("trace_tids.jsonl");
  TraceLog log;
  std::string error;
  ASSERT_TRUE(log.Open(path, &error)) << error;
  log.AppendSpan("main", 0.0, 1.0);
  std::thread([&log] { log.AppendSpan("worker", 1.0, 1.0); }).join();
  log.Close();

  const auto events = ParseTrace(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].GetUint("tid"), events[1].GetUint("tid"));
}

TEST(TraceLog, GlobalInstallReceivesScopedPhaseSpans) {
  const std::string path = TempPath("trace_global.jsonl");
  TraceLog log;
  std::string error;
  ASSERT_TRUE(log.Open(path, &error)) << error;

  ASSERT_EQ(TraceLog::Global(), nullptr);
  TraceLog::SetGlobal(&log);
  const bool was_enabled = TelemetryEnabled();
  SetTelemetryEnabled(true);
  { const ScopedPhase span(Phase::kClassify); }
  SetTelemetryEnabled(was_enabled);
  TraceLog::SetGlobal(nullptr);
  log.Close();

  const auto events = ParseTrace(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].GetString("name"), "classify");
  EXPECT_EQ(events[0].GetString("ph"), "X");
}

TEST(TraceLog, NowMicrosIsMonotonic) {
  const double a = TraceLog::NowMicros();
  const double b = TraceLog::NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace nvbitfi::telemetry
