#include "telemetry/exposition.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/json.h"
#include "telemetry/metrics.h"

namespace nvbitfi::telemetry {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonEscape, RoundTripsThroughTheJsonParser) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t";
  const std::string doc = "{\"k\":\"" + JsonEscape(nasty) + "\"}";
  const auto parsed = analysis::json::Value::Parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetString("k"), nasty);
}

TEST(PrometheusEscapeLabel, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("a\nb"), "a\\nb");
}

TEST(FormatMetricValue, IntegersAndSpecials) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-7.0), "-7");
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(FormatMetricValue(-std::numeric_limits<double>::infinity()), "-Inf");
}

TEST(FormatMetricValue, ShortestFormRoundTrips) {
  for (const double value : {0.1, 0.25, 1e-6, 3.14159265358979, 1e300}) {
    const std::string text = FormatMetricValue(value);
    EXPECT_DOUBLE_EQ(std::stod(text), value) << text;
  }
}

TEST(AppendPrometheusSample, WithAndWithoutLabels) {
  std::string out;
  AppendPrometheusSample(&out, "nvbitfi_up", {}, 1.0);
  EXPECT_EQ(out, "nvbitfi_up 1\n");

  out.clear();
  AppendPrometheusSample(&out, "nvbitfi_shard_completed",
                         {{"campaign", "1"}, {"shard", "a\"b"}}, 5.0);
  EXPECT_EQ(out,
            "nvbitfi_shard_completed{campaign=\"1\",shard=\"a\\\"b\"} 5\n");
}

TEST(PrometheusText, CountersGaugesAndTypeHeaders) {
  Registry registry;
  registry.GetCounter("nvbitfi_campaigns_total").Add(3);
  registry.GetGauge("nvbitfi_active").Set(2.0);

  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE nvbitfi_campaigns_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("nvbitfi_campaigns_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nvbitfi_active gauge\n"), std::string::npos);
  EXPECT_NE(text.find("nvbitfi_active 2\n"), std::string::npos);
}

TEST(PrometheusText, LabeledSeriesShareOneTypeHeader) {
  Registry registry;
  registry.GetCounter("nvbitfi_requests_total{path=\"/status\"}").Add(1);
  registry.GetCounter("nvbitfi_requests_total{path=\"/metrics\"}").Add(2);

  const std::string text = PrometheusText(registry);
  // One header for the base name, both series present with their labels.
  std::size_t headers = 0;
  for (std::size_t pos = text.find("# TYPE nvbitfi_requests_total counter");
       pos != std::string::npos;
       pos = text.find("# TYPE nvbitfi_requests_total counter", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("nvbitfi_requests_total{path=\"/metrics\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("nvbitfi_requests_total{path=\"/status\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusText, HistogramsAreCumulativeWithLeLabels) {
  Registry registry;
  Histogram& histogram = registry.GetHistogram("nvbitfi_latency_seconds", {1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(9.0);

  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE nvbitfi_latency_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("nvbitfi_latency_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("nvbitfi_latency_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("nvbitfi_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nvbitfi_latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("nvbitfi_latency_seconds_sum 11\n"), std::string::npos);
}

TEST(PrometheusText, LabeledHistogramSplicesLeIntoLabelSet) {
  Registry registry;
  registry.PhaseHistogram(Phase::kInject).Observe(0.5);

  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE nvbitfi_phase_seconds histogram\n"), std::string::npos);
  // Bucket samples carry both the phase label and the spliced le label.
  EXPECT_NE(text.find("nvbitfi_phase_seconds_bucket{phase=\"inject\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("nvbitfi_phase_seconds_count{phase=\"inject\"} 1\n"),
            std::string::npos);
}

TEST(RegistryJson, ParsesAndCarriesEveryMetric) {
  Registry registry;
  registry.GetCounter("nvbitfi_campaigns_total").Add(2);
  registry.GetGauge("nvbitfi_heartbeat_age").Set(1.25);
  Histogram& histogram = registry.GetHistogram("nvbitfi_latency", {1.0});
  histogram.Observe(0.5);
  histogram.Observe(2.0);

  const auto parsed = analysis::json::Value::Parse(RegistryJson(registry));
  ASSERT_TRUE(parsed.has_value());
  const analysis::json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetUint("nvbitfi_campaigns_total"), 2u);
  const analysis::json::Value* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->GetDouble("nvbitfi_heartbeat_age"), 1.25);
  const analysis::json::Value* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const analysis::json::Value* latency = histograms->Find("nvbitfi_latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->GetUint("count"), 2u);
  EXPECT_DOUBLE_EQ(latency->GetDouble("sum"), 2.5);
  const analysis::json::Value* counts = latency->Find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->size(), 2u);  // one finite bucket + the +Inf bucket
}

TEST(RegistryJson, MetricNamesWithLabelsAreEscapedKeys) {
  Registry registry;
  registry.GetCounter("nvbitfi_requests_total{path=\"/status\"}").Increment();
  const auto parsed = analysis::json::Value::Parse(RegistryJson(registry));
  ASSERT_TRUE(parsed.has_value());
  const analysis::json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetUint("nvbitfi_requests_total{path=\"/status\"}"), 1u);
}

}  // namespace
}  // namespace nvbitfi::telemetry
