#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>

#include "core/campaign.h"

namespace nvbitfi::workloads {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<WorkloadEntry> {};

TEST_P(WorkloadSuite, GoldenRunIsClean) {
  const WorkloadEntry& entry = GetParam();
  const fi::CampaignRunner runner(*entry.program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  EXPECT_EQ(golden.exit_code, 0);
  EXPECT_FALSE(golden.crashed);
  EXPECT_FALSE(golden.timed_out);
  EXPECT_FALSE(golden.app_check_failed);
  EXPECT_TRUE(golden.cuda_errors.empty());
  EXPECT_TRUE(golden.dmesg.empty());
  EXPECT_FALSE(golden.stdout_text.empty());
  EXPECT_FALSE(golden.output_file.empty());
  EXPECT_GT(golden.thread_instructions, 0u);
}

TEST_P(WorkloadSuite, KernelCountsMatchTableIV) {
  const WorkloadEntry& entry = GetParam();
  const fi::CampaignRunner runner(*entry.program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  EXPECT_EQ(golden.static_kernels,
            static_cast<std::uint64_t>(entry.table4_counts.static_kernels));
  EXPECT_EQ(golden.dynamic_kernels,
            static_cast<std::uint64_t>(entry.table4_counts.dynamic_kernels));
}

TEST_P(WorkloadSuite, GoldenRunIsDeterministic) {
  const WorkloadEntry& entry = GetParam();
  const fi::CampaignRunner runner(*entry.program);
  const fi::RunArtifacts a = runner.RunGolden(sim::DeviceProps{});
  const fi::RunArtifacts b = runner.RunGolden(sim::DeviceProps{});
  EXPECT_EQ(a.stdout_text, b.stdout_text);
  EXPECT_EQ(a.output_file, b.output_file);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.thread_instructions, b.thread_instructions);
}

TEST_P(WorkloadSuite, CheckerAcceptsGoldenAgainstItself) {
  const WorkloadEntry& entry = GetParam();
  const fi::CampaignRunner runner(*entry.program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  EXPECT_FALSE(entry.program->sdc_checker().IsSdc(golden, golden));
  const fi::Classification c =
      fi::Classify(golden, golden, entry.program->sdc_checker());
  EXPECT_EQ(c.outcome, fi::Outcome::kMasked);
}

TEST_P(WorkloadSuite, CheckerDetectsGrossCorruption) {
  const WorkloadEntry& entry = GetParam();
  const fi::CampaignRunner runner(*entry.program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  fi::RunArtifacts corrupted = golden;
  ASSERT_GE(corrupted.output_file.size(), 4u);
  // Overwrite one float with a large value (well past any tolerance).
  const float bad = 1e30f;
  std::memcpy(corrupted.output_file.data(), &bad, 4);
  EXPECT_TRUE(entry.program->sdc_checker().IsSdc(golden, corrupted));
}

TEST_P(WorkloadSuite, ProfilePopulationMatchesExecution) {
  const WorkloadEntry& entry = GetParam();
  const fi::CampaignRunner runner(*entry.program);
  const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  const fi::ProgramProfile profile =
      runner.RunProfiler(fi::ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  // Exact profiling counts exactly the executed (guard-true) instructions.
  EXPECT_EQ(profile.TotalInstructions(), golden.thread_instructions);
  EXPECT_EQ(profile.DynamicKernelCount(), golden.dynamic_kernels);
  EXPECT_EQ(profile.StaticKernelCount(), golden.static_kernels);
  EXPECT_FALSE(profile.ExecutedOpcodes().empty());
}

std::string EntryName(const ::testing::TestParamInfo<WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, WorkloadSuite,
                         ::testing::ValuesIn(AllWorkloads()), EntryName);

TEST(WorkloadRegistry, FindByName) {
  EXPECT_NE(FindWorkload("350.md"), nullptr);
  EXPECT_EQ(FindWorkload("350.md")->name(), "350.md");
  EXPECT_EQ(FindWorkload("999.nope"), nullptr);
  EXPECT_EQ(AllWorkloads().size(), 15u);
}

TEST(WorkloadRegistry, TableIVTotals) {
  // Cross-check the registry against the paper's Table IV totals.
  int static_total = 0, dynamic_total = 0;
  for (const WorkloadEntry& entry : AllWorkloads()) {
    static_total += entry.table4_counts.static_kernels;
    dynamic_total += entry.table4_counts.dynamic_kernels;
  }
  EXPECT_EQ(static_total, 2 + 3 + 2 + 3 + 100 + 7 + 116 + 22 + 16 + 71 + 69 + 26 + 1 + 22 + 50);
  EXPECT_EQ(dynamic_total, 101 + 900 + 2 + 53 + 7050 + 187 + 12528 + 2027 + 3502 +
                               27692 + 26890 + 8010 + 1000 + 11999 + 10069);
}

}  // namespace
}  // namespace nvbitfi::workloads
