// Golden-output stability: the exact stdout of every proxy program is pinned.
// A change here means the workload's numerical behaviour changed, which
// silently invalidates every recorded experiment — bump EXPERIMENTS.md when
// updating these strings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>

#include "core/campaign.h"
#include "workloads/workloads.h"

namespace nvbitfi::workloads {
namespace {

TEST(GoldenStability, StdoutIsPinned) {
  const std::map<std::string, std::string> expected = {
      {"303.ostencil", "303.ostencil: total heat 6.400e+03 after 100 steps\n"},
      {"304.olbm", "304.olbm: lattice mass 3.026e+02 after 300 steps\n"},
      {"314.omriq", "314.omriq: |Q|^2 = 9.97e+04 over 64 points\n"},
      {"354.cg", "354.cg: |x|^2 3.567e+04, converged 0\n"},
      {"360.ilbdc", "360.ilbdc: mass 2.580e+02 after 1000 steps\n"},
  };
  for (const auto& [name, stdout_text] : expected) {
    const fi::TargetProgram* program = FindWorkload(name);
    ASSERT_NE(program, nullptr) << name;
    const fi::CampaignRunner runner(*program);
    const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
    EXPECT_EQ(golden.stdout_text, stdout_text) << name;
  }
}

TEST(GoldenStability, OutputsAreFiniteAndBounded) {
  // Every program's output-file floats must be finite and within a sane
  // magnitude — guards against silent numerical blow-ups in the kernels.
  for (const WorkloadEntry& entry : AllWorkloads()) {
    const fi::CampaignRunner runner(*entry.program);
    const fi::RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
    ASSERT_EQ(golden.output_file.size() % 4, 0u) << entry.program->name();
    const std::size_t count = golden.output_file.size() / 4;
    for (std::size_t i = 0; i < count; ++i) {
      float v = 0;
      std::memcpy(&v, golden.output_file.data() + 4 * i, 4);
      ASSERT_TRUE(std::isfinite(v))
          << entry.program->name() << " output[" << i << "]";
      ASSERT_LT(std::abs(v), 1e9f) << entry.program->name() << " output[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace nvbitfi::workloads
