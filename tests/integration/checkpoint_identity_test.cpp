// Checkpoint bit-identity acceptance test: for every Table IV workload, a
// transient campaign with --checkpoints produces exactly the outcome
// distribution, per-injection CSV, and stored records that --no-checkpoints
// does on the same seed.  Checkpointing may only change wall-clock time.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/result_store.h"
#include "core/campaign.h"
#include "core/report.h"
#include "workloads/workloads.h"

namespace nvbitfi::fi {
namespace {

TransientCampaignConfig SmallConfig(bool checkpoints) {
  TransientCampaignConfig config;
  config.seed = 424242;
  config.num_injections = 4;
  config.profiling = ProfilerTool::Mode::kApproximate;
  config.checkpoints = checkpoints;
  return config;
}

class CheckpointIdentity : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(CheckpointIdentity, OutcomesAndCsvMatchUncheckpointedCampaign) {
  const workloads::WorkloadEntry& entry = GetParam();
  const CampaignRunner runner(*entry.program);

  const TransientCampaignResult on = runner.RunTransientCampaign(SmallConfig(true));
  const TransientCampaignResult off = runner.RunTransientCampaign(SmallConfig(false));

  EXPECT_EQ(on.counts.masked, off.counts.masked);
  EXPECT_EQ(on.counts.sdc, off.counts.sdc);
  EXPECT_EQ(on.counts.due, off.counts.due);
  EXPECT_EQ(on.counts.potential_due, off.counts.potential_due);
  EXPECT_EQ(on.never_activated, off.never_activated);
  EXPECT_EQ(on.trivially_masked, off.trivially_masked);
  EXPECT_EQ(on.golden.cycles, off.golden.cycles);
  EXPECT_EQ(on.TotalInjectionCycles(), off.TotalInjectionCycles());

  // The per-injection CSV covers every persisted field: site parameters,
  // injection record, classification, and run cycles.
  EXPECT_EQ(TransientCampaignCsv(on), TransientCampaignCsv(off));

  // The checkpointed side actually replayed on multi-launch programs (a
  // single-launch program has no prefix to skip, so nothing to save).
  EXPECT_TRUE(on.checkpoints_used);
  if (on.golden.dynamic_kernels > 1) {
    EXPECT_GT(on.checkpointed_runs, 0u);
  }
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CheckpointIdentity,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

// Record-level identity through the persistence layer: two stores written by
// checkpointed and uncheckpointed campaigns differ only in the header's
// `checkpoints` flag — every record line is byte-identical.
TEST(CheckpointIdentity, StoredRecordsAreByteIdentical) {
  const workloads::WorkloadEntry& entry = workloads::AllWorkloads().front();
  const CampaignRunner runner(*entry.program);

  auto run_stored = [&](bool checkpoints, const std::string& path) {
    std::remove(path.c_str());
    TransientCampaignConfig config = SmallConfig(checkpoints);
    const RunArtifacts golden = runner.Golden(config.device);
    RunArtifacts profiling;
    const ProgramProfile profile =
        runner.Profile(config.profiling, config.device, &profiling);
    const analysis::StoreMeta meta = analysis::TransientStoreMeta(
        entry.program->name(), config, golden, profiling.cycles, profile);
    std::string error;
    auto store = analysis::ResultStore::Open(path, meta, /*resume=*/false, &error);
    ASSERT_NE(store, nullptr) << error;
    config.on_run_complete = [&](std::size_t i, const InjectionRun& run) {
      store->AppendTransient(i, run, nullptr);
    };
    runner.RunTransientCampaign(config);
  };

  const std::string on_path = ::testing::TempDir() + "/ckpt_identity_on.jsonl";
  const std::string off_path = ::testing::TempDir() + "/ckpt_identity_off.jsonl";
  run_stored(true, on_path);
  run_stored(false, off_path);

  auto records_after_header = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::string header;
    std::getline(in, header);
    std::ostringstream rest;
    rest << in.rdbuf();
    return rest.str();
  };
  const std::string on_records = records_after_header(on_path);
  EXPECT_FALSE(on_records.empty());
  EXPECT_EQ(on_records, records_after_header(off_path));
}

}  // namespace
}  // namespace nvbitfi::fi
