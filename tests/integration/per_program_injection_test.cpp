// Injection smoke test across the whole Table IV suite: a small campaign on
// every program, checking the end-to-end invariants the benches rely on.
#include <gtest/gtest.h>

#include <cctype>

#include "core/campaign.h"
#include "workloads/workloads.h"

namespace nvbitfi::fi {
namespace {

class ProgramInjection : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(ProgramInjection, SmallCampaignBehaves) {
  const workloads::WorkloadEntry& entry = GetParam();
  const CampaignRunner runner(*entry.program);
  TransientCampaignConfig config;
  config.seed = 99;
  config.num_injections = 5;
  config.profiling = ProfilerTool::Mode::kApproximate;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);

  EXPECT_EQ(result.counts.total(), 5u);
  for (const InjectionRun& run : result.injections) {
    // Sites come from the profile and carry valid Table II parameters.
    EXPECT_FALSE(run.params.kernel_name.empty());
    EXPECT_GE(run.params.destination_register, 0.0);
    EXPECT_LT(run.params.destination_register, 1.0);

    // Activated injections record a concrete architectural fault.
    if (run.record.activated && run.record.corrupted) {
      EXPECT_GE(run.record.target_register, 0);
      EXPECT_GE(run.record.sm_id, 0);
      EXPECT_GE(run.record.lane_id, 0);
      EXPECT_LT(run.record.lane_id, 32);
    }

    // DUE classifications must be backed by a DUE symptom; masked runs with
    // no anomaly must match the golden output under the program's checker.
    if (run.classification.outcome == Outcome::kDue) {
      EXPECT_TRUE(run.artifacts.timed_out || run.artifacts.crashed ||
                  run.artifacts.exit_code != 0);
    }
    if (run.classification.outcome == Outcome::kMasked) {
      EXPECT_FALSE(
          entry.program->sdc_checker().IsSdc(result.golden, run.artifacts));
    }
  }
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ProgramInjection,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

}  // namespace
}  // namespace nvbitfi::fi
