// Bit-granular static-oracle soundness against dynamic ground truth, on all
// bundled workloads: every draw the bit-liveness oracle rules out — the
// whole target statically dead, or the drawn flip mask touching only dead
// bits — must classify as Masked when actually executed, and the traced
// (TaintTracker) campaign must agree that the fault never escaped.
//
// The outcome contract (bit-dead => Masked) is the load-bearing one: it is
// what lets --static-prune synthesize Masked records without running.  The
// taint cross-check is asserted at the granularity the tracker actually
// has: register-granular taint dies with its launch, so a register-dead
// target must be fully_masked; a flip on dead BITS of a live register may
// legitimately carry whole-register taint into memory even though no
// observable value changes, so there the tracker is only required to be
// consistent (fully_masked => Masked), which BuildTransientPropagation
// already audits.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "analysis/propagation.h"
#include "core/campaign.h"
#include "staticanalysis/static_site.h"
#include "trace/taint_tracker.h"
#include "workloads/workloads.h"

namespace nvbitfi::staticanalysis {
namespace {

class BitPruneSoundness : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(BitPruneSoundness, BitDeadDrawsAreMaskedAndTaintConsistent) {
  const workloads::WorkloadEntry& entry = GetParam();
  const fi::TargetProgram& program = *entry.program;
  const StaticSiteAnalysis analysis =
      StaticSiteAnalysis::ForProgram(program, sim::DeviceProps{});

  const fi::CampaignRunner runner(program);
  fi::TransientCampaignConfig config;
  config.seed = 20260808;
  config.num_injections = 12;
  config.trace = true;
  config.profiling = fi::ProfilerTool::Mode::kApproximate;
  config.tool_factory = [](std::size_t, const fi::TransientFaultParams& params) {
    return std::make_unique<trace::TaintTracker>(params);
  };
  const fi::TransientCampaignResult result = runner.RunTransientCampaign(config);

  std::uint64_t bit_dead_draws = 0;
  for (const fi::InjectionRun& run : result.injections) {
    if (run.trivially_masked || !run.record.activated) continue;
    const fi::StaticSiteVerdict verdict = analysis.EvaluateStatic(
        run.params.kernel_name, run.record.static_index,
        run.params.destination_register, run.params.bit_flip_model,
        run.params.bit_pattern_value);
    if (!verdict.resolved) continue;
    if (!verdict.statically_dead && !verdict.flip_dead) continue;
    ++bit_dead_draws;
    EXPECT_EQ(run.classification.outcome, fi::Outcome::kMasked)
        << run.params.kernel_name << " static index " << run.record.static_index
        << ": a statically bit-dead draw classified as "
        << fi::OutcomeName(run.classification.outcome);
    ASSERT_TRUE(run.propagation.has_value());
    if (verdict.register_dead) {
      // The whole target register is dead: its taint can never be consumed,
      // so it dies with the launch and the tracker must report full masking.
      EXPECT_TRUE(run.propagation->fully_masked)
          << run.params.kernel_name << " static index " << run.record.static_index
          << ": register-dead draw escaped the taint tracker";
    }
  }
  // The tracker's own one-sided contract over the whole campaign.
  const analysis::PropagationBreakdown breakdown =
      analysis::BuildTransientPropagation(result);
  EXPECT_EQ(breakdown.consistency_violations, 0u);
  RecordProperty("bit_dead_draws", static_cast<int>(bit_dead_draws));
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  std::string name = info.param.program->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, BitPruneSoundness,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

}  // namespace
}  // namespace nvbitfi::staticanalysis
