// Adaptive-campaign acceptance tests: the scheduler's outputs must be
// bit-reproducible however the campaign is executed.  For every Table IV
// workload, an adaptive store written with 4 workers is byte-identical to the
// serial one; slicing rounds across shard jobs and merging (what `nvbitfi
// serve` does) reproduces the local store byte-for-byte; and a campaign
// killed mid-round resumes from its persisted schedule to the identical file.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/merge.h"
#include "analysis/result_store.h"
#include "common/strings.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/adaptive_runner.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {
namespace {

fi::CampaignSpec SpecFor(const std::string& program,
                         const std::string& static_mode = "off") {
  fi::CampaignSpec spec;
  spec.program = program;
  spec.seed = 424242;
  spec.num_injections = 12;  // the pool
  spec.adaptive = true;
  spec.adaptive_confidence = 0.90;
  spec.adaptive_target_width = 0.25;
  spec.adaptive_round_size = 6;
  spec.adaptive_min_per_stratum = 1;
  spec.static_mode = static_mode;
  return spec;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

fi::RunCache& Cache() {
  static fi::RunCache cache;
  return cache;
}

std::string SafeName(const std::string& program) {
  std::string name = program;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class AdaptiveIdentity : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(AdaptiveIdentity, WorkerCountDoesNotPerturbStoreBytes) {
  const std::string program = GetParam().program->name();
  const std::string tag = SafeName(program);

  AdaptiveJob serial;
  serial.spec = SpecFor(program);
  serial.store_path = TempPath("ai_" + tag + "_w1.jsonl");
  serial.workers = 1;
  const AdaptiveOutcome serial_outcome = RunAdaptiveJob(serial, &Cache());
  ASSERT_TRUE(serial_outcome.ok) << serial_outcome.error;
  EXPECT_GT(serial_outcome.scheduled, 0u);
  EXPECT_GT(serial_outcome.rounds, 0u);

  AdaptiveJob parallel = serial;
  parallel.store_path = TempPath("ai_" + tag + "_w4.jsonl");
  parallel.workers = 4;
  const AdaptiveOutcome parallel_outcome = RunAdaptiveJob(parallel, &Cache());
  ASSERT_TRUE(parallel_outcome.ok) << parallel_outcome.error;

  const std::string serial_bytes = ReadAll(serial.store_path);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, ReadAll(parallel.store_path));
}

// The masking-score strata + bit-granular pruning variant of the same
// contract: a --static-prune adaptive campaign (strata carry the live/mXX
// masking-score labels and importance weights, bit-dead draws synthesize
// Masked records without running) must still be byte-reproducible across
// worker counts.
TEST_P(AdaptiveIdentity, PruneWorkerCountDoesNotPerturbStoreBytes) {
  const std::string program = GetParam().program->name();
  const std::string tag = SafeName(program);

  AdaptiveJob serial;
  serial.spec = SpecFor(program, "prune");
  serial.store_path = TempPath("aip_" + tag + "_w1.jsonl");
  serial.workers = 1;
  const AdaptiveOutcome serial_outcome = RunAdaptiveJob(serial, &Cache());
  ASSERT_TRUE(serial_outcome.ok) << serial_outcome.error;
  EXPECT_GT(serial_outcome.scheduled, 0u);

  AdaptiveJob parallel = serial;
  parallel.store_path = TempPath("aip_" + tag + "_w4.jsonl");
  parallel.workers = 4;
  const AdaptiveOutcome parallel_outcome = RunAdaptiveJob(parallel, &Cache());
  ASSERT_TRUE(parallel_outcome.ok) << parallel_outcome.error;

  const std::string serial_bytes = ReadAll(serial.store_path);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, ReadAll(parallel.store_path));
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  return SafeName(info.param.program->name());
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, AdaptiveIdentity,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

// The coordinator's execution model, inline: plan rounds centrally, deal each
// round's indexes out as slice jobs, feed the slice outcomes back, merge all
// slices plus the schedule.  The merged store must be byte-identical to the
// single-process adaptive store.  Runs with bit-granular pruning on: slice
// workers synthesize the same Masked records for bit-dead draws as the
// single process does.
TEST(AdaptiveIdentity, SlicedRoundsMergeByteIdenticalToLocalStore) {
  const std::string program = workloads::AllWorkloads().front().program->name();
  const fi::CampaignSpec spec = SpecFor(program, "prune");

  AdaptiveJob local;
  local.spec = spec;
  local.store_path = TempPath("ai_slices_local.jsonl");
  ASSERT_TRUE(RunAdaptiveJob(local, &Cache()).ok);

  std::string error;
  std::optional<AdaptiveSetup> setup = BuildAdaptiveSetup(spec, &Cache(), &error);
  ASSERT_TRUE(setup.has_value()) << error;
  adaptive::AdaptiveEngine engine(setup->stratification, setup->policy);

  std::vector<adaptive::RoundRecord> rounds;
  std::vector<std::string> slice_paths;
  while (true) {
    const adaptive::RoundRecord round = engine.PlanRound();
    if (round.indexes.empty()) break;
    rounds.push_back(round);

    // Deal the round out as two slices, run each as its own job.
    const std::vector<fi::ShardRange> plan = fi::PlanShards(round.indexes.size(), 2);
    std::vector<std::string> round_paths;
    for (const fi::ShardRange& range : plan) {
      AdaptiveSliceJob job;
      job.spec = spec;
      for (std::size_t i = range.begin; i < range.end; ++i) {
        job.indexes.push_back(static_cast<std::size_t>(round.indexes[i]));
      }
      job.store_path = TempPath(Format("ai_slice_r%zu_%zu.jsonl", rounds.size(),
                                       range.begin));
      const AdaptiveSliceOutcome outcome = RunAdaptiveSlice(job, &Cache());
      ASSERT_TRUE(outcome.ok) << outcome.error;
      round_paths.push_back(job.store_path);
    }

    // Observe the slice outcomes exactly as the coordinator does: from the
    // slice stores, never from in-memory results.
    for (const std::string& path : round_paths) {
      const std::optional<analysis::LoadedStore> loaded =
          analysis::LoadResultStore(path, &error);
      ASSERT_TRUE(loaded.has_value()) << error;
      for (const auto& [index, run] : loaded->transient) {
        engine.Observe(index, run.classification);
      }
      slice_paths.push_back(path);
    }
  }

  const std::string merged = TempPath("ai_slices_merged.jsonl");
  const std::optional<analysis::MergeSummary> summary =
      analysis::MergeAdaptiveSliceStores(slice_paths, rounds, merged, &error);
  ASSERT_TRUE(summary.has_value()) << error;

  const std::string merged_bytes = ReadAll(merged);
  ASSERT_FALSE(merged_bytes.empty());
  EXPECT_EQ(merged_bytes, ReadAll(local.store_path));
}

// SIGINT/SIGKILL mid-campaign: the persisted rounds are adopted verbatim on
// resume and the completed store is byte-identical to an uninterrupted run.
// Runs with bit-granular pruning on, so the masking-score strata persisted
// in the store header are exercised through the resume path too.
TEST(AdaptiveIdentity, KilledCampaignResumesToIdenticalStore) {
  const std::string program = workloads::AllWorkloads().front().program->name();
  fi::CampaignSpec spec = SpecFor(program, "prune");
  spec.num_injections = 16;
  spec.adaptive_target_width = 0.20;

  AdaptiveJob canonical;
  canonical.spec = spec;
  canonical.store_path = TempPath("ai_kill_canonical.jsonl");
  const AdaptiveOutcome canonical_outcome = RunAdaptiveJob(canonical, &Cache());
  ASSERT_TRUE(canonical_outcome.ok) << canonical_outcome.error;
  ASSERT_GT(canonical_outcome.scheduled, 4u);

  AdaptiveJob victim;
  victim.spec = spec;
  victim.store_path = TempPath("ai_kill_victim.jsonl");
  std::atomic<bool> cancel{false};
  victim.cancel = &cancel;
  victim.on_progress = [&](std::size_t completed, std::size_t) {
    if (completed >= 3) cancel.store(true);
  };
  const AdaptiveOutcome killed = RunAdaptiveJob(victim, &Cache());
  ASSERT_TRUE(killed.cancelled);

  AdaptiveJob replacement;
  replacement.spec = spec;
  replacement.store_path = victim.store_path;
  replacement.resume = true;
  const AdaptiveOutcome resumed = RunAdaptiveJob(replacement, &Cache());
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_GT(resumed.resumed_records, 0u);
  EXPECT_EQ(resumed.scheduled, canonical_outcome.scheduled);

  EXPECT_EQ(ReadAll(victim.store_path), ReadAll(canonical.store_path));
}

}  // namespace
}  // namespace nvbitfi::service
