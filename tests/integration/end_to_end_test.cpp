// End-to-end integration: the full Figure 1 pipeline on real workloads.
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "workloads/workloads.h"

namespace nvbitfi::fi {
namespace {

TEST(EndToEnd, OstencilTransientCampaign) {
  const TargetProgram* program = workloads::FindWorkload("303.ostencil");
  const CampaignRunner runner(*program);
  TransientCampaignConfig config;
  config.seed = 1234;
  config.num_injections = 15;
  const TransientCampaignResult result = runner.RunTransientCampaign(config);

  EXPECT_EQ(result.counts.total(), 15u);
  // The campaign must produce a mix of outcomes, with activations recorded.
  int activated = 0;
  for (const InjectionRun& run : result.injections) {
    if (run.record.activated) ++activated;
  }
  EXPECT_GT(activated, 10);
  EXPECT_GT(result.counts.masked, 0u);
}

TEST(EndToEnd, CampaignIsFullyReproducible) {
  const TargetProgram* program = workloads::FindWorkload("360.ilbdc");
  const CampaignRunner runner(*program);
  TransientCampaignConfig config;
  config.seed = 42;
  config.num_injections = 6;
  const TransientCampaignResult a = runner.RunTransientCampaign(config);
  const TransientCampaignResult b = runner.RunTransientCampaign(config);
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    EXPECT_EQ(a.injections[i].params, b.injections[i].params);
    EXPECT_EQ(a.injections[i].artifacts.stdout_text, b.injections[i].artifacts.stdout_text);
    EXPECT_EQ(a.injections[i].artifacts.output_file, b.injections[i].artifacts.output_file);
    EXPECT_EQ(a.injections[i].classification, b.injections[i].classification);
  }
}

TEST(EndToEnd, SingleInjectionIsReproducibleFromItsParameters) {
  // The paper's workflow: a campaign selects a fault, and the same parameter
  // file replays it exactly.
  const TargetProgram* program = workloads::FindWorkload("314.omriq");
  const CampaignRunner runner(*program);
  const RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);

  Rng rng(9);
  const auto params = SelectTransientFault(profile, ArchStateId::kGGp,
                                           BitFlipModel::kFlipTwoBits, rng);
  ASSERT_TRUE(params.has_value());

  // Serialise to the parameter-file format and replay from the parse.
  const auto replayed = TransientFaultParams::Parse(params->Serialize());
  ASSERT_TRUE(replayed.has_value());

  TransientInjectorTool first(*params);
  const RunArtifacts run1 = runner.Execute(&first, sim::DeviceProps{}, 0);
  TransientInjectorTool second(*replayed);
  const RunArtifacts run2 = runner.Execute(&second, sim::DeviceProps{}, 0);

  EXPECT_EQ(first.record().activated, second.record().activated);
  EXPECT_EQ(first.record().mask, second.record().mask);
  EXPECT_EQ(run1.stdout_text, run2.stdout_text);
  EXPECT_EQ(run1.output_file, run2.output_file);
}

TEST(EndToEnd, ApproximateProfileEqualsExactForUniformKernels) {
  // 360.ilbdc launches one static kernel 1000 times with identical work:
  // approximate profiling must lose nothing.
  const TargetProgram* program = workloads::FindWorkload("360.ilbdc");
  const CampaignRunner runner(*program);
  const ProgramProfile exact =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  const ProgramProfile approx =
      runner.RunProfiler(ProfilerTool::Mode::kApproximate, sim::DeviceProps{}, nullptr);
  EXPECT_EQ(exact.TotalInstructions(), approx.TotalInstructions());
  EXPECT_EQ(exact.DynamicKernelCount(), approx.DynamicKernelCount());
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    EXPECT_EQ(exact.OpcodeTotal(static_cast<sim::Opcode>(op)),
              approx.OpcodeTotal(static_cast<sim::Opcode>(op)));
  }
}

TEST(EndToEnd, PermanentCampaignOnSmallProgram) {
  const TargetProgram* program = workloads::FindWorkload("314.omriq");
  const CampaignRunner runner(*program);
  const ProgramProfile profile =
      runner.RunProfiler(ProfilerTool::Mode::kExact, sim::DeviceProps{}, nullptr);
  PermanentCampaignConfig config;
  config.seed = 77;
  const PermanentCampaignResult result = runner.RunPermanentCampaign(config, profile);
  EXPECT_EQ(result.runs.size(), profile.ExecutedOpcodes().size());
  // Permanent faults on an FP-heavy two-kernel program must corrupt outputs
  // for at least some opcodes.
  EXPECT_GT(result.counts.sdc + result.counts.due, 0u);
}

TEST(EndToEnd, InjectionIntoDynamicallyLoadedSecondModule) {
  // NVBitFI's headline capability: injecting into code the process loads
  // later, without source.  Load a second module mid-run and hit it.
  class TwoModuleProgram final : public TargetProgram {
   public:
    std::string name() const override { return "two_modules"; }
    RunArtifacts Run(sim::Context& ctx) const override {
      RunArtifacts art;
      sim::Module* m1 = nullptr;
      ctx.ModuleLoadText(
          ".kernel first\n  S2R R1, SR_TID.X ;\n  EXIT ;\n.endkernel\n", &m1);
      ctx.LaunchKernel(ctx.GetFunction("first"), sim::Dim3{1, 1, 1},
                       sim::Dim3{32, 1, 1}, {});
      // "dlopen" a plugin module after the first kernel already ran.
      sim::DevPtr out = 0;
      ctx.MemAlloc(&out, 128);
      sim::Module* m2 = nullptr;
      ctx.ModuleLoadText(
          ".kernel plugin\n"
          "  S2R R0, SR_TID.X ;\n"
          "  IADD3 R1, R0, 5, RZ ;\n"
          "  LDC.64 R4, c[0][0x160] ;\n"
          "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
          "  STG.E.32 [R6], R1 ;\n"
          "  EXIT ;\n"
          ".endkernel\n",
          &m2);
      const std::uint64_t params[] = {out};
      ctx.LaunchKernel(ctx.GetFunction("plugin"), sim::Dim3{1, 1, 1},
                       sim::Dim3{32, 1, 1}, params);
      std::vector<std::uint32_t> values(32);
      ctx.MemcpyDtoH(values.data(), out, 128);
      std::uint64_t sum = 0;
      for (const std::uint32_t v : values) sum += v;
      art.stdout_text = "sum " + std::to_string(sum) + "\n";
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
      art.output_file.assign(bytes, bytes + 128);
      return art;
    }
  };

  const TwoModuleProgram program;
  const CampaignRunner runner(program);
  const RunArtifacts golden = runner.RunGolden(sim::DeviceProps{});

  TransientFaultParams params;
  params.arch_state_id = ArchStateId::kGGp;
  params.bit_flip_model = BitFlipModel::kRandomValue;
  params.kernel_name = "plugin";
  params.kernel_count = 0;
  params.instruction_count = 40;  // the IADD3 in the late-loaded module
  params.destination_register = 0.0;
  params.bit_pattern_value = 0.9;
  TransientInjectorTool injector(params);
  const RunArtifacts faulty = runner.Execute(&injector, sim::DeviceProps{}, 0);
  EXPECT_TRUE(injector.record().activated);
  EXPECT_EQ(injector.record().kernel_name, "plugin");
  EXPECT_NE(faulty.output_file, golden.output_file);
}

}  // namespace
}  // namespace nvbitfi::fi
