// Telemetry non-perturbation acceptance tests: every execution path must
// produce byte-identical result stores with telemetry fully on (registry +
// installed trace log) and fully off.  The telemetry layer observes the
// campaign; it must never participate in it — no Rng draws, no record
// fields, no ordering changes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/merge.h"
#include "analysis/result_store.h"
#include "common/strings.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/adaptive_runner.h"
#include "service/shard_runner.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_log.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

fi::RunCache& Cache() {
  static fi::RunCache cache;
  return cache;
}

fi::CampaignSpec SpecFor(const std::string& program) {
  fi::CampaignSpec spec;
  spec.program = program;
  spec.seed = 987654;
  spec.num_injections = 6;
  spec.checkpoints = true;  // exercises checkpoint-record + fast-forward spans
  return spec;
}

// Runs `body` with telemetry enabled and a live trace log installed at
// `trace_path`, then restores the previous global state.
void WithTelemetryOn(const std::string& trace_path,
                     const std::function<void()>& body) {
  const bool was_enabled = telemetry::TelemetryEnabled();
  telemetry::SetTelemetryEnabled(true);
  telemetry::TraceLog log;
  std::string error;
  ASSERT_TRUE(log.Open(trace_path, &error)) << error;
  telemetry::TraceLog::SetGlobal(&log);
  body();
  telemetry::TraceLog::SetGlobal(nullptr);
  log.Close();
  telemetry::SetTelemetryEnabled(was_enabled);
}

// Runs `body` with telemetry disabled, then restores the previous state.
void WithTelemetryOff(const std::function<void()>& body) {
  const bool was_enabled = telemetry::TelemetryEnabled();
  telemetry::SetTelemetryEnabled(false);
  body();
  telemetry::SetTelemetryEnabled(was_enabled);
}

ShardOutcome RunCampaignStored(const std::string& store_path, int workers) {
  ShardJob job;
  job.spec = SpecFor(workloads::AllWorkloads().front().program->name());
  job.store_path = store_path;
  job.workers = workers;
  job.finalize = true;
  return RunShardJob(job, &Cache());
}

TEST(TelemetryIdentity, CampaignStoreIsByteIdenticalOnAndOff) {
  const std::string on_path = TempPath("ti_campaign_on.jsonl");
  const std::string off_path = TempPath("ti_campaign_off.jsonl");

  ShardOutcome on_outcome;
  WithTelemetryOn(TempPath("ti_campaign.trace.jsonl"),
                  [&] { on_outcome = RunCampaignStored(on_path, 3); });
  ASSERT_TRUE(on_outcome.ok) << on_outcome.error;

  ShardOutcome off_outcome;
  WithTelemetryOff([&] { off_outcome = RunCampaignStored(off_path, 3); });
  ASSERT_TRUE(off_outcome.ok) << off_outcome.error;

  const std::string on_bytes = ReadAll(on_path);
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_EQ(on_bytes, ReadAll(off_path));

  // The in-memory result carries the phase breakdown only when telemetry ran.
  EXPECT_FALSE(on_outcome.result.phases.Empty());
  EXPECT_GT(on_outcome.result.phases.CountFor(telemetry::Phase::kInject), 0u);
  EXPECT_GT(on_outcome.result.phases.CountFor(telemetry::Phase::kGolden), 0u);
  EXPECT_TRUE(off_outcome.result.phases.Empty());
}

TEST(TelemetryIdentity, AdaptiveStoreIsByteIdenticalOnAndOff) {
  fi::CampaignSpec spec = SpecFor(workloads::AllWorkloads().front().program->name());
  spec.num_injections = 12;
  spec.adaptive = true;
  spec.adaptive_confidence = 0.90;
  spec.adaptive_target_width = 0.25;
  spec.adaptive_round_size = 6;
  spec.adaptive_min_per_stratum = 1;

  auto run_adaptive = [&](const std::string& path) {
    AdaptiveJob job;
    job.spec = spec;
    job.store_path = path;
    job.workers = 2;
    return RunAdaptiveJob(job, &Cache());
  };

  const std::string on_path = TempPath("ti_adaptive_on.jsonl");
  const std::string off_path = TempPath("ti_adaptive_off.jsonl");
  AdaptiveOutcome on_outcome;
  WithTelemetryOn(TempPath("ti_adaptive.trace.jsonl"),
                  [&] { on_outcome = run_adaptive(on_path); });
  ASSERT_TRUE(on_outcome.ok) << on_outcome.error;
  AdaptiveOutcome off_outcome;
  WithTelemetryOff([&] { off_outcome = run_adaptive(off_path); });
  ASSERT_TRUE(off_outcome.ok) << off_outcome.error;

  const std::string on_bytes = ReadAll(on_path);
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_EQ(on_bytes, ReadAll(off_path));
  EXPECT_FALSE(on_outcome.result.phases.Empty());
  EXPECT_TRUE(off_outcome.result.phases.Empty());
}

TEST(TelemetryIdentity, ShardedMergeIsByteIdenticalOnAndOff) {
  const std::string program = workloads::AllWorkloads().front().program->name();

  auto run_sharded = [&](const std::string& tag) {
    std::vector<std::string> shard_paths;
    for (int shard = 0; shard < 3; ++shard) {
      ShardJob job;
      job.spec = SpecFor(program);
      job.begin = static_cast<std::size_t>(shard) * 2;
      job.end = job.begin + 2;
      job.store_path = TempPath(Format("ti_%s_s%d.jsonl", tag.c_str(), shard));
      job.resume = true;
      job.shard_records = true;
      const ShardOutcome outcome = RunShardJob(job, &Cache());
      EXPECT_TRUE(outcome.ok) << outcome.error;
      shard_paths.push_back(job.store_path);
    }
    const std::string merged = TempPath(Format("ti_%s_merged.jsonl", tag.c_str()));
    std::string error;
    const std::optional<analysis::MergeSummary> summary =
        analysis::MergeShardStores(shard_paths, merged, &error);
    EXPECT_TRUE(summary.has_value()) << error;
    return merged;
  };

  std::string on_merged;
  WithTelemetryOn(TempPath("ti_shard.trace.jsonl"),
                  [&] { on_merged = run_sharded("on"); });
  std::string off_merged;
  WithTelemetryOff([&] { off_merged = run_sharded("off"); });

  const std::string on_bytes = ReadAll(on_merged);
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_EQ(on_bytes, ReadAll(off_merged));
}

TEST(TelemetryIdentity, TraceLogRecordsCampaignSpans) {
  const std::string trace_path = TempPath("ti_spans.trace.jsonl");
  const std::string store_path = TempPath("ti_spans_store.jsonl");

  WithTelemetryOn(trace_path, [&] {
    const ShardOutcome outcome = RunCampaignStored(store_path, 1);
    EXPECT_TRUE(outcome.ok) << outcome.error;
  });

  const std::string trace = ReadAll(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.rfind("[", 0), 0u);  // starts with the array opener
  EXPECT_NE(trace.find("\"name\":\"inject\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"classify\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"store-append\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace nvbitfi::service
