// Sharded-execution acceptance test: for every Table IV workload, splitting a
// transient campaign into index-range shards run as independent jobs and
// merging the shard stores yields a file byte-identical to the store the
// unsharded single-process campaign writes — the service's core guarantee.
// A second test kills a shard mid-range and resumes it, modelling a crashed
// fleet worker whose shard the coordinator reassigns.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/merge.h"
#include "common/strings.h"
#include "core/campaign_spec.h"
#include "core/run_cache.h"
#include "service/shard_runner.h"
#include "workloads/workloads.h"

namespace nvbitfi::service {
namespace {

fi::CampaignSpec SpecFor(const std::string& program) {
  fi::CampaignSpec spec;
  spec.program = program;
  spec.seed = 515151;
  spec.num_injections = 6;
  spec.approximate = true;
  return spec;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

fi::RunCache& Cache() {
  static fi::RunCache cache;
  return cache;
}

std::string SafeName(const std::string& program) {
  std::string name = program;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ShardMergeIdentity : public ::testing::TestWithParam<workloads::WorkloadEntry> {};

TEST_P(ShardMergeIdentity, ThreeShardsMergeByteIdenticalToUnshardedStore) {
  const std::string program = GetParam().program->name();
  const fi::CampaignSpec spec = SpecFor(program);
  const std::string tag = SafeName(program);

  // Canonical: the full campaign in one process, replay accounting finalized
  // into the header — exactly what `nvbitfi campaign --store` writes.
  ShardJob canonical;
  canonical.spec = spec;
  canonical.store_path = TempPath("smi_" + tag + "_canonical.jsonl");
  canonical.finalize = true;
  const ShardOutcome canonical_outcome = RunShardJob(canonical, &Cache());
  ASSERT_TRUE(canonical_outcome.ok) << canonical_outcome.error;

  // The same campaign as three independent shard jobs, as the coordinator
  // would dispatch them (each could run in a different process).
  const std::vector<fi::ShardRange> plan =
      fi::PlanShards(static_cast<std::size_t>(spec.num_injections), 3);
  ASSERT_EQ(plan.size(), 3u);
  std::vector<std::string> shard_paths;
  for (const fi::ShardRange& range : plan) {
    ShardJob job;
    job.spec = spec;
    job.begin = range.begin;
    job.end = range.end;
    job.store_path = TempPath(Format("smi_%s_shard_%zu.jsonl", tag.c_str(),
                                     range.begin));
    job.shard_records = true;
    const ShardOutcome outcome = RunShardJob(job, &Cache());
    ASSERT_TRUE(outcome.ok) << outcome.error;
    shard_paths.push_back(job.store_path);
  }

  const std::string merged = TempPath("smi_" + tag + "_merged.jsonl");
  std::string error;
  const std::optional<analysis::MergeSummary> summary =
      analysis::MergeShardStores(shard_paths, merged, &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_EQ(summary->num_experiments,
            static_cast<std::uint64_t>(spec.num_injections));

  const std::string merged_bytes = ReadAll(merged);
  ASSERT_FALSE(merged_bytes.empty());
  EXPECT_EQ(merged_bytes, ReadAll(canonical.store_path));
}

std::string EntryName(const ::testing::TestParamInfo<workloads::WorkloadEntry>& info) {
  return SafeName(info.param.program->name());
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ShardMergeIdentity,
                         ::testing::ValuesIn(workloads::AllWorkloads()), EntryName);

// A worker dies mid-shard; the shard is resumed elsewhere from its crash-safe
// store.  The merged result must still be byte-identical to the unsharded
// store — reassignment can never perturb records.
TEST(ShardMergeIdentity, KilledShardResumesToIdenticalStore) {
  const std::string program = workloads::AllWorkloads().front().program->name();
  fi::CampaignSpec spec = SpecFor(program);
  spec.num_injections = 8;

  ShardJob canonical;
  canonical.spec = spec;
  canonical.store_path = TempPath("smi_kill_canonical.jsonl");
  canonical.finalize = true;
  ASSERT_TRUE(RunShardJob(canonical, &Cache()).ok);

  const std::string s0 = TempPath("smi_kill_s0.jsonl");
  {
    ShardJob job;
    job.spec = spec;
    job.begin = 0;
    job.end = 4;
    job.store_path = s0;
    job.shard_records = true;
    ASSERT_TRUE(RunShardJob(job, &Cache()).ok);
  }

  // "Kill" the second shard's worker after two completed experiments: the
  // cancel flag models both SIGINT and the heartbeat-kick a coordinator
  // delivers, and the store is left mid-range like a SIGKILL would leave it
  // (minus the torn trailing line, which resume also tolerates).
  const std::string s1 = TempPath("smi_kill_s1.jsonl");
  ShardJob victim;
  victim.spec = spec;
  victim.begin = 4;
  victim.end = 8;
  victim.store_path = s1;
  victim.shard_records = true;
  std::atomic<bool> cancel{false};
  victim.cancel = &cancel;
  victim.on_progress = [&](std::size_t completed, std::size_t) {
    if (completed >= 2) cancel.store(true);
  };
  const ShardOutcome killed = RunShardJob(victim, &Cache());
  EXPECT_TRUE(killed.cancelled);
  ASSERT_LT(killed.result.CompletedRuns(), 4u);
  ASSERT_GT(killed.result.CompletedRuns(), 0u);

  // Reassignment: a fresh job for the same shard resumes the store and runs
  // only the missing indexes.
  ShardJob replacement;
  replacement.spec = spec;
  replacement.begin = 4;
  replacement.end = 8;
  replacement.store_path = s1;
  replacement.shard_records = true;
  const ShardOutcome resumed = RunShardJob(replacement, &Cache());
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.resumed_records, killed.result.CompletedRuns());
  EXPECT_EQ(resumed.result.CompletedRuns(), 4u);

  const std::string merged = TempPath("smi_kill_merged.jsonl");
  std::string error;
  ASSERT_TRUE(analysis::MergeShardStores({s0, s1}, merged, &error).has_value())
      << error;
  EXPECT_EQ(ReadAll(merged), ReadAll(canonical.store_path));
}

}  // namespace
}  // namespace nvbitfi::service
