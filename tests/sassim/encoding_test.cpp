#include "sassim/isa/encoding.h"

#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"
#include "workloads/common.h"

namespace nvbitfi::sim {
namespace {

Instruction MakeFfma() {
  Instruction inst;
  inst.opcode = Opcode::kFFMA;
  inst.dest_gpr = 4;
  inst.src[0] = Operand::Gpr(2);
  inst.src[1] = Operand::Const(0, 0x168);
  inst.src[2] = Operand::Gpr(6);
  inst.num_src = 3;
  return inst;
}

TEST(Encoding, RoundTripSimple) {
  const Instruction inst = MakeFfma();
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.instruction.opcode, Opcode::kFFMA);
  EXPECT_EQ(decoded.instruction.dest_gpr, 4);
  EXPECT_EQ(decoded.instruction.num_src, 3);
  EXPECT_EQ(decoded.instruction.src[1].kind, Operand::Kind::kConst);
  EXPECT_EQ(decoded.instruction.src[1].const_offset, 0x168u);
}

TEST(Encoding, RoundTripGuard) {
  Instruction inst = MakeFfma();
  inst.guard_pred = 3;
  inst.guard_negate = true;
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.instruction.guard_pred, 3);
  EXPECT_TRUE(decoded.instruction.guard_negate);
}

TEST(Encoding, RoundTripOperandModifiers) {
  Instruction inst = MakeFfma();
  inst.src[0].negate = true;
  inst.src[0].absolute = true;
  inst.src[2].invert = true;
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok);
  EXPECT_TRUE(decoded.instruction.src[0].negate);
  EXPECT_TRUE(decoded.instruction.src[0].absolute);
  EXPECT_TRUE(decoded.instruction.src[2].invert);
  EXPECT_FALSE(decoded.instruction.src[1].negate);
}

TEST(Encoding, RoundTripMemoryOperand) {
  Instruction inst;
  inst.opcode = Opcode::kLDG;
  inst.dest_gpr = 8;
  inst.mods.width = MemWidth::k64;
  inst.src[0] = Operand::Mem(6, -0x20);
  inst.num_src = 1;
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.instruction.src[0].kind, Operand::Kind::kMem);
  EXPECT_EQ(decoded.instruction.src[0].mem_base, 6);
  EXPECT_EQ(decoded.instruction.src[0].mem_offset, -0x20);
  EXPECT_EQ(decoded.instruction.mods.width, MemWidth::k64);
}

TEST(Encoding, RoundTripImmediateAndLabel) {
  Instruction inst;
  inst.opcode = Opcode::kBRA;
  inst.src[0] = Operand::Label(12345);
  inst.num_src = 1;
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.instruction.src[0].kind, Operand::Kind::kLabel);
  EXPECT_EQ(decoded.instruction.src[0].imm, 12345u);
}

TEST(Encoding, RoundTripPredicates) {
  Instruction inst;
  inst.opcode = Opcode::kISETP;
  inst.dest_pred = 2;
  inst.dest_pred2 = 5;
  inst.mods.cmp = CmpOp::kLT;
  inst.mods.bool_op = BoolOp::kXor;
  inst.mods.src_signed = false;
  inst.src[0] = Operand::Gpr(1);
  inst.src[1] = Operand::Imm(0xDEADBEEF);
  inst.src[2] = Operand::Pred(4, /*neg=*/true);
  inst.num_src = 3;
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.instruction.dest_pred, 2);
  EXPECT_EQ(decoded.instruction.dest_pred2, 5);
  EXPECT_EQ(decoded.instruction.mods.cmp, CmpOp::kLT);
  EXPECT_EQ(decoded.instruction.mods.bool_op, BoolOp::kXor);
  EXPECT_FALSE(decoded.instruction.mods.src_signed);
  EXPECT_EQ(decoded.instruction.src[1].imm, 0xDEADBEEFu);
  EXPECT_TRUE(decoded.instruction.src[2].negate);
}

TEST(Encoding, RoundTripAllModifierFields) {
  Instruction inst;
  inst.opcode = Opcode::kMUFU;
  inst.dest_gpr = 10;
  inst.mods.mufu = MufuFunc::kEx2;
  inst.mods.sreg = SpecialReg::kSmId;
  inst.mods.shfl = ShflMode::kBfly;
  inst.mods.atomic = AtomicOp::kXor;
  inst.mods.vote = VoteMode::kBallot;
  inst.mods.shift_dir = ShiftDir::kRight;
  inst.mods.lut = 0xC5;
  inst.mods.sign_extend = true;
  inst.mods.wide_src = true;
  inst.mods.wide_dst = true;
  inst.src[0] = Operand::Gpr(3);
  inst.num_src = 1;
  const DecodeResult decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.ok);
  const Modifiers& m = decoded.instruction.mods;
  EXPECT_EQ(m.mufu, MufuFunc::kEx2);
  EXPECT_EQ(m.sreg, SpecialReg::kSmId);
  EXPECT_EQ(m.shfl, ShflMode::kBfly);
  EXPECT_EQ(m.atomic, AtomicOp::kXor);
  EXPECT_EQ(m.vote, VoteMode::kBallot);
  EXPECT_EQ(m.shift_dir, ShiftDir::kRight);
  EXPECT_EQ(m.lut, 0xC5);
  EXPECT_TRUE(m.sign_extend);
  EXPECT_TRUE(m.wide_src);
  EXPECT_TRUE(m.wide_dst);
}

TEST(Encoding, DecodeRejectsInvalidOpcode) {
  EncodedInstruction enc;
  enc.words[0] = 0xFF;  // opcode id 255 > 170
  const DecodeResult decoded = Decode(enc);
  EXPECT_FALSE(decoded.ok);
  EXPECT_NE(decoded.error.find("opcode"), std::string::npos);
}

TEST(Encoding, DecodeRejectsInvalidOperandCount) {
  Instruction inst = MakeFfma();
  EncodedInstruction enc = Encode(inst);
  enc.words[0] = (enc.words[0] & ~(0x7ull << 26)) | (0x7ull << 26);  // num_src = 7
  EXPECT_FALSE(Decode(enc).ok);
}

TEST(Encoding, DecodeRejectsInvalidSpecialRegister) {
  Instruction inst = MakeFfma();
  EncodedInstruction enc = Encode(inst);
  enc.words[0] |= 0xFull << 60;  // sreg = 15 >= kCount
  EXPECT_FALSE(Decode(enc).ok);
}

TEST(Encoding, EncodeRejectsOversizedFields) {
  Instruction inst = MakeFfma();
  inst.num_src = kMaxSrcOperands + 1;
  EXPECT_THROW(Encode(inst), std::logic_error);
}

TEST(Encoding, ProgramRoundTrip) {
  const KernelSource kernel = AssembleKernelOrDie("t",
                                                  "  S2R R0, SR_TID.X ;\n"
                                                  "  IMAD R0, R0, c[0][0x0], R1 ;\n"
                                                  "  @!P0 BRA done ;\n"
                                                  "  FFMA R4, R0, 0x3f800000, R4 ;\n"
                                                  "done:\n"
                                                  "  EXIT ;\n");
  const auto binary = EncodeProgram(kernel.instructions);
  const ProgramDecodeResult decoded = DecodeProgram(binary);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.instructions.size(), kernel.instructions.size());
  for (std::size_t i = 0; i < kernel.instructions.size(); ++i) {
    EXPECT_EQ(decoded.instructions[i].ToString(), kernel.instructions[i].ToString());
  }
}

// Property test: every instruction of every kernel template survives an
// encode/decode round trip bit-exactly (compared by re-encoding).
TEST(Encoding, TemplateKernelsRoundTripBitExactly) {
  const std::string source = workloads::StencilKernel("rt_stencil", 0.17f, 0x3f) +
                             workloads::AxpyKernel("rt_axpy", -0.01f) +
                             workloads::SweepKernel("rt_sweep", 0.93f, 0.07f, 0x3f) +
                             workloads::ScaleKernel("rt_scale", 0.999f, 1e-4f) +
                             workloads::CopyKernel("rt_copy") +
                             workloads::Fp64SquareAccumulateKernel("rt_fp64") +
                             workloads::ReduceKernel("rt_reduce");
  const AssemblyResult assembled = Assemble(source);
  ASSERT_TRUE(assembled.ok) << assembled.error;
  ASSERT_EQ(assembled.kernels.size(), 7u);
  for (const KernelSource& kernel : assembled.kernels) {
    for (const Instruction& inst : kernel.instructions) {
      const EncodedInstruction enc = Encode(inst);
      const DecodeResult decoded = Decode(enc);
      ASSERT_TRUE(decoded.ok) << kernel.name << ": " << decoded.error;
      EXPECT_EQ(Encode(decoded.instruction), enc)
          << kernel.name << ": " << inst.ToString();
    }
  }
}

TEST(Encoding, ProgramDecodeReportsFailingIndex) {
  std::vector<EncodedInstruction> prog(3);
  prog[0] = Encode(MakeFfma());
  prog[1] = Encode(MakeFfma());
  prog[2].words[0] = 0xFE;  // invalid opcode
  const ProgramDecodeResult decoded = DecodeProgram(prog);
  EXPECT_FALSE(decoded.ok);
  EXPECT_NE(decoded.error.find("instruction 2"), std::string::npos);
}

}  // namespace
}  // namespace nvbitfi::sim
