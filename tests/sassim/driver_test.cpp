#include "sassim/runtime/driver.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace nvbitfi::sim {
namespace {

constexpr const char* kStoreParamsKernel =
    ".kernel store_params\n"
    // out[0..5] = blockDim.xyz, gridDim.xyz ; out[6] = param1 low word
    "  S2R R1, SR_TID.X ;\n"
    "  ISETP.NE.AND P0, PT, R1, RZ, PT ;\n"
    "  @P0 EXIT ;\n"
    "  S2R R2, SR_CTAID.X ;\n"
    "  ISETP.NE.AND P0, PT, R2, RZ, PT ;\n"
    "  @P0 EXIT ;\n"
    "  LDC.64 R4, c[0][0x160] ;\n"
    "  MOV R6, c[0][0x0] ;\n"
    "  STG.E.32 [R4], R6 ;\n"
    "  MOV R6, c[0][0x4] ;\n"
    "  STG.E.32 [R4+4], R6 ;\n"
    "  MOV R6, c[0][0x8] ;\n"
    "  STG.E.32 [R4+8], R6 ;\n"
    "  MOV R6, c[0][0xc] ;\n"
    "  STG.E.32 [R4+12], R6 ;\n"
    "  MOV R6, c[0][0x10] ;\n"
    "  STG.E.32 [R4+16], R6 ;\n"
    "  MOV R6, c[0][0x14] ;\n"
    "  STG.E.32 [R4+20], R6 ;\n"
    "  MOV R6, c[0][0x168] ;\n"
    "  STG.E.32 [R4+24], R6 ;\n"
    "  EXIT ;\n"
    ".endkernel\n";

TEST(Driver, ModuleLoadAndFunctionLookup) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kStoreParamsKernel, &module), CuResult::kSuccess);
  ASSERT_NE(module, nullptr);
  EXPECT_NE(module->GetFunction("store_params"), nullptr);
  EXPECT_EQ(module->GetFunction("missing"), nullptr);
  EXPECT_NE(ctx.GetFunction("store_params"), nullptr);
  EXPECT_EQ(ctx.GetFunction("missing"), nullptr);
}

TEST(Driver, ModuleLoadRejectsBadAssembly) {
  Context ctx;
  Module* module = nullptr;
  EXPECT_EQ(ctx.ModuleLoadText(".kernel x\n  FROB R1 ;\n.endkernel\n", &module),
            CuResult::kInvalidValue);
  EXPECT_EQ(module, nullptr);
}

TEST(Driver, LaunchParamBankLayout) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kStoreParamsKernel, &module), CuResult::kSuccess);
  Function* fn = ctx.GetFunction("store_params");

  DevPtr out = 0;
  ASSERT_EQ(ctx.MemAlloc(&out, 64), CuResult::kSuccess);
  const std::uint64_t params[] = {out, 0x11223344u};
  ASSERT_EQ(ctx.LaunchKernel(fn, Dim3{3, 2, 1}, Dim3{32, 4, 2}, params),
            CuResult::kSuccess);
  ASSERT_EQ(ctx.Synchronize(), CuResult::kSuccess);

  std::uint32_t values[7] = {};
  ASSERT_EQ(ctx.MemcpyDtoH(values, out, sizeof values), CuResult::kSuccess);
  EXPECT_EQ(values[0], 32u);  // blockDim.x
  EXPECT_EQ(values[1], 4u);
  EXPECT_EQ(values[2], 2u);
  EXPECT_EQ(values[3], 3u);   // gridDim.x
  EXPECT_EQ(values[4], 2u);
  EXPECT_EQ(values[5], 1u);
  EXPECT_EQ(values[6], 0x11223344u);  // param 1
}

TEST(Driver, LaunchValidation) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kStoreParamsKernel, &module), CuResult::kSuccess);
  Function* fn = ctx.GetFunction("store_params");
  EXPECT_EQ(ctx.LaunchKernel(nullptr, Dim3{1, 1, 1}, Dim3{1, 1, 1}, {}),
            CuResult::kInvalidValue);
  EXPECT_EQ(ctx.LaunchKernel(fn, Dim3{0, 1, 1}, Dim3{1, 1, 1}, {}),
            CuResult::kInvalidValue);
  EXPECT_EQ(ctx.LaunchKernel(fn, Dim3{1, 1, 1}, Dim3{2048, 1, 1}, {}),
            CuResult::kInvalidValue);
}

TEST(Driver, MemcpyValidation) {
  Context ctx;
  DevPtr p = 0;
  ASSERT_EQ(ctx.MemAlloc(&p, 16), CuResult::kSuccess);
  char buf[32] = {};
  EXPECT_EQ(ctx.MemcpyHtoD(p, buf, 32), CuResult::kInvalidValue);
  EXPECT_EQ(ctx.MemcpyDtoH(buf, p, 32), CuResult::kInvalidValue);
  EXPECT_EQ(ctx.MemcpyHtoD(p, buf, 16), CuResult::kSuccess);
  EXPECT_EQ(ctx.MemAlloc(&p, 0), CuResult::kInvalidValue);
  EXPECT_EQ(ctx.MemFree(0xBAD), CuResult::kInvalidValue);
}

TEST(Driver, LaunchOrdinalsCountPerKernelName) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kStoreParamsKernel, &module), CuResult::kSuccess);
  Function* fn = ctx.GetFunction("store_params");
  DevPtr out = 0;
  ASSERT_EQ(ctx.MemAlloc(&out, 64), CuResult::kSuccess);
  const std::uint64_t params[] = {out, 0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(ctx.LaunchKernel(fn, Dim3{1, 1, 1}, Dim3{32, 1, 1}, params),
              CuResult::kSuccess);
  }
  EXPECT_EQ(ctx.total_launches(), 3u);
  EXPECT_EQ(ctx.launch_counts().at("store_params"), 3u);
}

constexpr const char* kTrapKernel =
    ".kernel trap_kernel\n"
    "  MOV R4, RZ ;\n  MOV R5, RZ ;\n"
    "  LDG.E.32 R3, [R4] ;\n"
    "  EXIT ;\n"
    ".endkernel\n";

TEST(Driver, StickyErrorSemantics) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(std::string(kTrapKernel) + kStoreParamsKernel, &module),
            CuResult::kSuccess);
  Function* bad = ctx.GetFunction("trap_kernel");
  Function* good = ctx.GetFunction("store_params");
  DevPtr out = 0;
  ASSERT_EQ(ctx.MemAlloc(&out, 64), CuResult::kSuccess);

  // The launch itself reports success (async semantics); the error is sticky.
  EXPECT_EQ(ctx.LaunchKernel(bad, Dim3{1, 1, 1}, Dim3{1, 1, 1}, {}), CuResult::kSuccess);
  EXPECT_EQ(ctx.Synchronize(), CuResult::kIllegalAddress);
  EXPECT_EQ(ctx.last_error(), CuResult::kIllegalAddress);

  // Subsequent launches are accepted but not executed.
  const std::uint64_t cycles_before = ctx.total_cycles();
  const std::uint64_t params[] = {out, 0};
  EXPECT_EQ(ctx.LaunchKernel(good, Dim3{1, 1, 1}, Dim3{32, 1, 1}, params),
            CuResult::kSuccess);
  EXPECT_EQ(ctx.total_cycles(), cycles_before);
  EXPECT_EQ(ctx.total_launches(), 2u);  // still counted as submitted

  // Memcpy reports the sticky error but still moves the bytes.
  std::uint32_t value = 0xFFFFFFFF;
  EXPECT_EQ(ctx.MemcpyDtoH(&value, out, 4), CuResult::kIllegalAddress);
  EXPECT_EQ(value, 0u);  // the (never-written) buffer content arrived
}

TEST(Driver, TrapWritesDeviceLog) {
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kTrapKernel, &module), CuResult::kSuccess);
  EXPECT_TRUE(ctx.device().log().empty());
  ctx.LaunchKernel(ctx.GetFunction("trap_kernel"), Dim3{1, 1, 1}, Dim3{1, 1, 1}, {});
  ASSERT_EQ(ctx.device().log().entries().size(), 1u);
  const DeviceLogEntry& entry = ctx.device().log().entries()[0];
  EXPECT_EQ(entry.trap, TrapKind::kIllegalAddress);
  EXPECT_NE(entry.message.find("XID"), std::string::npos);
  EXPECT_NE(entry.message.find("trap_kernel"), std::string::npos);
}

TEST(Driver, WatchdogConfiguration) {
  Context ctx;
  ctx.set_launch_watchdog(5000);
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(".kernel spin\n"
                               "loop:\n"
                               "  IADD3 R1, R1, 1, RZ ;\n"
                               "  BRA loop ;\n"
                               ".endkernel\n",
                               &module),
            CuResult::kSuccess);
  ctx.LaunchKernel(ctx.GetFunction("spin"), Dim3{1, 1, 1}, Dim3{1, 1, 1}, {});
  EXPECT_EQ(ctx.Synchronize(), CuResult::kLaunchTimeout);
}

TEST(Driver, ModuleRoundTripsThroughBinaryEncoding) {
  // ModuleLoadText decodes the binary image; semantics must be preserved.
  Context ctx;
  Module* module = nullptr;
  ASSERT_EQ(ctx.ModuleLoadText(kStoreParamsKernel, &module), CuResult::kSuccess);
  const Function* fn = module->GetFunction("store_params");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->source().instructions.empty());
  EXPECT_EQ(fn->source().instructions.back().opcode, Opcode::kEXIT);
}

TEST(Driver, CuResultNames) {
  EXPECT_EQ(CuResultName(CuResult::kSuccess), "CUDA_SUCCESS");
  EXPECT_EQ(CuResultName(CuResult::kIllegalAddress), "CUDA_ERROR_ILLEGAL_ADDRESS");
  EXPECT_EQ(CuResultFromTrap(TrapKind::kTimeout), CuResult::kLaunchTimeout);
  EXPECT_EQ(CuResultFromTrap(TrapKind::kNone), CuResult::kSuccess);
}

}  // namespace
}  // namespace nvbitfi::sim
