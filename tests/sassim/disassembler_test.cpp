#include "sassim/asm/disassembler.h"

#include <gtest/gtest.h>

#include "sassim/asm/assembler.h"
#include "sassim/isa/encoding.h"
#include "workloads/common.h"

namespace nvbitfi::sim {
namespace {

// The core property: disassembly re-assembles to the identical binary.
void ExpectRoundTrip(const KernelSource& kernel) {
  const std::string text = Disassemble(kernel);
  const AssemblyResult reassembled = Assemble(text);
  ASSERT_TRUE(reassembled.ok) << reassembled.error << "\n--- disassembly ---\n" << text;
  ASSERT_EQ(reassembled.kernels.size(), 1u);
  const KernelSource& back = reassembled.kernels[0];
  EXPECT_EQ(back.name, kernel.name);
  EXPECT_EQ(back.register_count, kernel.register_count);
  EXPECT_EQ(back.shared_bytes, kernel.shared_bytes);
  ASSERT_EQ(back.instructions.size(), kernel.instructions.size()) << text;
  for (std::size_t i = 0; i < kernel.instructions.size(); ++i) {
    EXPECT_EQ(Encode(back.instructions[i]), Encode(kernel.instructions[i]))
        << kernel.name << " instruction " << i << ":\n  original: "
        << kernel.instructions[i].ToString()
        << "\n  rendered: " << DisassembleInstruction(kernel.instructions[i])
        << "\n  reparsed: " << back.instructions[i].ToString();
  }
}

TEST(Disassembler, SimpleKernelRoundTrips) {
  ExpectRoundTrip(AssembleKernelOrDie("simple",
                                      "  S2R R0, SR_CTAID.X ;\n"
                                      "  IMAD R0, R0, c[0][0x0], R1 ;\n"
                                      "  FFMA R4, R0, 0x3f800000, R4 ;\n"
                                      "  EXIT ;\n"));
}

TEST(Disassembler, BranchesGetLabels) {
  const KernelSource kernel = AssembleKernelOrDie("branchy",
                                                  "top:\n"
                                                  "  IADD3 R0, R0, 1, RZ ;\n"
                                                  "  ISETP.LT.AND P0, PT, R0, 0xa, PT ;\n"
                                                  "  @P0 BRA top ;\n"
                                                  "  @!P1 BRA done ;\n"
                                                  "  NOP ;\n"
                                                  "done:\n"
                                                  "  EXIT ;\n");
  const std::string text = Disassemble(kernel);
  EXPECT_NE(text.find("L0:"), std::string::npos);
  EXPECT_NE(text.find("L5:"), std::string::npos);
  EXPECT_NE(text.find("BRA L0"), std::string::npos);
  ExpectRoundTrip(kernel);
}

TEST(Disassembler, GuardsAndModifiersRender) {
  const KernelSource kernel = AssembleKernelOrDie(
      "mods",
      "  @!P3 LDG.E.S16 R8, [R6+-0x20] ;\n"
      "  ISETP.GE.U32.XOR P1, P2, R3, c[0][0x170], !P5 ;\n"
      "  MUFU.RSQ R1, |R2| ;\n"
      "  SHF.R.U32 R1, R2, 0x4, R3 ;\n"
      "  IMAD.WIDE R6, R0, 0x4, R4 ;\n"
      "  SHFL.BFLY R2, R1, 0x10 ;\n"
      "  VOTE.ANY R4, P1, P0 ;\n"
      "  ATOMG.CAS R3, [R4], R6, R7 ;\n"
      "  F2F.F64.F32 R2, R1 ;\n"
      "  I2F.F32.U32 R3, R1 ;\n"
      "  EXIT ;\n");
  ExpectRoundTrip(kernel);
}

TEST(Disassembler, AllTemplateKernelsRoundTrip) {
  const std::string source = workloads::StencilKernel("dt_stencil", 0.21f, 0x3f) +
                             workloads::AxpyKernel("dt_axpy", 0.013f) +
                             workloads::SweepKernel("dt_sweep", 0.95f, 0.05f, 0x3f) +
                             workloads::ScaleKernel("dt_scale", 1.001f, -2e-4f) +
                             workloads::CopyKernel("dt_copy") +
                             workloads::Fp64SquareAccumulateKernel("dt_fp64") +
                             workloads::ReduceKernel("dt_reduce");
  const AssemblyResult assembled = Assemble(source);
  ASSERT_TRUE(assembled.ok) << assembled.error;
  for (const KernelSource& kernel : assembled.kernels) {
    ExpectRoundTrip(kernel);
  }
}

TEST(Disassembler, PredicateSystemOpsRoundTrip) {
  ExpectRoundTrip(AssembleKernelOrDie("preds",
                                      "  PSETP.XOR P2, P3, P0, P1, PT ;\n"
                                      "  PLOP3 P0, PT, P1, P2, P3, 0x96 ;\n"
                                      "  P2R R4, 0x7f ;\n"
                                      "  R2P R4, 0x3 ;\n"
                                      "  FSETP.NE.OR P0, PT, R1, R2, P3 ;\n"
                                      "  EXIT ;\n"));
}

TEST(Disassembler, NegativeOffsetsAndOperandFlags) {
  ExpectRoundTrip(AssembleKernelOrDie("flags",
                                      "  FADD R1, -R2, |R3| ;\n"
                                      "  LOP3 R4, ~R2, R3, RZ, 0xc0 ;\n"
                                      "  STG.E.64 [R6-0x10], R8 ;\n"
                                      "  FMNMX R1, R2, -R3, !PT ;\n"
                                      "  EXIT ;\n"));
}

}  // namespace
}  // namespace nvbitfi::sim
